(* Run one experiment's sweep through the parallel engine.

   Demonstrates the lib/engine pipeline end to end: plan an experiment's
   trial jobs, fan them out across domains, store one JSONL record per
   trial, then read the store back and aggregate.  Run twice and the
   second invocation resumes: every job is already in the store, so
   nothing re-executes.

     dune exec examples/parallel_sweep.exe            # default out dir
     dune exec examples/parallel_sweep.exe -- /tmp/s  # explicit out dir *)

let () =
  let out_dir =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else Filename.concat (Filename.get_temp_dir_name ()) "parallel_sweep"
  in
  let exp =
    match Harness.Registry.find "t9" with
    | Some e -> e
    | None -> failwith "t9 not registered"
  in
  let ctx = Harness.Experiment.default_ctx ~seed:2013 ~trials:5 ~scale:0.1 () in
  let workers = Engine.Pool.default_workers () in
  Printf.printf "running %s (%s) on %d domains -> %s\n%!"
    exp.Harness.Experiment.id exp.Harness.Experiment.title workers out_dir;
  (match Engine.Plan.execute ~workers ~resume:true ~out_dir ~ctx exp with
  | None -> failwith "experiment has no job-grain view"
  | Some o ->
    Printf.printf "plan: %d jobs, %d already in store, %d executed\n" o.total_jobs
      o.skipped o.executed);
  (* Aggregate straight from the JSONL store: mean max_steps per sweep
     point, in sweep order. *)
  let records =
    Engine.Checkpoint.records
      (Engine.Sink.store_path ~dir:out_dir ~experiment:exp.Harness.Experiment.id)
  in
  let by_point = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let label = r.Engine.Sink.point_label in
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_point r.Engine.Sink.sweep_point)
      in
      match List.assoc_opt "max_steps" r.Engine.Sink.values with
      | Some v -> Hashtbl.replace by_point r.Engine.Sink.sweep_point ((label, v) :: prev)
      | None -> ())
    records;
  let points = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_point []) in
  List.iter
    (fun p ->
      let samples = Hashtbl.find by_point p in
      let label = fst (List.hd samples) in
      let mean =
        List.fold_left (fun acc (_, v) -> acc +. v) 0. samples
        /. float_of_int (List.length samples)
      in
      Printf.printf "  %-10s mean max_steps = %.2f over %d trials\n" label mean
        (List.length samples))
    points
