(* Benchmark harness.

   Three parts, all in one executable as required:

   1. Table regeneration — every experiment of DESIGN.md §4 (T1..T10, F1,
      F2) is rerun through the registry, printing the same tables as
      `repro_cli all` (reduced scale so the whole bench run stays in the
      minutes range; use the CLI for full-scale runs).
   2. Bechamel micro-benchmarks — one Test.make per table/figure kernel,
      measuring the wall-clock cost of the code that regenerates it, plus
      substrate primitives (simulated and atomic TAS).
   3. B1 — the multicore experiment: the same algorithms on real
      Domain/Atomic shared memory, wall-clock per acquisition. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate every experiment table *)

let regenerate_tables () =
  print_endline
    "=== Part 1: table regeneration (reduced scale; see repro_cli for full) ===";
  let ctx = Harness.Experiment.default_ctx ~seed:1 ~trials:3 ~scale:0.5 () in
  List.iter
    (fun e ->
      Printf.printf "\n--- %s: %s ---\n"
        (String.uppercase_ascii e.Harness.Experiment.id)
        e.Harness.Experiment.title;
      e.Harness.Experiment.run ctx)
    Harness.Registry.all

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel micro-benchmarks *)

(* Kernels.  Each corresponds to a table/figure and benchmarks the
   dominant unit of work that regenerates it. *)

let bench_rebatching_paper n () =
  let instance = Renaming.Rebatching.make ~n () in
  let algo env = Renaming.Rebatching.get_name env instance in
  ignore (Sim.Runner.run_sequential ~seed:1 ~n ~algo ())

let bench_rebatching_tuned n () =
  let instance = Renaming.Rebatching.make ~t0:3 ~n () in
  let algo env = Renaming.Rebatching.get_name env instance in
  ignore (Sim.Runner.run_sequential ~seed:1 ~n ~algo ())

let bench_uniform n () =
  let algo env =
    Baselines.Uniform_probe.get_name env ~m:(2 * n) ~max_steps:(1000 * n)
  in
  ignore (Sim.Runner.run_sequential ~seed:1 ~n ~algo ())

let bench_adaptive k () =
  let space = Renaming.Object_space.create () in
  let algo env = Renaming.Adaptive_rebatching.get_name env space in
  ignore (Sim.Runner.run_sequential ~seed:1 ~n:k ~algo ())

let bench_fast_adaptive k () =
  let space = Renaming.Object_space.create () in
  let algo env = Renaming.Fast_adaptive_rebatching.get_name env space in
  ignore (Sim.Runner.run_sequential ~seed:1 ~n:k ~algo ())

let bench_effect_scheduler n () =
  let instance = Renaming.Rebatching.make ~t0:3 ~n () in
  let algo env = Renaming.Rebatching.get_name env instance in
  ignore (Sim.Runner.run ~seed:1 ~n ~algo ())

let bench_greedy_adversary n () =
  let instance = Renaming.Rebatching.make ~t0:3 ~n () in
  let algo env = Renaming.Rebatching.get_name env instance in
  ignore
    (Sim.Runner.run ~adversary:Sim.Adversary.greedy_collision ~seed:1 ~n ~algo ())

let bench_marking n () =
  ignore (Lowerbound.Marking.run ~seed:1 (Lowerbound.Marking.default_config ~n))

let bench_coupling () =
  let rng = Prng.Splitmix.of_int 1 in
  for _ = 1 to 1000 do
    ignore (Lowerbound.Coupling.joint_sample rng ~lambda:4.0)
  done

let bench_sim_tas () =
  let space = Sim.Location_space.create ~capacity:1024 () in
  for loc = 0 to 1023 do
    ignore (Sim.Location_space.tas space loc)
  done

let bench_atomic_tas () =
  let space = Shm.Atomic_space.create ~capacity:1024 in
  for loc = 0 to 1023 do
    ignore (Shm.Atomic_space.tas space loc)
  done

let tests =
  [
    (* T1/T2 kernels (T3/T4/T9/T10 share this probe-work shape) *)
    Test.make ~name:"t1/t2 rebatching(paper) n=4096"
      (Staged.stage (bench_rebatching_paper 4096));
    Test.make ~name:"t1/t2 rebatching(t0=3) n=4096"
      (Staged.stage (bench_rebatching_tuned 4096));
    Test.make ~name:"t1/t2 uniform-probe n=4096" (Staged.stage (bench_uniform 4096));
    (* T5/T6 kernels *)
    Test.make ~name:"t5 adaptive k=1024" (Staged.stage (bench_adaptive 1024));
    Test.make ~name:"t6 fast-adaptive k=1024" (Staged.stage (bench_fast_adaptive 1024));
    (* T7/T8 kernels: full effect scheduler *)
    Test.make ~name:"t7 effect-sched random n=512"
      (Staged.stage (bench_effect_scheduler 512));
    Test.make ~name:"t7 effect-sched greedy n=512"
      (Staged.stage (bench_greedy_adversary 512));
    (* F1/F2 kernels *)
    Test.make ~name:"f1 1000 coupled samples" (Staged.stage bench_coupling);
    Test.make ~name:"f2 marking n=4096" (Staged.stage (bench_marking 4096));
    (* substrate primitives *)
    Test.make ~name:"substrate 1024 simulated TAS" (Staged.stage bench_sim_tas);
    Test.make ~name:"substrate 1024 atomic TAS" (Staged.stage bench_atomic_tas);
    (* extension kernels *)
    Test.make ~name:"t11 churn 64x8 acquire/release"
      (Staged.stage (fun () ->
           let object_ = Renaming.Long_lived.make ~t0:3 ~n:64 () in
           let algo (env : Renaming.Env.t) =
             let rec cycle r =
               match Renaming.Long_lived.acquire env object_ with
               | None -> None
               | Some u ->
                 if r = 1 then Some u
                 else begin
                   Renaming.Long_lived.release env object_ u;
                   cycle (r - 1)
                 end
             in
             cycle 8
           in
           ignore (Sim.Runner.run ~seed:1 ~n:64 ~algo ())));
    Test.make ~name:"t13 staggered arrivals n=512"
      (Staged.stage (fun () ->
           let instance = Renaming.Rebatching.make ~t0:3 ~n:512 () in
           let algo env = Renaming.Rebatching.get_name env instance in
           let adversary = Sim.Arrivals.staggered ~interval:4 Sim.Adversary.random in
           ignore (Sim.Runner.run ~adversary ~seed:1 ~n:512 ~algo ())));
    Test.make ~name:"t14 record+replay n=256"
      (Staged.stage (fun () ->
           let instance = Renaming.Rebatching.make ~t0:3 ~n:256 () in
           let algo env = Renaming.Rebatching.get_name env instance in
           let recorder, extract = Sim.Trace.recorder Sim.Adversary.random in
           ignore (Sim.Runner.run ~adversary:recorder ~seed:1 ~n:256 ~algo ());
           ignore
             (Sim.Runner.run
                ~adversary:(Sim.Trace.replayer (extract ()))
                ~seed:1 ~n:256 ~algo ())));
    Test.make ~name:"t17 sifter cascade n=4096"
      (Staged.stage (fun () -> ignore (Rwtas.Cascade.run ~seed:1 ~n:4096 ())));
    Test.make ~name:"spec checker overhead n=256"
      (Staged.stage (fun () ->
           let instance = Renaming.Rebatching.make ~t0:3 ~n:256 () in
           let spec = Renaming.Spec.create () in
           Renaming.Spec.with_rebatching spec instance;
           let algo env = Renaming.Rebatching.get_name env instance in
           ignore
             (Sim.Runner.run ~on_event:(Renaming.Spec.observe spec) ~seed:1
                ~n:256 ~algo ())));
  ]

let run_bechamel () =
  print_endline
    "\n=== Part 2: Bechamel micro-benchmarks (monotonic clock + minor words) ===";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  (* The allocation instance rides along on the same raw measurements:
     minor words per run exposes a box sneaking into a kernel loop long
     before it moves the wall-clock column. *)
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let grouped = Test.make_grouped ~name:"loose-renaming" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let alloc_results = Analyze.all ols Instance.minor_allocated raw in
  let estimate_of ols =
    match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-52s %16s %14s %10s\n" "benchmark" "ns/run" "words/run" "R^2";
  print_endline (String.make 96 '-');
  List.iter
    (fun (name, ols) ->
      let estimate = estimate_of ols in
      let words =
        match Hashtbl.find_opt alloc_results name with
        | Some a -> estimate_of a
        | None -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      Printf.printf "%-52s %16.0f %14.0f %10.4f\n" name estimate words r2)
    rows

(* ------------------------------------------------------------------ *)
(* Part 3: B1 — real multicore shared memory *)

let b1_multicore () =
  print_endline "\n=== Part 3 (B1): algorithms on Domain/Atomic shared memory ===";
  Printf.printf "recommended domains on this machine: %d\n"
    (Domain.recommended_domain_count ());
  let table =
    Harness.Table.create
      ~columns:
        [
          ("algorithm", Harness.Table.Left);
          ("procs", Harness.Table.Right);
          ("domains", Harness.Table.Right);
          ("wall us", Harness.Table.Right);
          ("us/name", Harness.Table.Right);
          ("probes/proc", Harness.Table.Right);
          ("unique", Harness.Table.Left);
        ]
  in
  let algorithms =
    [
      ( "rebatching(t0=3)",
        fun procs ->
          let instance = Renaming.Rebatching.make ~t0:3 ~n:procs () in
          ( Renaming.Rebatching.size instance,
            fun env -> Renaming.Rebatching.get_name env instance ) );
      ( "fast-adaptive",
        fun procs ->
          (* Paper probe constants: the race phase then never overshoots
             past the first power-of-two object sized >= 4*procs, so a
             fixed capacity is safe (that is what the Lemma 4.2 constant
             buys). *)
          let space = Renaming.Object_space.create () in
          let levels =
            let rec ceil_log2 acc p = if p >= 4 * procs then acc else ceil_log2 (acc + 1) (2 * p) in
            let need = ceil_log2 0 1 in
            let rec next_pow2 p = if p >= need then p else next_pow2 (2 * p) in
            next_pow2 1
          in
          ( Renaming.Object_space.total_size space levels,
            fun env -> Renaming.Fast_adaptive_rebatching.get_name env space ) );
      ( "uniform-probe",
        fun procs ->
          ( 2 * procs,
            fun env ->
              Baselines.Uniform_probe.get_name env ~m:(2 * procs)
                ~max_steps:(1000 * procs) ) );
    ]
  in
  List.iter
    (fun (name, make) ->
      List.iter
        (fun (procs, domains) ->
          let capacity, algo = make procs in
          let r = Shm.Domain_runner.run ~domains ~seed:11 ~procs ~capacity ~algo () in
          Harness.Table.add_row table
            [
              name;
              Harness.Table.cell_int procs;
              Harness.Table.cell_int r.domains_used;
              Harness.Table.cell_float ~decimals:0 (r.wall_ns /. 1e3);
              Harness.Table.cell_float (r.wall_ns /. 1e3 /. float_of_int procs);
              Harness.Table.cell_float
                (float_of_int r.total_probes /. float_of_int procs);
              (if Shm.Domain_runner.check_unique_names r then "yes" else "NO");
            ])
        [ (256, 1); (256, 2); (256, 4); (1024, 4); (4096, 4) ])
    algorithms;
  print_string (Harness.Table.render table);
  print_endline
    "note: with fewer hardware cores than domains the rows measure \
     timesharing + atomics, not parallel speedup; probes/proc and uniqueness \
     remain the portable signal."

let () =
  regenerate_tables ();
  run_bechamel ();
  b1_multicore ();
  print_endline "\nbench: all parts completed."
