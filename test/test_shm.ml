(* Tests for lib/shm: atomic TAS cells and the domain runner. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Atomic space *)

let test_atomic_tas_semantics () =
  let sp = Shm.Atomic_space.create ~capacity:8 in
  checkb "first wins" true (Shm.Atomic_space.tas sp 3);
  checkb "second loses" false (Shm.Atomic_space.tas sp 3);
  checkb "is_taken" true (Shm.Atomic_space.is_taken sp 3);
  checkb "other free" false (Shm.Atomic_space.is_taken sp 4);
  checki "taken count" 1 (Shm.Atomic_space.taken_count sp)

let test_atomic_release () =
  let sp = Shm.Atomic_space.create ~capacity:4 in
  ignore (Shm.Atomic_space.tas sp 0);
  Shm.Atomic_space.release sp 0;
  checkb "free after release" true (Shm.Atomic_space.tas sp 0)

let test_atomic_reset () =
  let sp = Shm.Atomic_space.create ~capacity:4 in
  ignore (Shm.Atomic_space.tas sp 0);
  ignore (Shm.Atomic_space.tas sp 1);
  Shm.Atomic_space.reset sp;
  checki "all free" 0 (Shm.Atomic_space.taken_count sp)

let test_atomic_bounds () =
  let sp = Shm.Atomic_space.create ~capacity:4 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Atomic_space.tas: location out of range") (fun () ->
      ignore (Shm.Atomic_space.tas sp 4));
  Alcotest.check_raises "negative"
    (Invalid_argument "Atomic_space.tas: location out of range") (fun () ->
      ignore (Shm.Atomic_space.tas sp (-1)));
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Atomic_space.create: capacity must be >= 1") (fun () ->
      ignore (Shm.Atomic_space.create ~capacity:0))

let test_atomic_concurrent_single_winner () =
  (* 4 domains race on every cell; each cell must have exactly one
     winner. *)
  let cells = 64 in
  let sp = Shm.Atomic_space.create ~capacity:cells in
  let wins = Array.init 4 (fun _ -> Array.make cells false) in
  let worker d () =
    for loc = 0 to cells - 1 do
      if Shm.Atomic_space.tas sp loc then wins.(d).(loc) <- true
    done
  in
  (* Raw spawns on purpose: this test races the bare Atomic_space
     without the runner.  repro-lint: allow domain-spawn *)
  let handles = Array.init 4 (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join handles;
  for loc = 0 to cells - 1 do
    let winners = ref 0 in
    for d = 0 to 3 do
      if wins.(d).(loc) then incr winners
    done;
    checki (Printf.sprintf "cell %d" loc) 1 !winners
  done

(* ------------------------------------------------------------------ *)
(* Domain runner *)

let test_runner_rebatching_unique () =
  let instance = Renaming.Rebatching.make ~t0:3 ~n:128 () in
  let r =
    Shm.Domain_runner.run ~domains:4 ~seed:1 ~procs:128
      ~capacity:(Renaming.Rebatching.size instance)
      ~algo:(fun env -> Renaming.Rebatching.get_name env instance)
      ()
  in
  checkb "unique" true (Shm.Domain_runner.check_unique_names r);
  checkb "in range" true
    (Shm.Domain_runner.max_name r < Renaming.Rebatching.size instance);
  checki "domains" 4 r.domains_used;
  checkb "probes counted" true (r.total_probes >= 128)

let test_runner_adaptive_unique () =
  let space = Renaming.Object_space.create () in
  let capacity = Renaming.Object_space.total_size space 16 in
  let r =
    Shm.Domain_runner.run ~domains:4 ~seed:2 ~procs:64 ~capacity
      ~algo:(fun env -> Renaming.Adaptive_rebatching.get_name env space)
      ()
  in
  checkb "unique" true (Shm.Domain_runner.check_unique_names r)

let test_runner_fast_adaptive_unique () =
  let space = Renaming.Object_space.create () in
  let capacity = Renaming.Object_space.total_size space 16 in
  let r =
    Shm.Domain_runner.run ~domains:4 ~seed:3 ~procs:64 ~capacity
      ~algo:(fun env -> Renaming.Fast_adaptive_rebatching.get_name env space)
      ()
  in
  checkb "unique" true (Shm.Domain_runner.check_unique_names r)

let test_runner_single_domain () =
  let instance = Renaming.Rebatching.make ~n:32 () in
  let r =
    Shm.Domain_runner.run ~domains:1 ~seed:4 ~procs:32
      ~capacity:(Renaming.Rebatching.size instance)
      ~algo:(fun env -> Renaming.Rebatching.get_name env instance)
      ()
  in
  checkb "unique" true (Shm.Domain_runner.check_unique_names r);
  checki "one domain" 1 r.domains_used

let test_runner_more_domains_than_procs () =
  let instance = Renaming.Rebatching.make ~n:2 () in
  let r =
    Shm.Domain_runner.run ~domains:8 ~seed:5 ~procs:2
      ~capacity:(Renaming.Rebatching.size instance)
      ~algo:(fun env -> Renaming.Rebatching.get_name env instance)
      ()
  in
  checki "clamped to procs" 2 r.domains_used;
  checkb "unique" true (Shm.Domain_runner.check_unique_names r)

let test_runner_invalid () =
  Alcotest.check_raises "procs=0"
    (Invalid_argument "Domain_runner.run: procs must be >= 1") (fun () ->
      ignore
        (Shm.Domain_runner.run ~seed:1 ~procs:0 ~capacity:1
           ~algo:(fun _ -> None)
           ()));
  Alcotest.check_raises "domains=0"
    (Invalid_argument "Domain_runner.run: domains must be >= 1") (fun () ->
      ignore
        (Shm.Domain_runner.run ~domains:0 ~seed:1 ~procs:1 ~capacity:1
           ~algo:(fun _ -> None)
           ()))

let test_runner_wall_time_positive () =
  let instance = Renaming.Rebatching.make ~n:16 () in
  let r =
    Shm.Domain_runner.run ~domains:2 ~seed:6 ~procs:16
      ~capacity:(Renaming.Rebatching.size instance)
      ~algo:(fun env -> Renaming.Rebatching.get_name env instance)
      ()
  in
  checkb "positive wall time" true (r.wall_ns > 0.)

let qcheck_shm_uniqueness =
  QCheck.Test.make ~name:"multicore rebatching always unique" ~count:10
    QCheck.(pair small_int (int_range 1 100))
    (fun (seed, procs) ->
      let instance = Renaming.Rebatching.make ~t0:3 ~n:procs () in
      let r =
        Shm.Domain_runner.run ~domains:3 ~seed ~procs
          ~capacity:(Renaming.Rebatching.size instance)
          ~algo:(fun env -> Renaming.Rebatching.get_name env instance)
          ()
      in
      Shm.Domain_runner.check_unique_names r)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "shm.atomic_space",
      [
        tc "tas semantics" `Quick test_atomic_tas_semantics;
        tc "release" `Quick test_atomic_release;
        tc "reset" `Quick test_atomic_reset;
        tc "bounds" `Quick test_atomic_bounds;
        tc "concurrent single winner" `Quick test_atomic_concurrent_single_winner;
      ] );
    ( "shm.domain_runner",
      [
        tc "rebatching unique" `Quick test_runner_rebatching_unique;
        tc "adaptive unique" `Quick test_runner_adaptive_unique;
        tc "fast adaptive unique" `Quick test_runner_fast_adaptive_unique;
        tc "single domain" `Quick test_runner_single_domain;
        tc "more domains than procs" `Quick test_runner_more_domains_than_procs;
        tc "invalid args" `Quick test_runner_invalid;
        tc "wall time" `Quick test_runner_wall_time_positive;
        QCheck_alcotest.to_alcotest qcheck_shm_uniqueness;
      ] );
  ]
