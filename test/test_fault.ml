(* Tests for the engine's fault-tolerance layer: quarantine store,
   deterministic retries, timeout/watchdog enforcement, graceful
   interruption, resume validation, and crash-recovery properties. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let temp_dir () = Filename.temp_dir "fault_test" ""

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

(* A synthetic experiment: [points] sweep points x [ctx.trials] trials,
   with an injectable per-job body.  Values are a pure function of the
   seed so determinism checks are meaningful. *)
let synth ~id ~points body : Harness.Experiment.t =
  {
    Harness.Experiment.id;
    title = "synthetic";
    claim = "test";
    run = (fun _ -> ());
    jobs =
      Some
        (fun ctx ->
          List.concat_map
            (fun p ->
              List.init ctx.Harness.Experiment.trials (fun t ->
                  {
                    Harness.Experiment.sweep_point = p;
                    point_label = Printf.sprintf "p=%d" p;
                    trial = t;
                    params = [ ("p", float_of_int p) ];
                    run_job = (fun ~seed -> body ~p ~t ~seed);
                  }))
            (List.init points Fun.id));
  }

let value_of ~seed = [ ("v", float_of_int (seed land 0xffff)) ]

let ctx2 = Harness.Experiment.default_ctx ~seed:11 ~trials:2 ~scale:1.0 ()

let execute ?(workers = 2) ?(resume = false) ?(retries = 0) ?job_timeout
    ?should_stop ?grace ~dir exp =
  match
    Engine.Plan.execute ~workers ~resume ~progress:false ~retries ?job_timeout
      ?should_stop ?grace
      ~log:(fun _ -> ())
      ~out_dir:dir ~ctx:ctx2 exp
  with
  | Some o -> o
  | None -> Alcotest.fail "synthetic experiment lost its jobs view"

let sorted_records ~dir ~id =
  List.sort
    (fun a b -> compare a.Engine.Sink.key b.Engine.Sink.key)
    (Engine.Checkpoint.records (Engine.Sink.store_path ~dir ~experiment:id))

(* ------------------------------------------------------------------ *)
(* Seed_tree: attempt level *)

let test_derive_attempt_zero_is_derive () =
  let d = Engine.Seed_tree.derive ~root:3 ~experiment:"t1" ~sweep_point:2 ~trial:4 in
  let d0 =
    Engine.Seed_tree.derive_attempt ~root:3 ~experiment:"t1" ~sweep_point:2
      ~trial:4 ~attempt:0
  in
  checki "attempt 0 is the schema-1 derivation" d d0;
  let d1 =
    Engine.Seed_tree.derive_attempt ~root:3 ~experiment:"t1" ~sweep_point:2
      ~trial:4 ~attempt:1
  in
  let d2 =
    Engine.Seed_tree.derive_attempt ~root:3 ~experiment:"t1" ~sweep_point:2
      ~trial:4 ~attempt:2
  in
  checkb "attempts give distinct seeds" true (d0 <> d1 && d1 <> d2 && d0 <> d2)

(* ------------------------------------------------------------------ *)
(* Fault: failure record round-trip and attempt accounting *)

let sample_failure =
  {
    Engine.Fault.key = "x/1/2";
    experiment = "x";
    sweep_point = 1;
    trial = 2;
    attempt = 3;
    seed = 987654321;
    error = "Failure(\"boom\")";
    backtrace = "Raised at line 1\nCalled from line 2\n";
    wall_ns = 1234.5;
  }

let test_failure_roundtrip () =
  let line = Engine.Fault.failure_to_json sample_failure in
  checkb "one line" true (not (String.contains line '\n'));
  match Engine.Fault.failure_of_json line with
  | None -> Alcotest.fail "failure round-trip failed to parse"
  | Some f ->
    checkb "round-trip preserves the failure" true (f = sample_failure);
    checks "backtrace with newlines survives" sample_failure.Engine.Fault.backtrace
      f.Engine.Fault.backtrace;
    checkb "garbage rejected" true
      (Engine.Fault.failure_of_json (String.sub line 0 20) = None)

let test_attempt_counts () =
  with_temp_dir (fun dir ->
      let sink = Engine.Fault.create ~dir ~experiment:"x" ~append:false in
      let file = Engine.Fault.path sink in
      checkb "lazy sink: no file before first write" true
        (not (Sys.file_exists file));
      Engine.Fault.write sink { sample_failure with attempt = 0 };
      Engine.Fault.write sink { sample_failure with attempt = 1 };
      Engine.Fault.write sink
        { sample_failure with key = "x/9/9"; attempt = 0 };
      Engine.Fault.close sink;
      let counts = Engine.Fault.attempt_counts file in
      checki "two keys" 2 (Hashtbl.length counts);
      checki "x/1/2 burned 2 attempts" 2 (Hashtbl.find counts "x/1/2");
      checki "x/9/9 burned 1 attempt" 1 (Hashtbl.find counts "x/9/9");
      (* A fresh (non-append) sink removes the stale quarantine. *)
      let sink2 = Engine.Fault.create ~dir ~experiment:"x" ~append:false in
      checkb "fresh sink removed stale quarantine" true
        (not (Sys.file_exists file));
      Engine.Fault.close sink2)

(* ------------------------------------------------------------------ *)
(* Plan: isolation, retries, quarantine *)

let test_failing_job_quarantined_others_complete () =
  with_temp_dir (fun dir ->
      let exp =
        synth ~id:"synq" ~points:3 (fun ~p ~t ~seed ->
            if p = 1 && t = 0 then failwith "injected" else value_of ~seed)
      in
      let o = execute ~workers:4 ~retries:2 ~dir exp in
      checki "all six jobs settled" 6 o.Engine.Plan.executed;
      checki "exactly one job quarantined" 1 o.Engine.Plan.quarantined;
      checkb "summary names the key" true
        (o.Engine.Plan.failed_keys = [ "synq/1/0" ]);
      checki "retries+1 failure records" 3 o.Engine.Plan.failures;
      checkb "not interrupted" true (not o.Engine.Plan.interrupted);
      let records = sorted_records ~dir ~id:"synq" in
      checki "five successful records" 5 (List.length records);
      checkb "failing key absent from store" true
        (not (List.exists (fun r -> r.Engine.Sink.key = "synq/1/0") records));
      let fails = Engine.Fault.load o.Engine.Plan.failures_store in
      checki "three quarantine lines" 3 (List.length fails);
      List.iteri
        (fun i (f : Engine.Fault.failure) ->
          checks "key" "synq/1/0" f.Engine.Fault.key;
          checki "attempt index" i f.Engine.Fault.attempt;
          checki "seed matches the attempt derivation"
            (Engine.Seed_tree.derive_attempt ~root:11 ~experiment:"synq"
               ~sweep_point:1 ~trial:0 ~attempt:i)
            f.Engine.Fault.seed;
          checkb "error mentions the exception" true
            (String.length f.Engine.Fault.error > 0))
        fails)

let test_retry_deterministic_across_workers () =
  (* Fails exactly on attempt 0 of job (1, 1): the job raises iff it is
     handed that attempt's seed, so the retry sequence is a pure function
     of the coordinates — identical at any worker count. *)
  let bad_seed =
    Engine.Seed_tree.derive_attempt ~root:11 ~experiment:"synd" ~sweep_point:1
      ~trial:1 ~attempt:0
  in
  let exp =
    synth ~id:"synd" ~points:3 (fun ~p:_ ~t:_ ~seed ->
        if seed = bad_seed then failwith "flaky" else value_of ~seed)
  in
  with_temp_dir (fun dir_a ->
      with_temp_dir (fun dir_b ->
          let oa = execute ~workers:1 ~retries:1 ~dir:dir_a exp in
          let ob = execute ~workers:8 ~retries:1 ~dir:dir_b exp in
          checki "jobs=1: one failure" 1 oa.Engine.Plan.failures;
          checki "jobs=8: one failure" 1 ob.Engine.Plan.failures;
          checki "no quarantined jobs either way" 0
            (oa.Engine.Plan.quarantined + ob.Engine.Plan.quarantined);
          let ra = sorted_records ~dir:dir_a ~id:"synd" in
          let rb = sorted_records ~dir:dir_b ~id:"synd" in
          checki "same record count" (List.length ra) (List.length rb);
          List.iter2
            (fun a b ->
              checkb
                ("record " ^ a.Engine.Sink.key ^ " identical")
                true
                (Engine.Sink.equal_ignoring_wall a b))
            ra rb;
          let retried =
            List.find (fun r -> r.Engine.Sink.key = "synd/1/1") ra
          in
          checki "retried record carries attempt 1" 1
            retried.Engine.Sink.attempt;
          checki "and the attempt-1 seed"
            (Engine.Seed_tree.derive_attempt ~root:11 ~experiment:"synd"
               ~sweep_point:1 ~trial:1 ~attempt:1)
            retried.Engine.Sink.seed))

let test_resume_continues_retry_budget () =
  with_temp_dir (fun dir ->
      let exp =
        synth ~id:"synb" ~points:2 (fun ~p ~t ~seed ->
            if p = 0 && t = 0 then failwith "always" else value_of ~seed)
      in
      let ctx1 = Harness.Experiment.default_ctx ~seed:11 ~trials:1 ~scale:1.0 () in
      let exec ?(resume = false) ~retries () =
        match
          Engine.Plan.execute ~workers:2 ~resume ~progress:false ~retries
            ~log:(fun _ -> ())
            ~out_dir:dir ~ctx:ctx1 exp
        with
        | Some o -> o
        | None -> Alcotest.fail "no jobs view"
      in
      let o1 = exec ~retries:0 () in
      checki "first run: one failure line" 1 o1.Engine.Plan.failures;
      checki "first run: quarantined" 1 o1.Engine.Plan.quarantined;
      (* Resume with a bigger budget: attempts continue at 1, not 0. *)
      let o2 = exec ~resume:true ~retries:2 () in
      checki "resume skips the completed job" 1 o2.Engine.Plan.skipped;
      checki "resume burns the remaining budget" 2 o2.Engine.Plan.failures;
      checki "still quarantined" 1 o2.Engine.Plan.quarantined;
      let fails = Engine.Fault.load o2.Engine.Plan.failures_store in
      checki "three failure lines total" 3 (List.length fails);
      List.iteri
        (fun i (f : Engine.Fault.failure) ->
          checki "attempt sequence 0,1,2" i f.Engine.Fault.attempt)
        fails;
      (* Budget exhausted: a further resume re-runs nothing. *)
      let o3 = exec ~resume:true ~retries:2 () in
      checki "exhausted job not re-run" 0 o3.Engine.Plan.executed;
      checki "no new failure lines" 0 o3.Engine.Plan.failures;
      checki "reported as still quarantined" 1 o3.Engine.Plan.quarantined;
      checkb "by key" true (o3.Engine.Plan.failed_keys = [ "synb/0/0" ]))

let test_timeout_quarantines () =
  with_temp_dir (fun dir ->
      let exp =
        synth ~id:"synt" ~points:2 (fun ~p ~t ~seed ->
            if p = 0 && t = 0 then Unix.sleepf 0.08;
            value_of ~seed)
      in
      let ctx1 = Harness.Experiment.default_ctx ~seed:11 ~trials:1 ~scale:1.0 () in
      match
        Engine.Plan.execute ~workers:2 ~progress:false ~retries:0
          ~job_timeout:0.02
          ~log:(fun _ -> ())
          ~out_dir:dir ~ctx:ctx1 exp
      with
      | None -> Alcotest.fail "no jobs view"
      | Some o ->
        checki "slow job quarantined" 1 o.Engine.Plan.quarantined;
        checkb "fast job recorded" true
          (List.exists
             (fun r -> r.Engine.Sink.key = "synt/1/0")
             (sorted_records ~dir ~id:"synt"));
        let fails = Engine.Fault.load o.Engine.Plan.failures_store in
        checki "one failure line" 1 (List.length fails);
        let f = List.hd fails in
        checkb "error is a timeout" true
          (String.length f.Engine.Fault.error >= 7
          && String.sub f.Engine.Fault.error 0 7 = "timeout"))

let test_watchdog_abandons_stuck_job () =
  with_temp_dir (fun dir ->
      let exp =
        synth ~id:"synw" ~points:2 (fun ~p ~t ~seed ->
            if p = 0 && t = 0 then Unix.sleepf 0.8;
            value_of ~seed)
      in
      let ctx1 = Harness.Experiment.default_ctx ~seed:11 ~trials:1 ~scale:1.0 () in
      let t0 = Unix.gettimeofday () in
      match
        Engine.Plan.execute ~workers:2 ~progress:false ~retries:0
          ~job_timeout:0.05 ~grace:0.05
          ~log:(fun _ -> ())
          ~out_dir:dir ~ctx:ctx1 exp
      with
      | None -> Alcotest.fail "no jobs view"
      | Some o ->
        let elapsed = Unix.gettimeofday () -. t0 in
        checkb "returned well before the stuck job finished" true
          (elapsed < 0.7);
        checki "stuck job quarantined" 1 o.Engine.Plan.quarantined;
        checkb "fast job recorded" true
          (List.exists
             (fun r -> r.Engine.Sink.key = "synw/1/0")
             (sorted_records ~dir ~id:"synw"));
        let fails = Engine.Fault.load o.Engine.Plan.failures_store in
        checki "one failure line" 1 (List.length fails);
        let f = List.hd fails in
        checkb "error names the watchdog" true
          (String.length f.Engine.Fault.error >= 8
          && String.sub f.Engine.Fault.error 0 8 = "watchdog");
        (* Let the parked domain wake and exit before the temp dir
           teardown races with it. *)
        Unix.sleepf 0.8)

let test_interrupt_drains_and_resumes () =
  (* The job body bumps a counter that should_stop watches, so the stop
     request genuinely arrives mid-run. *)
  let started = Atomic.make 0 in
  let exp =
    synth ~id:"syni" ~points:4 (fun ~p:_ ~t:_ ~seed ->
        ignore (Atomic.fetch_and_add started 1);
        value_of ~seed)
  in
  let ctx4 = Harness.Experiment.default_ctx ~seed:11 ~trials:4 ~scale:1.0 () in
  let exec ?should_stop ?(resume = false) ~dir () =
    match
      Engine.Plan.execute ~workers:2 ~resume ~progress:false ?should_stop
        ~log:(fun _ -> ())
        ~out_dir:dir ~ctx:ctx4 exp
    with
    | Some o -> o
    | None -> Alcotest.fail "no jobs view"
  in
  with_temp_dir (fun dir_full ->
      with_temp_dir (fun dir ->
          let full = exec ~dir:dir_full () in
          checki "uninterrupted run completes all" 16 full.Engine.Plan.executed;
          Atomic.set started 0;
          let o = exec ~should_stop:(fun () -> Atomic.get started >= 5) ~dir () in
          checkb "flagged as interrupted" true o.Engine.Plan.interrupted;
          checkb "some jobs were left unclaimed" true
            (o.Engine.Plan.executed < 16);
          checkb "in-flight jobs drained into the store" true
            (List.length (sorted_records ~dir ~id:"syni")
            = o.Engine.Plan.executed);
          let o2 = exec ~resume:true ~dir () in
          checkb "resume completes the rest" true
            (not o2.Engine.Plan.interrupted);
          checki "no job lost or duplicated" 16
            (o2.Engine.Plan.skipped + o2.Engine.Plan.executed);
          let ra = sorted_records ~dir:dir_full ~id:"syni" in
          let rb = sorted_records ~dir ~id:"syni" in
          checki "full record set" 16 (List.length rb);
          List.iter2
            (fun a b ->
              checkb "interrupted+resumed equals uninterrupted" true
                (Engine.Sink.equal_ignoring_wall a b))
            ra rb))

(* ------------------------------------------------------------------ *)
(* Checkpoint: scan and manifest validation *)

let test_scan_counts_malformed () =
  with_temp_dir (fun dir ->
      let exp = synth ~id:"sync" ~points:2 (fun ~p:_ ~t:_ ~seed -> value_of ~seed) in
      let o = execute ~dir exp in
      let store = o.Engine.Plan.store in
      let lines =
        let ic = open_in store in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | exception End_of_file -> List.rev acc
              | l -> go (l :: acc)
            in
            go [])
      in
      checki "four records" 4 (List.length lines);
      (* Corrupt line 2 mid-file, truncate the tail of the last line. *)
      let oc = open_out store in
      List.iteri
        (fun i l ->
          if i = 1 then output_string oc "{\"half\": \n"
          else if i = 3 then output_string oc (String.sub l 0 (String.length l / 2))
          else (output_string oc l; output_char oc '\n'))
        lines;
      close_out oc;
      let scan = Engine.Checkpoint.scan_store store in
      checki "two intact records" 2 scan.Engine.Checkpoint.records;
      checki "one malformed mid-file line" 1 scan.Engine.Checkpoint.malformed_mid;
      checkb "truncated tail detected" true scan.Engine.Checkpoint.malformed_tail;
      checki "no duplicates" 0 scan.Engine.Checkpoint.duplicates;
      (* Resume surfaces the malformed count and repairs the store. *)
      let o2 = execute ~resume:true ~dir exp in
      checki "outcome reports the malformed line" 1 o2.Engine.Plan.malformed;
      checki "the two broken jobs re-ran" 2 o2.Engine.Plan.executed;
      let scan2 = Engine.Checkpoint.scan_store store in
      checki "store complete again" 4 (Hashtbl.length scan2.Engine.Checkpoint.keys);
      checki "no duplicate keys after resume" 0 scan2.Engine.Checkpoint.duplicates)

let manifest_of ~seed ~trials ~scale ~ids =
  [
    ("schema", Engine.Sink.schema_version);
    ("experiments", String.concat " " ids);
    ("seed", string_of_int seed);
    ("trials", string_of_int trials);
    ("scale", Printf.sprintf "%g" scale);
  ]

let test_validate_manifest () =
  let manifest = manifest_of ~seed:7 ~trials:5 ~scale:0.5 ~ids:[ "t1"; "t9" ] in
  let ok =
    Engine.Checkpoint.validate_manifest ~manifest ~ids:[ "t9" ] ~seed:7
      ~trials:5 ~scale:0.5
  in
  checkb "matching invocation validates" true (ok = Ok ());
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let expect_error ~field r =
    match r with
    | Ok () -> Alcotest.fail ("expected a mismatch on " ^ field)
    | Error msg ->
      checkb
        (Printf.sprintf "error cites field %S: %s" field msg)
        true
        (contains msg (Printf.sprintf "%S" field))
  in
  expect_error ~field:"seed"
    (Engine.Checkpoint.validate_manifest ~manifest ~ids:[ "t9" ] ~seed:8
       ~trials:5 ~scale:0.5);
  expect_error ~field:"trials"
    (Engine.Checkpoint.validate_manifest ~manifest ~ids:[ "t9" ] ~seed:7
       ~trials:6 ~scale:0.5);
  expect_error ~field:"scale"
    (Engine.Checkpoint.validate_manifest ~manifest ~ids:[ "t9" ] ~seed:7
       ~trials:5 ~scale:1.0);
  expect_error ~field:"experiments"
    (Engine.Checkpoint.validate_manifest ~manifest ~ids:[ "t2" ] ~seed:7
       ~trials:5 ~scale:0.5);
  expect_error ~field:"schema"
    (Engine.Checkpoint.validate_manifest
       ~manifest:(("schema", "1") :: List.tl manifest)
       ~ids:[ "t9" ] ~seed:7 ~trials:5 ~scale:0.5);
  (* Fields an older manifest lacks are skipped, not failed. *)
  checkb "missing fields are skipped" true
    (Engine.Checkpoint.validate_manifest
       ~manifest:[ ("seed", "7") ]
       ~ids:[ "t9" ] ~seed:7 ~trials:99 ~scale:9.9
    = Ok ())

let test_manifest_roundtrip () =
  with_temp_dir (fun dir ->
      let ctx = Harness.Experiment.default_ctx ~seed:7 ~trials:5 ~scale:0.5 () in
      Engine.Plan.write_manifest ~out_dir:dir ~ids:[ "t1"; "t9" ] ~workers:4
        ~resume:false ~status:"completed" ~retries:2 ~job_timeout:(Some 30.)
        ~ctx;
      match Engine.Sink.read_manifest ~dir with
      | None -> Alcotest.fail "manifest did not read back"
      | Some m ->
        let get k =
          match List.assoc_opt k m with
          | Some v -> v
          | None -> Alcotest.fail ("manifest missing field " ^ k)
        in
        checks "schema" Engine.Sink.schema_version (get "schema");
        checks "seed" "7" (get "seed");
        checks "status" "completed" (get "status");
        checks "retries" "2" (get "retries");
        checks "job_timeout" "30" (get "job_timeout");
        checkb "git field present" true (String.length (get "git") > 0);
        checkb "validates against itself" true
          (Engine.Checkpoint.validate_manifest ~manifest:m ~ids:[ "t9" ]
             ~seed:7 ~trials:5 ~scale:0.5
          = Ok ()))

(* ------------------------------------------------------------------ *)
(* Property: resume from a store truncated at any byte offset recovers a
   record-identical result set. *)

let qcheck_truncated_resume =
  (* One pristine uninterrupted serial run, reused across QCheck cases. *)
  let exp =
    synth ~id:"synr" ~points:3 (fun ~p ~t ~seed ->
        ignore (p, t);
        value_of ~seed)
  in
  let pristine = lazy (
    let dir = temp_dir () in
    let o = execute ~workers:1 ~dir exp in
    let ic = open_in_bin o.Engine.Plan.store in
    let bytes =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let records = sorted_records ~dir ~id:"synr" in
    remove_tree dir;
    (bytes, records))
  in
  QCheck.Test.make ~name:"resume from any truncation offset is lossless"
    ~count:12
    QCheck.(int_range 0 10_000)
    (fun permille ->
      let bytes, full = Lazy.force pristine in
      let cut = permille * String.length bytes / 10_000 in
      with_temp_dir (fun dir ->
          let store = Engine.Sink.store_path ~dir ~experiment:"synr" in
          let oc = open_out_bin store in
          output_string oc (String.sub bytes 0 cut);
          close_out oc;
          let o = execute ~workers:2 ~resume:true ~dir exp in
          ignore o;
          let resumed = sorted_records ~dir ~id:"synr" in
          List.length resumed = List.length full
          && List.for_all2 Engine.Sink.equal_ignoring_wall resumed full))

(* ------------------------------------------------------------------ *)
(* Io_fault: injected write failures under the stores *)

let sample_record ~trial : Engine.Sink.record =
  {
    Engine.Sink.key = Printf.sprintf "synf/0/%d" trial;
    experiment = "synf";
    sweep_point = 0;
    point_label = "p=0";
    trial;
    attempt = 0;
    seed = 1000 + trial;
    params = [ ("p", 0.) ];
    values = [ ("v", float_of_int (77 * trial)) ];
    wall_ns = 1.0;
  }

(* Write A, fail B's write the prescribed way, then "resume": re-open
   append (terminating any torn tail) and re-write exactly the settled
   jobs that have no record.  The store must end with each key exactly
   once, regardless of where the failure cut. *)
let sink_killpoint ~kind ~expect_b_durable () =
  with_temp_dir (fun dir ->
      let a = sample_record ~trial:0 and b = sample_record ~trial:1 in
      let sink = Engine.Sink.create ~dir ~experiment:"synf" ~append:false in
      Engine.Sink.write sink a;
      Engine.Io_fault.arm { Engine.Io_fault.op = 0; kind };
      (match Engine.Sink.write sink b with
      | exception Engine.Io_fault.Injected _ -> ()
      | () -> Alcotest.fail "armed fault did not fire");
      Engine.Io_fault.disarm ();
      Engine.Sink.close sink;
      let store = Engine.Sink.store_path ~dir ~experiment:"synf" in
      let completed = Engine.Checkpoint.completed_keys store in
      checkb "A settled and survived" true
        (Hashtbl.mem completed a.Engine.Sink.key);
      checkb "B durability matches the fault kind" expect_b_durable
        (Hashtbl.mem completed b.Engine.Sink.key);
      (* Resume: append mode, dedup on completed keys. *)
      let sink = Engine.Sink.create ~dir ~experiment:"synf" ~append:true in
      if not (Hashtbl.mem completed b.Engine.Sink.key) then
        Engine.Sink.write sink b;
      Engine.Sink.close sink;
      let scan = Engine.Checkpoint.scan_store store in
      checki "both jobs settled exactly once" 2
        (Hashtbl.length scan.Engine.Checkpoint.keys);
      checki "no duplicated records" 0 scan.Engine.Checkpoint.duplicates;
      let final = sorted_records ~dir ~id:"synf" in
      checkb "records readable and equal to intent" true
        (List.for_all2 Engine.Sink.equal_ignoring_wall final [ a; b ]))

let test_io_fault_drop () = sink_killpoint ~kind:Engine.Io_fault.Drop ~expect_b_durable:false ()

let test_io_fault_after_append () =
  sink_killpoint ~kind:Engine.Io_fault.After_append ~expect_b_durable:true ()

(* Sweep the short-write cut over every byte position of the record:
   only the full-line prefix settles the job; every shorter prefix is a
   torn tail that resume terminates and re-runs. *)
let test_io_fault_short_sweep () =
  let b = sample_record ~trial:1 in
  let payload_len =
    String.length (Engine.Sink.record_to_json b) + 1 (* '\n' *)
  in
  for cut = 0 to payload_len - 1 do
    sink_killpoint
      ~kind:(Engine.Io_fault.Short cut)
      ~expect_b_durable:(cut = payload_len - 1)
      ()
  done

(* End to end through the engine: fail each record write of a run in
   each way, then --resume must reconstruct exactly the fault-free
   store. *)
let test_io_fault_engine_sweep () =
  let exp =
    synth ~id:"synf" ~points:2 (fun ~p ~t ~seed ->
        ignore (p, t);
        value_of ~seed)
  in
  let pristine =
    with_temp_dir (fun dir ->
        ignore (execute ~workers:1 ~dir exp);
        sorted_records ~dir ~id:"synf")
  in
  let writes = List.length pristine in
  checki "engine sweep covers all four record writes" 4 writes;
  List.iter
    (fun kind ->
      for op = 0 to writes - 1 do
        with_temp_dir (fun dir ->
            Engine.Io_fault.arm { Engine.Io_fault.op; kind };
            (match execute ~workers:2 ~dir exp with
            | exception Engine.Io_fault.Injected _ -> ()
            | _o ->
              Engine.Io_fault.disarm ();
              Alcotest.fail "injected write failure did not abort the run");
            Engine.Io_fault.disarm ();
            ignore (execute ~workers:2 ~resume:true ~dir exp);
            let resumed = sorted_records ~dir ~id:"synf" in
            let scan =
              Engine.Checkpoint.scan_store
                (Engine.Sink.store_path ~dir ~experiment:"synf")
            in
            checki "no duplicates after resume" 0
              scan.Engine.Checkpoint.duplicates;
            checkb "resume reconstructs the fault-free store" true
              (List.length resumed = List.length pristine
              && List.for_all2 Engine.Sink.equal_ignoring_wall resumed
                   pristine))
      done)
    [ Engine.Io_fault.Drop; Engine.Io_fault.Short 5; Engine.Io_fault.After_append ]

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "seed_tree: attempt level" `Quick
          test_derive_attempt_zero_is_derive;
        Alcotest.test_case "fault: failure round-trip" `Quick
          test_failure_roundtrip;
        Alcotest.test_case "fault: attempt counts + lazy sink" `Quick
          test_attempt_counts;
        Alcotest.test_case "plan: failing job quarantined, others complete"
          `Quick test_failing_job_quarantined_others_complete;
        Alcotest.test_case "plan: retries deterministic across workers" `Quick
          test_retry_deterministic_across_workers;
        Alcotest.test_case "plan: resume continues retry budget" `Quick
          test_resume_continues_retry_budget;
        Alcotest.test_case "plan: job timeout quarantines" `Quick
          test_timeout_quarantines;
        Alcotest.test_case "plan: watchdog abandons stuck job" `Quick
          test_watchdog_abandons_stuck_job;
        Alcotest.test_case "plan: interrupt drains and resumes" `Quick
          test_interrupt_drains_and_resumes;
        Alcotest.test_case "checkpoint: malformed lines counted" `Quick
          test_scan_counts_malformed;
        Alcotest.test_case "checkpoint: manifest validation" `Quick
          test_validate_manifest;
        Alcotest.test_case "manifest: round-trip with fault fields" `Quick
          test_manifest_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_truncated_resume;
        Alcotest.test_case "io_fault: dropped write re-runs" `Quick
          test_io_fault_drop;
        Alcotest.test_case "io_fault: durable-but-unacked write dedups" `Quick
          test_io_fault_after_append;
        Alcotest.test_case "io_fault: short-write kill-point sweep" `Quick
          test_io_fault_short_sweep;
        Alcotest.test_case "io_fault: engine kill-point sweep resumes" `Slow
          test_io_fault_engine_sweep;
      ] );
  ]
