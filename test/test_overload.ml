(* Overload survivability: wire compatibility for the deadline field
   and the busy response, the overload state machine's hysteresis (no
   healthy<->shedding flapping), the retry-after hint, and end-to-end
   admission control, deadline shedding and slow-client disconnection
   against a real serving loop. *)

open Service

(* ------------------------------------------------------------------ *)
(* Wire: the 13-byte pre-deadline acquire still decodes, the busy
   response is distinguishable from an error in both modes *)

let u32 v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (v land 0xff));
  Bytes.to_string b

let decode_req mode s =
  Wire.decode_request mode (Bytes.of_string s) ~pos:0 ~len:(String.length s)

let decode_resp mode s =
  Wire.decode_response mode (Bytes.of_string s) ~pos:0 ~len:(String.length s)

let test_legacy_acquire_decodes () =
  (* A pre-overload client's acquire: 13-byte payload, no deadline
     field.  It must decode as deadline_ms = 0 (no deadline), not be
     rejected — old clients keep working against a new daemon. *)
  let frame = u32 13 ^ "\x01" ^ u32 9 ^ u32 4 ^ u32 7 in
  (match decode_req Wire.Binary frame with
  | Wire.Frame (Wire.Acquire { id; client; token; deadline_ms }, consumed) ->
    Alcotest.(check int) "id" 9 id;
    Alcotest.(check int) "client" 4 client;
    Alcotest.(check int) "token" 7 token;
    Alcotest.(check int) "absent deadline decodes as none" 0 deadline_ms;
    Alcotest.(check int) "whole frame consumed" 17 consumed
  | _ -> Alcotest.fail "legacy 13-byte acquire did not decode");
  (* A deadline-stamped acquire encodes as the 17-byte form. *)
  let b = Buffer.create 32 in
  Wire.encode_request Wire.Binary b
    (Wire.Acquire { id = 9; client = 4; token = 7; deadline_ms = 250 });
  Alcotest.(check int) "stamped acquire is 4+17 bytes" 21 (Buffer.length b);
  (* A JSON acquire without the field is likewise deadline-free. *)
  match decode_req Wire.Json "{\"id\":1,\"op\":\"acquire\",\"client\":2}\n" with
  | Wire.Frame (Wire.Acquire { deadline_ms; _ }, _) ->
    Alcotest.(check int) "json default deadline" 0 deadline_ms
  | _ -> Alcotest.fail "json acquire without deadline_ms did not decode"

let test_busy_vs_error_decode () =
  (* In JSON both arrive as ok=false; the retry_after_ms field is the
     discriminator, not the code. *)
  (match
     decode_resp Wire.Json
       "{\"id\":1,\"op\":\"acquire\",\"ok\":false,\"code\":6,\
        \"retry_after_ms\":40}\n"
   with
  | Wire.Frame (Wire.Busy { id; op; retry_after_ms }, _) ->
    Alcotest.(check int) "id" 1 id;
    Alcotest.(check bool) "op" true (op = Wire.Op_acquire);
    Alcotest.(check int) "hint" 40 retry_after_ms
  | _ -> Alcotest.fail "busy JSON did not decode as Busy");
  (match
     decode_resp Wire.Json
       "{\"id\":1,\"op\":\"acquire\",\"ok\":false,\"code\":6,\
        \"error\":\"busy\"}\n"
   with
  | Wire.Frame (Wire.Error { code; _ }, _) ->
    Alcotest.(check int) "no hint field decodes as Error" Wire.err_busy code
  | _ -> Alcotest.fail "hint-less refusal did not decode as Error");
  (* Binary busy: status byte 2, fixed 10-byte payload. *)
  let b = Buffer.create 32 in
  Wire.encode_response Wire.Binary b
    (Wire.Busy { id = 3; op = Wire.Op_acquire; retry_after_ms = 125 });
  match decode_resp Wire.Binary (Buffer.contents b) with
  | Wire.Frame (Wire.Busy { id = 3; retry_after_ms = 125; _ }, _) -> ()
  | _ -> Alcotest.fail "binary busy did not round-trip"

(* ------------------------------------------------------------------ *)
(* Overload state machine: synthetic clock, deterministic *)

let mk () = Overload.create ~queue_bound:100 ()
(* defaults: queue_hi 75, queue_lo 25, dwell 1 s *)

let lvl = Alcotest.testable (Fmt.of_to_string Overload.level_string) ( = )

let test_overload_escalation () =
  let t = mk () in
  Alcotest.check lvl "starts healthy" Overload.Healthy (Overload.level t);
  Alcotest.check lvl "calm stays healthy" Overload.Healthy
    (Overload.observe t ~now:0. ~queue_depth:10);
  (* The first hot observation reacts immediately... *)
  Alcotest.check lvl "first hot observation degrades" Overload.Degraded
    (Overload.observe t ~now:0. ~queue_depth:80);
  (* ...but shedding needs the pressure to last a full dwell. *)
  Alcotest.check lvl "hot but dwell unmet" Overload.Degraded
    (Overload.observe t ~now:0.5 ~queue_depth:80);
  Alcotest.check lvl "sustained hot sheds" Overload.Shedding
    (Overload.observe t ~now:1.1 ~queue_depth:80);
  Alcotest.(check int) "two transitions" 2 (Overload.transitions t)

let test_overload_step_down_per_dwell () =
  let t = mk () in
  ignore (Overload.observe t ~now:0. ~queue_depth:80);
  ignore (Overload.observe t ~now:1.1 ~queue_depth:80);
  Alcotest.check lvl "shedding" Overload.Shedding (Overload.level t);
  (* Calm starts the down-clock; each step costs a full dwell. *)
  Alcotest.check lvl "calm but dwell unmet" Overload.Shedding
    (Overload.observe t ~now:1.3 ~queue_depth:10);
  Alcotest.check lvl "still unmet" Overload.Shedding
    (Overload.observe t ~now:2.0 ~queue_depth:10);
  Alcotest.check lvl "one dwell of calm steps down once" Overload.Degraded
    (Overload.observe t ~now:2.4 ~queue_depth:10);
  Alcotest.check lvl "next step needs its own dwell" Overload.Degraded
    (Overload.observe t ~now:3.0 ~queue_depth:10);
  Alcotest.check lvl "second dwell recovers" Overload.Healthy
    (Overload.observe t ~now:3.5 ~queue_depth:10)

let test_overload_band_freezes () =
  let t = mk () in
  ignore (Overload.observe t ~now:0. ~queue_depth:80);
  (* Between the thresholds neither timer runs: sitting in the band
     forever neither escalates nor recovers. *)
  for i = 1 to 100 do
    Alcotest.check lvl "band freezes the level" Overload.Degraded
      (Overload.observe t ~now:(float_of_int i) ~queue_depth:50)
  done;
  (* And the dwell clocks restarted: a hot sample now must still wait
     a full dwell before shedding. *)
  Alcotest.check lvl "hot after band does not shed yet" Overload.Degraded
    (Overload.observe t ~now:101. ~queue_depth:80)

let test_overload_no_flapping () =
  let t = mk () in
  (* A load flapping across both thresholds every 100 ms: the machine
     must settle in Degraded — never reach Shedding (no dwell of
     continuous heat) and never bounce back to Healthy (no dwell of
     continuous calm).  healthy<->shedding adjacency is impossible. *)
  for i = 0 to 199 do
    let depth = if i mod 2 = 0 then 80 else 10 in
    ignore (Overload.observe t ~now:(0.1 *. float_of_int i) ~queue_depth:depth)
  done;
  Alcotest.check lvl "flapping load settles in degraded" Overload.Degraded
    (Overload.level t);
  Alcotest.(check int) "one transition total" 1 (Overload.transitions t)

let test_overload_latency_pressure () =
  let t = mk () in
  (* Queue shallow but admission latency high: still overload. *)
  Overload.note_latency t 500.;
  Alcotest.check lvl "latency alone degrades" Overload.Degraded
    (Overload.observe t ~now:0. ~queue_depth:0);
  (* The EMA must decay before the machine can see calm again. *)
  for _ = 1 to 50 do
    Overload.note_latency t 1.
  done;
  Alcotest.check lvl "decayed latency recovers after a dwell" Overload.Degraded
    (Overload.observe t ~now:1.0 ~queue_depth:0);
  Alcotest.check lvl "..." Overload.Healthy
    (Overload.observe t ~now:2.1 ~queue_depth:0)

let test_overload_retry_hint () =
  let t = mk () in
  Alcotest.(check int) "floor at zero depth" 5
    (Overload.retry_after_ms t ~queue_depth:0);
  Overload.note_latency t 10.;
  let shallow = Overload.retry_after_ms t ~queue_depth:5 in
  let deep = Overload.retry_after_ms t ~queue_depth:50 in
  Alcotest.(check bool) "hint grows with backlog" true (deep > shallow);
  Alcotest.(check int) "capped" 2000
    (Overload.retry_after_ms t ~queue_depth:1_000_000);
  Alcotest.check_raises "inverted bands rejected"
    (Invalid_argument "Overload.create: queue_lo > queue_hi") (fun () ->
      ignore
        (Overload.create
           ~config:
             {
               (Overload.default_config ~queue_bound:8) with
               queue_lo = 9;
               queue_hi = 3;
             }
           ~queue_bound:8 ()))

let test_level_string_roundtrip () =
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Overload.level_string l) true
        (Overload.level_of_string (Overload.level_string l) = Some l))
    [ Overload.Healthy; Overload.Degraded; Overload.Shedding ];
  Alcotest.(check bool) "unknown is None" true
    (Overload.level_of_string "panicking" = None)

(* ------------------------------------------------------------------ *)
(* End-to-end *)

let fresh_socket_path () =
  let path = Filename.temp_file "renamed_ovl" ".sock" in
  Unix.unlink path;
  path

let start_server cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let s = Server.spawn cfg in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match Client.connect ~path:cfg.Server.socket_path () with
    | Ok c ->
      Client.close c;
      s
    | Error _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server did not come up within 10s"
      else begin
        ignore (Unix.select [] [] [] 0.02);
        wait ()
      end
  in
  wait ()

let stop_server s =
  Server.stop (Server.spawned_handle s);
  match Server.join s with Ok _ -> () | Error _ -> ()

let get cl = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" cl e

let getf cl = function
  | Ok v -> v
  | Error f -> Alcotest.failf "%s: %s" cl (Client.failure_message f)

let stat_int c key = Jsonu.int_ (Jsonu.obj (getf "stats" (Client.stats c))) key

(* Post [n] pipelined acquires on one connection and collect every
   response, sorting them into grants / busy / expired / capacity /
   other. *)
let post_and_collect c ~n ~client ~deadline_ms =
  let acquired = ref []
  and busy = ref 0
  and expired = ref 0
  and cap = ref 0
  and other = ref 0 in
  for _ = 1 to n do
    let id = Client.fresh_id c in
    Client.post c (Wire.Acquire { id; client; token = 0; deadline_ms })
  done;
  (match Client.flush c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "flush: %s" e);
  let got = ref 0 in
  while !got < n do
    match Client.recv c ~timeout:30. with
    | Ok (Some (Wire.Acquired { name; _ })) ->
      incr got;
      acquired := name :: !acquired
    | Ok (Some (Wire.Busy { retry_after_ms; _ })) ->
      incr got;
      if retry_after_ms <= 0 then
        Alcotest.fail "busy response carries no retry hint";
      incr busy
    | Ok (Some (Wire.Error { code; _ })) when code = Wire.err_expired ->
      incr got;
      incr expired
    | Ok (Some (Wire.Error { code; _ })) when code = Wire.err_capacity ->
      incr got;
      incr cap
    | Ok (Some _) ->
      incr got;
      incr other
    | Ok None -> Alcotest.failf "timed out with %d/%d responses" !got n
    | Error e -> Alcotest.failf "recv: %s" e
  done;
  (!acquired, !busy, !expired, !cap, !other)

let test_e2e_busy_shed () =
  let path = fresh_socket_path () in
  (* One shard with a one-deep admission queue: a pipelined burst must
     see most of itself refused as busy, never queued without bound. *)
  let s =
    start_server
      {
        (Server.default_config ~socket_path:path) with
        shards = 1;
        capacity = 512;
        max_queue = 1;
      }
  in
  Fun.protect
    ~finally:(fun () -> stop_server s)
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      let acquired, busy, expired, cap, other =
        post_and_collect c ~n:400 ~client:1 ~deadline_ms:0
      in
      Alcotest.(check int) "no expired without deadlines" 0 expired;
      Alcotest.(check int) "capacity never reached" 0 cap;
      Alcotest.(check int) "no other failures" 0 other;
      Alcotest.(check bool) "some requests served" true (acquired <> []);
      Alcotest.(check bool) "load was shed as busy" true (busy > 0);
      Alcotest.(check int) "accounting closes" 400
        (List.length acquired + busy);
      Alcotest.(check bool) "daemon counted its sheds" true
        (stat_int c "shed_busy" >= busy);
      (* Shedding refused admission; it must not have leaked slots. *)
      List.iter
        (fun name -> getf "release" (Client.release c ~client:1 ~name))
        acquired;
      Alcotest.(check int) "all granted slots returned" 0 (stat_int c "taken");
      Client.close c)

let test_e2e_deadline_expiry () =
  let path = fresh_socket_path () in
  (* Fill one shard's whole namespace, so every further acquire makes
     the worker walk a full — and at this size, slow (~100 us) — probe
     schedule before failing.  Admission then outruns service by two
     orders of magnitude and a millisecond-budget burst must see its
     queue wait blow through the deadline: the tail has to come back
     err_expired, shed before touching the allocator, never served
     late.  The overload machine is given an unreachable dwell so this
     test exercises deadline shedding in isolation (no Busy mixed in
     by the fill phase). *)
  let s =
    start_server
      {
        (Server.default_config ~socket_path:path) with
        shards = 1;
        capacity = 4096;
        max_queue = 16384;
        overload =
          Some
            {
              (Overload.default_config ~queue_bound:16384) with
              dwell_s = 3600.;
            };
      }
  in
  Fun.protect
    ~finally:(fun () -> stop_server s)
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      (* Fill in pipelined batches (each stays well under the
         outbound-buffer bound) until a batch comes back short. *)
      let held = ref [] in
      let full = ref false in
      while not !full do
        let acquired, busy, expired, _cap, other =
          post_and_collect c ~n:1024 ~client:7 ~deadline_ms:0
        in
        Alcotest.(check int) "fill: nothing busy" 0 busy;
        Alcotest.(check int) "fill: nothing expired" 0 expired;
        Alcotest.(check int) "fill: no other failures" 0 other;
        held := acquired @ !held;
        if List.length acquired < 1024 then full := true
      done;
      (* Hand one name back: the burst's head can be served in time,
         everything behind it contends with a saturated allocator. *)
      (match !held with
      | n0 :: rest ->
        getf "release" (Client.release c ~client:7 ~name:n0);
        held := rest
      | [] -> Alcotest.fail "fill acquired nothing");
      let acquired, busy, expired, cap, other =
        post_and_collect c ~n:2000 ~client:7 ~deadline_ms:2
      in
      Alcotest.(check int) "no other failures" 0 other;
      Alcotest.(check int) "no busy below the admission bound" 0 busy;
      Alcotest.(check bool) "the tail expired instead of being served late"
        true (expired > 0);
      Alcotest.(check bool) "at most the one free name was granted" true
        (List.length acquired <= 1);
      Alcotest.(check int) "accounting closes" 2000
        (List.length acquired + cap + expired);
      Alcotest.(check bool) "daemon counted expiries" true
        (stat_int c "shed_expired" >= expired);
      (* Expired work never touched the allocator: hand every hold
         back and the books must balance exactly. *)
      List.iter
        (fun name -> getf "release" (Client.release c ~client:7 ~name))
        (acquired @ !held);
      Alcotest.(check int) "expired requests left no slots behind" 0
        (stat_int c "taken");
      Client.close c)

let test_e2e_slow_client_disconnect () =
  let path = fresh_socket_path () in
  (* A tiny outbound bound and a short stall deadline: a client that
     stops reading must be paused, then disconnected, and its held
     names auto-released by the disconnect drain. *)
  let s =
    start_server
      {
        (Server.default_config ~socket_path:path) with
        shards = 1;
        max_out_bytes = 4096;
        stall_s = 0.3;
      }
  in
  Fun.protect
    ~finally:(fun () -> stop_server s)
    (fun () ->
      let slow = get "connect" (Client.connect ~path ()) in
      ignore (getf "acquire" (Client.acquire slow ~client:1));
      (* Ask for far more reply bytes than bound + socket buffers hold,
         and never read any of it.  post flushes opportunistically and
         never blocks, so the generator side cannot deadlock. *)
      for _ = 1 to 5000 do
        Client.post slow (Wire.Stats { id = Client.fresh_id slow })
      done;
      let watcher = get "connect" (Client.connect ~path ()) in
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait () =
        if stat_int watcher "stalled_conns" >= 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "stalled connection was never disconnected"
        else begin
          ignore (Unix.select [] [] [] 0.05);
          wait ()
        end
      in
      wait ();
      (* The disconnect drain returns the dead client's slot. *)
      let rec wait_clean () =
        if stat_int watcher "taken" = 0 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.failf "stalled client's slot never reclaimed (%d taken)"
            (stat_int watcher "taken")
        else begin
          ignore (Unix.select [] [] [] 0.05);
          wait_clean ()
        end
      in
      wait_clean ();
      (* The healthy client was never collateral damage. *)
      ignore (getf "stats" (Client.stats watcher));
      Client.close watcher;
      Client.close slow)

let test_e2e_stats_overload_snapshot () =
  let path = fresh_socket_path () in
  let s = start_server (Server.default_config ~socket_path:path) in
  Fun.protect
    ~finally:(fun () -> stop_server s)
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      let stats = Jsonu.obj (getf "stats" (Client.stats c)) in
      let ov =
        match List.assoc_opt "overload" stats with
        | Some o -> Jsonu.obj o
        | None -> Alcotest.fail "stats reply carries no overload object"
      in
      Alcotest.(check string) "idle daemon is healthy" "healthy"
        (Jsonu.str ov "level");
      Alcotest.(check int) "bound surfaced" 1024 (Jsonu.int_ ov "queue_bound");
      Alcotest.(check bool) "hint present" true
        (Jsonu.int_ ov "retry_after_ms" >= 1);
      Client.close c)

(* Durable client: a busy refusal is retried on the same link after the
   hint, and the logical acquire still lands exactly once. *)
let test_e2e_durable_busy_retry () =
  let path = fresh_socket_path () in
  let s =
    start_server
      {
        (Server.default_config ~socket_path:path) with
        shards = 1;
        capacity = 512;
        max_queue = 1;
      }
  in
  Fun.protect
    ~finally:(fun () -> stop_server s)
    (fun () ->
      (* Fill the one-deep queue from a firehose connection so the
         durable client's first attempts race real congestion. *)
      let hose = get "connect" (Client.connect ~path ()) in
      for _ = 1 to 200 do
        Client.post hose
          (Wire.Acquire
             { id = Client.fresh_id hose; client = 9; token = 0; deadline_ms = 0 })
      done;
      let d = Client.Durable.create ~path ~seed:42 () in
      let name = getf "durable acquire" (Client.Durable.acquire d ~client:1) in
      getf "durable release" (Client.Durable.release d ~client:1 ~name);
      Client.Durable.close d;
      Client.close hose)

(* ------------------------------------------------------------------ *)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "overload.wire",
      [
        tc "legacy acquire compatibility" `Quick test_legacy_acquire_decodes;
        tc "busy vs error decode" `Quick test_busy_vs_error_decode;
      ] );
    ( "overload.machine",
      [
        tc "escalation with dwell" `Quick test_overload_escalation;
        tc "step down per dwell" `Quick test_overload_step_down_per_dwell;
        tc "hysteresis band freezes" `Quick test_overload_band_freezes;
        tc "no flapping" `Quick test_overload_no_flapping;
        tc "latency pressure" `Quick test_overload_latency_pressure;
        tc "retry hint" `Quick test_overload_retry_hint;
        tc "level strings" `Quick test_level_string_roundtrip;
      ] );
    ( "overload.e2e",
      [
        tc "bounded queue sheds busy" `Quick test_e2e_busy_shed;
        tc "expired deadlines are shed" `Quick test_e2e_deadline_expiry;
        tc "slow client disconnected" `Quick test_e2e_slow_client_disconnect;
        tc "stats overload snapshot" `Quick test_e2e_stats_overload_snapshot;
        tc "durable client rides out busy" `Quick test_e2e_durable_busy_retry;
      ] );
  ]
