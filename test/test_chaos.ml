(* Tests for the chaos layer: plan derivation and record/replay
   determinism, hook composition, crash/pause injection on the real
   multicore substrate, the invariant monitor (including leaked-slot
   accounting for after-win crashes), and the committed broken-invariant
   fixture. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let mk ?(seed = 42) ?(procs = 32) ?(domains = 1) ?(crash_frac = 0.5)
    ?(pause_frac = 0.25) ?name_bound () =
  match Chaos.Algos.make "rebatching" ~n:procs () with
  | Error e -> Alcotest.fail e
  | Ok (algo, capacity) ->
    ( Chaos.Fault_plan.make ~seed ~procs ~domains ~algo:"rebatching" ~capacity
        ?name_bound ~crash_frac ~pause_frac (),
      algo )

(* ------------------------------------------------------------------ *)
(* Fault_plan *)

let test_plan_shape () =
  let plan, _ = mk ~procs:40 ~crash_frac:0.5 ~pause_frac:0.25 () in
  checki "armed crashes = floor(frac*procs)" 20
    (List.length plan.Chaos.Fault_plan.crashes);
  checki "armed pauses = floor(frac*procs)" 10
    (List.length plan.Chaos.Fault_plan.pauses);
  let pids = List.map (fun (c : Chaos.Fault_plan.crash) -> c.pid)
      plan.Chaos.Fault_plan.crashes
  in
  checkb "crash pids sorted distinct" true
    (List.sort_uniq compare pids = pids);
  List.iter
    (fun (c : Chaos.Fault_plan.crash) ->
      checkb "crash pid in range" true (c.pid >= 0 && c.pid < 40);
      checkb "crash op in 1..3" true (c.op >= 1 && c.op <= 3))
    plan.Chaos.Fault_plan.crashes;
  List.iter
    (fun (p : Chaos.Fault_plan.pause) ->
      checkb "pause op in 1..4" true (p.op >= 1 && p.op <= 4);
      checkb "pause spins bounded" true (p.spins >= 1 && p.spins <= 512))
    plan.Chaos.Fault_plan.pauses

let test_plan_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Chaos.Fault_plan.make ~seed:1 ~procs:0 ~domains:1 ~algo:"x" ~capacity:1 ());
  expect_invalid (fun () ->
      Chaos.Fault_plan.make ~seed:1 ~procs:1 ~domains:1 ~algo:"x" ~capacity:1
        ~crash_frac:1.5 ());
  expect_invalid (fun () ->
      Chaos.Fault_plan.make ~seed:1 ~procs:1 ~domains:1 ~algo:"x" ~capacity:1
        ~name_bound:0 ())

(* Same (seed, procs, domains, knobs) -> identical plan, identical JSON;
   and the recorded form replays byte-identically through the parser. *)
let qcheck_plan_deterministic =
  QCheck.Test.make ~name:"plan derivation and JSON round-trip deterministic"
    ~count:200
    QCheck.(
      quad (int_range 0 1_000_000_000) (int_range 1 96) (int_range 1 4)
        (pair (int_range 0 4) (int_range 0 4)))
    (fun (seed, procs, domains, (c4, p4)) ->
      let crash_frac = float_of_int c4 /. 4. in
      let pause_frac = float_of_int p4 /. 4. in
      let make () =
        Chaos.Fault_plan.make ~seed ~procs ~domains ~algo:"rebatching"
          ~capacity:(2 * procs) ~crash_frac ~pause_frac ()
      in
      let a = make () and b = make () in
      let ja = Chaos.Fault_plan.to_json a in
      Chaos.Fault_plan.equal a b
      && ja = Chaos.Fault_plan.to_json b
      &&
      match Chaos.Fault_plan.of_json ja with
      | Error _ -> false
      | Ok c -> Chaos.Fault_plan.equal a c && Chaos.Fault_plan.to_json c = ja)

let test_plan_save_load () =
  let plan, _ = mk () in
  let file = Filename.temp_file "chaos_plan" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Chaos.Fault_plan.save ~file plan;
      match Chaos.Fault_plan.load ~file with
      | Error e -> Alcotest.fail e
      | Ok p ->
        checkb "load inverts save" true (Chaos.Fault_plan.equal plan p));
  match Chaos.Fault_plan.of_json "{\"kind\":\"other\"}" with
  | Ok _ -> Alcotest.fail "wrong kind accepted"
  | Error _ -> ()

(* Plan derivation must not perturb the per-process coin streams: the
   plan draws from child (-1) of the root, the runner hands child pid>=0
   to each process. *)
let test_plan_stream_disjoint () =
  let root = Prng.Splitmix.of_int 42 in
  let p0 = Prng.Splitmix.split_at root 0 in
  let plan_rng = Prng.Splitmix.split_at root (-1) in
  checkb "child 0 and child -1 differ" true
    (Prng.Splitmix.int p0 1_000_000 <> Prng.Splitmix.int plan_rng 1_000_000)

(* ------------------------------------------------------------------ *)
(* Hook composition *)

let test_compose_hooks_order () =
  let trace = ref [] in
  let mark s = trace := s :: !trace in
  let layer name =
    {
      Shm.Domain_runner.null_hooks with
      tas =
        (fun ~domain:_ ~pid:_ ~loc:_ f ->
          mark (name ^ "-enter");
          let r = f () in
          mark (name ^ "-exit");
          r);
    }
  in
  let composed =
    Shm.Domain_runner.compose_hooks (layer "outer") (layer "inner")
  in
  let won =
    composed.Shm.Domain_runner.tas ~domain:0 ~pid:0 ~loc:0 (fun () ->
        mark "op";
        true)
  in
  checkb "thunk result passes through" true won;
  Alcotest.(check (list string))
    "outer brackets inner brackets op"
    [ "outer-enter"; "inner-enter"; "op"; "inner-exit"; "outer-exit" ]
    (List.rev !trace)

let test_compose_outer_crash_skips_inner () =
  let inner_saw = ref 0 in
  let outer =
    {
      Shm.Domain_runner.null_hooks with
      tas = (fun ~domain:_ ~pid:_ ~loc:_ _ -> raise Chaos.Chaos_runner.Crashed);
    }
  in
  let inner =
    {
      Shm.Domain_runner.null_hooks with
      tas =
        (fun ~domain:_ ~pid:_ ~loc:_ f ->
          incr inner_saw;
          f ());
    }
  in
  let composed = Shm.Domain_runner.compose_hooks outer inner in
  (match
     composed.Shm.Domain_runner.tas ~domain:0 ~pid:0 ~loc:0 (fun () -> true)
   with
  | exception Chaos.Chaos_runner.Crashed -> ()
  | _ -> Alcotest.fail "outer crash did not propagate");
  checki "a crash before the op never reaches the inner monitor" 0 !inner_saw

(* ------------------------------------------------------------------ *)
(* Chaos_runner *)

let run_plan_exn ?certify plan =
  match Chaos.Chaos_runner.run_plan ?certify plan with
  | Ok o -> o
  | Error e -> Alcotest.fail e

(* At domains=1 execution is sequential: the fired faults and the whole
   verdict artifact are byte-identical across runs. *)
let test_fired_deterministic_domains1 () =
  let plan, _ = mk ~seed:7 ~procs:48 ~domains:1 () in
  let a = run_plan_exn plan and b = run_plan_exn plan in
  checks "verdict JSON byte-identical at domains=1"
    (Chaos.Chaos_runner.verdict_to_json a.Chaos.Chaos_runner.verdict)
    (Chaos.Chaos_runner.verdict_to_json b.Chaos.Chaos_runner.verdict);
  checkb "invariants hold" true
    (Chaos.Chaos_runner.ok a.Chaos.Chaos_runner.verdict)

let test_invariants_multicore () =
  List.iter
    (fun crash_frac ->
      for seed = 0 to 3 do
        let plan, algo = mk ~seed ~procs:32 ~domains:3 ~crash_frac () in
        let o = Chaos.Chaos_runner.run ~plan ~algo () in
        let v = o.Chaos.Chaos_runner.verdict in
        if not (Chaos.Chaos_runner.ok v) then
          Alcotest.failf "seed=%d frac=%g violations: %s" seed crash_frac
            (String.concat ", " v.Chaos.Chaos_runner.violations)
      done)
    [ 0.1; 0.5; 0.9 ]

(* The all-but-one edge: only survivor progress is non-vacuous. *)
let test_all_but_one_crashed () =
  let procs = 16 in
  let crash_frac = float_of_int (procs - 1) /. float_of_int procs in
  let plan, algo = mk ~procs ~domains:2 ~crash_frac () in
  checki "armed = procs-1" (procs - 1)
    (List.length plan.Chaos.Fault_plan.crashes);
  let o = Chaos.Chaos_runner.run ~plan ~algo () in
  let v = o.Chaos.Chaos_runner.verdict in
  checkb "invariants hold at (n-1)/n" true (Chaos.Chaos_runner.ok v);
  checkb "at least one survivor" true (v.Chaos.Chaos_runner.survivors >= 1)

(* Every leaked slot is accounted to a fired after-win crash, and an
   after-win crash really leaks: the slot is taken, no name records. *)
let test_after_win_leak_accounting () =
  let saw_leak = ref false in
  for seed = 0 to 7 do
    let plan, _ = mk ~seed ~procs:32 ~domains:1 ~crash_frac:1.0 () in
    let o = run_plan_exn plan in
    let v = o.Chaos.Chaos_runner.verdict in
    checkb "invariants hold (incl. leak accounting)" true
      (Chaos.Chaos_runner.ok v);
    let after_wins =
      List.length
        (List.filter
           (fun (f : Chaos.Chaos_runner.fired) ->
             f.point = Chaos.Fault_plan.After_win)
           v.Chaos.Chaos_runner.fired)
    in
    checki "leaked = fired after-win crashes" after_wins
      v.Chaos.Chaos_runner.leaked;
    if after_wins > 0 then saw_leak := true
  done;
  checkb "sweep actually exercised an after-win leak" true !saw_leak

(* Crashed processes record no name; survivors all do. *)
let test_crash_semantics () =
  let plan, _ = mk ~seed:3 ~procs:24 ~domains:1 ~crash_frac:0.5 () in
  let o = run_plan_exn plan in
  let v = o.Chaos.Chaos_runner.verdict in
  let names = o.Chaos.Chaos_runner.result.Shm.Domain_runner.names in
  List.iter
    (fun (f : Chaos.Chaos_runner.fired) ->
      checkb "crashed pid has no name" true (names.(f.pid) = None))
    v.Chaos.Chaos_runner.fired;
  checki "survivors + crashed = procs" 24
    (v.Chaos.Chaos_runner.survivors + List.length v.Chaos.Chaos_runner.fired)

(* Chaos injection composes with happens-before certification: one
   execution, simultaneously fault-injected and certified race-free. *)
let test_certify_composed () =
  let plan, _ = mk ~seed:5 ~procs:24 ~domains:3 ~crash_frac:0.5 () in
  let o = run_plan_exn ~certify:true plan in
  (match o.Chaos.Chaos_runner.races with
  | None -> Alcotest.fail "certify did not attach the monitor"
  | Some [] -> ()
  | Some races ->
    Alcotest.failf "%d race(s) under chaos" (List.length races));
  checkb "invariants hold under certification" true
    (Chaos.Chaos_runner.ok o.Chaos.Chaos_runner.verdict)

let test_run_plan_capacity_mismatch () =
  let plan, _ = mk () in
  let forged = { plan with Chaos.Fault_plan.capacity = 7 } in
  match Chaos.Chaos_runner.run_plan forged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "capacity mismatch accepted"

(* The committed broken-invariant fixture: capacity is fine, but the
   recorded name_bound is deliberately too small — replay must convict
   it with exactly the namespace-bound violation. *)
let test_broken_bound_fixture () =
  match Chaos.Fault_plan.load ~file:"fixtures/chaos_broken_bound.json" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    let o = run_plan_exn plan in
    let v = o.Chaos.Chaos_runner.verdict in
    checkb "fixture violates" false (Chaos.Chaos_runner.ok v);
    Alcotest.(check (list string))
      "exactly the namespace-bound violation" [ "namespace-bound" ]
      v.Chaos.Chaos_runner.violations

let test_verdict_summary_roundtrip () =
  let plan, _ = mk ~seed:9 () in
  let o = run_plan_exn plan in
  let json =
    Chaos.Chaos_runner.verdict_to_json o.Chaos.Chaos_runner.verdict
  in
  match Chaos.Chaos_runner.summary_of_json json with
  | Error e -> Alcotest.fail e
  | Ok s ->
    checki "summary seed" 9 s.Chaos.Chaos_runner.seed;
    checkb "summary ok" true s.Chaos.Chaos_runner.ok;
    checki "summary violations" 0 (List.length s.Chaos.Chaos_runner.violations)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "chaos",
      [
        Alcotest.test_case "plan shape" `Quick test_plan_shape;
        Alcotest.test_case "plan validation" `Quick test_plan_validation;
        QCheck_alcotest.to_alcotest qcheck_plan_deterministic;
        Alcotest.test_case "plan save/load" `Quick test_plan_save_load;
        Alcotest.test_case "plan stream disjoint" `Quick
          test_plan_stream_disjoint;
        Alcotest.test_case "compose_hooks order" `Quick
          test_compose_hooks_order;
        Alcotest.test_case "compose outer crash skips inner" `Quick
          test_compose_outer_crash_skips_inner;
        Alcotest.test_case "fired deterministic at domains=1" `Quick
          test_fired_deterministic_domains1;
        Alcotest.test_case "invariants across crash fractions" `Slow
          test_invariants_multicore;
        Alcotest.test_case "all-but-one crashed edge" `Quick
          test_all_but_one_crashed;
        Alcotest.test_case "after-win leak accounting" `Quick
          test_after_win_leak_accounting;
        Alcotest.test_case "crash semantics" `Quick test_crash_semantics;
        Alcotest.test_case "certify composes with chaos" `Slow
          test_certify_composed;
        Alcotest.test_case "run_plan capacity mismatch" `Quick
          test_run_plan_capacity_mismatch;
        Alcotest.test_case "broken-bound fixture convicts" `Quick
          test_broken_bound_fixture;
        Alcotest.test_case "verdict summary round-trip" `Quick
          test_verdict_summary_roundtrip;
      ] );
  ]
