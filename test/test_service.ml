(* The renaming service: wire codec (round-trip + adversarial
   truncation), session framing, the sharded allocator, the HDR latency
   histogram, the bench artifact, and end-to-end daemon behavior
   (sync ops, JSON fallback, graceful SIGTERM drain, open-loop load). *)

open Service

(* ------------------------------------------------------------------ *)
(* Codec helpers and generators *)

let encode_req mode r =
  let b = Buffer.create 64 in
  Wire.encode_request mode b r;
  Buffer.contents b

let encode_resp mode r =
  let b = Buffer.create 64 in
  Wire.encode_response mode b r;
  Buffer.contents b

let decode_req mode s =
  Wire.decode_request mode (Bytes.of_string s) ~pos:0 ~len:(String.length s)

let decode_resp mode s =
  Wire.decode_response mode (Bytes.of_string s) ~pos:0 ~len:(String.length s)

let show_req = function
  | Wire.Acquire { id; client; token; deadline_ms } ->
    Printf.sprintf "Acquire{id=%d;client=%d;token=%d;deadline_ms=%d}" id
      client token deadline_ms
  | Wire.Release { id; client; name } ->
    Printf.sprintf "Release{id=%d;client=%d;name=%d}" id client name
  | Wire.Renew { id; client } -> Printf.sprintf "Renew{id=%d;client=%d}" id client
  | Wire.Stats { id } -> Printf.sprintf "Stats{id=%d}" id
  | Wire.Shutdown { id } -> Printf.sprintf "Shutdown{id=%d}" id

let show_resp = function
  | Wire.Acquired { id; name; lease_ms } ->
    Printf.sprintf "Acquired{id=%d;name=%d;lease_ms=%d}" id name lease_ms
  | Wire.Released { id } -> Printf.sprintf "Released{id=%d}" id
  | Wire.Renewed { id; count } -> Printf.sprintf "Renewed{id=%d;count=%d}" id count
  | Wire.Stats_reply { id; stats } ->
    Printf.sprintf "Stats_reply{id=%d;stats=%s}" id (Jsonu.to_string stats)
  | Wire.Shutting_down { id } -> Printf.sprintf "Shutting_down{id=%d}" id
  | Wire.Error { id; op; code; msg } ->
    Printf.sprintf "Error{id=%d;op=%s;code=%d;msg=%S}" id (Wire.op_string op)
      code msg
  | Wire.Busy { id; op; retry_after_ms } ->
    Printf.sprintf "Busy{id=%d;op=%s;retry_after_ms=%d}" id
      (Wire.op_string op) retry_after_ms

let u32_gen = QCheck.Gen.int_range 0 ((1 lsl 32) - 1)

let req_gen =
  let open QCheck.Gen in
  oneof
    [
      map
        (fun ((id, client), (token, deadline_ms)) ->
          Wire.Acquire { id; client; token; deadline_ms })
        (pair (pair u32_gen u32_gen) (pair u32_gen u32_gen));
      map3
        (fun id client name -> Wire.Release { id; client; name })
        u32_gen u32_gen u32_gen;
      map2 (fun id client -> Wire.Renew { id; client }) u32_gen u32_gen;
      map (fun id -> Wire.Stats { id }) u32_gen;
      map (fun id -> Wire.Shutdown { id }) u32_gen;
    ]

let msg_gen =
  QCheck.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 80))

let op_gen =
  QCheck.Gen.oneofl
    [
      Wire.Op_acquire; Wire.Op_release; Wire.Op_renew; Wire.Op_stats;
      Wire.Op_shutdown;
    ]

let resp_gen =
  let open QCheck.Gen in
  oneof
    [
      map3
        (fun id name lease_ms -> Wire.Acquired { id; name; lease_ms })
        u32_gen u32_gen u32_gen;
      map (fun id -> Wire.Released { id }) u32_gen;
      map2 (fun id count -> Wire.Renewed { id; count }) u32_gen u32_gen;
      map2
        (fun id taken ->
          Wire.Stats_reply
            { id; stats = Jsonu.Obj [ ("taken", Jsonu.Int taken) ] })
        u32_gen (int_range 0 1000);
      map (fun id -> Wire.Shutting_down { id }) u32_gen;
      map (fun ((id, op), (code, msg)) -> Wire.Error { id; op; code; msg })
        (pair (pair u32_gen op_gen) (pair (int_range 0 255) msg_gen));
      map
        (fun ((id, op), retry_after_ms) ->
          Wire.Busy { id; op; retry_after_ms })
        (pair (pair u32_gen op_gen) u32_gen);
    ]

let req_arb = QCheck.make ~print:show_req req_gen
let resp_arb = QCheck.make ~print:show_resp resp_gen
let mode_arb = QCheck.make (QCheck.Gen.oneofl [ Wire.Binary; Wire.Json ])

(* ------------------------------------------------------------------ *)
(* Wire: round-trips *)

let qcheck_req_roundtrip =
  QCheck.Test.make ~name:"request round-trips in both modes" ~count:500
    (QCheck.pair mode_arb req_arb)
    (fun (mode, r) ->
      let s = encode_req mode r in
      match decode_req mode s with
      | Wire.Frame (r', consumed) -> r' = r && consumed = String.length s
      | _ -> false)

let qcheck_resp_roundtrip =
  QCheck.Test.make ~name:"response round-trips in both modes" ~count:500
    (QCheck.pair mode_arb resp_arb)
    (fun (mode, r) ->
      let s = encode_resp mode r in
      match decode_resp mode s with
      | Wire.Frame (r', consumed) -> r' = r && consumed = String.length s
      | _ -> false)

(* Every strict prefix of a valid frame must yield Need_more: a partial
   read is normal, never corruption. *)
let qcheck_req_truncation =
  QCheck.Test.make ~name:"every strict request prefix is Need_more" ~count:200
    (QCheck.pair mode_arb req_arb)
    (fun (mode, r) ->
      let s = encode_req mode r in
      let ok = ref true in
      for cut = 0 to String.length s - 1 do
        match decode_req mode (String.sub s 0 cut) with
        | Wire.Need_more -> ()
        | _ -> ok := false
      done;
      !ok)

let qcheck_resp_truncation =
  QCheck.Test.make ~name:"every strict response prefix is Need_more" ~count:200
    (QCheck.pair mode_arb resp_arb)
    (fun (mode, r) ->
      let s = encode_resp mode r in
      let ok = ref true in
      for cut = 0 to String.length s - 1 do
        match decode_resp mode (String.sub s 0 cut) with
        | Wire.Need_more -> ()
        | _ -> ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Wire: adversarial input *)

let corrupt = function Wire.Corrupt _ -> true | _ -> false

let test_oversized_binary () =
  (* A length prefix beyond max_frame must be rejected before any
     allocation, even though the payload never arrives. *)
  let b = Buffer.create 8 in
  Buffer.add_string b "\x00\x01\x00\x01";
  (* 65537 *)
  Alcotest.(check bool)
    "oversized length prefix is Corrupt" true
    (corrupt (decode_req Wire.Binary (Buffer.contents b)));
  Alcotest.(check bool)
    "oversized response prefix is Corrupt" true
    (corrupt (decode_resp Wire.Binary (Buffer.contents b)))

let test_oversized_json () =
  let line = String.make (Wire.max_frame + 10) 'x' in
  Alcotest.(check bool)
    "overlong JSON line without newline is Corrupt" true
    (corrupt (decode_req Wire.Json line))

let test_unknown_opcode () =
  let b = Buffer.create 16 in
  Buffer.add_string b "\x00\x00\x00\x05";
  Buffer.add_string b "\x09\x00\x00\x00\x01";
  Alcotest.(check bool)
    "unknown opcode is Corrupt" true
    (corrupt (decode_req Wire.Binary (Buffer.contents b)))

let test_bad_payload_length () =
  (* Valid opcode (acquire = 1) but a stats-sized payload. *)
  let b = Buffer.create 16 in
  Buffer.add_string b "\x00\x00\x00\x05";
  Buffer.add_string b "\x01\x00\x00\x00\x01";
  Alcotest.(check bool)
    "wrong payload length for opcode is Corrupt" true
    (corrupt (decode_req Wire.Binary (Buffer.contents b)));
  Alcotest.(check bool)
    "empty frame is Corrupt" true
    (corrupt (decode_req Wire.Binary "\x00\x00\x00\x00"))

let test_bad_json_line () =
  Alcotest.(check bool)
    "non-JSON line is Corrupt" true
    (corrupt (decode_req Wire.Json "not json at all\n"));
  Alcotest.(check bool)
    "JSON with unknown op is Corrupt" true
    (corrupt (decode_req Wire.Json "{\"id\":1,\"op\":\"frobnicate\"}\n"));
  Alcotest.(check bool)
    "JSON with missing field is Corrupt" true
    (corrupt (decode_req Wire.Json "{\"op\":\"acquire\"}\n"))

(* ------------------------------------------------------------------ *)
(* Session: framing over arbitrary byte chops *)

let feed_string sess s =
  Session.feed sess ~buf:(Bytes.of_string s) ~len:(String.length s)

let reqs_equal = Alcotest.(check (list string))

let test_session_byte_at_a_time mode () =
  let reqs =
    [
      Wire.Acquire { id = 1; client = 7; token = 0; deadline_ms = 0 };
      Wire.Release { id = 2; client = 7; name = 42 };
      Wire.Renew { id = 3; client = 7 };
      Wire.Stats { id = 4 };
      Wire.Shutdown { id = 5 };
    ]
  in
  let stream = String.concat "" (List.map (encode_req mode) reqs) in
  let sess = Session.create () in
  let out = ref [] in
  String.iter
    (fun c ->
      match feed_string sess (String.make 1 c) with
      | Ok rs -> out := !out @ rs
      | Error e -> Alcotest.failf "unexpected corruption: %s" e)
    stream;
  reqs_equal "all frames recovered byte-at-a-time"
    (List.map show_req reqs)
    (List.map show_req !out);
  Alcotest.(check int) "no residue buffered" 0 (Session.buffered sess)

let test_session_many_per_feed () =
  let reqs =
    List.init 50 (fun i ->
        Wire.Acquire { id = i; client = i; token = 0; deadline_ms = 0 })
  in
  let stream = String.concat "" (List.map (encode_req Wire.Binary) reqs) in
  let sess = Session.create () in
  match feed_string sess stream with
  | Error e -> Alcotest.failf "unexpected corruption: %s" e
  | Ok rs ->
    reqs_equal "one feed drains every complete frame"
      (List.map show_req reqs) (List.map show_req rs)

let test_session_mode_detection () =
  let s1 = Session.create () in
  ignore (feed_string s1 (encode_req Wire.Binary (Wire.Stats { id = 1 })));
  Alcotest.(check bool)
    "binary first byte selects Binary" true
    (Session.mode s1 = Some Wire.Binary);
  let s2 = Session.create () in
  ignore (feed_string s2 "{");
  Alcotest.(check bool)
    "'{' selects Json" true
    (Session.mode s2 = Some Wire.Json)

let test_session_corrupt_latch () =
  let sess = Session.create () in
  (match feed_string sess "\x00\x01\x00\x01" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  (* Once corrupt, always corrupt — even for bytes that would parse. *)
  match feed_string sess (encode_req Wire.Binary (Wire.Stats { id = 1 })) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "session recovered from corruption"

let test_session_ledger () =
  let sess = Session.create () in
  Session.note_acquired sess 5;
  Session.note_acquired sess 9;
  Alcotest.(check bool) "holds 5" true (Session.holds sess 5);
  Alcotest.(check int) "held count" 2 (Session.held_count sess);
  Session.note_released sess 5;
  Alcotest.(check bool) "5 released" false (Session.holds sess 5);
  Alcotest.(check (list int)) "ledger content" [ 9 ] (Session.held sess)

(* ------------------------------------------------------------------ *)
(* Hdr histogram *)

let qcheck_hdr_relative_error =
  QCheck.Test.make ~name:"hdr quantile error is within 1/64" ~count:500
    QCheck.(int_range 0 (1 lsl 40))
    (fun v ->
      let h = Stats.Hdr.create () in
      Stats.Hdr.record h v;
      let q = Stats.Hdr.quantile h 1.0 in
      q >= v && float_of_int q <= (float_of_int v *. (1. +. (1. /. 64.))) +. 1.)

let qcheck_hdr_quantiles_ordered =
  QCheck.Test.make ~name:"hdr quantiles are monotone" ~count:100
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 1_000_000)))
    (fun (_, vs) ->
      let h = Stats.Hdr.create () in
      List.iter (Stats.Hdr.record h) vs;
      let q = Stats.Hdr.quantile h in
      q 0.5 <= q 0.99 && q 0.99 <= q 0.999 && q 0.999 <= q 1.0)

let test_hdr_exact () =
  let h = Stats.Hdr.create () in
  for v = 1 to 1000 do
    Stats.Hdr.record h v
  done;
  Alcotest.(check int) "count" 1000 (Stats.Hdr.count h);
  Alcotest.(check int) "min" 1 (Stats.Hdr.min_value h);
  Alcotest.(check int) "max" 1000 (Stats.Hdr.max_value h);
  Alcotest.(check (float 0.001)) "mean" 500.5 (Stats.Hdr.mean h);
  let p50 = Stats.Hdr.quantile h 0.5 in
  if p50 < 500 || p50 > 508 then Alcotest.failf "p50 = %d" p50;
  (* Sub-64 values are exact. *)
  let h2 = Stats.Hdr.create () in
  List.iter (Stats.Hdr.record h2) [ 3; 3; 7 ];
  Alcotest.(check int) "exact small median" 3 (Stats.Hdr.quantile h2 0.5)

let test_hdr_merge () =
  let a = Stats.Hdr.create () and b = Stats.Hdr.create () in
  for v = 1 to 100 do
    Stats.Hdr.record a v
  done;
  for v = 101 to 200 do
    Stats.Hdr.record b v
  done;
  Stats.Hdr.merge ~into:a b;
  Alcotest.(check int) "merged count" 200 (Stats.Hdr.count a);
  Alcotest.(check int) "merged max" 200 (Stats.Hdr.max_value a);
  Alcotest.(check (float 0.001)) "merged mean" 100.5 (Stats.Hdr.mean a)

let test_hdr_edges () =
  let h = Stats.Hdr.create () in
  Stats.Hdr.record h (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Stats.Hdr.quantile h 1.0);
  Alcotest.(check int) "empty quantile" 0 (Stats.Hdr.quantile (Stats.Hdr.create ()) 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Hdr.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.Hdr.quantile h 1.5))

(* ------------------------------------------------------------------ *)
(* Shard pool *)

let test_shard_uniqueness () =
  let p = Shard.create ~shards:3 ~capacity:64 ~seed:7 () in
  let seen = Hashtbl.create 128 in
  let granted = ref [] in
  for round = 1 to 40 do
    ignore round;
    for s = 0 to Shard.shards p - 1 do
      match Shard.acquire p ~shard:s ~client:s with
      | None -> Alcotest.fail "acquire failed below capacity"
      | Some name ->
        if Hashtbl.mem seen name then
          Alcotest.failf "name %d granted twice" name;
        Hashtbl.replace seen name ();
        (match Shard.shard_of_name p name with
        | Some s' when s' = s -> ()
        | _ -> Alcotest.failf "name %d does not map back to shard %d" name s);
        granted := name :: !granted
    done
  done;
  Alcotest.(check int) "taken = granted" 120 (Shard.taken_count p);
  Alcotest.(check int) "no leak while held" 0 (Shard.leaked p ~held:120);
  List.iter (fun name -> Shard.release p ~name) !granted;
  Alcotest.(check int) "all cells returned" 0 (Shard.taken_count p);
  Alcotest.(check int) "acquire counter" 120 (Shard.acquires p);
  Alcotest.(check int) "release counter" 120 (Shard.releases p)

let test_shard_exhaustion () =
  let p = Shard.create ~shards:1 ~capacity:4 ~seed:3 () in
  let m = Shard.per_shard_namespace p in
  let successes = ref 0 in
  (try
     for _ = 1 to 1000 do
       match Shard.acquire p ~shard:0 ~client:0 with
       | Some _ -> incr successes
       | None -> raise Exit
     done
   with Exit -> ());
  if !successes > m then
    Alcotest.failf "%d acquires from a namespace of %d" !successes m;
  Alcotest.(check bool) "exhaustion recorded" true (Shard.failures p > 0)

let test_shard_routing () =
  let p = Shard.create ~shards:4 ~capacity:16 ~seed:1 () in
  let counts = Array.make 4 0 in
  for client = 0 to 399 do
    let s = Shard.shard_of_client p client in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
    Alcotest.(check int) "routing is stable" s (Shard.shard_of_client p client);
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun i c -> if c = 0 then Alcotest.failf "shard %d never routed to" i)
    counts;
  Alcotest.(check bool) "out-of-range name" true
    (Shard.shard_of_name p (Shard.namespace p) = None);
  Alcotest.(check bool) "negative name" true (Shard.shard_of_name p (-1) = None)

(* ------------------------------------------------------------------ *)
(* Bench artifact *)

let sample_artifact () =
  {
    Service_bench.shards = 2;
    capacity = 128;
    conns = 4;
    clients = 64;
    rate = 1000.;
    duration_s = 5.;
    seed = 1;
    wall_s = 5.1;
    offered = 5000;
    acquired = 5000;
    acquire_failures = 0;
    released = 5000;
    errors = 0;
    timeouts = 0;
    violations = 0;
    leaked = 0;
    reconnects = 0;
    throughput = 1960.;
    lat_p50 = 120_000;
    lat_p99 = 900_000;
    lat_p999 = 2_500_000;
    lat_mean = 180_000.;
    lat_max = 3_000_000;
  }

let test_artifact_roundtrip () =
  let a = sample_artifact () in
  let a' = Service_bench.of_json (Service_bench.to_json a) in
  Alcotest.(check bool) "artifact round-trips" true (a = a');
  (* Parse through the canonical string form too. *)
  match Jsonu.parse (Jsonu.to_string (Service_bench.to_json a)) with
  | None -> Alcotest.fail "canonical form does not parse"
  | Some j ->
    Alcotest.(check bool) "string round-trip" true (Service_bench.of_json j = a)

let test_artifact_schema_rejects () =
  Alcotest.check_raises "wrong kind" Jsonu.Malformed (fun () ->
      ignore
        (Service_bench.of_json
           (Jsonu.Obj [ ("kind", Jsonu.Str "bench"); ("schema", Jsonu.Int 1) ])))

let test_artifact_check () =
  let base = sample_artifact () in
  Alcotest.(check (list string))
    "clean run passes" []
    (Service_bench.check ~threshold:0.5 ~baseline:base ~current:base);
  let bad = { base with violations = 1; leaked = 2; errors = 3 } in
  Alcotest.(check int) "audit failures are findings" 3
    (List.length (Service_bench.check ~threshold:0.5 ~baseline:base ~current:bad));
  let slow = { base with throughput = base.throughput /. 4. } in
  Alcotest.(check int) "throughput collapse is a finding" 1
    (List.length
       (Service_bench.check ~threshold:0.5 ~baseline:base ~current:slow));
  let within = { base with throughput = base.throughput *. 0.6 } in
  Alcotest.(check (list string))
    "throughput within threshold passes" []
    (Service_bench.check ~threshold:0.5 ~baseline:base ~current:within)

(* ------------------------------------------------------------------ *)
(* End-to-end: a real serving loop on its own domain (fork is
   unavailable once any test has created a domain; the real-process
   SIGTERM path is covered by CI's service-smoke job against the
   renamed binary). *)

let fresh_socket_path () =
  let path = Filename.temp_file "renamed_test" ".sock" in
  Unix.unlink path;
  path

let start_server ?(shards = 2) ?(capacity = 128) path =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cfg =
    { (Server.default_config ~socket_path:path) with shards; capacity }
  in
  let s = Server.spawn cfg in
  (* Wait for the socket to accept. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match Client.connect ~path () with
    | Ok c ->
      Client.close c;
      s
    | Error _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server did not come up within 10s"
      else begin
        ignore (Unix.select [] [] [] 0.02);
        wait ()
      end
  in
  wait ()

(* Drain and map the report onto renamed's exit convention: 0 clean,
   1 leaked, 2 startup failure. *)
let wait_exit s =
  match Server.join s with
  | Error _ -> 2
  | Ok r -> if Server.report_clean r then 0 else 1

let stop_server s =
  Server.stop (Server.spawned_handle s);
  wait_exit s

let get cl = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" cl e

let getf cl = function
  | Ok v -> v
  | Error f -> Alcotest.failf "%s: %s" cl (Client.failure_message f)

let test_e2e_sync_ops () =
  let path = fresh_socket_path () in
  let pid = start_server path in
  Fun.protect
    ~finally:(fun () -> try ignore (stop_server pid) with _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      let names =
        List.init 10 (fun i -> getf "acquire" (Client.acquire c ~client:i))
      in
      let distinct = List.sort_uniq Int.compare names in
      Alcotest.(check int) "10 distinct names" 10 (List.length distinct);
      let stats = Jsonu.obj (getf "stats" (Client.stats c)) in
      Alcotest.(check int) "server sees 10 taken" 10 (Jsonu.int_ stats "taken");
      Alcotest.(check int) "ledger sees 10 held" 10
        (Jsonu.int_ stats "held_by_sessions");
      List.iter
        (fun name -> getf "release" (Client.release c ~client:0 ~name))
        names;
      let stats = Jsonu.obj (getf "stats" (Client.stats c)) in
      Alcotest.(check int) "all returned" 0 (Jsonu.int_ stats "taken");
      (* Releasing a name we do not hold is refused, not crashed — and
         surfaces as a typed server error, not a transport failure. *)
      (match Client.release c ~client:0 ~name:3 with
      | Error (Client.Remote { code; _ }) ->
        Alcotest.(check int) "err_not_held surfaces" Wire.err_not_held code
      | Error (Client.Transport e) ->
        Alcotest.failf "transport failure instead of err_not_held: %s" e
      | Error (Client.Busy _) -> Alcotest.fail "release refused as busy"
      | Ok () -> Alcotest.fail "release of unheld name succeeded");
      Client.close c);
  ()

let test_e2e_json_mode () =
  let path = fresh_socket_path () in
  let pid = start_server path in
  Fun.protect
    ~finally:(fun () -> try ignore (stop_server pid) with _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~mode:Wire.Json ~path ()) in
      let name = getf "acquire" (Client.acquire c ~client:5) in
      getf "release" (Client.release c ~client:5 ~name);
      let stats = Jsonu.obj (getf "stats" (Client.stats c)) in
      Alcotest.(check int) "json session, zero taken" 0
        (Jsonu.int_ stats "taken");
      Client.close c)

let test_e2e_shutdown_request () =
  let path = fresh_socket_path () in
  let pid = start_server path in
  let c = get "connect" (Client.connect ~path ()) in
  ignore (getf "acquire" (Client.acquire c ~client:1));
  getf "shutdown" (Client.shutdown c);
  Client.close c;
  (* The held name is auto-released in the drain: exit must be clean. *)
  Alcotest.(check int) "clean exit after shutdown request" 0 (wait_exit pid);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let test_e2e_sigterm_drains () =
  let path = fresh_socket_path () in
  let s = start_server path in
  (* The signal glue renamed installs: SIGTERM triggers the stop
     handle, which must drain and release everything still held. *)
  let prev =
    Sys.signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> Server.stop (Server.spawned_handle s)))
  in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.signal Sys.sigterm prev))
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      (* Hold 20 names and never release: the drain must return every
         slot and exit clean (leak accounting = 0). *)
      let names =
        List.init 20 (fun i -> getf "acquire" (Client.acquire c ~client:i))
      in
      Alcotest.(check int) "20 distinct held" 20
        (List.length (List.sort_uniq Int.compare names));
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (* Make sure the handler has run before blocking in join. *)
      let rec spin n =
        if (not (Server.stop_requested (Server.spawned_handle s))) && n > 0
        then begin
          ignore (Unix.select [] [] [] 0.01);
          spin (n - 1)
        end
      in
      spin 500;
      Alcotest.(check bool) "signal reached the stop handle" true
        (Server.stop_requested (Server.spawned_handle s));
      (match Server.join s with
      | Error e -> Alcotest.failf "server failed: %s" e
      | Ok r ->
        Alcotest.(check int) "every held name auto-released" 20
          r.Server.drained_releases;
        Alcotest.(check int) "no slots leaked at exit" 0 r.Server.taken_at_exit;
        Alcotest.(check bool) "clean report" true (Server.report_clean r));
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
      Client.close c)

let test_e2e_dead_client_cleanup () =
  let path = fresh_socket_path () in
  let pid = start_server path in
  Fun.protect
    ~finally:(fun () -> try ignore (stop_server pid) with _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      ignore (getf "acquire" (Client.acquire c ~client:1));
      ignore (getf "acquire" (Client.acquire c ~client:2));
      (* Die without releasing: the server must reclaim our slots. *)
      Client.close c;
      let c2 = get "connect" (Client.connect ~path ()) in
      let deadline = Unix.gettimeofday () +. 5. in
      let rec wait () =
        let stats = Jsonu.obj (getf "stats" (Client.stats c2)) in
        if Jsonu.int_ stats "taken" = 0 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.failf "slots not reclaimed: %d still taken"
            (Jsonu.int_ stats "taken")
        else begin
          ignore (Unix.select [] [] [] 0.05);
          wait ()
        end
      in
      wait ();
      Client.close c2)

let test_e2e_protocol_corruption () =
  let path = fresh_socket_path () in
  let pid = start_server path in
  Fun.protect
    ~finally:(fun () -> try ignore (stop_server pid) with _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      (* An oversized length prefix: the server must answer with an
         err_proto error and close, not crash. *)
      let fd = Client.fd c in
      ignore (Unix.write_substring fd "\xff\xff\xff\xff" 0 4);
      (match Client.recv c ~timeout:5. with
      | Ok (Some (Wire.Error { code; _ })) ->
        Alcotest.(check int) "err_proto" Wire.err_proto code
      | other ->
        Alcotest.failf "expected protocol error, got %s"
          (match other with
          | Ok (Some r) -> show_resp r
          | Ok None -> "timeout"
          | Error e -> "connection error: " ^ e));
      Client.close c;
      (* The daemon is still alive for new clients. *)
      let c2 = get "connect" (Client.connect ~path ()) in
      ignore (getf "stats" (Client.stats c2));
      Client.close c2)

let test_e2e_stale_socket_reclaim () =
  let path = fresh_socket_path () in
  (* Plant a stale socket file with no daemon behind it. *)
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.close fd;
  let pid = start_server path in
  Fun.protect
    ~finally:(fun () -> try ignore (stop_server pid) with _ -> ())
    (fun () ->
      let c = get "connect over reclaimed socket" (Client.connect ~path ()) in
      ignore (getf "stats" (Client.stats c));
      Client.close c)

let test_e2e_load_gen () =
  let path = fresh_socket_path () in
  let pid = start_server path in
  Fun.protect
    ~finally:(fun () -> try ignore (stop_server pid) with _ -> ())
    (fun () ->
      let cfg =
        {
          (Load_gen.default_config ~path) with
          conns = 2;
          clients = 16;
          rate = 400.;
          duration_s = 1.0;
          seed = 11;
        }
      in
      match Load_gen.run cfg with
      | Error e -> Alcotest.failf "load_gen: %s" e
      | Ok r ->
        Alcotest.(check int) "no violations" 0 r.Load_gen.violations;
        Alcotest.(check int) "no leaks" 0 r.Load_gen.leaked;
        Alcotest.(check int) "no errors" 0 r.Load_gen.errors;
        Alcotest.(check int) "no timeouts" 0 r.Load_gen.timeouts;
        Alcotest.(check bool) "audit is ok" true (Load_gen.ok r);
        Alcotest.(check int) "acquired = released" r.Load_gen.acquired
          r.Load_gen.released;
        Alcotest.(check bool) "work was done" true (r.Load_gen.acquired > 0);
        Alcotest.(check int) "every latency recorded" r.Load_gen.acquired
          (Stats.Hdr.count r.Load_gen.latency))

(* ------------------------------------------------------------------ *)

let suite =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  [
    ( "service.wire",
      [
        qc qcheck_req_roundtrip;
        qc qcheck_resp_roundtrip;
        qc qcheck_req_truncation;
        qc qcheck_resp_truncation;
        tc "oversized binary frame" `Quick test_oversized_binary;
        tc "oversized json line" `Quick test_oversized_json;
        tc "unknown opcode" `Quick test_unknown_opcode;
        tc "bad payload length" `Quick test_bad_payload_length;
        tc "bad json line" `Quick test_bad_json_line;
      ] );
    ( "service.session",
      [
        tc "byte-at-a-time binary" `Quick (test_session_byte_at_a_time Wire.Binary);
        tc "byte-at-a-time json" `Quick (test_session_byte_at_a_time Wire.Json);
        tc "many frames per feed" `Quick test_session_many_per_feed;
        tc "mode detection" `Quick test_session_mode_detection;
        tc "corruption latches" `Quick test_session_corrupt_latch;
        tc "held-name ledger" `Quick test_session_ledger;
      ] );
    ( "service.hdr",
      [
        qc qcheck_hdr_relative_error;
        qc qcheck_hdr_quantiles_ordered;
        tc "exact counts" `Quick test_hdr_exact;
        tc "merge" `Quick test_hdr_merge;
        tc "edge cases" `Quick test_hdr_edges;
      ] );
    ( "service.shard",
      [
        tc "uniqueness and release" `Quick test_shard_uniqueness;
        tc "exhaustion" `Quick test_shard_exhaustion;
        tc "client routing" `Quick test_shard_routing;
      ] );
    ( "service.bench",
      [
        tc "artifact round-trip" `Quick test_artifact_roundtrip;
        tc "artifact schema rejects" `Quick test_artifact_schema_rejects;
        tc "regression check" `Quick test_artifact_check;
      ] );
    ( "service.e2e",
      [
        tc "sync ops" `Quick test_e2e_sync_ops;
        tc "json mode" `Quick test_e2e_json_mode;
        tc "shutdown request" `Quick test_e2e_shutdown_request;
        tc "sigterm drains held names" `Quick test_e2e_sigterm_drains;
        tc "dead client cleanup" `Quick test_e2e_dead_client_cleanup;
        tc "protocol corruption" `Quick test_e2e_protocol_corruption;
        tc "stale socket reclaim" `Quick test_e2e_stale_socket_reclaim;
        tc "open-loop load audit" `Quick test_e2e_load_gen;
      ] );
  ]
