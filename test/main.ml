(* Aggregated test runner for the loose-renaming reproduction. *)

let () =
  Alcotest.run "loose_renaming"
    (Test_prng.suite @ Test_stats.suite @ Test_sim.suite @ Test_rebatching.suite
   @ Test_adaptive.suite @ Test_baselines.suite @ Test_lowerbound.suite
   @ Test_longlived.suite @ Test_shm.suite @ Test_harness.suite
   @ Test_schedules.suite @ Test_verification.suite @ Test_gof.suite
   @ Test_rwtas.suite @ Test_engine.suite @ Test_sweep.suite @ Test_fault.suite
   @ Test_analysis.suite @ Test_chaos.suite @ Test_fast_core.suite
   @ Test_modelcheck.suite @ Test_service.suite @ Test_survive.suite
   @ Test_overload.suite)
