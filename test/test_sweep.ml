(* Engine.Sweep: the large-n batch driver behind `repro_cli bench
   --large`.  Pins the properties the committed BENCH_1.json stands on:
   domain-count independence (1 worker and 4 produce the same rows),
   crash-safe resume (a truncated store reruns only the lost tail and
   aggregates identically), and the bench-large artifact round-trip
   through save/load, audit and the regression check. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let temp_dir () = Filename.temp_dir "sweep_test" ""

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

(* A ctx whose tables/log go nowhere: the jobs view never prints, but a
   quiet ctx keeps that invariant visible. *)
let quiet_ctx ~trials ~scale =
  {
    (Harness.Experiment.default_ctx ~seed:5 ~trials ~scale
       ~substrate:Harness.Substrate.Fast ())
    with
    Harness.Experiment.emit_table = (fun ~title:_ _ -> ());
    log = (fun _ -> ());
  }

(* Tiny grids: t1l scaled to decades 10^3..10^4 (8 series-points), t5l
   to 10^3 only.  Cheap enough for the suite, wide enough to exercise
   grouping, series parsing and the decade-monotonicity audit. *)
let plans ~trials =
  [
    (Harness.Exp_large.t1l, quiet_ctx ~trials ~scale:1e-4);
    (Harness.Exp_large.t5l, quiet_ctx ~trials ~scale:1e-4);
  ]

let silent = ignore

let run_sweep ?(workers = 1) ?(resume = false) ~dir ~trials () =
  let plans = plans ~trials in
  let run =
    Engine.Sweep.execute ~workers ~resume ~progress:false ~log:silent
      ~store_dir:dir ~plans ()
  in
  (run, Engine.Sweep.aggregate ~store_dir:dir ~plans)

(* Rows minus the machine-dependent timing fields — what determinism is
   stated over. *)
let measured (r : Engine.Sweep.row) =
  ( ( r.Engine.Sweep.experiment,
      r.Engine.Sweep.series,
      r.Engine.Sweep.n,
      r.Engine.Sweep.trials ),
    ( r.Engine.Sweep.mean_max_steps,
      r.Engine.Sweep.min_max_steps,
      r.Engine.Sweep.max_max_steps,
      r.Engine.Sweep.mean_total_steps,
      r.Engine.Sweep.mean_space_used,
      r.Engine.Sweep.mean_max_name ) )

let measured_rows a = List.map measured a.Engine.Sweep.rows

(* ------------------------------------------------------------------ *)
(* Domain-count independence *)

let test_worker_count_independence () =
  with_temp_dir (fun dir1 ->
      with_temp_dir (fun dir4 ->
          let _, a1 = run_sweep ~workers:1 ~dir:dir1 ~trials:2 () in
          let _, a4 = run_sweep ~workers:4 ~dir:dir4 ~trials:2 () in
          checkb "1 worker and 4 workers measure identical rows" true
            (measured_rows a1 = measured_rows a4);
          checkb "artifact has rows" true (a1.Engine.Sweep.rows <> [])))

(* ------------------------------------------------------------------ *)
(* Resume: truncate the t1l store mid-line and re-execute *)

let test_resume_after_truncation () =
  with_temp_dir (fun dir ->
      let run, full = run_sweep ~dir ~trials:2 () in
      checkb "fresh sweep completes" true
        ((not run.Engine.Sweep.interrupted)
        && run.Engine.Sweep.quarantined = 0);
      let store = Engine.Sink.store_path ~dir ~experiment:"t1l" in
      let lines =
        let ic = open_in store in
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file ->
            close_in ic;
            List.rev acc
        in
        go []
      in
      let total = List.length lines in
      checkb "store holds enough records to truncate" true (total > 3);
      (* keep the first half and append a torn half-line, the on-disk
         state an interrupted run leaves behind *)
      let keep = total / 2 in
      let oc = open_out store in
      List.iteri
        (fun i line -> if i < keep then Printf.fprintf oc "%s\n" line)
        lines;
      output_string oc "{\"key\":\"t1l/torn";
      close_out oc;
      let resumed, again = run_sweep ~resume:true ~dir ~trials:2 () in
      let t1l_skipped =
        List.fold_left
          (fun acc (o : Engine.Plan.outcome) ->
            if o.Engine.Plan.experiment = "t1l" then acc + o.Engine.Plan.skipped
            else acc)
          0 resumed.Engine.Sweep.outcomes
      in
      checki "resume skipped exactly the surviving t1l records" keep
        t1l_skipped;
      checkb "resumed aggregate equals the original" true
        (measured_rows full = measured_rows again))

(* Resuming under different parameters must be refused via the manifest. *)
let test_resume_parameter_mismatch () =
  with_temp_dir (fun dir ->
      let _ = run_sweep ~dir ~trials:2 () in
      match run_sweep ~resume:true ~dir ~trials:3 () with
      | _ -> Alcotest.fail "resume with different trials did not fail"
      | exception Failure _ -> ())

(* ------------------------------------------------------------------ *)
(* Artifact round-trip, audit, check *)

let test_artifact_round_trip () =
  with_temp_dir (fun dir ->
      let _, art = run_sweep ~dir ~trials:2 () in
      (match Engine.Sweep.of_json (Engine.Sweep.to_json art) with
      | None -> Alcotest.fail "artifact does not re-parse"
      | Some back ->
        checkb "round-trip preserves every row" true
          (back = art));
      with_temp_dir (fun out ->
          let path = Engine.Sweep.save ~dir:out art in
          checks "first save lands on BENCH_0.json" "BENCH_0.json"
            (Filename.basename path);
          let path1 = Engine.Sweep.save ~dir:out art in
          checks "second save takes the next index" "BENCH_1.json"
            (Filename.basename path1);
          match Engine.Sweep.load path with
          | None -> Alcotest.fail "saved artifact does not load"
          | Some back -> checkb "load round-trips" true (back = art)))

let test_audit_healthy_and_broken () =
  with_temp_dir (fun dir ->
      let _, art = run_sweep ~dir ~trials:2 () in
      checkb "fresh artifact audits clean" true (Engine.Sweep.audit art = []);
      (* drop a middle decade from one series: the grid is no longer
         consecutive decades *)
      let broken =
        {
          art with
          Engine.Sweep.rows =
            List.filter
              (fun (r : Engine.Sweep.row) ->
                not
                  (r.Engine.Sweep.series = "rebatch_paper"
                  && r.Engine.Sweep.n = 10_000))
              art.Engine.Sweep.rows
            @ [
                {
                  (List.hd art.Engine.Sweep.rows) with
                  Engine.Sweep.series = "rebatch_paper";
                  n = 100_000;
                };
              ];
        }
      in
      checkb "gappy decade grid is a problem" true
        (Engine.Sweep.audit broken <> []);
      let empty = { art with Engine.Sweep.rows = [] } in
      checkb "empty artifact is a problem" true
        (Engine.Sweep.audit empty <> []))

let test_check_gates () =
  with_temp_dir (fun dir ->
      let _, art = run_sweep ~dir ~trials:2 () in
      checkb "artifact checks against itself" true
        (Engine.Sweep.check ~threshold:0.25 ~baseline:art ~current:art = []);
      (* a decade subset still passes against the full baseline — the CI
         smoke contract *)
      let subset =
        {
          art with
          Engine.Sweep.rows =
            List.filter
              (fun (r : Engine.Sweep.row) -> r.Engine.Sweep.n <= 1_000)
              art.Engine.Sweep.rows;
        }
      in
      checkb "decade subset passes the full baseline" true
        (Engine.Sweep.check ~threshold:0.25 ~baseline:art ~current:subset = []);
      (* an allocating run fails outright, baseline or not *)
      let boxed =
        {
          art with
          Engine.Sweep.rows =
            List.map
              (fun (r : Engine.Sweep.row) ->
                { r with Engine.Sweep.words_per_op = 1.5 })
              art.Engine.Sweep.rows;
        }
      in
      checkb "allocation fails the check" true
        (Engine.Sweep.check ~threshold:0.25 ~baseline:art ~current:boxed <> []);
      (* a series the baseline has never seen fails *)
      let novel =
        {
          art with
          Engine.Sweep.rows =
            List.map
              (fun (r : Engine.Sweep.row) ->
                { r with Engine.Sweep.series = "mystery" })
              art.Engine.Sweep.rows;
        }
      in
      checkb "unknown series fails the check" true
        (Engine.Sweep.check ~threshold:0.25 ~baseline:art ~current:novel <> []);
      (* a step-complexity drift outside the band fails *)
      let drifted =
        {
          art with
          Engine.Sweep.rows =
            List.map
              (fun (r : Engine.Sweep.row) ->
                {
                  r with
                  Engine.Sweep.mean_max_steps =
                    (2. *. r.Engine.Sweep.mean_max_steps) +. 10.;
                })
              art.Engine.Sweep.rows;
        }
      in
      checkb "step drift fails the check" true
        (Engine.Sweep.check ~threshold:0.25 ~baseline:art ~current:drifted
        <> []))

let test_series_label_parsing () =
  checks "series/n=k parses" "rebatch_paper"
    (Engine.Sweep.series_of_label "rebatch_paper/n=1000");
  checks "bare label is its own series" "doubling"
    (Engine.Sweep.series_of_label "doubling")

(* The per-decade trial attenuation the artifact's trial counts follow. *)
let test_trials_attenuation () =
  checki "small decades run full trials" 4
    (Harness.Exp_large.trials_at ~trials:4 1_000_000);
  checki "10^7 halves" 2 (Harness.Exp_large.trials_at ~trials:4 10_000_000);
  checki "10^8 quarters" 1 (Harness.Exp_large.trials_at ~trials:4 100_000_000);
  checki "never below one trial" 1
    (Harness.Exp_large.trials_at ~trials:1 100_000_000)

let suite =
  [
    ( "sweep.engine",
      [
        Alcotest.test_case "1-vs-4 worker independence" `Quick
          test_worker_count_independence;
        Alcotest.test_case "resume after store truncation" `Quick
          test_resume_after_truncation;
        Alcotest.test_case "resume refuses changed parameters" `Quick
          test_resume_parameter_mismatch;
      ] );
    ( "sweep.artifact",
      [
        Alcotest.test_case "round-trip and BENCH numbering" `Quick
          test_artifact_round_trip;
        Alcotest.test_case "audit: healthy, gappy, empty" `Quick
          test_audit_healthy_and_broken;
        Alcotest.test_case "check: subset, allocation, drift" `Quick
          test_check_gates;
        Alcotest.test_case "series label parsing" `Quick
          test_series_label_parsing;
        Alcotest.test_case "trial attenuation" `Quick test_trials_attenuation;
      ] );
  ]
