(* Tests for lib/engine: seed tree, pool, JSONL sink round-trip,
   parallel/serial agreement, and checkpoint/resume. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

let temp_dir () = Filename.temp_dir "engine_test" ""

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

(* A small experiment with a jobs view; t9 is the cheapest ported one. *)
let t9 =
  match Harness.Registry.find "t9" with
  | Some e -> e
  | None -> Alcotest.fail "t9 missing from registry"

let ctx = Harness.Experiment.default_ctx ~seed:7 ~trials:3 ~scale:0.02 ()

(* ------------------------------------------------------------------ *)
(* Seed_tree *)

let test_seed_tree_stable () =
  let d () =
    Engine.Seed_tree.derive ~root:1 ~experiment:"t1" ~sweep_point:2 ~trial:3
  in
  checki "same coordinates, same seed" (d ()) (d ());
  checkb "seed is non-negative" true (d () >= 0)

let test_seed_tree_distinct () =
  let base =
    Engine.Seed_tree.derive ~root:1 ~experiment:"t1" ~sweep_point:0 ~trial:0
  in
  let variants =
    [
      Engine.Seed_tree.derive ~root:2 ~experiment:"t1" ~sweep_point:0 ~trial:0;
      Engine.Seed_tree.derive ~root:1 ~experiment:"t2" ~sweep_point:0 ~trial:0;
      Engine.Seed_tree.derive ~root:1 ~experiment:"t1" ~sweep_point:1 ~trial:0;
      Engine.Seed_tree.derive ~root:1 ~experiment:"t1" ~sweep_point:0 ~trial:1;
      (* "t1" vs "t12": prefix-related ids must not collide *)
      Engine.Seed_tree.derive ~root:1 ~experiment:"t12" ~sweep_point:0 ~trial:0;
    ]
  in
  List.iteri
    (fun i v ->
      checkb (Printf.sprintf "variant %d differs from base" i) true (v <> base))
    variants

let test_seed_tree_order_independent () =
  (* Deriving for (p, t) must not depend on prior derivations. *)
  let a =
    Engine.Seed_tree.derive ~root:9 ~experiment:"x" ~sweep_point:5 ~trial:5
  in
  let _ =
    Engine.Seed_tree.derive ~root:9 ~experiment:"x" ~sweep_point:0 ~trial:0
  in
  let b =
    Engine.Seed_tree.derive ~root:9 ~experiment:"x" ~sweep_point:5 ~trial:5
  in
  checki "interleaved derivations agree" a b

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_matches_serial () =
  let tasks = Array.init 53 (fun i -> i) in
  let f x = x * x in
  let serial = Engine.Pool.map ~workers:1 f tasks in
  let parallel = Engine.Pool.map ~workers:4 f tasks in
  checkb "map agrees across worker counts" true (serial = parallel);
  checki "first" 0 parallel.(0);
  checki "last" (52 * 52) parallel.(52)

let test_pool_consume_exactly_once () =
  let n = 101 in
  let seen = Array.make n 0 in
  Engine.Pool.run ~workers:4
    ~f:(fun i _ -> i)
    ~consume:(fun i r ->
      checki "consume index matches result" i r;
      seen.(i) <- seen.(i) + 1)
    (Array.init n (fun i -> i));
  Array.iteri (fun i c -> checki (Printf.sprintf "task %d consumed once" i) 1 c) seen

let test_pool_propagates_exception () =
  let raised =
    try
      Engine.Pool.run ~workers:4
        ~f:(fun i _ -> if i = 17 then failwith "boom" else i)
        ~consume:(fun _ _ -> ())
        (Array.init 64 (fun i -> i));
      false
    with Failure msg -> msg = "boom"
  in
  checkb "worker failure re-raised in caller" true raised

(* ------------------------------------------------------------------ *)
(* Sink: JSON round-trip *)

let sample_record =
  {
    Engine.Sink.key = "t9/1/2";
    experiment = "t9";
    sweep_point = 1;
    point_label = "eps=0.25 \"quoted\"\n";
    trial = 2;
    attempt = 1;
    seed = 123456789;
    params = [ ("epsilon", 0.25); ("n", 205.) ];
    values = [ ("max_steps", 57.); ("ratio", 1.1023456789012345) ];
    wall_ns = 98765.4321;
  }

let test_sink_roundtrip () =
  let line = Engine.Sink.record_to_json sample_record in
  checkb "one line" true (not (String.contains line '\n'));
  match Engine.Sink.record_of_json line with
  | None -> Alcotest.fail "round-trip failed to parse"
  | Some r ->
    checkb "round-trip preserves the record (incl. wall_ns float)" true
      (Engine.Sink.equal_ignoring_wall sample_record r
      && r.Engine.Sink.wall_ns = sample_record.Engine.Sink.wall_ns);
    checks "label with escapes survives" sample_record.Engine.Sink.point_label
      r.Engine.Sink.point_label

let test_sink_rejects_garbage () =
  let line = Engine.Sink.record_to_json sample_record in
  let truncated = String.sub line 0 (String.length line / 2) in
  checkb "truncated line rejected" true
    (Engine.Sink.record_of_json truncated = None);
  checkb "empty line rejected" true (Engine.Sink.record_of_json "" = None);
  checkb "non-object rejected" true (Engine.Sink.record_of_json "42" = None)

let test_mkdir_p_nested () =
  with_temp_dir (fun dir ->
      let nested = Filename.concat (Filename.concat dir "a") "b" in
      Engine.Sink.mkdir_p nested;
      checkb "nested dir created" true (Sys.is_directory nested);
      (* idempotent *)
      Engine.Sink.mkdir_p nested;
      let file = Filename.concat nested "f" in
      let oc = open_out file in
      close_out oc;
      checkb "regular file rejected" true
        (match Engine.Sink.mkdir_p file with
        | () -> false
        | exception Failure _ -> true))

(* ------------------------------------------------------------------ *)
(* Plan: parallel vs serial, and resume *)

let run_t9 ~dir ~workers ~resume =
  match Engine.Plan.execute ~workers ~resume ~progress:false ~out_dir:dir ~ctx t9 with
  | Some o -> o
  | None -> Alcotest.fail "t9 lost its jobs view"

let sorted_records dir =
  let records =
    Engine.Checkpoint.records (Engine.Sink.store_path ~dir ~experiment:"t9")
  in
  List.sort
    (fun a b -> compare a.Engine.Sink.key b.Engine.Sink.key)
    records

let check_same_records label a b =
  checki (label ^ ": same count") (List.length a) (List.length b);
  List.iter2
    (fun ra rb ->
      checkb
        (label ^ ": record " ^ ra.Engine.Sink.key ^ " identical")
        true
        (Engine.Sink.equal_ignoring_wall ra rb))
    a b

let test_parallel_matches_serial () =
  with_temp_dir (fun dir_a ->
      with_temp_dir (fun dir_b ->
          let oa = run_t9 ~dir:dir_a ~workers:1 ~resume:false in
          let ob = run_t9 ~dir:dir_b ~workers:4 ~resume:false in
          checki "same plan size" oa.Engine.Plan.total_jobs
            ob.Engine.Plan.total_jobs;
          check_same_records "jobs=1 vs jobs=4" (sorted_records dir_a)
            (sorted_records dir_b)))

let test_resume_reexecutes_only_missing () =
  with_temp_dir (fun dir_full ->
      with_temp_dir (fun dir ->
          let _ = run_t9 ~dir:dir_full ~workers:2 ~resume:false in
          let full = sorted_records dir_full in
          let _ = run_t9 ~dir ~workers:2 ~resume:false in
          let store = Engine.Sink.store_path ~dir ~experiment:"t9" in
          (* Truncate mid-run: keep 4 whole records plus a partial line,
             as a crash during the 5th write would. *)
          let all_lines =
            let ic = open_in store in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let rec go acc =
                  match input_line ic with
                  | exception End_of_file -> List.rev acc
                  | l -> go (l :: acc)
                in
                go [])
          in
          let total = List.length all_lines in
          checkb "enough records to truncate" true (total > 5);
          let oc = open_out store in
          List.iteri
            (fun i l ->
              if i < 4 then (output_string oc l; output_char oc '\n')
              else if i = 4 then
                (* partial write: half a record, no newline *)
                output_string oc (String.sub l 0 (String.length l / 2)))
            all_lines;
          close_out oc;
          let o = run_t9 ~dir ~workers:2 ~resume:true in
          checki "total plan unchanged" total o.Engine.Plan.total_jobs;
          checki "exactly the 4 intact records skipped" 4 o.Engine.Plan.skipped;
          checki "the rest re-executed" (total - 4) o.Engine.Plan.executed;
          let resumed = sorted_records dir in
          (* No duplicates: keys are unique. *)
          let keys = List.map (fun r -> r.Engine.Sink.key) resumed in
          checki "no duplicate records" (List.length keys)
            (List.length (List.sort_uniq compare keys));
          check_same_records "resumed vs uninterrupted" resumed full))

let test_fresh_run_truncates () =
  with_temp_dir (fun dir ->
      let _ = run_t9 ~dir ~workers:2 ~resume:false in
      let n1 = List.length (sorted_records dir) in
      let _ = run_t9 ~dir ~workers:2 ~resume:false in
      checki "non-resume rerun does not duplicate" n1
        (List.length (sorted_records dir)))

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "seed_tree: stable" `Quick test_seed_tree_stable;
        Alcotest.test_case "seed_tree: distinct coordinates" `Quick
          test_seed_tree_distinct;
        Alcotest.test_case "seed_tree: order-independent" `Quick
          test_seed_tree_order_independent;
        Alcotest.test_case "pool: map matches serial" `Quick
          test_pool_map_matches_serial;
        Alcotest.test_case "pool: consume exactly once" `Quick
          test_pool_consume_exactly_once;
        Alcotest.test_case "pool: exception propagation" `Quick
          test_pool_propagates_exception;
        Alcotest.test_case "sink: JSON round-trip" `Quick test_sink_roundtrip;
        Alcotest.test_case "sink: rejects garbage" `Quick
          test_sink_rejects_garbage;
        Alcotest.test_case "sink: mkdir_p" `Quick test_mkdir_p_nested;
        Alcotest.test_case "plan: jobs=4 equals jobs=1" `Quick
          test_parallel_matches_serial;
        Alcotest.test_case "plan: resume after truncation" `Quick
          test_resume_reexecutes_only_missing;
        Alcotest.test_case "plan: fresh run truncates store" `Quick
          test_fresh_run_truncates;
      ] );
  ]
