(* Tests for the static-analysis layer: the repro_lint determinism
   linter (AST-level, compiler-libs) and the vector-clock
   happens-before race checker over the multicore substrate. *)

(* ------------------------------------------------------------------ *)
(* Lint: helpers *)

let lint ~path source =
  match Analysis.Lint.lint_source ~path ~source with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "unexpected parse error for %s: %s" path msg

let rule_ids findings =
  List.sort_uniq String.compare
    (List.map (fun f -> f.Analysis.Lint.rule) findings)

let check_rules what expected findings =
  Alcotest.(check (list string)) what expected (rule_ids findings)

(* ------------------------------------------------------------------ *)
(* Lint: one fixture per rule, plus its allowed scope *)

let test_lint_stdlib_random () =
  let source = "let f () = Random.int 5\n" in
  check_rules "flagged in lib/sim" [ "stdlib-random" ]
    (lint ~path:"lib/sim/x.ml" source);
  check_rules "allowed in lib/prng" [] (lint ~path:"lib/prng/x.ml" source)

let test_lint_wall_clock () =
  let source = "let now () = Unix.gettimeofday ()\n" in
  check_rules "flagged in lib/harness" [ "wall-clock" ]
    (lint ~path:"lib/harness/clock.ml" source);
  check_rules "allowed in the watchdog" []
    (lint ~path:"lib/engine/watchdog.ml" source)

let test_lint_domain_spawn () =
  let source = "let d = Domain.spawn (fun () -> 0)\n" in
  check_rules "flagged in lib/sim" [ "domain-spawn" ]
    (lint ~path:"lib/sim/x.ml" source);
  check_rules "allowed in lib/shm" [] (lint ~path:"lib/shm/x.ml" source)

let test_lint_hashtbl_iteration () =
  let source = "let f h = Hashtbl.iter (fun _ _ -> ()) h\n" in
  check_rules "flagged in lib/" [ "hashtbl-iteration" ]
    (lint ~path:"lib/harness/x.ml" source);
  (* the rule's scope is lib/ and bin/ only *)
  check_rules "out of scope in examples/" []
    (lint ~path:"examples/x.ml" source)

let test_lint_poly_compare () =
  let source = "let f a b = compare a b\n" in
  check_rules "flagged in lib/stats" [ "poly-compare" ]
    (lint ~path:"lib/stats/x.ml" source);
  check_rules "out of scope elsewhere" [] (lint ~path:"lib/sim/x.ml" source);
  (* a typed comparator is the sanctioned replacement *)
  check_rules "Float.compare is fine" []
    (lint ~path:"lib/stats/x.ml" "let f a b = Float.compare a b\n")

let test_lint_journal_write () =
  let source = "let f fd b = Unix.write fd b 0 8\n" in
  check_rules "flagged in lib/service" [ "journal-write" ]
    (lint ~path:"lib/service/session.ml" source);
  check_rules "flagged in bin/renamed.ml" [ "journal-write" ]
    (lint ~path:"bin/renamed.ml" source);
  check_rules "allowed in the journal itself" []
    (lint ~path:"lib/service/journal.ml" source);
  (* the rule scopes to the serving layer, not the whole tree *)
  check_rules "out of scope elsewhere" []
    (lint ~path:"lib/engine/x.ml" source);
  check_rules "write_substring flagged too" [ "journal-write" ]
    (lint ~path:"lib/service/session.ml"
       "let f fd s = Unix.write_substring fd s 0 8\n")

let test_lint_stdout_print () =
  let source = "let f () = print_endline \"x\"\n" in
  check_rules "flagged in lib/sim" [ "stdout-print" ]
    (lint ~path:"lib/sim/x.ml" source);
  check_rules "allowed in bin/" [] (lint ~path:"bin/x.ml" source);
  check_rules "Printf.printf flagged too" [ "stdout-print" ]
    (lint ~path:"lib/sim/x.ml" "let f () = Printf.printf \"%d\" 3\n")

let test_lint_stdlib_prefix_stripped () =
  match lint ~path:"lib/sim/x.ml" "let x () = Stdlib.Random.bits ()\n" with
  | [ f ] ->
    Alcotest.(check string) "rule" "stdlib-random" f.Analysis.Lint.rule;
    Alcotest.(check string) "ident" "Random.bits" f.Analysis.Lint.ident
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

(* ------------------------------------------------------------------ *)
(* Lint: inline allow comments and precision *)

let test_lint_allow_same_line () =
  check_rules "marker on the flagged line" []
    (lint ~path:"lib/sim/x.ml"
       "let f () = Random.int 5 (* repro-lint: allow stdlib-random *)\n")

let test_lint_allow_line_above () =
  check_rules "marker on the line above" []
    (lint ~path:"lib/sim/x.ml"
       "(* repro-lint: allow stdlib-random *)\nlet f () = Random.int 5\n")

let test_lint_allow_is_per_rule () =
  check_rules "marker for another rule does not suppress"
    [ "stdlib-random" ]
    (lint ~path:"lib/sim/x.ml"
       "(* repro-lint: allow wall-clock *)\nlet f () = Random.int 5\n")

let test_lint_allow_too_far () =
  check_rules "marker two lines above does not suppress"
    [ "stdlib-random" ]
    (lint ~path:"lib/sim/x.ml"
       "(* repro-lint: allow stdlib-random *)\nlet a = 1\n\
        let f () = Random.int 5\n")

let test_lint_strings_never_flag () =
  check_rules "banned name inside a string literal" []
    (lint ~path:"lib/sim/x.ml" "let s = \"Random.int gettimeofday\"\n")

let test_lint_locations () =
  let source = "let a = 1\nlet b = 2\nlet c () = Random.int 9\n" in
  match lint ~path:"lib/sim/x.ml" source with
  | [ f ] ->
    Alcotest.(check int) "line" 3 f.Analysis.Lint.line;
    Alcotest.(check string) "file" "lib/sim/x.ml" f.Analysis.Lint.file
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_lint_parse_error () =
  match Analysis.Lint.lint_source ~path:"lib/sim/x.ml" ~source:"let let = in" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_lint_json () =
  let findings = lint ~path:"lib/sim/x.ml" "let f () = Random.int 5\n" in
  let json = Analysis.Lint.findings_to_json findings in
  Alcotest.(check bool) "is an object" true (String.length json > 0 && json.[0] = '{');
  Alcotest.(check bool)
    "carries the schema version" true
    (contains json (Printf.sprintf "\"schema\":%S" Analysis.Lint.json_schema));
  Alcotest.(check bool) "mentions the rule" true (contains json "stdlib-random");
  (* empty reports keep the envelope *)
  let empty = Analysis.Lint.findings_to_json [] in
  Alcotest.(check bool)
    "empty report keeps schema" true
    (contains empty "\"findings\":[]")

(* ------------------------------------------------------------------ *)
(* Lint: the structural atomic-get-set rule *)

let test_lint_atomic_get_set () =
  let rmw = "let bump c = Atomic.set c (Atomic.get c + 1)\n" in
  check_rules "read-modify-write flagged in lib/service" [ "atomic-get-set" ]
    (lint ~path:"lib/service/x.ml" rmw);
  check_rules "flagged in lib/shm" [ "atomic-get-set" ]
    (lint ~path:"lib/shm/x.ml" rmw);
  check_rules "out of scope elsewhere" [] (lint ~path:"lib/sim/x.ml" rmw);
  (* the get-before-set form is the same window *)
  check_rules "get bound then set flagged" [ "atomic-get-set" ]
    (lint ~path:"lib/service/x.ml"
       "let bump c = let v = Atomic.get c in Atomic.set c (v + 1)\n");
  (* distinct atomics are not a window *)
  check_rules "distinct atomics fine" []
    (lint ~path:"lib/service/x.ml"
       "let move a b = Atomic.set b (Atomic.get a + 1)\n");
  (* a set followed only later by a get reads the new value — no window *)
  check_rules "set then get fine" []
    (lint ~path:"lib/service/x.ml"
       "let f c = Atomic.set c 1; Atomic.get c\n");
  (* a get captured in an inner closure pairs with sets in that closure,
     not with the enclosing function's set *)
  check_rules "closure scoping" []
    (lint ~path:"lib/service/x.ml"
       "let f c = let g () = Atomic.get c in Atomic.set c 0; g\n");
  (* sanctioned escape: compare_and_set *)
  check_rules "compare_and_set fine" []
    (lint ~path:"lib/service/x.ml"
       "let f c = Atomic.compare_and_set c 0 1\n");
  check_rules "inline allow suppresses" []
    (lint ~path:"lib/service/x.ml"
       "(* repro-lint: allow atomic-get-set — single-writer counter *)\n\
        let bump c = Atomic.set c (Atomic.get c + 1)\n")

(* ------------------------------------------------------------------ *)
(* Lint: file walk and CLI driver exit codes *)

let with_tmp_tree f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro_lint_test_%d" (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists dir then rm dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let write_file dir rel content =
  let path = Filename.concat dir rel in
  let parent = Filename.dirname path in
  if not (Sys.file_exists parent) then Unix.mkdir parent 0o755;
  let oc = open_out path in
  output_string oc content;
  close_out oc

let test_collect_ml_files () =
  with_tmp_tree (fun dir ->
      write_file dir "b.ml" "let b = 2\n";
      write_file dir "a.ml" "let a = 1\n";
      write_file dir "notes.txt" "not code\n";
      write_file dir "_build/skip.ml" "let s = 0\n";
      write_file dir ".hidden/skip.ml" "let s = 0\n";
      write_file dir "sub/c.ml" "let c = 3\n";
      let files =
        List.map
          (fun p -> Analysis.Lint.normalize_path ~root:dir p)
          (Analysis.Lint.collect_ml_files dir)
      in
      Alcotest.(check (list string))
        "sorted, .ml only, _/. skipped"
        [ "a.ml"; "b.ml"; "sub/c.ml" ]
        files)

let run_lint ~root ~paths =
  let buf = Buffer.create 256 in
  let rc =
    Analysis.Lint.run ~root ~paths ~out:(Buffer.add_string buf) ()
  in
  (rc, Buffer.contents buf)

let test_run_exit_codes () =
  with_tmp_tree (fun dir ->
      write_file dir "lib/clean.ml" "let x = 1\n";
      let rc, out_clean = run_lint ~root:dir ~paths:[] in
      Alcotest.(check int) "clean tree exits 0" 0 rc;
      Alcotest.(check string) "clean report" "repro_lint: clean\n" out_clean;
      write_file dir "lib/bad.ml" "let f () = Random.int 5\n";
      let rc, out_bad = run_lint ~root:dir ~paths:[] in
      Alcotest.(check int) "violations exit 1" 1 rc;
      Alcotest.(check bool) "report names the file" true
        (String.length out_bad > 0);
      write_file dir "lib/broken.ml" "let let = in";
      let rc, _ = run_lint ~root:dir ~paths:[] in
      Alcotest.(check int) "parse error exits 2" 2 rc;
      let rc, _ =
        run_lint ~root:dir ~paths:[ Filename.concat dir "no-such-dir" ]
      in
      Alcotest.(check int) "missing path exits 2" 2 rc)

(* ------------------------------------------------------------------ *)
(* Hb: deterministic single-threaded monitor checks.  Thread ids here
   are dense monitor ids, not domains — no concurrency is needed to
   exercise the clock algebra. *)

let test_vclock () =
  let c = Analysis.Vclock.create ~cap:3 in
  Alcotest.(check int) "capacity" 3 (Analysis.Vclock.cap c);
  Analysis.Vclock.tick c 1;
  Analysis.Vclock.tick c 1;
  Analysis.Vclock.set c 2 7;
  Alcotest.(check int) "tick" 2 (Analysis.Vclock.get c 1);
  let d = Analysis.Vclock.copy c in
  Analysis.Vclock.tick d 0;
  Alcotest.(check bool) "c <= d" true (Analysis.Vclock.leq c d);
  Alcotest.(check bool) "d <= c fails" false (Analysis.Vclock.leq d c);
  Analysis.Vclock.join c d;
  Alcotest.(check bool) "join reaches d" true (Analysis.Vclock.leq d c);
  (try
     ignore (Analysis.Vclock.get c 3);
     Alcotest.fail "out-of-capacity get should raise"
   with Invalid_argument _ -> ());
  try
    Analysis.Vclock.join c (Analysis.Vclock.create ~cap:4);
    Alcotest.fail "capacity mismatch should raise"
  with Invalid_argument _ -> ()

let test_hb_unordered_writes () =
  let hb = Analysis.Hb.create ~mode:Analysis.Hb.Collect () in
  let a = Analysis.Hb.register hb ~name:"a" in
  let b = Analysis.Hb.register hb ~name:"b" in
  Analysis.Hb.plain_write hb ~thread:a ~loc:"x";
  Analysis.Hb.plain_write hb ~thread:b ~loc:"x";
  match Analysis.Hb.races hb with
  | [ r ] ->
    Alcotest.(check string) "location" "x" r.Analysis.Hb.loc;
    Alcotest.(check string) "prior" "a" r.Analysis.Hb.prior_name;
    Alcotest.(check string) "current" "b" r.Analysis.Hb.current_name;
    let s = Analysis.Hb.race_to_string r in
    Alcotest.(check bool) "report mentions the location" true
      (String.length s > 0)
  | rs -> Alcotest.failf "expected one race, got %d" (List.length rs)

let test_hb_raise_mode () =
  let hb = Analysis.Hb.create () in
  let a = Analysis.Hb.register hb ~name:"a" in
  let b = Analysis.Hb.register hb ~name:"b" in
  Analysis.Hb.plain_write hb ~thread:a ~loc:"x";
  try
    Analysis.Hb.plain_write hb ~thread:b ~loc:"x";
    Alcotest.fail "expected Hb.Race"
  with Analysis.Hb.Race r ->
    Alcotest.(check string) "location" "x" r.Analysis.Hb.loc

let test_hb_spawn_join_order () =
  let hb = Analysis.Hb.create () in
  let parent = Analysis.Hb.register hb ~name:"parent" in
  let child = Analysis.Hb.register hb ~name:"child" in
  Analysis.Hb.plain_write hb ~thread:parent ~loc:"x";
  Analysis.Hb.spawn hb ~parent ~child;
  Analysis.Hb.plain_write hb ~thread:child ~loc:"x";
  Analysis.Hb.join hb ~parent ~child;
  Analysis.Hb.plain_read hb ~thread:parent ~loc:"x";
  Alcotest.(check int) "race-free" 0 (List.length (Analysis.Hb.races hb))

let test_hb_release_acquire () =
  let hb = Analysis.Hb.create () in
  let a = Analysis.Hb.register hb ~name:"a" in
  let b = Analysis.Hb.register hb ~name:"b" in
  Analysis.Hb.plain_write hb ~thread:a ~loc:"x";
  Analysis.Hb.atomic_op hb ~thread:a ~loc:"latch" ~sync:`Release;
  Analysis.Hb.atomic_op hb ~thread:b ~loc:"latch" ~sync:`Acquire;
  Analysis.Hb.plain_write hb ~thread:b ~loc:"x";
  Alcotest.(check int) "ordered by the latch" 0
    (List.length (Analysis.Hb.races hb));
  (* Without the acquire the same accesses race. *)
  let hb = Analysis.Hb.create ~mode:Analysis.Hb.Collect () in
  let a = Analysis.Hb.register hb ~name:"a" in
  let b = Analysis.Hb.register hb ~name:"b" in
  Analysis.Hb.plain_write hb ~thread:a ~loc:"x";
  Analysis.Hb.atomic_op hb ~thread:a ~loc:"latch" ~sync:`Release;
  Analysis.Hb.plain_write hb ~thread:b ~loc:"x";
  Alcotest.(check int) "release alone orders nothing" 1
    (List.length (Analysis.Hb.races hb))

let test_hb_rmw_chain () =
  let hb = Analysis.Hb.create () in
  let a = Analysis.Hb.register hb ~name:"a" in
  let b = Analysis.Hb.register hb ~name:"b" in
  Analysis.Hb.plain_write hb ~thread:a ~loc:"x";
  let r =
    Analysis.Hb.atomic_op_locked hb ~thread:a ~loc:"cell" ~sync:`Rmw
      (fun () -> 41 + 1)
  in
  Alcotest.(check int) "locked op returns its value" 42 r;
  Analysis.Hb.atomic_op hb ~thread:b ~loc:"cell" ~sync:`Rmw;
  Analysis.Hb.plain_write hb ~thread:b ~loc:"x";
  Alcotest.(check int) "TAS chain orders the writes" 0
    (List.length (Analysis.Hb.races hb))

let test_hb_read_read_no_race () =
  let hb = Analysis.Hb.create () in
  let a = Analysis.Hb.register hb ~name:"a" in
  let b = Analysis.Hb.register hb ~name:"b" in
  Analysis.Hb.plain_read hb ~thread:a ~loc:"x";
  Analysis.Hb.plain_read hb ~thread:b ~loc:"x";
  Alcotest.(check int) "reads never conflict" 0
    (List.length (Analysis.Hb.races hb))

let test_hb_write_read_race () =
  let hb = Analysis.Hb.create ~mode:Analysis.Hb.Collect () in
  let a = Analysis.Hb.register hb ~name:"a" in
  let b = Analysis.Hb.register hb ~name:"b" in
  Analysis.Hb.plain_write hb ~thread:a ~loc:"x";
  Analysis.Hb.plain_read hb ~thread:b ~loc:"x";
  match Analysis.Hb.races hb with
  | [ r ] ->
    Alcotest.(check bool) "write/read pair" true
      (r.Analysis.Hb.prior.Analysis.Hb.kind = Analysis.Hb.Write
      && r.Analysis.Hb.current.Analysis.Hb.kind = Analysis.Hb.Read)
  | rs -> Alcotest.failf "expected one race, got %d" (List.length rs)

let test_hb_capacity_and_stats () =
  let hb = Analysis.Hb.create ~max_threads:2 () in
  let a = Analysis.Hb.register hb ~name:"a" in
  let _b = Analysis.Hb.register hb ~name:"b" in
  (try
     ignore (Analysis.Hb.register hb ~name:"c");
     Alcotest.fail "third register should exhaust capacity"
   with Invalid_argument _ -> ());
  (try
     Analysis.Hb.plain_write hb ~thread:7 ~loc:"x";
     Alcotest.fail "unregistered thread should raise"
   with Invalid_argument _ -> ());
  Analysis.Hb.plain_write hb ~thread:a ~loc:"x";
  Analysis.Hb.atomic_op hb ~thread:a ~loc:"cell" ~sync:`Release;
  let s = Analysis.Hb.stats hb in
  Alcotest.(check int) "threads" 2 s.Analysis.Hb.threads;
  Alcotest.(check int) "atomic locations" 1 s.Analysis.Hb.atomic_locations;
  Alcotest.(check int) "plain locations" 1 s.Analysis.Hb.plain_locations;
  Alcotest.(check bool) "events counted" true (s.Analysis.Hb.events >= 2)

(* ------------------------------------------------------------------ *)
(* Hb_space / Hb_runner: real domains *)

(* Two domains writing the same plain location with no synchronization
   between them: a race in every interleaving, so the checker must flag
   it deterministically. *)
let test_hb_space_racy_fixture () =
  let sp =
    Analysis.Hb_space.create ~mode:Analysis.Hb.Collect ~capacity:4 ()
  in
  let _main = Analysis.Hb_space.register_thread ~name:"main" sp in
  let worker () = Analysis.Hb_space.write_plain sp "shared-counter" in
  (* repro-lint: allow domain-spawn *)
  let d1 = Domain.spawn worker in
  (* repro-lint: allow domain-spawn *)
  let d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  match Analysis.Hb_space.races sp with
  | [] -> Alcotest.fail "unsynchronized writes must race"
  | r :: _ ->
    Alcotest.(check string) "location" "shared-counter" r.Analysis.Hb.loc

let test_hb_space_operations () =
  let sp = Analysis.Hb_space.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Analysis.Hb_space.capacity sp);
  Alcotest.(check bool) "first TAS wins" true (Analysis.Hb_space.tas sp 1);
  Alcotest.(check bool) "second TAS loses" false (Analysis.Hb_space.tas sp 1);
  Alcotest.(check bool) "taken" true (Analysis.Hb_space.is_taken sp 1);
  Analysis.Hb_space.release sp 1;
  Alcotest.(check bool) "released" false (Analysis.Hb_space.is_taken sp 1);
  Analysis.Hb_space.write_plain sp "slot";
  Analysis.Hb_space.read_plain sp "slot";
  Alcotest.(check int) "single domain is race-free" 0
    (List.length (Analysis.Hb_space.races sp))

let certify_rebatching ~seed ~procs ~domains =
  let instance = Renaming.Rebatching.make ~t0:3 ~n:procs () in
  Analysis.Hb_runner.certify ~domains ~seed ~procs
    ~capacity:(Renaming.Rebatching.size instance)
    ~algo:(fun env -> Renaming.Rebatching.get_name env instance)
    ()

let test_certify_clean_run () =
  match certify_rebatching ~seed:11 ~procs:48 ~domains:4 with
  | Error races ->
    Alcotest.failf "unexpected race: %s"
      (Analysis.Hb.race_to_string (List.hd races))
  | Ok o ->
    Alcotest.(check bool) "unique names" true
      (Shm.Domain_runner.check_unique_names o.Analysis.Hb_runner.result);
    Alcotest.(check int) "main + one thread per domain" 5
      o.Analysis.Hb_runner.stats.Analysis.Hb.threads;
    Alcotest.(check bool) "no races collected" true
      (o.Analysis.Hb_runner.races = []);
    Alcotest.(check bool) "events witnessed" true
      (o.Analysis.Hb_runner.stats.Analysis.Hb.events > 0)

let test_certify_adaptive () =
  let space = Renaming.Object_space.create () in
  (* ladder depth 16 covers any feasible proc count here *)
  let capacity = Renaming.Object_space.total_size space 16 in
  match
    Analysis.Hb_runner.certify ~domains:4 ~seed:5 ~procs:32 ~capacity
      ~algo:(fun env -> Renaming.Adaptive_rebatching.get_name env space)
      ()
  with
  | Error races ->
    Alcotest.failf "unexpected race: %s"
      (Analysis.Hb.race_to_string (List.hd races))
  | Ok o ->
    Alcotest.(check bool) "unique names" true
      (Shm.Domain_runner.check_unique_names o.Analysis.Hb_runner.result)

let qcheck_certify =
  QCheck.Test.make ~name:"hb-certified runs are race-free with unique names"
    ~count:8
    QCheck.(pair small_int (pair (int_range 1 48) (int_range 1 5)))
    (fun (seed, (procs, domains)) ->
      match certify_rebatching ~seed ~procs ~domains with
      | Ok o -> Shm.Domain_runner.check_unique_names o.Analysis.Hb_runner.result
      | Error _ -> false)

let suite =
  [
    ( "analysis.lint",
      [
        Alcotest.test_case "stdlib-random rule" `Quick test_lint_stdlib_random;
        Alcotest.test_case "wall-clock rule" `Quick test_lint_wall_clock;
        Alcotest.test_case "domain-spawn rule" `Quick test_lint_domain_spawn;
        Alcotest.test_case "hashtbl-iteration rule" `Quick
          test_lint_hashtbl_iteration;
        Alcotest.test_case "poly-compare rule" `Quick test_lint_poly_compare;
        Alcotest.test_case "journal-write rule" `Quick test_lint_journal_write;
        Alcotest.test_case "stdout-print rule" `Quick test_lint_stdout_print;
        Alcotest.test_case "atomic-get-set rule" `Quick
          test_lint_atomic_get_set;
        Alcotest.test_case "Stdlib. prefix stripped" `Quick
          test_lint_stdlib_prefix_stripped;
        Alcotest.test_case "allow comment on the line" `Quick
          test_lint_allow_same_line;
        Alcotest.test_case "allow comment above" `Quick
          test_lint_allow_line_above;
        Alcotest.test_case "allow comment is per rule" `Quick
          test_lint_allow_is_per_rule;
        Alcotest.test_case "allow comment range is tight" `Quick
          test_lint_allow_too_far;
        Alcotest.test_case "string literals never flag" `Quick
          test_lint_strings_never_flag;
        Alcotest.test_case "exact locations" `Quick test_lint_locations;
        Alcotest.test_case "parse errors surface" `Quick test_lint_parse_error;
        Alcotest.test_case "json output" `Quick test_lint_json;
        Alcotest.test_case "file walk" `Quick test_collect_ml_files;
        Alcotest.test_case "driver exit codes" `Quick test_run_exit_codes;
      ] );
    ( "analysis.hb",
      [
        Alcotest.test_case "vector clocks" `Quick test_vclock;
        Alcotest.test_case "unordered writes race" `Quick
          test_hb_unordered_writes;
        Alcotest.test_case "raise mode" `Quick test_hb_raise_mode;
        Alcotest.test_case "spawn/join edges order" `Quick
          test_hb_spawn_join_order;
        Alcotest.test_case "release/acquire edges" `Quick
          test_hb_release_acquire;
        Alcotest.test_case "rmw chains order" `Quick test_hb_rmw_chain;
        Alcotest.test_case "reads never conflict" `Quick
          test_hb_read_read_no_race;
        Alcotest.test_case "write/read race" `Quick test_hb_write_read_race;
        Alcotest.test_case "capacity and stats" `Quick
          test_hb_capacity_and_stats;
      ] );
    ( "analysis.racecheck",
      [
        Alcotest.test_case "racy two-domain fixture flagged" `Quick
          test_hb_space_racy_fixture;
        Alcotest.test_case "instrumented space semantics" `Quick
          test_hb_space_operations;
        Alcotest.test_case "rebatching certified on 4 domains" `Quick
          test_certify_clean_run;
        Alcotest.test_case "adaptive certified on 4 domains" `Quick
          test_certify_adaptive;
        QCheck_alcotest.to_alcotest qcheck_certify;
      ] );
  ]
