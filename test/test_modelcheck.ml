(* Tests for the systematic explorer (Analysis.Explore), the Wing-Gong
   linearizability checker (Analysis.Linz), the lease protocol model
   (Service.Lease_model via Mcheck.Worlds) and the counterexample
   fixture pipeline — including the sampled-vs-exhaustive
   cross-validation properties tying the model checker back to the
   simulation core and the happens-before race certifier. *)

module Explore = Analysis.Explore
module Linz = Analysis.Linz
module Worlds = Mcheck.Worlds

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Toy worlds: the DFS and the sleep-set reduction on a known space *)

(* [toy ~deps] — two processes, one action each; with [deps] both
   actions touch location 0 (dependent), otherwise each touches its own
   (independent).  The full space has 2 interleavings; sleep sets must
   keep both when dependent and explore only 1 when independent. *)
let toy ~deps () : Explore.world =
  let done_ = [| false; false |] in
  {
    Explore.w_label = "toy";
    nprocs = 2;
    enabled =
      (fun () ->
        List.concat_map
          (fun pid ->
            if done_.(pid) then []
            else
              [
                {
                  Explore.pid;
                  tag = 0;
                  label = "op";
                  footprint = (if deps then 0 else pid);
                };
              ])
          [ 0; 1 ]);
    apply =
      (fun a ->
        done_.(a.Explore.pid) <- true;
        None);
    at_end = (fun () -> None);
    save =
      (fun () ->
        let s = Array.copy done_ in
        fun () -> Array.blit s 0 done_ 0 2);
    reset = (fun () -> Array.fill done_ 0 2 false);
  }

let test_toy_independent () =
  let full = Explore.explore ~sleep_sets:false (toy ~deps:false ()) in
  let slept = Explore.explore (toy ~deps:false ()) in
  Alcotest.(check int) "full DFS sees both orders" 2 full.Explore.stats.schedules;
  Alcotest.(check int) "sleep sets keep one representative" 1
    slept.Explore.stats.schedules;
  Alcotest.(check bool) "no violation" true (slept.Explore.violation = None)

let test_toy_dependent () =
  let full = Explore.explore ~sleep_sets:false (toy ~deps:true ()) in
  let slept = Explore.explore (toy ~deps:true ()) in
  Alcotest.(check int) "full DFS sees both orders" 2 full.Explore.stats.schedules;
  Alcotest.(check int) "dependent actions are not pruned" 2
    slept.Explore.stats.schedules

(* ------------------------------------------------------------------ *)
(* Renaming worlds: clean exhaustive runs *)

let world_of cfg =
  match Explore.renaming_world cfg with
  | Ok w -> w
  | Error e -> Alcotest.failf "renaming_world: %s" e

let test_rebatching_clean () =
  let cfg = Explore.default_renaming in
  let o = Explore.explore (world_of cfg) in
  Alcotest.(check bool) "complete" true o.Explore.stats.complete;
  Alcotest.(check bool) "no violation" true (o.Explore.violation = None);
  (* deterministic space: n=3, seed 1, t0=3, one crash point budget *)
  Alcotest.(check int) "schedule count pinned" 58 o.Explore.stats.schedules

let test_longlived_clean () =
  let cfg =
    { Explore.default_renaming with procs = 2; rounds = 2; crashes = 1 }
  in
  let o = Explore.explore (world_of cfg) in
  Alcotest.(check bool) "complete" true o.Explore.stats.complete;
  Alcotest.(check bool) "no violation (incl. linearizability)" true
    (o.Explore.violation = None);
  Alcotest.(check int) "schedule count pinned" 106 o.Explore.stats.schedules

(* The reduction is an optimization, never a verdict change: on the same
   configuration the pruned and unpruned searches must reach the same
   terminal outcomes. *)
let outcome_set cfg ~sleep_sets =
  let seen = Hashtbl.create 32 in
  let on_terminal names =
    let key =
      String.concat ","
        (Array.to_list
           (Array.map
              (function None -> "-" | Some u -> string_of_int u)
              names))
    in
    Hashtbl.replace seen key ()
  in
  let w =
    match Explore.renaming_world ~on_terminal cfg with
    | Ok w -> w
    | Error e -> Alcotest.failf "renaming_world: %s" e
  in
  let o = Explore.explore ~sleep_sets w in
  Alcotest.(check bool) "complete" true o.Explore.stats.complete;
  ( List.sort String.compare
      (Hashtbl.to_seq_keys seen |> List.of_seq),
    o.Explore.stats.schedules )

let test_sleep_sets_preserve_outcomes () =
  let cfg = { Explore.default_renaming with procs = 2 } in
  let full, full_n = outcome_set cfg ~sleep_sets:false in
  let slept, slept_n = outcome_set cfg ~sleep_sets:true in
  Alcotest.(check (list string)) "same terminal outcomes" full slept;
  Alcotest.(check bool) "reduction explores no more schedules" true
    (slept_n <= full_n)

(* ------------------------------------------------------------------ *)
(* Seeded bugs convict, and counterexamples stay replayable *)

let convict cfg expect =
  let w = world_of cfg in
  let o = Explore.explore w in
  match o.Explore.violation with
  | None -> Alcotest.failf "mutation %s not convicted" expect
  | Some v ->
    Alcotest.(check bool)
      (Printf.sprintf "message mentions %s" expect)
      true (contains v.Explore.message expect);
    let m = Explore.minimize w v in
    Alcotest.(check bool) "minimization kept a violation" true
      (contains m.Explore.message ""
      && List.length m.Explore.schedule <= List.length v.Explore.schedule);
    (* the minimized schedule replays to the violation *)
    (match
       Explore.replay w
         (List.map
            (fun (a : Explore.action) -> (a.Explore.pid, a.Explore.tag))
            m.Explore.schedule)
     with
    | Ok (Some _) -> ()
    | Ok None -> Alcotest.fail "minimized schedule replays clean"
    | Error e -> Alcotest.failf "minimized schedule not replayable: %s" e);
    m

let test_mutation_claim_on_lose () =
  let cfg =
    { Explore.default_renaming with crashes = 0; mutation = Some "claim-on-lose" }
  in
  let m = convict cfg "uniqueness" in
  Alcotest.(check int) "two-step counterexample" 2
    (List.length m.Explore.schedule)

let test_mutation_probe_out_of_range () =
  let cfg =
    { Explore.default_renaming with mutation = Some "probe-out-of-range" }
  in
  ignore (convict cfg "namespace bound")

let test_mutation_spin () =
  let cfg = { Explore.default_renaming with mutation = Some "spin" } in
  ignore (convict cfg "lock-freedom")

(* ------------------------------------------------------------------ *)
(* Linearizability checker *)

let op pid kind name inv resp = { Linz.pid; kind; name; inv; resp }

let test_linz_sequential () =
  let h =
    [
      op 0 Linz.Acquire 0 0 1;
      op 0 Linz.Release 0 2 3;
      op 1 Linz.Acquire 0 4 5;
    ]
  in
  Alcotest.(check bool) "sequential history linearizable" true
    (Linz.explain ~bound:2 h = None)

let test_linz_overlap_ok () =
  (* p1's acquire overlaps p0's release: linearizable by ordering the
     release first *)
  let h =
    [
      op 0 Linz.Acquire 0 0 1;
      op 0 Linz.Release 0 2 8;
      op 1 Linz.Acquire 0 3 9;
    ]
  in
  Alcotest.(check bool) "overlap resolved" true (Linz.explain ~bound:2 h = None)

let test_linz_double_hold () =
  (* both processes complete acquires of name 0 with no release: no
     legal order exists *)
  let h = [ op 0 Linz.Acquire 0 0 1; op 1 Linz.Acquire 0 2 3 ] in
  match Linz.explain ~bound:2 h with
  | Some msg ->
    Alcotest.(check bool) "explanation dumps the history" true
      (contains msg "not linearizable" && contains msg "acq")
  | None -> Alcotest.fail "double-hold history accepted"

let test_linz_bound () =
  (* a name outside [0, bound) is never grantable *)
  let h = [ op 0 Linz.Acquire 5 0 1 ] in
  Alcotest.(check bool) "out-of-bound name rejected" true
    (Linz.explain ~bound:2 h <> None)

(* ------------------------------------------------------------------ *)
(* Lease protocol model *)

let lease_cfg mutation =
  { Service.Lease_model.clients = 2; names = 1; acquires = 2; ticks = 2; mutation }

let test_lease_clean () =
  let o = Explore.explore (Worlds.lease_world (lease_cfg None)) in
  Alcotest.(check bool) "complete" true o.Explore.stats.complete;
  Alcotest.(check bool) "no violation" true (o.Explore.violation = None);
  Alcotest.(check int) "schedule count pinned" 55860 o.Explore.stats.schedules

let lease_convict mutation expect =
  let w = Worlds.lease_world (lease_cfg (Some mutation)) in
  match (Explore.explore w).Explore.violation with
  | None -> Alcotest.failf "lease mutation %s not convicted" mutation
  | Some v ->
    Alcotest.(check bool)
      (Printf.sprintf "message mentions %s" expect)
      true
      (contains v.Explore.message expect);
    Explore.minimize w v

let test_lease_stale_release () =
  let m = lease_convict "stale-release" "stale release" in
  Alcotest.(check int) "five-step counterexample" 5
    (List.length m.Explore.schedule)

let test_lease_restore_expired () = ignore (lease_convict "restore-expired" "dead token")

(* ------------------------------------------------------------------ *)
(* Fixture pipeline: canonical bytes, round-trip, audits, replay *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_fixture_roundtrip () =
  let cfg =
    { Explore.default_renaming with crashes = 0; mutation = Some "claim-on-lose" }
  in
  let w = world_of cfg in
  let v =
    match (Explore.explore w).Explore.violation with
    | Some v -> Explore.minimize w v
    | None -> Alcotest.fail "expected a violation"
  in
  let fx = Explore.renaming_fixture cfg v in
  let s = Explore.fixture_to_string fx in
  (match Explore.fixture_of_string s with
  | Ok fx' -> Alcotest.(check bool) "round-trips" true (fx = fx')
  | Error e -> Alcotest.failf "round-trip failed: %s" e);
  (* canonical-form audit: internal perturbations are rejected
     (surrounding whitespace is tolerated — save_text appends a
     newline) *)
  (match Explore.audit_fixture (s ^ "\n") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "canonical fixture rejected: %s" e);
  let tampered = "{ " ^ String.sub s 1 (String.length s - 1) in
  match Explore.audit_fixture tampered with
  | Error e ->
    Alcotest.(check bool) "tamper detected" true (contains e "canonical")
  | Ok _ -> Alcotest.fail "tampered fixture accepted"

let test_committed_fixtures_replay () =
  List.iter
    (fun file ->
      match Worlds.audit_fixture_replay (read_file file) with
      | Ok fx ->
        Alcotest.(check bool)
          (file ^ " carries a mutation") true
          (fx.Explore.fx_mutation <> None)
      | Error e -> Alcotest.failf "%s: %s" file e)
    [
      "fixtures/modelcheck_claim_on_lose.cex.json";
      "fixtures/modelcheck_lease_stale_release.cex.json";
    ]

let test_orphan_fixture_detected () =
  let source = read_file "fixtures/modelcheck_claim_on_lose.cex.json" in
  let fx =
    match Explore.fixture_of_string source with
    | Ok fx -> fx
    | Error e -> Alcotest.failf "fixture unreadable: %s" e
  in
  match Worlds.world_of_fixture { fx with Explore.fx_model = "gone" } with
  | Error e -> Alcotest.(check bool) "names the model" true (contains e "gone")
  | Ok _ -> Alcotest.fail "unknown model dispatched"

(* ------------------------------------------------------------------ *)
(* Cross-validation: sampled executions against the exhaustive space *)

(* Any outcome the sampling scheduler produces must be a terminal state
   of the exhaustive crash-free exploration with the same coin seed —
   the explorer drives the same Fast_core, so a miss would mean the
   step-granular hooks diverge from [run]. *)
let test_sampled_in_exhaustive_qcheck () =
  let prop (n, seed) =
    let cfg =
      {
        Explore.default_renaming with
        procs = n;
        seed;
        crashes = 0;
      }
    in
    let seen = Hashtbl.create 16 in
    let key names =
      String.concat ","
        (Array.to_list
           (Array.map
              (function None -> "-" | Some u -> string_of_int u)
              names))
    in
    let w =
      match Explore.renaming_world ~on_terminal:(fun ns -> Hashtbl.replace seen (key ns) ()) cfg with
      | Ok w -> w
      | Error e -> QCheck.Test.fail_reportf "renaming_world: %s" e
    in
    let o = Explore.explore w in
    if o.Explore.violation <> None then
      QCheck.Test.fail_reportf "unexpected violation in clean config";
    let inst = Renaming.Rebatching.make ~t0:cfg.Explore.t0 ~n () in
    let algo = Renaming.Fast_algo.rebatching inst in
    let r = Sim.Fast_core.run_once ~seed ~n ~algo () in
    let k = key r.Sim.Runner.names in
    Hashtbl.mem seen k
    || QCheck.Test.fail_reportf
         "sampled outcome %s not among %d exhaustive terminals" k
         (Hashtbl.length seen)
  in
  let gen =
    QCheck.make
      ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s)
      QCheck.Gen.(pair (int_range 2 3) (int_range 1 1000))
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:25 ~name:"sampled outcome in exhaustive set" gen
       prop)

(* The two independent concurrency oracles must agree on clean configs:
   the exhaustive explorer (simulated substrate, all interleavings) and
   the vector-clock certifier (real domains, sampled schedules) both
   report rebatching clean at small n. *)
let test_hb_agrees_with_exhaustive_qcheck () =
  let prop seed =
    let cfg = { Explore.default_renaming with seed } in
    let exhaustive_clean =
      (Explore.explore (world_of cfg)).Explore.violation = None
    in
    let instance = Renaming.Rebatching.make ~t0:3 ~n:3 () in
    let hb_clean =
      match
        Analysis.Hb_runner.certify ~domains:2 ~seed ~procs:3
          ~capacity:(Renaming.Rebatching.size instance)
          ~algo:(fun env -> Renaming.Rebatching.get_name env instance)
          ()
      with
      | Ok o -> o.Analysis.Hb_runner.races = []
      | Error _ -> false
    in
    if exhaustive_clean <> hb_clean then
      QCheck.Test.fail_reportf "verdicts disagree: exhaustive=%b hb=%b"
        exhaustive_clean hb_clean;
    exhaustive_clean && hb_clean
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:4 ~name:"hb and exhaustive verdicts agree"
       QCheck.(make ~print:string_of_int Gen.(int_range 1 500))
       prop)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "modelcheck",
      [
        Alcotest.test_case "toy independent pruned" `Quick test_toy_independent;
        Alcotest.test_case "toy dependent kept" `Quick test_toy_dependent;
        Alcotest.test_case "rebatching n=3 clean" `Quick test_rebatching_clean;
        Alcotest.test_case "longlived n=2 clean" `Quick test_longlived_clean;
        Alcotest.test_case "sleep sets preserve outcomes" `Quick
          test_sleep_sets_preserve_outcomes;
        Alcotest.test_case "claim-on-lose convicted" `Quick
          test_mutation_claim_on_lose;
        Alcotest.test_case "probe-out-of-range convicted" `Quick
          test_mutation_probe_out_of_range;
        Alcotest.test_case "spin convicted" `Quick test_mutation_spin;
        Alcotest.test_case "linz sequential" `Quick test_linz_sequential;
        Alcotest.test_case "linz overlap ok" `Quick test_linz_overlap_ok;
        Alcotest.test_case "linz double hold" `Quick test_linz_double_hold;
        Alcotest.test_case "linz namespace bound" `Quick test_linz_bound;
        Alcotest.test_case "lease clean" `Quick test_lease_clean;
        Alcotest.test_case "lease stale-release convicted" `Quick
          test_lease_stale_release;
        Alcotest.test_case "lease restore-expired convicted" `Quick
          test_lease_restore_expired;
        Alcotest.test_case "fixture round-trip + canonical audit" `Quick
          test_fixture_roundtrip;
        Alcotest.test_case "committed fixtures replay" `Quick
          test_committed_fixtures_replay;
        Alcotest.test_case "orphan fixture detected" `Quick
          test_orphan_fixture_detected;
        Alcotest.test_case "sampled in exhaustive (qcheck)" `Quick
          test_sampled_in_exhaustive_qcheck;
        Alcotest.test_case "hb agrees with exhaustive (qcheck)" `Quick
          test_hb_agrees_with_exhaustive_qcheck;
      ] );
  ]
