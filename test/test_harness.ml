(* Tests for lib/harness: tables, sweeps, experiment registry. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Table *)

let sample_table () =
  let t =
    Harness.Table.create
      ~columns:[ ("name", Harness.Table.Left); ("value", Harness.Table.Right) ]
  in
  Harness.Table.add_row t [ "alpha"; "1" ];
  Harness.Table.add_row t [ "b"; "22" ];
  t

let test_table_counts () =
  let t = sample_table () in
  checki "rows" 2 (Harness.Table.row_count t);
  checki "columns" 2 (Harness.Table.column_count t)

let test_table_render_alignment () =
  let t = sample_table () in
  let rendered = Harness.Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: rule :: row1 :: row2 :: _ ->
    checkb "header has both names" true
      (String.length header > 0
      && String.length rule > 0
      && String.length row1 = String.length row2)
  | _ -> Alcotest.fail "unexpected shape");
  checkb "right-aligned value column" true
    (let row_b = List.nth lines 3 in
     (* "b" row: value 22 is right-aligned under a 5-wide 'value' column *)
     String.length row_b >= 2)

let test_table_markdown () =
  let md = Harness.Table.render_markdown (sample_table ()) in
  checkb "has pipes" true (String.contains md '|');
  checkb "has alignment row" true
    (String.length md > 0
    &&
    match String.index_opt md '-' with Some _ -> true | None -> false);
  checkb "right align marker" true
    (let contains_sub s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains_sub md "---:")

let test_table_csv_escaping () =
  let t = Harness.Table.create ~columns:[ ("c", Harness.Table.Left) ] in
  Harness.Table.add_row t [ "plain" ];
  Harness.Table.add_row t [ "with,comma" ];
  Harness.Table.add_row t [ "with\"quote" ];
  let csv = Harness.Table.to_csv t in
  checks "csv"
    "c\nplain\n\"with,comma\"\n\"with\"\"quote\"\n"
    csv

let test_table_invalid () =
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns")
    (fun () -> ignore (Harness.Table.create ~columns:[]));
  let t = sample_table () in
  Alcotest.check_raises "wrong cells"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Harness.Table.add_row t [ "only one" ])

let test_cell_formatters () =
  checks "int" "42" (Harness.Table.cell_int 42);
  checks "float" "3.14" (Harness.Table.cell_float ~decimals:2 3.14159);
  checks "nan" "-" (Harness.Table.cell_float Float.nan);
  checks "ratio" "0.500" (Harness.Table.cell_ratio 1. 2.);
  checks "ratio by zero" "-" (Harness.Table.cell_ratio 1. 0.)

(* ------------------------------------------------------------------ *)
(* Sweep *)

let test_geometric_sizes () =
  Alcotest.(check (list int))
    "powers of 2"
    [ 4; 8; 16; 32 ]
    (Harness.Sweep.geometric_sizes ~lo:4 ~hi:32 ~factor:2);
  Alcotest.(check (list int))
    "factor 4 stops inside hi"
    [ 3; 12; 48 ]
    (Harness.Sweep.geometric_sizes ~lo:3 ~hi:100 ~factor:4);
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Sweep.geometric_sizes: factor must be >= 2") (fun () ->
      ignore (Harness.Sweep.geometric_sizes ~lo:1 ~hi:2 ~factor:1))

let test_scaled () =
  checki "identity" 100 (Harness.Sweep.scaled 1.0 100);
  checki "half" 50 (Harness.Sweep.scaled 0.5 100);
  checki "floor at 1" 1 (Harness.Sweep.scaled 0.001 100)

let test_over_seeds () =
  let s = Harness.Sweep.over_seeds ~seed:10 ~trials:5 (fun seed -> float_of_int seed) in
  checki "count" 5 s.Stats.Summary.count;
  checkb "mean" true (Float.abs (s.Stats.Summary.mean -. 12.) < 1e-9);
  Alcotest.check_raises "trials=0"
    (Invalid_argument "Sweep.collect_seeds: trials must be >= 1") (fun () ->
      ignore (Harness.Sweep.over_seeds ~seed:1 ~trials:0 (fun _ -> 0.)))

let test_fit_lines () =
  let sizes = [| 16.; 256.; 4096. |] in
  let values = [| 4.; 8.; 12. |] in
  let lines =
    Harness.Sweep.fit_lines ~models:[ Stats.Regression.Log ] ~sizes ~values
  in
  checki "one line per model" 1 (List.length lines);
  checkb "mentions model" true
    (let line = List.hd lines in
     String.length line > 0)

(* ------------------------------------------------------------------ *)
(* Registry and experiments *)

let test_registry_complete () =
  Alcotest.(check (list string))
    "ids in order"
    [
      "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"; "t8"; "t9"; "t10"; "t11";
      "t12"; "t13"; "t14"; "t15"; "t16"; "t17"; "t18"; "f1"; "f2"; "b2";
      (* the large-n decade sweeps ride behind Registry.all *)
      "t1l"; "t5l";
    ]
    (Harness.Registry.ids ())

let test_registry_find () =
  (match Harness.Registry.find "T5" with
  | Some e -> checks "case insensitive" "t5" e.Harness.Experiment.id
  | None -> Alcotest.fail "t5 missing");
  checkb "unknown" true (Harness.Registry.find "zzz" = None)

let test_experiments_have_claims () =
  List.iter
    (fun e ->
      checkb
        (Printf.sprintf "%s has title and claim" e.Harness.Experiment.id)
        true
        (String.length e.Harness.Experiment.title > 0
        && String.length e.Harness.Experiment.claim > 0))
    Harness.Registry.all

(* Smoke-run the cheap experiments end to end at tiny scale, with tables
   swallowed; asserts they complete without exceptions and emit at least
   one table each. *)
let test_experiments_smoke () =
  let tables = ref 0 in
  let ctx =
    {
      Harness.Experiment.seed = 1;
      trials = 2;
      scale = 0.05;
      substrate = Harness.Substrate.Fast;
      emit_table = (fun ~title:_ _ -> incr tables);
      log = (fun _ -> ());
    }
  in
  List.iter
    (fun id ->
      match Harness.Registry.find id with
      | Some e ->
        let before = !tables in
        e.Harness.Experiment.run ctx;
        checkb (Printf.sprintf "%s emitted a table" id) true (!tables > before)
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "t3"; "t7"; "t8"; "t11"; "f1" ]

let qcheck_csv_roundtrip_shape =
  QCheck.Test.make ~name:"csv has one line per row plus header" ~count:100
    QCheck.(list (pair (string_of_size (Gen.int_range 0 10)) small_int))
    (fun rows ->
      let t =
        Harness.Table.create
          ~columns:[ ("a", Harness.Table.Left); ("b", Harness.Table.Right) ]
      in
      List.iter
        (fun (s, i) ->
          (* newlines inside cells are legal CSV but break the line count *)
          let s = String.map (fun c -> if c = '\n' || c = '\r' then '_' else c) s in
          Harness.Table.add_row t [ s; string_of_int i ])
        rows;
      let csv = Harness.Table.to_csv t in
      let lines = String.split_on_char '\n' csv in
      (* trailing newline yields one empty final element *)
      List.length lines = List.length rows + 2)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "harness.table",
      [
        tc "counts" `Quick test_table_counts;
        tc "render alignment" `Quick test_table_render_alignment;
        tc "markdown" `Quick test_table_markdown;
        tc "csv escaping" `Quick test_table_csv_escaping;
        tc "invalid" `Quick test_table_invalid;
        tc "cell formatters" `Quick test_cell_formatters;
        QCheck_alcotest.to_alcotest qcheck_csv_roundtrip_shape;
      ] );
    ( "harness.sweep",
      [
        tc "geometric sizes" `Quick test_geometric_sizes;
        tc "scaled" `Quick test_scaled;
        tc "over seeds" `Quick test_over_seeds;
        tc "fit lines" `Quick test_fit_lines;
      ] );
    ( "harness.registry",
      [
        tc "complete" `Quick test_registry_complete;
        tc "find" `Quick test_registry_find;
        tc "claims present" `Quick test_experiments_have_claims;
        tc "experiments smoke" `Slow test_experiments_smoke;
      ] );
  ]
