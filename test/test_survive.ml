(* Service survivability: the lease table's epoch machinery (including
   the QCheck TTL-boundary race property), the crash journal (codec
   round-trip, torn tails, CRC damage, replay, compaction, an Io_fault
   kill-point sweep), and end-to-end daemon behavior — lease expiry,
   renew heartbeats, idempotent-acquire dedup, journal write-ahead
   rollback, crash recovery, and the durable client's reconnect. *)

open Service

(* ------------------------------------------------------------------ *)
(* Lease: unit coverage of the epoch tie-breaker *)

let test_lease_grant_release () =
  let t = Lease.create ~ttl_s:1.0 () in
  let e = Lease.grant t ~now:0. ~name:5 ~holder:(Some 1) ~token:7 in
  Alcotest.(check bool) "epoch positive" true (e > 0);
  Alcotest.(check (option int)) "epoch_of" (Some e) (Lease.epoch_of t ~name:5);
  Alcotest.(check int) "one live lease" 1 (Lease.held t);
  (match Lease.release t ~name:5 ~epoch:e with
  | `Released -> ()
  | _ -> Alcotest.fail "matching epoch must release");
  (match Lease.release t ~name:5 ~epoch:e with
  | `Unknown -> ()
  | _ -> Alcotest.fail "released name must be Unknown");
  Alcotest.(check int) "empty" 0 (Lease.held t)

let test_lease_expiry_and_monotonicity () =
  let t = Lease.create ~ttl_s:1.0 () in
  let e1 = Lease.grant t ~now:0. ~name:1 ~holder:(Some 9) ~token:3 in
  Alcotest.(check (list (triple int int (option int))))
    "nothing due before the TTL" []
    (List.map
       (fun (n, e, h, _) -> (n, e, h))
       (Lease.expire_due t ~now:0.5));
  (match Lease.expire_due t ~now:1.5 with
  | [ (1, e, Some 9, 3) ] when e = e1 -> ()
  | other ->
    Alcotest.failf "expected the one expired lease, got %d entries"
      (List.length other));
  let e2 = Lease.grant t ~now:2. ~name:1 ~holder:(Some 9) ~token:4 in
  Alcotest.(check bool) "epochs strictly increase across reissue" true (e2 > e1)

let test_lease_renew_extends () =
  let t = Lease.create ~ttl_s:1.0 () in
  ignore (Lease.grant t ~now:0. ~name:2 ~holder:(Some 4) ~token:0);
  Alcotest.(check int) "renew touches the holder's lease" 1
    (Lease.renew t ~now:0.9 ~holder:4);
  Alcotest.(check (list int)) "renewed lease outlives the old deadline" []
    (List.map (fun (n, _, _, _) -> n) (Lease.expire_due t ~now:1.5));
  (* A lease past its TTL but not yet swept is still renewable: it is
     the sweep, not the clock, that kills it. *)
  Alcotest.(check int) "late renew still lands" 1
    (Lease.renew t ~now:3.0 ~holder:4);
  Alcotest.(check int) "lease survives" 1 (Lease.held t)

let test_lease_token_binding () =
  let t = Lease.create ~ttl_s:1.0 () in
  let e = Lease.grant t ~now:0. ~name:8 ~holder:(Some 1) ~token:42 in
  Alcotest.(check (option (pair int int)))
    "token resolves to its lease" (Some (8, e))
    (Lease.find_token t ~token:42);
  Alcotest.(check bool) "rebind with the live epoch succeeds" true
    (Lease.rebind t ~now:0.5 ~name:8 ~epoch:e ~holder:2);
  (match Lease.holder_of t ~name:8 with
  | Some (Some 2) -> ()
  | _ -> Alcotest.fail "rebind must move the holder");
  Alcotest.(check bool) "rebind with a dead epoch fails" false
    (Lease.rebind t ~now:0.5 ~name:8 ~epoch:(e + 1) ~holder:3);
  ignore (Lease.expire_due t ~now:10.);
  Alcotest.(check (option (pair int int)))
    "token binding dies with the lease" None
    (Lease.find_token t ~token:42)

let test_lease_restore () =
  let t = Lease.create ~ttl_s:1.0 () in
  Lease.restore t ~now:0. ~name:3 ~epoch:10 ~token:6;
  Alcotest.(check (option int)) "original epoch kept" (Some 10)
    (Lease.epoch_of t ~name:3);
  (match Lease.holder_of t ~name:3 with
  | Some None -> ()
  | _ -> Alcotest.fail "restored lease must be an orphan");
  Alcotest.(check (option (pair int int)))
    "restored token still matches" (Some (3, 10))
    (Lease.find_token t ~token:6);
  let e = Lease.grant t ~now:0. ~name:4 ~holder:None ~token:0 in
  Alcotest.(check bool) "epoch counter bumped past the restore" true (e > 10)

(* The renew-vs-expiry race at the TTL boundary, driven deterministically:
   once a lease expires and its name is reissued, the stale holder's
   epoch can neither release nor rebind (dedup-match) the new lease, and
   its token no longer resolves. *)
let qcheck_lease_ttl_boundary =
  QCheck.Test.make ~name:"stale epoch never frees or steals a reissued name"
    ~count:500
    QCheck.(
      quad (float_range 0.01 10.) (float_range 0. 1000.) (int_range 0 4096)
        (int_range 1 1_000_000))
    (fun (ttl, now0, name, token) ->
      let t = Lease.create ~ttl_s:ttl () in
      let ttl = Lease.ttl_s t in
      let e1 = Lease.grant t ~now:now0 ~name ~holder:(Some 1) ~token in
      (* Probe strictly inside, then strictly past, the TTL window. *)
      let inside = now0 +. (ttl /. 2.) in
      let past = now0 +. (ttl *. 2.) +. 0.001 in
      let not_due = Lease.expire_due t ~now:inside = [] in
      let renewed = Lease.renew t ~now:inside ~holder:1 = 1 in
      let expired =
        match Lease.expire_due t ~now:(past +. ttl) with
        | [ (n, e, Some 1, tok) ] -> n = name && e = e1 && tok = token
        | _ -> false
      in
      let e2 = Lease.grant t ~now:past ~name ~holder:(Some 2) ~token:(token + 1) in
      let stale_release =
        match Lease.release t ~name ~epoch:e1 with `Stale -> true | _ -> false
      in
      let stale_rebind = not (Lease.rebind t ~now:past ~name ~epoch:e1 ~holder:1) in
      let stale_token = Lease.find_token t ~token = None in
      let live_release =
        match Lease.release t ~name ~epoch:e2 with
        | `Released -> true
        | _ -> false
      in
      not_due && renewed && expired && e2 > e1 && stale_release && stale_rebind
      && stale_token && live_release)

(* ------------------------------------------------------------------ *)
(* Journal: codec, damage tolerance, replay, compaction *)

let temp_journal () =
  let path = Filename.temp_file "journal_test" ".journal" in
  Sys.remove path;
  path

let with_journal path f =
  match Journal.open_append ~path with
  | Error e -> Alcotest.failf "open_append: %s" e
  | Ok j -> Fun.protect ~finally:(fun () -> Journal.close j) (fun () -> f j)

let sample_records =
  [
    Journal.Grant { name = 0; epoch = 1; client = 7; token = 99 };
    Journal.Grant
      {
        name = (1 lsl 32) - 1;
        epoch = 1 lsl 40;
        client = (1 lsl 32) - 1;
        token = (1 lsl 32) - 1;
      };
    Journal.Release { name = 0; epoch = 1 };
    Journal.Expire { name = (1 lsl 32) - 1; epoch = 1 lsl 40 };
  ]

let scan_ok path =
  match Journal.scan ~path with
  | Error e -> Alcotest.failf "scan: %s" e
  | Ok s -> s

let test_journal_roundtrip () =
  let path = temp_journal () in
  with_journal path (fun j -> List.iter (Journal.append j) sample_records);
  let s = scan_ok path in
  Alcotest.(check bool) "no torn tail" false s.Journal.torn_tail;
  Alcotest.(check int) "no damage" 0 s.Journal.damaged;
  Alcotest.(check bool) "records round-trip in order" true
    (s.Journal.records = sample_records);
  Sys.remove path

let truncate_file path n =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  Unix.ftruncate fd (max 0 (size - n));
  Unix.close fd

let test_journal_torn_tail () =
  let path = temp_journal () in
  with_journal path (fun j -> List.iter (Journal.append j) sample_records);
  truncate_file path 3;
  let s = scan_ok path in
  Alcotest.(check bool) "torn tail detected" true s.Journal.torn_tail;
  Alcotest.(check int) "a torn tail is not damage" 0 s.Journal.damaged;
  Alcotest.(check bool) "intact prefix recovered" true
    (s.Journal.records
    = List.filteri (fun i _ -> i < List.length sample_records - 1)
        sample_records);
  Sys.remove path

let test_journal_crc_damage () =
  let path = temp_journal () in
  with_journal path (fun j -> List.iter (Journal.append j) sample_records);
  (* Flip one payload byte inside the first record (8 bytes of framing,
     then the payload). *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 10 Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  ignore (Unix.lseek fd 10 Unix.SEEK_SET);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let s = scan_ok path in
  Alcotest.(check bool) "damage on a complete record is reported" true
    (s.Journal.damaged > 0);
  Sys.remove path

let test_journal_replay () =
  let open Journal in
  let live =
    replay
      [
        Grant { name = 1; epoch = 1; client = 10; token = 5 };
        Grant { name = 2; epoch = 2; client = 11; token = 0 };
        Release { name = 1; epoch = 1 };
        Expire { name = 2; epoch = 2 };
        Grant { name = 1; epoch = 7; client = 12; token = 8 };
      ]
  in
  Alcotest.(check bool) "one live grant" true
    (live.grants = [ (1, (7, 12, 8)) ]);
  Alcotest.(check int) "next epoch past the max" 8 live.next_epoch;
  Alcotest.(check int) "no double grants" 0 live.double_grants;
  Alcotest.(check int) "no stale releases" 0 live.stale_releases;
  let dup =
    replay
      [
        Grant { name = 3; epoch = 1; client = 0; token = 0 };
        Grant { name = 3; epoch = 2; client = 1; token = 0 };
      ]
  in
  Alcotest.(check int) "double grant of a live name counted" 1
    dup.double_grants;
  let stale =
    replay
      [
        Grant { name = 4; epoch = 9; client = 0; token = 0 };
        Release { name = 4; epoch = 3 };
      ]
  in
  Alcotest.(check int) "stale release counted" 1 stale.stale_releases;
  Alcotest.(check bool) "stale release frees nothing" true
    (stale.grants = [ (4, (9, 0, 0)) ])

let test_journal_rewrite () =
  let path = temp_journal () in
  let grants = [ (3, (7, 1, 0)); (9, (8, 2, 55)) ] in
  (match Journal.rewrite ~path grants with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rewrite: %s" e);
  let s = scan_ok path in
  Alcotest.(check int) "compacted to the live grants" 2
    (List.length s.Journal.records);
  let live = Journal.replay s.Journal.records in
  Alcotest.(check bool) "replay of the compaction is the input" true
    (live.Journal.grants = grants);
  Sys.remove path

(* Kill-point sweep: fail every append in every way the engine's I/O
   fault shim knows, and require that the journal never shows CRC
   damage — only a clean prefix, possibly with a torn tail. *)
let test_journal_kill_point_sweep () =
  let records =
    List.init 5 (fun i ->
        Journal.Grant { name = i; epoch = i + 1; client = i; token = i })
  in
  let kinds =
    [
      Engine.Io_fault.Drop;
      Engine.Io_fault.Short 1;
      Engine.Io_fault.Short 9;
      Engine.Io_fault.Short 20;
      Engine.Io_fault.After_append;
    ]
  in
  Fun.protect ~finally:Engine.Io_fault.disarm (fun () ->
      List.iter
        (fun kind ->
          for op = 0 to List.length records - 1 do
            let path = temp_journal () in
            Engine.Io_fault.arm { Engine.Io_fault.op; kind };
            let written = ref 0 in
            (try
               with_journal path (fun j ->
                   List.iter
                     (fun r ->
                       Journal.append j r;
                       incr written)
                     records)
             with Engine.Io_fault.Injected _ -> ());
            Engine.Io_fault.disarm ();
            let s = scan_ok path in
            Alcotest.(check int) "a crashed append never leaves damage" 0
              s.Journal.damaged;
            let n = List.length s.Journal.records in
            Alcotest.(check bool) "intact records are a prefix" true
              (s.Journal.records
              = List.filteri (fun i _ -> i < n) records);
            (* Drop/Short lose the failing record (torn at worst);
               After_append persists it even though the caller saw the
               failure — exactly the case the server's grant rollback
               turns into an expiring orphan. *)
            (match kind with
            | Engine.Io_fault.After_append ->
              Alcotest.(check int) "After_append is durable" (!written + 1) n
            | _ ->
              Alcotest.(check int) "Drop/Short lose the failing record"
                !written n);
            Sys.remove path
          done)
        kinds)

(* ------------------------------------------------------------------ *)
(* End-to-end: leases, dedup, write-ahead, recovery, reconnect *)

let fresh_socket_path () =
  let path = Filename.temp_file "renamed_survive" ".sock" in
  Unix.unlink path;
  path

let base_cfg ?(shards = 2) ?(capacity = 128) ?(lease_ttl = 30.) ?journal
    ?(recover = false) path =
  {
    (Server.default_config ~socket_path:path) with
    shards;
    capacity;
    lease_ttl_s = lease_ttl;
    journal_path = journal;
    recover;
  }

let start_server cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let s = Server.spawn cfg in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match Client.connect ~path:cfg.Server.socket_path () with
    | Ok c ->
      Client.close c;
      s
    | Error _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server did not come up within 10s"
      else begin
        ignore (Unix.select [] [] [] 0.02);
        wait ()
      end
  in
  wait ()

let stop_server s =
  Server.stop (Server.spawned_handle s);
  Server.join s

let get cl = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" cl e

let getf cl = function
  | Ok v -> v
  | Error f -> Alcotest.failf "%s: %s" cl (Client.failure_message f)

let stat_int c key = Jsonu.int_ (Jsonu.obj (getf "stats" (Client.stats c))) key

let wait_for ?(deadline_s = 10.) what pred =
  let deadline = Unix.gettimeofday () +. deadline_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      ignore (Unix.select [] [] [] 0.03);
      go ()
    end
  in
  go ()

let test_e2e_lease_expiry () =
  let path = fresh_socket_path () in
  let s = start_server (base_cfg ~lease_ttl:0.2 path) in
  Fun.protect
    ~finally:(fun () -> try ignore (stop_server s) with _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      let name = getf "acquire" (Client.acquire c ~client:1) in
      Alcotest.(check int) "held" 1 (stat_int c "taken");
      (* Go silent without disconnecting: the sweep, driven by the lease
         TTL, must reclaim the slot out from under us. *)
      wait_for "the expiry sweep" (fun () -> stat_int c "taken" = 0);
      Alcotest.(check bool) "expiry counted" true
        (stat_int c "expired_leases" >= 1);
      (* Our claim is dead: releasing the reissued/reclaimed name must
         be refused, never honoured. *)
      (match Client.release c ~client:1 ~name with
      | Error (Client.Remote { code; _ }) ->
        Alcotest.(check int) "stale release refused" Wire.err_not_held code
      | Error (Client.Transport e) -> Alcotest.failf "transport: %s" e
      | Error (Client.Busy _) -> Alcotest.fail "release refused as busy"
      | Ok () -> Alcotest.fail "stale release succeeded");
      Client.close c)

let test_e2e_renew_keeps_alive () =
  let path = fresh_socket_path () in
  let s = start_server (base_cfg ~lease_ttl:0.3 path) in
  Fun.protect
    ~finally:(fun () -> try ignore (stop_server s) with _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      let name = getf "acquire" (Client.acquire c ~client:2) in
      (* Heartbeat through 4 TTLs: the lease must never lapse. *)
      for _ = 1 to 12 do
        Unix.sleepf 0.1;
        Alcotest.(check int) "renew extends our one lease" 1
          (getf "renew" (Client.renew c ~client:2))
      done;
      Alcotest.(check int) "still held after 4 TTLs of heartbeats" 1
        (stat_int c "taken");
      getf "release" (Client.release c ~client:2 ~name);
      Alcotest.(check int) "released" 0 (stat_int c "taken");
      Client.close c)

let test_e2e_token_dedup () =
  let path = fresh_socket_path () in
  let s = start_server (base_cfg path) in
  Fun.protect
    ~finally:(fun () -> try ignore (stop_server s) with _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      let n1 = getf "acquire" (Client.acquire ~token:77 c ~client:3) in
      (* A retry carrying the same token must re-deliver the original
         grant, not take a second slot. *)
      let n2 = getf "acquire" (Client.acquire ~token:77 c ~client:3) in
      Alcotest.(check int) "same name re-delivered" n1 n2;
      Alcotest.(check int) "one slot taken" 1 (stat_int c "taken");
      Alcotest.(check int) "dedup counted" 1 (stat_int c "dedup_hits");
      (* A different token is a different logical acquire. *)
      let n3 = getf "acquire" (Client.acquire ~token:78 c ~client:3) in
      Alcotest.(check bool) "fresh token, fresh name" true (n3 <> n1);
      Client.close c)

let test_e2e_journal_write_ahead () =
  let path = fresh_socket_path () in
  let journal = temp_journal () in
  let s = start_server (base_cfg ~journal path) in
  Fun.protect
    ~finally:(fun () ->
      Engine.Io_fault.disarm ();
      (try ignore (stop_server s) with _ -> ());
      try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      (* Fail the next journal append: the grant must be rolled back
         before the client ever sees it. *)
      Engine.Io_fault.arm { Engine.Io_fault.op = 0; kind = Engine.Io_fault.Drop };
      (match Client.acquire c ~client:1 with
      | Error (Client.Remote { code; _ }) ->
        Alcotest.(check int) "unjournaled grant is err_internal"
          Wire.err_internal code
      | Error (Client.Transport e) -> Alcotest.failf "transport: %s" e
      | Error (Client.Busy _) -> Alcotest.fail "acquire refused as busy"
      | Ok n -> Alcotest.failf "grant %d acknowledged without a journal" n);
      Engine.Io_fault.disarm ();
      (* The rollback release runs on the shard worker, so it can land
         just after the error reply: poll, don't snapshot. *)
      wait_for "the grant rollback" (fun () -> stat_int c "taken" = 0);
      (* With the fault gone the same client acquires normally, and the
         grant is on disk before the reply. *)
      let name = getf "acquire" (Client.acquire c ~client:1) in
      let scan =
        match Journal.scan ~path:journal with
        | Ok s -> s
        | Error e -> Alcotest.failf "scan: %s" e
      in
      let live = Journal.replay scan.Journal.records in
      Alcotest.(check bool) "the acknowledged grant is journaled" true
        (List.mem_assoc name live.Journal.grants);
      Client.close c)

(* Craft a journal holding live grants, as a SIGKILL-ed daemon leaves
   behind. *)
let craft_journal ?(epochs = [ (0, 5); (1, 7); (2, 9) ]) path =
  (match Journal.open_append ~path with
  | Error e -> Alcotest.failf "craft: %s" e
  | Ok j ->
    List.iter
      (fun (name, epoch) ->
        Journal.append j (Journal.Grant { name; epoch; client = 99; token = 0 }))
      epochs;
    Journal.close j);
  List.map fst epochs

let test_e2e_recovery () =
  let path = fresh_socket_path () in
  let journal = temp_journal () in
  let names = craft_journal journal in
  let s = start_server (base_cfg ~lease_ttl:0.6 ~journal ~recover:true path) in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (stop_server s) with _ -> ());
      try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      Alcotest.(check int) "journaled grants re-occupied"
        (List.length names) (stat_int c "recovered");
      Alcotest.(check int) "recovered slots are taken" (List.length names)
        (stat_int c "taken");
      (* While the restored leases live, no client may be granted a
         recovered name — that would be a double grant. *)
      let granted =
        List.init 30 (fun i -> getf "acquire" (Client.acquire c ~client:i))
      in
      List.iter
        (fun n ->
          if List.mem n names then
            Alcotest.failf "recovered name %d double-granted" n)
        granted;
      List.iteri
        (fun i n -> getf "release" (Client.release c ~client:i ~name:n))
        granted;
      (* Nobody renews the orphans: one TTL later the sweep frees them,
         and the namespace is whole again. *)
      wait_for "orphan leases to expire" (fun () -> stat_int c "taken" = 0);
      Client.close c;
      match stop_server s with
      | Error e -> Alcotest.failf "drain: %s" e
      | Ok r ->
        Alcotest.(check int) "report counts recovery" (List.length names)
          r.Server.recovered;
        Alcotest.(check bool) "clean exit" true (Server.report_clean r))

let test_e2e_recovery_refused () =
  let path = fresh_socket_path () in
  let journal = temp_journal () in
  ignore (craft_journal journal);
  let s = Server.spawn (base_cfg ~journal ~recover:false path) in
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      match Server.join s with
      | Ok _ -> Alcotest.fail "booted over live grants without --recover"
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error is the recovery-required refusal: %s" e)
          true
          (Server.recovery_refused e))

let test_e2e_damaged_journal_refused () =
  let path = fresh_socket_path () in
  let journal = temp_journal () in
  ignore (craft_journal journal);
  (* Corrupt a complete record: recovery must refuse even with
     --recover — this is damage, not a crash artifact. *)
  let fd = Unix.openfile journal [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 12 Unix.SEEK_SET);
  ignore (Unix.write_substring fd "\xde" 0 1);
  Unix.close fd;
  let s = Server.spawn (base_cfg ~journal ~recover:true path) in
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      match Server.join s with
      | Ok _ -> Alcotest.fail "booted over a damaged journal"
      | Error e ->
        Alcotest.(check bool) "damage is not the recovery-required case"
          false
          (Server.recovery_refused e))

let test_e2e_recovery_compacts () =
  let path = fresh_socket_path () in
  let journal = temp_journal () in
  (* Live grants buried under released/expired history. *)
  (match Journal.open_append ~path:journal with
  | Error e -> Alcotest.failf "craft: %s" e
  | Ok j ->
    for i = 0 to 19 do
      Journal.append j
        (Journal.Grant { name = i; epoch = i + 1; client = 1; token = 0 });
      if i >= 2 then
        Journal.append j (Journal.Release { name = i; epoch = i + 1 })
    done;
    Journal.close j);
  let s = start_server (base_cfg ~lease_ttl:0.5 ~journal ~recover:true path) in
  Fun.protect
    ~finally:(fun () ->
      (try ignore (stop_server s) with _ -> ());
      try Sys.remove journal with Sys_error _ -> ())
    (fun () ->
      let c = get "connect" (Client.connect ~path ()) in
      Alcotest.(check int) "only the live grants recovered" 2
        (stat_int c "recovered");
      Client.close c;
      (* Boot-time compaction rewrote history down to the live set. *)
      let scan =
        match Journal.scan ~path:journal with
        | Ok sc -> sc
        | Error e -> Alcotest.failf "scan: %s" e
      in
      let grants, others =
        List.partition
          (function Journal.Grant _ -> true | _ -> false)
          scan.Journal.records
      in
      Alcotest.(check int) "compacted journal starts from two grants" 2
        (List.length grants);
      (* Anything after compaction is this boot's own activity (the
         orphans' expiry records), never stale history. *)
      List.iter
        (function
          | Journal.Expire _ | Journal.Release _ -> ()
          | Journal.Grant _ -> ())
        others)

let test_e2e_durable_reconnect () =
  let path = fresh_socket_path () in
  let s1 = start_server (base_cfg path) in
  let d = Client.Durable.create ~path ~seed:5 () in
  Fun.protect
    ~finally:(fun () -> Client.Durable.close d)
    (fun () ->
      ignore (getf "acquire" (Client.Durable.acquire d ~client:1));
      (* The daemon goes away (graceful here; the SIGKILL variant is the
         chaos soak's job) and a new one takes over the socket: the
         durable client must ride across with backoff, not fail. *)
      (match stop_server s1 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "first daemon: %s" e);
      let s2 = start_server (base_cfg path) in
      Fun.protect
        ~finally:(fun () -> try ignore (stop_server s2) with _ -> ())
        (fun () ->
          ignore (getf "acquire again" (Client.Durable.acquire d ~client:1));
          Alcotest.(check bool) "the reconnect was counted" true
            (Client.Durable.reconnects d >= 1)))

(* ------------------------------------------------------------------ *)

let suite =
  let tc = Alcotest.test_case in
  let qc = QCheck_alcotest.to_alcotest in
  [
    ( "survive.lease",
      [
        tc "grant and release" `Quick test_lease_grant_release;
        tc "expiry and epoch monotonicity" `Quick
          test_lease_expiry_and_monotonicity;
        tc "renew extends" `Quick test_lease_renew_extends;
        tc "token binding" `Quick test_lease_token_binding;
        tc "restore" `Quick test_lease_restore;
        qc qcheck_lease_ttl_boundary;
      ] );
    ( "survive.journal",
      [
        tc "round-trip" `Quick test_journal_roundtrip;
        tc "torn tail" `Quick test_journal_torn_tail;
        tc "crc damage" `Quick test_journal_crc_damage;
        tc "replay" `Quick test_journal_replay;
        tc "rewrite compaction" `Quick test_journal_rewrite;
        tc "kill-point sweep" `Quick test_journal_kill_point_sweep;
      ] );
    ( "survive.e2e",
      [
        tc "lease expiry reclaims silent holders" `Quick test_e2e_lease_expiry;
        tc "renew keeps names alive" `Quick test_e2e_renew_keeps_alive;
        tc "idempotent acquire dedup" `Quick test_e2e_token_dedup;
        tc "journal write-ahead rollback" `Quick test_e2e_journal_write_ahead;
        tc "crash recovery re-occupies grants" `Quick test_e2e_recovery;
        tc "recovery refused without --recover" `Quick
          test_e2e_recovery_refused;
        tc "damaged journal refused" `Quick test_e2e_damaged_journal_refused;
        tc "recovery compacts the journal" `Quick test_e2e_recovery_compacts;
        tc "durable client reconnects" `Quick test_e2e_durable_reconnect;
      ] );
  ]
