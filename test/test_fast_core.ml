(* Cross-substrate equivalence: the zero-allocation fast core, the
   effects scheduler and the real-atomics sequential driver must produce
   identical results field for field whenever they execute the same
   schedule with the same seed.  This is the contract that lets the
   headline experiments run on the fast substrate while the adversarial
   and multicore work stays on the reference paths. *)

let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Result comparison *)

let results_equal (a : Sim.Runner.result) (b : Sim.Runner.result) =
  a.Sim.Runner.names = b.Sim.Runner.names
  && a.Sim.Runner.steps = b.Sim.Runner.steps
  && a.Sim.Runner.crashed = b.Sim.Runner.crashed
  && a.Sim.Runner.total_steps = b.Sim.Runner.total_steps
  && a.Sim.Runner.max_steps = b.Sim.Runner.max_steps
  && a.Sim.Runner.space_used = b.Sim.Runner.space_used
  && a.Sim.Runner.crash_count = b.Sim.Runner.crash_count
  && a.Sim.Runner.point_contention = b.Sim.Runner.point_contention

let diff_report label (a : Sim.Runner.result) (b : Sim.Runner.result) =
  let fields =
    [
      ("names", a.Sim.Runner.names = b.Sim.Runner.names);
      ("steps", a.Sim.Runner.steps = b.Sim.Runner.steps);
      ("crashed", a.Sim.Runner.crashed = b.Sim.Runner.crashed);
      ("total_steps", a.Sim.Runner.total_steps = b.Sim.Runner.total_steps);
      ("max_steps", a.Sim.Runner.max_steps = b.Sim.Runner.max_steps);
      ("space_used", a.Sim.Runner.space_used = b.Sim.Runner.space_used);
      ("crash_count", a.Sim.Runner.crash_count = b.Sim.Runner.crash_count);
      ( "point_contention",
        a.Sim.Runner.point_contention = b.Sim.Runner.point_contention );
    ]
  in
  let bad = List.filter (fun (_, ok) -> not ok) fields in
  Printf.sprintf "%s: fields differ: %s" label
    (String.concat ", " (List.map fst bad))

(* ------------------------------------------------------------------ *)
(* Spec generation: (algorithm, parameters) drawn by QCheck *)

let spec_of_choice ~n ~t0 ~epsilon = function
  | 0 -> Harness.Substrate.rebatching (Renaming.Rebatching.make ~epsilon ~t0 ~n ())
  | 1 -> Harness.Substrate.adaptive (Renaming.Object_space.create ~t0 ())
  | 2 -> Harness.Substrate.fast_adaptive (Renaming.Object_space.create ~t0 ())
  | 3 -> Harness.Substrate.uniform ~m:(2 * n) ~max_steps:(1000 * n)
  | 4 -> Harness.Substrate.linear_scan ~m:(2 * n)
  | 5 -> Harness.Substrate.cyclic_scan ~m:(2 * n)
  | _ -> Harness.Substrate.adaptive_doubling (Renaming.Object_space.create ~t0 ())

let case_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* n = int_range 1 192 in
    let* choice = int_range 0 6 in
    let* t0 = int_range 2 4 in
    let* eps_i = int_range 1 4 in
    let* shuffled = bool in
    return (seed, n, choice, t0, 0.25 *. float_of_int eps_i, shuffled))

let case_print (seed, n, choice, t0, epsilon, shuffled) =
  Printf.sprintf "seed=%d n=%d algo=%d t0=%d epsilon=%g shuffled=%b" seed n
    choice t0 epsilon shuffled

let case_arb = QCheck.make ~print:case_print case_gen

(* The sequential schedule is expressible on all three substrates. *)
let qcheck_sequential_equivalence =
  QCheck.Test.make ~name:"sequential: fast = effects = atomic" ~count:220
    case_arb (fun (seed, n, choice, t0, epsilon, shuffled) ->
      let run substrate =
        let spec = spec_of_choice ~n ~t0 ~epsilon choice in
        Harness.Substrate.run_sequential ~shuffled substrate spec ~seed ~n ()
      in
      let fast = run Harness.Substrate.Fast in
      let effects = run Harness.Substrate.Effects in
      let atomic = run Harness.Substrate.Atomic in
      if not (results_equal fast effects) then
        QCheck.Test.fail_report (diff_report "fast vs effects" fast effects);
      if not (results_equal fast atomic) then
        QCheck.Test.fail_report (diff_report "fast vs atomic" fast atomic);
      true)

(* The uniformly random concurrent schedule: fast vs effects (the atomic
   driver is sequential-only). *)
let qcheck_concurrent_equivalence =
  QCheck.Test.make ~name:"uniform concurrent: fast = effects" ~count:60
    case_arb (fun (seed, n, choice, t0, epsilon, _shuffled) ->
      let run substrate =
        let spec = spec_of_choice ~n ~t0 ~epsilon choice in
        Harness.Substrate.run substrate spec ~seed ~n ()
      in
      let fast = run Harness.Substrate.Fast in
      let effects = run Harness.Substrate.Effects in
      if not (results_equal fast effects) then
        QCheck.Test.fail_report (diff_report "fast vs effects" fast effects);
      true)

(* ------------------------------------------------------------------ *)
(* Crash edges: Chaos.Fault_plan schedules replayed on both substrates *)

let algo_name = function
  | 0 -> "rebatching"
  | 1 -> "adaptive"
  | _ -> "fast"

(* Before-op crashes are expressible on both substrates
   (Adversary.with_planned_crashes on effects, arm_crash on fast), so a
   Fault_plan's armed schedule must produce identical results and the
   same safety verdict on both. *)
let qcheck_crash_equivalence =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 1 100_000 in
      let* n = int_range 4 96 in
      let* choice = int_range 0 2 in
      let* frac_i = int_range 1 3 in
      return (seed, n, choice, 0.25 *. float_of_int frac_i))
  in
  let print (seed, n, choice, frac) =
    Printf.sprintf "seed=%d n=%d algo=%s crash_frac=%g" seed n
      (algo_name choice) frac
  in
  QCheck.Test.make ~name:"planned before-op crashes: fast = effects" ~count:60
    (QCheck.make ~print gen) (fun (seed, n, choice, crash_frac) ->
      let plan =
        Chaos.Fault_plan.make ~seed ~procs:n ~domains:1
          ~algo:(algo_name choice) ~capacity:(8 * n) ~crash_frac ()
      in
      let crashes =
        List.filter_map
          (fun (c : Chaos.Fault_plan.crash) ->
            match c.Chaos.Fault_plan.point with
            | Chaos.Fault_plan.Before_op ->
              Some (c.Chaos.Fault_plan.pid, c.Chaos.Fault_plan.op)
            | Chaos.Fault_plan.After_win -> None)
          plan.Chaos.Fault_plan.crashes
      in
      let spec =
        spec_of_choice ~n ~t0:3 ~epsilon:1.0
          (match choice with 0 -> 0 | 1 -> 1 | _ -> 2)
      in
      let effects =
        Sim.Runner.run
          ~adversary:
            (Sim.Adversary.with_planned_crashes ~crashes Sim.Adversary.random)
          ~seed ~n
          ~algo:(Harness.Substrate.closure spec)
          ()
      in
      let core =
        Sim.Fast_core.create ~algo:(Harness.Substrate.fast_algo spec) ~n ()
      in
      Sim.Fast_core.reset core ~seed;
      List.iter
        (fun (pid, op) ->
          Sim.Fast_core.arm_crash core ~pid ~op ~after_win:false)
        crashes;
      Sim.Fast_core.run core;
      let fast = Sim.Fast_core.result core in
      if not (results_equal fast effects) then
        QCheck.Test.fail_report (diff_report "fast vs effects" fast effects);
      if
        Sim.Runner.check_unique_names fast
        <> Sim.Runner.check_unique_names effects
      then QCheck.Test.fail_report "uniqueness verdicts differ";
      true)

(* After-win crashes (the §2 leak) exist only on the fast substrate; pin
   their accounting: the crashed process holds no name, survivors stay
   unique, and every fired crash is counted. *)
let test_after_win_leak () =
  let n = 64 in
  let spec =
    Harness.Substrate.rebatching (Renaming.Rebatching.make ~t0:3 ~n ())
  in
  let core =
    Sim.Fast_core.create ~algo:(Harness.Substrate.fast_algo spec) ~n ()
  in
  List.iter
    (fun seed ->
      Sim.Fast_core.reset core ~seed;
      (* arm a spread of early after-win crashes *)
      let armed = [ (1, 1); (7, 2); (13, 1); (30, 3); (55, 2) ] in
      List.iter
        (fun (pid, op) -> Sim.Fast_core.arm_crash core ~pid ~op ~after_win:true)
        armed;
      Sim.Fast_core.run core;
      let r = Sim.Fast_core.result core in
      Array.iteri
        (fun pid crashed ->
          if crashed then
            checkb
              (Printf.sprintf "seed %d: crashed pid %d has no name" seed pid)
              true
              (r.Sim.Runner.names.(pid) = None))
        r.Sim.Runner.crashed;
      checkb
        (Printf.sprintf "seed %d: survivors unique" seed)
        true
        (Sim.Runner.check_unique_names r);
      let fired = r.Sim.Runner.crash_count in
      checkb
        (Printf.sprintf "seed %d: fired crashes within armed" seed)
        true
        (fired >= 1 && fired <= List.length armed))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Prng.Flat is bit-compatible with the Splitmix split_at convention *)

let test_flat_stream_identity () =
  let streams = 5 and draws = 64 in
  let bank = Prng.Flat.create streams in
  List.iter
    (fun seed ->
      Prng.Flat.reseed bank ~seed;
      let root = Prng.Splitmix.of_int seed in
      for i = 0 to streams - 1 do
        let g = Prng.Splitmix.split_at root i in
        for d = 1 to draws do
          let a = Prng.Flat.bits bank i and b = Prng.Splitmix.bits g in
          if a <> b then
            Alcotest.failf "seed %d stream %d draw %d: flat %d <> splitmix %d"
              seed i d a b
        done
      done)
    [ 0; 1; 42; 123456; max_int ]

let suite =
  [
    ( "fast_core.equivalence",
      [
        QCheck_alcotest.to_alcotest qcheck_sequential_equivalence;
        QCheck_alcotest.to_alcotest qcheck_concurrent_equivalence;
        QCheck_alcotest.to_alcotest qcheck_crash_equivalence;
        Alcotest.test_case "after-win leak accounting" `Quick
          test_after_win_leak;
        Alcotest.test_case "flat stream identity" `Quick
          test_flat_stream_identity;
      ] );
  ]
