(* Cross-substrate equivalence: the zero-allocation fast core, the
   effects scheduler and the real-atomics sequential driver must produce
   identical results field for field whenever they execute the same
   schedule with the same seed.  This is the contract that lets the
   headline experiments run on the fast substrate while the adversarial
   and multicore work stays on the reference paths. *)

let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Result comparison *)

let results_equal (a : Sim.Runner.result) (b : Sim.Runner.result) =
  a.Sim.Runner.names = b.Sim.Runner.names
  && a.Sim.Runner.steps = b.Sim.Runner.steps
  && a.Sim.Runner.crashed = b.Sim.Runner.crashed
  && a.Sim.Runner.total_steps = b.Sim.Runner.total_steps
  && a.Sim.Runner.max_steps = b.Sim.Runner.max_steps
  && a.Sim.Runner.space_used = b.Sim.Runner.space_used
  && a.Sim.Runner.crash_count = b.Sim.Runner.crash_count
  && a.Sim.Runner.point_contention = b.Sim.Runner.point_contention

let diff_report label (a : Sim.Runner.result) (b : Sim.Runner.result) =
  let fields =
    [
      ("names", a.Sim.Runner.names = b.Sim.Runner.names);
      ("steps", a.Sim.Runner.steps = b.Sim.Runner.steps);
      ("crashed", a.Sim.Runner.crashed = b.Sim.Runner.crashed);
      ("total_steps", a.Sim.Runner.total_steps = b.Sim.Runner.total_steps);
      ("max_steps", a.Sim.Runner.max_steps = b.Sim.Runner.max_steps);
      ("space_used", a.Sim.Runner.space_used = b.Sim.Runner.space_used);
      ("crash_count", a.Sim.Runner.crash_count = b.Sim.Runner.crash_count);
      ( "point_contention",
        a.Sim.Runner.point_contention = b.Sim.Runner.point_contention );
    ]
  in
  let bad = List.filter (fun (_, ok) -> not ok) fields in
  Printf.sprintf "%s: fields differ: %s" label
    (String.concat ", " (List.map fst bad))

(* ------------------------------------------------------------------ *)
(* Spec generation: (algorithm, parameters) drawn by QCheck *)

let spec_of_choice ~n ~t0 ~epsilon = function
  | 0 -> Harness.Substrate.rebatching (Renaming.Rebatching.make ~epsilon ~t0 ~n ())
  | 1 -> Harness.Substrate.adaptive (Renaming.Object_space.create ~t0 ())
  | 2 -> Harness.Substrate.fast_adaptive (Renaming.Object_space.create ~t0 ())
  | 3 -> Harness.Substrate.uniform ~m:(2 * n) ~max_steps:(1000 * n)
  | 4 -> Harness.Substrate.linear_scan ~m:(2 * n)
  | 5 -> Harness.Substrate.cyclic_scan ~m:(2 * n)
  | _ -> Harness.Substrate.adaptive_doubling (Renaming.Object_space.create ~t0 ())

let case_gen =
  QCheck.Gen.(
    let* seed = int_range 1 1_000_000 in
    let* n = int_range 1 192 in
    let* choice = int_range 0 6 in
    let* t0 = int_range 2 4 in
    let* eps_i = int_range 1 4 in
    let* shuffled = bool in
    return (seed, n, choice, t0, 0.25 *. float_of_int eps_i, shuffled))

let case_print (seed, n, choice, t0, epsilon, shuffled) =
  Printf.sprintf "seed=%d n=%d algo=%d t0=%d epsilon=%g shuffled=%b" seed n
    choice t0 epsilon shuffled

let case_arb = QCheck.make ~print:case_print case_gen

(* The sequential schedule is expressible on all three substrates. *)
let qcheck_sequential_equivalence =
  QCheck.Test.make ~name:"sequential: fast = effects = atomic" ~count:220
    case_arb (fun (seed, n, choice, t0, epsilon, shuffled) ->
      let run substrate =
        let spec = spec_of_choice ~n ~t0 ~epsilon choice in
        Harness.Substrate.run_sequential ~shuffled substrate spec ~seed ~n ()
      in
      let fast = run Harness.Substrate.Fast in
      let effects = run Harness.Substrate.Effects in
      let atomic = run Harness.Substrate.Atomic in
      if not (results_equal fast effects) then
        QCheck.Test.fail_report (diff_report "fast vs effects" fast effects);
      if not (results_equal fast atomic) then
        QCheck.Test.fail_report (diff_report "fast vs atomic" fast atomic);
      true)

(* The uniformly random concurrent schedule: fast vs effects (the atomic
   driver is sequential-only). *)
let qcheck_concurrent_equivalence =
  QCheck.Test.make ~name:"uniform concurrent: fast = effects" ~count:60
    case_arb (fun (seed, n, choice, t0, epsilon, _shuffled) ->
      let run substrate =
        let spec = spec_of_choice ~n ~t0 ~epsilon choice in
        Harness.Substrate.run substrate spec ~seed ~n ()
      in
      let fast = run Harness.Substrate.Fast in
      let effects = run Harness.Substrate.Effects in
      if not (results_equal fast effects) then
        QCheck.Test.fail_report (diff_report "fast vs effects" fast effects);
      true)

(* ------------------------------------------------------------------ *)
(* Crash edges: Chaos.Fault_plan schedules replayed on both substrates *)

let algo_name = function
  | 0 -> "rebatching"
  | 1 -> "adaptive"
  | _ -> "fast"

(* Before-op crashes are expressible on both substrates
   (Adversary.with_planned_crashes on effects, arm_crash on fast), so a
   Fault_plan's armed schedule must produce identical results and the
   same safety verdict on both. *)
let qcheck_crash_equivalence =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 1 100_000 in
      let* n = int_range 4 96 in
      let* choice = int_range 0 2 in
      let* frac_i = int_range 1 3 in
      return (seed, n, choice, 0.25 *. float_of_int frac_i))
  in
  let print (seed, n, choice, frac) =
    Printf.sprintf "seed=%d n=%d algo=%s crash_frac=%g" seed n
      (algo_name choice) frac
  in
  QCheck.Test.make ~name:"planned before-op crashes: fast = effects" ~count:60
    (QCheck.make ~print gen) (fun (seed, n, choice, crash_frac) ->
      let plan =
        Chaos.Fault_plan.make ~seed ~procs:n ~domains:1
          ~algo:(algo_name choice) ~capacity:(8 * n) ~crash_frac ()
      in
      let crashes =
        List.filter_map
          (fun (c : Chaos.Fault_plan.crash) ->
            match c.Chaos.Fault_plan.point with
            | Chaos.Fault_plan.Before_op ->
              Some (c.Chaos.Fault_plan.pid, c.Chaos.Fault_plan.op)
            | Chaos.Fault_plan.After_win -> None)
          plan.Chaos.Fault_plan.crashes
      in
      let spec =
        spec_of_choice ~n ~t0:3 ~epsilon:1.0
          (match choice with 0 -> 0 | 1 -> 1 | _ -> 2)
      in
      let effects =
        Sim.Runner.run
          ~adversary:
            (Sim.Adversary.with_planned_crashes ~crashes Sim.Adversary.random)
          ~seed ~n
          ~algo:(Harness.Substrate.closure spec)
          ()
      in
      let core =
        Sim.Fast_core.create ~algo:(Harness.Substrate.fast_algo spec) ~n ()
      in
      Sim.Fast_core.reset core ~seed;
      List.iter
        (fun (pid, op) ->
          Sim.Fast_core.arm_crash core ~pid ~op ~after_win:false)
        crashes;
      Sim.Fast_core.run core;
      let fast = Sim.Fast_core.result core in
      if not (results_equal fast effects) then
        QCheck.Test.fail_report (diff_report "fast vs effects" fast effects);
      if
        Sim.Runner.check_unique_names fast
        <> Sim.Runner.check_unique_names effects
      then QCheck.Test.fail_report "uniqueness verdicts differ";
      true)

(* After-win crashes (the §2 leak) exist only on the fast substrate; pin
   their accounting: the crashed process holds no name, survivors stay
   unique, and every fired crash is counted. *)
let test_after_win_leak () =
  let n = 64 in
  let spec =
    Harness.Substrate.rebatching (Renaming.Rebatching.make ~t0:3 ~n ())
  in
  let core =
    Sim.Fast_core.create ~algo:(Harness.Substrate.fast_algo spec) ~n ()
  in
  List.iter
    (fun seed ->
      Sim.Fast_core.reset core ~seed;
      (* arm a spread of early after-win crashes *)
      let armed = [ (1, 1); (7, 2); (13, 1); (30, 3); (55, 2) ] in
      List.iter
        (fun (pid, op) -> Sim.Fast_core.arm_crash core ~pid ~op ~after_win:true)
        armed;
      Sim.Fast_core.run core;
      let r = Sim.Fast_core.result core in
      Array.iteri
        (fun pid crashed ->
          if crashed then
            checkb
              (Printf.sprintf "seed %d: crashed pid %d has no name" seed pid)
              true
              (r.Sim.Runner.names.(pid) = None))
        r.Sim.Runner.crashed;
      checkb
        (Printf.sprintf "seed %d: survivors unique" seed)
        true
        (Sim.Runner.check_unique_names r);
      let fired = r.Sim.Runner.crash_count in
      checkb
        (Printf.sprintf "seed %d: fired crashes within armed" seed)
        true
        (fired >= 1 && fired <= List.length armed))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Prng.Flat is bit-compatible with the Splitmix split_at convention *)

let test_flat_stream_identity () =
  let streams = 5 and draws = 64 in
  let bank = Prng.Flat.create streams in
  List.iter
    (fun seed ->
      Prng.Flat.reseed bank ~seed;
      let root = Prng.Splitmix.of_int seed in
      for i = 0 to streams - 1 do
        let g = Prng.Splitmix.split_at root i in
        for d = 1 to draws do
          let a = Prng.Flat.bits bank i and b = Prng.Splitmix.bits g in
          if a <> b then
            Alcotest.failf "seed %d stream %d draw %d: flat %d <> splitmix %d"
              seed i d a b
        done
      done)
    [ 0; 1; 42; 123456; max_int ]

(* ------------------------------------------------------------------ *)
(* The SoA layout at scale: the lanes rewrite and the streaming seq
   kernel must agree with the retained driver and the effects reference
   up to n = 10^4, including armed crashes and step-granular edges. *)

let checki = Alcotest.check Alcotest.int

(* seq_run's O(1)-state streaming execution is bit-identical to the
   retained run_sequential ~shuffled:false on every algorithm, at n well
   past the small cross-substrate cases above. *)
let qcheck_seq_streaming_identity =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 1 1_000_000 in
      let* n = int_range 1 10_000 in
      let* choice = int_range 0 6 in
      let* t0 = int_range 2 4 in
      return (seed, n, choice, t0))
  in
  let print (seed, n, choice, t0) =
    Printf.sprintf "seed=%d n=%d algo=%d t0=%d" seed n choice t0
  in
  QCheck.Test.make ~name:"seq streaming = retained sequential (n <= 10^4)"
    ~count:60 (QCheck.make ~print gen) (fun (seed, n, choice, t0) ->
      let spec = spec_of_choice ~n ~t0 ~epsilon:1.0 choice in
      let capacity = Harness.Substrate.capacity spec in
      let retained =
        Sim.Fast_core.run_sequential_once ~shuffled:false ~seed ~n
          ~algo:(Harness.Substrate.fast_algo spec)
          ()
      in
      let q =
        Sim.Fast_core.seq_create ~capacity
          ~algo:(Harness.Substrate.fast_algo spec)
          ()
      in
      Sim.Fast_core.seq_run q ~seed ~n;
      let named =
        Array.fold_left
          (fun acc name -> if name <> None then acc + 1 else acc)
          0 retained.Sim.Runner.names
      in
      let max_name =
        Array.fold_left
          (fun acc -> function Some u -> max acc u | None -> acc)
          (-1) retained.Sim.Runner.names
      in
      if Sim.Fast_core.seq_total_steps q <> retained.Sim.Runner.total_steps
      then QCheck.Test.fail_report "total_steps differ";
      if Sim.Fast_core.seq_max_steps q <> retained.Sim.Runner.max_steps then
        QCheck.Test.fail_report "max_steps differ";
      if Sim.Fast_core.seq_space_used q <> retained.Sim.Runner.space_used then
        QCheck.Test.fail_report "space_used differ";
      if Sim.Fast_core.seq_named q <> named then
        QCheck.Test.fail_report "named counts differ";
      if Sim.Fast_core.seq_max_name q <> max_name then
        QCheck.Test.fail_report "max names differ";
      true)

(* The lanes layout against the effects reference at 10-50x the size of
   the cross-substrate cases: any indexing slip that happens to stay
   consistent at n ~ 200 (packed flags, swap-removal order) gets another
   chance to surface here. *)
let qcheck_soa_large_n_equivalence =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 1 1_000_000 in
      let* n = int_range 1_000 10_000 in
      let* choice = int_range 0 6 in
      return (seed, n, choice))
  in
  let print (seed, n, choice) =
    Printf.sprintf "seed=%d n=%d algo=%d" seed n choice
  in
  QCheck.Test.make ~name:"large-n sequential: fast = effects (n <= 10^4)"
    ~count:10 (QCheck.make ~print gen) (fun (seed, n, choice) ->
      let run substrate =
        let spec = spec_of_choice ~n ~t0:3 ~epsilon:1.0 choice in
        Harness.Substrate.run_sequential ~shuffled:false substrate spec ~seed
          ~n ()
      in
      let fast = run Harness.Substrate.Fast in
      let effects = run Harness.Substrate.Effects in
      if not (results_equal fast effects) then
        QCheck.Test.fail_report (diff_report "fast vs effects" fast effects);
      true)

(* Armed before-op crashes at large n: the crash lanes (crash_op,
   crashed bytes) under the concurrent scheduler, fast vs effects. *)
let qcheck_soa_large_n_crashes =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 1 100_000 in
      let* n = int_range 1_000 10_000 in
      let* choice = int_range 0 2 in
      return (seed, n, choice))
  in
  let print (seed, n, choice) =
    Printf.sprintf "seed=%d n=%d algo=%s" seed n (algo_name choice)
  in
  QCheck.Test.make ~name:"large-n armed crashes: fast = effects (n <= 10^4)"
    ~count:6 (QCheck.make ~print gen) (fun (seed, n, choice) ->
      let plan =
        Chaos.Fault_plan.make ~seed ~procs:n ~domains:1
          ~algo:(algo_name choice) ~capacity:(8 * n) ~crash_frac:0.25 ()
      in
      let crashes =
        List.filter_map
          (fun (c : Chaos.Fault_plan.crash) ->
            match c.Chaos.Fault_plan.point with
            | Chaos.Fault_plan.Before_op ->
              Some (c.Chaos.Fault_plan.pid, c.Chaos.Fault_plan.op)
            | Chaos.Fault_plan.After_win -> None)
          plan.Chaos.Fault_plan.crashes
      in
      let spec =
        spec_of_choice ~n ~t0:3 ~epsilon:1.0
          (match choice with 0 -> 0 | 1 -> 1 | _ -> 2)
      in
      let effects =
        Sim.Runner.run
          ~adversary:
            (Sim.Adversary.with_planned_crashes ~crashes Sim.Adversary.random)
          ~seed ~n
          ~algo:(Harness.Substrate.closure spec)
          ()
      in
      let core =
        Sim.Fast_core.create ~algo:(Harness.Substrate.fast_algo spec) ~n ()
      in
      Sim.Fast_core.reset core ~seed;
      List.iter
        (fun (pid, op) ->
          Sim.Fast_core.arm_crash core ~pid ~op ~after_win:false)
        crashes;
      Sim.Fast_core.run core;
      let fast = Sim.Fast_core.result core in
      if not (results_equal fast effects) then
        QCheck.Test.fail_report (diff_report "fast vs effects" fast effects);
      true)

(* Snapshot/restore mid-run on the lanes layout: branch the execution at
   an arbitrary prefix and both continuations must replay identically —
   the explorer's DFS contract, here exercised at n = 5000. *)
let test_snapshot_restore_mid_run () =
  let n = 5_000 in
  let spec =
    Harness.Substrate.rebatching (Renaming.Rebatching.make ~t0:3 ~n ())
  in
  let core =
    Sim.Fast_core.create ~algo:(Harness.Substrate.fast_algo spec) ~n ()
  in
  List.iter
    (fun seed ->
      Sim.Fast_core.reset core ~seed;
      Sim.Fast_core.start core;
      (* advance an arbitrary deterministic prefix: round-robin over the
         live set, including a couple of explicit crashes *)
      for i = 1 to 3 * n do
        let live = Sim.Fast_core.live_count core in
        if live > 0 then begin
          let pid = Sim.Fast_core.live_pid core (i mod live) in
          if i = 17 || i = 301 then Sim.Fast_core.crash_pid core ~pid
          else Sim.Fast_core.step_pid core ~pid
        end
      done;
      let snap = Sim.Fast_core.snapshot core in
      let finish () =
        while Sim.Fast_core.live_count core > 0 do
          Sim.Fast_core.step_pid core
            ~pid:(Sim.Fast_core.live_pid core 0)
        done;
        Sim.Fast_core.result core
      in
      let a = finish () in
      Sim.Fast_core.restore core snap;
      let b = finish () in
      if not (results_equal a b) then
        Alcotest.failf "seed %d: %s" seed (diff_report "branch a vs b" a b))
    [ 1; 2; 3 ]

(* restart_pid edges at n = 10^4: settled processes re-enter on the
   continuation of their coin stream, live/crashed pids are rejected,
   and re-acquired names stay unique among holders. *)
let test_restart_pid_edges () =
  let n = 10_000 in
  let spec =
    Harness.Substrate.rebatching (Renaming.Rebatching.make ~t0:3 ~n ())
  in
  let core =
    Sim.Fast_core.create ~algo:(Harness.Substrate.fast_algo spec) ~n ()
  in
  Sim.Fast_core.reset core ~seed:7;
  Sim.Fast_core.start core;
  (* crash one pid up front so the crashed-restart edge is available *)
  Sim.Fast_core.crash_pid core ~pid:42;
  (let live = Sim.Fast_core.live_count core in
   checki "one crash leaves n-1 live" (n - 1) live);
  (* a live pid must be rejected *)
  (match Sim.Fast_core.restart_pid core ~pid:(Sim.Fast_core.live_pid core 0) with
  | () -> Alcotest.fail "restart of a live pid did not raise"
  | exception Invalid_argument _ -> ());
  while Sim.Fast_core.live_count core > 0 do
    Sim.Fast_core.step_pid core ~pid:(Sim.Fast_core.live_pid core 0)
  done;
  (* a crashed pid must be rejected *)
  (match Sim.Fast_core.restart_pid core ~pid:42 with
  | () -> Alcotest.fail "restart of a crashed pid did not raise"
  | exception Invalid_argument _ -> ());
  (* release-and-restart a spread of settled pids; each must come back
     live, run to completion, and the holder set must stay unique *)
  let restarted = [ 0; 1; 999; 5_000; 9_999 ] in
  List.iter
    (fun pid ->
      Alcotest.check Alcotest.bool
        (Printf.sprintf "pid %d holds a name before restart" pid)
        true
        (Sim.Fast_core.name_of core ~pid <> None);
      Sim.Fast_core.restart_pid core ~pid;
      checki
        (Printf.sprintf "pid %d restart leaves its name cleared" pid)
        (-1)
        (match Sim.Fast_core.name_of core ~pid with
        | None -> -1
        | Some u -> u))
    restarted;
  checki "all restarted pids are live"
    (List.length restarted)
    (Sim.Fast_core.live_count core);
  while Sim.Fast_core.live_count core > 0 do
    Sim.Fast_core.step_pid core ~pid:(Sim.Fast_core.live_pid core 0)
  done;
  let r = Sim.Fast_core.result core in
  List.iter
    (fun pid ->
      Alcotest.check Alcotest.bool
        (Printf.sprintf "pid %d re-acquired a name" pid)
        true
        (r.Sim.Runner.names.(pid) <> None))
    restarted;
  Alcotest.check Alcotest.bool "holders unique after restarts" true
    (Sim.Runner.check_unique_names r)

(* Preallocated dense mode: with capacity covering the namespace, a
   seq_run allocates nothing once the handle exists (the measured-loop
   claim the large-n sweeps stand on). *)
let test_seq_run_allocation_free () =
  let n = 10_000 in
  let spec =
    Harness.Substrate.rebatching (Renaming.Rebatching.make ~t0:3 ~n ())
  in
  let q =
    Sim.Fast_core.seq_create
      ~capacity:(Harness.Substrate.capacity spec)
      ~algo:(Harness.Substrate.fast_algo spec)
      ()
  in
  Sim.Fast_core.seq_run q ~seed:3 ~n;
  (* warm *)
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  Sim.Fast_core.seq_run q ~seed:4 ~n;
  let w1 = Gc.minor_words () in
  let per_op =
    (w1 -. w0) /. float_of_int (Sim.Fast_core.seq_total_steps q)
  in
  if per_op > 0.01 then
    Alcotest.failf "seq_run allocates %.3f words/op (budget 0.01)" per_op

let suite =
  [
    ( "fast_core.equivalence",
      [
        QCheck_alcotest.to_alcotest qcheck_sequential_equivalence;
        QCheck_alcotest.to_alcotest qcheck_concurrent_equivalence;
        QCheck_alcotest.to_alcotest qcheck_crash_equivalence;
        Alcotest.test_case "after-win leak accounting" `Quick
          test_after_win_leak;
        Alcotest.test_case "flat stream identity" `Quick
          test_flat_stream_identity;
      ] );
    ( "fast_core.soa_large_n",
      [
        QCheck_alcotest.to_alcotest qcheck_seq_streaming_identity;
        QCheck_alcotest.to_alcotest qcheck_soa_large_n_equivalence;
        QCheck_alcotest.to_alcotest qcheck_soa_large_n_crashes;
        Alcotest.test_case "snapshot/restore mid-run (n=5000)" `Quick
          test_snapshot_restore_mid_run;
        Alcotest.test_case "restart_pid edges (n=10^4)" `Quick
          test_restart_pid_edges;
        Alcotest.test_case "seq_run is allocation-free" `Quick
          test_seq_run_allocation_free;
      ] );
  ]
