(* Standalone determinism linter — the same engine as `repro_cli lint`,
   packaged as a single-purpose binary for editor integrations and CI
   hooks that should not need the full experiment driver. *)

open Cmdliner

let lint json root paths =
  Analysis.Lint.run ~json ~root ~paths ~out:print_string ()

let exits =
  [
    Cmd.Exit.info 0 ~doc:"the tree is clean.";
    Cmd.Exit.info 1 ~doc:"violations were reported.";
    Cmd.Exit.info 2 ~doc:"usage, parse or internal error.";
  ]

let cmd =
  let doc = "AST-level determinism lint for the reproduction tree." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml file with the compiler's own parser \
         (compiler-libs) and flags identifier uses that break \
         reproducibility; see `repro_cli lint --help' for the rule \
         table.  Silence a justified use with a `repro-lint: allow \
         <rule-id>' comment on the flagged line or the line above.";
    ]
  in
  let json_t =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit findings as a JSON array.")
  in
  let root_t =
    Arg.(
      value & opt string "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Repository root; stripped from paths so rule scopes (lib/prng, \
             bin, ...) match.")
  in
  let paths_t =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint (default: bin lib examples bench \
             test under $(b,--root)).")
  in
  Cmd.v
    (Cmd.info "repro_lint" ~version:"1.0.0" ~doc ~man ~exits)
    Term.(const lint $ json_t $ root_t $ paths_t)

let () = exit (Cmd.eval' cmd)
