(* renamed: the renaming daemon.

   A thin operator shell over Service.Server: parse flags, install
   signal handlers that trigger the graceful drain, run, and map the
   drain report onto the repository's exit-code convention (0 clean,
   1 findings — here, leaked slots at exit — 2 usage/startup error). *)

let serve socket_path shards capacity seed backlog max_conns quiet =
  let log =
    if quiet then ignore
    else fun s -> Printf.eprintf "[renamed] %s\n%!" s
  in
  let cfg =
    {
      (Service.Server.default_config ~socket_path) with
      shards;
      capacity;
      seed;
      backlog;
      max_conns;
      log;
    }
  in
  let handle = Service.Server.create_handle () in
  let on_signal name =
    Sys.Signal_handle
      (fun _ ->
        (* Signal-safe by construction: an Atomic set plus a pipe write. *)
        log (Printf.sprintf "%s: draining" name);
        Service.Server.stop handle)
  in
  Sys.set_signal Sys.sigterm (on_signal "SIGTERM");
  Sys.set_signal Sys.sigint (on_signal "SIGINT");
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Service.Server.run ~handle cfg with
  | Error e ->
    Printf.eprintf "renamed: %s\n%!" e;
    2
  | Ok r ->
    log
      (Printf.sprintf
         "served %d conn(s), %d request(s): %d acquire(s), %d release(s), \
          %d error(s), %d drained, %.1fs"
         r.Service.Server.conns_served r.Service.Server.requests
         r.Service.Server.acquires r.Service.Server.releases
         r.Service.Server.errors r.Service.Server.drained_releases
         r.Service.Server.wall_s);
    if Service.Server.report_clean r then 0
    else begin
      Printf.eprintf "renamed: %d slot(s) leaked at exit\n%!"
        r.Service.Server.taken_at_exit;
      1
    end

open Cmdliner

let exits =
  [
    Cmd.Exit.info 0 ~doc:"clean shutdown: every slot returned (no leaks).";
    Cmd.Exit.info 1 ~doc:"shutdown with findings: slots leaked at exit.";
    Cmd.Exit.info 2 ~doc:"usage or startup error (socket in use, bad flags).";
  ]

let socket_t =
  Arg.(
    value
    & opt string "renamed.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on.")

let shards_t =
  Arg.(
    value & opt int 2
    & info [ "shards" ] ~docv:"N"
        ~doc:"Worker domains = allocator shards.")

let capacity_t =
  Arg.(
    value & opt int 4096
    & info [ "capacity" ] ~docv:"N"
        ~doc:"Concurrent name holders supported per shard.")

let seed_t =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed for the probe coins.")

let backlog_t =
  Arg.(value & opt int 64 & info [ "backlog" ] ~docv:"N" ~doc:"Listen backlog.")

let max_conns_t =
  Arg.(
    value & opt int 1024
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Refuse connections beyond this many concurrent clients.")

let quiet_t =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress operator log lines.")

let cmd =
  let doc = "Serve loose renaming over a Unix-domain socket." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the O(log log n) loose-renaming allocator as a daemon: \
         clients acquire and release names over a length-prefixed binary \
         protocol (or line-JSON — open the connection with '{').  Each \
         shard is a long-lived ReBatching instance on its own worker \
         domain over one shared atomic location space.";
      `P
        "SIGTERM and SIGINT drain gracefully: in-flight operations \
         complete, held names are auto-released, and the exit code \
         reports the slot-conservation audit.";
    ]
  in
  Cmd.v
    (Cmd.info "renamed" ~version:"1.0.0" ~doc ~man ~exits)
    Term.(
      const serve $ socket_t $ shards_t $ capacity_t $ seed_t $ backlog_t
      $ max_conns_t $ quiet_t)

let () = exit (Cmd.eval' cmd)
