(* renamed: the renaming daemon.

   A thin operator shell over Service.Server: parse flags, install
   signal handlers that trigger the graceful drain, run, and map the
   drain report onto the repository's exit-code convention (0 clean,
   1 findings — here, leaked slots at exit — 2 usage/startup error,
   including "recovery required": a journal with live grants exists
   and --recover was not given). *)

let serve socket_path shards capacity seed backlog max_conns lease_ttl journal
    recover max_queue max_out_kb stall_timeout quiet =
  let log =
    if quiet then ignore
    else fun s -> Printf.eprintf "[renamed] %s\n%!" s
  in
  let cfg =
    {
      (Service.Server.default_config ~socket_path) with
      shards;
      capacity;
      seed;
      backlog;
      max_conns;
      lease_ttl_s = lease_ttl;
      journal_path = journal;
      recover;
      max_queue;
      max_out_bytes = max_out_kb * 1024;
      stall_s = stall_timeout;
      log;
    }
  in
  let handle = Service.Server.create_handle () in
  let on_signal name =
    Sys.Signal_handle
      (fun _ ->
        (* Signal-safe by construction: an Atomic set plus a pipe write. *)
        log (Printf.sprintf "%s: draining" name);
        Service.Server.stop handle)
  in
  Sys.set_signal Sys.sigterm (on_signal "SIGTERM");
  Sys.set_signal Sys.sigint (on_signal "SIGINT");
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Service.Server.run ~handle cfg with
  | Error e ->
    Printf.eprintf "renamed: %s\n%!" e;
    2
  | Ok r ->
    log
      (Printf.sprintf
         "served %d conn(s), %d request(s): %d acquire(s), %d release(s), \
          %d renew(s), %d error(s), %d shed busy, %d shed expired, %d \
          stalled conn(s), %d drained, %d expired, %d recovered, %.1fs"
         r.Service.Server.conns_served r.Service.Server.requests
         r.Service.Server.acquires r.Service.Server.releases
         r.Service.Server.renews r.Service.Server.errors
         r.Service.Server.shed_busy r.Service.Server.shed_expired
         r.Service.Server.stalled_conns r.Service.Server.drained_releases
         r.Service.Server.expired_leases r.Service.Server.recovered
         r.Service.Server.wall_s);
    if Service.Server.report_clean r then 0
    else begin
      Printf.eprintf "renamed: %d slot(s) leaked at exit\n%!"
        r.Service.Server.taken_at_exit;
      1
    end

open Cmdliner

let exits =
  [
    Cmd.Exit.info 0 ~doc:"clean shutdown: every slot returned (no leaks).";
    Cmd.Exit.info 1 ~doc:"shutdown with findings: slots leaked at exit.";
    Cmd.Exit.info 2
      ~doc:
        "usage or startup error (socket in use, bad flags, damaged journal, \
         or a journal holding live grants without $(b,--recover)).";
  ]

let socket_t =
  Arg.(
    value
    & opt string "renamed.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on.")

let shards_t =
  Arg.(
    value & opt int 2
    & info [ "shards" ] ~docv:"N"
        ~doc:"Worker domains = allocator shards.")

let capacity_t =
  Arg.(
    value & opt int 4096
    & info [ "capacity" ] ~docv:"N"
        ~doc:"Concurrent name holders supported per shard.")

let seed_t =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"SEED" ~doc:"Root seed for the probe coins.")

let backlog_t =
  Arg.(value & opt int 64 & info [ "backlog" ] ~docv:"N" ~doc:"Listen backlog.")

let max_conns_t =
  Arg.(
    value & opt int 1024
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Refuse connections beyond this many concurrent clients.")

let lease_ttl_t =
  Arg.(
    value & opt float 30.
    & info [ "lease-ttl" ] ~docv:"SECONDS"
        ~doc:
          "Lease time-to-live: a grant not renewed (by heartbeat or any \
           request on its connection) within this window is reclaimed by \
           the expiry sweep.")

let journal_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Append-only crash journal: every grant is journaled and fsynced \
           before the client sees it, so a killed daemon can be restarted \
           with $(b,--recover) without double-granting a live name.  Off by \
           default (grants are then lost on crash).")

let recover_t =
  Arg.(
    value & flag
    & info [ "recover" ]
        ~doc:
          "Replay the journal at boot: re-occupy every live grant's slot, \
           restore its lease (fresh TTL, original epoch), and compact the \
           journal before accepting connections.  Without this flag a \
           journal holding live grants refuses to start (exit 2).")

let max_queue_t =
  Arg.(
    value & opt int 1024
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admission bound per shard queue: acquires arriving beyond this \
           depth are refused with a busy response carrying a retry-after \
           hint instead of queueing without limit.")

let max_out_kb_t =
  Arg.(
    value & opt int 256
    & info [ "max-out-kb" ] ~docv:"KB"
        ~doc:
          "Outbound buffer bound per connection (kilobytes): past it the \
           daemon stops reading from that client until it drains.")

let stall_timeout_t =
  Arg.(
    value & opt float 5.
    & info [ "stall-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Disconnect a client whose outbound buffer stays over its bound \
           with no write progress for this long (its names are \
           auto-released by the disconnect drain).")

let quiet_t =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress operator log lines.")

let cmd =
  let doc = "Serve loose renaming over a Unix-domain socket." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the O(log log n) loose-renaming allocator as a daemon: \
         clients acquire and release names over a length-prefixed binary \
         protocol (or line-JSON — open the connection with '{').  Each \
         shard is a long-lived ReBatching instance on its own worker \
         domain over one shared atomic location space.";
      `P
        "Every grant carries a lease ($(b,--lease-ttl)); a client that \
         goes silent without disconnecting loses its names to the expiry \
         sweep.  With $(b,--journal) the daemon is crash-safe: grants are \
         journaled and fsynced before they are acknowledged, and \
         $(b,--recover) replays the journal at boot so a SIGKILL-ed \
         daemon never double-grants a name that was live.";
      `P
        "Overload is survived, not absorbed: shard queues are bounded \
         ($(b,--max-queue)) and excess acquires are refused with a \
         retry-after hint, requests carrying a deadline are shed once it \
         passes instead of being served late, and clients that stop \
         reading are first paused ($(b,--max-out-kb)) then disconnected \
         ($(b,--stall-timeout)).  The $(b,stats) operation reports the \
         overload level (healthy/degraded/shedding).";
      `P
        "SIGTERM and SIGINT drain gracefully: in-flight operations \
         complete, held names are auto-released, and the exit code \
         reports the slot-conservation audit.";
    ]
  in
  Cmd.v
    (Cmd.info "renamed" ~version:"1.0.0" ~doc ~man ~exits)
    Term.(
      const serve $ socket_t $ shards_t $ capacity_t $ seed_t $ backlog_t
      $ max_conns_t $ lease_ttl_t $ journal_t $ recover_t $ max_queue_t
      $ max_out_kb_t $ stall_timeout_t $ quiet_t)

let () = exit (Cmd.eval' cmd)
