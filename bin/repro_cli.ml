(* Command-line driver for the reproduction experiments.

   repro_cli list                      enumerate experiments
   repro_cli run t1 t5 --trials 10     run selected experiments
   repro_cli all --scale 0.5           run everything, half-size
   Add --csv DIR to also write each table as DIR/<id>_<k>.csv.

   With --out DIR the run goes through the parallel engine instead:
   trial jobs fan out across --jobs N domains, every trial lands as one
   JSONL record in DIR/<id>.jsonl (plus DIR/manifest.json), and --resume
   skips jobs already present there.  Per-job seeds are derived
   deterministically from (seed, experiment, sweep point, trial), so any
   --jobs value produces identical records.  Without --out, the serial
   path below runs exactly as it always has.

   The engine path is fault-tolerant: a raising job retries up to
   --retries times (per-attempt seeds, deterministic), then quarantines
   into DIR/<id>.failures.jsonl while the other jobs complete;
   --job-timeout bounds each attempt, with a watchdog abandoning truly
   stuck workers; SIGINT/SIGTERM drain in-flight jobs and print the
   exact --resume command; --resume is validated against the stored
   manifest and continues interrupted retry budgets.  repro_cli doctor
   DIR audits a store offline (truncated tails, duplicate keys, seed
   re-derivation, quarantine). *)

let make_ctx ~seed ~trials ~scale ~substrate ~csv_dir ~current_id =
  let table_index = ref 0 in
  let emit_table ~title table =
    print_newline ();
    print_endline title;
    print_string (Harness.Table.render table);
    match csv_dir with
    | None -> ()
    | Some dir ->
      incr table_index;
      let path =
        Filename.concat dir (Printf.sprintf "%s_%d.csv" !current_id !table_index)
      in
      let oc = open_out path in
      output_string oc (Harness.Table.to_csv table);
      close_out oc;
      Printf.printf "  [csv: %s]\n" path
  in
  {
    Harness.Experiment.seed;
    trials;
    scale;
    substrate;
    emit_table;
    log = print_endline;
  }

let run_serial ids seed trials scale substrate csv_dir =
  (match csv_dir with
  | Some dir ->
    if Sys.file_exists dir && not (Sys.is_directory dir) then begin
      Printf.eprintf "--csv: %s exists and is not a directory\n" dir;
      exit 1
    end;
    Engine.Sink.mkdir_p dir
  | None -> ());
  let current_id = ref "" in
  let ctx = make_ctx ~seed ~trials ~scale ~substrate ~csv_dir ~current_id in
  let failures = ref [] in
  List.iter
    (fun id ->
      match Harness.Registry.find id with
      | None ->
        Printf.eprintf "unknown experiment %S; try `repro_cli list'\n" id;
        failures := id :: !failures
      | Some e ->
        current_id := e.Harness.Experiment.id;
        Printf.printf "\n=== %s: %s ===\n" (String.uppercase_ascii e.id) e.title;
        Printf.printf "claim: %s\n" e.claim;
        let t0 = Unix.gettimeofday () in
        e.run ctx;
        Printf.printf "[%s done in %.1fs]\n" e.id (Unix.gettimeofday () -. t0))
    ids;
  if !failures = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* Graceful shutdown: SIGINT/SIGTERM set a flag the engine polls before
   claiming each job — in-flight jobs drain, the manifest is finalized
   with status=interrupted, and the exact --resume command is printed.
   A second signal force-exits. *)

let interrupt_requested = Atomic.make false

let install_signal_handlers () =
  let handle _ =
    if Atomic.get interrupt_requested then exit 130
    else begin
      Atomic.set interrupt_requested true;
      prerr_endline
        "\n[interrupt] draining in-flight jobs (press again to force-quit)"
    end
  in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle handle) with _ -> ())
    [ Sys.sigint; Sys.sigterm ]

(* The engine path: fan trial jobs out across domains into a JSONL store.
   Experiments without a job-grain port fall back to the serial runner so
   `all --out DIR` still covers the whole registry. *)
let run_engine ids seed trials scale substrate csv_dir out_dir workers resume
    retries job_timeout =
  if Sys.file_exists out_dir && not (Sys.is_directory out_dir) then begin
    Printf.eprintf "--out: %s exists and is not a directory\n" out_dir;
    exit 1
  end;
  (* Resuming against a store written with different parameters would
     silently mix incompatible records; refuse up front. *)
  (if resume then
     match Engine.Sink.read_manifest ~dir:out_dir with
     | None -> ()
     | Some manifest -> (
       match
         Engine.Checkpoint.validate_manifest ~manifest ~ids ~seed ~trials
           ~scale
       with
       | Ok () -> ()
       | Error msg ->
         Printf.eprintf "--resume: %s\n" msg;
         exit 1));
  Engine.Sink.mkdir_p out_dir;
  let ctx = Harness.Experiment.default_ctx ~seed ~trials ~scale ~substrate () in
  install_signal_handlers ();
  let should_stop () = Atomic.get interrupt_requested in
  let manifest status =
    Engine.Plan.write_manifest ~out_dir ~ids ~workers ~resume ~status ~retries
      ~job_timeout ~ctx
  in
  manifest "running";
  let failures = ref [] in
  let quarantined = ref [] in
  let serial_fallback = ref [] in
  List.iter
    (fun id ->
      if not (should_stop ()) then
        match Harness.Registry.find id with
        | None ->
          Printf.eprintf "unknown experiment %S; try `repro_cli list'\n" id;
          failures := id :: !failures
        | Some e -> (
          let t0 = Unix.gettimeofday () in
          match
            Engine.Plan.execute ~workers ~resume ~retries ?job_timeout
              ~should_stop ~out_dir ~ctx e
          with
          | Some o ->
            Printf.printf
              "[%s: %d jobs (%d skipped via resume, %d executed) -> %s in \
               %.1fs]\n\
               %!"
              o.Engine.Plan.experiment o.total_jobs o.skipped o.executed
              o.store
              (Unix.gettimeofday () -. t0);
            if o.Engine.Plan.malformed > 0 then
              Printf.printf
                "[%s: %d malformed mid-file line(s) skipped on resume — \
                 audit with `repro_cli doctor %s']\n\
                 %!"
                id o.Engine.Plan.malformed out_dir;
            if o.Engine.Plan.quarantined > 0 then begin
              Printf.printf
                "[%s: %d job(s) quarantined after %d failed attempt(s) -> \
                 %s]\n\
                 %!"
                id o.Engine.Plan.quarantined o.Engine.Plan.failures
                o.Engine.Plan.failures_store;
              quarantined :=
                !quarantined @ List.map (fun k -> (id, k)) o.failed_keys
            end
          | None ->
            Printf.eprintf "[%s has no job-grain port yet; running serially]\n%!"
              e.Harness.Experiment.id;
            serial_fallback := id :: !serial_fallback
          | exception Failure msg ->
            Printf.eprintf "[%s FAILED: %s]\n%!" id msg;
            failures := id :: !failures))
    ids;
  let interrupted = should_stop () in
  manifest (if interrupted then "interrupted" else "completed");
  if interrupted then begin
    let opts =
      Printf.sprintf "--seed %d --trials %d --scale %g --jobs %d --retries %d%s"
        seed trials scale workers retries
        (match job_timeout with
        | None -> ""
        | Some t -> Printf.sprintf " --job-timeout %g" t)
    in
    Printf.eprintf
      "[interrupted] store finalized; resume with:\n\
      \  repro_cli run %s %s --out %s --resume\n\
       %!"
      (String.concat " " ids) opts out_dir;
    130
  end
  else begin
    if !quarantined <> [] then
      Printf.eprintf "[%d job(s) quarantined: %s]\n%!"
        (List.length !quarantined)
        (String.concat " " (List.map snd !quarantined));
    let serial_rc =
      match List.rev !serial_fallback with
      | [] -> 0
      | fallback -> run_serial fallback seed trials scale substrate csv_dir
    in
    if !failures <> [] || !quarantined <> [] then 1 else serial_rc
  end

let run_experiments ids seed trials scale substrate csv_dir jobs out_dir resume
    retries job_timeout =
  match
    List.filter (fun id -> Harness.Registry.find id = None) ids
  with
  | _ :: _ as unknown ->
    Printf.eprintf "unknown experiment(s) %s; try `repro_cli list'\n"
      (String.concat ", " unknown);
    2
  | [] -> (
    match (out_dir, jobs, resume) with
    | None, None, false -> run_serial ids seed trials scale substrate csv_dir
    | None, Some _, _ | None, _, true ->
      Printf.eprintf "--jobs/--resume require --out DIR (the JSONL store)\n";
      2
    | Some out, _, _ ->
      let workers =
        match jobs with
        | Some j -> max 1 j
        | None -> Engine.Pool.default_workers ()
      in
      run_engine ids seed trials scale substrate csv_dir out workers resume
        retries job_timeout)

(* ------------------------------------------------------------------ *)
(* simulate: one configurable run with detailed output *)

let algo_names =
  [ "rebatching"; "rebatching-paper"; "adaptive"; "fast"; "uniform"; "scan";
    "cyclic"; "doubling" ]

let make_spec name ~n ~t0 ~epsilon =
  let m = int_of_float (Float.ceil ((1. +. epsilon) *. float_of_int n)) in
  match name with
  | "rebatching" ->
    Ok (Harness.Substrate.rebatching (Renaming.Rebatching.make ~epsilon ~t0 ~n ()))
  | "rebatching-paper" ->
    Ok (Harness.Substrate.rebatching (Renaming.Rebatching.make ~epsilon ~n ()))
  | "adaptive" ->
    Ok (Harness.Substrate.adaptive (Renaming.Object_space.create ~t0 ()))
  | "fast" ->
    Ok (Harness.Substrate.fast_adaptive (Renaming.Object_space.create ~t0 ()))
  | "uniform" -> Ok (Harness.Substrate.uniform ~m ~max_steps:(1000 * n))
  | "scan" -> Ok (Harness.Substrate.linear_scan ~m)
  | "cyclic" -> Ok (Harness.Substrate.cyclic_scan ~m)
  | "doubling" ->
    Ok (Harness.Substrate.adaptive_doubling (Renaming.Object_space.create ~t0 ()))
  | other -> Error (Printf.sprintf "unknown algorithm %S" other)

let simulate algo_name n seed adversary_name crash_fraction stagger substrate
    histogram =
  match make_spec algo_name ~n ~t0:3 ~epsilon:1.0 with
  | Error msg ->
    prerr_endline msg;
    Printf.eprintf "algorithms: %s\n" (String.concat ", " algo_names);
    2
  | Ok spec ->
    (match Sim.Adversary.by_name adversary_name with
    | None ->
      Printf.eprintf "unknown adversary %S; one of: %s\n" adversary_name
        (String.concat ", "
           (List.map (fun a -> a.Sim.Adversary.name) Sim.Adversary.all_builtin));
      2
    | Some adversary -> (
      let plain = crash_fraction <= 0. && stagger = None in
      let finish ~adversary_label r =
        Printf.printf
          "algo=%s n=%d seed=%d adversary=%s substrate=%s\nunique=%b \
           max_name=%d max_steps=%d total_steps=%d crashes=%d \
           point_contention=%d space_used=%d\n"
          algo_name n seed adversary_label
          (Harness.Substrate.to_string substrate)
          (Sim.Runner.check_unique_names r)
          (Sim.Runner.max_name r) r.Sim.Runner.max_steps r.Sim.Runner.total_steps
          r.Sim.Runner.crash_count r.Sim.Runner.point_contention
          r.Sim.Runner.space_used;
        if histogram then begin
          let h = Stats.Histogram.create () in
          Array.iteri
            (fun pid s ->
              if not r.Sim.Runner.crashed.(pid) then Stats.Histogram.add h s)
            r.Sim.Runner.steps;
          print_endline "per-process steps:";
          print_string (Stats.Histogram.render h)
        end;
        if Sim.Runner.check_unique_names r then 0 else 1
      in
      (* The fast core only expresses the uniformly random oblivious
         schedule, and the atomic cells only a sequential one; richer
         schedules need the effects scheduler. *)
      match substrate with
      | Harness.Substrate.Fast when adversary_name = "random" && plain ->
        finish ~adversary_label:"random"
          (Harness.Substrate.run Harness.Substrate.Fast spec ~seed ~n ())
      | Harness.Substrate.Fast ->
        Printf.eprintf
          "--substrate fast supports only --adversary random without \
           --crash-fraction/--stagger; use --substrate effects\n";
        2
      | Harness.Substrate.Atomic when adversary_name = "sequential" && plain ->
        finish ~adversary_label:"sequential"
          (Harness.Substrate.run_sequential ~shuffled:false
             Harness.Substrate.Atomic spec ~seed ~n ())
      | Harness.Substrate.Atomic ->
        Printf.eprintf
          "--substrate atomic supports only --adversary sequential without \
           --crash-fraction/--stagger; use --substrate effects\n";
        2
      | Harness.Substrate.Effects ->
        let adversary =
          if crash_fraction > 0. then
            Sim.Adversary.with_crashes ~fraction:crash_fraction adversary
          else adversary
        in
        let adversary =
          match stagger with
          | Some interval -> Sim.Arrivals.staggered ~interval adversary
          | None -> adversary
        in
        finish ~adversary_label:adversary.Sim.Adversary.name
          (Sim.Runner.run ~adversary ~seed ~n
             ~algo:(Harness.Substrate.closure spec) ())))

(* ------------------------------------------------------------------ *)
(* verify: the full safety battery *)

let verify seed rounds =
  let failures = ref 0 in
  let checks = ref 0 in
  let report name ok =
    incr checks;
    if not ok then begin
      incr failures;
      Printf.printf "FAIL  %s\n" name
    end
  in
  let sizes = [ 1; 2; 17; 64; 200 ] in
  let adversaries =
    List.map Sim.Validator.validated
      (Sim.Adversary.all_builtin
      @ [
          Sim.Adversary.with_crashes ~fraction:0.3 Sim.Adversary.greedy_collision;
          Sim.Arrivals.staggered ~interval:5 Sim.Adversary.random;
        ])
  in
  let algorithms =
    [
      ( "rebatching",
        fun n ->
          let instance = Renaming.Rebatching.make ~t0:3 ~n () in
          let spec = Renaming.Spec.create () in
          Renaming.Spec.with_rebatching spec instance;
          ((fun env -> Renaming.Rebatching.get_name env instance), spec) );
      ( "adaptive",
        fun _n ->
          let space = Renaming.Object_space.create ~t0:3 () in
          let spec = Renaming.Spec.create () in
          Renaming.Spec.with_object_space spec space;
          ((fun env -> Renaming.Adaptive_rebatching.get_name env space), spec) );
      ( "fast-adaptive",
        fun _n ->
          let space = Renaming.Object_space.create ~t0:3 () in
          let spec = Renaming.Spec.create () in
          Renaming.Spec.with_object_space spec space;
          ( (fun env -> Renaming.Fast_adaptive_rebatching.get_name env space),
            spec ) );
    ]
  in
  List.iter
    (fun (alg_name, make) ->
      List.iter
        (fun adversary ->
          List.iter
            (fun n ->
              for round = 0 to rounds - 1 do
                let algo, spec = make n in
                let label =
                  Printf.sprintf "%s / %s / n=%d / seed=%d" alg_name
                    adversary.Sim.Adversary.name n (seed + round)
                in
                match
                  Sim.Runner.run ~adversary
                    ~on_event:(Renaming.Spec.observe spec)
                    ~seed:(seed + round) ~n ~algo ()
                with
                | exception e ->
                  report (label ^ " raised " ^ Printexc.to_string e) false
                | r ->
                  report (label ^ ": unique names")
                    (Sim.Runner.check_unique_names r);
                  report
                    (label ^ ": spec clean")
                    (Renaming.Spec.violations spec = [])
              done)
            sizes)
        adversaries)
    algorithms;
  Printf.printf "verify: %d checks, %d failures\n" !checks !failures;
  if !failures = 0 then 0 else 1

(* ------------------------------------------------------------------ *)
(* report: run everything and emit one self-contained markdown file *)

let report out seed trials scale substrate =
  let oc = open_out out in
  let p fmt = Printf.fprintf oc fmt in
  p "# Experiment report\n\n";
  p
    "Generated by `repro_cli report` — seed %d, trials %d, scale %.2f, \
     substrate %s.  See DESIGN.md for the experiment index and \
     EXPERIMENTS.md for the recorded full-scale analysis.\n"
    seed trials scale
    (Harness.Substrate.to_string substrate);
  let in_code = ref false in
  let close_code () =
    if !in_code then begin
      p "```\n";
      in_code := false
    end
  in
  let ctx =
    {
      Harness.Experiment.seed;
      trials;
      scale;
      substrate;
      emit_table =
        (fun ~title table ->
          close_code ();
          p "\n**%s**\n\n%s\n" title (Harness.Table.render_markdown table));
      log =
        (fun line ->
          if not !in_code then begin
            p "\n```\n";
            in_code := true
          end;
          p "%s\n" line);
    }
  in
  List.iter
    (fun e ->
      close_code ();
      p "\n## %s — %s\n\nClaim: %s\n"
        (String.uppercase_ascii e.Harness.Experiment.id)
        e.Harness.Experiment.title e.Harness.Experiment.claim;
      e.Harness.Experiment.run ctx)
    Harness.Registry.all;
  close_code ();
  close_out oc;
  Printf.printf "report written to %s\n" out;
  0

let save_text ~file text =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc text;
      output_char oc '\n')

let read_text file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* doctor: audit a result store for integrity problems *)

let doctor dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "doctor: %s is not a directory\n" dir;
    2
  end
  else begin
    let problems = ref 0 in
    let notes = ref 0 in
    let problem fmt =
      incr problems;
      Printf.ksprintf (fun s -> Printf.printf "PROBLEM  %s\n" s) fmt
    in
    let note fmt =
      incr notes;
      Printf.ksprintf (fun s -> Printf.printf "note     %s\n" s) fmt
    in
    let manifest = Engine.Sink.read_manifest ~dir in
    let mfield name =
      Option.bind manifest (fun m -> List.assoc_opt name m)
    in
    (match manifest with
    | None ->
      note "no readable manifest.json — seed-tree checks skipped"
    | Some _ -> (
      (match mfield "schema" with
      | Some s when s <> Engine.Sink.schema_version ->
        problem "manifest schema is %S; this binary writes %S" s
          Engine.Sink.schema_version
      | Some _ -> ()
      | None -> note "manifest has no schema field (pre-fault-tolerance run)");
      (match mfield "status" with
      | Some "interrupted" ->
        note "run status is \"interrupted\" — finish it with --resume"
      | Some "running" ->
        note
          "run status is \"running\" — either a run is live or it was \
           killed without cleanup (resume is safe)"
      | _ -> ());
      match mfield "git" with
      | Some g -> Printf.printf "manifest: git %s\n" g
      | None -> ()));
    (* Host parallelism: chaos and racecheck results depend on how many
       domains actually ran, so record what this machine provides and
       the cap the runner will apply. *)
    Printf.printf
      "host: Domain.recommended_domain_count=%d, runner default domains=%d\n"
      (Domain.recommended_domain_count ())
      (Shm.Domain_runner.default_domains ());
    let root_seed = Option.bind (mfield "seed") int_of_string_opt in
    let stores =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             Filename.check_suffix f ".jsonl"
             && not (Filename.check_suffix f ".failures.jsonl"))
      |> List.sort compare
    in
    if stores = [] then note "no .jsonl stores in %s" dir;
    List.iter
      (fun file ->
        let experiment = Filename.chop_suffix file ".jsonl" in
        let path = Filename.concat dir file in
        let scan = Engine.Checkpoint.scan_store path in
        Printf.printf "%s: %d record(s), %d distinct key(s)\n" file
          scan.Engine.Checkpoint.records
          (Hashtbl.length scan.Engine.Checkpoint.keys);
        if scan.Engine.Checkpoint.duplicates > 0 then
          problem "%s: %d duplicate key(s)" file
            scan.Engine.Checkpoint.duplicates;
        if scan.Engine.Checkpoint.malformed_mid > 0 then
          problem "%s: %d malformed mid-file line(s)" file
            scan.Engine.Checkpoint.malformed_mid;
        if scan.Engine.Checkpoint.malformed_tail then
          note
            "%s: truncated tail line (crash artifact; --resume repairs \
             and re-runs it)"
            file;
        (* Every record's seed must be re-derivable from the manifest's
           root seed and the record's own coordinates. *)
        (match root_seed with
        | None -> ()
        | Some root ->
          let mismatches = ref 0 in
          List.iter
            (fun (r : Engine.Sink.record) ->
              let expect =
                Engine.Seed_tree.derive_attempt ~root
                  ~experiment:r.Engine.Sink.experiment
                  ~sweep_point:r.Engine.Sink.sweep_point
                  ~trial:r.Engine.Sink.trial ~attempt:r.Engine.Sink.attempt
              in
              if expect <> r.Engine.Sink.seed then incr mismatches)
            (Engine.Checkpoint.records path);
          if !mismatches > 0 then
            problem
              "%s: %d record(s) whose seed does not match the seed tree \
               (wrong --seed, or records from another run mixed in)"
              file !mismatches);
        let fpath =
          Engine.Fault.store_path ~dir ~experiment
        in
        if Sys.file_exists fpath then begin
          let counts = Engine.Fault.attempt_counts fpath in
          let total = List.length (Engine.Fault.load fpath) in
          note "%s: quarantine holds %d failure record(s) across %d job(s)"
            file total (Hashtbl.length counts);
          (* Sorted: quarantine keys must print in a stable order, not
             in Hashtbl bucket order. *)
          Hashtbl.to_seq counts |> List.of_seq
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          |> List.iter (fun (key, attempts) ->
                 let completed = Hashtbl.mem scan.Engine.Checkpoint.keys key in
                 Printf.printf "           %s: %d failed attempt(s)%s\n" key
                   attempts
                   (if completed then " (later succeeded)" else " (no record)"))
        end)
      stores;
    (* Chaos artifacts: recorded fault plans must parse and re-encode
       canonically (the replay contract), and a recorded verdict is a
       captured invariant violation until someone fixes it. *)
    let chaos_files prefix =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.starts_with ~prefix f && Filename.check_suffix f ".json")
      |> List.sort compare
    in
    let plan_seeds = Hashtbl.create 8 in
    List.iter
      (fun file ->
        let path = Filename.concat dir file in
        match Chaos.Fault_plan.load ~file:path with
        | Error e -> problem "%s: unreadable chaos plan: %s" file e
        | Ok plan ->
          Hashtbl.replace plan_seeds plan.Chaos.Fault_plan.seed ();
          Printf.printf
            "%s: plan seed=%d algo=%s procs=%d domains=%d crash_frac=%g\n"
            file plan.Chaos.Fault_plan.seed plan.Chaos.Fault_plan.algo
            plan.Chaos.Fault_plan.procs plan.Chaos.Fault_plan.domains
            plan.Chaos.Fault_plan.crash_frac;
          if
            String.trim (read_text path) <> Chaos.Fault_plan.to_json plan
          then
            problem "%s: not in canonical form — replay would re-record \
                     different bytes (hand-edited?)"
              file)
      (chaos_files "chaos_plan_");
    List.iter
      (fun file ->
        let path = Filename.concat dir file in
        match Chaos.Chaos_runner.summary_of_json (String.trim (read_text path)) with
        | Error e -> problem "%s: unreadable chaos verdict: %s" file e
        | Ok s ->
          Printf.printf "%s: verdict seed=%d %s\n" file
            s.Chaos.Chaos_runner.seed
            (if s.Chaos.Chaos_runner.ok then "ok" else "VIOLATED");
          if not (Hashtbl.mem plan_seeds s.Chaos.Chaos_runner.seed) then
            note
              "%s: verdict for seed %d has no matching chaos_plan_%d.json \
               (not replayable)"
              file s.Chaos.Chaos_runner.seed s.Chaos.Chaos_runner.seed;
          if not s.Chaos.Chaos_runner.ok then
            problem "%s: recorded invariant violation(s): %s" file
              (String.concat ", " s.Chaos.Chaos_runner.violations))
      (chaos_files "chaos_verdict_");
    (* Model-check counterexamples: a *.cex.json must carry the current
       schema, re-encode to the same bytes (the replay contract), and
       strict-replay to its recorded violation.  One that names a model
       or mutation this binary no longer knows is orphaned; one with NO
       mutation is a captured violation of the real system and stays a
       problem until someone fixes it. *)
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cex.json")
    |> List.sort compare
    |> List.iter (fun file ->
           let path = Filename.concat dir file in
           match Mcheck.Worlds.audit_fixture_replay (read_text path) with
           | Error e -> problem "%s: model-check counterexample: %s" file e
           | Ok fx ->
             Printf.printf
               "%s: cex model=%s mutation=%s, %d-step schedule replays\n" file
               fx.Analysis.Explore.fx_model
               (Option.value fx.Analysis.Explore.fx_mutation ~default:"none")
               (List.length fx.Analysis.Explore.fx_schedule);
             if fx.Analysis.Explore.fx_mutation = None then
               problem
                 "%s: counterexample against the unmutated model — a real \
                  captured bug: %s"
                 file fx.Analysis.Explore.fx_violation);
    (* Service artifacts: a socket file with no daemon behind it is a
       crash leftover (a graceful drain unlinks it), and every recorded
       load artifact must parse and carry a clean audit. *)
    let live_socket = ref false in
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sock")
    |> List.sort compare
    |> List.iter (fun file ->
           let path = Filename.concat dir file in
           let probe = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
           (match Unix.connect probe (ADDR_UNIX path) with
           | () ->
             live_socket := true;
             note "%s: a live renamed daemon is serving" file;
             (* Overload telemetry: a queue peak past the admission
                bound means the bound is not enforced — the daemon's
                queues are growing without limit. *)
             (match Service.Client.connect ~path () with
             | Error _ -> ()
             | Ok c ->
               (match Service.Client.stats c with
               | Error _ -> ()
               | Ok j -> (
                 let f = Jsonu.obj j in
                 match List.assoc_opt "overload" f with
                 | None -> ()
                 | Some o ->
                   let ov = Jsonu.obj o in
                   let peak =
                     try Jsonu.int_ f "queue_peak"
                     with Jsonu.Malformed -> 0
                   in
                   let bound =
                     try Jsonu.int_ ov "queue_bound"
                     with Jsonu.Malformed -> max_int
                   in
                   let level =
                     try Jsonu.str ov "level"
                     with Jsonu.Malformed -> "healthy"
                   in
                   if peak > bound then
                     problem
                       "%s: daemon reports queue peak %d past its %d \
                        admission bound — queues are growing without bound"
                       file peak bound;
                   if level <> "healthy" then
                     note "%s: daemon is %s (deepest queue seen %d/%d)"
                       file level peak bound));
               Service.Client.close c)
           | exception Unix.Unix_error (ECONNREFUSED, _, _) ->
             problem
               "%s: stale socket file — the daemon behind it crashed \
                (a graceful drain unlinks its socket); remove it or let \
                renamed reclaim it"
               file
           | exception Unix.Unix_error (e, _, _) ->
             problem "%s: socket probe failed: %s" file (Unix.error_message e));
           try Unix.close probe with Unix.Unix_error _ -> ());
    (* Crash journals: damage (a CRC failure on a complete record) makes
       recovery refuse to boot, and live grants in a journal nobody is
       serving are names some client may still believe it holds. *)
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".journal")
    |> List.sort compare
    |> List.iter (fun file ->
           let path = Filename.concat dir file in
           match Service.Journal.scan ~path with
           | Error e -> problem "%s: unreadable journal: %s" file e
           | Ok s ->
             let live = Service.Journal.replay s.Service.Journal.records in
             Printf.printf
               "%s: %d record(s), %d live grant(s), next epoch %d\n" file
               (List.length s.Service.Journal.records)
               (List.length live.Service.Journal.grants)
               live.Service.Journal.next_epoch;
             if s.Service.Journal.damaged > 0 then
               problem
                 "%s: %d damaged record(s) (CRC/framing on a complete \
                  record) — renamed --recover will refuse this journal"
                 file s.Service.Journal.damaged;
             if s.Service.Journal.torn_tail then
               note
                 "%s: torn tail record (crash artifact; --recover \
                  tolerates and compacts it away)"
                 file;
             if live.Service.Journal.double_grants > 0 then
               problem
                 "%s: replay observed %d duplicate grant(s) of a live \
                  name — the write-ahead discipline was violated"
                 file live.Service.Journal.double_grants;
             if live.Service.Journal.grants <> [] && not !live_socket then
               note
                 "%s: %d live grant(s) and no daemon serving in this \
                  directory — orphaned journal; restart renamed with \
                  --journal %s --recover"
                 file
                 (List.length live.Service.Journal.grants)
                 file);
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.starts_with ~prefix:"BENCH_SERVICE_" f
           && Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.iter (fun file ->
           let path = Filename.concat dir file in
           match Service.Service_bench.load path with
           | exception Jsonu.Malformed -> (
             (* The BENCH_SERVICE_<k> numbering is shared with the
                kill/restart soak's bench-service-recovery artifacts
                and the overload soak's bench-service-overload ones. *)
             match Service.Recovery_bench.load path with
             | exception Jsonu.Malformed -> (
               match Service.Overload_bench.load path with
               | exception Jsonu.Malformed ->
                 problem
                   "%s: not a bench-service, bench-service-recovery or \
                    bench-service-overload JSON document (schema drift?)"
                   file
               | exception Sys_error e -> problem "%s: unreadable: %s" file e
               | a ->
                 Printf.printf
                   "%s: overload soak, %.1fx capacity %.0f/s: goodput \
                    %.0f/s, %d shed, %d expired, level %s\n"
                   file a.Service.Overload_bench.overdrive
                   a.Service.Overload_bench.capacity_ops
                   a.Service.Overload_bench.goodput_daemon
                   a.Service.Overload_bench.shed
                   a.Service.Overload_bench.expired
                   a.Service.Overload_bench.level;
                 if
                   a.Service.Overload_bench.violations <> 0
                   || a.Service.Overload_bench.leaked > 0
                   || a.Service.Overload_bench.errors <> 0
                   || a.Service.Overload_bench.timeouts <> 0
                   || not a.Service.Overload_bench.drain_complete
                 then
                   problem
                     "%s: recorded audit failures (%d violation(s), %d \
                      leaked, %d error(s), %d timeout(s), drain %s)"
                     file a.Service.Overload_bench.violations
                     a.Service.Overload_bench.leaked
                     a.Service.Overload_bench.errors
                     a.Service.Overload_bench.timeouts
                     (if a.Service.Overload_bench.drain_complete then
                        "complete"
                      else "cut short");
                 if
                   a.Service.Overload_bench.queue_peak
                   > a.Service.Overload_bench.queue_bound
                 then
                   problem
                     "%s: recorded queue peak %d past the %d admission \
                      bound — queues grew without limit during the soak"
                     file a.Service.Overload_bench.queue_peak
                     a.Service.Overload_bench.queue_bound)
             | exception Sys_error e -> problem "%s: unreadable: %s" file e
             | a ->
               Printf.printf
                 "%s: recovery soak, %d cycle(s) x %.0f/s: p99 %.0f ms, \
                  %d reconnect(s)\n"
                 file a.Service.Recovery_bench.cycles
                 a.Service.Recovery_bench.rate
                 a.Service.Recovery_bench.recovery_p99_ms
                 a.Service.Recovery_bench.reconnects;
               if
                 a.Service.Recovery_bench.duplicate_grants <> 0
                 || a.Service.Recovery_bench.leaked_after_expiry <> 0
                 || a.Service.Recovery_bench.violations <> 0
                 || a.Service.Recovery_bench.errors <> 0
                 || a.Service.Recovery_bench.timeouts <> 0
                 || a.Service.Recovery_bench.journal_damaged <> 0
                 || a.Service.Recovery_bench.daemon_exit <> 0
               then
                 problem
                   "%s: recorded recovery-audit failures (%d duplicate \
                    grant(s), %d leaked after expiry, %d violation(s), \
                    %d error(s), %d timeout(s), %d damaged, exit %d)"
                   file a.Service.Recovery_bench.duplicate_grants
                   a.Service.Recovery_bench.leaked_after_expiry
                   a.Service.Recovery_bench.violations
                   a.Service.Recovery_bench.errors
                   a.Service.Recovery_bench.timeouts
                   a.Service.Recovery_bench.journal_damaged
                   a.Service.Recovery_bench.daemon_exit)
           | exception Sys_error e -> problem "%s: unreadable: %s" file e
           | a ->
             Printf.printf
               "%s: %.0f/s x %.1fs on %d shard(s): %.0f op/s, p99 %.1fus\n"
               file a.Service.Service_bench.rate
               a.Service.Service_bench.duration_s
               a.Service.Service_bench.shards
               a.Service.Service_bench.throughput
               (float_of_int a.Service.Service_bench.lat_p99 /. 1e3);
             if
               a.Service.Service_bench.violations <> 0
               || a.Service.Service_bench.leaked > 0
               || a.Service.Service_bench.errors <> 0
               || a.Service.Service_bench.timeouts <> 0
             then
               problem
                 "%s: recorded audit failures (%d violation(s), %d leaked, \
                  %d error(s), %d timeout(s))"
                 file a.Service.Service_bench.violations
                 a.Service.Service_bench.leaked a.Service.Service_bench.errors
                 a.Service.Service_bench.timeouts);
    (* Kernel / large-n benchmark artifacts: BENCH_<k>.json numbering is
       shared between the kind="bench" microbench suites and the
       kind="bench-large" decade sweeps; dispatch on the kind field. *)
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Scanf.sscanf_opt f "BENCH_%d.json%!" (fun i -> i) <> None)
    |> List.sort compare
    |> List.iter (fun file ->
           let path = Filename.concat dir file in
           match Engine.Sweep.load path with
           | Some a ->
             let series =
               List.sort_uniq compare
                 (List.map
                    (fun r -> (r.Engine.Sweep.experiment, r.Engine.Sweep.series))
                    a.Engine.Sweep.rows)
             in
             Printf.printf
               "%s: bench-large sweep, seed=%d, %d row(s) across %d series\n"
               file a.Engine.Sweep.seed
               (List.length a.Engine.Sweep.rows)
               (List.length series);
             List.iter (fun p -> problem "%s: %s" file p)
               (Engine.Sweep.audit a)
           | None -> (
             match Bench_kernels.load path with
             | exception Jsonu.Malformed ->
               problem
                 "%s: neither a bench nor a bench-large JSON document \
                  (schema drift?)"
                 file
             | exception Sys_error e -> problem "%s: unreadable: %s" file e
             | s ->
               Printf.printf "%s: kernel bench, seed=%d, %d kernel(s)\n" file
                 s.Bench_kernels.seed
                 (List.length s.Bench_kernels.kernels);
               if s.Bench_kernels.kernels = [] then
                 problem "%s: bench artifact has no kernels" file;
               List.iter
                 (fun (k : Bench_kernels.kernel) ->
                   if
                     not
                       (Float.is_finite k.Bench_kernels.ns_per_op
                       && Float.is_finite k.Bench_kernels.words_per_op)
                   then
                     problem "%s: kernel %s has non-finite measurements" file
                       k.Bench_kernels.name;
                   if
                     List.mem k.Bench_kernels.name Bench_kernels.zero_alloc_kernels
                     && k.Bench_kernels.words_per_op
                        > Bench_kernels.zero_alloc_budget
                   then
                     problem
                       "%s: fast kernel %s records %.3f words/op (budget %.2f)"
                       file k.Bench_kernels.name k.Bench_kernels.words_per_op
                       Bench_kernels.zero_alloc_budget)
                 s.Bench_kernels.kernels));
    Printf.printf "doctor: %d problem(s), %d note(s)\n" !problems !notes;
    if !problems = 0 then 0 else 1
  end

(* ------------------------------------------------------------------ *)
(* lint: AST-level determinism lint over the source tree *)

let lint json root paths =
  Analysis.Lint.run ~json ~root ~paths ~out:print_string ()

(* ------------------------------------------------------------------ *)
(* racecheck: happens-before certification of multicore executions *)

(* The algorithm table lives in Chaos.Algos so racecheck, the chaos
   commands and recorded fault plans all interpret an algorithm name the
   same way. *)
let racecheck_algo_names = Chaos.Algos.names
let make_shm_algo name ~n ~t0 = Chaos.Algos.make name ~n ~t0 ()

(* A deliberately racy execution for demonstrating the checker: two
   domains plain-write the same location with no synchronization edge
   between them, so their vector clocks are incomparable regardless of
   interleaving and the monitor must report a race. *)
let racecheck_racy_demo () =
  let sp = Analysis.Hb_space.create ~mode:Analysis.Hb.Collect ~capacity:4 () in
  let worker () = Analysis.Hb_space.write_plain sp "shared-counter" in
  (* Raw spawns on purpose: the demo's point is exactly that nothing
     orders the two writes.  repro-lint: allow domain-spawn *)
  let handles = Array.init 2 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join handles;
  match Analysis.Hb_space.races sp with
  | [] ->
    prerr_endline
      "racecheck --racy: internal error — the guaranteed race was not detected";
    2
  | races ->
    List.iter (fun r -> print_endline (Analysis.Hb.race_to_string r)) races;
    Printf.printf
      "racecheck: %d race(s) detected (expected — this is the racy demo)\n"
      (List.length races);
    1

let racecheck algo_name procs domains seed runs racy =
  if racy then racecheck_racy_demo ()
  else if procs < 1 || domains < 1 || runs < 1 then begin
    Printf.eprintf "racecheck: --procs, --domains and --runs must be >= 1\n";
    2
  end
  else
    match make_shm_algo algo_name ~n:procs ~t0:3 with
    | Error msg ->
      Printf.eprintf "%s\nalgorithms: %s\n" msg
        (String.concat ", " racecheck_algo_names);
      2
    | Ok _ ->
      let dirty = ref 0 in
      for i = 0 to runs - 1 do
        let run_seed = seed + i in
        (* Fresh instance per run: the renaming structures are stateful. *)
        let algo, capacity =
          match make_shm_algo algo_name ~n:procs ~t0:3 with
          | Ok v -> v
          | Error _ -> assert false
        in
        match
          Analysis.Hb_runner.certify ~domains ~seed:run_seed ~procs ~capacity
            ~algo ()
        with
        | Error races ->
          incr dirty;
          List.iter (fun r -> print_endline (Analysis.Hb.race_to_string r)) races;
          Printf.printf "seed=%d: %d race(s)\n" run_seed (List.length races)
        | Ok o ->
          let r = o.Analysis.Hb_runner.result in
          let s = o.Analysis.Hb_runner.stats in
          if not (Shm.Domain_runner.check_unique_names r) then begin
            incr dirty;
            Printf.printf "seed=%d: race-free but names NOT unique\n" run_seed
          end
          else
            Printf.printf
              "seed=%d: certified race-free (domains=%d threads=%d \
               atomic_locs=%d plain_locs=%d events=%d, unique names)\n"
              run_seed r.Shm.Domain_runner.domains_used s.Analysis.Hb.threads
              s.Analysis.Hb.atomic_locations s.Analysis.Hb.plain_locations
              s.Analysis.Hb.events
      done;
      if !dirty = 0 then 0 else 1

(* ------------------------------------------------------------------ *)
(* chaos: deterministic crash/delay injection on the multicore substrate *)

let chaos_plan_file ~dir ~seed =
  Filename.concat dir (Printf.sprintf "chaos_plan_%d.json" seed)

let chaos_verdict_file ~dir ~seed =
  Filename.concat dir (Printf.sprintf "chaos_verdict_%d.json" seed)

let chaos_record ~dir (o : Chaos.Chaos_runner.outcome) =
  let v = o.Chaos.Chaos_runner.verdict in
  let plan = v.Chaos.Chaos_runner.plan in
  let seed = plan.Chaos.Fault_plan.seed in
  Engine.Sink.mkdir_p dir;
  Chaos.Fault_plan.save ~file:(chaos_plan_file ~dir ~seed) plan;
  save_text
    ~file:(chaos_verdict_file ~dir ~seed)
    (Chaos.Chaos_runner.verdict_to_json v)

let chaos_print_outcome ~json (o : Chaos.Chaos_runner.outcome) =
  let v = o.Chaos.Chaos_runner.verdict in
  if json then print_endline (Chaos.Chaos_runner.verdict_to_json v)
  else begin
    let p = v.Chaos.Chaos_runner.plan in
    Printf.printf
      "seed=%d algo=%s procs=%d domains=%d crash_frac=%g: armed=%d fired=%d \
       survivors=%d names=%d max_name=%d leaked=%d\n"
      p.Chaos.Fault_plan.seed p.Chaos.Fault_plan.algo p.Chaos.Fault_plan.procs
      p.Chaos.Fault_plan.domains p.Chaos.Fault_plan.crash_frac
      (List.length p.Chaos.Fault_plan.crashes)
      (List.length v.Chaos.Chaos_runner.fired)
      v.Chaos.Chaos_runner.survivors v.Chaos.Chaos_runner.names_assigned
      v.Chaos.Chaos_runner.max_name v.Chaos.Chaos_runner.leaked;
    (match o.Chaos.Chaos_runner.races with
    | None -> ()
    | Some [] -> Printf.printf "happens-before: certified race-free\n"
    | Some races ->
      List.iter (fun r -> print_endline (Analysis.Hb.race_to_string r)) races;
      Printf.printf "happens-before: %d race(s)\n" (List.length races));
    match v.Chaos.Chaos_runner.violations with
    | [] -> Printf.printf "invariants: ok\n"
    | vs -> Printf.printf "invariants VIOLATED: %s\n" (String.concat ", " vs)
  end

let chaos_outcome_exit (o : Chaos.Chaos_runner.outcome) =
  let racy =
    match o.Chaos.Chaos_runner.races with Some (_ :: _) -> true | _ -> false
  in
  if Chaos.Chaos_runner.ok o.Chaos.Chaos_runner.verdict && not racy then 0
  else 1

let chaos_run algo_name procs domains seed crash_frac pause_frac name_bound out
    certify json =
  match Chaos.Algos.make algo_name ~n:procs () with
  | Error msg ->
    Printf.eprintf "%s\nalgorithms: %s\n" msg
      (String.concat ", " Chaos.Algos.names);
    2
  | Ok (algo, capacity) -> (
    let domains =
      match domains with
      | Some d -> d
      | None -> Shm.Domain_runner.default_domains ~procs ()
    in
    match
      Chaos.Fault_plan.make ~seed ~procs ~domains ~algo:algo_name ~capacity
        ?name_bound ~crash_frac ~pause_frac ()
    with
    | exception Invalid_argument msg ->
      Printf.eprintf "chaos run: %s\n" msg;
      2
    | plan ->
      let o = Chaos.Chaos_runner.run ~certify ~plan ~algo () in
      Option.iter (fun dir -> chaos_record ~dir o) out;
      chaos_print_outcome ~json o;
      chaos_outcome_exit o)

let chaos_soak_json ~runs ~failures ~violations =
  let open Engine.Sink.Json in
  to_string
    (Obj
       [
         ("kind", Str "chaos-soak");
         ("runs", Int runs);
         ("failing", Int (List.length failures));
         ("failing_seeds", Arr (List.map (fun (s, _) -> Int s) failures));
         ("ok", Bool (failures = []));
         ("violations", Arr (List.map (fun v -> Str v) violations));
       ])

(* Soak: many independent seeded runs cycling through the crash
   fractions.  A failing run's plan and verdict are recorded to --out,
   so any violation arrives as a committable regression fixture. *)
let chaos_soak algo_name procs domains seed runs fracs pause_frac out certify
    json =
  if runs < 1 || fracs = [] then begin
    Printf.eprintf "chaos soak: --runs must be >= 1 and --crash-fracs non-empty\n";
    2
  end
  else begin
    let failures = ref [] in
    let ran = ref 0 in
    let usage = ref None in
    (try
       for i = 0 to runs - 1 do
         let frac = List.nth fracs (i mod List.length fracs) in
         let run_seed = seed + i in
         match Chaos.Algos.make algo_name ~n:procs () with
         | Error msg -> usage := Some msg; raise Exit
         | Ok (algo, capacity) ->
           let domains =
             match domains with
             | Some d -> d
             | None -> Shm.Domain_runner.default_domains ~procs ()
           in
           let plan =
             Chaos.Fault_plan.make ~seed:run_seed ~procs ~domains
               ~algo:algo_name ~capacity ~crash_frac:frac ~pause_frac ()
           in
           let o = Chaos.Chaos_runner.run ~certify ~plan ~algo () in
           incr ran;
           if chaos_outcome_exit o <> 0 then begin
             failures := (run_seed, o) :: !failures;
             Option.iter (fun dir -> chaos_record ~dir o) out;
             if not json then chaos_print_outcome ~json:false o
           end
       done
     with
    | Exit -> ()
    | Invalid_argument msg -> usage := Some msg);
    match !usage with
    | Some msg ->
      Printf.eprintf "chaos soak: %s\n" msg;
      2
    | None ->
      let failures = List.rev !failures in
      let violations =
        List.sort_uniq compare
          (List.concat_map
             (fun (_, (o : Chaos.Chaos_runner.outcome)) ->
               o.Chaos.Chaos_runner.verdict.Chaos.Chaos_runner.violations)
             failures)
      in
      if json then
        print_endline (chaos_soak_json ~runs:!ran ~failures ~violations)
      else
        Printf.printf "chaos soak: %d run(s), %d violating (seeds: %s)%s\n"
          !ran
          (List.length failures)
          (match failures with
          | [] -> "none"
          | fs ->
            String.concat ", " (List.map (fun (s, _) -> string_of_int s) fs))
          (if violations = [] then ""
           else "; violations: " ^ String.concat ", " violations);
      if failures = [] then 0 else 1
  end

let chaos_replay file out certify json =
  match Chaos.Fault_plan.load ~file with
  | Error e ->
    Printf.eprintf "chaos replay: %s: %s\n" file e;
    2
  | Ok plan -> (
    (* Integrity: a recorded plan must be in canonical form — the replay
       byte-identity contract (`to_json (of_json s) = s`) is what makes
       committed fixtures trustworthy. *)
    if String.trim (read_text file) <> Chaos.Fault_plan.to_json plan then
      Printf.eprintf
        "chaos replay: warning: %s is not in canonical form (hand-edited?); \
         replaying its parsed content\n"
        file;
    match Chaos.Chaos_runner.run_plan ~certify plan with
    | Error e ->
      Printf.eprintf "chaos replay: %s\n" e;
      2
    | Ok o ->
      Option.iter (fun dir -> chaos_record ~dir o) out;
      chaos_print_outcome ~json o;
      chaos_outcome_exit o)

(* ------------------------------------------------------------------ *)
(* chaos service: SIGKILL/--recover soak of the real daemon under
   open-loop load, optionally through the wire-fault proxy *)

let status_describe = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by %d" s

(* Nearest-rank percentile over an ascending array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* Accepting = a direct connect to the daemon socket succeeds; the
   daemon binds only after recovery completes, so this observes the
   full boot (or SIGKILL -> serving-again) interval. *)
let wait_accepting ~sock ~pid ~deadline =
  let rec go () =
    if Unix.gettimeofday () > deadline then
      Error "daemon did not accept within its startup deadline"
    else begin
      let probe = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      match Unix.connect probe (ADDR_UNIX sock) with
      | () ->
        Unix.close probe;
        Ok ()
      | exception Unix.Unix_error _ -> (
        (try Unix.close probe with Unix.Unix_error _ -> ());
        match Unix.waitpid [ WNOHANG ] pid with
        | 0, _ ->
          Unix.sleepf 0.005;
          go ()
        | _, status ->
          Error
            (Printf.sprintf "daemon died during startup (%s)"
               (status_describe status)))
    end
  in
  go ()

(* Resident set of a live process, from /proc (kB); -1 if unreadable. *)
let proc_rss_kb pid =
  match open_in (Printf.sprintf "/proc/%d/statm" pid) with
  | exception Sys_error _ -> -1
  | ic ->
    let r =
      match input_line ic with
      | exception End_of_file -> -1
      | line -> (
        match String.split_on_char ' ' line with
        | _ :: resident :: _ -> (
          match int_of_string_opt resident with
          | Some pages -> pages * 4 (* 4 KiB pages *)
          | None -> -1)
        | _ -> -1)
    in
    close_in ic;
    r

let chaos_service json cycles rate duration conns clients shards capacity
    lease_ttl seed wire_faults daemon keep out check threshold =
  (* The soak writes to sockets whose peer it is busy killing. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let log fmt =
    Printf.ksprintf (fun s -> Printf.eprintf "[soak] %s\n%!" s) fmt
  in
  let daemon_path =
    match daemon with
    | Some p -> p
    | None ->
      (* repro_cli and renamed are built side by side. *)
      Filename.concat (Filename.dirname Sys.executable_name) "renamed.exe"
  in
  if not (Sys.file_exists daemon_path) then begin
    log "no renamed binary at %s (build bin/ or pass --daemon)" daemon_path;
    2
  end
  else begin
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "renamed_soak_%d" (Unix.getpid ()))
    in
    Service.Service_bench.mkdir_p dir;
    let real_sock = Filename.concat dir "renamed.sock" in
    let proxy_sock = Filename.concat dir "proxy.sock" in
    let journal = Filename.concat dir "renamed.journal" in
    let spawn_daemon () =
      Unix.create_process daemon_path
        [|
          daemon_path; "--socket"; real_sock;
          "--shards"; string_of_int shards;
          "--capacity"; string_of_int capacity;
          "--lease-ttl"; Printf.sprintf "%g" lease_ttl;
          "--journal"; journal; "--recover"; "--quiet";
        |]
        Unix.stdin Unix.stdout Unix.stderr
    in
    let wait_accepting = wait_accepting ~sock:real_sock in
    (* Journal audit, summed across compactions: each --recover boot
       rewrites the file down to its live grants, so every dead window
       (and the final drain) is scanned as its own segment. *)
    let jrecords = ref 0 and jtorn = ref 0 and jdamaged = ref 0 in
    let dups = ref 0 in
    let scan_segment tag =
      match Service.Journal.scan ~path:journal with
      | Error e ->
        log "%s: journal unreadable: %s" tag e;
        incr jdamaged
      | Ok s ->
        let live = Service.Journal.replay s.Service.Journal.records in
        jrecords := !jrecords + List.length s.Service.Journal.records;
        if s.Service.Journal.torn_tail then incr jtorn;
        jdamaged := !jdamaged + s.Service.Journal.damaged;
        dups := !dups + live.Service.Journal.double_grants;
        log "%s: %d record(s), %d live grant(s), %d duplicate(s)%s%s" tag
          (List.length s.Service.Journal.records)
          (List.length live.Service.Journal.grants)
          live.Service.Journal.double_grants
          (if s.Service.Journal.torn_tail then ", torn tail" else "")
          (if s.Service.Journal.damaged > 0 then
             Printf.sprintf ", %d DAMAGED" s.Service.Journal.damaged
           else "")
    in
    let cleanup () =
      if keep then log "keeping %s" dir
      else begin
        List.iter
          (fun f -> try Sys.remove f with Sys_error _ -> ())
          [ real_sock; proxy_sock; journal ];
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end
    in
    let pid = ref (spawn_daemon ()) in
    match wait_accepting ~pid:!pid ~deadline:(Unix.gettimeofday () +. 10.) with
    | Error e ->
      log "initial boot: %s" e;
      cleanup ();
      2
    | Ok () -> (
      let proxy =
        if not wire_faults then Ok None
        else
          let pcfg =
            {
              (Chaos.Wire_fault.default_config ~listen_path:proxy_sock
                 ~upstream_path:real_sock)
              with
              seed;
              log = (fun s -> Printf.eprintf "[proxy] %s\n%!" s);
            }
          in
          Result.map Option.some (Chaos.Wire_fault.start pcfg)
      in
      match proxy with
      | Error e ->
        log "proxy: %s" e;
        (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] !pid);
        cleanup ();
        2
      | Ok proxy ->
        let load_cfg =
          {
            (Service.Load_gen.default_config
               ~path:(if wire_faults then proxy_sock else real_sock))
            with
            conns;
            clients;
            rate;
            duration_s = duration;
            hold = Service.Load_gen.Exponential 0.02;
            seed;
            (* Generous: every daemon kill costs each slot a burst of
               accept-then-reset retries against the proxy. *)
            reconnect_attempts = 50;
            reconnect_backoff = 0.02;
            log = (fun s -> Printf.eprintf "[load] %s\n%!" s);
          }
        in
        let load_res = ref (Error "load generator never ran") in
        (* The kill/restart loop below must run while the load does. *)
        let load_dom =
          (* repro-lint: allow domain-spawn — joined soak-driver domain *)
          Domain.spawn (fun () -> load_res := Service.Load_gen.run load_cfg)
        in
        let seg = duration /. float_of_int (cycles + 1) in
        let recov = Array.make (max 1 cycles) 0. in
        let failed = ref None in
        for i = 0 to cycles - 1 do
          if !failed = None then begin
            Unix.sleepf seg;
            let t0 = Unix.gettimeofday () in
            log "cycle %d/%d: SIGKILL" (i + 1) cycles;
            Unix.kill !pid Sys.sigkill;
            ignore (Unix.waitpid [] !pid);
            scan_segment (Printf.sprintf "cycle %d" (i + 1));
            pid := spawn_daemon ();
            match
              wait_accepting ~pid:!pid
                ~deadline:(Unix.gettimeofday () +. 10.)
            with
            | Ok () ->
              recov.(i) <- (Unix.gettimeofday () -. t0) *. 1000.;
              log "cycle %d/%d: recovered in %.0f ms" (i + 1) cycles recov.(i)
            | Error e -> failed := Some e
          end
        done;
        Domain.join load_dom;
        (* Every name abandoned to a killed connection is protected only
           by its lease: one TTL (plus sweep slack) later the server
           must be empty. *)
        let leaked =
          match !failed with
          | Some _ -> -1
          | None -> (
            Unix.sleepf (lease_ttl +. Float.max 0.5 (lease_ttl /. 5.));
            match Service.Client.connect ~path:real_sock () with
            | Error _ -> -1
            | Ok c ->
              let v =
                match Service.Client.stats c with
                | Ok j -> (
                  try Jsonu.int_ (Jsonu.obj j) "taken"
                  with Jsonu.Malformed -> -1)
                | Error _ -> -1
              in
              Service.Client.close c;
              v)
        in
        let daemon_exit =
          match !failed with
          | Some _ ->
            (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
            (try ignore (Unix.waitpid [] !pid) with Unix.Unix_error _ -> ());
            125
          | None -> (
            Unix.kill !pid Sys.sigterm;
            match Unix.waitpid [] !pid with
            | _, Unix.WEXITED c -> c
            | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> 125)
        in
        scan_segment "final";
        Option.iter Chaos.Wire_fault.stop proxy;
        Option.iter
          (fun p ->
            let c = Chaos.Wire_fault.counters p in
            log
              "proxy: %d conn(s), %d refused, %d chop(s), %d stall(s), \
               %d reset(s)"
              c.Chaos.Wire_fault.conns c.Chaos.Wire_fault.refused
              c.Chaos.Wire_fault.chops c.Chaos.Wire_fault.stalls
              c.Chaos.Wire_fault.resets)
          proxy;
        cleanup ();
        match (!failed, !load_res) with
        | Some e, _ ->
          log "soak failed: %s" e;
          2
        | None, Error e ->
          log "load failed: %s" e;
          2
        | None, Ok r ->
          let sorted = Array.sub recov 0 cycles in
          Array.sort Float.compare sorted;
          let art =
            {
              Service.Recovery_bench.cycles;
              rate;
              duration_s = duration;
              seed;
              shards;
              capacity;
              lease_ttl_s = lease_ttl;
              wire_faults;
              wall_s = r.Service.Load_gen.wall_s;
              offered = r.Service.Load_gen.offered;
              acquired = r.Service.Load_gen.acquired;
              acquire_failures = r.Service.Load_gen.acquire_failures;
              released = r.Service.Load_gen.released;
              errors = r.Service.Load_gen.errors;
              timeouts = r.Service.Load_gen.timeouts;
              violations = r.Service.Load_gen.violations;
              reconnects = r.Service.Load_gen.reconnects;
              dropped = r.Service.Load_gen.dropped;
              abandoned = r.Service.Load_gen.abandoned;
              throughput = r.Service.Load_gen.throughput;
              duplicate_grants = !dups;
              leaked_after_expiry = leaked;
              recovery_p50_ms = percentile sorted 50.;
              recovery_p99_ms = percentile sorted 99.;
              recovery_max_ms = percentile sorted 100.;
              journal_records = !jrecords;
              journal_torn_tails = !jtorn;
              journal_damaged = !jdamaged;
              daemon_exit;
            }
          in
          if json then
            print_endline
              (Jsonu.to_string (Service.Recovery_bench.to_json art))
          else print_endline (Service.Recovery_bench.render art);
          let path = Service.Recovery_bench.save ~dir:out art in
          log "wrote %s" path;
          let audit_exit =
            if
              art.Service.Recovery_bench.duplicate_grants = 0
              && art.Service.Recovery_bench.leaked_after_expiry = 0
              && art.Service.Recovery_bench.violations = 0
              && art.Service.Recovery_bench.errors = 0
              && art.Service.Recovery_bench.timeouts = 0
              && art.Service.Recovery_bench.journal_damaged = 0
              && art.Service.Recovery_bench.daemon_exit = 0
              && art.Service.Recovery_bench.acquired > 0
            then 0
            else 1
          in
          (match check with
          | None -> audit_exit
          | Some file -> (
            match Service.Recovery_bench.load file with
            | exception Sys_error msg ->
              log "cannot read baseline: %s" msg;
              2
            | exception Jsonu.Malformed ->
              log "baseline %s is not a bench-service-recovery document" file;
              2
            | baseline -> (
              match
                Service.Recovery_bench.check ~threshold ~baseline
                  ~current:art
              with
              | [] ->
                log "regression check passed against %s (threshold %g)" file
                  threshold;
                audit_exit
              | findings ->
                List.iter (fun f -> log "FAIL: %s" f) findings;
                1))))
  end

(* chaos overload: drive the daemon far past capacity and check that it
   degrades instead of collapsing *)

let chaos_overload json overdrive calibrate_rate calibrate_duration duration
    conns clients shards capacity max_queue deadline_ms drain_timeout seed
    daemon keep out check threshold =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let log fmt =
    Printf.ksprintf (fun s -> Printf.eprintf "[overload] %s\n%!" s) fmt
  in
  let daemon_path =
    match daemon with
    | Some p -> p
    | None ->
      Filename.concat (Filename.dirname Sys.executable_name) "renamed.exe"
  in
  if not (Sys.file_exists daemon_path) then begin
    log "no renamed binary at %s (build bin/ or pass --daemon)" daemon_path;
    2
  end
  else if overdrive < 1. then begin
    log "--overdrive must be >= 1";
    2
  end
  else begin
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "renamed_overload_%d" (Unix.getpid ()))
    in
    Service.Service_bench.mkdir_p dir;
    let sock = Filename.concat dir "renamed.sock" in
    let cleanup () =
      if keep then log "keeping %s" dir
      else begin
        (try Sys.remove sock with Sys_error _ -> ());
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end
    in
    (* The generator and daemon timeshare this machine, so at heavy
       overdrive the generator itself read-starves into looking like a
       slow client; the default 5 s stall deadline would then sever the
       measurement connections mid-soak (the disconnect path has its
       own e2e test).  A long stall timeout keeps the daemon's
       read-pausing backpressure — the behavior under test — while the
       harness stays connected. *)
    let pid =
      Unix.create_process daemon_path
        [|
          daemon_path; "--socket"; sock;
          "--shards"; string_of_int shards;
          "--capacity"; string_of_int capacity;
          "--max-queue"; string_of_int max_queue;
          "--stall-timeout"; "60";
          "--quiet";
        |]
        Unix.stdin Unix.stdout Unix.stderr
    in
    let kill_daemon () =
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
    in
    let run_load ~tag ~rate ~duration_s =
      Service.Load_gen.run
        {
          (Service.Load_gen.default_config ~path:sock) with
          conns;
          clients;
          rate;
          duration_s;
          seed;
          deadline_ms;
          drain_timeout_s = drain_timeout;
          log = (fun s -> Printf.eprintf "[%s] %s\n%!" tag s);
        }
    in
    (* The daemon's cumulative served-acquire counter, from a stats
       round-trip on a throwaway connection; -1 when unreadable. *)
    let sample_acquires () =
      match Service.Client.connect ~path:sock () with
      | Error _ -> -1
      | Ok c ->
        let v =
          match Service.Client.stats c with
          | Error _ -> -1
          | Ok j -> (
            match Jsonu.int_ (Jsonu.obj j) "acquires" with
            | v -> v
            | exception Jsonu.Malformed -> -1)
        in
        Service.Client.close c;
        v
    in
    (* Goodput measured where it is not distorted: the generator and
       daemon timeshare the machine, so under heavy overdrive the
       generator read-starves and grants land after the arrival window
       — the client-side count then reports the generator's collapse,
       not the daemon's.  Sample the daemon's own served counter at
       both edges of the window instead; the client-side number rides
       along in the artifact for comparison. *)
    let timed_load ~tag ~rate ~duration_s =
      let a0 = sample_acquires () in
      let sampler =
        (* repro-lint: allow domain-spawn — end-of-window stats sampler *)
        Domain.spawn (fun () ->
            Unix.sleepf duration_s;
            sample_acquires ())
      in
      let r = run_load ~tag ~rate ~duration_s in
      let a1 = Domain.join sampler in
      match r with
      | Error _ as e -> e
      | Ok r ->
        let daemon_goodput =
          if a0 >= 0 && a1 >= a0 then
            float_of_int (a1 - a0) /. Float.max 1e-9 duration_s
          else r.Service.Load_gen.goodput
        in
        Ok (r, daemon_goodput)
    in
    match wait_accepting ~sock ~pid ~deadline:(Unix.gettimeofday () +. 10.) with
    | Error e ->
      log "boot: %s" e;
      kill_daemon ();
      cleanup ();
      2
    | Ok () -> (
      (* Capacity is whatever the daemon actually serves when offered
         more than it can take: calibration keeps doubling the offered
         rate until goodput falls measurably short of it, and that
         saturated goodput — generator and daemon bottlenecks included
         — is the service rate the soak then overdrives.  Stopping at
         the first unsaturated rate would report the offered rate, not
         a capacity. *)
      (* The generator and daemon share this machine, so the daemon's
         service rate depends on how hard the generator is pushing:
         capacity measured under a lazy generator would be a bar the
         soak — whose generator runs flat out — could never meet.  The
         saturated run is the one whose CPU split matches the soak's,
         so {e its} daemon-side goodput is the capacity the plateau is
         judged against. *)
      let rec calibrate rate tries =
        log "calibrating at %.0f/s for %.1fs" rate calibrate_duration;
        match
          timed_load ~tag:"calibrate" ~rate ~duration_s:calibrate_duration
        with
        | Error _ as e -> e
        | Ok (_, g) ->
          if g <= 0. then Error "calibration served nothing (goodput 0)"
          else if g >= 0.9 *. rate && tries > 0 then begin
            log "kept up at %.0f/s (goodput %.0f/s): not saturated, doubling"
              rate g;
            calibrate (2. *. rate) (tries - 1)
          end
          else Ok (rate, g)
      in
      match calibrate calibrate_rate 6 with
      | Error e ->
        log "calibration failed: %s" e;
        kill_daemon ();
        cleanup ();
        2
      | Ok (calibrated_rate, capacity_ops) -> (
        let rate = overdrive *. capacity_ops in
        let rss_start = proc_rss_kb pid in
        log "capacity %.0f/s; soaking at %.1fx = %.0f/s for %.1fs"
          capacity_ops overdrive rate duration;
        match timed_load ~tag:"soak" ~rate ~duration_s:duration with
        | Error e ->
          log "soak failed: %s" e;
          kill_daemon ();
          cleanup ();
          2
        | Ok (r, goodput_daemon) ->
          let rss_end = proc_rss_kb pid in
          (* Final daemon-side snapshot: deepest queue seen and the
             overload level the state machine ended at. *)
          let queue_peak, level =
            match Service.Client.connect ~path:sock () with
            | Error _ -> (-1, "unreachable")
            | Ok c ->
              let snap =
                match Service.Client.stats c with
                | Error _ -> (-1, "unreachable")
                | Ok j -> (
                  let f = Jsonu.obj j in
                  let peak =
                    match Jsonu.int_ f "queue_peak" with
                    | v -> v
                    | exception Jsonu.Malformed -> -1
                  in
                  let level =
                    match List.assoc_opt "overload" f with
                    | Some o -> (
                      match Jsonu.str (Jsonu.obj o) "level" with
                      | s -> s
                      | exception Jsonu.Malformed -> "unknown")
                    | None -> "unknown"
                  in
                  (peak, level))
              in
              Service.Client.close c;
              snap
          in
          let daemon_exit =
            Unix.kill pid Sys.sigterm;
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED c -> c
            | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> 125
          in
          cleanup ();
          if daemon_exit <> 0 then
            log "daemon exited %d (leak audit at shutdown)" daemon_exit;
          let q = Stats.Hdr.quantile r.Service.Load_gen.latency in
          let art =
            {
              Service.Overload_bench.shards;
              capacity;
              conns;
              clients;
              calibrate_rate = calibrated_rate;
              capacity_ops;
              overdrive;
              rate;
              duration_s = duration;
              seed;
              max_queue;
              deadline_ms;
              wall_s = r.Service.Load_gen.wall_s;
              offered = r.Service.Load_gen.offered;
              acquired = r.Service.Load_gen.acquired;
              shed = r.Service.Load_gen.shed;
              expired = r.Service.Load_gen.expired;
              acquire_failures = r.Service.Load_gen.acquire_failures;
              released = r.Service.Load_gen.released;
              errors = r.Service.Load_gen.errors;
              timeouts = r.Service.Load_gen.timeouts;
              violations = r.Service.Load_gen.violations;
              leaked = r.Service.Load_gen.leaked;
              goodput = r.Service.Load_gen.goodput;
              goodput_daemon;
              lat_p50 = q 0.5;
              lat_p99 = q 0.99;
              lat_max = Stats.Hdr.max_value r.Service.Load_gen.latency;
              rss_start_kb = rss_start;
              rss_end_kb = rss_end;
              queue_peak;
              queue_bound = max_queue;
              level;
              drain_complete = r.Service.Load_gen.drain_complete;
            }
          in
          if json then
            print_endline (Jsonu.to_string (Service.Overload_bench.to_json art))
          else print_endline (Service.Overload_bench.render art);
          let path = Service.Overload_bench.save ~dir:out art in
          log "wrote %s" path;
          let audit_exit =
            if
              art.Service.Overload_bench.violations = 0
              && art.Service.Overload_bench.leaked = 0
              && art.Service.Overload_bench.errors = 0
              && art.Service.Overload_bench.timeouts = 0
              && art.Service.Overload_bench.acquired > 0
              && art.Service.Overload_bench.shed
                 + art.Service.Overload_bench.expired
                 > 0
              && art.Service.Overload_bench.queue_peak
                 <= art.Service.Overload_bench.queue_bound
              && art.Service.Overload_bench.goodput_daemon
                 >= 0.8 *. capacity_ops
              && art.Service.Overload_bench.drain_complete
              && daemon_exit = 0
            then 0
            else 1
          in
          (match check with
          | None -> audit_exit
          | Some file -> (
            match Service.Overload_bench.load file with
            | exception Sys_error msg ->
              log "cannot read baseline: %s" msg;
              2
            | exception Jsonu.Malformed ->
              log "baseline %s is not a bench-service-overload document" file;
              2
            | baseline -> (
              match
                Service.Overload_bench.check ~threshold ~baseline ~current:art
              with
              | [] ->
                log "regression check passed against %s (threshold %g)" file
                  threshold;
                audit_exit
              | findings ->
                List.iter (fun f -> log "FAIL: %s" f) findings;
                1)))))
  end

(* ------------------------------------------------------------------ *)
(* modelcheck: exhaustive DPOR exploration of small configurations *)

module Explore = Analysis.Explore

type mc_run = {
  mc_label : string;
  mc_stats : Explore.stats;
  mc_violation : Explore.violation option;
  mc_fixture : Explore.fixture option;
  mc_wall_s : float;
}

(* Explore one world; on a violation, shrink it and build its fixture. *)
let mc_run ~label ~sleep ~max_transitions world fixture_of =
  let t0 = Unix.gettimeofday () in
  let outcome = Explore.explore ~sleep_sets:sleep ~max_transitions world in
  let wall = Unix.gettimeofday () -. t0 in
  let violation, fixture =
    match outcome.Explore.violation with
    | None -> (None, None)
    | Some v ->
      let mv = Explore.minimize world v in
      (Some mv, Some (fixture_of mv))
  in
  {
    mc_label = label;
    mc_stats = outcome.Explore.stats;
    mc_violation = violation;
    mc_fixture = fixture;
    mc_wall_s = wall;
  }

let mc_print_run r =
  Printf.printf "%s: %d schedule(s), %d transition(s), depth %d, %d pruned%s, %.2fs\n"
    r.mc_label r.mc_stats.Explore.schedules r.mc_stats.Explore.transitions
    r.mc_stats.Explore.max_depth r.mc_stats.Explore.sleep_pruned
    (if r.mc_stats.Explore.complete then "" else " [INCOMPLETE: budget hit]")
    r.mc_wall_s;
  match r.mc_violation with
  | None -> ()
  | Some v ->
    Printf.printf "VIOLATION  %s\n" v.Explore.message;
    Printf.printf "  minimized schedule (%d step(s)):\n" (List.length v.Explore.schedule);
    List.iter
      (fun (a : Explore.action) -> Printf.printf "    p%d %s\n" a.Explore.pid a.Explore.label)
      v.Explore.schedule

let mc_run_json r =
  let base =
    [
      ("label", Jsonu.Str r.mc_label);
      ("schedules", Jsonu.Int r.mc_stats.Explore.schedules);
      ("transitions", Jsonu.Int r.mc_stats.Explore.transitions);
      ("max_depth", Jsonu.Int r.mc_stats.Explore.max_depth);
      ("sleep_pruned", Jsonu.Int r.mc_stats.Explore.sleep_pruned);
      ("complete", Jsonu.Bool r.mc_stats.Explore.complete);
      ("wall_s", Jsonu.Num r.mc_wall_s);
    ]
  in
  match r.mc_fixture with
  | None -> Jsonu.Obj base
  | Some fx ->
    Jsonu.Obj (base @ [ ("counterexample", Explore.fixture_to_json fx) ])

let mc_fixture_file (fx : Explore.fixture) =
  let sane s = String.map (fun c -> if c = '-' then '_' else c) s in
  match fx.Explore.fx_mutation with
  | Some m -> Printf.sprintf "modelcheck_%s_%s.cex.json" (sane fx.Explore.fx_model) (sane m)
  | None -> Printf.sprintf "modelcheck_%s.cex.json" (sane fx.Explore.fx_model)

(* Replay a committed counterexample fixture: exit 1 when the recorded
   violation reproduces (the fixture still convicts), 0 when the
   schedule now runs clean (the bug is gone — delete the fixture), 2
   when the fixture is unreadable or no longer replayable. *)
let mc_replay file =
  match read_text file with
  | exception Sys_error e ->
    Printf.eprintf "modelcheck: %s\n" e;
    2
  | source -> (
    match Explore.audit_fixture source with
    | Error e ->
      Printf.eprintf "modelcheck: %s: %s\n" file e;
      2
    | Ok fx -> (
      match Mcheck.Worlds.world_of_fixture fx with
      | Error e ->
        Printf.eprintf "modelcheck: %s: orphaned fixture: %s\n" file e;
        2
      | Ok w -> (
        let keys = List.map (fun (pid, tag, _) -> (pid, tag)) fx.Explore.fx_schedule in
        match Explore.replay w keys with
        | Error e ->
          Printf.eprintf "modelcheck: %s: %s\n" file e;
          2
        | Ok None ->
          Printf.printf
            "%s: schedule replays clean — the recorded violation is gone\n"
            file;
          0
        | Ok (Some v) ->
          Printf.printf "%s: violation reproduced in %d step(s): %s\n" file
            (List.length v.Explore.schedule) v.Explore.message;
          1)))

let modelcheck model procs seed seeds t0 crashes rounds step_budget clients
    names acquires ticks mutation no_sleep quick max_transitions out replay
    json =
  match replay with
  | Some file -> mc_replay file
  | None -> (
    let sleep = not no_sleep in
    let renaming_cfg ?(rounds = rounds) ~seed () =
      {
        Explore.algo = "rebatching";
        procs;
        seed;
        t0;
        crashes;
        rounds;
        step_budget;
        mutation;
      }
    in
    let lease_cfg =
      { Service.Lease_model.clients; names; acquires; ticks; mutation }
    in
    let renaming_runs ~model ~procs ~rounds ~nseeds =
      List.init nseeds (fun i ->
          let cfg = { (renaming_cfg ~seed:(seed + i) ()) with procs; rounds } in
          fun () ->
            match Explore.renaming_world cfg with
            | Error e -> Error e
            | Ok w ->
              Ok
                (mc_run
                   ~label:
                     (Printf.sprintf "%s n=%d seed=%d rounds=%d crashes<=%d"
                        model procs cfg.Explore.seed rounds crashes)
                   ~sleep ~max_transitions w
                   (Explore.renaming_fixture cfg)))
    in
    let lease_runs =
      [
        (fun () ->
          match Mcheck.Worlds.lease_world lease_cfg with
          | w ->
            Ok
              (mc_run
                 ~label:
                   (Printf.sprintf "lease clients=%d names=%d acquires=%d ticks=%d"
                      clients names acquires ticks)
                 ~sleep ~max_transitions w
                 (Mcheck.Worlds.lease_fixture lease_cfg))
          | exception Invalid_argument e -> Error e);
      ]
    in
    let jobs =
      match model with
      | None ->
        (* the default battery: the acceptance configuration (ReBatching
           n=3 with crash points) swept over seeds, a long-lived
           configuration with the linearizability check, and the lease
           protocol model — what the CI smoke job runs *)
        let n3 = if quick then 5 else max 1 seeds in
        let ll = if quick then 2 else 5 in
        renaming_runs ~model:"rebatching" ~procs:3 ~rounds:1 ~nseeds:n3
        @ renaming_runs ~model:"longlived" ~procs:2 ~rounds:2 ~nseeds:ll
        @ lease_runs
      | Some "rebatching" ->
        renaming_runs ~model:"rebatching" ~procs ~rounds:1
          ~nseeds:(max 1 seeds)
      | Some "longlived" ->
        renaming_runs ~model:"longlived" ~procs ~rounds:(max 2 rounds)
          ~nseeds:(max 1 seeds)
      | Some "lease" -> lease_runs
      | Some m ->
        [
          (fun () ->
            Error
              (Printf.sprintf "unknown model %S; one of: %s" m
                 (String.concat ", " Mcheck.Worlds.models)));
        ]
    in
    let wall0 = Unix.gettimeofday () in
    let runs = ref [] in
    let errors = ref [] in
    List.iter
      (fun job ->
        (* keep exploring after a violation: the battery reports every
           config's verdict, and exit codes summarize at the end *)
        match job () with
        | Ok r ->
          if not json then mc_print_run r;
          runs := r :: !runs
        | Error e ->
          Printf.eprintf "modelcheck: %s\n" e;
          errors := e :: !errors)
      jobs;
    let runs = List.rev !runs in
    let wall = Unix.gettimeofday () -. wall0 in
    let violations =
      List.filter (fun r -> r.mc_violation <> None) runs |> List.length
    in
    let incomplete =
      List.exists (fun r -> not r.mc_stats.Explore.complete) runs
    in
    let total_schedules =
      List.fold_left (fun acc r -> acc + r.mc_stats.Explore.schedules) 0 runs
    in
    (match out with
    | None -> ()
    | Some dir ->
      List.iter
        (fun r ->
          match r.mc_fixture with
          | None -> ()
          | Some fx ->
            let file = Filename.concat dir (mc_fixture_file fx) in
            save_text ~file (Explore.fixture_to_string fx);
            Printf.printf "counterexample written to %s\n" file)
        runs);
    if json then
      print_string
        (Jsonu.to_string
           (Jsonu.Obj
              [
                ("schema", Jsonu.Str "modelcheck/1");
                ("runs", Jsonu.Arr (List.map mc_run_json runs));
                ("violations", Jsonu.Int violations);
                ("schedules", Jsonu.Int total_schedules);
                ("complete", Jsonu.Bool (not incomplete));
                ("wall_s", Jsonu.Num wall);
              ])
           ^ "\n")
    else
      Printf.printf
        "modelcheck: %d run(s), %d schedule(s) explored, %d violation(s), %.2fs\n"
        (List.length runs) total_schedules violations wall;
    if !errors <> [] then 2
    else if violations > 0 then 1
    else if incomplete then 2
    else 0)

open Cmdliner

(* Shared exit-code convention for the analysis/audit commands; also
   what doctor, simulate and verify follow. *)
let finding_exits =
  [
    Cmd.Exit.info 0 ~doc:"the tree (or run, or store) is clean.";
    Cmd.Exit.info 1 ~doc:"findings were reported (violations, races, problems).";
    Cmd.Exit.info 2 ~doc:"usage, parse or internal error.";
  ]

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base random seed.")

let trials_t =
  Arg.(
    value & opt int 5
    & info [ "trials" ] ~docv:"N" ~doc:"Repetitions per measured point.")

let scale_t =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"X"
        ~doc:"Multiplier on default problem sizes (0.25 for a quick pass).")

let csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR" ~doc:"Also write every table as CSV into $(docv).")

let substrate_conv =
  let parse s =
    match Harness.Substrate.of_string s with
    | Some sub -> Ok sub
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown substrate %S; one of: %s" s
             (String.concat ", "
                (List.map Harness.Substrate.to_string Harness.Substrate.all))))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Harness.Substrate.to_string s))

let substrate_t ~default =
  Arg.(
    value
    & opt substrate_conv default
    & info [ "substrate" ] ~docv:"SUB"
        ~doc:
          "Execution substrate: $(b,fast) (zero-allocation state-machine \
           core), $(b,effects) (reference effect scheduler) or $(b,atomic) \
           (real atomics, sequential).  Substrates are result-equivalent \
           on the schedules they share, so this only changes speed; \
           adversarial/crash/event experiments always use the effects \
           path regardless.")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel engine (requires $(b,--out); \
           default: recommended domain count).  Any value of $(docv) \
           produces identical trial records — seeds are derived per job, \
           not per worker.")

let out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:
          "Run through the parallel engine and store one JSONL record per \
           trial in $(docv)/<id>.jsonl, plus $(docv)/manifest.json.")

let resume_t =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Skip jobs whose records already exist in the $(b,--out) store \
           (crash-safe restart; no duplicate records).  The stored \
           manifest.json is validated against this invocation's seed, \
           trials, scale and experiment set first; a mismatch is an \
           error.  Quarantined jobs re-schedule with whatever retry \
           budget they have left.")

let retries_t =
  Arg.(
    value & opt int 1
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Re-attempts after a job's first failure (requires $(b,--out)).  \
           Each failed attempt is quarantined in \
           $(b,<out>/<id>.failures.jsonl); a job failing $(docv)+1 times \
           is given up on without aborting the run.  Retry seeds fold the \
           attempt index into the seed tree, so retries are reproducible \
           at any $(b,--jobs) value.")

let job_timeout_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "job-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Fail any job attempt that runs longer than $(docv) seconds \
           (requires $(b,--out)).  A stuck attempt is abandoned by the \
           watchdog shortly after the deadline and quarantined; the rest \
           of the run continues.")

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-4s %s\n     claim: %s\n" e.Harness.Experiment.id
          e.Harness.Experiment.title e.Harness.Experiment.claim)
      Harness.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run selected experiments by id (t1..t10, f1, f2)." in
  let ids_t =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_experiments $ ids_t $ seed_t $ trials_t $ scale_t
      $ substrate_t ~default:Harness.Substrate.Fast
      $ csv_t $ jobs_t $ out_t $ resume_t $ retries_t $ job_timeout_t)

let all_cmd =
  let doc = "Run every experiment in order." in
  let run seed trials scale substrate csv jobs out resume retries job_timeout =
    run_experiments (Harness.Registry.ids ()) seed trials scale substrate csv
      jobs out resume retries job_timeout
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ seed_t $ trials_t $ scale_t
      $ substrate_t ~default:Harness.Substrate.Fast
      $ csv_t $ jobs_t $ out_t $ resume_t $ retries_t $ job_timeout_t)

let doctor_cmd =
  let doc =
    "Audit a result store: truncated tails, malformed lines, duplicate \
     keys, seed-tree mismatches, and quarantine contents."
  in
  let dir_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"The $(b,--out) directory to audit.")
  in
  Cmd.v (Cmd.info "doctor" ~doc ~exits:finding_exits) Term.(const doctor $ dir_t)

let lint_cmd =
  let doc =
    "Lint the source tree for determinism hazards (AST-level, \
     compiler-libs parser)."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every .ml file with the compiler's own parser and flags \
         identifier uses that break reproducibility: Stdlib.Random outside \
         lib/prng, wall-clock reads outside the timing layers, raw \
         Domain.spawn outside the runner/pool, Hashtbl iteration in \
         result-producing code, polymorphic compare in lib/stats, and \
         stray stdout prints.  One structural rule, atomic-get-set, flags \
         an Atomic.get followed by Atomic.set of the same atomic inside \
         one function in the concurrent layers (lib/service, lib/shm) — \
         a lost-update window.  Silence a justified use with a \
         `repro-lint: allow <rule-id>' comment on the flagged line or the \
         line above.";
    ]
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit a versioned JSON report: {\"schema\":\"repro-lint/1\", \
             \"findings\":[...]}.")
  in
  let root_t =
    Arg.(
      value & opt string "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Repository root; stripped from paths so rule scopes (lib/prng, \
             bin, ...) match.")
  in
  let paths_t =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint (default: bin lib examples bench \
             test under $(b,--root)).")
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man ~exits:finding_exits)
    Term.(const lint $ json_t $ root_t $ paths_t)

let racecheck_cmd =
  let doc =
    "Certify multicore runner executions data-race free with a \
     vector-clock happens-before monitor."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the real Shm.Domain_runner with its instrumentation hooks \
         wired into a happens-before monitor: spawn/join/latch edges join \
         vector clocks, every TAS/release executes inside the monitor's \
         critical section, and the result arrays' plain accesses are \
         checked for unordered conflicts.  A clean exit certifies the \
         witnessed executions race-free; races print with both access \
         sites.  $(b,--racy) instead runs a deliberately racy two-domain \
         demo that must exit 1.";
    ]
  in
  let algo_t =
    Arg.(
      value & opt string "rebatching"
      & info [ "algo" ] ~docv:"NAME"
          ~doc:"Algorithm: rebatching, adaptive or fast.")
  in
  let procs_t =
    Arg.(value & opt int 64 & info [ "procs" ] ~docv:"N" ~doc:"Process count.")
  in
  let domains_t =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"D" ~doc:"Worker domains to race.")
  in
  let runs_t =
    Arg.(
      value & opt int 1
      & info [ "runs" ] ~docv:"R"
          ~doc:"Independent executions to certify (seeds SEED..SEED+R-1).")
  in
  let racy_t =
    Arg.(
      value & flag
      & info [ "racy" ]
          ~doc:
            "Run the deliberately racy demo instead: two unsynchronized \
             domains write one plain location; exits 1 with the race \
             report.")
  in
  Cmd.v
    (Cmd.info "racecheck" ~doc ~man ~exits:finding_exits)
    Term.(
      const racecheck $ algo_t $ procs_t $ domains_t $ seed_t $ runs_t $ racy_t)

let modelcheck_cmd =
  let doc =
    "Exhaustively model-check the renaming and lease protocols over all \
     interleavings of small configurations."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Drives the Fast_algo state machines step-granularly through \
         Sim.Fast_core (and a pure model of Service.Lease) under a \
         snapshot/restore DFS pruned with sleep sets, enumerating every \
         schedule — crash points included — of configurations up to ~4 \
         processes.  Checked at every transition and terminal state: name \
         uniqueness, the $(b,(1+eps)n) namespace bound, lock-freedom, \
         completion, linearizability of long-lived acquire/release \
         histories (Wing-Gong), and the lease-protocol safety battery \
         (epoch monotonicity, stale-release rejection, zombie isolation, \
         dead-token hygiene).";
      `P
        "With no $(b,--model), runs the default battery: a seed sweep of \
         one-shot ReBatching at n=3 with crash points, a long-lived \
         2-process configuration, and the lease model.  $(b,--mutation) \
         seeds a known bug to convict; violations are minimized and, with \
         $(b,--out), written as canonical replayable fixtures that \
         $(b,--replay) re-convicts and $(b,doctor) audits.";
      `P
        "Exit 1 under $(b,--replay) means the fixture still reproduces \
         its recorded violation (the expected state for a committed \
         regression fixture); 0 means the schedule now replays clean.";
    ]
  in
  let model_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Check one model only: $(b,rebatching), $(b,longlived) or \
             $(b,lease).  Default: the whole battery.")
  in
  let procs_t =
    Arg.(
      value & opt int 3
      & info [ "procs" ] ~docv:"N" ~doc:"Processes (renaming models; 1-6).")
  in
  let seeds_t =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"K"
          ~doc:"Sweep coin seeds SEED..SEED+K-1 (renaming models).")
  in
  let t0_t =
    Arg.(
      value & opt int 3
      & info [ "t0" ] ~docv:"T" ~doc:"ReBatching test-and-set batch size t(0).")
  in
  let crashes_t =
    Arg.(
      value & opt int 1
      & info [ "crashes" ] ~docv:"C"
          ~doc:
            "Crash-point budget: total crashes (before-op and after-win \
             leaks) injected across each schedule.")
  in
  let rounds_t =
    Arg.(
      value & opt int 2
      & info [ "rounds" ] ~docv:"R"
          ~doc:"Acquire/release rounds per process (longlived model).")
  in
  let step_budget_t =
    Arg.(
      value & opt int 64
      & info [ "step-budget" ] ~docv:"S"
          ~doc:"Per-process per-round step bound enforcing lock-freedom.")
  in
  let clients_t =
    Arg.(
      value & opt int 2
      & info [ "clients" ] ~docv:"N" ~doc:"Client processes (lease model).")
  in
  let names_t =
    Arg.(
      value & opt int 1
      & info [ "names" ] ~docv:"M" ~doc:"Name-space size (lease model).")
  in
  let acquires_t =
    Arg.(
      value & opt int 2
      & info [ "acquires" ] ~docv:"A"
          ~doc:"Acquire budget per client (lease model).")
  in
  let ticks_t =
    Arg.(
      value & opt int 2
      & info [ "ticks" ] ~docv:"T" ~doc:"Clock-advance budget (lease model).")
  in
  let mutation_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutation" ] ~docv:"BUG"
          ~doc:
            "Seed a known bug and demand a conviction.  Renaming: \
             $(b,claim-on-lose), $(b,probe-out-of-range), $(b,spin).  \
             Lease: $(b,stale-release), $(b,restore-expired).")
  in
  let no_sleep_t =
    Arg.(
      value & flag
      & info [ "no-sleep" ]
          ~doc:
            "Disable sleep-set pruning (full DFS) — slower, for \
             cross-checking the reduction.")
  in
  let quick_t =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Smaller default battery for pre-PR checks (~seconds).")
  in
  let max_transitions_t =
    Arg.(
      value & opt int 50_000_000
      & info [ "max-transitions" ] ~docv:"N"
          ~doc:
            "Transition budget per configuration; hitting it marks the \
             run INCOMPLETE and exits 2.")
  in
  let mc_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write minimized counterexample fixtures into $(docv).")
  in
  let replay_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a counterexample fixture instead of exploring: exit 1 \
             if the recorded violation reproduces, 0 if the schedule now \
             runs clean, 2 if the fixture is malformed or orphaned.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable report on stdout.")
  in
  Cmd.v
    (Cmd.info "modelcheck" ~doc ~man ~exits:finding_exits)
    Term.(
      const modelcheck $ model_t $ procs_t $ seed_t $ seeds_t $ t0_t
      $ crashes_t $ rounds_t $ step_budget_t $ clients_t $ names_t
      $ acquires_t $ ticks_t $ mutation_t $ no_sleep_t $ quick_t
      $ max_transitions_t $ mc_out_t $ replay_t $ json_t)

let chaos_cmd =
  let doc =
    "Deterministic crash/delay fault injection on the real multicore \
     substrate."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Derives a fault plan — pure data — from (seed, procs, domains): \
         which logical processes fail-stop, at which of their own TAS \
         operations, and on which side (before the operation, or after a \
         win but before the name is recorded, leaking the slot); plus \
         bounded delays that widen the explored interleavings.  The plan \
         executes through the runner's instrumentation hooks, an \
         invariant monitor checks survivor progress, survivor \
         uniqueness, the namespace bound and leaked-slot accounting, and \
         plans record to JSON so a failing run replays as a committed \
         regression fixture.";
      `P
        "Exit codes follow the audit convention: 0 all invariants held, \
         1 a violation (or data race, under --certify) was found, 2 \
         usage or internal error.";
    ]
  in
  let algo_t =
    Arg.(
      value & opt string "rebatching"
      & info [ "algo" ] ~docv:"NAME"
          ~doc:"Algorithm: rebatching, adaptive or fast.")
  in
  let procs_t =
    Arg.(value & opt int 64 & info [ "procs" ] ~docv:"N" ~doc:"Process count.")
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains (default: the runner's host cap; 1 makes the \
             fired faults and the verdict exactly reproducible).")
  in
  let crash_frac_t =
    Arg.(
      value & opt float 0.25
      & info [ "crash-frac" ] ~docv:"F"
          ~doc:"Fraction of processes armed with a fail-stop.")
  in
  let pause_frac_t =
    Arg.(
      value & opt float 0.25
      & info [ "pause-frac" ] ~docv:"F"
          ~doc:"Fraction of processes armed with a bounded delay.")
  in
  let name_bound_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "name-bound" ] ~docv:"B"
          ~doc:
            "Namespace invariant: every assigned name must be < $(docv) \
             (default: the algorithm's capacity).")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Record chaos_plan_<seed>.json and chaos_verdict_<seed>.json \
             into $(docv) (soak records only violating runs; repro_cli \
             doctor audits them).")
  in
  let certify_t =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Also run the happens-before monitor over the same execution; \
             a data race fails the run.")
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the verdict (or soak summary) as JSON.")
  in
  let run_cmd =
    let doc = "Derive a plan from the seed and execute it once." in
    Cmd.v (Cmd.info "run" ~doc ~exits:finding_exits)
      Term.(
        const chaos_run $ algo_t $ procs_t $ domains_t $ seed_t $ crash_frac_t
        $ pause_frac_t $ name_bound_t $ out_t $ certify_t $ json_t)
  in
  let soak_cmd =
    let doc =
      "Run many seeded plans (seeds SEED..SEED+RUNS-1), cycling through \
       the crash fractions; violating runs are recorded as fixtures."
    in
    let runs_t =
      Arg.(
        value & opt int 100
        & info [ "runs" ] ~docv:"R" ~doc:"Independent runs to execute.")
    in
    let fracs_t =
      Arg.(
        value
        & opt (list float) [ 0.1; 0.5; 0.9 ]
        & info [ "crash-fracs" ] ~docv:"F1,F2,.."
            ~doc:"Crash fractions the runs cycle through.")
    in
    Cmd.v (Cmd.info "soak" ~doc ~exits:finding_exits)
      Term.(
        const chaos_soak $ algo_t $ procs_t $ domains_t $ seed_t $ runs_t
        $ fracs_t $ pause_frac_t $ out_t $ certify_t $ json_t)
  in
  let replay_cmd =
    let doc =
      "Re-execute a recorded plan file exactly (regression fixtures)."
    in
    let file_t =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"PLAN.json" ~doc:"A chaos_plan_<seed>.json file.")
    in
    Cmd.v (Cmd.info "replay" ~doc ~exits:finding_exits)
      Term.(const chaos_replay $ file_t $ out_t $ certify_t $ json_t)
  in
  let service_cmd =
    let doc =
      "Kill/restart soak of the real renamed daemon: SIGKILL + --recover \
       cycles under open-loop load through the wire-fault proxy."
    in
    let man =
      [
        `S Manpage.s_description;
        `P
          "Boots renamed with a crash journal, drives Load_gen at it \
           (through a seeded socket fault proxy injecting partial writes, \
           stalls and resets, unless $(b,--wire-faults)=false), and \
           SIGKILLs + restarts it with $(b,--recover) every \
           duration/(cycles+1) seconds.  While the daemon is dead, each \
           journal segment is scanned and replayed; duplicate grants are \
           summed across compactions and must be zero.  After the load \
           drains, one lease TTL later the server must hold zero slots — \
           every name abandoned to a killed connection must have been \
           reclaimed by expiry.  Recovery time (SIGKILL to accepting \
           again) is reported as p50/p99/max.";
        `P
          "The outcome is recorded as the next free BENCH_SERVICE_<k>.json \
           with kind bench-service-recovery; bench/BENCH_SERVICE_1.json is \
           the committed baseline CI gates against with $(b,--check).";
      ]
    in
    let cycles_t =
      Arg.(
        value & opt int 10
        & info [ "cycles" ] ~docv:"N" ~doc:"SIGKILL + --recover rounds.")
    in
    let rate_t =
      Arg.(
        value & opt float 300.
        & info [ "rate" ] ~docv:"OPS" ~doc:"Acquire arrivals per second.")
    in
    let duration_t =
      Arg.(
        value & opt float 30.
        & info [ "duration" ] ~docv:"SECONDS"
            ~doc:"Total load window across all cycles.")
    in
    let conns_t =
      Arg.(
        value & opt int 4
        & info [ "conns" ] ~docv:"N" ~doc:"Load-generator connections.")
    in
    let clients_t =
      Arg.(
        value & opt int 64
        & info [ "clients" ] ~docv:"N" ~doc:"Client-id space.")
    in
    let shards_t =
      Arg.(
        value & opt int 2
        & info [ "shards" ] ~docv:"N" ~doc:"Daemon worker shards.")
    in
    let capacity_t =
      Arg.(
        value & opt int 1024
        & info [ "capacity" ] ~docv:"N" ~doc:"Daemon per-shard capacity.")
    in
    let lease_ttl_t =
      Arg.(
        value & opt float 2.
        & info [ "lease-ttl" ] ~docv:"SECONDS" ~doc:"Daemon lease TTL.")
    in
    let wire_faults_t =
      Arg.(
        value & opt bool true
        & info [ "wire-faults" ] ~docv:"BOOL"
            ~doc:"Route load through the seeded socket fault proxy.")
    in
    let daemon_t =
      Arg.(
        value
        & opt (some string) None
        & info [ "daemon" ] ~docv:"PATH"
            ~doc:
              "renamed binary to soak (default: renamed.exe next to this \
               executable).")
    in
    let keep_t =
      Arg.(
        value & flag
        & info [ "keep" ]
            ~doc:"Keep the scratch directory (sockets, journal) for autopsy.")
    in
    let sout_t =
      Arg.(
        value & opt string "bench"
        & info [ "out" ] ~docv:"DIR"
            ~doc:"Directory for BENCH_SERVICE_<k>.json files.")
    in
    let check_t =
      Arg.(
        value
        & opt (some string) None
        & info [ "check" ] ~docv:"FILE"
            ~doc:
              "Baseline bench-service-recovery JSON to gate against; \
               regressions exit 1.")
    in
    let threshold_t =
      Arg.(
        value & opt float 0.5
        & info [ "threshold" ] ~docv:"T"
            ~doc:
              "Relative tolerance for the throughput and recovery-p99 \
               gates of $(b,--check).")
    in
    Cmd.v (Cmd.info "service" ~doc ~man ~exits:finding_exits)
      Term.(
        const chaos_service $ json_t $ cycles_t $ rate_t $ duration_t
        $ conns_t $ clients_t $ shards_t $ capacity_t $ lease_ttl_t $ seed_t
        $ wire_faults_t $ daemon_t $ keep_t $ sout_t $ check_t $ threshold_t)
  in
  let overload_cmd =
    let doc =
      "Overload soak of the real renamed daemon: measure its capacity, \
       then drive several times that and check for graceful degradation."
    in
    let man =
      [
        `S Manpage.s_description;
        `P
          "Boots renamed with a bounded admission queue, measures its \
           service capacity (calibration doubles the offered rate from \
           $(b,--calibrate-rate) until the daemon-side goodput — the \
           daemon's own served counter sampled at the window edges — \
           falls short of it; the saturated run's goodput is the \
           capacity, generator and daemon bottlenecks included), then \
           soaks it at $(b,--overdrive) times that rate with \
           per-request deadlines.  \
           Survival means goodput stays within 20% of capacity (no \
           congestion collapse), the excess is refused (busy, with a \
           retry-after hint) or shed at deadline expiry rather than \
           queued without bound, accepted-request latency stays bounded, \
           daemon RSS stays flat, and the drain still conserves every \
           slot.";
        `P
          "The outcome is recorded as the next free BENCH_SERVICE_<k>.json \
           with kind bench-service-overload; bench/BENCH_SERVICE_2.json is \
           the committed baseline CI gates against with $(b,--check).";
      ]
    in
    let overdrive_t =
      Arg.(
        value & opt float 5.
        & info [ "overdrive" ] ~docv:"X"
            ~doc:"Soak rate as a multiple of measured capacity.")
    in
    let calibrate_rate_t =
      Arg.(
        value & opt float 40000.
        & info [ "calibrate-rate" ] ~docv:"OPS"
            ~doc:
              "Offered rate of the calibration run; set well above the \
               daemon's expected capacity.")
    in
    let calibrate_duration_t =
      Arg.(
        value & opt float 3.
        & info [ "calibrate-duration" ] ~docv:"SECONDS"
            ~doc:"Calibration load window.")
    in
    let duration_t =
      Arg.(
        value & opt float 10.
        & info [ "duration" ] ~docv:"SECONDS" ~doc:"Soak load window.")
    in
    let conns_t =
      Arg.(
        value & opt int 4
        & info [ "conns" ] ~docv:"N" ~doc:"Load-generator connections.")
    in
    let clients_t =
      Arg.(
        value & opt int 64
        & info [ "clients" ] ~docv:"N" ~doc:"Client-id space.")
    in
    let shards_t =
      Arg.(
        value & opt int 2
        & info [ "shards" ] ~docv:"N" ~doc:"Daemon worker shards.")
    in
    let capacity_t =
      Arg.(
        value & opt int 4096
        & info [ "capacity" ] ~docv:"N" ~doc:"Daemon per-shard capacity.")
    in
    let max_queue_t =
      Arg.(
        value & opt int 512
        & info [ "max-queue" ] ~docv:"N"
            ~doc:"Daemon per-shard admission bound.")
    in
    let deadline_t =
      Arg.(
        value & opt int 250
        & info [ "deadline" ] ~docv:"MS"
            ~doc:
              "Per-request budget stamped by the generator (0 = none); \
               the daemon sheds work whose budget is spent.")
    in
    let drain_timeout_t =
      Arg.(
        value & opt float 10.
        & info [ "drain-timeout" ] ~docv:"SECONDS"
            ~doc:"How long the final drain may run before being cut short.")
    in
    let daemon_t =
      Arg.(
        value
        & opt (some string) None
        & info [ "daemon" ] ~docv:"PATH"
            ~doc:
              "renamed binary to soak (default: renamed.exe next to this \
               executable).")
    in
    let keep_t =
      Arg.(
        value & flag
        & info [ "keep" ] ~doc:"Keep the scratch directory for autopsy.")
    in
    let sout_t =
      Arg.(
        value & opt string "bench"
        & info [ "out" ] ~docv:"DIR"
            ~doc:"Directory for BENCH_SERVICE_<k>.json files.")
    in
    let check_t =
      Arg.(
        value
        & opt (some string) None
        & info [ "check" ] ~docv:"FILE"
            ~doc:
              "Baseline bench-service-overload JSON to gate against; \
               regressions exit 1.")
    in
    let threshold_t =
      Arg.(
        value & opt float 0.5
        & info [ "threshold" ] ~docv:"T"
            ~doc:
              "Relative tolerance for the goodput and p99 gates of \
               $(b,--check).")
    in
    Cmd.v (Cmd.info "overload" ~doc ~man ~exits:finding_exits)
      Term.(
        const chaos_overload $ json_t $ overdrive_t $ calibrate_rate_t
        $ calibrate_duration_t $ duration_t $ conns_t $ clients_t $ shards_t
        $ capacity_t $ max_queue_t $ deadline_t $ drain_timeout_t $ seed_t
        $ daemon_t $ keep_t $ sout_t $ check_t $ threshold_t)
  in
  Cmd.group
    (Cmd.info "chaos" ~doc ~man ~exits:finding_exits)
    [ run_cmd; soak_cmd; replay_cmd; service_cmd; overload_cmd ]

let simulate_cmd =
  let doc = "Run one simulation with explicit parameters and print details." in
  let algo_t =
    Arg.(
      value & opt string "rebatching"
      & info [ "algo" ] ~docv:"NAME"
          ~doc:
            "Algorithm: rebatching, rebatching-paper, adaptive, fast, \
             uniform, scan, cyclic, doubling.")
  in
  let n_t =
    Arg.(value & opt int 256 & info [ "procs" ] ~docv:"N" ~doc:"Process count.")
  in
  let adversary_t =
    Arg.(
      value & opt string "random"
      & info [ "adversary" ] ~docv:"NAME"
          ~doc:"random, round-robin, layered, greedy or sequential.")
  in
  let crash_t =
    Arg.(
      value & opt float 0.
      & info [ "crash-fraction" ] ~docv:"F" ~doc:"Crash up to this fraction.")
  in
  let stagger_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "stagger" ] ~docv:"I" ~doc:"Stagger arrivals by $(docv) steps.")
  in
  let histogram_t =
    Arg.(value & flag & info [ "histogram" ] ~doc:"Print the step histogram.")
  in
  Cmd.v (Cmd.info "simulate" ~doc ~exits:finding_exits)
    Term.(
      const simulate $ algo_t $ n_t $ seed_t $ adversary_t $ crash_t $ stagger_t
      $ substrate_t ~default:Harness.Substrate.Effects
      $ histogram_t)

let verify_cmd =
  let doc =
    "Run the safety battery: every algorithm under every (validated) \
     adversary across sizes and seeds, with the event-stream spec checker \
     attached."
  in
  let rounds_t =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N" ~doc:"Seeds per cell.")
  in
  Cmd.v (Cmd.info "verify" ~doc ~exits:finding_exits)
    Term.(const verify $ seed_t $ rounds_t)

(* Informational chatter goes to stderr so `--json` leaves stdout a
   single parseable document. *)
let bench_kernel_suite json seed scale out check threshold =
  let suite = Bench_kernels.run_suite ~seed ~scale in
  if json then
    print_endline (Jsonu.to_string (Bench_kernels.to_json suite))
  else print_endline (Bench_kernels.render suite);
  let path = Bench_kernels.save ~dir:out suite in
  Printf.eprintf "[bench] wrote %s\n%!" path;
  match check with
  | None -> 0
  | Some file ->
    (match Bench_kernels.load file with
    | exception Sys_error msg ->
      Printf.eprintf "[bench] cannot read baseline: %s\n%!" msg;
      2
    | exception Jsonu.Malformed ->
      Printf.eprintf "[bench] baseline %s is not a bench JSON document%s\n%!"
        file
        (if Engine.Sweep.load file <> None then
           " (it is a bench-large sweep; use --large)"
         else "");
      2
    | baseline -> (
      match Bench_kernels.check ~threshold ~baseline ~current:suite with
      | [] ->
        Printf.eprintf
          "[bench] regression check passed against %s (threshold %g)\n%!" file
          threshold;
        0
      | findings ->
        List.iter (Printf.eprintf "[bench] FAIL: %s\n%!") findings;
        1))

(* The large-n decade sweep: t1/t5 shapes on the streaming fast core, fanned
   across domains by Engine.Sweep with checkpoint/resume, aggregated into a
   kind="bench-large" BENCH_<k>.json. *)
let bench_large json seed trials out check threshold jobs store resume max_n
    max_k =
  if max_n < Harness.Exp_large.grid_lo || max_k < Harness.Exp_large.grid_lo
  then begin
    Printf.eprintf "[bench] --max-n and --max-k must be at least %d\n%!"
      Harness.Exp_large.grid_lo;
    2
  end
  else begin
    let ctx scale =
      Harness.Experiment.default_ctx ~seed ~trials ~scale
        ~substrate:Harness.Substrate.Fast ()
    in
    (* scale maps --max-n/--max-k onto the experiments' full-grid tops, so
       the produced decades are a subset of the committed full-scale
       baseline and --check stays meaningful on smoke runs. *)
    let plans =
      [
        (Harness.Exp_large.t1l, ctx (float_of_int max_n /. 1e8));
        (Harness.Exp_large.t5l, ctx (float_of_int max_k /. 1e7));
      ]
    in
    install_signal_handlers ();
    let should_stop () = Atomic.get interrupt_requested in
    let run =
      try
        Engine.Sweep.execute ?workers:jobs ~resume ~should_stop
          ~store_dir:store ~plans ()
      with Failure msg ->
        Printf.eprintf "[bench] %s\n%!" msg;
        exit 2
    in
    if run.Engine.Sweep.interrupted then begin
      Printf.eprintf
        "[bench] interrupted; store finalized, resume with:\n\
        \  repro_cli bench --large --seed %d --trials %d --max-n %d --max-k \
         %d --store %s --resume\n\
         %!"
        seed trials max_n max_k store;
      130
    end
    else if run.Engine.Sweep.quarantined > 0 then begin
      Printf.eprintf
        "[bench] %d job(s) quarantined; audit with `repro_cli doctor %s'\n%!"
        run.Engine.Sweep.quarantined store;
      1
    end
    else begin
      let art = Engine.Sweep.aggregate ~store_dir:store ~plans in
      if json then print_string (Engine.Sweep.to_json art)
      else print_endline (Engine.Sweep.render art);
      let path = Engine.Sweep.save ~dir:out art in
      Printf.eprintf "[bench] wrote %s\n%!" path;
      match check with
      | None -> 0
      | Some file -> (
        match Engine.Sweep.load file with
        | None ->
          Printf.eprintf
            "[bench] baseline %s is not a bench-large JSON document%s\n%!"
            file
            (match Bench_kernels.load file with
            | _ -> " (it is a kernel bench; drop --large)"
            | exception _ -> "");
          2
        | Some baseline -> (
          match Engine.Sweep.check ~threshold ~baseline ~current:art with
          | [] ->
            Printf.eprintf
              "[bench] regression check passed against %s (threshold %g)\n%!"
              file threshold;
            0
          | findings ->
            List.iter (Printf.eprintf "[bench] FAIL: %s\n%!") findings;
            1))
    end
  end

let bench json seed scale out check threshold large trials jobs store resume
    max_n max_k =
  if large then
    bench_large json seed trials out check threshold jobs store resume max_n
      max_k
  else bench_kernel_suite json seed scale out check threshold

let bench_cmd =
  let doc =
    "Time the fast-core and PRNG kernels (or, with --large, sweep three \
     more decades of n), record BENCH_<k>.json, and optionally fail on \
     regressions against a committed baseline."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs each kernel's hot loop under Gc.minor_words metering and \
         reports ns/op, words/op and the fast-vs-effects speedup per \
         algorithm pair.  Every invocation writes the next free \
         BENCH_<k>.json under $(b,--out); BENCH_0.json is the committed \
         baseline CI diffs against.  With $(b,--check), allocation counts \
         must stay within max(0.25, threshold x baseline) words/op of the \
         baseline, the allocation-free kernels must record ~0 words/op \
         outright, and each speedup must reach 5x or (1 - threshold) of \
         its baseline; absolute ns/op is reported but never checked, \
         since it only measures the host machine.";
      `P
        "$(b,--large) instead runs the t1l/t5l decade sweeps (step \
         complexity up to n = 10^8 and adaptive contention up to k = \
         10^7) on the streaming fast core: trial jobs fan out across \
         $(b,--jobs) worker domains into a crash-safe $(b,--store) \
         (resume with $(b,--resume)), and the aggregate becomes a \
         kind=bench-large BENCH_<k>.json — the committed BENCH_1.json \
         baseline.  $(b,--max-n)/$(b,--max-k) shrink the grids to a \
         decade subset of the full baseline, so a CI smoke run checks \
         against the same committed file.  The words/op gate is \
         absolute; steps and space check against the baseline; timing \
         is informational.";
    ]
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the suite as JSON instead of tables.")
  in
  let out_t =
    Arg.(
      value & opt string "bench"
      & info [ "out" ] ~docv:"DIR" ~doc:"Directory for BENCH_<k>.json files.")
  in
  let check_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:"Baseline BENCH_<k>.json to diff against; regressions exit 1.")
  in
  let threshold_t =
    Arg.(
      value & opt float 0.25
      & info [ "threshold" ] ~docv:"T"
          ~doc:"Relative regression tolerance for $(b,--check).")
  in
  let large_t =
    Arg.(
      value & flag
      & info [ "large" ]
          ~doc:
            "Run the large-n decade sweeps (t1l/t5l) through the parallel \
             engine instead of the kernel microbenches.")
  in
  let bench_trials_t =
    Arg.(
      value & opt int 3
      & info [ "trials" ] ~docv:"N"
          ~doc:
            "Trials per decade for $(b,--large) (attenuated \
             deterministically on the top decades).")
  in
  let store_t =
    Arg.(
      value & opt string "_bench_large"
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "JSONL trial store for $(b,--large) (crash-safe; resumable \
             with $(b,--resume)).")
  in
  let max_n_t =
    Arg.(
      value & opt int 100_000_000
      & info [ "max-n" ] ~docv:"N"
          ~doc:"Top decade of the t1l grid for $(b,--large).")
  in
  let max_k_t =
    Arg.(
      value & opt int 10_000_000
      & info [ "max-k" ] ~docv:"K"
          ~doc:"Top decade of the t5l contention grid for $(b,--large).")
  in
  Cmd.v (Cmd.info "bench" ~doc ~man ~exits:finding_exits)
    Term.(
      const bench $ json_t $ seed_t $ scale_t $ out_t $ check_t $ threshold_t
      $ large_t $ bench_trials_t $ jobs_t $ store_t $ resume_t $ max_n_t
      $ max_k_t)

(* ------------------------------------------------------------------ *)
(* load: open-loop Poisson load against a running renamed daemon *)

let load_daemon json socket mode conns clients rate duration hold_const
    hold_mean deadline drain_timeout seed out check threshold =
  (* A daemon crash mid-run must surface as reconnect accounting, not
     kill the generator with SIGPIPE on its next buffered write. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let hold =
    match hold_const with
    | Some s -> Service.Load_gen.Const s
    | None -> Service.Load_gen.Exponential hold_mean
  in
  let cfg =
    {
      (Service.Load_gen.default_config ~path:socket) with
      mode;
      conns;
      clients;
      rate;
      duration_s = duration;
      hold;
      seed;
      deadline_ms = deadline;
      drain_timeout_s = drain_timeout;
      log = (fun s -> Printf.eprintf "[load] %s\n%!" s);
    }
  in
  (* The artifact records the server's geometry; ask it. *)
  let geometry =
    match Service.Client.connect ~path:socket () with
    | Error e -> Error e
    | Ok c ->
      let g =
        match Service.Client.stats c with
        | Error e -> Error (Service.Client.failure_message e)
        | Ok j -> (
          match
            (Jsonu.int_ (Jsonu.obj j) "shards", Jsonu.int_ (Jsonu.obj j) "capacity")
          with
          | g -> Ok g
          | exception Jsonu.Malformed -> Error "stats reply missing geometry")
      in
      Service.Client.close c;
      g
  in
  match geometry with
  | Error e ->
    Printf.eprintf "[load] %s\n%!" e;
    2
  | Ok (shards, capacity) -> (
    match Service.Load_gen.run cfg with
    | Error e ->
      Printf.eprintf "[load] %s\n%!" e;
      2
    | Ok r ->
      let art = Service.Service_bench.of_run ~shards ~capacity ~cfg r in
      if json then
        print_endline (Jsonu.to_string (Service.Service_bench.to_json art))
      else print_endline (Service.Service_bench.render art);
      let path = Service.Service_bench.save ~dir:out art in
      Printf.eprintf "[load] wrote %s\n%!" path;
      let audit_exit = if Service.Load_gen.ok r then 0 else 1 in
      (match check with
      | None -> audit_exit
      | Some file -> (
        match Service.Service_bench.load file with
        | exception Sys_error msg ->
          Printf.eprintf "[load] cannot read baseline: %s\n%!" msg;
          2
        | exception Jsonu.Malformed ->
          Printf.eprintf
            "[load] baseline %s is not a bench-service JSON document\n%!" file;
          2
        | baseline -> (
          match
            Service.Service_bench.check ~threshold ~baseline ~current:art
          with
          | [] ->
            Printf.eprintf
              "[load] regression check passed against %s (threshold %g)\n%!"
              file threshold;
            audit_exit
          | findings ->
            List.iter (Printf.eprintf "[load] FAIL: %s\n%!") findings;
            1))))

let load_cmd =
  let doc =
    "Drive open-loop Poisson load at a running renamed daemon and record \
     a BENCH_SERVICE_<k>.json latency artifact."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Acquire arrivals follow a Poisson process at $(b,--rate); each \
         granted name is held for a sampled duration and released.  \
         Arrivals are posted on schedule whether or not earlier \
         operations completed (open loop), and acquire latency is \
         measured from the scheduled arrival, so queueing delay is \
         never hidden.  The run audits uniqueness (no name granted \
         twice while held) and slot conservation (server taken count \
         is zero after the final drain); audit failures exit 1.";
      `P
        "Every invocation writes the next free BENCH_SERVICE_<k>.json \
         under $(b,--out); BENCH_SERVICE_0.json is the committed \
         baseline CI diffs against with $(b,--check), which gates on \
         the audit invariants and on throughput relative to the \
         baseline — absolute latency is recorded but never gated.";
    ]
  in
  let json_t =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the artifact as JSON instead of a summary.")
  in
  let socket_t =
    Arg.(
      value
      & opt string "renamed.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's socket path.")
  in
  let mode_t =
    Arg.(
      value
      & opt
          (enum [ ("binary", Service.Wire.Binary); ("json", Service.Wire.Json) ])
          Service.Wire.Binary
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Wire mode: $(b,binary) (native) or $(b,json) (line-JSON).")
  in
  let conns_t =
    Arg.(
      value & opt int 4
      & info [ "conns" ] ~docv:"N" ~doc:"Connections to spread load over.")
  in
  let clients_t =
    Arg.(
      value & opt int 64
      & info [ "clients" ] ~docv:"N"
          ~doc:"Client-id space (the daemon's shard-routing keys).")
  in
  let rate_t =
    Arg.(
      value & opt float 1000.
      & info [ "rate" ] ~docv:"OPS"
          ~doc:"Target acquire arrivals per second (Poisson).")
  in
  let duration_t =
    Arg.(
      value & opt float 5.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Load window length.")
  in
  let hold_const_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "hold-const" ] ~docv:"SECONDS"
          ~doc:"Hold every name for exactly $(docv) (overrides --hold-mean).")
  in
  let hold_mean_t =
    Arg.(
      value & opt float 0.001
      & info [ "hold-mean" ] ~docv:"SECONDS"
          ~doc:"Mean of the exponential hold-time distribution.")
  in
  let deadline_t =
    Arg.(
      value & opt int 0
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Per-request budget stamped on each acquire (0 = none); the \
             daemon sheds rather than serves work whose budget is spent.")
  in
  let drain_timeout_t =
    Arg.(
      value & opt float 10.
      & info [ "drain-timeout" ] ~docv:"SECONDS"
          ~doc:
            "How long past the load window the final drain may run before \
             being cut short (reported in the artifact).")
  in
  let out_t =
    Arg.(
      value & opt string "bench"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for BENCH_SERVICE_<k>.json files.")
  in
  let check_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:
            "Baseline BENCH_SERVICE_<k>.json to diff against; regressions \
             exit 1.")
  in
  let threshold_t =
    Arg.(
      value & opt float 0.5
      & info [ "threshold" ] ~docv:"T"
          ~doc:"Relative throughput tolerance for $(b,--check).")
  in
  Cmd.v (Cmd.info "load" ~doc ~man ~exits:finding_exits)
    Term.(
      const load_daemon $ json_t $ socket_t $ mode_t $ conns_t $ clients_t
      $ rate_t $ duration_t $ hold_const_t $ hold_mean_t $ deadline_t
      $ drain_timeout_t $ seed_t $ out_t $ check_t $ threshold_t)

let report_cmd =
  let doc = "Run every experiment and write a self-contained markdown report." in
  let out_t =
    Arg.(
      value & opt string "report.md"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const report $ out_t $ seed_t $ trials_t $ scale_t
      $ substrate_t ~default:Harness.Substrate.Fast)

let main_cmd =
  let doc =
    "Reproduction harness for `Randomized loose renaming in O(log log n) \
     time' (PODC 2013)."
  in
  Cmd.group
    (Cmd.info "repro_cli" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; all_cmd; simulate_cmd; verify_cmd; bench_cmd;
      load_cmd; report_cmd; doctor_cmd; lint_cmd; racecheck_cmd;
      modelcheck_cmd; chaos_cmd ]

let () = exit (Cmd.eval' main_cmd)
