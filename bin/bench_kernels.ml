(* Microbenchmark kernels and regression rules behind `repro_cli bench`.

   Each kernel times a hot loop and meters its minor-heap traffic with
   [Gc.minor_words], reporting ns/op and words/op where an "op" is one
   simulated shared-memory step (simulation kernels) or one draw (PRNG
   kernels).  The headline pairs run the same algorithm on the fast and
   effects substrates so the suite records the speedup the
   zero-allocation core actually delivers on this machine; absolute
   ns/op is machine-dependent and therefore informational only, while
   words/op and speedup are the regression-checked quantities
   ([check]). *)

type kernel = {
  name : string;
  n : int;  (* problem size: process count, or draws per run for PRNG kernels *)
  runs : int;
  ops : int;
  ns_per_op : float;
  words_per_op : float;  (* minor words allocated per op *)
}

type speedup = { pair : string; speedup : float }

type suite = {
  seed : int;
  scale : float;
  kernels : kernel list;
  speedups : speedup list;
}

(* Wall-clock here is the measurement payload of a benchmark binary and
   never feeds experiment results.  repro-lint: allow wall-clock *)
let now () = Unix.gettimeofday ()

(* [f] executes one run and returns how many ops it performed.  One
   unmeasured warm run settles lazy setup (location-space growth, page
   faults) before the metered window opens. *)
let measure ~name ~n ~runs f =
  ignore (f () : int);
  Gc.full_major ();
  let ops = ref 0 in
  let w0 = Gc.minor_words () in
  let t0 = now () in
  for _ = 1 to runs do
    ops := !ops + f ()
  done;
  let t1 = now () in
  let w1 = Gc.minor_words () in
  let d = float_of_int (max 1 !ops) in
  {
    name;
    n;
    runs;
    ops = !ops;
    ns_per_op = (t1 -. t0) *. 1e9 /. d;
    words_per_op = (w1 -. w0) /. d;
  }

let scaled scale x = max 1 (int_of_float (float_of_int x *. scale))

(* One algorithm on both substrates, under the same uniformly random
   schedule.  The fast side reuses a preallocated handle (reset + run is
   the steady state the 0 words/op claim is about); the effects side is
   the ordinary one-shot runner, allocations and all, because that per-run
   setup is exactly the cost the fast core exists to avoid. *)
let substrate_pair ~label ~spec ~seed ~n ~fast_runs ~effects_runs =
  let core =
    Sim.Fast_core.create ~algo:(Harness.Substrate.fast_algo spec) ~n ()
  in
  let fseed = ref seed in
  let fast =
    measure ~name:(label ^ "/fast") ~n ~runs:fast_runs (fun () ->
        incr fseed;
        Sim.Fast_core.reset core ~seed:!fseed;
        Sim.Fast_core.run core;
        Sim.Fast_core.total_steps core)
  in
  let eseed = ref seed in
  let effects =
    measure ~name:(label ^ "/effects") ~n ~runs:effects_runs (fun () ->
        incr eseed;
        let r =
          Sim.Runner.run ~seed:!eseed ~n ~algo:(Harness.Substrate.closure spec)
            ()
        in
        r.Sim.Runner.total_steps)
  in
  (fast, effects)

let flat_int_kernel ~seed ~scale =
  let draws = scaled scale 5_000_000 in
  let bank = Prng.Flat.create 1 in
  measure ~name:"prng/flat-int" ~n:draws ~runs:3 (fun () ->
      Prng.Flat.reseed bank ~seed;
      let acc = ref 0 in
      for _ = 1 to draws do
        acc := !acc lxor Prng.Flat.int bank 0 12345
      done;
      draws + (!acc land 0))

let dist_geometric_kernel ~seed ~scale =
  let draws = scaled scale 1_000_000 in
  let rng = Prng.Splitmix.of_int seed in
  measure ~name:"prng/dist-geometric" ~n:draws ~runs:3 (fun () ->
      let acc = ref 0 in
      for _ = 1 to draws do
        acc := !acc + Prng.Dist.geometric_sample rng ~p:0.25
      done;
      draws + (!acc land 0))

let run_suite ~seed ~scale =
  let n_reb = scaled scale 100_000 in
  let reb_fast, reb_effects =
    substrate_pair ~label:"rebatching"
      ~spec:
        (Harness.Substrate.rebatching (Renaming.Rebatching.make ~t0:3 ~n:n_reb ()))
      ~seed ~n:n_reb ~fast_runs:8 ~effects_runs:2
  in
  let n_fa = scaled scale 16_384 in
  let fa_fast, fa_effects =
    substrate_pair ~label:"fast-adaptive"
      ~spec:(Harness.Substrate.fast_adaptive (Renaming.Object_space.create ~t0:3 ()))
      ~seed ~n:n_fa ~fast_runs:8 ~effects_runs:2
  in
  let sp pair fast effects =
    { pair; speedup = effects.ns_per_op /. fast.ns_per_op }
  in
  {
    seed;
    scale;
    kernels =
      [
        reb_fast;
        reb_effects;
        fa_fast;
        fa_effects;
        flat_int_kernel ~seed ~scale;
        dist_geometric_kernel ~seed ~scale;
      ];
    speedups =
      [ sp "rebatching" reb_fast reb_effects;
        sp "fast-adaptive" fa_fast fa_effects ];
  }

(* ------------------------------------------------------------------ *)
(* JSON round-trip (the committed BENCH_<k>.json baseline format) *)

let to_json s =
  let kernel k =
    Jsonu.Obj
      [
        ("name", Jsonu.Str k.name);
        ("n", Jsonu.Int k.n);
        ("runs", Jsonu.Int k.runs);
        ("ops", Jsonu.Int k.ops);
        ("ns_per_op", Jsonu.Num k.ns_per_op);
        ("words_per_op", Jsonu.Num k.words_per_op);
      ]
  in
  let speedup s =
    Jsonu.Obj [ ("pair", Jsonu.Str s.pair); ("speedup", Jsonu.Num s.speedup) ]
  in
  Jsonu.Obj
    [
      ("kind", Jsonu.Str "bench");
      ("schema", Jsonu.Int 1);
      ("seed", Jsonu.Int s.seed);
      ("scale", Jsonu.Num s.scale);
      ("kernels", Jsonu.Arr (List.map kernel s.kernels));
      ("speedups", Jsonu.Arr (List.map speedup s.speedups));
    ]

let of_json j =
  let fields = Jsonu.obj j in
  if Jsonu.str fields "kind" <> "bench" then raise Jsonu.Malformed;
  let kernel j =
    let f = Jsonu.obj j in
    {
      name = Jsonu.str f "name";
      n = Jsonu.int_ f "n";
      runs = Jsonu.int_ f "runs";
      ops = Jsonu.int_ f "ops";
      ns_per_op = Jsonu.num f "ns_per_op";
      words_per_op = Jsonu.num f "words_per_op";
    }
  in
  let speedup j =
    let f = Jsonu.obj j in
    { pair = Jsonu.str f "pair"; speedup = Jsonu.num f "speedup" }
  in
  {
    seed = Jsonu.int_ fields "seed";
    scale = Jsonu.num fields "scale";
    kernels = List.map kernel (Jsonu.arr fields "kernels");
    speedups = List.map speedup (Jsonu.arr fields "speedups");
  }

let load path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Jsonu.parse (String.trim contents) with
  | Some j -> of_json j
  | None -> raise Jsonu.Malformed

(* ------------------------------------------------------------------ *)
(* Regression rules *)

(* The speedup pass bar: at or above this multiple the pair passes
   outright, whatever the baseline says.  Matches the repository's
   headline claim for the rebatching kernel. *)
let speedup_floor = 5.0

(* The kernels whose hot loop is claimed allocation-free outright: the
   fast-substrate sides of the headline pairs and the flat PRNG bank.
   These are gated absolutely (words/op under [zero_alloc_budget]), not
   merely relative to the baseline — a baseline recorded with a box in
   the loop must not grandfather the box in. *)
let zero_alloc_kernels =
  [ "rebatching/fast"; "fast-adaptive/fast"; "prng/flat-int" ]

(* A single box costs >= 1 word/op; the Gc.minor_words metering itself
   amortizes to orders of magnitude less over millions of ops. *)
let zero_alloc_budget = 0.01

(* Allocation regressions fail on words/op exceeding the baseline by
   max(0.25, threshold x baseline): the additive floor keeps a 0-alloc
   baseline from turning measurement jitter into failures while still
   catching a real box sneaking into the loop.  The [zero_alloc_kernels]
   are additionally held to the absolute [zero_alloc_budget].  Speedups
   pass at [speedup_floor] or within threshold of baseline; ns/op is
   never checked (absolute timing is machine noise). *)
let check ~threshold ~baseline ~current =
  let findings = ref [] in
  let add fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  List.iter
    (fun name ->
      match List.find_opt (fun k -> k.name = name) current.kernels with
      | None -> add "zero-allocation kernel %s missing from this run" name
      | Some c ->
        if c.words_per_op > zero_alloc_budget then
          add "%s allocates %.3f words/op; it is claimed allocation-free \
               (budget %.2f)"
            c.name c.words_per_op zero_alloc_budget)
    zero_alloc_kernels;
  List.iter
    (fun b ->
      match List.find_opt (fun k -> k.name = b.name) current.kernels with
      | None -> add "kernel %s present in baseline but not in this run" b.name
      | Some c ->
        let allowed =
          b.words_per_op +. Float.max 0.25 (threshold *. b.words_per_op)
        in
        if c.words_per_op > allowed then
          add "%s allocates %.2f words/op (baseline %.2f, allowed %.2f)"
            c.name c.words_per_op b.words_per_op allowed)
    baseline.kernels;
  List.iter
    (fun b ->
      match List.find_opt (fun s -> s.pair = b.pair) current.speedups with
      | None -> add "speedup pair %s present in baseline but not in this run" b.pair
      | Some c ->
        if
          c.speedup < speedup_floor
          && c.speedup < (1. -. threshold) *. b.speedup
        then
          add "%s speedup fell to %.2fx (baseline %.2fx, floor %.1fx)" c.pair
            c.speedup b.speedup speedup_floor)
    baseline.speedups;
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Rendering and file management *)

let render s =
  let t =
    Harness.Table.create
      ~columns:
        [
          ("kernel", Harness.Table.Left);
          ("n", Harness.Table.Right);
          ("runs", Harness.Table.Right);
          ("ops", Harness.Table.Right);
          ("ns/op", Harness.Table.Right);
          ("words/op", Harness.Table.Right);
        ]
  in
  List.iter
    (fun k ->
      Harness.Table.add_row t
        [
          k.name;
          Harness.Table.cell_int k.n;
          Harness.Table.cell_int k.runs;
          Harness.Table.cell_int k.ops;
          Harness.Table.cell_float ~decimals:1 k.ns_per_op;
          Harness.Table.cell_float ~decimals:3 k.words_per_op;
        ])
    s.kernels;
  let sp =
    Harness.Table.create
      ~columns:
        [ ("pair", Harness.Table.Left); ("fast vs effects", Harness.Table.Right) ]
  in
  List.iter
    (fun x ->
      Harness.Table.add_row sp
        [ x.pair; Printf.sprintf "%.2fx" x.speedup ])
    s.speedups;
  Harness.Table.render t ^ "\n\n" ^ Harness.Table.render sp

(* Next free BENCH_<k>.json index, so successive local runs accumulate
   side by side and BENCH_0.json stays the committed baseline. *)
let next_index dir =
  let taken = Hashtbl.create 8 in
  (if Sys.file_exists dir then
     Array.iter
       (fun f ->
         match Scanf.sscanf_opt f "BENCH_%d.json%!" (fun i -> i) with
         | Some i -> Hashtbl.replace taken i ()
         | None -> ())
       (Sys.readdir dir));
  let rec go i = if Hashtbl.mem taken i then go (i + 1) else i in
  go 0

let save ~dir s =
  Engine.Sink.mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "BENCH_%d.json" (next_index dir)) in
  let oc = open_out_bin path in
  output_string oc (Jsonu.to_string (to_json s));
  output_char oc '\n';
  close_out oc;
  path
