(** Execute a {!Fault_plan} against the real multicore substrate.

    The injector is {!Shm.Domain_runner.hooks} middleware: the runner's
    hot path is untouched, and a crash is an exception raised from the
    TAS bracket — {!Fault_plan.Before_op} before the real operation runs,
    {!Fault_plan.After_win} after it returns a win, so the slot stays
    taken in shared memory while the process records no name.  The
    algorithm closure is wrapped so a crashed process simply terminates
    with no name; {!Shm.Domain_runner} needs no crash awareness.

    With [~certify:true] the injector composes {e outside} the
    {!Analysis.Hb_runner} happens-before monitor
    ({!Shm.Domain_runner.compose_hooks}), so one execution is
    simultaneously fault-injected and certified race-free — a crash
    raised before an operation never reaches the monitor, exactly as a
    fail-stop before the operation should not.

    After the run, an invariant monitor checks the loose-renaming
    safety/liveness obligations under crashes (see {!verdict}) and the
    TAS-slot conservation law: for the acquire-once algorithms in
    {!Algos} (win = name = termination),
    [slots_taken - names_assigned] must equal the number of
    after-win crashes that actually fired — every leaked slot is
    accounted to a specific injected fault. *)

exception Crashed
(** Raised by the injector inside a process's TAS bracket; never escapes
    {!run}. *)

type fired = { pid : int; op : int; point : Fault_plan.crash_point }
(** A crash that actually fired: process [pid] died at its [op]-th TAS.
    An armed crash fires iff the process reaches its armed operation
    index; with [domains = 1] the fired set is exactly reproducible. *)

type verdict = {
  plan : Fault_plan.t;
  fired : fired list;  (** sorted by [pid] *)
  crashed : bool array;  (** per process: did its armed crash fire *)
  survivors : int;
  names_assigned : int;
  max_name : int;  (** [-1] if no names were assigned *)
  slots_taken : int;  (** TAS wins minus releases, counted in the bracket *)
  leaked : int;  (** [slots_taken - names_assigned] *)
  violations : string list;
      (** empty iff every invariant held.  Possible entries, in check
          order: ["survivor-progress"] (a process that never crashed
          finished without a name), ["crashed-silent"] (a crashed
          process reported a name), ["survivor-uniqueness"] (two
          survivors share a name), ["namespace-bound"] (a name is
          [>= name_bound]), ["leak-accounting"] (leaked slots do not
          match fired after-win crashes). *)
}

type outcome = {
  verdict : verdict;
  result : Shm.Domain_runner.result;
  races : Analysis.Hb.race list option;
      (** [Some races] iff the run was certified; [Some []] means the
          witnessed execution was data-race free *)
}

val ok : verdict -> bool
(** No invariant violations. *)

val run :
  ?certify:bool ->
  plan:Fault_plan.t ->
  algo:(Renaming.Env.t -> int option) ->
  unit ->
  outcome
(** Execute [plan] against [algo] on [plan.domains] domains over
    [plan.capacity] shared cells.  [algo] must be a fresh instance built
    for [plan.procs] processes — use {!run_plan} to construct it from
    [plan.algo].  [certify] (default [false]) runs the happens-before
    monitor over the same execution. *)

val run_plan : ?certify:bool -> Fault_plan.t -> (outcome, string) result
(** {!run} with the algorithm built by {!Algos.make} from [plan.algo].
    [Error] if the algorithm name is unknown or the plan's recorded
    capacity does not match the constructed instance (a corrupted or
    hand-edited plan that would silently run a different experiment). *)

(** {1 Verdict artifact}

    The verdict serializes to canonical JSON with only deterministic
    fields (no wall-clock time), so at [domains = 1] two runs of the
    same plan produce byte-identical artifacts. *)

val verdict_to_json : verdict -> string

type summary = { seed : int; ok : bool; violations : string list }
(** The audit view of a recorded verdict ([repro_cli doctor]). *)

val summary_of_json : string -> (summary, string) result
