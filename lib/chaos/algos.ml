let names = [ "rebatching"; "adaptive"; "fast" ]

(* Index 16 on the object ladder mirrors the shm test suite: the
   adaptive ladder's reachable depth grows like O(log log n), so 16
   covers any feasible process count. *)
let ladder_depth = 16

let make name ~n ?(t0 = 3) () =
  match name with
  | "rebatching" ->
    let instance = Renaming.Rebatching.make ~t0 ~n () in
    Ok
      ( (fun env -> Renaming.Rebatching.get_name env instance),
        Renaming.Rebatching.size instance )
  | "adaptive" ->
    let space = Renaming.Object_space.create ~t0 () in
    Ok
      ( (fun env -> Renaming.Adaptive_rebatching.get_name env space),
        Renaming.Object_space.total_size space ladder_depth )
  | "fast" ->
    let space = Renaming.Object_space.create ~t0 () in
    Ok
      ( (fun env -> Renaming.Fast_adaptive_rebatching.get_name env space),
        Renaming.Object_space.total_size space ladder_depth )
  | other -> Error (Printf.sprintf "unknown algorithm %S" other)
