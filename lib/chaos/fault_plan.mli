(** Deterministic fault plans for the multicore substrate.

    A plan is a pure function of [(seed, procs, domains)] plus the knobs
    below: which logical processes fail-stop, at which of their own
    shared-memory operations, and on which side of the operation; and
    which processes get bounded delay injected to widen the interleavings
    the memory system explores.  Because the plan is data — not decisions
    taken at run time — the same seed always arms the same faults at the
    same per-process operation indices, any failing run can be recorded
    to JSON and committed as a regression fixture, and
    {!Chaos_runner.run} can replay it on real hardware at will.

    Crash semantics follow the paper's model (§2): a process may
    fail-stop at {e any} step, including the nastiest linearization
    point — after winning a test-and-set but before recording the name,
    so the slot leaks (cf. Giakkoupis–Woelfel's crash-at-any-point TAS
    regime in PAPERS.md).  Operation indices are counted per process
    (1-based, over that process's own TAS calls), so arming does not
    depend on the global interleaving.  Whether an armed crash
    {e fires} can: a process scheduled to crash before its [k]-th
    operation survives if it terminates in fewer — with [domains = 1]
    the execution is sequential and firing is exactly reproducible;
    with more domains the armed schedule and the invariant verdict are
    stable while the fired subset may vary with the memory system. *)

type crash_point =
  | Before_op  (** fail-stop immediately before the armed operation *)
  | After_win
      (** fail-stop immediately after the first TAS {e win} at or after
          the armed operation — the won slot leaks: it is taken in
          shared memory but no surviving process carries its name *)

type crash = {
  pid : int;
  op : int;  (** 1-based per-process operation index the crash arms at *)
  point : crash_point;
}

type pause = {
  pid : int;
  op : int;  (** 1-based per-process operation index the delay fires at *)
  spins : int;  (** bounded busy-wait iterations ([Domain.cpu_relax]) *)
}

type t = {
  seed : int;
  procs : int;
  domains : int;
  algo : string;
      (** algorithm name, opaque to this module; {!Algos.make} interprets
          it when the plan is run or replayed *)
  capacity : int;  (** TAS cells allocated for the run *)
  name_bound : int;
      (** the namespace invariant: every assigned name must be
          [< name_bound] (defaults to [capacity]); a deliberately small
          bound makes a committable broken-invariant fixture *)
  crash_frac : float;  (** fraction of processes armed with a crash *)
  pause_frac : float;  (** fraction of processes armed with a delay *)
  max_spins : int;  (** upper bound on any pause's spin count *)
  crashes : crash list;  (** sorted by [pid], at most one per process *)
  pauses : pause list;  (** sorted by [pid], at most one per process *)
}

val make :
  seed:int ->
  procs:int ->
  domains:int ->
  algo:string ->
  capacity:int ->
  ?name_bound:int ->
  ?crash_frac:float ->
  ?pause_frac:float ->
  ?max_spins:int ->
  unit ->
  t
(** Derive a plan.  The derivation draws from a SplitMix64 stream that
    is disjoint from every per-process coin stream the runner will use,
    so arming faults never perturbs the algorithms' randomness.
    Defaults: [name_bound = capacity], [crash_frac = 0.],
    [pause_frac = 0.], [max_spins = 512].

    [floor (crash_frac *. procs)] distinct processes are armed with a
    crash: the crash point is a fair coin between {!Before_op} and
    {!After_win}, and the armed operation index is uniform on [1..3] —
    early enough to fire in almost every execution, late enough to
    exercise mid-protocol state.  [floor (pause_frac *. procs)]
    processes (drawn independently; overlap with crashers is allowed)
    get a pause of [1..max_spins] spins at operation [1..4].

    @raise Invalid_argument if [procs < 1], [domains < 1],
    [capacity < 1], [name_bound < 1], a fraction is outside [0, 1], or
    [max_spins < 1]. *)

val crash_for : t -> int -> crash option
(** The crash armed for process [pid], if any. *)

val pause_for : t -> int -> pause option

val equal : t -> t -> bool

(** {1 Record / replay}

    Plans serialize to one canonical JSON form: [to_json] is a pure
    function of the plan with a fixed field order, so
    [to_json (of_json_exn (to_json p)) = to_json p] byte for byte —
    the property `repro_cli chaos replay` and the QCheck suite pin. *)

val point_to_string : crash_point -> string
(** ["before-op"] / ["after-win"] — the lexemes used in plan and verdict
    JSON. *)

val to_json : t -> string

val of_json : string -> (t, string) result
(** Parses a plan recorded by {!to_json} (whitespace-tolerant, field
    order free).  [Error] names the offending field or structural
    problem. *)

val save : file:string -> t -> unit
(** Write [to_json] plus a trailing newline to [file]. *)

val load : file:string -> (t, string) result
