(* Execute a fault plan against the real multicore substrate.

   The injector lives entirely in Domain_runner's hooks middleware; the
   uninstrumented hot path is untouched.  Per-process state is indexed
   by pid and each pid runs on exactly one domain, so the op counters
   and fired slots are single-writer; the runner's joins publish them
   to the main thread before the verdict reads them. *)

exception Crashed

type fired = { pid : int; op : int; point : Fault_plan.crash_point }

type verdict = {
  plan : Fault_plan.t;
  fired : fired list;
  crashed : bool array;
  survivors : int;
  names_assigned : int;
  max_name : int;
  slots_taken : int;
  leaked : int;
  violations : string list;
}

type outcome = {
  verdict : verdict;
  result : Shm.Domain_runner.result;
  races : Analysis.Hb.race list option;
}

let ok v = v.violations = []

(* ------------------------------------------------------------------ *)
(* Injection *)

type injector = {
  ops : int array;  (* per-pid 1-based TAS counter, single-writer *)
  crash_of : Fault_plan.crash option array;
  pause_of : Fault_plan.pause option array;
  fired_at : fired option array;  (* single-writer, published by join *)
  wins : int Atomic.t;
  releases : int Atomic.t;
}

let injector_make plan =
  let procs = plan.Fault_plan.procs in
  {
    ops = Array.make procs 0;
    crash_of = Array.init procs (Fault_plan.crash_for plan);
    pause_of = Array.init procs (Fault_plan.pause_for plan);
    fired_at = Array.make procs None;
    wins = Atomic.make 0;
    releases = Atomic.make 0;
  }

let injector_hooks inj =
  {
    Shm.Domain_runner.null_hooks with
    tas =
      (fun ~domain:_ ~pid ~loc:_ f ->
        let op = inj.ops.(pid) + 1 in
        inj.ops.(pid) <- op;
        (match inj.pause_of.(pid) with
        | Some pz when pz.Fault_plan.op = op ->
          for _ = 1 to pz.Fault_plan.spins do
            Domain.cpu_relax ()
          done
        | _ -> ());
        (match inj.crash_of.(pid) with
        | Some { Fault_plan.point = Before_op; op = armed; _ }
          when inj.fired_at.(pid) = None && op >= armed ->
          inj.fired_at.(pid) <- Some { pid; op; point = Fault_plan.Before_op };
          raise Crashed
        | _ -> ());
        let won = f () in
        if won then begin
          Atomic.incr inj.wins;
          match inj.crash_of.(pid) with
          | Some { Fault_plan.point = After_win; op = armed; _ }
            when inj.fired_at.(pid) = None && op >= armed ->
            inj.fired_at.(pid) <- Some { pid; op; point = Fault_plan.After_win };
            raise Crashed
          | _ -> ()
        end;
        won);
    release =
      (fun ~domain:_ ~pid:_ ~loc:_ f ->
        f ();
        Atomic.incr inj.releases);
  }

(* ------------------------------------------------------------------ *)
(* Verdict *)

let judge plan inj (result : Shm.Domain_runner.result) =
  let procs = plan.Fault_plan.procs in
  let fired =
    Array.to_list inj.fired_at |> List.filter_map Fun.id
    (* array order is pid order *)
  in
  let crashed = Array.map Option.is_some inj.fired_at in
  let survivors =
    Array.fold_left (fun n c -> if c then n else n + 1) 0 crashed
  in
  let assigned = List.filter_map Fun.id (Array.to_list result.names) in
  let names_assigned = List.length assigned in
  let max_name = Shm.Domain_runner.max_name result in
  let slots_taken = Atomic.get inj.wins - Atomic.get inj.releases in
  let leaked = slots_taken - names_assigned in
  let violations = ref [] in
  let check name bad = if bad then violations := name :: !violations in
  let fired_after_win =
    List.length
      (List.filter (fun f -> f.point = Fault_plan.After_win) fired)
  in
  (* Check order is reversed by the consing below. *)
  check "leak-accounting" (leaked <> fired_after_win);
  check "namespace-bound"
    (List.exists (fun n -> n >= plan.Fault_plan.name_bound) assigned);
  check "survivor-uniqueness"
    (List.length (List.sort_uniq compare assigned) <> names_assigned);
  let exists_pid pred =
    let found = ref false in
    for pid = 0 to procs - 1 do
      if pred pid then found := true
    done;
    !found
  in
  check "crashed-silent"
    (exists_pid (fun pid -> crashed.(pid) && result.names.(pid) <> None));
  check "survivor-progress"
    (exists_pid (fun pid -> (not crashed.(pid)) && result.names.(pid) = None));
  {
    plan;
    fired;
    crashed;
    survivors;
    names_assigned;
    max_name;
    slots_taken;
    leaked;
    violations = !violations;
  }

(* ------------------------------------------------------------------ *)
(* Running *)

let run ?(certify = false) ~plan ~algo () =
  let inj = injector_make plan in
  let chaos_hooks = injector_hooks inj in
  let hb =
    if certify then Some (Analysis.Hb.create ~mode:Analysis.Hb.Collect ())
    else None
  in
  let hooks =
    match hb with
    | None -> chaos_hooks
    | Some hb ->
      Shm.Domain_runner.compose_hooks chaos_hooks (Analysis.Hb_runner.hooks hb)
  in
  let wrapped env = try algo env with Crashed -> None in
  let result =
    Shm.Domain_runner.run ~domains:plan.Fault_plan.domains ~hooks
      ~seed:plan.Fault_plan.seed ~procs:plan.Fault_plan.procs
      ~capacity:plan.Fault_plan.capacity ~algo:wrapped ()
  in
  {
    verdict = judge plan inj result;
    result;
    races = Option.map Analysis.Hb.races hb;
  }

let run_plan ?certify plan =
  match
    Algos.make plan.Fault_plan.algo ~n:plan.Fault_plan.procs ()
  with
  | Error e -> Error e
  | Ok (algo, capacity) ->
    if capacity <> plan.Fault_plan.capacity then
      Error
        (Printf.sprintf
           "plan records capacity %d but algorithm %S at procs=%d needs %d \
            (corrupted or hand-edited plan?)"
           plan.Fault_plan.capacity plan.Fault_plan.algo plan.Fault_plan.procs
           capacity)
    else Ok (run ?certify ~plan ~algo ())

(* ------------------------------------------------------------------ *)
(* Verdict artifact *)

let version = 1

let verdict_to_json v =
  let open Jsonu in
  let p = v.plan in
  let fired_json f =
    Obj
      [
        ("pid", Int f.pid);
        ("op", Int f.op);
        ("point", Str (Fault_plan.point_to_string f.point));
      ]
  in
  to_string
    (Obj
       [
         ("kind", Str "chaos-verdict");
         ("version", Int version);
         ("seed", Int p.Fault_plan.seed);
         ("procs", Int p.Fault_plan.procs);
         ("domains", Int p.Fault_plan.domains);
         ("algo", Str p.Fault_plan.algo);
         ("capacity", Int p.Fault_plan.capacity);
         ("name_bound", Int p.Fault_plan.name_bound);
         ("crash_frac", Num p.Fault_plan.crash_frac);
         ("pause_frac", Num p.Fault_plan.pause_frac);
         ("fired", Arr (List.map fired_json v.fired));
         ("survivors", Int v.survivors);
         ("names_assigned", Int v.names_assigned);
         ("max_name", Int v.max_name);
         ("slots_taken", Int v.slots_taken);
         ("leaked", Int v.leaked);
         ("ok", Bool (v.violations = []));
         ("violations", Arr (List.map (fun s -> Str s) v.violations));
       ])

type summary = { seed : int; ok : bool; violations : string list }

let summary_of_json s =
  let open Jsonu in
  match parse s with
  | None -> Error "not valid JSON (or outside the repository's JSON subset)"
  | Some json -> (
    try
      let fields = obj json in
      if str fields "kind" <> "chaos-verdict" then
        Error "field \"kind\" is not \"chaos-verdict\""
      else
        Ok
          {
            seed = int_ fields "seed";
            ok = bool_ fields "ok";
            violations =
              List.map
                (fun v ->
                  match v with Str s -> s | _ -> raise Malformed)
                (arr fields "violations");
          }
    with Malformed -> Error "missing or mistyped verdict field")
