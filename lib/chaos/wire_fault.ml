type config = {
  listen_path : string;
  upstream_path : string;
  seed : int;
  mean_fault_bytes : int;
  max_stall_s : float;
  chop_weight : int;
  stall_weight : int;
  reset_weight : int;
  log : string -> unit;
}

let default_config ~listen_path ~upstream_path =
  {
    listen_path;
    upstream_path;
    seed = 1;
    mean_fault_bytes = 4096;
    max_stall_s = 0.05;
    chop_weight = 3;
    stall_weight = 3;
    reset_weight = 1;
    log = ignore;
  }

type counters = {
  conns : int;
  refused : int;
  chops : int;
  stalls : int;
  resets : int;
}

(* One forwarding direction of a proxied connection. *)
type dir = {
  src : Unix.file_descr;
  dst : Unix.file_descr;
  mutable out : string;  (* bytes read from [src], not yet written to [dst] *)
  mutable src_eof : bool;
  mutable forwarded : int;  (* bytes delivered to [dst] *)
  mutable next_fault : int;  (* [forwarded] mark of the next fault; -1 = none *)
  mutable stalled_until : float;
}

type link = {
  lid : int;
  a2b : dir;  (* client -> daemon *)
  b2a : dir;
  rng : Prng.Splitmix.t;
  mutable dead : bool;
}

type shared = {
  cfg : config;
  stopping : bool Atomic.t;
  c_conns : int Atomic.t;
  c_refused : int Atomic.t;
  c_chops : int Atomic.t;
  c_stalls : int Atomic.t;
  c_resets : int Atomic.t;
}

type t = { sh : shared; dom : unit Domain.t; mutable stopped : bool }

(* repro-lint: allow wall-clock — stall scheduling on real sockets *)
let now () = Unix.gettimeofday ()
let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Abortive close: linger 0 turns the close into a reset, so the peer's
   next read/write fails instead of seeing a clean EOF. *)
let reset_fd fd =
  (try Unix.setsockopt_optint fd SO_LINGER (Some 0) with Unix.Unix_error _ -> ());
  close_fd fd

let fault_gap cfg rng =
  if cfg.mean_fault_bytes <= 0 then -1
  else
    let mean = float_of_int cfg.mean_fault_bytes in
    1 + int_of_float (Prng.Dist.exponential_sample rng ~rate:(1. /. mean))

let mk_dir cfg rng ~src ~dst =
  {
    src;
    dst;
    out = "";
    src_eof = false;
    forwarded = 0;
    next_fault = fault_gap cfg rng;
    stalled_until = 0.;
  }

let kill_link ~abortive link =
  if not link.dead then begin
    link.dead <- true;
    if abortive then begin
      reset_fd link.a2b.src;
      reset_fd link.b2a.src
    end
    else begin
      close_fd link.a2b.src;
      close_fd link.b2a.src
    end
  end

(* Bounded buffering so a stalled direction applies backpressure
   instead of absorbing the daemon's whole output. *)
let max_buffered = 1 lsl 20

let on_readable t link (d : dir) scratch =
  match Unix.read d.src scratch 0 (Bytes.length scratch) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> kill_link ~abortive:true link
  | 0 -> d.src_eof <- true
  | n -> d.out <- d.out ^ Bytes.sub_string scratch 0 n;
    ignore t

let write_some link (d : dir) s =
  let len = String.length s in
  if len = 0 then 0
  else
    match Unix.write_substring d.dst s 0 len with
    | n ->
      d.out <- String.sub d.out n (String.length d.out - n);
      d.forwarded <- d.forwarded + n;
      n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> 0
    | exception Unix.Unix_error _ ->
      kill_link ~abortive:true link;
      0

let on_writable t link (d : dir) =
  if (not link.dead) && now () >= d.stalled_until then begin
    let budget =
      if d.next_fault < 0 then String.length d.out
      else min (String.length d.out) (d.next_fault - d.forwarded)
    in
    if budget > 0 then
      ignore (write_some link d (String.sub d.out 0 budget))
    else if String.length d.out > 0 then begin
      (* The stream has reached a fault mark: pick the fault. *)
      let cfg = t.cfg in
      let total = cfg.chop_weight + cfg.stall_weight + cfg.reset_weight in
      let pick = if total <= 0 then 0 else Prng.Splitmix.int link.rng total in
      if pick < cfg.chop_weight then begin
        (* Deliver a tiny prefix, delay the tail: a forced partial
           write mid-frame. *)
        Atomic.incr t.c_chops;
        let k = 1 + Prng.Splitmix.int link.rng 16 in
        let k = min k (String.length d.out) in
        ignore (write_some link d (String.sub d.out 0 k));
        d.stalled_until <- now () +. (cfg.max_stall_s /. 5.);
        d.next_fault <- d.forwarded + fault_gap cfg link.rng
      end
      else if pick < cfg.chop_weight + cfg.stall_weight then begin
        Atomic.incr t.c_stalls;
        let frac =
          float_of_int (1 + Prng.Splitmix.int link.rng 1000) /. 1000.
        in
        d.stalled_until <- now () +. (cfg.max_stall_s *. frac);
        d.next_fault <- d.forwarded + fault_gap cfg link.rng
      end
      else begin
        Atomic.incr t.c_resets;
        kill_link ~abortive:true link
      end
    end
  end

let bind_listener cfg =
  (try if Sys.file_exists cfg.listen_path then Unix.unlink cfg.listen_path
   with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  match
    Unix.bind fd (ADDR_UNIX cfg.listen_path);
    Unix.listen fd 64;
    Unix.set_nonblock fd
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    close_fd fd;
    Error
      (Printf.sprintf "proxy bind %s: %s" cfg.listen_path
        (Unix.error_message e))

let serve t listen_fd =
  let cfg = t.cfg in
  let scratch = Bytes.create 65536 in
  let links = ref [] in
  let root = Prng.Splitmix.of_int cfg.seed in
  let next_lid = ref 0 in
  let accept_ready () =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true listen_fd with
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        continue := false
      | exception Unix.Unix_error _ -> continue := false
      | client, _ -> (
        let up = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        match Unix.connect up (ADDR_UNIX cfg.upstream_path) with
        | exception Unix.Unix_error _ ->
          (* Upstream is down (e.g. between SIGKILL and --recover):
             the client sees the outage directly. *)
          close_fd up;
          close_fd client;
          Atomic.incr t.c_refused
        | () ->
          Unix.set_nonblock client;
          Unix.set_nonblock up;
          Atomic.incr t.c_conns;
          let lid = !next_lid in
          incr next_lid;
          let rng = Prng.Splitmix.split_at root lid in
          links :=
            {
              lid;
              a2b = mk_dir cfg rng ~src:client ~dst:up;
              b2a = mk_dir cfg rng ~src:up ~dst:client;
              rng;
              dead = false;
            }
            :: !links)
    done
  in
  while not (Atomic.get t.stopping) do
    let reads = ref [ listen_fd ] in
    let writes = ref [] in
    let t_now = now () in
    List.iter
      (fun l ->
        if not l.dead then
          List.iter
            (fun d ->
              if (not d.src_eof) && String.length d.out < max_buffered then
                reads := d.src :: !reads;
              if String.length d.out > 0 && t_now >= d.stalled_until then
                writes := d.dst :: !writes)
            [ l.a2b; l.b2a ])
      !links;
    (match Unix.select !reads !writes [] 0.02 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (EBADF, _, _) -> ()
    | readable, writable, _ ->
      if List.mem listen_fd readable then accept_ready ();
      List.iter
        (fun l ->
          if not l.dead then
            List.iter
              (fun d ->
                if List.mem d.src readable then on_readable t l d scratch;
                if List.mem d.dst writable then on_writable t l d)
              [ l.a2b; l.b2a ])
        !links);
    (* A direction whose source hit EOF closes once its tail is
       delivered; a link with both directions done dies cleanly. *)
    List.iter
      (fun l ->
        if
          (not l.dead) && l.a2b.src_eof && l.b2a.src_eof
          && String.length l.a2b.out = 0
          && String.length l.b2a.out = 0
        then kill_link ~abortive:false l)
      !links;
    links := List.filter (fun l -> not l.dead) !links
  done;
  List.iter (kill_link ~abortive:false) !links;
  close_fd listen_fd;
  (try Unix.unlink cfg.listen_path with Unix.Unix_error _ -> ());
  cfg.log
    (Printf.sprintf "proxy %s: %d conn(s), %d chop(s), %d stall(s), %d reset(s)"
       cfg.listen_path (Atomic.get t.c_conns) (Atomic.get t.c_chops)
       (Atomic.get t.c_stalls) (Atomic.get t.c_resets))

let start cfg =
  match bind_listener cfg with
  | Error _ as e -> e
  | Ok listen_fd ->
    let sh =
      {
        cfg;
        stopping = Atomic.make false;
        c_conns = Atomic.make 0;
        c_refused = Atomic.make 0;
        c_chops = Atomic.make 0;
        c_stalls = Atomic.make 0;
        c_resets = Atomic.make 0;
      }
    in
    (* The proxy is chaos infrastructure: one joined domain, like the
       server's workers; it never touches the instrumented substrates.
       repro-lint: allow domain-spawn — joined chaos-proxy domain *)
    let dom = Domain.spawn (fun () -> serve sh listen_fd) in
    Ok { sh; dom; stopped = false }

let counters t =
  {
    conns = Atomic.get t.sh.c_conns;
    refused = Atomic.get t.sh.c_refused;
    chops = Atomic.get t.sh.c_chops;
    stalls = Atomic.get t.sh.c_stalls;
    resets = Atomic.get t.sh.c_resets;
  }

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.sh.stopping true;
    Domain.join t.dom
  end
