(** Wire-level chaos: a seeded, replayable fault proxy for the
    renaming daemon's Unix-domain socket.

    The proxy listens on [listen_path] and forwards every accepted
    connection to [upstream_path], injecting transport faults drawn
    from a SplitMix stream — the same seed always injects the same
    fault schedule at the same per-connection byte offsets, so a soak
    that found a bug can be replayed:

    - {b chop}: a write boundary is forced mid-frame and the tail is
      delayed — downstream sees the partial reads the incremental
      decoders claim to survive;
    - {b stall}: forwarding pauses for a bounded interval — clients'
      per-request deadlines and the daemon's lease sweep see real
      silence;
    - {b reset}: the connection is destroyed with an abortive close
      (RST) in both directions — the reconnect/backoff path runs.

    The proxy outlives the daemon: while the upstream socket is dead
    (between SIGKILL and [--recover]), new client connections are
    accepted and immediately closed, which clients observe as the
    daemon being down.  It runs on its own domain and is torn down
    with {!stop}. *)

type config = {
  listen_path : string;  (** socket the clients dial *)
  upstream_path : string;  (** the real daemon's socket *)
  seed : int;
  mean_fault_bytes : int;
      (** mean forwarded bytes between faults per direction
          (exponential gaps); [<= 0] forwards faithfully *)
  max_stall_s : float;  (** stall durations are uniform in (0, this] *)
  chop_weight : int;
  stall_weight : int;
  reset_weight : int;  (** relative frequencies of the three kinds *)
  log : string -> unit;
}

val default_config : listen_path:string -> upstream_path:string -> config
(** seed 1, a fault every ~4 KiB, stalls up to 50 ms, weights
    chop 3 / stall 3 / reset 1, silent log. *)

type t

type counters = {
  conns : int;  (** connections accepted *)
  refused : int;  (** accepted while upstream was down, closed at once *)
  chops : int;
  stalls : int;
  resets : int;
}

val start : config -> (t, string) result
(** Bind [listen_path] (reclaiming any stale file) and serve on a
    fresh domain.  [Error] describes a bind failure. *)

val counters : t -> counters
(** Safe from any domain while the proxy runs. *)

val stop : t -> unit
(** Close every link and the listener, unlink [listen_path], join the
    domain.  Idempotent. *)
