type crash_point = Before_op | After_win

type crash = { pid : int; op : int; point : crash_point }
type pause = { pid : int; op : int; spins : int }

type t = {
  seed : int;
  procs : int;
  domains : int;
  algo : string;
  capacity : int;
  name_bound : int;
  crash_frac : float;
  pause_frac : float;
  max_spins : int;
  crashes : crash list;
  pauses : pause list;
}

(* ------------------------------------------------------------------ *)
(* Derivation *)

(* The plan stream is child (-1) of the root: Domain_runner hands child
   [pid] to process [pid] and pids are never negative, so arming faults
   consumes randomness disjoint from every process's coins. *)
let plan_rng seed = Prng.Splitmix.split_at (Prng.Splitmix.of_int seed) (-1)

(* First [k] entries of a Fisher-Yates pass over [0..procs-1]: a uniform
   k-subset, returned sorted so derivation order is canonical. *)
let sample_pids rng ~procs k =
  let arr = Array.init procs Fun.id in
  for i = 0 to k - 1 do
    let j = i + Prng.Splitmix.int rng (procs - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  List.sort_uniq compare (Array.to_list (Array.sub arr 0 k))

let make ~seed ~procs ~domains ~algo ~capacity ?name_bound
    ?(crash_frac = 0.) ?(pause_frac = 0.) ?(max_spins = 512) () =
  if procs < 1 then invalid_arg "Fault_plan.make: procs must be >= 1";
  if domains < 1 then invalid_arg "Fault_plan.make: domains must be >= 1";
  if capacity < 1 then invalid_arg "Fault_plan.make: capacity must be >= 1";
  let name_bound = Option.value name_bound ~default:capacity in
  if name_bound < 1 then invalid_arg "Fault_plan.make: name_bound must be >= 1";
  let check_frac what f =
    if not (f >= 0. && f <= 1.) then
      invalid_arg (Printf.sprintf "Fault_plan.make: %s must be in [0, 1]" what)
  in
  check_frac "crash_frac" crash_frac;
  check_frac "pause_frac" pause_frac;
  if max_spins < 1 then invalid_arg "Fault_plan.make: max_spins must be >= 1";
  let rng = plan_rng seed in
  let n_crash = int_of_float (crash_frac *. float_of_int procs) in
  let crashes =
    List.map
      (fun pid ->
        let point = if Prng.Splitmix.bool rng then After_win else Before_op in
        let op = Prng.Splitmix.int_in rng 1 3 in
        { pid; op; point })
      (sample_pids rng ~procs n_crash)
  in
  let n_pause = int_of_float (pause_frac *. float_of_int procs) in
  let pauses =
    List.map
      (fun pid ->
        let op = Prng.Splitmix.int_in rng 1 4 in
        let spins = Prng.Splitmix.int_in rng 1 max_spins in
        { pid; op; spins })
      (sample_pids rng ~procs n_pause)
  in
  {
    seed;
    procs;
    domains;
    algo;
    capacity;
    name_bound;
    crash_frac;
    pause_frac;
    max_spins;
    crashes;
    pauses;
  }

let crash_for t pid = List.find_opt (fun (c : crash) -> c.pid = pid) t.crashes
let pause_for t pid = List.find_opt (fun (p : pause) -> p.pid = pid) t.pauses

let equal a b = a = b

(* ------------------------------------------------------------------ *)
(* JSON *)

let version = 1

let point_to_string = function
  | Before_op -> "before-op"
  | After_win -> "after-win"

let point_of_string = function
  | "before-op" -> Ok Before_op
  | "after-win" -> Ok After_win
  | s -> Error (Printf.sprintf "unknown crash point %S" s)

let to_json t =
  let open Jsonu in
  to_string
    (Obj
       [
         ("kind", Str "chaos-plan");
         ("version", Int version);
         ("seed", Int t.seed);
         ("procs", Int t.procs);
         ("domains", Int t.domains);
         ("algo", Str t.algo);
         ("capacity", Int t.capacity);
         ("name_bound", Int t.name_bound);
         ("crash_frac", Num t.crash_frac);
         ("pause_frac", Num t.pause_frac);
         ("max_spins", Int t.max_spins);
         ( "crashes",
           Arr
             (List.map
                (fun (c : crash) ->
                  Obj
                    [
                      ("pid", Int c.pid);
                      ("op", Int c.op);
                      ("point", Str (point_to_string c.point));
                    ])
                t.crashes) );
         ( "pauses",
           Arr
             (List.map
                (fun (p : pause) ->
                  Obj
                    [
                      ("pid", Int p.pid);
                      ("op", Int p.op);
                      ("spins", Int p.spins);
                    ])
                t.pauses) );
       ])

let of_json s =
  let open Jsonu in
  match parse s with
  | None -> Error "not valid JSON (or outside the repository's JSON subset)"
  | Some json -> (
    try
      let fields = obj json in
      if str fields "kind" <> "chaos-plan" then
        Error "field \"kind\" is not \"chaos-plan\""
      else if int_ fields "version" <> version then
        Error
          (Printf.sprintf "plan version %d; this binary reads version %d"
             (int_ fields "version") version)
      else begin
        let crash_of_fields fs =
          match point_of_string (str fs "point") with
          | Error e -> failwith e
          | Ok point -> { pid = int_ fs "pid"; op = int_ fs "op"; point }
        in
        let pause_of_fields fs =
          { pid = int_ fs "pid"; op = int_ fs "op"; spins = int_ fs "spins" }
        in
        Ok
          {
            seed = int_ fields "seed";
            procs = int_ fields "procs";
            domains = int_ fields "domains";
            algo = str fields "algo";
            capacity = int_ fields "capacity";
            name_bound = int_ fields "name_bound";
            crash_frac = num fields "crash_frac";
            pause_frac = num fields "pause_frac";
            max_spins = int_ fields "max_spins";
            crashes =
              List.map (fun v -> crash_of_fields (obj v)) (arr fields "crashes");
            pauses =
              List.map (fun v -> pause_of_fields (obj v)) (arr fields "pauses");
          }
      end
    with
    | Malformed -> Error "missing or mistyped plan field"
    | Failure e -> Error e)

let save ~file t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')

let load ~file =
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "%s: no such file" file)
  else
    let ic = open_in_bin file in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_json (String.trim contents)
