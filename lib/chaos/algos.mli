(** The shared-memory algorithm table.

    Fault plans name their algorithm as an opaque string
    ({!Fault_plan.t.algo}); this table interprets the name, building a
    fresh (stateful) instance plus the {!Shm.Atomic_space} capacity it
    needs.  It is shared by the chaos CLI, the replay path and
    [repro_cli racecheck], so a recorded plan replays against exactly
    the construction that produced it. *)

val names : string list
(** The recognized names: ["rebatching"], ["adaptive"], ["fast"]. *)

val make :
  string ->
  n:int ->
  ?t0:int ->
  unit ->
  ((Renaming.Env.t -> int option) * int, string) result
(** [make name ~n ()] is [Ok (algo, capacity)] — a fresh instance sized
    for [n] processes and the shared-memory capacity covering every
    location it can touch (for the adaptive ladder, depth 16 covers any
    feasible process count, mirroring the shm test suite).  [t0]
    defaults to 3.  [Error] names the unknown algorithm. *)
