exception Step_limit_exceeded
exception Crash_signal

(* A suspended process holds the continuation of whichever shared-memory
   operation it is about to execute. *)
type pending =
  | Ptas of (bool, unit) Effect.Deep.continuation
  | Preset of (unit, unit) Effect.Deep.continuation
  | Pread of (int, unit) Effect.Deep.continuation
  | Pwrite of int * (unit, unit) Effect.Deep.continuation

type cell =
  | Waiting of { loc : int; op : pending }
  | Running  (* transiently, while the process body executes *)
  | Finished of int option
  | Crashed

type t = {
  space : Location_space.t;
  registers : Register_space.t;
  cells : cell array;
  steps : int array;
  (* point-contention tracking: a process is active from its first
     executed operation until it finishes or crashes *)
  active : bool array;
  mutable active_count : int;
  mutable max_active : int;
  mutable waiting : int;
  mutable total_steps : int;
  mutable crashes : int;
  cb : Adversary.callbacks;
  (* Payload of the effect currently being suspended, stashed here so the
     per-process handler closures below can be built once in [start]
     instead of once per shared-memory operation. *)
  pend_loc : int array;
  pend_val : int array;
}

let retire t pid =
  if t.active.(pid) then begin
    t.active.(pid) <- false;
    t.active_count <- t.active_count - 1
  end

let start t pid body =
  t.cells.(pid) <- Running;
  (* One handler closure (and its [Some] wrapper) per operation kind per
     process, built here once: the effect's payload travels through
     [pend_loc]/[pend_val] rather than being captured, so suspending an
     operation no longer constructs a fresh closure — only the [Waiting]
     cell that must carry the continuation remains per-step. *)
  let h_tas (k : (bool, unit) Effect.Deep.continuation) =
    let loc = t.pend_loc.(pid) in
    t.cells.(pid) <- Waiting { loc; op = Ptas k };
    t.waiting <- t.waiting + 1;
    t.cb.on_wait ~pid ~loc ~op:Adversary.Tas_op
  in
  let h_reset (k : (unit, unit) Effect.Deep.continuation) =
    let loc = t.pend_loc.(pid) in
    t.cells.(pid) <- Waiting { loc; op = Preset k };
    t.waiting <- t.waiting + 1;
    t.cb.on_wait ~pid ~loc ~op:Adversary.Reset_op
  in
  let h_read (k : (int, unit) Effect.Deep.continuation) =
    let reg = t.pend_loc.(pid) in
    t.cells.(pid) <- Waiting { loc = reg; op = Pread k };
    t.waiting <- t.waiting + 1;
    t.cb.on_wait ~pid ~loc:reg ~op:Adversary.Read_op
  in
  let h_write (k : (unit, unit) Effect.Deep.continuation) =
    let reg = t.pend_loc.(pid) in
    t.cells.(pid) <- Waiting { loc = reg; op = Pwrite (t.pend_val.(pid), k) };
    t.waiting <- t.waiting + 1;
    t.cb.on_wait ~pid ~loc:reg ~op:Adversary.Write_op
  in
  let some_h_tas = Some h_tas in
  let some_h_reset = Some h_reset in
  let some_h_read = Some h_read in
  let some_h_write = Some h_write in
  Effect.Deep.match_with body ()
    {
      retc =
        (fun result ->
          t.cells.(pid) <- Finished result;
          retire t pid;
          t.cb.on_settle ~pid);
      exnc = (function Crash_signal -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) :
             ((a, unit) Effect.Deep.continuation -> unit) option ->
          match eff with
          | Proc.Tas loc ->
            t.pend_loc.(pid) <- loc;
            some_h_tas
          | Proc.Reset loc ->
            t.pend_loc.(pid) <- loc;
            some_h_reset
          | Proc.Read reg ->
            t.pend_loc.(pid) <- reg;
            some_h_read
          | Proc.Write (reg, value) ->
            t.pend_loc.(pid) <- reg;
            t.pend_val.(pid) <- value;
            some_h_write
          | _ -> None);
    }

let create ?registers ~space ~adversary ~rng ~n ~body () =
  let registers =
    match registers with Some r -> r | None -> Register_space.create ()
  in
  let ctx =
    {
      Adversary.rng;
      location_taken = (fun loc -> Location_space.is_taken space loc);
      register_value = (fun reg -> Register_space.peek registers reg);
    }
  in
  let cb = adversary.Adversary.make ctx in
  let t =
    {
      space;
      registers;
      cells = Array.make n (Finished None);
      steps = Array.make n 0;
      active = Array.make n false;
      active_count = 0;
      max_active = 0;
      waiting = 0;
      total_steps = 0;
      crashes = 0;
      cb;
      pend_loc = Array.make n 0;
      pend_val = Array.make n 0;
    }
  in
  for pid = 0 to n - 1 do
    start t pid (body pid)
  done;
  t

let step t pid =
  match t.cells.(pid) with
  | Waiting { loc; op } ->
    t.cells.(pid) <- Running;
    t.waiting <- t.waiting - 1;
    t.steps.(pid) <- t.steps.(pid) + 1;
    t.total_steps <- t.total_steps + 1;
    if not t.active.(pid) then begin
      t.active.(pid) <- true;
      t.active_count <- t.active_count + 1;
      if t.active_count > t.max_active then t.max_active <- t.active_count
    end;
    (match op with
    | Ptas k ->
      let won = Location_space.tas t.space loc in
      t.cb.on_tas ~loc ~won;
      Effect.Deep.continue k won
    | Preset k ->
      Location_space.release t.space loc;
      Effect.Deep.continue k ()
    | Pread k ->
      let v = Register_space.read t.registers loc in
      Effect.Deep.continue k v
    | Pwrite (value, k) ->
      Register_space.write t.registers loc value;
      Effect.Deep.continue k ())
  | Running | Finished _ | Crashed ->
    invalid_arg "Scheduler.step: process is not waiting"

let crash t pid =
  match t.cells.(pid) with
  | Waiting { op; loc = _ } ->
    t.cells.(pid) <- Crashed;
    t.waiting <- t.waiting - 1;
    t.crashes <- t.crashes + 1;
    retire t pid;
    t.cb.on_settle ~pid;
    (* Unwind the fiber so its resources are released; [Crash_signal] is
       swallowed by the handler installed in [start]. *)
    (try
       match op with
       | Ptas k -> Effect.Deep.discontinue k Crash_signal
       | Preset k -> Effect.Deep.discontinue k Crash_signal
       | Pread k -> Effect.Deep.discontinue k Crash_signal
       | Pwrite (_, k) -> Effect.Deep.discontinue k Crash_signal
     with Crash_signal -> ())
  | Running | Finished _ | Crashed ->
    invalid_arg "Scheduler.crash: process is not waiting"

let run_to_completion ?(max_steps = 10_000_000) t =
  let budget = ref max_steps in
  while t.waiting > 0 do
    if !budget <= 0 then raise Step_limit_exceeded;
    decr budget;
    match t.cb.pick () with
    | Adversary.Step pid -> step t pid
    | Adversary.Crash pid -> crash t pid
  done

let name_of t pid =
  match t.cells.(pid) with Finished r -> r | Waiting _ | Running | Crashed -> None

let crashed t pid = match t.cells.(pid) with Crashed -> true | _ -> false
let max_point_contention t = t.max_active
let steps_of t pid = t.steps.(pid)
let total_steps t = t.total_steps
let names t = Array.init (Array.length t.cells) (fun pid -> name_of t pid)
let step_counts t = Array.copy t.steps
let crash_count t = t.crashes
