type action = Step of int | Crash of int

type op = Tas_op | Reset_op | Read_op | Write_op

type callbacks = {
  on_wait : pid:int -> loc:int -> op:op -> unit;
  on_tas : loc:int -> won:bool -> unit;
  on_settle : pid:int -> unit;
  pick : unit -> action;
}

type ctx = {
  rng : Prng.Splitmix.t;
  location_taken : int -> bool;
  register_value : int -> int;
}
type t = { name : string; make : ctx -> callbacks }

let no_tas ~loc:_ ~won:_ = ()

let random =
  let make ctx =
    let waiting = Dynset.create () in
    {
      on_wait = (fun ~pid ~loc:_ ~op:_ -> Dynset.add waiting pid);
      on_tas = no_tas;
      on_settle = (fun ~pid -> Dynset.remove waiting pid);
      pick = (fun () -> Step (Dynset.any waiting ctx.rng));
    }
  in
  { name = "random"; make }

let round_robin =
  let make _ctx =
    let waiting = Dynset.create () in
    let queue = Queue.create () in
    let on_wait ~pid ~loc:_ ~op:_ =
      if not (Dynset.mem waiting pid) then begin
        Dynset.add waiting pid;
        Queue.push pid queue
      end
    in
    let rec pick () =
      (* Skip queue entries for processes that settled since enqueue. *)
      let pid = Queue.pop queue in
      if Dynset.mem waiting pid then begin
        Queue.push pid queue;
        Step pid
      end
      else pick ()
    in
    {
      on_wait;
      on_tas = no_tas;
      on_settle = (fun ~pid -> Dynset.remove waiting pid);
      pick;
    }
  in
  { name = "round-robin"; make }

let layered =
  let make ctx =
    let waiting = Dynset.create () in
    let layer = ref [||] in
    let cursor = ref 0 in
    let rec pick () =
      if !cursor >= Array.length !layer then begin
        (* Start a new layer: a fresh uniformly random permutation of the
           processes waiting right now (§6's layered schedule). *)
        let snapshot = Array.of_list (Dynset.to_list waiting) in
        Prng.Shuffle.shuffle_in_place ctx.rng snapshot;
        layer := snapshot;
        cursor := 0;
        pick ()
      end
      else begin
        let pid = !layer.(!cursor) in
        incr cursor;
        if Dynset.mem waiting pid then Step pid else pick ()
      end
    in
    {
      on_wait = (fun ~pid ~loc:_ ~op:_ -> Dynset.add waiting pid);
      on_tas = no_tas;
      on_settle = (fun ~pid -> Dynset.remove waiting pid);
      pick;
    }
  in
  { name = "layered"; make }

let greedy_collision =
  let make ctx =
    let waiting = Dynset.create () in
    let pending_loc : (int, int) Hashtbl.t = Hashtbl.create 64 in
    (* Processes whose pending location is already taken: stepping them
       wastes their probe for sure. *)
    let losers = Dynset.create () in
    (* Groups of processes pending on the same still-free location. *)
    let groups : (int, Dynset.t) Hashtbl.t = Hashtbl.create 64 in
    (* Free locations whose group has >= 2 members. *)
    let contended = Dynset.create () in
    let group_of loc =
      match Hashtbl.find_opt groups loc with
      | Some g -> g
      | None ->
        let g = Dynset.create () in
        Hashtbl.replace groups loc g;
        g
    in
    let detach pid =
      match Hashtbl.find_opt pending_loc pid with
      | None -> ()
      | Some loc ->
        Hashtbl.remove pending_loc pid;
        Dynset.remove losers pid;
        (match Hashtbl.find_opt groups loc with
        | None -> ()
        | Some g ->
          Dynset.remove g pid;
          if Dynset.size g < 2 then Dynset.remove contended loc;
          if Dynset.is_empty g then Hashtbl.remove groups loc)
    in
    let on_wait ~pid ~loc ~op =
      detach pid;
      Dynset.add waiting pid;
      match op with
      | Reset_op | Read_op | Write_op ->
        (* non-TAS operations carry no win/lose leverage; leave the pid in
           the generic waiting pool *)
        ()
      | Tas_op ->
        Hashtbl.replace pending_loc pid loc;
        if ctx.location_taken loc then Dynset.add losers pid
        else begin
          let g = group_of loc in
          Dynset.add g pid;
          if Dynset.size g >= 2 then Dynset.add contended loc
        end
    in
    let on_tas ~loc ~won =
      if won then
        (* The location just got taken: everyone still aiming at it is now
           a guaranteed loser. *)
        match Hashtbl.find_opt groups loc with
        | None -> ()
        | Some g ->
          Dynset.iter (fun pid -> Dynset.add losers pid) g;
          Hashtbl.remove groups loc;
          Dynset.remove contended loc
    in
    let on_settle ~pid =
      detach pid;
      Dynset.remove waiting pid
    in
    let pick () =
      if not (Dynset.is_empty losers) then Step (Dynset.first losers)
      else if not (Dynset.is_empty contended) then begin
        let loc = Dynset.first contended in
        let g = Hashtbl.find groups loc in
        Step (Dynset.first g)
      end
      else Step (Dynset.any waiting ctx.rng)
    in
    { on_wait; on_tas; on_settle; pick }
  in
  { name = "greedy"; make }

let sequential =
  let make _ctx =
    let waiting = Dynset.create () in
    let cursor = ref 0 in
    let pick () =
      (* Processes never wait again after settling, so the cursor only
         moves forward. *)
      while not (Dynset.mem waiting !cursor) do
        incr cursor
      done;
      Step !cursor
    in
    {
      on_wait = (fun ~pid ~loc:_ ~op:_ -> Dynset.add waiting pid);
      on_tas = no_tas;
      on_settle = (fun ~pid -> Dynset.remove waiting pid);
      pick;
    }
  in
  { name = "sequential"; make }

let with_crashes ~fraction inner =
  if fraction < 0. || fraction >= 1. then
    invalid_arg "Adversary.with_crashes: fraction must be in [0, 1)";
  let make ctx =
    let cb = inner.make ctx in
    let waiting = Dynset.create () in
    let ever = Dynset.create () in
    (* distinct processes observed *)
    let crashed = ref 0 in
    let on_wait ~pid ~loc ~op =
      Dynset.add ever pid;
      Dynset.add waiting pid;
      cb.on_wait ~pid ~loc ~op
    in
    let on_settle ~pid =
      Dynset.remove waiting pid;
      cb.on_settle ~pid
    in
    let pick () =
      let budget =
        int_of_float (Float.floor (fraction *. float_of_int (Dynset.size ever)))
      in
      (* Pace crashes at roughly the target fraction per decision so high
         fractions are reachable even on short executions. *)
      if
        !crashed < budget
        && (not (Dynset.is_empty waiting))
        && Prng.Splitmix.bernoulli ctx.rng (Float.max 0.05 fraction)
      then begin
        incr crashed;
        Crash (Dynset.any waiting ctx.rng)
      end
      else cb.pick ()
    in
    { on_wait; on_tas = cb.on_tas; on_settle; pick }
  in
  { name = Printf.sprintf "%s+crash%.2f" inner.name fraction; make }

let with_planned_crashes ~crashes inner =
  (* Deterministic before-op fail-stops at 1-based per-process operation
     indices — the [Chaos.Fault_plan] convention.  The inner strategy's
     pick is consulted first and only then overridden, so its rng stream
     advances exactly as it would without crashes; that is what lets the
     fast core replay the same schedule from the same seed. *)
  List.iter
    (fun (_, op) ->
      if op < 1 then
        invalid_arg "Adversary.with_planned_crashes: op must be >= 1")
    crashes;
  let make ctx =
    let cb = inner.make ctx in
    let armed = Hashtbl.create 16 in
    List.iter (fun (pid, op) -> Hashtbl.replace armed pid op) crashes;
    let executed = Hashtbl.create 16 in
    let pick () =
      match cb.pick () with
      | Crash pid -> Crash pid
      | Step pid -> (
        let so_far =
          match Hashtbl.find_opt executed pid with Some c -> c | None -> 0
        in
        match Hashtbl.find_opt armed pid with
        | Some op when so_far + 1 = op ->
          Hashtbl.remove armed pid;
          Crash pid
        | _ ->
          Hashtbl.replace executed pid (so_far + 1);
          Step pid)
    in
    { on_wait = cb.on_wait; on_tas = cb.on_tas; on_settle = cb.on_settle; pick }
  in
  { name = inner.name ^ "+planned-crashes"; make }

let all_builtin = [ random; round_robin; layered; greedy_collision; sequential ]

let by_name name = List.find_opt (fun t -> t.name = name) all_builtin
