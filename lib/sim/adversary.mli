(** Adversarial schedulers.

    The paper's bounds are proved against a *strong adaptive* adversary
    (sees all process state, including coin-flip outcomes, before every
    scheduling decision) and the lower bound is realized by a weaker
    *oblivious* layered adversary.  This module provides both, plus
    neutral schedules, behind one incremental-callback interface so that
    a strategy pays O(1) amortized bookkeeping per simulated step.

    Protocol, driven by the scheduler:
    + [on_wait ~pid ~loc ~op] — [pid] is now suspended with a pending
      operation of kind [op] on index [loc] (fires when the process first
      blocks and after every resumed step that blocks again).  Because
      the pending operation is revealed, a strategy reading it has
      exactly the strong adversary's knowledge: the process's next coin
      flip has already been resolved into [loc].
    + [on_tas ~loc ~won] — a scheduled TAS just executed.
    + [on_settle ~pid] — [pid] finished or crashed; it will never wait
      again.
    + [pick ()] — choose the next action.  Called only while at least one
      process is waiting; must return a currently waiting pid.

    An oblivious strategy simply ignores the information in [on_wait]'s
    [loc] and in [on_tas]. *)

type action =
  | Step of int  (** execute the pending operation of this waiting pid *)
  | Crash of int
      (** crash this waiting pid: it takes no further steps (§2's
          crash-failure model) *)

(** The kind of a pending shared-memory operation; a strong adversary
    sees it (together with the target index) when deciding the
    schedule.  [Read_op]/[Write_op] target the register index space
    ({!Register_space}), the other two the TAS location space. *)
type op = Tas_op | Reset_op | Read_op | Write_op

type callbacks = {
  on_wait : pid:int -> loc:int -> op:op -> unit;
  on_tas : loc:int -> won:bool -> unit;
  on_settle : pid:int -> unit;
  pick : unit -> action;
}

type ctx = {
  rng : Prng.Splitmix.t;  (** the strategy's private randomness *)
  location_taken : int -> bool;  (** read access to the TAS locations *)
  register_value : int -> int;  (** read access to the shared registers *)
}

type t = {
  name : string;
  make : ctx -> callbacks;  (** fresh per-run state *)
}

val random : t
(** Uniformly random waiting process each step — the neutral schedule used
    by the headline experiments. *)

val round_robin : t
(** Cycles through waiting processes in pid order; a maximally fair,
    deterministic schedule. *)

val layered : t
(** The oblivious layered schedule of §6: repeatedly take a uniformly
    random permutation of the currently waiting processes and step each
    once.  Does not read locations or outcomes. *)

val greedy_collision : t
(** A strong adaptive strategy that maximizes failed probes greedily:
    (1) step any process whose pending location is already taken (it must
    lose); (2) otherwise pick a location targeted by the most waiting
    processes and step one of them (the win turns the rest into losers);
    (3) otherwise step a random process. *)

val sequential : t
(** Runs process 0 to completion, then process 1, etc. — the
    solo-execution schedule; useful as an extreme contention-free
    ordering. *)

val with_crashes : fraction:float -> t -> t
(** [with_crashes ~fraction strat] wraps [strat]: before each of [strat]'s
    decisions, with small probability it instead crashes a random waiting
    process, until [fraction] of all processes ever seen have been
    crashed.  Models the adversary's crash power (any number of crash
    failures, §2). *)

val with_planned_crashes : crashes:(int * int) list -> t -> t
(** [with_planned_crashes ~crashes strat] wraps [strat] with
    deterministic fail-stops: each [(pid, op)] pair crashes [pid]
    immediately before it would execute its [op]-th operation (1-based,
    counted over that process's own executed steps — the
    [Chaos.Fault_plan] arming convention; a process finishing in fewer
    operations survives).  [strat]'s decisions and randomness are
    consulted first and then overridden, so its rng stream is unchanged —
    which is what keeps a planned-crash run bit-comparable with
    [Fast_core.arm_crash] on the fast substrate.
    @raise Invalid_argument if any [op < 1]. *)

val by_name : string -> t option
(** Look up a built-in strategy: ["random"], ["round-robin"], ["layered"],
    ["greedy"], ["sequential"]. *)

val all_builtin : t list
