(* The allocation-free execution path for oblivious schedules.

   The effects scheduler pays one continuation capture plus a [Waiting]
   cell per shared-memory operation; at n ~ 10^5..10^6 that allocation
   (and the GC work behind it) dominates wall clock.  For the schedules
   the big sweeps actually use — the uniformly random oblivious adversary
   and the sequential solo order — no continuation is needed: a process
   is fully described by the integer state of its [Fast_algo] machine.
   This driver runs those machines with zero heap allocation per step:
   coins live unboxed in a [Prng.Flat] bank, the ready set is a flat
   Fisher-Yates swap array, and the TAS space is a reused
   [Location_space] cleared in place between runs.

   Equivalence: [run] reproduces [Runner.run ~adversary:Adversary.random]
   and [run_sequential] reproduces [Runner.run_sequential] decision for
   decision — same per-pid coin streams ([Splitmix.split_at root pid]),
   same scheduler stream (index [n]), same swap-removal of settled
   processes, so results agree bit for bit.  The QCheck suite pins this.

   A handle is reusable: [create] once, then [reset ~seed] + [run] per
   execution, with only [result] (called outside the measured loop)
   allocating. *)

type t = {
  algo : Renaming.Fast_algo.t;
  n : int;
  space : Location_space.t;
  rng : Prng.Flat.t;  (* streams 0..n-1 = processes, n = scheduler *)
  rand : Renaming.Fast_algo.rand;  (* the machines' view of [rng] *)
  st : int array;  (* n * slots machine state *)
  pending : int array;  (* per pid: location of the pending TAS *)
  ready : int array;  (* Fisher-Yates swap array of waiting pids *)
  names : int array;  (* -1 = none *)
  steps : int array;
  crashed : Bytes.t;
  active : Bytes.t;
  order : int array;  (* sequential execution order *)
  crash_op : int array;  (* 0 = unarmed; else 1-based op index *)
  crash_after_win : Bytes.t;
  mutable size : int;  (* live prefix of [ready] *)
  mutable total_steps : int;
  mutable crash_count : int;
  mutable active_count : int;
  mutable max_active : int;
  mutable point_contention : int;
}

let create ~algo ~n () =
  if n < 1 then invalid_arg "Fast_core.create: n must be >= 1";
  let rng = Prng.Flat.create (n + 1) in
  {
    algo;
    n;
    space = Location_space.create ();
    rng;
    rand = Renaming.Fast_algo.flat_rand rng;
    st = Array.make (n * Renaming.Fast_algo.slots algo) 0;
    pending = Array.make n (-1);
    ready = Array.make n 0;
    names = Array.make n (-1);
    steps = Array.make n 0;
    crashed = Bytes.make n '\000';
    active = Bytes.make n '\000';
    order = Array.make n 0;
    crash_op = Array.make n 0;
    crash_after_win = Bytes.make n '\000';
    size = 0;
    total_steps = 0;
    crash_count = 0;
    active_count = 0;
    max_active = 0;
    point_contention = 0;
  }

let reset t ~seed =
  Location_space.clear t.space;
  Prng.Flat.reseed t.rng ~seed;
  Array.fill t.names 0 t.n (-1);
  Array.fill t.steps 0 t.n 0;
  Array.fill t.pending 0 t.n (-1);
  Array.fill t.crash_op 0 t.n 0;
  Bytes.fill t.crashed 0 t.n '\000';
  Bytes.fill t.active 0 t.n '\000';
  Bytes.fill t.crash_after_win 0 t.n '\000';
  t.size <- 0;
  t.total_steps <- 0;
  t.crash_count <- 0;
  t.active_count <- 0;
  t.max_active <- 0;
  t.point_contention <- 0

let arm_crash t ~pid ~op ~after_win =
  if pid < 0 || pid >= t.n then invalid_arg "Fast_core.arm_crash: bad pid";
  if op < 1 then invalid_arg "Fast_core.arm_crash: op must be >= 1";
  t.crash_op.(pid) <- op;
  Bytes.unsafe_set t.crash_after_win pid (if after_win then '\001' else '\000')

let[@inline] activate t pid =
  if Bytes.unsafe_get t.active pid = '\000' then begin
    Bytes.unsafe_set t.active pid '\001';
    t.active_count <- t.active_count + 1;
    if t.active_count > t.max_active then t.max_active <- t.active_count
  end

let[@inline] retire t pid =
  if Bytes.unsafe_get t.active pid = '\001' then begin
    Bytes.unsafe_set t.active pid '\000';
    t.active_count <- t.active_count - 1
  end

(* Start every machine; mirrors [Scheduler.create] running each body up
   to its first pending operation. *)
let start_all t =
  let slots = Renaming.Fast_algo.slots t.algo in
  let init = t.algo.Renaming.Fast_algo.init in
  t.size <- 0;
  for pid = 0 to t.n - 1 do
    let a = init t.st (pid * slots) t.rand pid in
    if a >= 0 then begin
      t.pending.(pid) <- a;
      t.ready.(t.size) <- pid;
      t.size <- t.size + 1
    end
    else begin
      match Renaming.Fast_algo.name_of_action a with
      | Some u -> t.names.(pid) <- u
      | None -> ()
    end
  done

let run ?(max_total_steps = 10_000_000) t =
  start_all t;
  let slots = Renaming.Fast_algo.slots t.algo in
  let resume = t.algo.Renaming.Fast_algo.resume in
  let budget = ref max_total_steps in
  while t.size > 0 do
    if !budget <= 0 then raise Scheduler.Step_limit_exceeded;
    decr budget;
    (* Same decision as [Adversary.random]: uniform index into the
       waiting set, drawn from the scheduler's own stream. *)
    let idx = Prng.Flat.int t.rng t.n t.size in
    let pid = Array.unsafe_get t.ready idx in
    let armed = Array.unsafe_get t.crash_op pid in
    if
      armed > 0
      && armed = t.steps.(pid) + 1
      && Bytes.unsafe_get t.crash_after_win pid = '\000'
    then begin
      (* planned before-op crash: the pending operation never executes *)
      Bytes.unsafe_set t.crashed pid '\001';
      t.crash_count <- t.crash_count + 1;
      retire t pid;
      t.size <- t.size - 1;
      t.ready.(idx) <- t.ready.(t.size)
    end
    else begin
      let loc = Array.unsafe_get t.pending pid in
      t.steps.(pid) <- t.steps.(pid) + 1;
      t.total_steps <- t.total_steps + 1;
      activate t pid;
      let won = Location_space.tas t.space loc in
      if
        won && armed > 0
        && Bytes.unsafe_get t.crash_after_win pid = '\001'
        && t.steps.(pid) >= armed
      then begin
        (* after-win crash: the slot is taken in shared memory but the
           process dies before recording the name — the leak the chaos
           layer models *)
        Bytes.unsafe_set t.crashed pid '\001';
        t.crash_count <- t.crash_count + 1;
        retire t pid;
        t.size <- t.size - 1;
        t.ready.(idx) <- t.ready.(t.size)
      end
      else begin
        let a = resume t.st (pid * slots) t.rand pid loc won in
        if a >= 0 then t.pending.(pid) <- a
        else begin
          if a <= -2 then t.names.(pid) <- -2 - a;
          retire t pid;
          t.size <- t.size - 1;
          t.ready.(idx) <- t.ready.(t.size)
        end
      end
    end
  done;
  t.point_contention <- t.max_active

let run_sequential ?(shuffled = true) t =
  let slots = Renaming.Fast_algo.slots t.algo in
  let init = t.algo.Renaming.Fast_algo.init in
  let resume = t.algo.Renaming.Fast_algo.resume in
  (* Same order as [Runner.run_sequential]: a Fisher-Yates permutation
     from the scheduler stream, or pid order. *)
  for i = 0 to t.n - 1 do
    t.order.(i) <- i
  done;
  if shuffled then
    for i = t.n - 1 downto 1 do
      let j = Prng.Flat.int t.rng t.n (i + 1) in
      let tmp = t.order.(i) in
      t.order.(i) <- t.order.(j);
      t.order.(j) <- tmp
    done;
  for k = 0 to t.n - 1 do
    let pid = t.order.(k) in
    let off = pid * slots in
    let a = ref (init t.st off t.rand pid) in
    while !a >= 0 do
      t.steps.(pid) <- t.steps.(pid) + 1;
      t.total_steps <- t.total_steps + 1;
      let won = Location_space.tas t.space !a in
      a := resume t.st off t.rand pid !a won
    done;
    if !a <= -2 then t.names.(pid) <- -2 - !a
  done;
  t.point_contention <- 1

(* Result extraction (allocates; call outside measured loops). *)
let result t =
  let names =
    Array.init t.n (fun pid ->
        let u = t.names.(pid) in
        if u < 0 then None else Some u)
  in
  let steps = Array.copy t.steps in
  let crashed = Array.init t.n (fun pid -> Bytes.get t.crashed pid = '\001') in
  {
    Runner.names;
    steps;
    crashed;
    total_steps = t.total_steps;
    max_steps = Runner.surviving_max steps crashed;
    space_used = Location_space.high_water_mark t.space;
    crash_count = t.crash_count;
    point_contention = t.point_contention;
  }

let space t = t.space
let total_steps t = t.total_steps

(* One-shot conveniences mirroring the [Runner] entry points. *)
let run_once ?max_total_steps ~seed ~n ~algo () =
  let t = create ~algo ~n () in
  reset t ~seed;
  run ?max_total_steps t;
  result t

let run_sequential_once ?shuffled ~seed ~n ~algo () =
  let t = create ~algo ~n () in
  reset t ~seed;
  run_sequential ?shuffled t;
  result t

(* ------------------------------------------------------------------ *)
(* Step-granular control for the systematic explorer.

   [Analysis.Explore] owns the schedule: instead of drawing scheduler
   coins it names the pid to advance at each point, and saves/restores
   the whole core around every DFS branch.  The per-step transition code
   below is the same as the corresponding arms of [run], so an explored
   trace is exactly a trace the sampling scheduler could have produced
   for the same per-pid coin streams. *)

let start t = start_all t
let live_count t = t.size
let live_pid t i = t.ready.(i)
let pending_loc t ~pid = t.pending.(pid)
let steps_of t ~pid = t.steps.(pid)
let is_crashed t ~pid = Bytes.get t.crashed pid = '\001'

let name_of t ~pid =
  let u = t.names.(pid) in
  if u < 0 then None else Some u

let ready_index t pid =
  let rec go i =
    if i >= t.size then
      invalid_arg "Fast_core: pid has no pending operation"
    else if t.ready.(i) = pid then i
    else go (i + 1)
  in
  go 0

let[@inline] remove_ready t idx =
  t.size <- t.size - 1;
  t.ready.(idx) <- t.ready.(t.size)

let step_pid t ~pid =
  let idx = ready_index t pid in
  let loc = t.pending.(pid) in
  t.steps.(pid) <- t.steps.(pid) + 1;
  t.total_steps <- t.total_steps + 1;
  activate t pid;
  let won = Location_space.tas t.space loc in
  let slots = Renaming.Fast_algo.slots t.algo in
  let a = t.algo.Renaming.Fast_algo.resume t.st (pid * slots) t.rand pid loc won in
  if a >= 0 then t.pending.(pid) <- a
  else begin
    if a <= -2 then t.names.(pid) <- -2 - a;
    retire t pid;
    remove_ready t idx
  end

let crash_pid t ~pid =
  let idx = ready_index t pid in
  Bytes.set t.crashed pid '\001';
  t.crash_count <- t.crash_count + 1;
  retire t pid;
  remove_ready t idx

let crash_pid_after_win t ~pid =
  let idx = ready_index t pid in
  let loc = t.pending.(pid) in
  t.steps.(pid) <- t.steps.(pid) + 1;
  t.total_steps <- t.total_steps + 1;
  activate t pid;
  let won = Location_space.tas t.space loc in
  if not won then
    invalid_arg "Fast_core.crash_pid_after_win: the pending TAS would lose";
  Bytes.set t.crashed pid '\001';
  t.crash_count <- t.crash_count + 1;
  retire t pid;
  remove_ready t idx

let restart_pid t ~pid =
  if pid < 0 || pid >= t.n then invalid_arg "Fast_core.restart_pid: bad pid";
  if is_crashed t ~pid then
    invalid_arg "Fast_core.restart_pid: pid crashed";
  (let rec live i = i < t.size && (t.ready.(i) = pid || live (i + 1)) in
   if live 0 then invalid_arg "Fast_core.restart_pid: pid still running");
  t.names.(pid) <- -1;
  let slots = Renaming.Fast_algo.slots t.algo in
  let a = t.algo.Renaming.Fast_algo.init t.st (pid * slots) t.rand pid in
  if a >= 0 then begin
    t.pending.(pid) <- a;
    t.ready.(t.size) <- pid;
    t.size <- t.size + 1
  end
  else begin
    match Renaming.Fast_algo.name_of_action a with
    | Some u -> t.names.(pid) <- u
    | None -> ()
  end

type snap = {
  s_st : int array;
  s_pending : int array;
  s_ready : int array;
  s_names : int array;
  s_steps : int array;
  s_crash_op : int array;
  s_crashed : Bytes.t;
  s_active : Bytes.t;
  s_caw : Bytes.t;
  s_size : int;
  s_total : int;
  s_crash_count : int;
  s_active_count : int;
  s_max_active : int;
  s_pc : int;
  s_streams : int64 array;  (* all n+1 Flat stream states *)
  s_space : Location_space.snap;
}

let snapshot t =
  {
    s_st = Array.copy t.st;
    s_pending = Array.copy t.pending;
    s_ready = Array.copy t.ready;
    s_names = Array.copy t.names;
    s_steps = Array.copy t.steps;
    s_crash_op = Array.copy t.crash_op;
    s_crashed = Bytes.copy t.crashed;
    s_active = Bytes.copy t.active;
    s_caw = Bytes.copy t.crash_after_win;
    s_size = t.size;
    s_total = t.total_steps;
    s_crash_count = t.crash_count;
    s_active_count = t.active_count;
    s_max_active = t.max_active;
    s_pc = t.point_contention;
    s_streams = Array.init (t.n + 1) (Prng.Flat.get_state t.rng);
    s_space = Location_space.save t.space;
  }

let restore t s =
  Array.blit s.s_st 0 t.st 0 (Array.length t.st);
  Array.blit s.s_pending 0 t.pending 0 t.n;
  Array.blit s.s_ready 0 t.ready 0 t.n;
  Array.blit s.s_names 0 t.names 0 t.n;
  Array.blit s.s_steps 0 t.steps 0 t.n;
  Array.blit s.s_crash_op 0 t.crash_op 0 t.n;
  Bytes.blit s.s_crashed 0 t.crashed 0 t.n;
  Bytes.blit s.s_active 0 t.active 0 t.n;
  Bytes.blit s.s_caw 0 t.crash_after_win 0 t.n;
  t.size <- s.s_size;
  t.total_steps <- s.s_total;
  t.crash_count <- s.s_crash_count;
  t.active_count <- s.s_active_count;
  t.max_active <- s.s_max_active;
  t.point_contention <- s.s_pc;
  for i = 0 to t.n do
    Prng.Flat.set_state t.rng i s.s_streams.(i)
  done;
  Location_space.restore t.space s.s_space
