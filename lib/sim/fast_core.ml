(* The allocation-free execution path for oblivious schedules.

   The effects scheduler pays one continuation capture plus a [Waiting]
   cell per shared-memory operation; at n ~ 10^5..10^6 that allocation
   (and the GC work behind it) dominates wall clock.  For the schedules
   the big sweeps actually use — the uniformly random oblivious adversary
   and the sequential solo order — no continuation is needed: a process
   is fully described by the integer state of its [Fast_algo] machine.
   This driver runs those machines with zero heap allocation per step:
   coins live unboxed in a [Prng.Flat] bank, the ready set is a flat
   Fisher-Yates swap array, and the TAS space is a reused
   [Location_space] cleared in place between runs.

   Layout: per-process bookkeeping is structure-of-arrays over unboxed
   [Bigarray.Array1] int lanes (pending location, ready set, names, step
   counts, crash schedule, sequential order) plus flat byte lanes for
   the booleans — one cache-linear lane per field rather than one record
   per process, so the batch loops scan contiguous untagged memory and a
   lane index is a plain machine word.  Only the machine-state lane [st]
   stays an OCaml [int array]: it is the [Fast_algo] transition
   contract, shared with the draw-enumeration explorer.

   Equivalence: [run] reproduces [Runner.run ~adversary:Adversary.random]
   and [run_sequential] reproduces [Runner.run_sequential] decision for
   decision — same per-pid coin streams ([Splitmix.split_at root pid]),
   same scheduler stream (index [n]), same swap-removal of settled
   processes, so results agree bit for bit.  The QCheck suite pins this.

   A handle is reusable: [create] once, then [reset ~seed] + [run] per
   execution, with only [result] (called outside the measured loop)
   allocating. *)

type lane = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let lane n : lane =
  let a = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout n in
  Bigarray.Array1.fill a 0;
  a

let copy_lane (a : lane) : lane =
  let c = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout (Bigarray.Array1.dim a) in
  Bigarray.Array1.blit a c;
  c

type t = {
  algo : Renaming.Fast_algo.t;
  n : int;
  space : Location_space.t;
  rng : Prng.Flat.t;  (* streams 0..n-1 = processes, n = scheduler *)
  rand : Renaming.Fast_algo.rand;  (* the machines' view of [rng] *)
  st : int array;  (* n * slots machine state (Fast_algo contract) *)
  pending : lane;  (* per pid: location of the pending TAS *)
  ready : lane;  (* Fisher-Yates swap array of waiting pids *)
  names : lane;  (* -1 = none *)
  steps : lane;
  crashed : Bytes.t;
  active : Bytes.t;
  order : lane;  (* sequential execution order *)
  crash_op : lane;  (* 0 = unarmed; else 1-based op index *)
  crash_after_win : Bytes.t;
  mutable size : int;  (* live prefix of [ready] *)
  mutable total_steps : int;
  mutable crash_count : int;
  mutable active_count : int;
  mutable max_active : int;
  mutable point_contention : int;
}

let create ?capacity ~algo ~n () =
  if n < 1 then invalid_arg "Fast_core.create: n must be >= 1";
  let rng = Prng.Flat.create (n + 1) in
  {
    algo;
    n;
    space = Location_space.create ?capacity ();
    rng;
    rand = Renaming.Fast_algo.flat_rand rng;
    st = Array.make (n * Renaming.Fast_algo.slots algo) 0;
    pending = lane n;
    ready = lane n;
    names = lane n;
    steps = lane n;
    crashed = Bytes.make n '\000';
    active = Bytes.make n '\000';
    order = lane n;
    crash_op = lane n;
    crash_after_win = Bytes.make n '\000';
    size = 0;
    total_steps = 0;
    crash_count = 0;
    active_count = 0;
    max_active = 0;
    point_contention = 0;
  }

let reset t ~seed =
  Location_space.clear t.space;
  Prng.Flat.reseed t.rng ~seed;
  Bigarray.Array1.fill t.names (-1);
  Bigarray.Array1.fill t.steps 0;
  Bigarray.Array1.fill t.pending (-1);
  Bigarray.Array1.fill t.crash_op 0;
  Bytes.fill t.crashed 0 t.n '\000';
  Bytes.fill t.active 0 t.n '\000';
  Bytes.fill t.crash_after_win 0 t.n '\000';
  t.size <- 0;
  t.total_steps <- 0;
  t.crash_count <- 0;
  t.active_count <- 0;
  t.max_active <- 0;
  t.point_contention <- 0

let arm_crash t ~pid ~op ~after_win =
  if pid < 0 || pid >= t.n then invalid_arg "Fast_core.arm_crash: bad pid";
  if op < 1 then invalid_arg "Fast_core.arm_crash: op must be >= 1";
  Bigarray.Array1.set t.crash_op pid op;
  Bytes.unsafe_set t.crash_after_win pid (if after_win then '\001' else '\000')

let[@inline] activate t pid =
  if Bytes.unsafe_get t.active pid = '\000' then begin
    Bytes.unsafe_set t.active pid '\001';
    t.active_count <- t.active_count + 1;
    if t.active_count > t.max_active then t.max_active <- t.active_count
  end

let[@inline] retire t pid =
  if Bytes.unsafe_get t.active pid = '\001' then begin
    Bytes.unsafe_set t.active pid '\000';
    t.active_count <- t.active_count - 1
  end

(* Start every machine; mirrors [Scheduler.create] running each body up
   to its first pending operation. *)
let start_all t =
  let slots = Renaming.Fast_algo.slots t.algo in
  let init = t.algo.Renaming.Fast_algo.init in
  t.size <- 0;
  for pid = 0 to t.n - 1 do
    let a = init t.st (pid * slots) t.rand pid in
    if a >= 0 then begin
      Bigarray.Array1.unsafe_set t.pending pid a;
      Bigarray.Array1.unsafe_set t.ready t.size pid;
      t.size <- t.size + 1
    end
    else begin
      match Renaming.Fast_algo.name_of_action a with
      | Some u -> Bigarray.Array1.unsafe_set t.names pid u
      | None -> ()
    end
  done

let run ?(max_total_steps = 10_000_000) t =
  start_all t;
  let slots = Renaming.Fast_algo.slots t.algo in
  let resume = t.algo.Renaming.Fast_algo.resume in
  let budget = ref max_total_steps in
  while t.size > 0 do
    if !budget <= 0 then raise Scheduler.Step_limit_exceeded;
    decr budget;
    (* Same decision as [Adversary.random]: uniform index into the
       waiting set, drawn from the scheduler's own stream. *)
    let idx = Prng.Flat.int t.rng t.n t.size in
    let pid = Bigarray.Array1.unsafe_get t.ready idx in
    let armed = Bigarray.Array1.unsafe_get t.crash_op pid in
    if
      armed > 0
      && armed = Bigarray.Array1.unsafe_get t.steps pid + 1
      && Bytes.unsafe_get t.crash_after_win pid = '\000'
    then begin
      (* planned before-op crash: the pending operation never executes *)
      Bytes.unsafe_set t.crashed pid '\001';
      t.crash_count <- t.crash_count + 1;
      retire t pid;
      t.size <- t.size - 1;
      Bigarray.Array1.unsafe_set t.ready idx
        (Bigarray.Array1.unsafe_get t.ready t.size)
    end
    else begin
      let loc = Bigarray.Array1.unsafe_get t.pending pid in
      let steps = Bigarray.Array1.unsafe_get t.steps pid + 1 in
      Bigarray.Array1.unsafe_set t.steps pid steps;
      t.total_steps <- t.total_steps + 1;
      activate t pid;
      let won = Location_space.tas t.space loc in
      if
        won && armed > 0
        && Bytes.unsafe_get t.crash_after_win pid = '\001'
        && steps >= armed
      then begin
        (* after-win crash: the slot is taken in shared memory but the
           process dies before recording the name — the leak the chaos
           layer models *)
        Bytes.unsafe_set t.crashed pid '\001';
        t.crash_count <- t.crash_count + 1;
        retire t pid;
        t.size <- t.size - 1;
        Bigarray.Array1.unsafe_set t.ready idx
          (Bigarray.Array1.unsafe_get t.ready t.size)
      end
      else begin
        let a = resume t.st (pid * slots) t.rand pid loc won in
        if a >= 0 then Bigarray.Array1.unsafe_set t.pending pid a
        else begin
          if a <= -2 then Bigarray.Array1.unsafe_set t.names pid (-2 - a);
          retire t pid;
          t.size <- t.size - 1;
          Bigarray.Array1.unsafe_set t.ready idx
            (Bigarray.Array1.unsafe_get t.ready t.size)
        end
      end
    end
  done;
  t.point_contention <- t.max_active

let run_sequential ?(shuffled = true) t =
  let slots = Renaming.Fast_algo.slots t.algo in
  let init = t.algo.Renaming.Fast_algo.init in
  let resume = t.algo.Renaming.Fast_algo.resume in
  (* Same order as [Runner.run_sequential]: a Fisher-Yates permutation
     from the scheduler stream, or pid order. *)
  for i = 0 to t.n - 1 do
    Bigarray.Array1.unsafe_set t.order i i
  done;
  if shuffled then
    for i = t.n - 1 downto 1 do
      let j = Prng.Flat.int t.rng t.n (i + 1) in
      let tmp = Bigarray.Array1.unsafe_get t.order i in
      Bigarray.Array1.unsafe_set t.order i (Bigarray.Array1.unsafe_get t.order j);
      Bigarray.Array1.unsafe_set t.order j tmp
    done;
  for k = 0 to t.n - 1 do
    let pid = Bigarray.Array1.unsafe_get t.order k in
    let off = pid * slots in
    let a = ref (init t.st off t.rand pid) in
    let steps = ref 0 in
    while !a >= 0 do
      incr steps;
      let won = Location_space.tas t.space !a in
      a := resume t.st off t.rand pid !a won
    done;
    Bigarray.Array1.unsafe_set t.steps pid !steps;
    t.total_steps <- t.total_steps + !steps;
    if !a <= -2 then Bigarray.Array1.unsafe_set t.names pid (-2 - !a)
  done;
  t.point_contention <- 1

(* Result extraction (allocates; call outside measured loops). *)
let result t =
  let names =
    Array.init t.n (fun pid ->
        let u = Bigarray.Array1.get t.names pid in
        if u < 0 then None else Some u)
  in
  let steps = Array.init t.n (Bigarray.Array1.get t.steps) in
  let crashed = Array.init t.n (fun pid -> Bytes.get t.crashed pid = '\001') in
  {
    Runner.names;
    steps;
    crashed;
    total_steps = t.total_steps;
    max_steps = Runner.surviving_max steps crashed;
    space_used = Location_space.high_water_mark t.space;
    crash_count = t.crash_count;
    point_contention = t.point_contention;
  }

let space t = t.space
let total_steps t = t.total_steps

(* One-shot conveniences mirroring the [Runner] entry points. *)
let run_once ?max_total_steps ~seed ~n ~algo () =
  let t = create ~algo ~n () in
  reset t ~seed;
  run ?max_total_steps t;
  result t

let run_sequential_once ?shuffled ~seed ~n ~algo () =
  let t = create ~algo ~n () in
  reset t ~seed;
  run_sequential ?shuffled t;
  result t

(* ------------------------------------------------------------------ *)
(* Streaming sequential execution for very large n.

   [run_sequential ~shuffled:false] still holds O(n) lanes and an
   (n+1)-stream coin bank, which caps it around n ~ 10^7 per gigabyte.
   For the decade sweeps at n = 10^8 only the aggregates matter, and in
   pid order each process runs to completion before the next starts, so
   per-process state can be O(1): one [slots]-int scratch block, one
   coin slot re-derived per pid via [Prng.Flat.seed_stream], and running
   aggregate counters.  The produced execution is bit-identical to
   [run_sequential ~shuffled:false] on the same seed — same per-pid
   streams, same probes, same space — which the QCheck suite pins at
   n up to 10^4.  The loop allocates nothing (mutable fields, no refs),
   so the sweeps' 0 words/op claim survives three more decades of n. *)

type seq = {
  q_algo : Renaming.Fast_algo.t;
  q_space : Location_space.t;
  q_rng : Prng.Flat.t;  (* single slot, re-derived per pid *)
  q_rand : Renaming.Fast_algo.rand;
  q_st : int array;  (* one machine's slots *)
  mutable q_a : int;  (* current action (loop scratch) *)
  mutable q_steps : int;  (* current pid's step count (loop scratch) *)
  mutable q_total : int;
  mutable q_max : int;
  mutable q_named : int;
  mutable q_max_name : int;  (* -1 = none *)
}

let seq_create ?capacity ~algo () =
  let rng = Prng.Flat.create 1 in
  {
    q_algo = algo;
    q_space = Location_space.create ?capacity ();
    q_rng = rng;
    q_rand = Renaming.Fast_algo.fixed_rand (fun _pid bound -> Prng.Flat.int rng 0 bound);
    q_st = Array.make (Renaming.Fast_algo.slots algo) 0;
    q_a = -1;
    q_steps = 0;
    q_total = 0;
    q_max = 0;
    q_named = 0;
    q_max_name = -1;
  }

let seq_run q ~seed ~n =
  if n < 1 then invalid_arg "Fast_core.seq_run: n must be >= 1";
  Location_space.clear q.q_space;
  q.q_total <- 0;
  q.q_max <- 0;
  q.q_named <- 0;
  q.q_max_name <- -1;
  let init = q.q_algo.Renaming.Fast_algo.init in
  let resume = q.q_algo.Renaming.Fast_algo.resume in
  let st = q.q_st in
  let rand = q.q_rand in
  for pid = 0 to n - 1 do
    Prng.Flat.seed_stream q.q_rng ~slot:0 ~seed ~stream:pid;
    q.q_a <- init st 0 rand pid;
    q.q_steps <- 0;
    while q.q_a >= 0 do
      q.q_steps <- q.q_steps + 1;
      let won = Location_space.tas q.q_space q.q_a in
      q.q_a <- resume st 0 rand pid q.q_a won
    done;
    q.q_total <- q.q_total + q.q_steps;
    if q.q_steps > q.q_max then q.q_max <- q.q_steps;
    if q.q_a <= -2 then begin
      q.q_named <- q.q_named + 1;
      let u = -2 - q.q_a in
      if u > q.q_max_name then q.q_max_name <- u
    end
  done

let seq_total_steps q = q.q_total
let seq_max_steps q = q.q_max
let seq_named q = q.q_named
let seq_max_name q = q.q_max_name
let seq_space q = q.q_space
let seq_space_used q = Location_space.high_water_mark q.q_space

(* ------------------------------------------------------------------ *)
(* Step-granular control for the systematic explorer.

   [Analysis.Explore] owns the schedule: instead of drawing scheduler
   coins it names the pid to advance at each point, and saves/restores
   the whole core around every DFS branch.  The per-step transition code
   below is the same as the corresponding arms of [run], so an explored
   trace is exactly a trace the sampling scheduler could have produced
   for the same per-pid coin streams. *)

let start t = start_all t
let live_count t = t.size
let live_pid t i = Bigarray.Array1.get t.ready i
let pending_loc t ~pid = Bigarray.Array1.get t.pending pid
let steps_of t ~pid = Bigarray.Array1.get t.steps pid
let is_crashed t ~pid = Bytes.get t.crashed pid = '\001'

let name_of t ~pid =
  let u = Bigarray.Array1.get t.names pid in
  if u < 0 then None else Some u

let ready_index t pid =
  let rec go i =
    if i >= t.size then
      invalid_arg "Fast_core: pid has no pending operation"
    else if Bigarray.Array1.get t.ready i = pid then i
    else go (i + 1)
  in
  go 0

let[@inline] remove_ready t idx =
  t.size <- t.size - 1;
  Bigarray.Array1.set t.ready idx (Bigarray.Array1.get t.ready t.size)

let step_pid t ~pid =
  let idx = ready_index t pid in
  let loc = Bigarray.Array1.get t.pending pid in
  Bigarray.Array1.set t.steps pid (Bigarray.Array1.get t.steps pid + 1);
  t.total_steps <- t.total_steps + 1;
  activate t pid;
  let won = Location_space.tas t.space loc in
  let slots = Renaming.Fast_algo.slots t.algo in
  let a = t.algo.Renaming.Fast_algo.resume t.st (pid * slots) t.rand pid loc won in
  if a >= 0 then Bigarray.Array1.set t.pending pid a
  else begin
    if a <= -2 then Bigarray.Array1.set t.names pid (-2 - a);
    retire t pid;
    remove_ready t idx
  end

let crash_pid t ~pid =
  let idx = ready_index t pid in
  Bytes.set t.crashed pid '\001';
  t.crash_count <- t.crash_count + 1;
  retire t pid;
  remove_ready t idx

let crash_pid_after_win t ~pid =
  let idx = ready_index t pid in
  let loc = Bigarray.Array1.get t.pending pid in
  Bigarray.Array1.set t.steps pid (Bigarray.Array1.get t.steps pid + 1);
  t.total_steps <- t.total_steps + 1;
  activate t pid;
  let won = Location_space.tas t.space loc in
  if not won then
    invalid_arg "Fast_core.crash_pid_after_win: the pending TAS would lose";
  Bytes.set t.crashed pid '\001';
  t.crash_count <- t.crash_count + 1;
  retire t pid;
  remove_ready t idx

let restart_pid t ~pid =
  if pid < 0 || pid >= t.n then invalid_arg "Fast_core.restart_pid: bad pid";
  if is_crashed t ~pid then
    invalid_arg "Fast_core.restart_pid: pid crashed";
  (let rec live i =
     i < t.size && (Bigarray.Array1.get t.ready i = pid || live (i + 1))
   in
   if live 0 then invalid_arg "Fast_core.restart_pid: pid still running");
  Bigarray.Array1.set t.names pid (-1);
  let slots = Renaming.Fast_algo.slots t.algo in
  let a = t.algo.Renaming.Fast_algo.init t.st (pid * slots) t.rand pid in
  if a >= 0 then begin
    Bigarray.Array1.set t.pending pid a;
    Bigarray.Array1.set t.ready t.size pid;
    t.size <- t.size + 1
  end
  else begin
    match Renaming.Fast_algo.name_of_action a with
    | Some u -> Bigarray.Array1.set t.names pid u
    | None -> ()
  end

type snap = {
  s_st : int array;
  s_pending : lane;
  s_ready : lane;
  s_names : lane;
  s_steps : lane;
  s_crash_op : lane;
  s_crashed : Bytes.t;
  s_active : Bytes.t;
  s_caw : Bytes.t;
  s_size : int;
  s_total : int;
  s_crash_count : int;
  s_active_count : int;
  s_max_active : int;
  s_pc : int;
  s_streams : int64 array;  (* all n+1 Flat stream states *)
  s_space : Location_space.snap;
}

let snapshot t =
  {
    s_st = Array.copy t.st;
    s_pending = copy_lane t.pending;
    s_ready = copy_lane t.ready;
    s_names = copy_lane t.names;
    s_steps = copy_lane t.steps;
    s_crash_op = copy_lane t.crash_op;
    s_crashed = Bytes.copy t.crashed;
    s_active = Bytes.copy t.active;
    s_caw = Bytes.copy t.crash_after_win;
    s_size = t.size;
    s_total = t.total_steps;
    s_crash_count = t.crash_count;
    s_active_count = t.active_count;
    s_max_active = t.max_active;
    s_pc = t.point_contention;
    s_streams = Array.init (t.n + 1) (Prng.Flat.get_state t.rng);
    s_space = Location_space.save t.space;
  }

let restore t s =
  Array.blit s.s_st 0 t.st 0 (Array.length t.st);
  Bigarray.Array1.blit s.s_pending t.pending;
  Bigarray.Array1.blit s.s_ready t.ready;
  Bigarray.Array1.blit s.s_names t.names;
  Bigarray.Array1.blit s.s_steps t.steps;
  Bigarray.Array1.blit s.s_crash_op t.crash_op;
  Bytes.blit s.s_crashed 0 t.crashed 0 t.n;
  Bytes.blit s.s_active 0 t.active 0 t.n;
  Bytes.blit s.s_caw 0 t.crash_after_win 0 t.n;
  t.size <- s.s_size;
  t.total_steps <- s.s_total;
  t.crash_count <- s.s_crash_count;
  t.active_count <- s.s_active_count;
  t.max_active <- s.s_max_active;
  t.point_contention <- s.s_pc;
  for i = 0 to t.n do
    Prng.Flat.set_state t.rng i s.s_streams.(i)
  done;
  Location_space.restore t.space s.s_space
