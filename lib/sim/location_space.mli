(** The simulated shared memory: an unbounded array of test-and-set
    objects.

    Locations are addressed by non-negative integers and start free; the
    first [tas] on a location wins it, every later one loses — the
    hardware TAS semantics the paper assumes (§2).  The space grows on
    demand, which is what lets the adaptive algorithms use the notionally
    unbounded collection [R_1, R_2, ...] without preallocation.

    The space also keeps global counters (probes, wins, high-water mark)
    used by the experiments to report space consumption against the
    paper's [O(n)]-space claims. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] is an all-free space.  [capacity] (default 0) commits a
    dense flat byte per location for locations [0..capacity-1] — the
    preallocated large-n mode: probes below the boundary never grow or
    allocate backing storage, so a measured sweep is regrow-free.
    Locations at or above [capacity] fall back to sparse on-demand
    chunks, as an unbounded space requires. *)

val preallocate : t -> capacity:int -> unit
(** [preallocate t ~capacity] widens the dense prefix to [capacity]
    (no-op if already that wide), preserving the taken/free state of
    every location.  Call outside measured loops. *)

val tas : t -> int -> bool
(** [tas t loc] wins (returns [true]) iff [loc] was free; afterwards [loc]
    is taken.  @raise Invalid_argument on negative [loc]. *)

val release : t -> int -> unit
(** [release t loc] frees a taken location (no-op if already free) —
    the reset operation long-lived renaming needs to return a name to
    the pool.  One shared-memory step, like [tas]. *)

val is_taken : t -> int -> bool
(** Read-only inspection (used by adversaries and assertions, not by
    algorithms — the model has no read operation). *)

val reset : t -> unit
(** Frees every location and zeroes the counters. *)

val clear : t -> unit
(** Like {!reset}, but keeps the backing storage so a reused space stops
    allocating once warm — the benchmark-friendly variant. *)

val probe_count : t -> int
(** Total number of [tas] calls so far — the total step complexity of
    everything run against this space. *)

val win_count : t -> int
(** Number of taken locations. *)

val high_water_mark : t -> int
(** 1 + the largest location ever probed; the space actually used. *)

(** {1 Snapshots}

    O(high-water-mark) structural snapshots, sized for the systematic
    explorer ([Analysis.Explore]) which saves and restores the space on
    every DFS branch: only the occupied prefix of each allocated chunk
    is copied, so tiny configurations snapshot in a few dozen bytes. *)

type snap

val save : t -> snap
(** Capture the taken/free state of every location below the high-water
    mark, plus the counters. *)

val restore : t -> snap -> unit
(** Return the space to exactly the captured state (locations, probes,
    wins, high-water mark). *)
