(* Storage is a two-level chunked bitmap: the adaptive algorithms place
   object R_i at an offset exponential in i, so the index space is huge
   and extremely sparse (a rare probe of R_32 must not allocate 2^33
   cells).  Only 64 KiB chunks that have actually been probed exist. *)

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

type t = {
  mutable chunks : Bytes.t option array;  (* indexed by loc lsr chunk_bits *)
  mutable probes : int;
  mutable wins : int;
  mutable hwm : int;
}

let create ?capacity:_ () =
  { chunks = Array.make 16 None; probes = 0; wins = 0; hwm = 0 }

let chunk_for t loc =
  let ci = loc lsr chunk_bits in
  let top = Array.length t.chunks in
  if ci >= top then begin
    let bigger = Array.make (max (ci + 1) (2 * top)) None in
    Array.blit t.chunks 0 bigger 0 top;
    t.chunks <- bigger
  end;
  match t.chunks.(ci) with
  | Some c -> c
  | None ->
    let c = Bytes.make chunk_size '\000' in
    t.chunks.(ci) <- Some c;
    c

let tas t loc =
  if loc < 0 then invalid_arg "Location_space.tas: negative location";
  let c = chunk_for t loc in
  if loc >= t.hwm then t.hwm <- loc + 1;
  t.probes <- t.probes + 1;
  let off = loc land (chunk_size - 1) in
  if Bytes.get c off = '\000' then begin
    Bytes.set c off '\001';
    t.wins <- t.wins + 1;
    true
  end
  else false

let release t loc =
  if loc < 0 then invalid_arg "Location_space.release: negative location";
  let c = chunk_for t loc in
  if loc >= t.hwm then t.hwm <- loc + 1;
  let off = loc land (chunk_size - 1) in
  if Bytes.get c off = '\001' then begin
    Bytes.set c off '\000';
    t.wins <- t.wins - 1
  end

let is_taken t loc =
  loc >= 0
  &&
  let ci = loc lsr chunk_bits in
  ci < Array.length t.chunks
  &&
  match t.chunks.(ci) with
  | None -> false
  | Some c -> Bytes.get c (loc land (chunk_size - 1)) = '\001'

let reset t =
  Array.iteri
    (fun i -> function
      | Some _ -> t.chunks.(i) <- None
      | None -> ())
    t.chunks;
  t.probes <- 0;
  t.wins <- 0;
  t.hwm <- 0

let clear t =
  (* Like [reset], but keeps the chunk storage: zeroing in place means a
     reused space reaches allocation-free steady state, which the
     benchmark harness relies on when it re-runs a preallocated
     [Fast_core] handle thousands of times. *)
  Array.iter
    (function Some c -> Bytes.fill c 0 chunk_size '\000' | None -> ())
    t.chunks;
  t.probes <- 0;
  t.wins <- 0;
  t.hwm <- 0

let probe_count t = t.probes
let win_count t = t.wins
let high_water_mark t = t.hwm

(* Snapshots copy only the occupied prefix of each allocated chunk (up
   to the high-water mark), so for the tiny spaces the systematic
   explorer drives (hwm of a few dozen cells) a save is a handful of
   bytes, not a 64 KiB memcpy per DFS transition. *)

type snap = {
  s_probes : int;
  s_wins : int;
  s_hwm : int;
  s_prefix : (int * Bytes.t) list;  (* chunk index, occupied prefix *)
}

let save t =
  let pre = ref [] in
  Array.iteri
    (fun ci c ->
      match c with
      | None -> ()
      | Some c ->
        let lo = ci lsl chunk_bits in
        if lo < t.hwm then
          pre := (ci, Bytes.sub c 0 (min chunk_size (t.hwm - lo))) :: !pre)
    t.chunks;
  { s_probes = t.probes; s_wins = t.wins; s_hwm = t.hwm; s_prefix = !pre }

let restore t s =
  (* Zero every cell that may have been touched since (or before) the
     snapshot, then blit the saved prefixes back. *)
  let top = max t.hwm s.s_hwm in
  Array.iteri
    (fun ci c ->
      match c with
      | None -> ()
      | Some c ->
        let lo = ci lsl chunk_bits in
        if lo < top then Bytes.fill c 0 (min chunk_size (top - lo)) '\000')
    t.chunks;
  List.iter
    (fun (ci, pre) ->
      let c = chunk_for t (ci lsl chunk_bits) in
      Bytes.blit pre 0 c 0 (Bytes.length pre))
    s.s_prefix;
  t.probes <- s.s_probes;
  t.wins <- s.s_wins;
  t.hwm <- s.s_hwm
