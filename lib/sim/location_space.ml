(* Storage is a dense preallocated prefix plus a two-level chunked
   bitmap tail.

   The adaptive algorithms place object R_i at an offset exponential in
   i, so the index space is huge and extremely sparse (a rare probe of
   R_32 must not allocate 2^33 cells): locations at or above [dense_len]
   live in 64 KiB chunks that are materialised only when probed.

   The dense prefix is the large-n mode: [create ~capacity] (or
   {!preallocate}) commits a flat byte per location up front, so a
   measured sweep at n = 10^8 never grows the chunk table, never
   allocates a chunk, and never pays the chunk indirection on the hot
   path — every probe below the boundary is one unsafe byte access. *)

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits

type t = {
  mutable dense : Bytes.t;  (* flat storage for locations < dense_len *)
  mutable dense_len : int;
  mutable chunks : Bytes.t option array;  (* indexed by loc lsr chunk_bits *)
  mutable probes : int;
  mutable wins : int;
  mutable hwm : int;
}

let create ?(capacity = 0) () =
  {
    dense = Bytes.make (max capacity 0) '\000';
    dense_len = max capacity 0;
    chunks = Array.make 16 None;
    probes = 0;
    wins = 0;
    hwm = 0;
  }

let chunk_for t loc =
  let ci = loc lsr chunk_bits in
  let top = Array.length t.chunks in
  if ci >= top then begin
    let bigger = Array.make (max (ci + 1) (2 * top)) None in
    Array.blit t.chunks 0 bigger 0 top;
    t.chunks <- bigger
  end;
  match t.chunks.(ci) with
  | Some c -> c
  | None ->
    let c = Bytes.make chunk_size '\000' in
    t.chunks.(ci) <- Some c;
    c

let preallocate t ~capacity =
  if capacity > t.dense_len then begin
    let d = Bytes.make capacity '\000' in
    Bytes.blit t.dense 0 d 0 t.dense_len;
    (* Migrate any already-probed chunk cells into the widened prefix so
       the taken/free state is unchanged, and zero them in the chunk so
       the "chunk bytes below dense_len are free" invariant holds. *)
    Array.iteri
      (fun ci c ->
        match c with
        | None -> ()
        | Some c ->
          let lo = ci lsl chunk_bits in
          let hi = min (lo + chunk_size) capacity in
          if hi > lo then begin
            let len = hi - lo in
            let src = max 0 (t.dense_len - lo) in
            if src < len then begin
              Bytes.blit c src d (lo + src) (len - src);
              Bytes.fill c src (len - src) '\000'
            end
          end)
      t.chunks;
    t.dense <- d;
    t.dense_len <- capacity
  end

let tas t loc =
  if loc < 0 then invalid_arg "Location_space.tas: negative location";
  t.probes <- t.probes + 1;
  if loc >= t.hwm then t.hwm <- loc + 1;
  if loc < t.dense_len then
    if Bytes.unsafe_get t.dense loc = '\000' then begin
      Bytes.unsafe_set t.dense loc '\001';
      t.wins <- t.wins + 1;
      true
    end
    else false
  else begin
    let c = chunk_for t loc in
    let off = loc land (chunk_size - 1) in
    if Bytes.get c off = '\000' then begin
      Bytes.set c off '\001';
      t.wins <- t.wins + 1;
      true
    end
    else false
  end

let release t loc =
  if loc < 0 then invalid_arg "Location_space.release: negative location";
  if loc >= t.hwm then t.hwm <- loc + 1;
  if loc < t.dense_len then begin
    if Bytes.unsafe_get t.dense loc = '\001' then begin
      Bytes.unsafe_set t.dense loc '\000';
      t.wins <- t.wins - 1
    end
  end
  else begin
    let c = chunk_for t loc in
    let off = loc land (chunk_size - 1) in
    if Bytes.get c off = '\001' then begin
      Bytes.set c off '\000';
      t.wins <- t.wins - 1
    end
  end

let is_taken t loc =
  loc >= 0
  &&
  if loc < t.dense_len then Bytes.unsafe_get t.dense loc = '\001'
  else
    let ci = loc lsr chunk_bits in
    ci < Array.length t.chunks
    &&
    match t.chunks.(ci) with
    | None -> false
    | Some c -> Bytes.get c (loc land (chunk_size - 1)) = '\001'

let reset t =
  Bytes.fill t.dense 0 t.dense_len '\000';
  Array.iteri
    (fun i -> function
      | Some _ -> t.chunks.(i) <- None
      | None -> ())
    t.chunks;
  t.probes <- 0;
  t.wins <- 0;
  t.hwm <- 0

let clear t =
  (* Like [reset], but keeps the chunk storage: zeroing in place means a
     reused space reaches allocation-free steady state, which the
     benchmark harness relies on when it re-runs a preallocated
     [Fast_core] handle thousands of times. *)
  Bytes.fill t.dense 0 t.dense_len '\000';
  Array.iter
    (function Some c -> Bytes.fill c 0 chunk_size '\000' | None -> ())
    t.chunks;
  t.probes <- 0;
  t.wins <- 0;
  t.hwm <- 0

let probe_count t = t.probes
let win_count t = t.wins
let high_water_mark t = t.hwm

(* Snapshots copy only the occupied prefix of each storage region (up
   to the high-water mark), so for the tiny spaces the systematic
   explorer drives (hwm of a few dozen cells) a save is a handful of
   bytes, not a 64 KiB memcpy per DFS transition. *)

type snap = {
  s_probes : int;
  s_wins : int;
  s_hwm : int;
  s_dense : Bytes.t;  (* occupied prefix of the dense region *)
  s_prefix : (int * Bytes.t) list;  (* chunk index, occupied prefix *)
}

let save t =
  let pre = ref [] in
  Array.iteri
    (fun ci c ->
      match c with
      | None -> ()
      | Some c ->
        let lo = ci lsl chunk_bits in
        if lo < t.hwm && lo + chunk_size > t.dense_len then
          pre := (ci, Bytes.sub c 0 (min chunk_size (t.hwm - lo))) :: !pre)
    t.chunks;
  {
    s_probes = t.probes;
    s_wins = t.wins;
    s_hwm = t.hwm;
    s_dense = Bytes.sub t.dense 0 (min t.dense_len t.hwm);
    s_prefix = !pre;
  }

let restore t s =
  (* Zero every cell that may have been touched since (or before) the
     snapshot, then blit the saved prefixes back. *)
  let top = max t.hwm s.s_hwm in
  Bytes.fill t.dense 0 (min t.dense_len top) '\000';
  Array.iteri
    (fun ci c ->
      match c with
      | None -> ()
      | Some c ->
        let lo = ci lsl chunk_bits in
        if lo < top then Bytes.fill c 0 (min chunk_size (top - lo)) '\000')
    t.chunks;
  Bytes.blit s.s_dense 0 t.dense 0 (Bytes.length s.s_dense);
  List.iter
    (fun (ci, pre) ->
      let c = chunk_for t (ci lsl chunk_bits) in
      Bytes.blit pre 0 c 0 (Bytes.length pre))
    s.s_prefix;
  t.probes <- s.s_probes;
  t.wins <- s.s_wins;
  t.hwm <- s.s_hwm
