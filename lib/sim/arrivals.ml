let with_arrival_times ~times inner =
  if Array.exists (fun t -> t < 0) times then
    invalid_arg "Arrivals.with_arrival_times: negative arrival time";
  let arrival pid = if pid < Array.length times then times.(pid) else 0 in
  let make ctx =
    let cb = inner.Adversary.make ctx in
    (* Buffered first-wait of processes that have not arrived yet.  Every
       process blocks once before the first pick (the scheduler starts
       all bodies eagerly), so the buffer is complete by then and the
       sorted arrival queue is built exactly once. *)
    let pending_first_wait : (int, int * Adversary.op) Hashtbl.t =
      Hashtbl.create 64
    in
    let queue = ref None in
    (* sorted (time, pid) list, built lazily *)
    let arrived = Dynset.create () in
    let arrived_waiting = Dynset.create () in
    let clock = ref 0 in
    let sorted_queue () =
      match !queue with
      | Some q -> q
      | None ->
        let l = List.of_seq (Hashtbl.to_seq_keys pending_first_wait) in
        let q =
          List.sort
            (fun a b ->
              let c = Int.compare (arrival a) (arrival b) in
              if c <> 0 then c else Int.compare a b)
            l
        in
        queue := Some q;
        q
    in
    let deliver pid =
      match Hashtbl.find_opt pending_first_wait pid with
      | None -> () (* settled (crashed) before arriving *)
      | Some (loc, op) ->
        Hashtbl.remove pending_first_wait pid;
        Dynset.add arrived pid;
        Dynset.add arrived_waiting pid;
        cb.Adversary.on_wait ~pid ~loc ~op
    in
    let rec flush ~now =
      match sorted_queue () with
      | pid :: rest when arrival pid <= now ->
        queue := Some rest;
        deliver pid;
        flush ~now
      | _ -> ()
    in
    let on_wait ~pid ~loc ~op =
      if Dynset.mem arrived pid || arrival pid <= !clock then begin
        Dynset.add arrived pid;
        Dynset.add arrived_waiting pid;
        cb.Adversary.on_wait ~pid ~loc ~op
      end
      else begin
        Hashtbl.replace pending_first_wait pid (loc, op);
        queue := None
      end
    in
    let on_settle ~pid =
      if Dynset.mem arrived pid then begin
        Dynset.remove arrived_waiting pid;
        cb.Adversary.on_settle ~pid
      end
      else Hashtbl.remove pending_first_wait pid
    in
    let pick () =
      flush ~now:!clock;
      if Dynset.is_empty arrived_waiting then begin
        (* idle: jump the clock to the next arrival *)
        match sorted_queue () with
        | [] -> invalid_arg "Arrivals: no process left to schedule"
        | pid :: _ ->
          clock := max !clock (arrival pid);
          flush ~now:!clock
      end;
      incr clock;
      (* each pick executes one operation *)
      cb.Adversary.pick ()
    in
    { Adversary.on_wait; on_tas = cb.Adversary.on_tas; on_settle; pick }
  in
  { Adversary.name = inner.Adversary.name ^ "+arrivals"; make }

(* Arrival times below are pure functions of the pid; a generous table
   keeps the implementation shared with [with_arrival_times] (pids past
   the table arrive at time 0, which these patterns never rely on for
   realistic process counts). *)
let pattern_table f = Array.init 65536 f

let staggered ~interval inner =
  if interval < 0 then invalid_arg "Arrivals.staggered: negative interval";
  let wrapped =
    with_arrival_times ~times:(pattern_table (fun pid -> pid * interval)) inner
  in
  { wrapped with Adversary.name = inner.Adversary.name ^ "+staggered" }

let bursts ~size ~gap inner =
  if size < 1 then invalid_arg "Arrivals.bursts: size must be >= 1";
  if gap < 0 then invalid_arg "Arrivals.bursts: negative gap";
  let wrapped =
    with_arrival_times ~times:(pattern_table (fun pid -> pid / size * gap)) inner
  in
  { wrapped with Adversary.name = inner.Adversary.name ^ "+bursts" }
