(** Zero-allocation execution of {!Renaming.Fast_algo} machines.

    The direct-style fast path for oblivious schedules: where the effects
    scheduler allocates a continuation and a waiting cell per
    shared-memory operation, this driver executes explicit integer state
    machines with no heap allocation per step — unboxed SplitMix64
    streams ({!Prng.Flat}), a flat Fisher-Yates ready array, and an
    in-place-cleared {!Location_space}.

    {b Equivalence}: with the same [seed], [n] and algorithm, {!run}
    produces a result identical field-for-field to
    [Runner.run ~adversary:Adversary.random], and {!run_sequential} to
    [Runner.run_sequential] — the per-pid coin streams, the scheduler's
    picks and the settle bookkeeping replay the effects path decision for
    decision.  Adversaries other than the uniform oblivious one are not
    expressible here; use the effects substrate for those runs.

    Handles are reusable so benchmarks can measure steady state:
    [create] preallocates everything for [(algo, n)]; each execution is
    [reset ~seed] followed by {!run} or {!run_sequential}, neither of
    which allocates; {!result} (which does allocate) extracts the
    outcome. *)

type t

val create : ?capacity:int -> algo:Renaming.Fast_algo.t -> n:int -> unit -> t
(** Preallocate a handle for [n] processes running [algo].  Per-process
    bookkeeping is laid out structure-of-arrays over unboxed
    [Bigarray.Array1] int lanes.  [capacity] dense-preallocates the
    location space ({!Location_space.create}), so a measured run never
    grows shared-memory storage.
    @raise Invalid_argument if [n < 1]. *)

val reset : t -> seed:int -> unit
(** Re-seed and clear the handle for a fresh execution; allocation-free
    once the location space is warm.  Also disarms planned crashes. *)

val arm_crash : t -> pid:int -> op:int -> after_win:bool -> unit
(** Arm a planned fail-stop for [pid] at its [op]-th operation (1-based,
    counted over its own steps), for crash-edge testing against
    {!Chaos.Fault_plan} schedules.  With [after_win = false] the process
    crashes instead of executing its [op]-th operation — expressible on
    the effects substrate as {!Adversary.with_planned_crashes}, so
    results stay comparable.  With [after_win = true] it executes
    operations normally and dies immediately after its first TAS win at
    or beyond [op]: the slot stays taken but no surviving process holds
    the name (the §2 leak).  Call after {!reset}. *)

val run : ?max_total_steps:int -> t -> unit
(** Execute under the uniformly random oblivious schedule.
    @raise Scheduler.Step_limit_exceeded past [max_total_steps]
    (default 10M), like the effects path. *)

val run_sequential : ?shuffled:bool -> t -> unit
(** Execute processes to completion one at a time, in a seeded random
    order ([shuffled], default [true]) or pid order. *)

val result : t -> Runner.result
(** Extract the outcome of the last execution (allocates fresh arrays —
    keep outside measured loops). *)

val space : t -> Location_space.t
val total_steps : t -> int

(** {1 One-shot conveniences} *)

val run_once :
  ?max_total_steps:int ->
  seed:int ->
  n:int ->
  algo:Renaming.Fast_algo.t ->
  unit ->
  Runner.result

val run_sequential_once :
  ?shuffled:bool ->
  seed:int ->
  n:int ->
  algo:Renaming.Fast_algo.t ->
  unit ->
  Runner.result

(** {1 Streaming sequential execution for very large n}

    {!run_sequential} holds O(n) lanes plus an (n+1)-stream coin bank;
    fine to n ~ 10^6, wasteful at 10^8.  In unshuffled sequential order
    each process runs to completion before the next starts, so a
    streaming driver needs only O(1) per-process state: one scratch
    machine-state block, a single coin slot re-derived per pid
    ({!Prng.Flat.seed_stream}), and running aggregates.  [seq_run] is
    bit-identical to [run_sequential ~shuffled:false] with the same
    [seed]/[n]/[algo] — same coin streams, same probe sequence, same
    high-water mark — it just does not retain per-pid results.  The
    execution loop allocates nothing, preserving the 0 words/op claim
    for the large-n sweeps. *)

type seq
(** A reusable streaming handle: create once per (algo, capacity), then
    [seq_run] per trial; only creation allocates. *)

val seq_create : ?capacity:int -> algo:Renaming.Fast_algo.t -> unit -> seq
(** [capacity] dense-preallocates the location space — recommended for
    the bounded-namespace algorithms (e.g. [2n] cells for ReBatching) so
    the measured loop never materialises a chunk. *)

val seq_run : seq -> seed:int -> n:int -> unit
(** Execute [n] processes in pid order; allocation-free.
    @raise Invalid_argument if [n < 1]. *)

val seq_total_steps : seq -> int
val seq_max_steps : seq -> int

val seq_named : seq -> int
(** Number of processes that finished holding a name. *)

val seq_max_name : seq -> int
(** Largest name acquired, or [-1] if none. *)

val seq_space_used : seq -> int
(** High-water mark of the space — the namespace actually consumed. *)

val seq_space : seq -> Location_space.t

(** {1 Step-granular control}

    The hooks the systematic explorer ([Analysis.Explore]) drives: the
    caller owns the schedule, naming which pid advances at each choice
    point, and can snapshot/restore the whole core around DFS branches.
    A step performed through {!step_pid} executes exactly the transition
    the sampling scheduler in {!run} would have performed had its coin
    picked that pid, so every explored trace is a genuine trace of the
    simulated system for the same per-pid coin streams.

    Usage: [reset ~seed] then {!start}, then interleave {!step_pid} /
    {!crash_pid} / {!crash_pid_after_win} / {!restart_pid} on live pids
    (those with a pending operation, enumerated by {!live_count} and
    {!live_pid}); {!result} works as usual once no pid is live. *)

val start : t -> unit
(** Run every machine up to its first pending operation (the step-wise
    counterpart of the prologue of {!run}).  Call after [reset]. *)

val live_count : t -> int
(** Number of pids with a pending operation. *)

val live_pid : t -> int -> int
(** [live_pid t i] — the [i]-th live pid, [0 <= i < live_count t].  The
    order is internal (Fisher-Yates swap array); enumerate, don't rely
    on it. *)

val pending_loc : t -> pid:int -> int
(** Location of [pid]'s pending TAS.  Meaningful only for live pids. *)

val steps_of : t -> pid:int -> int
val is_crashed : t -> pid:int -> bool

val name_of : t -> pid:int -> int option
(** The name [pid] currently holds, if any. *)

val step_pid : t -> pid:int -> unit
(** Execute [pid]'s pending TAS and advance its machine.
    @raise Invalid_argument if [pid] is not live. *)

val crash_pid : t -> pid:int -> unit
(** Fail-stop [pid] before its pending operation executes. *)

val crash_pid_after_win : t -> pid:int -> unit
(** Execute [pid]'s pending TAS — which must win — and fail-stop the
    process before it records the name: the §2 after-win slot leak.
    @raise Invalid_argument if [pid] is not live or the TAS would lose
    (callers should offer this choice point only on free locations). *)

val restart_pid : t -> pid:int -> unit
(** Re-initialise a settled, non-crashed [pid] for another acquisition
    round (long-lived renaming): clears its name and runs [init] again
    on the continuation of its coin stream.
    @raise Invalid_argument if [pid] is live or crashed. *)

type snap
(** A full structural snapshot of a handle: machine states, pending
    operations, ready set, names, step counts, crash bookkeeping, all
    SplitMix64 stream positions and the location space (O(n + hwm)). *)

val snapshot : t -> snap
val restore : t -> snap -> unit
