(** High-level entry points: run a renaming algorithm on the simulator.

    A run is fully determined by [(seed, n, adversary, algo)]: process
    coins come from per-pid SplitMix64 streams split from the seed, and
    the adversary's randomness from a disjoint stream.  Experiments
    therefore cite seeds, and every table row can be regenerated
    exactly. *)

type result = {
  names : int option array;  (** per pid; [None] for crashed processes *)
  steps : int array;  (** TAS operations executed, per pid *)
  crashed : bool array;
  total_steps : int;  (** = sum of [steps] — the paper's total step complexity *)
  max_steps : int;
      (** max over surviving processes — the paper's individual step
          complexity of the execution *)
  space_used : int;  (** high-water mark of touched locations *)
  crash_count : int;
  point_contention : int;
      (** max simultaneously active processes ({!Scheduler.max_point_contention});
          [1] for sequential runs by construction *)
}

val run :
  ?adversary:Adversary.t ->
  ?on_event:(pid:int -> Renaming.Events.t -> unit) ->
  ?max_total_steps:int ->
  ?capacity:int ->
  seed:int ->
  n:int ->
  algo:(Renaming.Env.t -> int option) ->
  unit ->
  result
(** [run ~seed ~n ~algo ()] executes [n] concurrent copies of [algo]
    under [adversary] (default {!Adversary.random}) with full
    adversarial interleaving via the effect scheduler.

    @raise Scheduler.Step_limit_exceeded if [max_total_steps] (default
    10M) TAS operations are executed without quiescing. *)

val run_sequential :
  ?shuffled:bool ->
  ?on_event:(pid:int -> Renaming.Events.t -> unit) ->
  ?capacity:int ->
  seed:int ->
  n:int ->
  algo:(Renaming.Env.t -> int option) ->
  unit ->
  result
(** [run_sequential ~seed ~n ~algo ()] runs each process to completion,
    one after another (in random order if [shuffled], default true; pid
    order otherwise), without the effect machinery.  This is the
    solo-schedule instance of the model — orders of magnitude faster, so
    the huge-[n] sweeps use it.  Since the paper's w.h.p. bounds hold for
    {i every} schedule, measurements under this schedule are valid lower
    anchors, and experiment T7 quantifies the gap to adversarial
    schedules. *)

val surviving_max : int array -> bool array -> int
(** [surviving_max steps crashed] is the largest step count among
    non-crashed processes — the reduction both this module and
    {!Fast_core} use to fill [result.max_steps]. *)

val check_unique_names : result -> bool
(** [check_unique_names r] verifies the fundamental safety property: all
    names of non-crashed processes are pairwise distinct and every
    non-crashed process has one. *)

val max_name : result -> int
(** Largest assigned name ([-1] if none) — checked against the
    namespace-size claims. *)
