(** Allocation-free state-machine encodings of the renaming algorithms.

    The closure-over-{!Env.t} implementations in this library are the
    reference semantics, but running them under the effects scheduler
    costs a heap-allocated continuation per shared-memory operation.  A
    {!t} is the same algorithm re-expressed as an explicit integer
    machine: control state lives in a caller-provided flat [int array]
    ([slots] ints per process), coins come from a {!Prng.Flat} stream
    bank (stream = pid), and each transition returns the next action as
    a plain int.  [Sim.Fast_core] drives these machines with zero heap
    allocation per simulated step.

    {b Equivalence contract}: every encoding draws from its stream in
    exactly the order the closure implementation calls
    [env.random_int] and probes exactly the same locations.  Given the
    per-pid streams [Splitmix.split_at root pid] on both sides, the fast
    and effects substrates therefore produce identical names, step
    counts and namespace maxima — the property pinned by the QCheck
    cross-substrate suite in [test/test_fast_core.ml].

    {b Action encoding}: [a >= 0] — perform TAS on location [a] and call
    [resume] with the outcome; [a = -1] — the process finished without a
    name; [a <= -2] — finished with name [-2 - a] (see
    {!name_of_action}). *)

type rand = { draw : int -> int -> int }
(** The machines' only source of randomness: [draw pid bound] is uniform
    on [0, bound).  Keeping the draw behind a record makes every coin an
    injectable input: the fast core supplies {!flat_rand} (the
    allocation-free SplitMix64 bank), while the systematic-exploration
    engine ([Analysis.Explore]) can substitute recorded, swept or even
    adversarially chosen draw sequences — the per-decision enumeration
    hook the model checker needs. *)

val flat_rand : Prng.Flat.t -> rand
(** [flat_rand bank] draws from stream [pid] of [bank] — bit-identical
    to the [Prng.Flat.int] calls the machines made before the draws were
    made injectable, so the cross-substrate equivalence contract is
    unchanged. *)

val fixed_rand : (int -> int -> int) -> rand
(** Wrap an arbitrary draw function (tests, draw enumeration).  The
    function receives [pid] and [bound] and must return a value in
    [0, bound). *)

type t = {
  label : string;
  slots : int;  (** ints of per-process state the driver must provide *)
  init : int array -> int -> rand -> int -> int;
      (** [init st off rng pid]: first action; state in
          [st.(off .. off+slots-1)] *)
  resume : int array -> int -> rand -> int -> int -> bool -> int;
      (** [resume st off rng pid loc won]: next action after the TAS on
          [loc] returned [won] *)
}

val label : t -> string
val slots : t -> int

val finished_none : int
(** The "finished without a name" action ([-1]). *)

val finished : int -> int
(** [finished u] — the "finished with name [u]" action ([-2 - u]). *)

val pending : int -> bool
(** [pending a] — the action requests a TAS (is [>= 0]). *)

val name_of_action : int -> int option
(** The name carried by a finish action, if any. *)

(** {1 Paper algorithms} *)

val rebatching : ?backup:bool -> ?on_backup:(unit -> unit) -> Rebatching.t -> t
(** Machine for {!Rebatching.get_name} on the given instance.  [backup]
    as in the closure version (default [true]); [on_backup] fires once
    each time a process enters the backup scan — the fast substrate's
    replacement for the [Events.Backup_entered] instrumentation. *)

val adaptive : Object_space.t -> t
(** Machine for {!Adaptive_rebatching.get_name} (race + binary-search
    crunch, §5.1). *)

val fast_adaptive : Object_space.t -> t
(** Machine for {!Fast_adaptive_rebatching.get_name} (Figure 2); the
    recursive Search runs on an explicit bounded stack inside the state
    array.  @raise Invalid_argument unless the space uses [epsilon = 1]. *)

(** {1 Baselines} *)

val uniform : m:int -> max_steps:int -> t
(** [Baselines.Uniform_probe.get_name]. *)

val linear_scan : m:int -> t
val cyclic_scan : m:int -> t

val adaptive_doubling : ?probes_per_level:int -> Object_space.t -> t
(** [Baselines.Adaptive_doubling.get_name]. *)
