(* Direct-style integer state machines for the renaming algorithms.

   Each encoding here is a transcription of the corresponding
   closure-over-[Env.t] implementation into an explicit machine: the
   per-process control state lives in a caller-provided flat int array,
   randomness comes from a [Prng.Flat] stream bank, and the machine
   communicates with its driver ([Sim.Fast_core]) one shared-memory
   operation at a time through plain ints.  The contract that makes the
   cross-substrate equivalence property hold is strict: every machine
   draws from its stream in {e exactly} the order the closure
   implementation calls [env.random_int], and performs TAS operations on
   exactly the same locations — so for equal seeds the two substrates
   produce identical names, step counts and space usage, which the QCheck
   suite pins.

   Action encoding (see the .mli): [a >= 0] requests TAS on location [a];
   [a = -1] is "finished, no name"; [a <= -2] is "finished with name
   [-2 - a]". *)

type rand = { draw : int -> int -> int }

let flat_rand bank = { draw = (fun pid bound -> Prng.Flat.int bank pid bound) }
let fixed_rand f = { draw = f }

type t = {
  label : string;
  slots : int;
  init : int array -> int -> rand -> int -> int;
  resume : int array -> int -> rand -> int -> int -> bool -> int;
}

let finished_none = -1
let[@inline] finished u = -2 - u
let[@inline] pending a = a >= 0
let name_of_action a = if a <= -2 then Some (-2 - a) else None

let label t = t.label
let slots t = t.slots

(* ------------------------------------------------------------------ *)
(* ReBatching (§4).  State: st.(off) = batch index, or kappa+1 once the
   machine is in the backup scan; st.(off+1) = probe index within the
   batch.  Draw order matches [Rebatching.get_name]: one uniform draw on
   the batch size immediately before each TAS; the backup scan draws
   nothing. *)

let rebatching ?(backup = true) ?on_backup (r : Rebatching.t) =
  let kappa = Rebatching.kappa r in
  let sizes = Array.init (kappa + 1) (Rebatching.batch_size r) in
  let offsets = Array.init (kappa + 1) (Rebatching.batch_offset r) in
  let probes = Array.init (kappa + 1) (Rebatching.probe_budget r) in
  let base = Rebatching.base r in
  let m = Rebatching.size r in
  let backup_mode = kappa + 1 in
  (* Batches are never empty ([Rebatching.make] shrinks kappa instead),
     so entering a batch always yields a probe. *)
  let enter_batch st off rng pid i =
    st.(off) <- i;
    st.(off + 1) <- 1;
    offsets.(i) + rng.draw pid sizes.(i)
  in
  let next_batch st off rng pid i =
    if i <= kappa then enter_batch st off rng pid i
    else if backup then begin
      (match on_backup with None -> () | Some f -> f ());
      st.(off) <- backup_mode;
      base
    end
    else finished_none
  in
  let init st off rng pid = enter_batch st off rng pid 0 in
  let resume st off rng pid loc won =
    if won then finished loc
    else begin
      let i = st.(off) in
      if i <= kappa then begin
        let j = st.(off + 1) + 1 in
        if j <= probes.(i) then begin
          st.(off + 1) <- j;
          offsets.(i) + rng.draw pid sizes.(i)
        end
        else next_batch st off rng pid (i + 1)
      end
      else if loc + 1 < base + m then loc + 1
      else finished_none
    end
  in
  { label = "rebatching"; slots = 2; init; resume }

(* ------------------------------------------------------------------ *)
(* Shared geometry tables for the adaptive machines: per object index
   1..cap, the batch sizes/offsets/budgets and the namespace interval.
   Precomputed so the step path does no option matching or float math. *)

type geometry = {
  cap : int;
  okappa : int array;
  osizes : int array array;
  ooffsets : int array array;
  oprobes : int array array;
  nm_lo : int array;  (* first name of R_i *)
  nm_hi : int array;  (* one past the last name of R_i *)
}

let geometry_of (space : Object_space.t) =
  let cap = Object_space.cap space in
  let okappa = Array.make (cap + 1) 0 in
  let osizes = Array.make (cap + 1) [||] in
  let ooffsets = Array.make (cap + 1) [||] in
  let oprobes = Array.make (cap + 1) [||] in
  let nm_lo = Array.make (cap + 1) 0 in
  let nm_hi = Array.make (cap + 1) 0 in
  for i = 1 to cap do
    let r = Object_space.obj space i in
    let k = Rebatching.kappa r in
    okappa.(i) <- k;
    osizes.(i) <- Array.init (k + 1) (Rebatching.batch_size r);
    ooffsets.(i) <- Array.init (k + 1) (Rebatching.batch_offset r);
    oprobes.(i) <- Array.init (k + 1) (Rebatching.probe_budget r);
    nm_lo.(i) <- Rebatching.base r;
    nm_hi.(i) <- Rebatching.base r + Rebatching.size r
  done;
  { cap; okappa; osizes; ooffsets; oprobes; nm_lo; nm_hi }

let[@inline] in_obj g i name = name >= g.nm_lo.(i) && name < g.nm_hi.(i)

(* ------------------------------------------------------------------ *)
(* AdaptiveReBatching (§5.1): race up powers of two with full
   backup-free GetName calls, then binary-search the winning interval.
   State: st.(off) = phase (0 race / 1 crunch), +1 = l, +2 = a, +3 = b,
   +4 = held name, +5 = current object, +6 = batch, +7 = probe. *)

let adaptive (space : Object_space.t) =
  let g = geometry_of space in
  let start_obj st off rng pid d =
    st.(off + 5) <- d;
    st.(off + 6) <- 0;
    st.(off + 7) <- 1;
    g.ooffsets.(d).(0) + rng.draw pid g.osizes.(d).(0)
  in
  let init st off rng pid =
    st.(off) <- 0;
    st.(off + 1) <- 0;
    start_obj st off rng pid 1
  in
  let resume st off rng pid loc won =
    let d = st.(off + 5) in
    if won then begin
      if st.(off) = 0 then begin
        (* race success at level l *)
        let l = st.(off + 1) in
        if l = 0 then finished loc
        else begin
          let a = (1 lsl (l - 1)) + 1 and b = 1 lsl l in
          if a >= b then finished loc
          else begin
            st.(off) <- 1;
            st.(off + 2) <- a;
            st.(off + 3) <- b;
            st.(off + 4) <- loc;
            start_obj st off rng pid ((a + b) / 2)
          end
        end
      end
      else begin
        (* crunch hit at midpoint d: lower b, supersede the name *)
        let a = st.(off + 2) in
        st.(off + 3) <- d;
        st.(off + 4) <- loc;
        if a >= d then finished loc
        else start_obj st off rng pid ((a + d) / 2)
      end
    end
    else begin
      (* advance inside object d: next probe, next batch, or give up *)
      let i = st.(off + 6) in
      let j = st.(off + 7) + 1 in
      if j <= g.oprobes.(d).(i) then begin
        st.(off + 7) <- j;
        g.ooffsets.(d).(i) + rng.draw pid g.osizes.(d).(i)
      end
      else if i + 1 <= g.okappa.(d) then begin
        st.(off + 6) <- i + 1;
        st.(off + 7) <- 1;
        g.ooffsets.(d).(i + 1) + rng.draw pid g.osizes.(d).(i + 1)
      end
      else if st.(off) = 0 then begin
        (* race: R_{2^l} failed, try the next level *)
        let l = st.(off + 1) + 1 in
        let idx = 1 lsl l in
        if idx > g.cap then finished_none
        else begin
          st.(off + 1) <- l;
          start_obj st off rng pid idx
        end
      end
      else begin
        (* crunch miss at midpoint d: raise a *)
        let a = d + 1 and b = st.(off + 3) in
        st.(off + 2) <- a;
        if a >= b then finished st.(off + 4)
        else start_obj st off rng pid ((a + b) / 2)
      end
    end
  in
  { label = "adaptive"; slots = 8; init; resume }

(* ------------------------------------------------------------------ *)
(* FastAdaptiveReBatching (Figure 2).  The recursive Search is run on an
   explicit per-process stack of (a, b, t) frames; object indices are
   bounded by [Object_space.max_index], so the recursion depth is at most
   ~log2 60 and [stack_frames] is far beyond reach.  State: st.(off) =
   mode (0 race / 1 search), +1 = l, +2 = u, +3 = a, +4 = b, +5 = t,
   +6 = probe j, +7 = stack pointer, +8.. = frames. *)

let fa_stack_frames = 16
let fa_header = 8

let fast_adaptive (space : Object_space.t) =
  let g = geometry_of space in
  (if g.cap >= 1 then begin
     let r1 = Object_space.obj space 1 in
     if Rebatching.epsilon r1 <> 1.0 then
       invalid_arg "Fast_algo.fast_adaptive: object space must use epsilon = 1"
   end);
  let draw st off rng pid a t =
    st.(off + 6) <- 1;
    g.ooffsets.(a).(t) + rng.draw pid g.osizes.(a).(t)
  in
  (* Mutual recursion over pure control transfers; every path ends in a
     draw or a finish, and the depth is bounded by the explicit stack. *)
  let rec enter_search st off rng pid a b t =
    if t > g.okappa.(a) then search_return st off rng pid st.(off + 2)
    else begin
      st.(off) <- 1;
      st.(off + 3) <- a;
      st.(off + 4) <- b;
      st.(off + 5) <- t;
      draw st off rng pid a t
    end
  and search_return st off rng pid u =
    st.(off + 2) <- u;
    let sp = st.(off + 7) in
    if sp > 0 then begin
      let fr = off + fa_header + (3 * (sp - 1)) in
      st.(off + 7) <- sp - 1;
      let a = st.(fr) and b = st.(fr + 1) and t = st.(fr + 2) in
      let d = (a + b + 1) / 2 in
      if in_obj g d u then enter_search st off rng pid a d (t + 1)
      else search_return st off rng pid u
    end
    else begin
      let l = st.(off + 1) - 1 in
      st.(off + 1) <- l;
      crunch_step st off rng pid l u
    end
  and crunch_step st off rng pid l u =
    if l >= 1 && in_obj g (1 lsl l) u then
      enter_search st off rng pid (1 lsl (l - 1)) (1 lsl l) 1
    else finished u
  in
  let init st off rng pid =
    st.(off) <- 0;
    st.(off + 1) <- 0;
    st.(off + 2) <- -1;
    st.(off + 7) <- 0;
    draw st off rng pid 1 0
  in
  let resume st off rng pid loc won =
    if st.(off) = 0 then begin
      (* race: probing batch 0 of R_{2^l} *)
      let l = st.(off + 1) in
      let idx = 1 lsl l in
      if won then begin
        st.(off + 2) <- loc;
        crunch_step st off rng pid l loc
      end
      else begin
        let j = st.(off + 6) + 1 in
        if j <= g.oprobes.(idx).(0) then begin
          st.(off + 6) <- j;
          g.ooffsets.(idx).(0) + rng.draw pid g.osizes.(idx).(0)
        end
        else begin
          let l = l + 1 in
          let idx = 1 lsl l in
          if idx > g.cap then finished_none
          else begin
            st.(off + 1) <- l;
            draw st off rng pid idx 0
          end
        end
      end
    end
    else begin
      (* search: probing batch t of R_a *)
      let a = st.(off + 3) and b = st.(off + 4) and t = st.(off + 5) in
      if won then search_return st off rng pid loc
      else begin
        let j = st.(off + 6) + 1 in
        if j <= g.oprobes.(a).(t) then begin
          st.(off + 6) <- j;
          g.ooffsets.(a).(t) + rng.draw pid g.osizes.(a).(t)
        end
        else begin
          let d = (a + b + 1) / 2 in
          if d < b then begin
            let sp = st.(off + 7) in
            if sp >= fa_stack_frames then
              invalid_arg "Fast_algo.fast_adaptive: search stack overflow";
            let fr = off + fa_header + (3 * sp) in
            st.(fr) <- a;
            st.(fr + 1) <- b;
            st.(fr + 2) <- t;
            st.(off + 7) <- sp + 1;
            enter_search st off rng pid d b 0
          end
          else begin
            let u = st.(off + 2) in
            if in_obj g d u then enter_search st off rng pid a d (t + 1)
            else search_return st off rng pid u
          end
        end
      end
    end
  in
  {
    label = "fast-adaptive";
    slots = fa_header + (3 * fa_stack_frames);
    init;
    resume;
  }

(* ------------------------------------------------------------------ *)
(* Baselines, for the comparison sweeps. *)

let uniform ~m ~max_steps =
  if m < 1 then invalid_arg "Fast_algo.uniform: m must be >= 1";
  if max_steps < 1 then invalid_arg "Fast_algo.uniform: max_steps must be >= 1";
  let init st off rng pid =
    st.(off) <- 1;
    rng.draw pid m
  in
  let resume st off rng pid loc won =
    if won then finished loc
    else begin
      let s = st.(off) + 1 in
      if s > max_steps then finished_none
      else begin
        st.(off) <- s;
        rng.draw pid m
      end
    end
  in
  { label = "uniform"; slots = 1; init; resume }

let linear_scan ~m =
  if m < 1 then invalid_arg "Fast_algo.linear_scan: m must be >= 1";
  let init _st _off _rng _pid = 0 in
  let resume _st _off _rng _pid loc won =
    if won then finished loc else if loc + 1 >= m then finished_none else loc + 1
  in
  { label = "linear-scan"; slots = 1; init; resume }

let cyclic_scan ~m =
  if m < 1 then invalid_arg "Fast_algo.cyclic_scan: m must be >= 1";
  let init st off rng pid =
    let start = rng.draw pid m in
    st.(off) <- start;
    st.(off + 1) <- 0;
    start
  in
  let resume st off _rng _pid loc won =
    if won then finished loc
    else begin
      let i = st.(off + 1) + 1 in
      if i >= m then finished_none
      else begin
        st.(off + 1) <- i;
        (st.(off) + i) mod m
      end
    end
  in
  { label = "cyclic-scan"; slots = 2; init; resume }

let adaptive_doubling ?(probes_per_level = 4) (space : Object_space.t) =
  if probes_per_level < 1 then
    invalid_arg "Fast_algo.adaptive_doubling: probes_per_level must be >= 1";
  let g = geometry_of space in
  let draw rng pid i =
    g.nm_lo.(i) + rng.draw pid (g.nm_hi.(i) - g.nm_lo.(i))
  in
  let init st off rng pid =
    st.(off) <- 1;
    st.(off + 1) <- 1;
    draw rng pid 1
  in
  let resume st off rng pid loc won =
    if won then finished loc
    else begin
      let j = st.(off + 1) + 1 in
      if j <= probes_per_level then begin
        st.(off + 1) <- j;
        draw rng pid st.(off)
      end
      else begin
        let i = st.(off) + 1 in
        if i > g.cap then finished_none
        else begin
          st.(off) <- i;
          st.(off + 1) <- 1;
          draw rng pid i
        end
      end
    end
  in
  { label = "doubling"; slots = 2; init; resume }
