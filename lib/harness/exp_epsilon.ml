let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 4096 in
  let table =
    Table.create
      ~columns:
        [
          ("epsilon", Table.Right);
          ("m/n", Table.Right);
          ("paper t0", Table.Right);
          ("max steps", Table.Right);
          ("total/n", Table.Right);
          ("backups", Table.Right);
        ]
  in
  List.iter
    (fun epsilon ->
      let instance = Renaming.Rebatching.make ~epsilon ~n () in
      let backups = ref 0 in
      let spec =
        Substrate.rebatching ~on_backup:(fun () -> incr backups) instance
      in
      let maxs = Stats.Summary.acc_create () in
      let totals = Stats.Summary.acc_create () in
      for trial = 0 to ctx.trials - 1 do
        let r =
          Substrate.run_sequential ctx.substrate spec ~seed:(ctx.seed + trial)
            ~n ()
        in
        if not (Sim.Runner.check_unique_names r) then
          failwith "T9: uniqueness violated";
        Stats.Summary.acc_add maxs (float_of_int r.Sim.Runner.max_steps);
        Stats.Summary.acc_add totals
          (float_of_int r.Sim.Runner.total_steps /. float_of_int n)
      done;
      Table.add_row table
        [
          Table.cell_float epsilon;
          Table.cell_ratio (float_of_int (Renaming.Rebatching.size instance))
            (float_of_int n);
          Table.cell_int (Renaming.Rebatching.probe_budget instance 0);
          Table.cell_float (Stats.Summary.acc_mean maxs);
          Table.cell_float (Stats.Summary.acc_mean totals);
          Table.cell_int !backups;
        ])
    [ 0.1; 0.25; 0.5; 1.0; 2.0 ];
  ctx.emit_table
    ~title:(Printf.sprintf "T9: namespace slack epsilon vs cost, n=%d" n)
    table

let jobs (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 4096 in
  List.concat
    (List.mapi
       (fun sweep_point epsilon ->
         List.init ctx.Experiment.trials (fun trial ->
             {
               Experiment.sweep_point;
               point_label = Printf.sprintf "eps=%g" epsilon;
               trial;
               params = [ ("epsilon", epsilon); ("n", float_of_int n) ];
               run_job =
                 (fun ~seed ->
                   let instance = Renaming.Rebatching.make ~epsilon ~n () in
                   let backups = ref 0 in
                   let spec =
                     Substrate.rebatching
                       ~on_backup:(fun () -> incr backups)
                       instance
                   in
                   let r =
                     Substrate.run_sequential ctx.Experiment.substrate spec
                       ~seed ~n ()
                   in
                   if not (Sim.Runner.check_unique_names r) then
                     failwith "T9: uniqueness violated";
                   [
                     ("max_steps", float_of_int r.Sim.Runner.max_steps);
                     ( "total_per_proc",
                       float_of_int r.Sim.Runner.total_steps /. float_of_int n );
                     ("backups", float_of_int !backups);
                     ( "m_over_n",
                       float_of_int (Renaming.Rebatching.size instance)
                       /. float_of_int n );
                     ( "t0",
                       float_of_int (Renaming.Rebatching.probe_budget instance 0)
                     );
                   ]);
             }))
       [ 0.1; 0.25; 0.5; 1.0; 2.0 ])

let exp =
  {
    Experiment.id = "t9";
    title = "Namespace/time trade-off in epsilon";
    claim =
      "§4: namespace (1+eps)n costs t0 = Theta(ln(1/eps)/eps) probes in batch \
       0; shape stays log log n + O(1)";
    run;
    jobs = Some jobs;
  }
