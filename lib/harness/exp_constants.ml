type row = {
  label : string;
  max_steps : float;
  total_per_proc : float;
  batch0_survivors : float;
  backups : int;
}

let measure_rebatching ~ctx ~n ~t0 ~beta =
  let instance = Renaming.Rebatching.make ~t0 ~beta ~n () in
  let backups = ref 0 in
  let batch0_failures = ref 0 in
  let on_event ~pid:_ = function
    | Renaming.Events.Backup_entered _ -> incr backups
    | Renaming.Events.Batch_failed { batch = 0; _ } -> incr batch0_failures
    | _ -> ()
  in
  let algo env = Renaming.Rebatching.get_name env instance in
  let maxs = Stats.Summary.acc_create () in
  let totals = Stats.Summary.acc_create () in
  for trial = 0 to ctx.Experiment.trials - 1 do
    let r =
      Sim.Runner.run_sequential ~on_event ~seed:(ctx.Experiment.seed + trial) ~n
        ~algo ()
    in
    if not (Sim.Runner.check_unique_names r) then failwith "T10: uniqueness violated";
    Stats.Summary.acc_add maxs (float_of_int r.Sim.Runner.max_steps);
    Stats.Summary.acc_add totals
      (float_of_int r.Sim.Runner.total_steps /. float_of_int n)
  done;
  {
    label = Printf.sprintf "t0=%d beta=%d" t0 beta;
    max_steps = Stats.Summary.acc_mean maxs;
    total_per_proc = Stats.Summary.acc_mean totals;
    batch0_survivors = float_of_int !batch0_failures /. float_of_int ctx.trials;
    backups = !backups;
  }

let measure_unbatched ~ctx ~n =
  let m = 2 * n in
  let algo env = Baselines.Uniform_probe.get_name env ~m ~max_steps:(1000 * n) in
  let maxs = Stats.Summary.acc_create () in
  let totals = Stats.Summary.acc_create () in
  for trial = 0 to ctx.Experiment.trials - 1 do
    let r = Sim.Runner.run_sequential ~seed:(ctx.Experiment.seed + trial) ~n ~algo () in
    if not (Sim.Runner.check_unique_names r) then failwith "T10: uniqueness violated";
    Stats.Summary.acc_add maxs (float_of_int r.Sim.Runner.max_steps);
    Stats.Summary.acc_add totals
      (float_of_int r.Sim.Runner.total_steps /. float_of_int n)
  done;
  {
    label = "no batching (uniform)";
    max_steps = Stats.Summary.acc_mean maxs;
    total_per_proc = Stats.Summary.acc_mean totals;
    batch0_survivors = nan;
    backups = 0;
  }

let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 4096 in
  let table =
    Table.create
      ~columns:
        [
          ("variant", Table.Left);
          ("max steps", Table.Right);
          ("total/n", Table.Right);
          ("batch-0 survivors", Table.Right);
          ("backups", Table.Right);
        ]
  in
  let rows =
    List.concat_map
      (fun t0 ->
        List.map (fun beta -> measure_rebatching ~ctx ~n ~t0 ~beta) [ 1; 3 ])
      [ 1; 2; 3; 5; 10; 53 ]
    @ [ measure_unbatched ~ctx ~n ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.label;
          Table.cell_float r.max_steps;
          Table.cell_float r.total_per_proc;
          Table.cell_float ~decimals:1 r.batch0_survivors;
          Table.cell_int r.backups;
        ])
    rows;
  ctx.emit_table
    ~title:(Printf.sprintf "T10: probe-budget ablation, n=%d, eps=1" n)
    table;
  ctx.log
    "T10 note: larger t0 trades batch-0 work for fewer batch survivors; the \
     paper constant makes survivors (hence later batches) essentially empty."

let exp =
  {
    Experiment.id = "t10";
    title = "Probe-budget constants ablation";
    claim =
      "§4: t0/beta set by Lemma 4.2's union bounds; batching (not the \
       constants) delivers the log log n shape";
    run;
    jobs = None;
  }
