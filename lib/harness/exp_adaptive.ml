let log2 x = log x /. log 2.

type point = { max_steps : float; max_name : float }

let measure ~ctx ~k make_spec =
  let points =
    Sweep.collect_seeds ~seed:ctx.Experiment.seed ~trials:ctx.Experiment.trials
      (fun seed ->
        let spec = make_spec () in
        let r =
          Substrate.run_sequential ctx.Experiment.substrate spec ~seed ~n:k ()
        in
        if not (Sim.Runner.check_unique_names r) then
          failwith "T5: uniqueness violated";
        {
          max_steps = float_of_int r.Sim.Runner.max_steps;
          max_name = float_of_int (Sim.Runner.max_name r);
        })
  in
  let mean f = Stats.Summary.mean (Array.of_list (List.map f points)) in
  (mean (fun p -> p.max_steps), mean (fun p -> p.max_name))

let run (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale) (Sweep.geometric_sizes ~lo:4 ~hi:16384 ~factor:2)
  in
  let table =
    Table.create
      ~columns:
        [
          ("k", Table.Right);
          ("adaptive(paper)", Table.Right);
          ("adaptive(t0=3)", Table.Right);
          ("doubling", Table.Right);
          ("(loglog2 k)^2", Table.Right);
          ("log2 k", Table.Right);
          ("max name", Table.Right);
          ("name/k", Table.Right);
        ]
  in
  let paper_series = ref [] and tuned_series = ref [] in
  List.iter
    (fun k ->
      let adaptive_steps, adaptive_name =
        measure ~ctx ~k (fun () ->
            Substrate.adaptive (Renaming.Object_space.create ()))
      in
      let tuned_steps, _ =
        measure ~ctx ~k (fun () ->
            Substrate.adaptive (Renaming.Object_space.create ~t0:3 ()))
      in
      let doubling_steps, _ =
        measure ~ctx ~k (fun () ->
            Substrate.adaptive_doubling (Renaming.Object_space.create ()))
      in
      paper_series := (k, adaptive_steps) :: !paper_series;
      tuned_series := (k, tuned_steps) :: !tuned_series;
      let fk = float_of_int k in
      let ll = log2 (log2 (Float.max 4. fk)) in
      Table.add_row table
        [
          Table.cell_int k;
          Table.cell_float adaptive_steps;
          Table.cell_float tuned_steps;
          Table.cell_float doubling_steps;
          Table.cell_float (ll *. ll);
          Table.cell_float (log2 fk);
          Table.cell_float ~decimals:0 adaptive_name;
          Table.cell_float (adaptive_name /. fk);
        ])
    sizes;
  ctx.emit_table ~title:"T5: adaptive renaming, steps and namespace vs contention k"
    table;
  let fits tag data =
    let data = List.rev data in
    let sizes_arr = Array.of_list (List.map (fun (k, _) -> float_of_int k) data) in
    let values = Array.of_list (List.map snd data) in
    ctx.log tag;
    List.iter ctx.log
      (Sweep.fit_lines
         ~models:
           [ Stats.Regression.Log_log_sq; Stats.Regression.Log_log; Stats.Regression.Log ]
         ~sizes:sizes_arr ~values)
  in
  fits "T5 fits, AdaptiveReBatching (paper constants) worst steps:" !paper_series;
  fits "T5 fits, AdaptiveReBatching (t0=3) worst steps:" !tuned_series

let jobs (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale)
      (Sweep.geometric_sizes ~lo:4 ~hi:16384 ~factor:2)
  in
  List.concat
    (List.mapi
       (fun sweep_point k ->
         List.init ctx.Experiment.trials (fun trial ->
             {
               Experiment.sweep_point;
               point_label = Printf.sprintf "k=%d" k;
               trial;
               params = [ ("k", float_of_int k) ];
               run_job =
                 (fun ~seed ->
                   let measure spec =
                     let r =
                       Substrate.run_sequential ctx.Experiment.substrate spec
                         ~seed ~n:k ()
                     in
                     if not (Sim.Runner.check_unique_names r) then
                       failwith "T5: uniqueness violated";
                     ( float_of_int r.Sim.Runner.max_steps,
                       float_of_int (Sim.Runner.max_name r) )
                   in
                   let adaptive_steps, adaptive_name =
                     measure (Substrate.adaptive (Renaming.Object_space.create ()))
                   in
                   let tuned_steps, _ =
                     measure
                       (Substrate.adaptive
                          (Renaming.Object_space.create ~t0:3 ()))
                   in
                   let doubling_steps, _ =
                     measure
                       (Substrate.adaptive_doubling
                          (Renaming.Object_space.create ()))
                   in
                   [
                     ("adaptive_paper_max", adaptive_steps);
                     ("adaptive_paper_name", adaptive_name);
                     ("adaptive_t0_max", tuned_steps);
                     ("doubling_max", doubling_steps);
                   ]);
             }))
       sizes)

let exp =
  {
    Experiment.id = "t5";
    title = "AdaptiveReBatching step complexity and namespace";
    claim =
      "Theorem 5.1: O((log log k)^2) steps and largest name O(k), both w.h.p.";
    run;
    jobs = Some jobs;
  }
