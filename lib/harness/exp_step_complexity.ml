let log2 x = log x /. log 2.

(* Worst per-process step count of [spec] on [n] processes, averaged over
   trials (each trial is an independent seeded execution), on the ctx's
   substrate (all three agree bit for bit on this schedule). *)
let measure_max ~ctx ~n spec =
  Sweep.over_seeds ~seed:ctx.Experiment.seed ~trials:ctx.Experiment.trials
    (fun seed ->
      let r =
        Substrate.run_sequential ctx.Experiment.substrate spec ~seed ~n ()
      in
      if not (Sim.Runner.check_unique_names r) then
        failwith "T1: uniqueness violated";
      float_of_int r.Sim.Runner.max_steps)

let run (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale) (Sweep.geometric_sizes ~lo:256 ~hi:262144 ~factor:2)
  in
  let table =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("rebatch(paper)", Table.Right);
          ("rebatch(t0=3)", Table.Right);
          ("uniform", Table.Right);
          ("cyclic", Table.Right);
          ("loglog2 n", Table.Right);
          ("log2 n", Table.Right);
        ]
  in
  let tuned = ref [] and uniform = ref [] and cyclic = ref [] in
  List.iter
    (fun n ->
      let rebatch_paper =
        Substrate.rebatching (Renaming.Rebatching.make ~n ())
      in
      let rebatch_tuned =
        Substrate.rebatching (Renaming.Rebatching.make ~t0:3 ~n ())
      in
      let paper_max = measure_max ~ctx ~n rebatch_paper in
      let tuned_max = measure_max ~ctx ~n rebatch_tuned in
      let uniform_max =
        measure_max ~ctx ~n (Substrate.uniform ~m:(2 * n) ~max_steps:(1000 * n))
      in
      let cyclic_max = measure_max ~ctx ~n (Substrate.cyclic_scan ~m:(2 * n)) in
      tuned := (n, tuned_max.Stats.Summary.mean) :: !tuned;
      uniform := (n, uniform_max.Stats.Summary.mean) :: !uniform;
      cyclic := (n, cyclic_max.Stats.Summary.mean) :: !cyclic;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float paper_max.Stats.Summary.mean;
          Table.cell_float tuned_max.Stats.Summary.mean;
          Table.cell_float uniform_max.Stats.Summary.mean;
          Table.cell_float cyclic_max.Stats.Summary.mean;
          Table.cell_float (log2 (log2 (float_of_int n)));
          Table.cell_float (log2 (float_of_int n));
        ])
    sizes;
  ctx.emit_table ~title:"T1: worst per-process steps vs n (mean over trials)" table;
  let to_points data =
    Array.of_list
      (List.rev_map (fun (n, y) -> (float_of_int n, y)) data)
  in
  ctx.log
    (Stats.Ascii_plot.render ~log_x:true
       ~title:"T1 plot: worst steps vs n (log-x) — flat r vs climbing u/c"
       [
         { Stats.Ascii_plot.label = "rebatching(t0=3)"; marker = 'r';
           points = to_points !tuned };
         { Stats.Ascii_plot.label = "uniform"; marker = 'u';
           points = to_points !uniform };
         { Stats.Ascii_plot.label = "cyclic"; marker = 'c';
           points = to_points !cyclic };
       ]);
  let fits tag data models =
    let data = List.rev data in
    let sizes = Array.of_list (List.map (fun (n, _) -> float_of_int n) data) in
    let values = Array.of_list (List.map snd data) in
    ctx.log tag;
    List.iter ctx.log (Sweep.fit_lines ~models ~sizes ~values)
  in
  fits "T1 fits, rebatching (t0=3):" !tuned
    [ Stats.Regression.Log_log; Stats.Regression.Log ];
  fits "T1 fits, uniform probing:" !uniform
    [ Stats.Regression.Log_log; Stats.Regression.Log ]

(* Job grain: one trial at one size runs all four algorithm variants on
   the same derived seed (common random numbers, as in the serial path). *)
let jobs (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale)
      (Sweep.geometric_sizes ~lo:256 ~hi:262144 ~factor:2)
  in
  List.concat
    (List.mapi
       (fun sweep_point n ->
         List.init ctx.Experiment.trials (fun trial ->
             {
               Experiment.sweep_point;
               point_label = Printf.sprintf "n=%d" n;
               trial;
               params = [ ("n", float_of_int n) ];
               run_job =
                 (fun ~seed ->
                   let measure spec =
                     let r =
                       Substrate.run_sequential ctx.Experiment.substrate spec
                         ~seed ~n ()
                     in
                     if not (Sim.Runner.check_unique_names r) then
                       failwith "T1: uniqueness violated";
                     float_of_int r.Sim.Runner.max_steps
                   in
                   [
                     ( "rebatch_paper_max",
                       measure
                         (Substrate.rebatching (Renaming.Rebatching.make ~n ()))
                     );
                     ( "rebatch_t0_max",
                       measure
                         (Substrate.rebatching
                            (Renaming.Rebatching.make ~t0:3 ~n ())) );
                     ( "uniform_max",
                       measure
                         (Substrate.uniform ~m:(2 * n) ~max_steps:(1000 * n)) );
                     ( "cyclic_max",
                       measure (Substrate.cyclic_scan ~m:(2 * n)) );
                   ]);
             }))
       sizes)

let exp =
  {
    Experiment.id = "t1";
    title = "Step complexity vs n (ReBatching vs baselines)";
    claim =
      "Theorem 4.1: ReBatching takes log log n + O(1) steps w.h.p.; uniform \
       probing pays Theta(log n)";
    run;
    jobs = Some jobs;
  }
