(* F2b: the layered game played by concrete uniform types — the
   post-reduction world of §6.1, no Poisson machinery. *)
let direct_table (ctx : Experiment.ctx) sizes =
  let trials = max ctx.trials 10 in
  let table =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("layers to empty (mean)", Table.Right);
          ("(max)", Table.Right);
          ("probes/proc", Table.Right);
          ("loglog2 n", Table.Right);
        ]
  in
  let series = ref [] in
  List.iter
    (fun n ->
      let s = 4 * n in
      let runs =
        Sweep.collect_seeds ~seed:ctx.seed ~trials (fun seed ->
            Lowerbound.Layered_exec.run ~seed ~n ~s Lowerbound.Layered_exec.Uniform)
      in
      let layers =
        Stats.Summary.mean
          (Array.of_list
             (List.map
                (fun (r : Lowerbound.Layered_exec.result) -> float_of_int r.layers)
                runs))
      in
      let max_layers =
        List.fold_left
          (fun acc (r : Lowerbound.Layered_exec.result) -> max acc r.layers)
          0 runs
      in
      let probes =
        Stats.Summary.mean
          (Array.of_list
             (List.map
                (fun (r : Lowerbound.Layered_exec.result) ->
                  float_of_int r.total_probes /. float_of_int n)
                runs))
      in
      series := (n, layers) :: !series;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float layers;
          Table.cell_int max_layers;
          Table.cell_float probes;
          Table.cell_float (log (log (float_of_int n) /. log 2.) /. log 2.);
        ])
    sizes;
  ctx.emit_table
    ~title:
      "F2b: direct layered game with uniform types (layers until every \
       process wins)"
    table;
  let data = List.rev !series in
  let sizes_arr = Array.of_list (List.map (fun (n, _) -> float_of_int n) data) in
  let values = Array.of_list (List.map snd data) in
  ctx.log
    (Stats.Ascii_plot.render ~log_x:true ~height:10
       ~title:"F2b plot: layers to empty vs n (log-x) — the loglog staircase"
       [
         {
           Stats.Ascii_plot.label = "layers to empty";
           marker = '#';
           points =
             Array.of_list (List.rev_map (fun (n, y) -> (float_of_int n, y)) !series);
         };
       ]);
  ctx.log "F2b fits, layers to empty:";
  List.iter ctx.log
    (Sweep.fit_lines
       ~models:[ Stats.Regression.Log_log; Stats.Regression.Log ]
       ~sizes:sizes_arr ~values)

(* F2c: the Lemma 6.2/6.3 reduction, executed.  ReBatching's probe
   sequence is a pure function of its coins (it only stops early on a
   win), so recording its probes under all-loss responses yields exactly
   the "type" of §6.1; the layered game over those types lower-bounds the
   real execution's survivors. *)
let extract_rebatching_types ~seed ~n ~prefix instance =
  let exception Enough in
  let root = Prng.Splitmix.of_int seed in
  Array.init n (fun pid ->
      let rng = Prng.Splitmix.split_at root pid in
      let probes = ref [] in
      let count = ref 0 in
      let env =
        Renaming.Env.make ~pid
          ~tas:(fun loc ->
            probes := loc :: !probes;
            incr count;
            (* only the first [prefix] probes can matter (the game never
               runs that many layers); abort the all-loss run there
               instead of letting it scan the whole backup range *)
            if !count >= prefix then raise_notrace Enough;
            false)
          ~random_int:(Prng.Splitmix.int rng) ()
      in
      (try ignore (Renaming.Rebatching.get_name env instance)
       with Enough -> ());
      Array.of_list (List.rev !probes))

let reduction_table (ctx : Experiment.ctx) sizes =
  let table =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("rebatching types: layers (mean)", Table.Right);
          ("uniform types: layers (mean)", Table.Right);
          ("loglog2 n", Table.Right);
        ]
  in
  let trials = max ctx.trials 5 in
  List.iter
    (fun n ->
      let instance = Renaming.Rebatching.make ~t0:3 ~n () in
      let s = Renaming.Rebatching.size instance in
      let rebatch_layers =
        Sweep.over_seeds ~seed:ctx.seed ~trials (fun seed ->
            let types = extract_rebatching_types ~seed ~n ~prefix:32 instance in
            let r = Lowerbound.Layered_exec.run_with_types ~seed ~types ~s () in
            float_of_int r.Lowerbound.Layered_exec.layers)
      in
      let uniform_layers =
        Sweep.over_seeds ~seed:ctx.seed ~trials (fun seed ->
            let r =
              Lowerbound.Layered_exec.run ~seed ~n ~s Lowerbound.Layered_exec.Uniform
            in
            float_of_int r.Lowerbound.Layered_exec.layers)
      in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float rebatch_layers.Stats.Summary.mean;
          Table.cell_float uniform_layers.Stats.Summary.mean;
          Table.cell_float (log (log (float_of_int n) /. log 2.) /. log 2.);
        ])
    (List.filter (fun n -> n <= 65536) sizes);
  ctx.emit_table
    ~title:
      "F2c: the Lemma 6.2/6.3 reduction executed on real ReBatching types \
       (layers until every type wins)"
    table

let run (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale)
      (Sweep.geometric_sizes ~lo:64 ~hi:1048576 ~factor:4)
  in
  let trials = max ctx.trials 10 in
  let table =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("layers survived (mean)", Table.Right);
          ("(max)", Table.Right);
          ("predicted layers", Table.Right);
          ("survive >= pred (%)", Table.Right);
          ("r0", Table.Right);
        ]
  in
  let series = ref [] in
  List.iter
    (fun n ->
      let config = Lowerbound.Marking.default_config ~n in
      let survived =
        Sweep.collect_seeds ~seed:ctx.seed ~trials (fun seed ->
            Lowerbound.Marking.layers_survived
              (Lowerbound.Marking.run ~seed config))
      in
      let predicted =
        Lowerbound.Theory.predicted_layers ~n ~s:(config.locations / 2)
          ~m:(config.locations / 2)
      in
      let mean =
        Stats.Summary.mean (Array.of_list (List.map float_of_int survived))
      in
      let maxv = List.fold_left max 0 survived in
      let at_least =
        List.length (List.filter (fun l -> float_of_int l >= predicted) survived)
      in
      series := (n, mean) :: !series;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float mean;
          Table.cell_int maxv;
          Table.cell_float predicted;
          Table.cell_float ~decimals:0
            (100. *. float_of_int at_least /. float_of_int trials);
          Table.cell_float ~decimals:3
            (float_of_int n /. 2. /. float_of_int config.locations);
        ])
    sizes;
  ctx.emit_table
    ~title:"F2a: marked-process survival vs n (Theorem 6.1 lower bound)" table;
  direct_table ctx sizes;
  reduction_table ctx sizes;
  let data = List.rev !series in
  let sizes_arr = Array.of_list (List.map (fun (n, _) -> float_of_int n) data) in
  let values = Array.of_list (List.map snd data) in
  ctx.log "F2 fits, layers survived:";
  List.iter ctx.log
    (Sweep.fit_lines
       ~models:[ Stats.Regression.Log_log; Stats.Regression.Log; Stats.Regression.Const ]
       ~sizes:sizes_arr ~values);
  ctx.log
    (Printf.sprintf
       "F2 note: Theorem 6.1's success probability bound is %.5f; survival \
        beyond the predicted layer count needs only constant probability."
       (Lowerbound.Theory.survival_probability_bound ()))

let exp =
  {
    Experiment.id = "f2";
    title = "Lower-bound layered execution survival";
    claim =
      "Theorem 6.1: with constant probability some process takes \
       Omega(log log n) steps under the oblivious layered adversary";
    run;
    jobs = None;
  }
