(* Large-n decade sweeps: the t1/t5 shapes pushed three more decades.

   These experiments run exclusively on the streaming fast core
   ([Sim.Fast_core.seq_run]): in unshuffled sequential order a process
   runs to completion before the next starts, so per-process state is
   O(1) and n = 10^8 fits in one location-space allocation.  The grid is
   decades [1e3 .. hi] where [hi] is [ctx.scale] times the full-sweep
   ceiling (1e8 for t1l, 1e7 for t5l) — so `--scale 0.01` is the CI
   smoke shape (top decade 1e6 / 1e5) and the committed BENCH_1.json
   baseline still has every decade a scaled-down run can produce.

   Trials attenuate with n (the top decade is minutes, not milliseconds);
   the per-point counts are part of the artifact, so the `--check` gate
   compares means over explicit trial sets.

   Jobs are one (series, n, trial) each: embarrassingly parallel,
   seed-split by [Engine.Seed_tree] through [Engine.Plan], and each job
   meters its own allocation via [Gc.minor_words] deltas around the
   measured loop — the words_per_op value is how the 0-alloc claim for
   the streaming core is enforced at every decade. *)

let log2 x = log x /. log 2.

type series = { name : string; spec_of : int -> Substrate.spec }

let t1l_hi = 100_000_000
let t5l_hi = 10_000_000
let grid_lo = 1_000

let grid ~scale ~hi =
  Sweep.geometric_sizes ~lo:grid_lo ~hi:(max grid_lo (Sweep.scaled scale hi))
    ~factor:10

(* The top decades dominate wall clock; attenuate trials there.  The
   attenuation is part of the job list, hence of the seed tree and the
   committed artifact — deterministic, not adaptive. *)
let trials_at ~trials n =
  if n >= 100_000_000 then max 1 (trials / 4)
  else if n >= 10_000_000 then max 1 (trials / 2)
  else max 1 trials

let t1l_series =
  [
    {
      name = "rebatch_paper";
      spec_of = (fun n -> Substrate.rebatching (Renaming.Rebatching.make ~n ()));
    };
    {
      name = "rebatch_t0";
      spec_of =
        (fun n -> Substrate.rebatching (Renaming.Rebatching.make ~t0:3 ~n ()));
    };
    {
      name = "uniform";
      spec_of = (fun n -> Substrate.uniform ~m:(2 * n) ~max_steps:(1000 * n));
    };
    {
      name = "cyclic";
      spec_of = (fun n -> Substrate.cyclic_scan ~m:(2 * n));
    };
  ]

(* The paper-constant adaptive variant pays t0 = 53 probes per visited
   object, which at k = 10^7 is hundreds of steps per process — the
   tuned t0 = 3 variant and the doubling baseline carry the same shape
   at a decade-sweep-compatible cost. *)
let t5l_series =
  [
    {
      name = "adaptive_t0";
      spec_of =
        (fun _n -> Substrate.adaptive (Renaming.Object_space.create ~t0:3 ()));
    };
    {
      name = "doubling";
      spec_of =
        (fun _n -> Substrate.adaptive_doubling (Renaming.Object_space.create ()));
    };
  ]

let point_label ~series ~n = Printf.sprintf "%s/n=%d" series.name n

(* One measured trial: build the streaming handle (dense location space
   preallocated to the spec's capacity), run, and report aggregates plus
   the allocation meter.  Everything before the [Gc.minor_words] window
   is setup; the window contains only [seq_run], whose loop is
   allocation-free by construction. *)
let measure ~series ~n ~seed =
  let spec = series.spec_of n in
  let q =
    Sim.Fast_core.seq_create
      ~capacity:(Substrate.capacity spec)
      ~algo:(Substrate.fast_algo spec) ()
  in
  let w0 = Gc.minor_words () in
  Sim.Fast_core.seq_run q ~seed ~n;
  let w1 = Gc.minor_words () in
  let total = Sim.Fast_core.seq_total_steps q in
  let named = Sim.Fast_core.seq_named q in
  if named <> n then
    failwith
      (Printf.sprintf "%s: %d of %d processes finished without a name"
         series.name (n - named) n);
  [
    ("max_steps", float_of_int (Sim.Fast_core.seq_max_steps q));
    ("total_steps", float_of_int total);
    ("steps_per_proc", float_of_int total /. float_of_int n);
    ("space_used", float_of_int (Sim.Fast_core.seq_space_used q));
    ("max_name", float_of_int (Sim.Fast_core.seq_max_name q));
    ("words_per_op", (w1 -. w0) /. float_of_int (max 1 total));
  ]

(* Sweep points are indexed against the FULL decade grid, not the
   scaled subset, so a decade-subset run (--max-n / --scale) derives
   the same per-job seeds as the full committed baseline: subset rows
   are bit-identical to baseline rows, and the --check bands only ever
   see real behavioral drift, never sampling noise. *)
let jobs_of ~series_list ~hi (ctx : Experiment.ctx) =
  let full_sizes = grid ~scale:1.0 ~hi in
  let sizes = grid ~scale:ctx.Experiment.scale ~hi in
  let point_index =
    let decades = List.length full_sizes in
    let decade_of n =
      let rec go i = function
        | [] ->
          invalid_arg
            (Printf.sprintf "Exp_large.jobs_of: n=%d not on the decade grid" n)
        | m :: rest -> if m = n then i else go (i + 1) rest
      in
      go 0 full_sizes
    in
    fun ~series_idx ~n -> (series_idx * decades) + decade_of n
  in
  List.concat
    (List.concat
       (List.mapi
          (fun series_idx series ->
            List.map
              (fun n ->
                let sweep_point = point_index ~series_idx ~n in
                List.init (trials_at ~trials:ctx.Experiment.trials n)
                  (fun trial ->
                    {
                      Experiment.sweep_point;
                      point_label = point_label ~series ~n;
                      trial;
                      params = [ ("n", float_of_int n) ];
                      run_job = (fun ~seed -> measure ~series ~n ~seed);
                    }))
              sizes)
          series_list))

(* Serial view: the same sweep as one table (mean worst-case steps per
   decade per series), for `repro_cli run t1l/t5l` without an engine
   store.  Runs on the streaming fast core whatever ctx.substrate says —
   the other substrates cannot represent n = 10^8. *)
let run_with ~series_list ~hi ~tag (ctx : Experiment.ctx) =
  let sizes = grid ~scale:ctx.Experiment.scale ~hi in
  let table =
    Table.create
      ~columns:
        (("n", Table.Right)
        :: List.map (fun s -> (s.name, Table.Right)) series_list
        @ [ ("loglog2 n", Table.Right); ("log2 n", Table.Right) ])
  in
  let first_series_points = ref [] in
  List.iter
    (fun n ->
      let trials = trials_at ~trials:ctx.Experiment.trials n in
      let cells =
        List.map
          (fun series ->
            let mean =
              (Sweep.over_seeds ~seed:ctx.Experiment.seed ~trials (fun seed ->
                   List.assoc "max_steps" (measure ~series ~n ~seed)))
                .Stats.Summary.mean
            in
            (series, mean))
          series_list
      in
      (match cells with
      | (_, mean) :: _ ->
        first_series_points := (n, mean) :: !first_series_points
      | [] -> ());
      let fn = float_of_int n in
      Table.add_row table
        (Table.cell_int n
        :: List.map (fun (_, mean) -> Table.cell_float mean) cells
        @ [
            Table.cell_float (log2 (log2 fn)); Table.cell_float (log2 fn);
          ]))
    sizes;
  ctx.emit_table
    ~title:
      (Printf.sprintf
         "%s: worst per-process steps by decade (streaming fast core, mean \
          over attenuated trials)"
         tag)
    table;
  let data = List.rev !first_series_points in
  let sizes_arr = Array.of_list (List.map (fun (n, _) -> float_of_int n) data) in
  let values = Array.of_list (List.map snd data) in
  if Array.length sizes_arr >= 2 then begin
    ctx.log (Printf.sprintf "%s fits, %s:" tag (List.hd series_list).name);
    List.iter ctx.log
      (Sweep.fit_lines
         ~models:[ Stats.Regression.Log_log; Stats.Regression.Log ]
         ~sizes:sizes_arr ~values)
  end

let t1l =
  {
    Experiment.id = "t1l";
    title = "Large-n step complexity by decade (streaming fast core)";
    claim =
      "Theorem 4.1 across three more decades: ReBatching's worst per-process \
       steps stay log log n + O(1) up to n = 10^8 while uniform probing \
       climbs with log n";
    run = run_with ~series_list:t1l_series ~hi:t1l_hi ~tag:"T1L";
    jobs = Some (jobs_of ~series_list:t1l_series ~hi:t1l_hi);
  }

let t5l =
  {
    Experiment.id = "t5l";
    title = "Large-k adaptive renaming by decade (streaming fast core)";
    claim =
      "Section 5 at scale: adaptive ReBatching's steps grow like (log log \
       k)^2 and its namespace stays O(k) out to k = 10^7";
    run = run_with ~series_list:t5l_series ~hi:t5l_hi ~tag:"T5L";
    jobs = Some (jobs_of ~series_list:t5l_series ~hi:t5l_hi);
  }
