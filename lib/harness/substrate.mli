(** Selectable execution substrates for the headline experiments.

    One renaming algorithm, three ways to execute it:

    - {!Fast} — the zero-allocation state-machine core
      ([Sim.Fast_core] driving a [Renaming.Fast_algo] encoding).  Only
      oblivious schedules (uniformly random or sequential) are
      expressible, which is exactly what the headline tables use; in
      exchange a run is several times faster and allocation-free, so
      large sweeps stop being GC-bound.
    - {!Effects} — the reference path: closures over [Renaming.Env]
      suspended per operation by the effects scheduler.  Required for
      adaptive adversaries, crash injection via [Sim.Adversary], and
      event tracing.
    - {!Atomic} — real [bool Atomic.t] cells ([Shm.Atomic_space]) driven
      sequentially; the sanity check that the simulated TAS matches
      genuine hardware atomics.

    The three substrates consume identical per-pid SplitMix64 streams, so
    on the schedules they share they produce {e identical} results
    field for field — pinned by the cross-substrate equivalence suite in
    [test/test_fast_core.ml].  Experiments therefore report the same
    numbers whichever substrate executes them; switching is purely a
    speed/capability trade. *)

type t = Fast | Effects | Atomic

val to_string : t -> string
(** ["fast"], ["effects"], ["atomic"] — the CLI spelling. *)

val of_string : string -> t option

val all : t list

(** {1 Algorithm specs}

    A {!spec} bundles the two faces of one algorithm instance — the
    reference closure and its state-machine encoding — plus the location
    capacity the atomic substrate must preallocate.  Constructors
    guarantee both faces describe the same instance, which is what makes
    substrate choice transparent. *)

type spec

val label : spec -> string

val closure : spec -> Renaming.Env.t -> int option
(** The reference-closure face, for drivers that need bespoke runner
    options (adversaries, crash injection, event hooks) and therefore
    call [Sim.Runner] directly. *)

val fast_algo : spec -> Renaming.Fast_algo.t
(** The state-machine face, for drivers that manage a reusable
    [Sim.Fast_core] handle themselves (the benchmark harness). *)

val capacity : spec -> int
(** Locations the atomic substrate preallocates for this instance. *)

val rebatching :
  ?backup:bool -> ?on_backup:(unit -> unit) -> Renaming.Rebatching.t -> spec
(** [on_backup] fires once per process entering the backup scan, on every
    substrate (via [Events.Backup_entered] on the closure side and the
    [Fast_algo] hook on the fast side). *)

val adaptive : Renaming.Object_space.t -> spec
val fast_adaptive : Renaming.Object_space.t -> spec
val uniform : m:int -> max_steps:int -> spec
val linear_scan : m:int -> spec
val cyclic_scan : m:int -> spec
val adaptive_doubling : ?probes_per_level:int -> Renaming.Object_space.t -> spec

(** {1 Execution} *)

val run_sequential :
  ?shuffled:bool -> t -> spec -> seed:int -> n:int -> unit -> Sim.Runner.result
(** One process at a time, in seeded random order ([shuffled], default
    [true]); equals [Sim.Runner.run_sequential] on every substrate. *)

val run :
  ?max_total_steps:int ->
  t ->
  spec ->
  seed:int ->
  n:int ->
  unit ->
  Sim.Runner.result
(** Concurrent execution under the uniformly random oblivious schedule;
    equals [Sim.Runner.run ~adversary:Adversary.random].
    @raise Invalid_argument on {!Atomic}, which is sequential-only.
    @raise Scheduler.Step_limit_exceeded past [max_total_steps]. *)
