let log2 x = log x /. log 2.

let measure ~ctx ~k make_spec =
  let totals =
    Sweep.collect_seeds ~seed:ctx.Experiment.seed ~trials:ctx.Experiment.trials
      (fun seed ->
        let spec = make_spec () in
        let r =
          Substrate.run_sequential ctx.Experiment.substrate spec ~seed ~n:k ()
        in
        if not (Sim.Runner.check_unique_names r) then
          failwith "T6: uniqueness violated";
        ( float_of_int r.Sim.Runner.total_steps /. float_of_int k,
          float_of_int (Sim.Runner.max_name r) ))
  in
  let mean f = Stats.Summary.mean (Array.of_list (List.map f totals)) in
  (mean fst, mean snd)

let run (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale) (Sweep.geometric_sizes ~lo:4 ~hi:16384 ~factor:2)
  in
  let table =
    Table.create
      ~columns:
        [
          ("k", Table.Right);
          ("fast total/k", Table.Right);
          ("adaptive total/k", Table.Right);
          ("fast(t0=3)", Table.Right);
          ("adaptive(t0=3)", Table.Right);
          ("loglog2 k", Table.Right);
          ("fast max name", Table.Right);
          ("name/k", Table.Right);
        ]
  in
  let fast_series = ref [] and fast_tuned_series = ref [] in
  List.iter
    (fun k ->
      let fast_per, fast_name =
        measure ~ctx ~k (fun () ->
            Substrate.fast_adaptive (Renaming.Object_space.create ()))
      in
      let adaptive_per, _ =
        measure ~ctx ~k (fun () ->
            Substrate.adaptive (Renaming.Object_space.create ()))
      in
      let fast_tuned_per, _ =
        measure ~ctx ~k (fun () ->
            Substrate.fast_adaptive (Renaming.Object_space.create ~t0:3 ()))
      in
      let adaptive_tuned_per, _ =
        measure ~ctx ~k (fun () ->
            Substrate.adaptive (Renaming.Object_space.create ~t0:3 ()))
      in
      fast_series := (k, fast_per) :: !fast_series;
      fast_tuned_series := (k, fast_tuned_per) :: !fast_tuned_series;
      let fk = float_of_int k in
      let ll = log2 (log2 (Float.max 4. fk)) in
      Table.add_row table
        [
          Table.cell_int k;
          Table.cell_float fast_per;
          Table.cell_float adaptive_per;
          Table.cell_float fast_tuned_per;
          Table.cell_float adaptive_tuned_per;
          Table.cell_float ll;
          Table.cell_float ~decimals:0 fast_name;
          Table.cell_float (fast_name /. fk);
        ])
    sizes;
  ctx.emit_table
    ~title:"T6: total steps per process vs k (FastAdaptive vs Adaptive)" table;
  let fits tag data =
    let data = List.rev data in
    let sizes_arr = Array.of_list (List.map (fun (k, _) -> float_of_int k) data) in
    let values = Array.of_list (List.map snd data) in
    ctx.log tag;
    List.iter ctx.log
      (Sweep.fit_lines
         ~models:
           [ Stats.Regression.Log_log; Stats.Regression.Log_log_sq; Stats.Regression.Log ]
         ~sizes:sizes_arr ~values)
  in
  fits "T6 fits, FastAdaptive (paper constants) normalized total steps:" !fast_series;
  fits "T6 fits, FastAdaptive (t0=3) normalized total steps:" !fast_tuned_series

let jobs (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale)
      (Sweep.geometric_sizes ~lo:4 ~hi:16384 ~factor:2)
  in
  List.concat
    (List.mapi
       (fun sweep_point k ->
         List.init ctx.Experiment.trials (fun trial ->
             {
               Experiment.sweep_point;
               point_label = Printf.sprintf "k=%d" k;
               trial;
               params = [ ("k", float_of_int k) ];
               run_job =
                 (fun ~seed ->
                   let measure spec =
                     let r =
                       Substrate.run_sequential ctx.Experiment.substrate spec
                         ~seed ~n:k ()
                     in
                     if not (Sim.Runner.check_unique_names r) then
                       failwith "T6: uniqueness violated";
                     ( float_of_int r.Sim.Runner.total_steps /. float_of_int k,
                       float_of_int (Sim.Runner.max_name r) )
                   in
                   let fast_per, fast_name =
                     measure
                       (Substrate.fast_adaptive (Renaming.Object_space.create ()))
                   in
                   let adaptive_per, _ =
                     measure (Substrate.adaptive (Renaming.Object_space.create ()))
                   in
                   let fast_tuned_per, _ =
                     measure
                       (Substrate.fast_adaptive
                          (Renaming.Object_space.create ~t0:3 ()))
                   in
                   let adaptive_tuned_per, _ =
                     measure
                       (Substrate.adaptive
                          (Renaming.Object_space.create ~t0:3 ()))
                   in
                   [
                     ("fast_per_proc", fast_per);
                     ("fast_name", fast_name);
                     ("adaptive_per_proc", adaptive_per);
                     ("fast_t0_per_proc", fast_tuned_per);
                     ("adaptive_t0_per_proc", adaptive_tuned_per);
                   ]);
             }))
       sizes)

let exp =
  {
    Experiment.id = "t6";
    title = "FastAdaptiveReBatching total step complexity";
    claim =
      "Theorem 5.2: total step complexity O(k log log k) w.h.p., largest name \
       O(k) w.h.p.";
    run;
    jobs = Some jobs;
  }
