let measure_total_per_proc ~ctx ~n spec =
  Sweep.over_seeds ~seed:ctx.Experiment.seed ~trials:ctx.Experiment.trials
    (fun seed ->
      let r =
        Substrate.run_sequential ctx.Experiment.substrate spec ~seed ~n ()
      in
      if not (Sim.Runner.check_unique_names r) then
        failwith "T2: uniqueness violated";
      float_of_int r.Sim.Runner.total_steps /. float_of_int n)

let run (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale) (Sweep.geometric_sizes ~lo:256 ~hi:262144 ~factor:2)
  in
  let table =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("rebatch(paper)/n", Table.Right);
          ("rebatch(t0=3)/n", Table.Right);
          ("uniform/n", Table.Right);
          ("cyclic/n", Table.Right);
        ]
  in
  let tuned = ref [] in
  List.iter
    (fun n ->
      let paper =
        measure_total_per_proc ~ctx ~n
          (Substrate.rebatching (Renaming.Rebatching.make ~n ()))
      in
      let tuned_s =
        measure_total_per_proc ~ctx ~n
          (Substrate.rebatching (Renaming.Rebatching.make ~t0:3 ~n ()))
      in
      let uniform =
        measure_total_per_proc ~ctx ~n
          (Substrate.uniform ~m:(2 * n) ~max_steps:(1000 * n))
      in
      let cyclic =
        measure_total_per_proc ~ctx ~n (Substrate.cyclic_scan ~m:(2 * n))
      in
      tuned := (n, tuned_s.Stats.Summary.mean) :: !tuned;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float paper.Stats.Summary.mean;
          Table.cell_float tuned_s.Stats.Summary.mean;
          Table.cell_float uniform.Stats.Summary.mean;
          Table.cell_float cyclic.Stats.Summary.mean;
        ])
    sizes;
  ctx.emit_table
    ~title:"T2: total steps per process vs n (flat = O(n) total work)" table;
  let data = List.rev !tuned in
  let sizes_arr = Array.of_list (List.map (fun (n, _) -> float_of_int n) data) in
  let values = Array.of_list (List.map snd data) in
  ctx.log "T2 fits, rebatching (t0=3) normalized total:";
  List.iter ctx.log
    (Sweep.fit_lines
       ~models:[ Stats.Regression.Const; Stats.Regression.Log_log ]
       ~sizes:sizes_arr ~values)

let jobs (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale)
      (Sweep.geometric_sizes ~lo:256 ~hi:262144 ~factor:2)
  in
  List.concat
    (List.mapi
       (fun sweep_point n ->
         List.init ctx.Experiment.trials (fun trial ->
             {
               Experiment.sweep_point;
               point_label = Printf.sprintf "n=%d" n;
               trial;
               params = [ ("n", float_of_int n) ];
               run_job =
                 (fun ~seed ->
                   let measure spec =
                     let r =
                       Substrate.run_sequential ctx.Experiment.substrate spec
                         ~seed ~n ()
                     in
                     if not (Sim.Runner.check_unique_names r) then
                       failwith "T2: uniqueness violated";
                     float_of_int r.Sim.Runner.total_steps /. float_of_int n
                   in
                   [
                     ( "rebatch_paper_per_proc",
                       measure
                         (Substrate.rebatching (Renaming.Rebatching.make ~n ()))
                     );
                     ( "rebatch_t0_per_proc",
                       measure
                         (Substrate.rebatching
                            (Renaming.Rebatching.make ~t0:3 ~n ())) );
                     ( "uniform_per_proc",
                       measure
                         (Substrate.uniform ~m:(2 * n) ~max_steps:(1000 * n)) );
                     ( "cyclic_per_proc",
                       measure (Substrate.cyclic_scan ~m:(2 * n)) );
                   ]);
             }))
       sizes)

let exp =
  {
    Experiment.id = "t2";
    title = "Total step complexity vs n";
    claim = "Theorem 4.1: ReBatching's total step complexity is O(n) w.h.p.";
    run;
    jobs = Some jobs;
  }
