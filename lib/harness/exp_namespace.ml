let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 4096 in
  let instance = Renaming.Rebatching.make ~n () in
  let kappa = Renaming.Rebatching.kappa instance in
  let algo env = Renaming.Rebatching.get_name env instance in
  (* Per-batch name counts, pooled over trials; plus per-cell counts of
     batch 0 for the uniformity test. *)
  let per_batch = Array.make (kappa + 1) 0 in
  let b0_size = Renaming.Rebatching.batch_size instance 0 in
  let b0_cells = Array.make b0_size 0 in
  let batch_of name =
    let rec go i =
      if i > kappa then None
      else begin
        let off = Renaming.Rebatching.batch_offset instance i in
        let size = Renaming.Rebatching.batch_size instance i in
        if name >= off && name < off + size then Some i else go (i + 1)
      end
    in
    go 0
  in
  let trials = max ctx.trials 5 in
  for trial = 0 to trials - 1 do
    let r = Sim.Runner.run_sequential ~seed:(ctx.seed + trial) ~n ~algo () in
    if not (Sim.Runner.check_unique_names r) then failwith "T18: uniqueness violated";
    Array.iter
      (function
        | Some name -> (
          match batch_of name with
          | Some 0 ->
            per_batch.(0) <- per_batch.(0) + 1;
            let cell = name - Renaming.Rebatching.batch_offset instance 0 in
            b0_cells.(cell) <- b0_cells.(cell) + 1
          | Some i -> per_batch.(i) <- per_batch.(i) + 1
          | None -> failwith "T18: name outside every batch")
        | None -> failwith "T18: missing name")
      r.Sim.Runner.names
  done;
  let total = Array.fold_left ( + ) 0 per_batch in
  let table =
    Table.create
      ~columns:
        [
          ("batch i", Table.Right);
          ("|B_i|", Table.Right);
          ("names assigned", Table.Right);
          ("share %", Table.Right);
          ("fill %", Table.Right);
        ]
  in
  Array.iteri
    (fun i count ->
      let size = Renaming.Rebatching.batch_size instance i in
      Table.add_row table
        [
          Table.cell_int i;
          Table.cell_int size;
          Table.cell_int count;
          Table.cell_float (100. *. float_of_int count /. float_of_int total);
          Table.cell_float
            (100. *. float_of_int count /. float_of_int (size * trials));
        ])
    per_batch;
  ctx.emit_table
    ~title:
      (Printf.sprintf "T18: name placement across batches, n=%d, %d trials" n
         trials)
    table;
  (* Uniformity of batch-0 placement.  Each cell is won at most once per
     trial; expected count per cell = batch-0 names / cells. *)
  let gof = Stats.Gof.chi_square_uniform_test ~observed:b0_cells in
  ctx.log
    (Printf.sprintf
       "T18 batch-0 placement: chi^2 = %.1f over %d cells (df %d), p = %.4f.  \
        No hot spots (p is far from 0); chi^2 << df reflects the exclusion \
        effect — each cell is won at most once per run, so counts are even \
        MORE balanced than independent uniform placement would be."
       gof.Stats.Gof.statistic b0_size (b0_size - 1) gof.Stats.Gof.p_value);
  ctx.log
    "T18 note: batch 0 serves ~everyone at the paper constants; the later \
     batches' shares trace the doubly-exponential survivor decay of Lemma \
     4.2."

let exp =
  {
    Experiment.id = "t18";
    title = "Namespace utilization and placement (extension)";
    claim =
      "§4 structure: batch 0 serves almost all processes, uniformly; later \
       batches serve doubly-exponentially fewer";
    run;
    jobs = None;
  }
