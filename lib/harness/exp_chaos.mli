(** B2: crash tolerance on real shared memory under injected faults.

    The multicore analogue of T8: {!Chaos.Chaos_runner} fail-stops a
    seeded fraction of processes on genuine OCaml 5 atomics — including
    after a TAS win, before the name is recorded — and the invariant
    monitor certifies survivor progress, survivor uniqueness, the
    namespace bound, and that every leaked slot is accounted to a fired
    after-win crash. *)

val exp : Experiment.t
