let log2 x = log x /. log 2.

let run (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale)
      (Sweep.geometric_sizes ~lo:64 ~hi:262144 ~factor:4)
  in
  let table =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("levels", Table.Right);
          ("survivors (oblivious)", Table.Right);
          ("levels to <=2", Table.Right);
          ("survivors (anti-sifter)", Table.Right);
          ("loglog2 n", Table.Right);
        ]
  in
  let series = ref [] in
  List.iter
    (fun n ->
      let levels = Rwtas.Cascade.suggested_levels ~n in
      let oblivious_survivors = Stats.Summary.acc_create () in
      let to_two = Stats.Summary.acc_create () in
      for trial = 0 to ctx.trials - 1 do
        let r = Rwtas.Cascade.run ~seed:(ctx.seed + trial) ~n () in
        Stats.Summary.acc_add oblivious_survivors
          (float_of_int (Rwtas.Cascade.survivors r));
        let reach =
          let found = ref levels in
          Array.iteri
            (fun l s -> if s <= 2 && l < !found then found := l)
            r.Rwtas.Cascade.survivors_per_level;
          !found
        in
        Stats.Summary.acc_add to_two (float_of_int reach)
      done;
      let anti =
        Rwtas.Cascade.run ~adversary:Rwtas.Anti_sifter.adversary ~seed:ctx.seed
          ~n ()
      in
      series := (n, Stats.Summary.acc_mean to_two) :: !series;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int levels;
          Table.cell_float (Stats.Summary.acc_mean oblivious_survivors);
          Table.cell_float (Stats.Summary.acc_mean to_two);
          Table.cell_int (Rwtas.Cascade.survivors anti);
          Table.cell_float (log2 (log2 (float_of_int n)));
        ])
    sizes;
  ctx.emit_table
    ~title:
      "T17: sifter cascade (refs [3,22]) — oblivious collapse vs strong-adversary \
       immunity"
    table;
  let data = List.rev !series in
  let sizes_arr = Array.of_list (List.map (fun (n, _) -> float_of_int n) data) in
  let values = Array.of_list (List.map snd data) in
  ctx.log "T17 fits, levels until <= 2 survivors (oblivious):";
  List.iter ctx.log
    (Sweep.fit_lines
       ~models:[ Stats.Regression.Log_log; Stats.Regression.Log ]
       ~sizes:sizes_arr ~values);
  ctx.log
    "T17 note: the anti-sifter column equals n at every size — a strong \
     adversary nullifies sifting entirely, which is why the paper assumes \
     hardware TAS for its strong-adversary bounds."

let exp =
  {
    Experiment.id = "t17";
    title = "Sifter cascades: weak vs strong adversary (context reproduction)";
    claim =
      "Refs [3,22]: read/write sifters reach O(1) survivors in \
       Theta(log log n) levels against a weak adversary — and fail totally \
       against a strong one";
    run;
    jobs = None;
  }
