let all =
  [
    Exp_step_complexity.exp;
    Exp_total_steps.exp;
    Exp_batch_survivors.exp;
    Exp_backup_rate.exp;
    Exp_adaptive.exp;
    Exp_fast_adaptive.exp;
    Exp_adversary.exp;
    Exp_crashes.exp;
    Exp_epsilon.exp;
    Exp_constants.exp;
    Exp_churn.exp;
    Exp_tail.exp;
    Exp_arrivals.exp;
    Exp_search.exp;
    Exp_access_counts.exp;
    Exp_substrates.exp;
    Exp_sifters.exp;
    Exp_namespace.exp;
    Exp_coupling.exp;
    Exp_lowerbound.exp;
    Exp_chaos.exp;
  ]

(* Large-n decade sweeps: minutes each at full scale, so they are
   reachable by id (run/bench --large) but never part of [all] — the
   default serial run of every experiment must stay fast. *)
let large = [ Exp_large.t1l; Exp_large.t5l ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.Experiment.id = id) (all @ large)

let ids () = List.map (fun e -> e.Experiment.id) (all @ large)
