let log2 x = log x /. log 2.

(* Max distinct processes accessing a single location, mean over trials. *)
let measure ~ctx ~k make_algo =
  let maxima =
    Sweep.collect_seeds ~seed:ctx.Experiment.seed ~trials:ctx.Experiment.trials
      (fun seed ->
        let visitors : (int, (int, unit) Hashtbl.t) Hashtbl.t =
          Hashtbl.create 1024
        in
        let on_event ~pid = function
          | Renaming.Events.Probe { location; _ } ->
            let set =
              match Hashtbl.find_opt visitors location with
              | Some s -> s
              | None ->
                let s = Hashtbl.create 4 in
                Hashtbl.replace visitors location s;
                s
            in
            Hashtbl.replace set pid ()
          | _ -> ()
        in
        let algo = make_algo () in
        let r = Sim.Runner.run ~on_event ~seed ~n:k ~algo () in
        if not (Sim.Runner.check_unique_names r) then
          failwith "T15: uniqueness violated";
        Seq.fold_left
          (fun acc set -> max acc (Hashtbl.length set))
          0
          (Hashtbl.to_seq_values visitors))
  in
  Stats.Summary.mean (Array.of_list (List.map float_of_int maxima))

let run (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale) (Sweep.geometric_sizes ~lo:16 ~hi:4096 ~factor:4)
  in
  let table =
    Table.create
      ~columns:
        [
          ("k", Table.Right);
          ("rebatching", Table.Right);
          ("adaptive", Table.Right);
          ("fast-adaptive", Table.Right);
          ("log2 k", Table.Right);
        ]
  in
  let series = ref [] in
  List.iter
    (fun k ->
      let rebatching =
        measure ~ctx ~k (fun () ->
            let instance = Renaming.Rebatching.make ~t0:3 ~n:k () in
            fun env -> Renaming.Rebatching.get_name env instance)
      in
      let adaptive =
        measure ~ctx ~k (fun () ->
            let space = Renaming.Object_space.create ~t0:3 () in
            fun env -> Renaming.Adaptive_rebatching.get_name env space)
      in
      let fast =
        measure ~ctx ~k (fun () ->
            let space = Renaming.Object_space.create ~t0:3 () in
            fun env -> Renaming.Fast_adaptive_rebatching.get_name env space)
      in
      series := (k, rebatching) :: !series;
      Table.add_row table
        [
          Table.cell_int k;
          Table.cell_float rebatching;
          Table.cell_float adaptive;
          Table.cell_float fast;
          Table.cell_float (log2 (float_of_int k));
        ])
    sizes;
  ctx.emit_table
    ~title:"T15: max distinct processes per TAS object (footnote 1: O(log k))"
    table;
  let data = List.rev !series in
  let sizes_arr = Array.of_list (List.map (fun (k, _) -> float_of_int k) data) in
  let values = Array.of_list (List.map snd data) in
  ctx.log "T15 fits, ReBatching max visitors per object:";
  List.iter ctx.log
    (Sweep.fit_lines
       ~models:[ Stats.Regression.Log; Stats.Regression.Log_log; Stats.Regression.Sqrt ]
       ~sizes:sizes_arr ~values);
  ctx.log
    "T15 finding (D2): the O(log k) footnote holds for ReBatching, but the \
     adaptive race phase drives all k processes through the constant-size \
     objects R_1, R_2, so their per-object visitor counts are Theta(k) (each \
     visitor spends O(1) probes there).  The footnote's simulation argument \
     needs per-object work, not per-object visitors, on those levels."

let exp =
  {
    Experiment.id = "t15";
    title = "Per-object access counts (footnote 1)";
    claim = "Footnote 1: each TAS object is accessed by O(log k) processes w.h.p.";
    run;
    jobs = None;
  }
