let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 1024 in
  let patterns =
    [
      ("all-at-once", Sim.Adversary.random);
      ("staggered x4", Sim.Arrivals.staggered ~interval:4 Sim.Adversary.random);
      ( "bursts 32/256",
        Sim.Arrivals.bursts ~size:32 ~gap:256 Sim.Adversary.random );
      ( "staggered+greedy",
        Sim.Arrivals.staggered ~interval:4 Sim.Adversary.greedy_collision );
    ]
  in
  let algorithms =
    [
      ( "rebatching(t0=3)",
        fun () ->
          let instance = Renaming.Rebatching.make ~t0:3 ~n () in
          fun env -> Renaming.Rebatching.get_name env instance );
      ( "adaptive",
        fun () ->
          let space = Renaming.Object_space.create ~t0:3 () in
          fun env -> Renaming.Adaptive_rebatching.get_name env space );
      ( "fast-adaptive",
        fun () ->
          let space = Renaming.Object_space.create ~t0:3 () in
          fun env -> Renaming.Fast_adaptive_rebatching.get_name env space );
    ]
  in
  let table =
    Table.create
      ~columns:
        [
          ("algorithm", Table.Left);
          ("arrival pattern", Table.Left);
          ("max steps", Table.Right);
          ("avg steps", Table.Right);
          ("max name", Table.Right);
          ("point contention", Table.Right);
          ("unique", Table.Left);
        ]
  in
  List.iter
    (fun (alg_name, make_algo) ->
      List.iter
        (fun (pattern_name, adversary) ->
          let maxs = Stats.Summary.acc_create () in
          let avgs = Stats.Summary.acc_create () in
          let names = Stats.Summary.acc_create () in
          let contention = Stats.Summary.acc_create () in
          let all_unique = ref true in
          for trial = 0 to ctx.trials - 1 do
            let algo = make_algo () in
            let r = Sim.Runner.run ~adversary ~seed:(ctx.seed + trial) ~n ~algo () in
            if not (Sim.Runner.check_unique_names r) then all_unique := false;
            Stats.Summary.acc_add maxs (float_of_int r.Sim.Runner.max_steps);
            Stats.Summary.acc_add avgs
              (float_of_int r.Sim.Runner.total_steps /. float_of_int n);
            Stats.Summary.acc_add names (float_of_int (Sim.Runner.max_name r));
            Stats.Summary.acc_add contention
              (float_of_int r.Sim.Runner.point_contention)
          done;
          Table.add_row table
            [
              alg_name;
              pattern_name;
              Table.cell_float (Stats.Summary.acc_mean maxs);
              Table.cell_float (Stats.Summary.acc_mean avgs);
              Table.cell_float ~decimals:0 (Stats.Summary.acc_mean names);
              Table.cell_float ~decimals:0 (Stats.Summary.acc_mean contention);
              (if !all_unique then "yes" else "NO");
            ])
        patterns)
    algorithms;
  ctx.emit_table
    ~title:(Printf.sprintf "T13: arrival patterns, n=%d total processes" n)
    table;
  ctx.log
    "T13 note: the adaptive namespace bound is in interval contention (total \
     participants), so staggering does not shrink names; steps and \
     uniqueness are pattern-independent."

let exp =
  {
    Experiment.id = "t13";
    title = "Arrival patterns (extension)";
    claim =
      "Extension: correctness and step bounds are independent of when \
       processes arrive, not just of how they interleave";
    run;
    jobs = None;
  }
