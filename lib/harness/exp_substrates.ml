type measurement = { probes_per_proc : float; max_name : float; unique : bool }

let sim_measure ~ctx ~n make_algo =
  let totals =
    Sweep.collect_seeds ~seed:ctx.Experiment.seed ~trials:ctx.Experiment.trials
      (fun seed ->
        let algo = make_algo () in
        let r = Sim.Runner.run ~seed ~n ~algo () in
        ( float_of_int r.Sim.Runner.total_steps /. float_of_int n,
          float_of_int (Sim.Runner.max_name r),
          Sim.Runner.check_unique_names r ))
  in
  {
    probes_per_proc =
      Stats.Summary.mean (Array.of_list (List.map (fun (p, _, _) -> p) totals));
    max_name =
      Stats.Summary.mean (Array.of_list (List.map (fun (_, m, _) -> m) totals));
    unique = List.for_all (fun (_, _, u) -> u) totals;
  }

let shm_measure ~ctx ~n ~capacity make_algo =
  let totals =
    Sweep.collect_seeds ~seed:ctx.Experiment.seed ~trials:ctx.Experiment.trials
      (fun seed ->
        let algo = make_algo () in
        let r = Shm.Domain_runner.run ~domains:4 ~seed ~procs:n ~capacity ~algo () in
        ( float_of_int r.Shm.Domain_runner.total_probes /. float_of_int n,
          float_of_int (Shm.Domain_runner.max_name r),
          Shm.Domain_runner.check_unique_names r ))
  in
  {
    probes_per_proc =
      Stats.Summary.mean (Array.of_list (List.map (fun (p, _, _) -> p) totals));
    max_name =
      Stats.Summary.mean (Array.of_list (List.map (fun (_, m, _) -> m) totals));
    unique = List.for_all (fun (_, _, u) -> u) totals;
  }

let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 512 in
  let table =
    Table.create
      ~columns:
        [
          ("algorithm", Table.Left);
          ("substrate", Table.Left);
          ("probes/proc", Table.Right);
          ("max name", Table.Right);
          ("unique", Table.Left);
        ]
  in
  let row alg_name substrate (m : measurement) =
    Table.add_row table
      [
        alg_name;
        substrate;
        Table.cell_float m.probes_per_proc;
        Table.cell_float ~decimals:0 m.max_name;
        (if m.unique then "yes" else "NO");
      ]
  in
  (* ReBatching *)
  let rebatch () =
    let instance = Renaming.Rebatching.make ~t0:3 ~n () in
    fun env -> Renaming.Rebatching.get_name env instance
  in
  let capacity = Renaming.Rebatching.size (Renaming.Rebatching.make ~t0:3 ~n ()) in
  row "rebatching(t0=3)" "simulator" (sim_measure ~ctx ~n rebatch);
  row "rebatching(t0=3)" "atomics" (shm_measure ~ctx ~n ~capacity rebatch);
  (* Uniform probing *)
  let uniform () =
   fun env -> Baselines.Uniform_probe.get_name env ~m:(2 * n) ~max_steps:(1000 * n)
  in
  row "uniform" "simulator" (sim_measure ~ctx ~n uniform);
  row "uniform" "atomics" (shm_measure ~ctx ~n ~capacity:(2 * n) uniform);
  (* Fast adaptive (paper constants; capacity covers the race ladder) *)
  let space_capacity =
    let probe = Renaming.Object_space.create () in
    Renaming.Object_space.total_size probe 16
  in
  let fast () =
    let space = Renaming.Object_space.create () in
    fun env -> Renaming.Fast_adaptive_rebatching.get_name env space
  in
  row "fast-adaptive" "simulator" (sim_measure ~ctx ~n fast);
  row "fast-adaptive" "atomics" (shm_measure ~ctx ~n ~capacity:space_capacity fast);
  ctx.emit_table
    ~title:(Printf.sprintf "T16: simulator vs real atomics, n=%d" n)
    table;
  ctx.log
    "T16 note: substrates may disagree on who wins contended cells, so probe \
     counts match within sampling noise, never exactly."

let exp =
  {
    Experiment.id = "t16";
    title = "Cross-substrate agreement (extension)";
    claim =
      "Reproduction integrity: probe statistics measured on the simulator \
       transfer to real shared memory";
    run;
    jobs = None;
  }
