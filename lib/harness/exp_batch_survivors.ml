let log2 x = log x /. log 2.

(* Mean per-batch exhaustion counts over trials: counts.(i) = number of
   processes whose TryGetName(i) failed, i.e. n_{i+1} of the analysis. *)
let measure ~ctx ~n instance =
  let kappa = Renaming.Rebatching.kappa instance in
  let sums = Array.make (kappa + 1) 0. in
  for trial = 0 to ctx.Experiment.trials - 1 do
    let counts = Array.make (kappa + 1) 0 in
    let on_event ~pid:_ = function
      | Renaming.Events.Batch_failed { batch; _ } when batch >= 0 ->
        counts.(batch) <- counts.(batch) + 1
      | _ -> ()
    in
    let algo env = Renaming.Rebatching.get_name env instance in
    let r =
      Sim.Runner.run_sequential ~on_event ~seed:(ctx.seed + trial) ~n ~algo ()
    in
    if not (Sim.Runner.check_unique_names r) then failwith "T3: uniqueness violated";
    Array.iteri (fun i c -> sums.(i) <- sums.(i) +. float_of_int c) counts
  done;
  Array.map (fun s -> s /. float_of_int ctx.trials) sums

let bound ~n ~kappa i =
  (* n*_{i+1} of Lemma 4.2, displayed with delta = 0. *)
  let fn = float_of_int n in
  if i >= kappa then Float.max 1. (log2 fn ** 2.)
  else begin
    let idx = i + 1 in
    fn /. (2. ** ((2. ** float_of_int idx) +. float_of_int idx))
  end

let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 16384 in
  List.iter
    (fun (label, t0) ->
      let instance =
        match t0 with
        | None -> Renaming.Rebatching.make ~n ()
        | Some t0 -> Renaming.Rebatching.make ~t0 ~n ()
      in
      let kappa = Renaming.Rebatching.kappa instance in
      let measured = measure ~ctx ~n instance in
      let table =
        Table.create
          ~columns:
            [
              ("batch i", Table.Right);
              ("|B_i|", Table.Right);
              ("t_i", Table.Right);
              ("survivors n_{i+1}", Table.Right);
              ("bound n*_{i+1}", Table.Right);
              ("within bound", Table.Left);
            ]
      in
      Array.iteri
        (fun i m ->
          let b = bound ~n ~kappa i in
          Table.add_row table
            [
              Table.cell_int i;
              Table.cell_int (Renaming.Rebatching.batch_size instance i);
              Table.cell_int (Renaming.Rebatching.probe_budget instance i);
              Table.cell_float m;
              Table.cell_float b;
              (if m <= b then "yes" else "NO");
            ])
        measured;
      ctx.emit_table
        ~title:(Printf.sprintf "T3: batch survivors, n=%d, %s" n label)
        table)
    [ ("paper t0", None); ("tuned t0=3", Some 3) ];
  ctx.log
    "T3 note: the Lemma 4.2 bound formally applies to the paper budget; the \
     tuned table shows the same doubly-exponential decay shape."

let exp =
  {
    Experiment.id = "t3";
    title = "Batch survivor counts (Lemma 4.2)";
    claim = "Lemma 4.2: w.h.p. n_i <= n/2^(2^i+i+delta) and n_kappa <= log^2 n";
    run;
    jobs = None;
  }
