(** Experiment descriptors.

    Each table/figure of DESIGN.md §4 is one value of type {!t}; the
    registry ({!Registry.all}) collects them, and both the CLI
    ([bin/repro_cli]) and the bench harness ([bench/main]) drive
    experiments exclusively through this interface.

    Experiments come in two grains.  The monolithic {!t.run} executes the
    whole sweep serially and prints tables — the historical interface,
    still the CLI default.  High-cost experiments additionally expose
    {!t.jobs}: the same sweep decomposed into independent single-trial
    {!job}s, which the parallel engine ([lib/engine]) fans out across
    domains and records in a JSONL store. *)

type ctx = {
  seed : int;  (** base seed; trial [i] uses [seed + i] *)
  trials : int;  (** repetitions per measured point *)
  scale : float;
      (** multiplier on the experiment's default problem sizes; [1.0] for
          the published defaults, smaller for quick runs *)
  substrate : Substrate.t;
      (** execution substrate for experiments whose schedules all three
          substrates can express (the oblivious headline tables
          t1/t2/t5/t6/t9/t12); experiments that need adversaries, crashes
          or event traces ignore it and use the effects path.  Because
          substrates are result-equivalent, this only changes speed. *)
  emit_table : title:string -> Table.t -> unit;
      (** sink for finished tables (prints, and optionally saves CSV) *)
  log : string -> unit;  (** free-form progress / fit lines *)
}

type job = {
  sweep_point : int;
      (** index of the parameter point within the experiment's sweep *)
  point_label : string;  (** human-readable point, e.g. ["n=1024"] *)
  trial : int;  (** trial index at this point, [0 .. trials-1] *)
  params : (string * float) list;
      (** the point's parameters, recorded verbatim in the result store *)
  run_job : seed:int -> (string * float) list;
      (** execute one trial with the given derived seed and return named
          measured values.  Implementations must be self-contained —
          allocate algorithm instances inside the closure and touch no
          shared mutable state — so a job can run on any domain, in any
          order, and [--jobs 1] and [--jobs 8] agree bit for bit. *)
}

type t = {
  id : string;  (** short id used on the CLI, e.g. "t1" *)
  title : string;
  claim : string;  (** the paper claim being checked, with its reference *)
  run : ctx -> unit;
  jobs : (ctx -> job list) option;
      (** trial-grain view of the same sweep for the parallel engine;
          [None] for experiments that only run serially.  Builders read
          only [ctx.seed]/[ctx.trials]/[ctx.scale]/[ctx.substrate];
          per-job seeds are
          derived by the engine ([Engine.Seed_tree]), not taken from
          [ctx.seed + trial]. *)
}

val default_ctx :
  ?seed:int -> ?trials:int -> ?scale:float -> ?substrate:Substrate.t -> unit -> ctx
(** A context that prints tables and log lines to stdout.  Defaults:
    [seed = 1], [trials = 5], [scale = 1.0], [substrate = Fast]. *)
