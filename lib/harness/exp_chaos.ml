(* B2: the multicore analogue of T8.  The simulator's crash adversary
   (T8) decides crashes adaptively; here the crash schedule is a
   deterministic Chaos.Fault_plan executed against real atomics, so the
   nastiest point of the model — fail-stop after a TAS win, before the
   name is recorded — happens on genuine hardware and the leaked slot is
   accounted for, not just tolerated. *)

let algo_name = "rebatching"

let fractions procs =
  [ 0.0; 0.1; 0.5; 0.9; float_of_int (procs - 1) /. float_of_int procs ]

let plan_for ~seed ~procs ~fraction =
  match Chaos.Algos.make algo_name ~n:procs () with
  | Error e -> failwith e
  | Ok (algo, capacity) ->
    let plan =
      Chaos.Fault_plan.make ~seed ~procs
        ~domains:(Shm.Domain_runner.default_domains ~procs ())
        ~algo:algo_name ~capacity ~crash_frac:fraction ~pause_frac:0.25 ()
    in
    (plan, algo)

type point = {
  armed : float;
  fired : float;
  survivors : float;
  leaked : float;
  max_name : float;
  all_ok : bool;
}

let measure ~ctx ~procs ~fraction =
  let armed = Stats.Summary.acc_create () in
  let fired = Stats.Summary.acc_create () in
  let survivors = Stats.Summary.acc_create () in
  let leaked = Stats.Summary.acc_create () in
  let max_name = Stats.Summary.acc_create () in
  let all_ok = ref true in
  for trial = 0 to ctx.Experiment.trials - 1 do
    let plan, algo =
      plan_for ~seed:(ctx.Experiment.seed + trial) ~procs ~fraction
    in
    let o = Chaos.Chaos_runner.run ~plan ~algo () in
    let v = o.Chaos.Chaos_runner.verdict in
    if not (Chaos.Chaos_runner.ok v) then all_ok := false;
    Stats.Summary.acc_add armed
      (float_of_int (List.length plan.Chaos.Fault_plan.crashes));
    Stats.Summary.acc_add fired
      (float_of_int (List.length v.Chaos.Chaos_runner.fired));
    Stats.Summary.acc_add survivors
      (float_of_int v.Chaos.Chaos_runner.survivors);
    Stats.Summary.acc_add leaked (float_of_int v.Chaos.Chaos_runner.leaked);
    Stats.Summary.acc_add max_name
      (float_of_int v.Chaos.Chaos_runner.max_name)
  done;
  {
    armed = Stats.Summary.acc_mean armed;
    fired = Stats.Summary.acc_mean fired;
    survivors = Stats.Summary.acc_mean survivors;
    leaked = Stats.Summary.acc_mean leaked;
    max_name = Stats.Summary.acc_mean max_name;
    all_ok = !all_ok;
  }

let run (ctx : Experiment.ctx) =
  let procs = Sweep.scaled ctx.scale 128 in
  let table =
    Table.create
      ~columns:
        [
          ("crash fraction", Table.Right);
          ("armed (mean)", Table.Right);
          ("fired (mean)", Table.Right);
          ("survivors", Table.Right);
          ("leaked slots", Table.Right);
          ("max name", Table.Right);
          ("invariants", Table.Left);
        ]
  in
  List.iter
    (fun fraction ->
      let m = measure ~ctx ~procs ~fraction in
      Table.add_row table
        [
          Table.cell_float fraction;
          Table.cell_float ~decimals:1 m.armed;
          Table.cell_float ~decimals:1 m.fired;
          Table.cell_float ~decimals:1 m.survivors;
          Table.cell_float ~decimals:1 m.leaked;
          Table.cell_float ~decimals:0 m.max_name;
          (if m.all_ok then "ok" else "VIOLATED");
        ])
    (fractions procs);
  ctx.Experiment.emit_table
    ~title:
      (Printf.sprintf "B2: injected crashes on real atomics, %s, procs=%d"
         algo_name procs)
    table;
  ctx.Experiment.log
    "B2 note: armed crashes fire only if the process reaches its armed \
     operation; leaked slots must equal fired after-win crashes exactly."

let jobs (ctx : Experiment.ctx) =
  let procs = Sweep.scaled ctx.scale 128 in
  List.concat
    (List.mapi
       (fun sweep_point fraction ->
         List.init ctx.Experiment.trials (fun trial ->
             {
               Experiment.sweep_point;
               point_label = Printf.sprintf "frac=%.3f" fraction;
               trial;
               params =
                 [ ("procs", float_of_int procs); ("crash_frac", fraction) ];
               run_job =
                 (fun ~seed ->
                   let plan, algo = plan_for ~seed ~procs ~fraction in
                   let o = Chaos.Chaos_runner.run ~plan ~algo () in
                   let v = o.Chaos.Chaos_runner.verdict in
                   if not (Chaos.Chaos_runner.ok v) then
                     failwith
                       ("B2: invariants violated: "
                       ^ String.concat ", " v.Chaos.Chaos_runner.violations);
                   [
                     ( "armed",
                       float_of_int
                         (List.length plan.Chaos.Fault_plan.crashes) );
                     ( "fired",
                       float_of_int (List.length v.Chaos.Chaos_runner.fired)
                     );
                     ( "survivors",
                       float_of_int v.Chaos.Chaos_runner.survivors );
                     ("leaked", float_of_int v.Chaos.Chaos_runner.leaked);
                     ("max_name", float_of_int v.Chaos.Chaos_runner.max_name);
                   ]);
             }))
       (fractions procs))

let exp =
  {
    Experiment.id = "b2";
    title = "Crash injection on real shared memory";
    claim =
      "§2 crash model on multicore: survivors terminate with unique bounded \
       names under fail-stops at any step, including after a TAS win";
    run;
    jobs = Some jobs;
  }
