let count_backups ~seed ~procs instance =
  let backups = ref 0 in
  let on_event ~pid:_ = function
    | Renaming.Events.Backup_entered _ -> incr backups
    | _ -> ()
  in
  let algo env = Renaming.Rebatching.get_name env instance in
  let _ = Sim.Runner.run_sequential ~on_event ~seed ~n:procs ~algo () in
  !backups

let run (ctx : Experiment.ctx) =
  let sizes =
    List.map (Sweep.scaled ctx.scale) (Sweep.geometric_sizes ~lo:256 ~hi:16384 ~factor:4)
  in
  let trials = max ctx.trials 20 in
  let table =
    Table.create
      ~columns:
        [
          ("n", Table.Right);
          ("trials", Table.Right);
          ("backup entries", Table.Right);
          ("bound 1/n^(beta-o(1))", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let instance = Renaming.Rebatching.make ~n () in
      let total = ref 0 in
      for trial = 0 to trials - 1 do
        total := !total + count_backups ~seed:(ctx.seed + trial) ~procs:n instance
      done;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int trials;
          Table.cell_int !total;
          Printf.sprintf "%.1e"
            (1. /. (float_of_int n ** float_of_int Renaming.Rebatching.default_beta));
        ])
    sizes;
  ctx.emit_table ~title:"T4: backup-phase entries (expected 0 at every n)" table;
  (* Positive control: overload an instance far past its design load so the
     probabilistic phases must fail for some processes. *)
  let small = Renaming.Rebatching.make ~t0:1 ~n:8 () in
  let control = count_backups ~seed:ctx.seed ~procs:14 small in
  ctx.log
    (Printf.sprintf
       "T4 control: overloaded instance (n=8 design, 14 procs, t0=1) entered \
        backup %d times — instrumentation confirmed live."
       control)

let exp =
  {
    Experiment.id = "t4";
    title = "Backup-phase frequency";
    claim = "§4: the backup scan runs with probability <= 1/n^(beta-o(1))";
    run;
    jobs = None;
  }
