let measure ~ctx ~n ~fraction make_algo =
  let maxs = Stats.Summary.acc_create () in
  let crashes = Stats.Summary.acc_create () in
  let names = Stats.Summary.acc_create () in
  let all_unique = ref true in
  let all_progress = ref true in
  for trial = 0 to ctx.Experiment.trials - 1 do
    let adversary =
      if fraction = 0. then Sim.Adversary.greedy_collision
      else Sim.Adversary.with_crashes ~fraction Sim.Adversary.greedy_collision
    in
    let algo = make_algo () in
    let r = Sim.Runner.run ~adversary ~seed:(ctx.seed + trial) ~n ~algo () in
    if not (Sim.Runner.check_unique_names r) then all_unique := false;
    (* Progress, separately from uniqueness: every survivor terminated
       with a name.  The distinction matters at fraction (n-1)/n, where
       "unique" over one survivor is vacuous but progress is not. *)
    for pid = 0 to n - 1 do
      if (not r.Sim.Runner.crashed.(pid)) && r.Sim.Runner.names.(pid) = None
      then all_progress := false
    done;
    Stats.Summary.acc_add maxs (float_of_int r.Sim.Runner.max_steps);
    Stats.Summary.acc_add crashes (float_of_int r.Sim.Runner.crash_count);
    Stats.Summary.acc_add names (float_of_int (Sim.Runner.max_name r))
  done;
  ( Stats.Summary.acc_mean maxs,
    Stats.Summary.acc_mean crashes,
    Stats.Summary.acc_mean names,
    !all_unique,
    !all_progress )

let run_for ~ctx ~n ~label make_algo =
  let table =
    Table.create
      ~columns:
        [
          ("crash fraction", Table.Right);
          ("crashed (mean)", Table.Right);
          ("survivor max steps", Table.Right);
          ("max name", Table.Right);
          ("unique", Table.Left);
          ("progress", Table.Left);
        ]
  in
  List.iter
    (fun fraction ->
      let max_steps, crashed, max_name, unique, progress =
        measure ~ctx ~n ~fraction make_algo
      in
      Table.add_row table
        [
          Table.cell_float fraction;
          Table.cell_float ~decimals:1 crashed;
          Table.cell_float max_steps;
          Table.cell_float ~decimals:0 max_name;
          (if unique then "yes" else "NO");
          (if progress then "yes" else "NO");
        ])
    (* (n-1)/n is the all-but-one-crashed edge: uniqueness over a single
       survivor is vacuous, so the progress column carries the claim. *)
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; float_of_int (n - 1) /. float_of_int n ];
  ctx.Experiment.emit_table
    ~title:(Printf.sprintf "T8: crash tolerance, %s, n=%d" label n)
    table

let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 256 in
  let rebatch = Renaming.Rebatching.make ~n () in
  run_for ~ctx ~n ~label:"ReBatching" (fun () ->
      fun env -> Renaming.Rebatching.get_name env rebatch);
  run_for ~ctx ~n ~label:"AdaptiveReBatching" (fun () ->
      let space = Renaming.Object_space.create () in
      fun env -> Renaming.Adaptive_rebatching.get_name env space)

let exp =
  {
    Experiment.id = "t8";
    title = "Crash-failure tolerance";
    claim =
      "§2: under any number of crashes, survivors terminate with unique names";
    run;
    jobs = None;
  }
