(* Churn driver: each process performs [rounds] acquire/release cycles
   and returns its last name (so the runner's uniqueness check remains
   meaningful for the final holders). *)
let churn_algo object_ rounds (env : Renaming.Env.t) =
  let rec cycle r last =
    if r = 0 then last
    else
      match Renaming.Long_lived.acquire env object_ with
      | None -> None
      | Some u ->
        if r = 1 then Some u
        else begin
          Renaming.Long_lived.release env object_ u;
          cycle (r - 1) (Some u)
        end
  in
  cycle rounds None

(* Event-stream safety monitor: no name may be acquired while held. *)
let make_monitor () =
  let held : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref 0 in
  let acquisitions = ref 0 in
  let distinct : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let max_name = ref (-1) in
  let on_event ~pid:_ = function
    | Renaming.Events.Name_acquired { name; _ } ->
      incr acquisitions;
      Hashtbl.replace distinct name ();
      if name > !max_name then max_name := name;
      if Hashtbl.mem held name then incr violations
      else Hashtbl.replace held name ()
    | Renaming.Events.Name_released { name; _ } -> Hashtbl.remove held name
    | _ -> ()
  in
  (on_event, violations, acquisitions, distinct, max_name)

let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 128 in
  let object_ = Renaming.Long_lived.make ~t0:3 ~n () in
  let m = Renaming.Rebatching.size (Renaming.Long_lived.instance object_) in
  let table =
    Table.create
      ~columns:
        [
          ("rounds", Table.Right);
          ("acquisitions", Table.Right);
          ("namespace m", Table.Right);
          ("distinct names", Table.Right);
          ("max name", Table.Right);
          ("steps/acquire", Table.Right);
          ("double-holds", Table.Right);
        ]
  in
  List.iter
    (fun rounds ->
      let on_event, violations, acquisitions, distinct, max_name =
        make_monitor ()
      in
      let algo = churn_algo object_ rounds in
      let r = Sim.Runner.run ~on_event ~seed:ctx.seed ~n ~algo () in
      if not (Sim.Runner.check_unique_names r) then failwith "T11: final holders collide";
      Table.add_row table
        [
          Table.cell_int rounds;
          Table.cell_int !acquisitions;
          Table.cell_int m;
          Table.cell_int (Hashtbl.length distinct);
          Table.cell_int !max_name;
          Table.cell_float
            (float_of_int r.Sim.Runner.total_steps /. float_of_int !acquisitions);
          Table.cell_int !violations;
        ])
    [ 1; 4; 16; 64 ];
  ctx.emit_table
    ~title:
      (Printf.sprintf
         "T11: long-lived churn, %d concurrent workers (namespace stays put \
          as acquisitions grow)"
         n)
    table;
  ctx.log
    "T11 note: one-shot renaming would need ~acquisitions names; long-lived \
     reuse keeps every name below m."

let exp =
  {
    Experiment.id = "t11";
    title = "Long-lived renaming under churn (extension)";
    claim =
      "Long-lived extension: holders always have distinct names and the \
       namespace stays O(concurrent contention) over unbounded acquisitions";
    run;
    jobs = None;
  }
