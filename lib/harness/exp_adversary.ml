let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 512 in
  let instance = Renaming.Rebatching.make ~t0:3 ~n () in
  let algo env = Renaming.Rebatching.get_name env instance in
  let table =
    Table.create
      ~columns:
        [
          ("adversary", Table.Left);
          ("max steps", Table.Right);
          ("avg steps", Table.Right);
          ("total", Table.Right);
          ("unique", Table.Left);
        ]
  in
  let strategies =
    Sim.Adversary.all_builtin
    @ [ Sim.Adversary.with_crashes ~fraction:0.25 Sim.Adversary.greedy_collision ]
  in
  List.iter
    (fun adversary ->
      let maxs = Stats.Summary.acc_create () in
      let avgs = Stats.Summary.acc_create () in
      let totals = Stats.Summary.acc_create () in
      let all_unique = ref true in
      for trial = 0 to ctx.trials - 1 do
        let r = Sim.Runner.run ~adversary ~seed:(ctx.seed + trial) ~n ~algo () in
        if not (Sim.Runner.check_unique_names r) then all_unique := false;
        Stats.Summary.acc_add maxs (float_of_int r.Sim.Runner.max_steps);
        let survivors =
          Array.length r.Sim.Runner.names - r.Sim.Runner.crash_count
        in
        Stats.Summary.acc_add avgs
          (float_of_int r.Sim.Runner.total_steps /. float_of_int (max 1 survivors));
        Stats.Summary.acc_add totals (float_of_int r.Sim.Runner.total_steps)
      done;
      Table.add_row table
        [
          adversary.Sim.Adversary.name;
          Table.cell_float (Stats.Summary.acc_mean maxs);
          Table.cell_float (Stats.Summary.acc_mean avgs);
          Table.cell_float ~decimals:0 (Stats.Summary.acc_mean totals);
          (if !all_unique then "yes" else "NO");
        ])
    strategies;
  ctx.emit_table
    ~title:
      (Printf.sprintf "T7: ReBatching (t0=3) under each adversary, n=%d" n)
    table

let exp =
  {
    Experiment.id = "t7";
    title = "Adversary ablation";
    claim =
      "§1/§2: the w.h.p. bounds hold against a strong adaptive adversary — no \
       schedule escapes the log log n band";
    run;
    jobs = None;
  }
