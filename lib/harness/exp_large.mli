(** Large-n decade sweeps (t1/t5 shapes at n = 10^3 .. 10^8) on the
    streaming fast core.

    Registered as [t1l] and [t5l] in {!Registry.large}: excluded from
    [Registry.all] (a default serial run of every experiment must stay
    seconds, not minutes), reachable by id via [Registry.find], and the
    job views behind `repro_cli bench --large`.

    The decade grid is [1e3 .. scale * hi] ([hi] = 1e8 for t1l, 1e7 for
    t5l), so a scaled-down run produces a subset of the full grid's
    decades and stays comparable to the committed BENCH_1.json under the
    `--check` tolerance bands.  Trial counts attenuate deterministically
    on the top decades; each job meters allocation of the measured loop
    via [Gc.minor_words] and reports it as the [words_per_op] value. *)

val t1l : Experiment.t
(** Step complexity by decade: ReBatching (paper and t0 = 3 constants),
    uniform probing and cyclic scan, n up to 10^8. *)

val t5l : Experiment.t
(** Adaptive renaming by decade: adaptive ReBatching (t0 = 3) and the
    doubling baseline, contention k up to 10^7. *)

val trials_at : trials:int -> int -> int
(** The deterministic per-decade trial attenuation ([trials] at n < 10^7,
    half at 10^7, a quarter at 10^8; always at least 1) — exposed so the
    artifact tooling and tests agree with the job lists. *)

val grid_lo : int
(** Smallest decade of every grid (10^3). *)
