let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 192 in
  let rebatch = Renaming.Rebatching.make ~t0:3 ~n () in
  let budget =
    Renaming.Rebatching.probe_budget rebatch 0
    + Renaming.Rebatching.kappa rebatch - 1
    + Renaming.Rebatching.probe_budget rebatch (Renaming.Rebatching.kappa rebatch)
  in
  let table =
    Table.create
      ~columns:
        [
          ("algorithm", Table.Left);
          ("seed", Table.Right);
          ("random max", Table.Right);
          ("searched max", Table.Right);
          ("evaluations", Table.Right);
          ("phase budget", Table.Right);
        ]
  in
  let attack label algo budget_cell =
    for trial = 0 to min 2 (ctx.trials - 1) do
      let seed = ctx.seed + trial in
      let r =
        Sim.Search.hill_climb ~seed ~n ~algo ~rounds:25 ~mutants_per_round:6
          Sim.Search.Max_steps
      in
      Table.add_row table
        [
          label;
          Table.cell_int seed;
          Table.cell_int r.Sim.Search.initial_score;
          Table.cell_int r.Sim.Search.best_score;
          Table.cell_int r.Sim.Search.evaluations;
          budget_cell;
        ]
    done
  in
  attack "rebatching(t0=3)"
    (fun env -> Renaming.Rebatching.get_name env rebatch)
    (Table.cell_int budget);
  attack "uniform"
    (fun env -> Baselines.Uniform_probe.get_name env ~m:(2 * n) ~max_steps:(1000 * n))
    "-";
  ctx.emit_table
    ~title:
      (Printf.sprintf
         "T14: hill-climbed worst schedules (coins frozen), n=%d" n)
    table;
  ctx.log
    "T14 note: searched schedules are oblivious decision lists; staying \
     within the phase budget means scheduling alone cannot break Theorem \
     4.1's band for these coins."

let exp =
  {
    Experiment.id = "t14";
    title = "Adversarial schedule search (extension)";
    claim =
      "Extension of §2: even schedules optimized against the execution \
       cannot push ReBatching past its phase budget";
    run;
    jobs = None;
  }
