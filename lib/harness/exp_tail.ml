let run (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 4096 in
  let runs = max (10 * ctx.trials) 50 in
  let instance = Renaming.Rebatching.make ~t0:3 ~n () in
  let t0 = Renaming.Rebatching.probe_budget instance 0 in
  let kappa = Renaming.Rebatching.kappa instance in
  let spec = Substrate.rebatching instance in
  (* Pool per-process step counts and per-run maxima across many
     independent executions. *)
  let all_steps = ref [] in
  let maxima = ref [] in
  for trial = 0 to runs - 1 do
    let r =
      Substrate.run_sequential ctx.substrate spec ~seed:(ctx.seed + trial) ~n ()
    in
    if not (Sim.Runner.check_unique_names r) then failwith "T12: uniqueness violated";
    Array.iter (fun s -> all_steps := float_of_int s :: !all_steps) r.Sim.Runner.steps;
    maxima := float_of_int r.Sim.Runner.max_steps :: !maxima
  done;
  let steps = Array.of_list !all_steps in
  let total = Array.length steps in
  let tail_table =
    Table.create
      ~columns:
        [
          ("threshold j", Table.Right);
          ("P[steps > j]", Table.Right);
          ("batch analogy 2^-(2^i)", Table.Right);
        ]
  in
  (* Thresholds track the batch boundaries: exceeding t0 + i - 1 means the
     process survived into batch i. *)
  for i = 0 to kappa do
    let threshold = t0 + i - 1 in
    let exceed =
      Array.fold_left
        (fun acc s -> if s > float_of_int threshold then acc + 1 else acc)
        0 steps
    in
    let analogy =
      if i = 0 then nan else 2. ** (-.(2. ** float_of_int i))
    in
    Table.add_row tail_table
      [
        Table.cell_int threshold;
        Printf.sprintf "%.2e" (float_of_int exceed /. float_of_int total);
        (if Float.is_nan analogy then "-" else Printf.sprintf "%.2e" analogy);
      ]
  done;
  ctx.emit_table
    ~title:
      (Printf.sprintf
         "T12: per-process step tail, n=%d, %d runs (%d process samples)" n runs
         total)
    tail_table;
  (* Quantiles of the per-run maximum, with bootstrap CIs. *)
  let maxima = Array.of_list !maxima in
  let rng = Prng.Splitmix.of_int (ctx.seed + 1_000_003) in
  let quantile_table =
    Table.create
      ~columns:
        [
          ("statistic of run max", Table.Left);
          ("value", Table.Right);
          ("95% bootstrap CI", Table.Left);
        ]
  in
  List.iter
    (fun (label, statistic) ->
      let iv = Stats.Bootstrap.ci rng ~statistic maxima in
      Table.add_row quantile_table
        [
          label;
          Table.cell_float iv.Stats.Bootstrap.point;
          Printf.sprintf "[%.2f, %.2f]" iv.Stats.Bootstrap.low
            iv.Stats.Bootstrap.high;
        ])
    [
      ("median", fun xs -> Stats.Summary.percentile xs 0.5);
      ("p95", fun xs -> Stats.Summary.percentile xs 0.95);
      ("max", Array.fold_left Float.max neg_infinity);
      ("mean", Stats.Summary.mean);
    ];
  ctx.emit_table
    ~title:"T12: distribution of the per-run worst process" quantile_table;
  let bound = t0 + kappa - 1 + Renaming.Rebatching.probe_budget instance kappa in
  let over =
    Array.fold_left
      (fun acc m -> if m > float_of_int bound then acc + 1 else acc)
      0 maxima
  in
  ctx.log
    (Printf.sprintf
       "T12: runs exceeding the deterministic phase budget t0+kappa-1+beta = \
        %d: %d of %d (backup-phase events; Theorem 4.1 predicts ~0)."
       bound over runs)

(* Job grain: one independent execution per job; the tail statistics
   (exceedance counts at each batch-boundary threshold) are summed across
   records downstream, so each job reports its own counts. *)
let jobs (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 4096 in
  let runs = max (10 * ctx.Experiment.trials) 50 in
  List.init runs (fun trial ->
      {
        Experiment.sweep_point = 0;
        point_label = Printf.sprintf "n=%d" n;
        trial;
        params = [ ("n", float_of_int n); ("runs", float_of_int runs) ];
        run_job =
          (fun ~seed ->
            let instance = Renaming.Rebatching.make ~t0:3 ~n () in
            let t0 = Renaming.Rebatching.probe_budget instance 0 in
            let kappa = Renaming.Rebatching.kappa instance in
            let spec = Substrate.rebatching instance in
            let r =
              Substrate.run_sequential ctx.Experiment.substrate spec ~seed ~n ()
            in
            if not (Sim.Runner.check_unique_names r) then
              failwith "T12: uniqueness violated";
            let exceed threshold =
              Array.fold_left
                (fun acc s -> if s > threshold then acc + 1 else acc)
                0 r.Sim.Runner.steps
            in
            let tail =
              List.init (kappa + 1) (fun i ->
                  ( Printf.sprintf "exceed_batch_%d" i,
                    float_of_int (exceed (t0 + i - 1)) ))
            in
            ("max_steps", float_of_int r.Sim.Runner.max_steps)
            :: ( "total_per_proc",
                 float_of_int r.Sim.Runner.total_steps /. float_of_int n )
            :: tail);
      })

let exp =
  {
    Experiment.id = "t12";
    title = "Tail of the step distribution (w.h.p. claims)";
    claim =
      "Theorem 4.1 + Lemma 4.2: P[a process exceeds t0 + i probes] decays \
       doubly exponentially in i";
    run;
    jobs = Some jobs;
  }
