type ctx = {
  seed : int;
  trials : int;
  scale : float;
  substrate : Substrate.t;
  emit_table : title:string -> Table.t -> unit;
  log : string -> unit;
}

type job = {
  sweep_point : int;
  point_label : string;
  trial : int;
  params : (string * float) list;
  run_job : seed:int -> (string * float) list;
}

type t = {
  id : string;
  title : string;
  claim : string;
  run : ctx -> unit;
  jobs : (ctx -> job list) option;
}

let default_ctx ?(seed = 1) ?(trials = 5) ?(scale = 1.0)
    ?(substrate = Substrate.Fast) () =
  (* The default ctx IS the CLI's stdout sink; every other ctx writes
     to a caller-supplied channel.  repro-lint: allow stdout-print *)
  let out = print_string in
  {
    seed;
    trials;
    scale;
    substrate;
    emit_table =
      (fun ~title table -> out ("\n" ^ title ^ "\n" ^ Table.render table));
    log = (fun line -> out (line ^ "\n"));
  }
