let lambda_grid = [ 0.05; 0.1; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 ]

let cdf_table (ctx : Experiment.ctx) =
  let table =
    Table.create
      ~columns:
        [
          ("lambda", Table.Right);
          ("gamma", Table.Right);
          ("CDF violations (n<=200)", Table.Right);
          ("min margin", Table.Right);
        ]
  in
  List.iter
    (fun lambda ->
      let gamma = Lowerbound.Coupling.gamma_of lambda in
      let violations = ref 0 in
      let min_margin = ref infinity in
      for n = 0 to 200 do
        let margin =
          Prng.Dist.poisson_cdf ~lambda:gamma n
          -. Prng.Dist.poisson_cdf ~lambda (n + 1)
        in
        if margin < -1e-12 then incr violations;
        if margin < !min_margin then min_margin := margin
      done;
      Table.add_row table
        [
          Table.cell_float lambda;
          Table.cell_float ~decimals:4 gamma;
          Table.cell_int !violations;
          Printf.sprintf "%.2e" !min_margin;
        ])
    lambda_grid;
  ctx.emit_table ~title:"F1a: Lemma 6.5 CDF domination P_lambda(n+1) <= P_gamma(n)"
    table

let coupling_table (ctx : Experiment.ctx) =
  let rng = Prng.Splitmix.of_int ctx.seed in
  let samples = 20_000 in
  let table =
    Table.create
      ~columns:
        [
          ("lambda", Table.Right);
          ("gamma", Table.Right);
          ("mean Z", Table.Right);
          ("mean Y", Table.Right);
          ("Y > max(0,Z-1)", Table.Right);
        ]
  in
  List.iter
    (fun lambda ->
      let gamma = Lowerbound.Coupling.gamma_of lambda in
      let sum_z = ref 0 and sum_y = ref 0 and violations = ref 0 in
      for _ = 1 to samples do
        let z, y = Lowerbound.Coupling.joint_sample rng ~lambda in
        sum_z := !sum_z + z;
        sum_y := !sum_y + y;
        if y > max 0 (z - 1) then incr violations
      done;
      Table.add_row table
        [
          Table.cell_float lambda;
          Table.cell_float ~decimals:4 gamma;
          Table.cell_float ~decimals:4 (float_of_int !sum_z /. float_of_int samples);
          Table.cell_float ~decimals:4 (float_of_int !sum_y /. float_of_int samples);
          Table.cell_int !violations;
        ])
    lambda_grid;
  ctx.emit_table
    ~title:
      (Printf.sprintf "F1b: realized coupling over %d samples per rate" samples)
    table

let recursion_table (ctx : Experiment.ctx) =
  let n = Sweep.scaled ctx.scale 16384 in
  let config = Lowerbound.Marking.default_config ~n in
  let result = Lowerbound.Marking.run ~seed:ctx.seed config in
  let table =
    Table.create
      ~columns:
        [
          ("layer", Table.Right);
          ("marked", Table.Right);
          ("rate lambda^l", Table.Right);
          ("Lemma 6.6 bound", Table.Right);
          ("holds", Table.Left);
        ]
  in
  let prev_rate = ref nan in
  Array.iter
    (fun (ls : Lowerbound.Marking.layer_stats) ->
      let bound =
        if Float.is_nan !prev_rate then nan
        else
          Lowerbound.Theory.rate_recursion_lower_bound ~s:config.locations
            ~lambda:!prev_rate
      in
      Table.add_row table
        [
          Table.cell_int ls.layer;
          Table.cell_int ls.marked;
          Table.cell_float ~decimals:4 ls.rate;
          Table.cell_float ~decimals:4 bound;
          (if Float.is_nan bound then "-"
           else if ls.rate >= bound -. 1e-9 then "yes"
           else "NO");
        ];
      prev_rate := ls.rate)
    result.series;
  ctx.emit_table
    ~title:
      (Printf.sprintf "F1c: marking dynamics vs Lemma 6.6 recursion, n=%d, s=%d" n
         config.locations)
    table

let run (ctx : Experiment.ctx) =
  cdf_table ctx;
  coupling_table ctx;
  recursion_table ctx

let exp =
  {
    Experiment.id = "f1";
    title = "Coupling gadget and rate recursion";
    claim =
      "Lemmas 6.4-6.6: Pois(gamma) coupling with Y <= max(0,Z-1) exists and \
       the marked rate obeys lambda' >= lambda^2/(4s)";
    run;
    jobs = None;
  }
