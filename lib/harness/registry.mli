(** The experiment registry: every table/figure of DESIGN.md §4. *)

val all : Experiment.t list
(** In presentation order: t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, f1,
    f2.  Excludes the large-n sweeps ({!large}). *)

val large : Experiment.t list
(** The large-n decade sweeps (t1l, t5l): minutes each at full scale, so
    runnable by id but never part of {!all}. *)

val find : string -> Experiment.t option
(** Look up by id (case-insensitive), across {!all} and {!large}. *)

val ids : unit -> string list
