type t = Fast | Effects | Atomic

let to_string = function
  | Fast -> "fast"
  | Effects -> "effects"
  | Atomic -> "atomic"

let of_string s =
  match String.lowercase_ascii s with
  | "fast" -> Some Fast
  | "effects" -> Some Effects
  | "atomic" -> Some Atomic
  | _ -> None

let all = [ Fast; Effects; Atomic ]

type spec = {
  label : string;
  algo : Renaming.Env.t -> int option;
  fast : Renaming.Fast_algo.t;
  capacity : int;
}

let label spec = spec.label
let closure spec = spec.algo
let fast_algo spec = spec.fast
let capacity spec = spec.capacity

(* Wrap the reference closure so [Events.Backup_entered] also reaches a
   plain counter hook — the closure-side mirror of
   [Fast_algo.rebatching ~on_backup].  Composes with any [on_event] the
   runner installs, since the original [emit] is still called. *)
let intercept_backups on_backup algo env =
  match on_backup with
  | None -> algo env
  | Some hook ->
    let emit e =
      (match e with
      | Renaming.Events.Backup_entered _ -> hook ()
      | _ -> ());
      env.Renaming.Env.emit e
    in
    algo { env with Renaming.Env.emit }

let rebatching ?(backup = true) ?on_backup instance =
  {
    label = "rebatching";
    algo =
      intercept_backups on_backup (fun env ->
          Renaming.Rebatching.get_name ~backup env instance);
    fast = Renaming.Fast_algo.rebatching ~backup ?on_backup instance;
    capacity = Renaming.Rebatching.base instance + Renaming.Rebatching.size instance;
  }

(* The adaptive algorithms materialize objects on demand; which indices a
   run reaches depends on contention, so the atomic substrate's fixed
   array covers the first 16 objects — far beyond anything the
   experiments' [k] can touch (the race ladder reaches object
   [~log2 k + O(1)]). *)
let adaptive_capacity space = Renaming.Object_space.total_size space 16

let adaptive space =
  {
    label = "adaptive";
    algo = (fun env -> Renaming.Adaptive_rebatching.get_name env space);
    fast = Renaming.Fast_algo.adaptive space;
    capacity = adaptive_capacity space;
  }

let fast_adaptive space =
  {
    label = "fast-adaptive";
    algo = (fun env -> Renaming.Fast_adaptive_rebatching.get_name env space);
    fast = Renaming.Fast_algo.fast_adaptive space;
    capacity = adaptive_capacity space;
  }

let uniform ~m ~max_steps =
  {
    label = "uniform";
    algo = (fun env -> Baselines.Uniform_probe.get_name env ~m ~max_steps);
    fast = Renaming.Fast_algo.uniform ~m ~max_steps;
    capacity = m;
  }

let linear_scan ~m =
  {
    label = "linear-scan";
    algo = (fun env -> Baselines.Linear_scan.get_name env ~m);
    fast = Renaming.Fast_algo.linear_scan ~m;
    capacity = m;
  }

let cyclic_scan ~m =
  {
    label = "cyclic-scan";
    algo = (fun env -> Baselines.Cyclic_scan.get_name env ~m);
    fast = Renaming.Fast_algo.cyclic_scan ~m;
    capacity = m;
  }

let adaptive_doubling ?probes_per_level space =
  {
    label = "doubling";
    algo =
      (fun env ->
        Baselines.Adaptive_doubling.get_name env ?probes_per_level space);
    fast = Renaming.Fast_algo.adaptive_doubling ?probes_per_level space;
    capacity = adaptive_capacity space;
  }

(* Sequential driver over real atomics: same per-pid coin streams and the
   same shuffled completion order as [Runner.run_sequential], with
   [Shm.Atomic_space] supplying the TAS cells.  Sequential execution is
   deterministic, so this replays the simulator runs word for word — the
   cross-substrate check that the simulated TAS semantics match the
   genuine article. *)
let atomic_sequential ~shuffled ~seed ~n spec =
  let space = Shm.Atomic_space.create ~capacity:spec.capacity in
  let root = Prng.Splitmix.of_int seed in
  let names = Array.make n None in
  let steps = Array.make n 0 in
  let hwm = ref 0 in
  let order =
    if shuffled then Prng.Shuffle.permutation (Prng.Splitmix.split_at root n) n
    else Array.init n (fun i -> i)
  in
  Array.iter
    (fun pid ->
      let count = ref 0 in
      let tas loc =
        incr count;
        if loc >= !hwm then hwm := loc + 1;
        Shm.Atomic_space.tas space loc
      in
      let reset loc =
        incr count;
        Shm.Atomic_space.release space loc
      in
      let rng = Prng.Splitmix.split_at root pid in
      let env =
        Renaming.Env.make ~reset ~pid ~tas ~random_int:(Prng.Splitmix.int rng) ()
      in
      names.(pid) <- spec.algo env;
      steps.(pid) <- !count)
    order;
  let total_steps = Array.fold_left ( + ) 0 steps in
  let crashed = Array.make n false in
  {
    Sim.Runner.names;
    steps;
    crashed;
    total_steps;
    max_steps = Sim.Runner.surviving_max steps crashed;
    space_used = !hwm;
    crash_count = 0;
    point_contention = 1;
  }

let run_sequential ?(shuffled = true) substrate spec ~seed ~n () =
  match substrate with
  | Fast ->
    Sim.Fast_core.run_sequential_once ~shuffled ~seed ~n ~algo:spec.fast ()
  | Effects ->
    Sim.Runner.run_sequential ~shuffled ~seed ~n ~algo:spec.algo ()
  | Atomic -> atomic_sequential ~shuffled ~seed ~n spec

let run ?max_total_steps substrate spec ~seed ~n () =
  match substrate with
  | Fast -> Sim.Fast_core.run_once ?max_total_steps ~seed ~n ~algo:spec.fast ()
  | Effects -> Sim.Runner.run ?max_total_steps ~seed ~n ~algo:spec.algo ()
  | Atomic ->
    invalid_arg
      "Substrate.run: the atomic substrate is sequential-only; use \
       run_sequential, or the effects substrate for adversarial schedules"
