(* The shared JSON subset (see the interface for the design rationale).
   This code began life as Engine.Sink.Json and moved here so the chaos
   layer's plan/verdict artifacts parse with exactly the decoder the
   result store uses; booleans and arrays were added for those
   artifacts.  Anything outside the subset — or a line cut short by a
   crash — yields None from [parse]. *)

exception Malformed

type t =
  | Num of float
  | Int of int
  | Str of string
  | Bool of bool
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_float b x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else if Float.is_nan x then Buffer.add_string b "\"nan\""
  else if x = Float.infinity then Buffer.add_string b "\"inf\""
  else if x = Float.neg_infinity then Buffer.add_string b "\"-inf\""
  else Buffer.add_string b (Printf.sprintf "%.17g" x)

let add_assoc b kvs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      escape_string b k;
      Buffer.add_char b ':';
      add_float b v)
    kvs;
  Buffer.add_char b '}'

let rec add_value b = function
  | Num f -> add_float b f
  | Int i -> Buffer.add_string b (string_of_int i)
  | Str s -> escape_string b s
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        add_value b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        add_value b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add_value b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding: recursive descent over the subset we emit *)

let parse_exn (s : string) : t =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos >= len then raise Malformed else s.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c = if peek () <> c then raise Malformed else advance () in
  let literal word =
    String.iter (fun c -> if peek () <> c then raise Malformed else advance ()) word
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > len then raise Malformed;
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> raise Malformed
          in
          (* Our encoder only emits \u00XX for control bytes. *)
          if code < 0x100 then Buffer.add_char b (Char.chr code)
          else raise Malformed;
          pos := !pos + 4
        | _ -> raise Malformed);
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then raise Malformed;
    let lexeme = String.sub s start (!pos - start) in
    (* Integer lexemes stay exact: a 62-bit SplitMix seed does not
       survive a round-trip through float. *)
    match int_of_string_opt lexeme with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lexeme with
      | Some f -> Num f
      | None -> raise Malformed)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Str (parse_string ())
    | '{' -> parse_obj ()
    | '[' -> parse_arr ()
    | 't' -> literal "true"; Bool true
    | 'f' -> literal "false"; Bool false
    | _ -> parse_number ()
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      advance ();
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | ',' -> advance (); elements (v :: acc)
        | ']' -> advance (); List.rev (v :: acc)
        | _ -> raise Malformed
      in
      Arr (elements [])
    end
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | ',' -> advance (); members ((k, v) :: acc)
        | '}' -> advance (); List.rev ((k, v) :: acc)
        | _ -> raise Malformed
      in
      Obj (members [])
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then raise Malformed;
  v

let parse s = match parse_exn s with v -> Some v | exception Malformed -> None

(* ------------------------------------------------------------------ *)
(* Field accessors *)

let str fields name =
  match List.assoc_opt name fields with
  | Some (Str s) -> s
  | _ -> raise Malformed

let num fields name =
  match List.assoc_opt name fields with
  | Some (Num f) -> f
  | Some (Int i) -> float_of_int i
  | Some (Str "nan") -> Float.nan
  | Some (Str "inf") -> Float.infinity
  | Some (Str "-inf") -> Float.neg_infinity
  | _ -> raise Malformed

let num_opt fields name ~default =
  match List.assoc_opt name fields with
  | None -> default
  | Some _ -> num fields name

(* Exact integer fields (indices, seeds).  A float lexeme that happens
   to be integral is accepted for robustness against schema-1 stores
   re-encoded by other tools, but our own encoder always emits the
   plain decimal form. *)
let int_ fields name =
  match List.assoc_opt name fields with
  | Some (Int i) -> i
  | Some (Num f) when Float.is_integer f && Float.abs f < 1e15 ->
    int_of_float f
  | _ -> raise Malformed

let int_opt fields name ~default =
  match List.assoc_opt name fields with
  | None -> default
  | Some _ -> int_ fields name

let bool_ fields name =
  match List.assoc_opt name fields with
  | Some (Bool v) -> v
  | _ -> raise Malformed

let arr fields name =
  match List.assoc_opt name fields with
  | Some (Arr vs) -> vs
  | _ -> raise Malformed

let obj = function Obj fields -> fields | _ -> raise Malformed

let assoc fields name =
  match List.assoc_opt name fields with
  | Some (Obj kvs) ->
    List.map
      (fun (k, v) ->
        match v with
        | Num f -> (k, f)
        | Int i -> (k, float_of_int i)
        | Str "nan" -> (k, Float.nan)
        | Str "inf" -> (k, Float.infinity)
        | Str "-inf" -> (k, Float.neg_infinity)
        | _ -> raise Malformed)
      kvs
  | _ -> raise Malformed
