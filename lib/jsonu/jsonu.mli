(** The repository's shared JSON subset.

    One deliberately small, dependency-free encoder/decoder used by every
    store and artifact in the tree: the {!Engine.Sink} result store (which
    re-exports this module as [Sink.Json]), the {!Engine.Fault} quarantine,
    the run manifest, and the {!Chaos} fault-plan / verdict artifacts.
    Sharing one decoder means `repro_cli doctor` audits every artifact with
    exactly the parser that wrote it.

    The subset: objects of strings, numbers, booleans, arrays and nested
    objects — no [null], no unicode escapes beyond [\u00XX] control bytes.
    Floats round-trip exactly ([%.17g]); integer lexemes stay exact OCaml
    ints (a 62-bit SplitMix seed does not survive a trip through float). *)

exception Malformed

type t =
  | Num of float
  | Int of int
      (** a numeric lexeme that is an exact OCaml int — kept separate from
          [Num] so 62-bit seeds survive the round-trip *)
  | Str of string
  | Bool of bool
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> t option
(** [None] outside the subset (or on a line truncated by a crash). *)

(** {1 Encoding helpers} *)

val escape_string : Buffer.t -> string -> unit
val add_float : Buffer.t -> float -> unit

val add_assoc : Buffer.t -> (string * float) list -> unit
(** A flat string→number object. *)

val to_string : t -> string
(** Canonical encoding: object fields in list order, floats via
    {!add_float}, no whitespace.  [parse (to_string v)] re-reads [v]
    exactly, which is what makes recorded chaos plans replay
    byte-identically. *)

(** {1 Field accessors}

    All raise {!Malformed} on a missing or mistyped field. *)

val str : (string * t) list -> string -> string
val num : (string * t) list -> string -> float
val num_opt : (string * t) list -> string -> default:float -> float

val int_ : (string * t) list -> string -> int
(** Exact integer field (indices, seeds) — never routed through float. *)

val int_opt : (string * t) list -> string -> default:int -> int
val bool_ : (string * t) list -> string -> bool
val arr : (string * t) list -> string -> t list
val obj : t -> (string * t) list
val assoc : (string * t) list -> string -> (string * float) list
