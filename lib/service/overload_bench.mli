(** The overload-soak artifact ([bench-service-overload], schema 1).

    Written by [repro_cli chaos overload]: a calibration run measures
    the daemon's single-rate capacity, then a soak drives open-loop
    Poisson traffic at [overdrive] times that and records whether
    goodput plateaued (within 20% of capacity) instead of collapsing,
    with the shed/expired split, accepted-request latency, daemon RSS
    at both ends, and the queue/overload telemetry from the final
    stats snapshot.

    Shares the [bench/BENCH_SERVICE_<k>.json] numbering with
    {!Service_bench} and {!Recovery_bench}; the committed baseline is
    index 2, gated by [--check]. *)

type t = {
  shards : int;
  capacity : int;
  conns : int;
  clients : int;
  calibrate_rate : float;  (** offered rate of the calibration run *)
  capacity_ops : float;
      (** measured capacity: the saturated calibration run's
          daemon-side goodput, /s *)
  overdrive : float;  (** soak rate = [overdrive * capacity_ops] *)
  rate : float;  (** soak offered rate, /s *)
  duration_s : float;
  seed : int;
  max_queue : int;
  deadline_ms : int;  (** per-request budget stamped by the soak *)
  wall_s : float;
  offered : int;
  acquired : int;  (** served — the goodput numerator *)
  shed : int;  (** {!Wire.Busy} refusals *)
  expired : int;  (** deadline-expired sheds (client- and server-side) *)
  acquire_failures : int;  (** [err_capacity] *)
  released : int;
  errors : int;
  timeouts : int;
  violations : int;
  leaked : int;
  goodput : float;
      (** client-side: grants received inside the arrival window, /s —
          on starved machines this folds in generator read-starvation *)
  goodput_daemon : float;
      (** daemon-side: growth of the daemon's served-acquire counter
          over the arrival window, /s — the plateau-gate numerator *)
  lat_p50 : int;  (** accepted-request latency, ns *)
  lat_p99 : int;
  lat_max : int;
  rss_start_kb : int;  (** daemon RSS before the soak *)
  rss_end_kb : int;  (** and after the drain *)
  queue_peak : int;  (** daemon-reported deepest shard queue *)
  queue_bound : int;
  level : string;  (** overload level at the final snapshot *)
  drain_complete : bool;
}

val to_json : t -> Jsonu.t
val of_json : Jsonu.t -> t
(** @raise Jsonu.Malformed on kind/schema mismatch or missing fields *)

val load : string -> t
val save : dir:string -> t -> string
(** Next free [BENCH_SERVICE_<k>.json] (shared numbering); returns the
    path. *)

val render : t -> string

val check : threshold:float -> baseline:t -> current:t -> string list
(** Empty = pass.  Absolute: 0 violations/leaks/errors, nonzero shed,
    queue peak within bound, goodput >= 80% of the run's own measured
    capacity (the plateau criterion), RSS growth bounded, drain
    complete.  Relative: goodput floor and accepted-p99 ceiling vs
    [baseline] scaled by [threshold] (with a 500 ms absolute p99
    floor). *)
