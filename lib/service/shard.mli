(** The daemon's name pool: per-domain shards of long-lived ReBatching
    over one real {!Shm.Atomic_space}.

    Each shard is a {!Renaming.Long_lived} instance (ReBatching with
    release, paper §4 + the Helmi–Higham–Woelfel long-lived extension)
    relocated to its own window of a single shared atomic location
    space: shard [s] owns global names [s*m, (s+1)*m) where [m] is the
    per-shard namespace.  Acquires route to a shard by client id and
    run the genuine O(log log n) probe sequence against hardware
    atomics; a release is one atomic reset of the name's cell.

    Concurrency contract: {!acquire} for shard [s] must only be called
    by the worker domain owning [s] (the per-shard SplitMix coin
    stream is single-owner state); {!release}, the counters and
    {!taken_count} are atomic and safe from any domain.  Nothing
    enforces the ownership rule here — {!Server} enforces it by
    construction, one worker domain per shard.

    Leak accounting mirrors the chaos invariant monitor's conservation
    law ({!Chaos.Chaos_runner}): [taken_count] minus the names the
    sessions collectively hold must be zero — every taken cell is a
    name somebody holds, every release returns exactly one cell. *)

type t

val create :
  ?epsilon:float -> ?t0:int -> shards:int -> capacity:int -> seed:int -> unit -> t
(** [create ~shards ~capacity ~seed ()] builds [shards] shards, each
    sized for [capacity] concurrent holders (per-shard namespace
    [m = ceil ((1+epsilon) * capacity)]).  [t0] defaults to 3, the
    repository's practical batch-0 probe budget (T10 ablation), not the
    paper's large constant.
    @raise Invalid_argument if [shards < 1] or [capacity < 1]. *)

val shards : t -> int
val capacity : t -> int
(** per-shard concurrent-holder bound *)

val per_shard_namespace : t -> int
(** [m] *)

val namespace : t -> int
(** [shards * m]; all names are below this *)

val shard_of_client : t -> int -> int
(** Deterministic client→shard routing (SplitMix-diffused, so adjacent
    client ids spread across shards). *)

val shard_of_name : t -> int -> int option
(** [None] if the name is outside the pool's namespace. *)

val acquire : t -> shard:int -> client:int -> int option
(** One long-lived acquisition on [shard]; the returned name is global.
    [None] when the shard's namespace is exhausted (overload) — the
    caller maps this to {!Wire.err_capacity}.  Owner-domain only. *)

val retake : t -> name:int -> [ `Taken | `Already | `Outside ]
(** Recovery path: re-occupy [name]'s cell directly (one TAS), bypassing
    the probe machinery — the name was already won once; replaying its
    journaled grant only needs the occupancy bit back so post-restart
    probes walk around it.  [`Already] means the cell was somehow taken
    (double-grant evidence for the caller to count), [`Outside] that the
    name does not fit this pool's geometry. *)

val release : t -> name:int -> unit
(** Return [name]'s cell to the pool (one atomic reset).  The caller
    (the server loop) must have validated ownership against the
    session ledger.  @raise Invalid_argument if [name] is outside the
    namespace. *)

(** {1 Counters and accounting} *)

val acquires : t -> int
(** successful acquires, all shards *)

val releases : t -> int
val failures : t -> int
(** acquires that returned [None] *)

val probes : t -> int
(** total TAS operations *)

val taken_count : t -> int
(** Cells currently taken across the whole space (O(namespace) scan). *)

val leaked : t -> held:int -> int
(** [leaked t ~held] is [taken_count t - held]: the slot-conservation
    residue given that sessions collectively hold [held] names.  Zero
    on a healthy server; positive means leaked cells. *)

val stats : t -> Jsonu.t
(** Canonical stats object: pool geometry, totals and per-shard
    counters.  Served to clients by {!Wire.Stats_reply}. *)
