(** Lease-based ownership of granted names.

    Every grant the server makes is paired with a lease: a TTL-bounded
    claim tagged with a {e monotonic epoch}.  Clients keep their claims
    alive with the [renew] heartbeat; an expiry sweep reclaims names
    whose holders went silent while still connected — the failure mode
    the held-name ledger alone cannot see.

    The epoch is the tie-breaker for every renew-vs-expiry race at the
    TTL boundary: a release (or an idempotent-acquire token match) is
    honoured only if it carries the epoch of the {e current} lease on
    that name.  Once a lease expires and the name is re-granted, the
    new lease has a strictly larger epoch, so the stale holder's
    release is rejected ([`Stale]) and its request token no longer
    matches — a stale holder can never free or steal a reissued name.

    Time never flows implicitly: every operation that touches a clock
    takes [now] explicitly, which keeps the structure a pure function
    of its inputs and lets the QCheck race property drive the TTL
    boundary deterministically.  All operations are single-domain (the
    server's I/O domain owns the table). *)

type t

val create : ttl_s:float -> unit -> t
(** [ttl_s] is clamped below at 1 ms. *)

val ttl_s : t -> float
val ttl_ms : t -> int

(** {1 Granting and restoring} *)

val grant : t -> now:float -> name:int -> holder:int option -> token:int -> int
(** Lease [name] to [holder] (a connection id; [None] marks an orphan
    whose owner is unknown, e.g. a crash-recovered grant) until
    [now + ttl].  [token <> 0] binds the client's idempotency token to
    this lease.  Returns the lease's epoch — strictly larger than every
    epoch handed out before, across the table's lifetime. *)

val restore : t -> now:float -> name:int -> epoch:int -> token:int -> unit
(** Recovery path: re-install a journaled lease {e keeping its original
    epoch} (so surviving clients' epochs and tokens still match), as an
    orphan with a fresh TTL.  Bumps the epoch counter past [epoch]. *)

val set_next_epoch : t -> int -> unit
(** Continue the monotonic epoch sequence from a journal replay. *)

(** {1 The race-resolving operations} *)

val renew : t -> now:float -> holder:int -> int
(** Extend every lease [holder] currently holds to [now + ttl]; returns
    how many.  A lease past its TTL but not yet swept is still
    renewable — it is the {e sweep}, not the clock, that kills it. *)

val release : t -> name:int -> epoch:int -> [ `Released | `Stale | `Unknown ]
(** [`Released] — epoch matched, lease (and token binding) removed.
    [`Stale] — [name] is leased, but under a different (newer) epoch:
    the caller's claim died and the name was reissued; nothing changes.
    [`Unknown] — no lease on [name]. *)

val expire_due : t -> now:float -> (int * int * int option * int) list
(** Remove and return every lease whose TTL has passed, as
    [(name, epoch, holder, token)] sorted by name.  Token bindings die
    with their leases, so an expired holder's retry token can never
    match a reissued name. *)

val rebind : t -> now:float -> name:int -> epoch:int -> holder:int -> bool
(** Idempotent-acquire dedup: re-attach the lease on [name] (which must
    still carry [epoch]) to [holder] and refresh its TTL.  False if the
    lease is gone or reissued — the retry must be a fresh acquire. *)

val find_token : t -> token:int -> (int * int) option
(** The live [(name, epoch)] a nonzero token is bound to, if its lease
    still stands. *)

(** {1 Inspection} *)

val epoch_of : t -> name:int -> int option
val holder_of : t -> name:int -> int option option
(** [None] — not leased; [Some None] — orphan; [Some (Some c)] — held
    by connection [c]. *)

val expires_of : t -> name:int -> float option
val held : t -> int
(** live leases *)

val names_of_holder : t -> holder:int -> int list
(** sorted *)

(** {1 Snapshots}

    Deep-copy save/restore so the model checker ({!Lease_model} driven
    by [Analysis.Explore]) can rewind the table around DFS branches.
    O(live leases); the TTL is part of the handle, not the snapshot. *)

type snapshot

val snapshot : t -> snapshot
val restore_snapshot : t -> snapshot -> unit
