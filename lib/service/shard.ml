type shard = {
  index : int;
  ll : Renaming.Long_lived.t;
  env : Renaming.Env.t;  (* owner-domain only: carries the coin stream *)
  acquires : int Atomic.t;
  releases : int Atomic.t;
  failures : int Atomic.t;
  probes : int Atomic.t;
}

type t = {
  space : Shm.Atomic_space.t;
  pool : shard array;
  capacity : int;
  per_shard : int;
  route_salt : Prng.Splitmix.t;  (* never advanced; split_at per client *)
}

let create ?(epsilon = 1.0) ?(t0 = 3) ~shards ~capacity ~seed () =
  if shards < 1 then invalid_arg "Shard.create: shards < 1";
  if capacity < 1 then invalid_arg "Shard.create: capacity < 1";
  (* All shards share one geometry; probe it once to size the space. *)
  let probe = Renaming.Rebatching.make ~epsilon ~t0 ~n:capacity () in
  let m = Renaming.Rebatching.size probe in
  let space = Shm.Atomic_space.create ~capacity:(shards * m) in
  let root = Prng.Splitmix.of_int seed in
  (* [split] advances [root], so the routing stream below is disjoint
     from every per-shard coin stream derived by [split_at]. *)
  let route_salt = Prng.Splitmix.split root in
  let pool =
    Array.init shards (fun index ->
        let ll =
          Renaming.Long_lived.make ~epsilon ~t0 ~base:(index * m) ~n:capacity ()
        in
        let probes = Atomic.make 0 in
        let rng = Prng.Splitmix.split_at root index in
        let env =
          Renaming.Env.make ~pid:index
            ~tas:(fun loc ->
              Atomic.incr probes;
              Shm.Atomic_space.tas space loc)
            ~reset:(fun loc -> Shm.Atomic_space.release space loc)
            ~random_int:(fun bound -> Prng.Splitmix.int rng bound)
            ()
        in
        {
          index;
          ll;
          env;
          acquires = Atomic.make 0;
          releases = Atomic.make 0;
          failures = Atomic.make 0;
          probes;
        })
  in
  { space; pool; capacity; per_shard = m; route_salt }

let shards t = Array.length t.pool
let capacity t = t.capacity
let per_shard_namespace t = t.per_shard
let namespace t = Array.length t.pool * t.per_shard

(* Diffuse the client id through the seed tree so routing is a stable
   pure function of (seed, client) but adjacent ids do not pile onto
   one shard. *)
let shard_of_client t client =
  let s = Prng.Splitmix.split_at t.route_salt (client land max_int) in
  Prng.Splitmix.int s (Array.length t.pool)

let shard_of_name t name =
  if name < 0 || name >= namespace t then None else Some (name / t.per_shard)

let acquire t ~shard ~client:_ =
  let s = t.pool.(shard) in
  match Renaming.Long_lived.acquire s.env s.ll with
  | Some name ->
    Atomic.incr s.acquires;
    Some name
  | None ->
    Atomic.incr s.failures;
    None

(* Recovery: re-occupy a journaled grant's cell directly.  The probe
   machinery is bypassed on purpose — the name was already won once;
   recovery only restores the occupancy bit so post-restart probes
   walk around it. *)
let retake t ~name =
  match shard_of_name t name with
  | None -> `Outside
  | Some _ -> if Shm.Atomic_space.tas t.space name then `Taken else `Already

let release t ~name =
  match shard_of_name t name with
  | None -> invalid_arg "Shard.release: name outside the pool's namespace"
  | Some i ->
    let s = t.pool.(i) in
    Renaming.Long_lived.release s.env s.ll name;
    Atomic.incr s.releases

let sum t f = Array.fold_left (fun acc s -> acc + Atomic.get (f s)) 0 t.pool
let acquires t = sum t (fun s -> s.acquires)
let releases t = sum t (fun s -> s.releases)
let failures t = sum t (fun s -> s.failures)
let probes t = sum t (fun s -> s.probes)
let taken_count t = Shm.Atomic_space.taken_count t.space
let leaked t ~held = taken_count t - held

let stats t =
  let per_shard =
    Array.to_list t.pool
    |> List.map (fun s ->
           Jsonu.Obj
             [
               ("shard", Jsonu.Int s.index);
               ("acquires", Jsonu.Int (Atomic.get s.acquires));
               ("releases", Jsonu.Int (Atomic.get s.releases));
               ("failures", Jsonu.Int (Atomic.get s.failures));
               ("probes", Jsonu.Int (Atomic.get s.probes));
             ])
  in
  Jsonu.Obj
    [
      ("shards", Jsonu.Int (shards t));
      ("capacity", Jsonu.Int t.capacity);
      ("per_shard_namespace", Jsonu.Int t.per_shard);
      ("namespace", Jsonu.Int (namespace t));
      ("acquires", Jsonu.Int (acquires t));
      ("releases", Jsonu.Int (releases t));
      ("failures", Jsonu.Int (failures t));
      ("probes", Jsonu.Int (probes t));
      ("taken", Jsonu.Int (taken_count t));
      ("per_shard", Jsonu.Arr per_shard);
    ]
