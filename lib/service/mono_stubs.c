/* CLOCK_MONOTONIC for the serving layer's deadline arithmetic.
 *
 * The Unix library shipped with this compiler exposes gettimeofday but
 * not clock_gettime, and deadlines computed from the wall clock break
 * whenever the clock steps (NTP slew, manual set): every in-flight
 * timeout fires early or never.  One tiny stub fixes the class of bug.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value repro_mono_now(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
