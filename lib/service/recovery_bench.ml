type t = {
  cycles : int;
  rate : float;
  duration_s : float;
  seed : int;
  shards : int;
  capacity : int;
  lease_ttl_s : float;
  wire_faults : bool;
  wall_s : float;
  offered : int;
  acquired : int;
  acquire_failures : int;
  released : int;
  errors : int;
  timeouts : int;
  violations : int;
  reconnects : int;
  dropped : int;
  abandoned : int;
  throughput : float;
  duplicate_grants : int;
  leaked_after_expiry : int;
  recovery_p50_ms : float;
  recovery_p99_ms : float;
  recovery_max_ms : float;
  journal_records : int;
  journal_torn_tails : int;
  journal_damaged : int;
  daemon_exit : int;
}

let kind = "bench-service-recovery"

let to_json t =
  Jsonu.Obj
    [
      ("kind", Jsonu.Str kind);
      ("schema", Jsonu.Int 1);
      ("cycles", Jsonu.Int t.cycles);
      ("rate", Jsonu.Num t.rate);
      ("duration_s", Jsonu.Num t.duration_s);
      ("seed", Jsonu.Int t.seed);
      ("shards", Jsonu.Int t.shards);
      ("capacity", Jsonu.Int t.capacity);
      ("lease_ttl_s", Jsonu.Num t.lease_ttl_s);
      ("wire_faults", Jsonu.Bool t.wire_faults);
      ("wall_s", Jsonu.Num t.wall_s);
      ("offered", Jsonu.Int t.offered);
      ("acquired", Jsonu.Int t.acquired);
      ("acquire_failures", Jsonu.Int t.acquire_failures);
      ("released", Jsonu.Int t.released);
      ("errors", Jsonu.Int t.errors);
      ("timeouts", Jsonu.Int t.timeouts);
      ("violations", Jsonu.Int t.violations);
      ("reconnects", Jsonu.Int t.reconnects);
      ("dropped", Jsonu.Int t.dropped);
      ("abandoned", Jsonu.Int t.abandoned);
      ("throughput", Jsonu.Num t.throughput);
      ("duplicate_grants", Jsonu.Int t.duplicate_grants);
      ("leaked_after_expiry", Jsonu.Int t.leaked_after_expiry);
      ("recovery_p50_ms", Jsonu.Num t.recovery_p50_ms);
      ("recovery_p99_ms", Jsonu.Num t.recovery_p99_ms);
      ("recovery_max_ms", Jsonu.Num t.recovery_max_ms);
      ("journal_records", Jsonu.Int t.journal_records);
      ("journal_torn_tails", Jsonu.Int t.journal_torn_tails);
      ("journal_damaged", Jsonu.Int t.journal_damaged);
      ("daemon_exit", Jsonu.Int t.daemon_exit);
    ]

let of_json j =
  let f = Jsonu.obj j in
  if Jsonu.str f "kind" <> kind then raise Jsonu.Malformed;
  if Jsonu.int_ f "schema" <> 1 then raise Jsonu.Malformed;
  {
    cycles = Jsonu.int_ f "cycles";
    rate = Jsonu.num f "rate";
    duration_s = Jsonu.num f "duration_s";
    seed = Jsonu.int_ f "seed";
    shards = Jsonu.int_ f "shards";
    capacity = Jsonu.int_ f "capacity";
    lease_ttl_s = Jsonu.num f "lease_ttl_s";
    wire_faults = Jsonu.bool_ f "wire_faults";
    wall_s = Jsonu.num f "wall_s";
    offered = Jsonu.int_ f "offered";
    acquired = Jsonu.int_ f "acquired";
    acquire_failures = Jsonu.int_ f "acquire_failures";
    released = Jsonu.int_ f "released";
    errors = Jsonu.int_ f "errors";
    timeouts = Jsonu.int_ f "timeouts";
    violations = Jsonu.int_ f "violations";
    reconnects = Jsonu.int_ f "reconnects";
    dropped = Jsonu.int_ f "dropped";
    abandoned = Jsonu.int_ f "abandoned";
    throughput = Jsonu.num f "throughput";
    duplicate_grants = Jsonu.int_ f "duplicate_grants";
    leaked_after_expiry = Jsonu.int_ f "leaked_after_expiry";
    recovery_p50_ms = Jsonu.num f "recovery_p50_ms";
    recovery_p99_ms = Jsonu.num f "recovery_p99_ms";
    recovery_max_ms = Jsonu.num f "recovery_max_ms";
    journal_records = Jsonu.int_ f "journal_records";
    journal_torn_tails = Jsonu.int_ f "journal_torn_tails";
    journal_damaged = Jsonu.int_ f "journal_damaged";
    daemon_exit = Jsonu.int_ f "daemon_exit";
  }

let load path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Jsonu.parse (String.trim contents) with
  | Some j -> of_json j
  | None -> raise Jsonu.Malformed

let save ~dir t =
  Service_bench.mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "BENCH_SERVICE_%d.json" (Service_bench.next_index dir))
  in
  let oc = open_out_bin path in
  output_string oc (Jsonu.to_string (to_json t));
  output_char oc '\n';
  close_out oc;
  path

let render t =
  String.concat "\n"
    [
      Printf.sprintf
        "recovery soak: %d SIGKILL+--recover cycle(s), %d shard(s) x capacity \
         %d, lease TTL %.2fs%s"
        t.cycles t.shards t.capacity t.lease_ttl_s
        (if t.wire_faults then ", wire faults on" else "");
      Printf.sprintf "offered %.0f/s for %.1fs (seed %d): wall %.2fs" t.rate
        t.duration_s t.seed t.wall_s;
      Printf.sprintf
        "ops: %d offered, %d acquired (%d capacity-failed), %d released, \
         throughput %.0f op/s"
        t.offered t.acquired t.acquire_failures t.released t.throughput;
      Printf.sprintf
        "survival: %d reconnect(s), %d dropped in flight, %d abandoned \
         hold(s)"
        t.reconnects t.dropped t.abandoned;
      Printf.sprintf
        "audit: %d duplicate grant(s), %d leaked after expiry, %d \
         violation(s), %d error(s), %d timeout(s)"
        t.duplicate_grants t.leaked_after_expiry t.violations t.errors
        t.timeouts;
      Printf.sprintf
        "journal: %d record(s), %d torn tail(s), %d damaged; final drain \
         exit %d"
        t.journal_records t.journal_torn_tails t.journal_damaged t.daemon_exit;
      Printf.sprintf "recovery time: p50 %.1fms  p99 %.1fms  max %.1fms"
        t.recovery_p50_ms t.recovery_p99_ms t.recovery_max_ms;
    ]

let check ~threshold ~baseline ~current =
  let findings = ref [] in
  let add fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  if current.duplicate_grants <> 0 then
    add "%d duplicate grant(s) — a recovered daemon re-issued a live name"
      current.duplicate_grants;
  if current.leaked_after_expiry < 0 then
    add "post-expiry leak count unknown (final stats probe failed)"
  else if current.leaked_after_expiry > 0 then
    add "%d slot(s) still taken after the last lease TTL passed"
      current.leaked_after_expiry;
  if current.violations <> 0 then
    add "%d uniqueness violation(s) observed by the load generator"
      current.violations;
  if current.errors <> 0 then add "%d protocol error(s)" current.errors;
  if current.timeouts <> 0 then
    add "%d operation(s) unanswered at drain" current.timeouts;
  if current.journal_damaged <> 0 then
    add "%d damaged journal record(s) (CRC/framing)" current.journal_damaged;
  if current.daemon_exit <> 0 then
    add "final graceful drain exited %d" current.daemon_exit;
  if current.acquired = 0 then add "no successful acquires";
  if current.reconnects < current.cycles then
    add
      "only %d reconnect incident(s) across %d kill cycle(s) — the kills \
       did not reach the load path"
      current.reconnects current.cycles;
  (* Recovery time is relative (with an absolute floor: restart cost is
     mostly exec + bind, which CI machines jitter freely). *)
  let allowed =
    Float.max ((1. +. threshold) *. baseline.recovery_p99_ms) 1000.
  in
  if current.recovery_p99_ms > allowed then
    add "recovery p99 %.1fms exceeds allowed %.1fms (baseline %.1fms)"
      current.recovery_p99_ms allowed baseline.recovery_p99_ms;
  List.rev !findings
