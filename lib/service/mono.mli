(** Monotonic time for deadline arithmetic.

    Seconds since an arbitrary epoch, strictly unaffected by wall-clock
    steps ([CLOCK_MONOTONIC] via a C stub — the vendored Unix library
    predates [clock_gettime]).  Every timeout, deadline and latency
    measurement in the serving layer is computed on this clock;
    {!Unix.gettimeofday} remains only where a human reads the value
    (operator telemetry such as uptime). *)

val now : unit -> float
