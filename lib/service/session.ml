type t = {
  mutable mode : Wire.mode option;
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable fill : int;  (* one past the last valid byte *)
  mutable corrupt : string option;
  held : (int, unit) Hashtbl.t;
  out : string Queue.t;  (* encoded responses awaiting write *)
  mutable out_off : int;  (* offset into the head of [out] *)
  mutable out_bytes : int;  (* unsent bytes across the whole queue *)
}

let create () =
  {
    mode = None;
    buf = Bytes.create 4096;
    start = 0;
    fill = 0;
    corrupt = None;
    held = Hashtbl.create 16;
    out = Queue.create ();
    out_off = 0;
    out_bytes = 0;
  }

let mode t = t.mode
let buffered t = t.fill - t.start

(* Make room for [extra] bytes: compact the live region to the front,
   growing the backing store only when compaction is not enough.  The
   live region is bounded by max_frame + header, so the buffer is too. *)
let reserve t extra =
  let live = t.fill - t.start in
  if t.fill + extra > Bytes.length t.buf then begin
    let needed = live + extra in
    let target =
      if needed <= Bytes.length t.buf then Bytes.length t.buf
      else
        let n = ref (Bytes.length t.buf) in
        while !n < needed do
          n := !n * 2
        done;
        !n
    in
    let dst = if target = Bytes.length t.buf then t.buf else Bytes.create target in
    Bytes.blit t.buf t.start dst 0 live;
    t.buf <- dst;
    t.start <- 0;
    t.fill <- live
  end

let feed t ~buf ~len =
  match t.corrupt with
  | Some msg -> Result.Error msg
  | None ->
    if len > 0 then begin
      reserve t len;
      Bytes.blit buf 0 t.buf t.fill len;
      t.fill <- t.fill + len
    end;
    if t.mode = None && t.fill > t.start then
      t.mode <-
        Some (if Bytes.get t.buf t.start = '{' then Wire.Json else Wire.Binary);
    let out = ref [] in
    let err = ref None in
    (match t.mode with
    | None -> ()
    | Some mode ->
      let continue = ref true in
      while !continue do
        match
          Wire.decode_request mode t.buf ~pos:t.start ~len:(t.fill - t.start)
        with
        | Wire.Frame (r, consumed) ->
          t.start <- t.start + consumed;
          out := r :: !out
        | Wire.Need_more -> continue := false
        | Wire.Corrupt msg ->
          t.corrupt <- Some msg;
          err := Some msg;
          continue := false
      done);
    (match !err with
    | Some msg -> Result.Error msg
    | None ->
      if t.start = t.fill then begin
        t.start <- 0;
        t.fill <- 0
      end;
      Result.Ok (List.rev !out))

(* Outbound buffering lives with the session so the server can account
   for a slow reader's backlog in one place: [out_bytes] is the number
   the backpressure policy compares against its bound. *)

let queue_out t s =
  if String.length s > 0 then begin
    Queue.push s t.out;
    t.out_bytes <- t.out_bytes + String.length s
  end

let out_pending t = not (Queue.is_empty t.out)
let out_bytes t = t.out_bytes

let peek_out t =
  if Queue.is_empty t.out then None else Some (Queue.peek t.out, t.out_off)

let advance_out t n =
  if n < 0 then invalid_arg "Session.advance_out: negative";
  if n > 0 then begin
    let head = Queue.peek t.out in
    let left = String.length head - t.out_off in
    if n > left then invalid_arg "Session.advance_out: past the head chunk";
    t.out_bytes <- t.out_bytes - n;
    if n = left then begin
      ignore (Queue.pop t.out);
      t.out_off <- 0
    end
    else t.out_off <- t.out_off + n
  end

let clear_out t =
  Queue.clear t.out;
  t.out_off <- 0;
  t.out_bytes <- 0

let note_acquired t name = Hashtbl.replace t.held name ()
let note_released t name = Hashtbl.remove t.held name
let holds t name = Hashtbl.mem t.held name
let held t = Hashtbl.to_seq_keys t.held |> List.of_seq
let held_count t = Hashtbl.length t.held
