(** Client side of the renaming service.

    Two usage styles over one connection type:

    - {b Synchronous}: {!acquire}/{!release}/{!stats}/{!shutdown} send
      one request and block for its response — the convenient form for
      tools and tests.
    - {b Pipelined}: {!post} many requests (ids from {!fresh_id}),
      {!pump} the socket, and collect completions with {!recv} — the
      form the open-loop load generator needs, where send times are
      dictated by the arrival process, not by completions.

    The two styles must not be interleaved on one connection: the
    synchronous calls assume every in-flight id is their own. *)

type t

val connect : ?mode:Wire.mode -> path:string -> unit -> (t, string) result
(** Connect to the daemon's Unix-domain socket.  [mode] defaults to
    {!Wire.Binary}; pass {!Wire.Json} to exercise the line-JSON
    fallback.  [Error] describes a connect failure. *)

val close : t -> unit
val fd : t -> Unix.file_descr
(** for [select] in external loops *)

val fresh_id : t -> int
(** Next request id (counter, wraps within u32). *)

(** {1 Synchronous operations} *)

val acquire : t -> client:int -> (int, string) result
val release : t -> client:int -> name:int -> (unit, string) result
val stats : t -> (Jsonu.t, string) result
val shutdown : t -> (unit, string) result

(** {1 Pipelined operations} *)

val post : t -> Wire.request -> unit
(** Queue an encoded request and opportunistically flush without
    blocking. *)

val flush : t -> (unit, string) result
(** Block until the send queue is empty. *)

val pending_out : t -> bool
(** Unsent bytes remain (the fd should be watched for writability). *)

val recv : t -> timeout:float -> (Wire.response option, string) result
(** One decoded response, waiting up to [timeout] seconds for bytes.
    [Ok None] on timeout; [Error] on connection loss or protocol
    corruption. *)
