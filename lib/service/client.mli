(** Client side of the renaming service.

    Two usage styles over one connection type:

    - {b Synchronous}: {!acquire}/{!release}/{!renew}/{!stats}/
      {!shutdown} send one request and block for its response — the
      convenient form for tools and tests.
    - {b Pipelined}: {!post} many requests (ids from {!fresh_id}),
      flush, and collect completions with {!recv} — the form the
      open-loop load generator needs, where send times are dictated by
      the arrival process, not by completions.

    The two styles must not be interleaved on one connection: the
    synchronous calls assume every in-flight id is their own.

    {!Durable} wraps a connection with the client half of
    survivability: per-request deadlines, reconnect with capped
    exponential backoff + jitter, and idempotent acquire via request
    tokens, so a daemon restart costs latency instead of correctness. *)

type t

type failure =
  | Transport of string
      (** the wire failed or went silent (connect/flush/read error,
          deadline passed) — the request's fate is unknown and a retry
          may help *)
  | Remote of { op : Wire.op; code : int; msg : string }
      (** the server answered with an error — retrying verbatim cannot
          help *)
  | Busy of { op : Wire.op; retry_after_ms : int }
      (** the server refused admission under overload; the request was
          never executed.  Retry after [retry_after_ms] (plus jitter) —
          {!Durable} does so automatically *)

val failure_message : failure -> string

val connect : ?mode:Wire.mode -> path:string -> unit -> (t, string) result
(** Connect to the daemon's Unix-domain socket.  [mode] defaults to
    {!Wire.Binary}; pass {!Wire.Json} to exercise the line-JSON
    fallback.  [Error] describes a connect failure. *)

val close : t -> unit
val fd : t -> Unix.file_descr
(** for [select] in external loops *)

val fresh_id : t -> int
(** Next request id (counter, wraps within u32). *)

(** {1 Synchronous operations}

    [timeout] (seconds, default 30) bounds the wait for the response on
    the {e monotonic} clock (wall-clock steps cannot fire or stall
    deadlines); expiry is a {!Transport} failure. *)

val acquire :
  ?timeout:float ->
  ?token:int ->
  ?deadline_ms:int ->
  t ->
  client:int ->
  (int, failure) result
(** [token <> 0] makes the acquire idempotent: the server binds it to
    the grant's lease, and a retry carrying the same token re-delivers
    the original name (see {!Wire.request}).  [deadline_ms > 0] is the
    remaining budget stamped on the wire: the server sheds the request
    ([err_expired]) instead of serving it late.  Default [0] = none. *)

val release : ?timeout:float -> t -> client:int -> name:int -> (unit, failure) result
val renew : ?timeout:float -> t -> client:int -> (int, failure) result
(** Heartbeat: extend the lease on every name this connection holds;
    returns how many were extended. *)

val stats : ?timeout:float -> t -> (Jsonu.t, failure) result
val shutdown : ?timeout:float -> t -> (unit, failure) result

(** {1 Pipelined operations} *)

val post : t -> Wire.request -> unit
(** Queue an encoded request and opportunistically flush without
    blocking. *)

val flush : t -> (unit, string) result
(** Block until the send queue is empty. *)

val flush_nb : t -> unit
(** One non-blocking flush attempt; transient failure (EAGAIN, or a
    hard error the next [recv] will surface as typed) is swallowed.
    Event loops that may stop posting — the load generator's drain —
    call this each tick so EAGAIN residue still leaves. *)

val pending_out : t -> bool
(** Unsent bytes remain (the fd should be watched for writability). *)

val recv : t -> timeout:float -> (Wire.response option, string) result
(** One decoded response, waiting up to [timeout] seconds for bytes.
    [Ok None] on timeout; [Error] on connection loss or protocol
    corruption. *)

(** {1 Durable connections} *)

module Durable : sig
  type conn

  val create :
    ?mode:Wire.mode ->
    ?attempts:int ->
    ?backoff_base:float ->
    ?backoff_cap:float ->
    ?timeout:float ->
    path:string ->
    seed:int ->
    unit ->
    conn
  (** A lazily-(re)connected endpoint.  Operations retry up to
      [attempts] times (default 8) across {!Transport} failures,
      sleeping [backoff_base * 2^k] (default 20 ms, capped at
      [backoff_cap], default 1 s) with multiplicative jitter drawn from
      a SplitMix stream seeded by [seed] — deterministic per client,
      decorrelated across clients.  {!Remote} failures are returned
      immediately, never retried.  {!Busy} refusals are retried on the
      same link, sleeping at least the server's [retry_after_ms] hint
      (jittered, capped) — the client half of the overload contract. *)

  val acquire : ?deadline_ms:int -> conn -> client:int -> (int, failure) result
  (** Idempotent: one fresh nonzero token per call, reused across its
      retries, so an acquire whose reply was lost re-delivers the same
      name instead of taking a second slot.  The whole logical acquire
      (retries and backoff included) spends one budget — [deadline_ms]
      if given, else the connection timeout — and each attempt stamps
      the remaining budget on the wire, so the server can shed work
      this client has already abandoned. *)

  val release : conn -> client:int -> name:int -> (unit, failure) result
  (** [err_not_held] on a retry attempt counts as success: the lost
      first attempt may have already released the name. *)

  val renew : conn -> client:int -> (int, failure) result
  val stats : conn -> (Jsonu.t, failure) result

  val reconnects : conn -> int
  (** transport failures that forced a drop-and-retry *)

  val close : conn -> unit
end
