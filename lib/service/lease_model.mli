(** A pure, finite model of the lease protocol for exhaustive checking.

    Wraps the {e shipped} {!Lease} table in a closed system — [clients]
    clients acquiring/renewing/releasing leases on [names] names, plus a
    logical clock process (pid [clients]) whose [tick] advances explicit
    model time past the TTL and whose [sweep] runs the expiry pass — so
    [Analysis.Explore] can enumerate every interleaving and certify the
    PR-7 guarantees on all of them: epoch monotonicity, stale-epoch
    release/token rejection, zombie renew extends nothing, and live
    claims survive untouched until their holder releases them.

    All budgets ([acquires] per client, [ticks], one renew per claim)
    are finite and sweeps fire only when a lease is actually due, so
    the transition graph is finite and exploration terminates.

    The interface is deliberately analysis-agnostic (plain actions,
    [apply] returning a violation message, closure-based [save]) so this
    library does not depend on [analysis]; [Analysis.Explore.lease_world]
    adapts a handle into an explorable world. *)

type config = {
  clients : int;  (** client processes (>= 1) *)
  names : int;  (** namespace size (>= 1); small forces reuse *)
  acquires : int;  (** acquire budget per client *)
  ticks : int;  (** clock-advance budget *)
  mutation : string option;  (** seeded bug from {!mutations}, if any *)
}

val default : config
(** 2 clients contending for 1 name, 2 acquires each, 2 ticks — the
    smallest configuration that exercises expiry, reissue and stale
    release. *)

val mutations : string list
(** Seeded bugs: ["stale-release"] (release skips the epoch comparison —
    the exact bug the epochs exist to reject) and ["restore-expired"]
    (a recovery path resurrects a swept lease with its dead epoch and
    token). *)

type action = { pid : int; tag : int; label : string }
(** Client pids offer [acquire]/[renew]/[release]; the clock pid
    ([clients]) offers [tick]/[sweep]. *)

type t

val create : config -> t
(** @raise Invalid_argument on empty configs or unknown mutations. *)

val config : t -> config

val nprocs : t -> int
(** [clients + 1] (the clock is a process). *)

val reset : t -> unit
val enabled : t -> action list
(** Currently enabled actions in deterministic (pid, tag) order. *)

val apply : t -> action -> string option
(** Perform one action; [Some msg] reports an invariant violation. *)

val at_end : t -> string option
(** Terminal-state check (same invariants). *)

val save : t -> unit -> unit
(** [save t] captures the full model state (lease table deep copy,
    claims, clock) and returns the closure that restores it; restorable
    any number of times. *)
