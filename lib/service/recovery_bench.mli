(** The kill/restart soak artifact and its regression gate.

    [repro_cli chaos service] drives {!Load_gen} through N
    [SIGKILL]+[--recover] cycles of a real [renamed] daemon (optionally
    through the {!Chaos.Wire_fault} proxy) and records the outcome in
    the [BENCH_SERVICE_<k>.json] sequence with kind
    ["bench-service-recovery"].  The committed baseline is
    [bench/BENCH_SERVICE_1.json].

    {!check} gates the soak's safety claims absolutely — zero duplicate
    grants across every journal segment, zero slots still taken after
    the last lease TTL passed, zero uniqueness violations / errors /
    timeouts / damaged journal records, a clean final drain — and
    recovery p99 relatively against the baseline (with a 1 s absolute
    floor, since process restart time is machine noise). *)

type t = {
  (* configuration *)
  cycles : int;  (** SIGKILL + --recover rounds *)
  rate : float;
  duration_s : float;  (** total load window across all cycles *)
  seed : int;
  shards : int;
  capacity : int;
  lease_ttl_s : float;
  wire_faults : bool;  (** load ran through the fault proxy *)
  (* load-side audit *)
  wall_s : float;
  offered : int;
  acquired : int;
  acquire_failures : int;
  released : int;
  errors : int;
  timeouts : int;
  violations : int;
  reconnects : int;  (** connection losses survived *)
  dropped : int;  (** in-flight operations lost to connection death *)
  abandoned : int;  (** held names forgotten on connection death *)
  throughput : float;
  (* recovery-side audit *)
  duplicate_grants : int;  (** journal replay: grants of live names *)
  leaked_after_expiry : int;
      (** slots still taken one TTL after the load drained; -1 unknown *)
  recovery_p50_ms : float;  (** SIGKILL observed -> daemon accepting again *)
  recovery_p99_ms : float;
  recovery_max_ms : float;
  journal_records : int;  (** intact records across all segments *)
  journal_torn_tails : int;  (** crash artifacts (expected under SIGKILL) *)
  journal_damaged : int;  (** CRC/framing damage — must be zero *)
  daemon_exit : int;  (** final graceful drain's exit code *)
}

val to_json : t -> Jsonu.t
val of_json : Jsonu.t -> t
(** @raise Jsonu.Malformed on kind/schema mismatch. *)

val load : string -> t
(** @raise Jsonu.Malformed / [Sys_error]. *)

val save : dir:string -> t -> string
(** Next free [BENCH_SERVICE_<k>.json] in [dir] (numbering shared with
    {!Service_bench}). *)

val render : t -> string
val check : threshold:float -> baseline:t -> current:t -> string list
