type entry = {
  mutable holder : int option;
  epoch : int;
  mutable expires : float;
  token : int;
}

type t = {
  ttl : float;
  table : (int, entry) Hashtbl.t;  (* name -> live lease *)
  tokens : (int, int) Hashtbl.t;  (* nonzero token -> name *)
  mutable next_epoch : int;
}

let create ~ttl_s () =
  {
    ttl = Float.max 0.001 ttl_s;
    table = Hashtbl.create 64;
    tokens = Hashtbl.create 64;
    next_epoch = 1;
  }

let ttl_s t = t.ttl
let ttl_ms t = int_of_float (Float.round (t.ttl *. 1000.))

let unbind_token t e = if e.token <> 0 then Hashtbl.remove t.tokens e.token

let remove t name =
  match Hashtbl.find_opt t.table name with
  | None -> ()
  | Some e ->
    unbind_token t e;
    Hashtbl.remove t.table name

let grant t ~now ~name ~holder ~token =
  remove t name;
  let epoch = t.next_epoch in
  t.next_epoch <- epoch + 1;
  Hashtbl.replace t.table name { holder; epoch; expires = now +. t.ttl; token };
  if token <> 0 then Hashtbl.replace t.tokens token name;
  epoch

let restore t ~now ~name ~epoch ~token =
  remove t name;
  Hashtbl.replace t.table name
    { holder = None; epoch; expires = now +. t.ttl; token };
  if token <> 0 then Hashtbl.replace t.tokens token name;
  if epoch >= t.next_epoch then t.next_epoch <- epoch + 1

let set_next_epoch t e = if e > t.next_epoch then t.next_epoch <- e

let renew t ~now ~holder =
  (* A lease past its TTL but still in the table renews: only the sweep
     kills leases, so renew-vs-sweep has one arbiter (the table). *)
  let n = ref 0 in
  Hashtbl.to_seq_values t.table
  |> Seq.iter (fun e ->
         if e.holder = Some holder then begin
           e.expires <- now +. t.ttl;
           incr n
         end);
  !n

let release t ~name ~epoch =
  match Hashtbl.find_opt t.table name with
  | None -> `Unknown
  | Some e when e.epoch <> epoch -> `Stale
  | Some e ->
    unbind_token t e;
    Hashtbl.remove t.table name;
    `Released

let expire_due t ~now =
  let due =
    Hashtbl.to_seq t.table
    |> Seq.filter (fun (_, e) -> e.expires <= now)
    |> List.of_seq
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.map
    (fun (name, e) ->
      unbind_token t e;
      Hashtbl.remove t.table name;
      (name, e.epoch, e.holder, e.token))
    due

let rebind t ~now ~name ~epoch ~holder =
  match Hashtbl.find_opt t.table name with
  | Some e when e.epoch = epoch ->
    e.holder <- Some holder;
    e.expires <- now +. t.ttl;
    true
  | _ -> false

let find_token t ~token =
  if token = 0 then None
  else
    match Hashtbl.find_opt t.tokens token with
    | None -> None
    | Some name -> (
      match Hashtbl.find_opt t.table name with
      | Some e when e.token = token -> Some (name, e.epoch)
      | _ -> None)

let epoch_of t ~name =
  Option.map (fun e -> e.epoch) (Hashtbl.find_opt t.table name)

let holder_of t ~name =
  Option.map (fun e -> e.holder) (Hashtbl.find_opt t.table name)

let expires_of t ~name =
  Option.map (fun e -> e.expires) (Hashtbl.find_opt t.table name)

let held t = Hashtbl.length t.table

let names_of_holder t ~holder =
  Hashtbl.to_seq t.table
  |> Seq.filter_map (fun (name, e) ->
         if e.holder = Some holder then Some name else None)
  |> List.of_seq |> List.sort Int.compare

(* Deep-copy snapshots for the model checker, which explores the table's
   transition graph by DFS and must rewind it exactly. *)

type snapshot = {
  snap_entries : (int * int * int option * float * int) list;
      (* name, epoch, holder, expires, token — sorted by name *)
  snap_next_epoch : int;
}

let snapshot t =
  {
    snap_entries =
      Hashtbl.to_seq t.table
      |> Seq.map (fun (name, e) -> (name, e.epoch, e.holder, e.expires, e.token))
      |> List.of_seq
      |> List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> Int.compare a b);
    snap_next_epoch = t.next_epoch;
  }

let restore_snapshot t s =
  Hashtbl.reset t.table;
  Hashtbl.reset t.tokens;
  List.iter
    (fun (name, epoch, holder, expires, token) ->
      Hashtbl.replace t.table name { holder; epoch; expires; token };
      if token <> 0 then Hashtbl.replace t.tokens token name)
    s.snap_entries;
  t.next_epoch <- s.snap_next_epoch
