type record =
  | Grant of { name : int; epoch : int; client : int; token : int }
  | Release of { name : int; epoch : int }
  | Expire of { name : int; epoch : int }

type t = { oc : out_channel; fd : Unix.file_descr }

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected), table-driven. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* ------------------------------------------------------------------ *)
(* Record codec.  Payload: u8 kind, u32 name, u64 epoch, then for
   grants u32 client and u32 token.  Fixed widths, big-endian. *)

let add_u64 b v =
  Wire.add_u32 b ((v lsr 32) land 0xffffffff);
  Wire.add_u32 b (v land 0xffffffff)

let get_u64 buf off = (Wire.get_u32 buf off lsl 32) lor Wire.get_u32 buf (off + 4)

let encode_payload r =
  let b = Buffer.create 32 in
  (match r with
  | Grant { name; epoch; client; token } ->
    Wire.add_u8 b 1;
    Wire.add_u32 b name;
    add_u64 b epoch;
    Wire.add_u32 b client;
    Wire.add_u32 b token
  | Release { name; epoch } ->
    Wire.add_u8 b 2;
    Wire.add_u32 b name;
    add_u64 b epoch
  | Expire { name; epoch } ->
    Wire.add_u8 b 3;
    Wire.add_u32 b name;
    add_u64 b epoch);
  Buffer.contents b

let decode_payload buf off len =
  if len < 13 then None
  else
    let name = Wire.get_u32 buf (off + 1) in
    let epoch = get_u64 buf (off + 5) in
    match (Wire.get_u8 buf off, len) with
    | 1, 21 ->
      Some
        (Grant
           {
             name;
             epoch;
             client = Wire.get_u32 buf (off + 13);
             token = Wire.get_u32 buf (off + 17);
           })
    | 2, 13 -> Some (Release { name; epoch })
    | 3, 13 -> Some (Expire { name; epoch })
    | _ -> None

(* Generous bound: real payloads are <= 21 bytes, so a length above
   this is framing damage, not a future record format. *)
let max_payload = 256

let frame r =
  let payload = encode_payload r in
  let b = Buffer.create 32 in
  Wire.add_u32 b (String.length payload);
  Wire.add_u32 b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Appending *)

let open_append ~path =
  match open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path with
  | oc -> Ok { oc; fd = Unix.descr_of_out_channel oc }
  | exception Sys_error e -> Error (Printf.sprintf "journal %s: %s" path e)

let append t r =
  (* guarded_write flushes; the fsync makes the record power-loss
     durable before the caller acts on it (write-ahead). *)
  Engine.Io_fault.guarded_write ~oc:t.oc (frame r);
  Unix.fsync t.fd

let close t = try close_out t.oc with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Scanning *)

type scan = {
  records : record list;
  torn_tail : bool;
  damaged : int;
  bytes : int;
}

let scan ~path =
  match open_in_bin path with
  | exception Sys_error e -> Error (Printf.sprintf "journal %s: %s" path e)
  | ic ->
    let len = in_channel_length ic in
    let buf = Bytes.create len in
    really_input ic buf 0 len;
    close_in ic;
    let records = ref [] in
    let damaged = ref 0 in
    let torn = ref false in
    let o = ref 0 in
    let continue = ref true in
    while !continue do
      let remaining = len - !o in
      if remaining = 0 then continue := false
      else if remaining < 8 then begin
        (* header itself is cut off: crash mid-append *)
        torn := true;
        continue := false
      end
      else begin
        let plen = Wire.get_u32 buf !o in
        if plen < 13 || plen > max_payload then begin
          (* Unframeable from here on: count the wreckage once and
             stop — doctor reports it, recovery refuses it. *)
          incr damaged;
          continue := false
        end
        else if remaining < 8 + plen then begin
          torn := true;
          continue := false
        end
        else begin
          let crc = Wire.get_u32 buf (!o + 4) in
          let payload = Bytes.sub_string buf (!o + 8) plen in
          if crc32 payload <> crc then incr damaged
          else begin
            match decode_payload buf (!o + 8) plen with
            | Some r -> records := r :: !records
            | None -> incr damaged
          end;
          o := !o + 8 + plen
        end
      end
    done;
    Ok { records = List.rev !records; torn_tail = !torn; damaged = !damaged; bytes = len }

(* ------------------------------------------------------------------ *)
(* Replay *)

type live = {
  grants : (int * (int * int * int)) list;
  next_epoch : int;
  double_grants : int;
  stale_releases : int;
}

let replay records =
  let live = Hashtbl.create 64 in
  let max_epoch = ref 0 in
  let doubles = ref 0 in
  let stale = ref 0 in
  let drop name epoch =
    match Hashtbl.find_opt live name with
    | Some (e, _, _) when e = epoch -> Hashtbl.remove live name
    | Some _ | None -> incr stale
  in
  List.iter
    (fun r ->
      (match r with
      | Grant { name; epoch; client; token } ->
        if Hashtbl.mem live name then incr doubles;
        Hashtbl.replace live name (epoch, client, token)
      | Release { name; epoch } | Expire { name; epoch } -> drop name epoch);
      let epoch =
        match r with
        | Grant { epoch; _ } | Release { epoch; _ } | Expire { epoch; _ } ->
          epoch
      in
      if epoch > !max_epoch then max_epoch := epoch)
    records;
  {
    grants =
      Hashtbl.to_seq live |> List.of_seq
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    next_epoch = !max_epoch + 1;
    double_grants = !doubles;
    stale_releases = !stale;
  }

(* ------------------------------------------------------------------ *)
(* Compaction *)

let rewrite ~path grants =
  let tmp = path ^ ".tmp" in
  match open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp with
  | exception Sys_error e -> Error (Printf.sprintf "journal %s: %s" tmp e)
  | oc -> (
    match
      List.iter
        (fun (name, (epoch, client, token)) ->
          output_string oc (frame (Grant { name; epoch; client; token })))
        grants;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc);
      close_out oc;
      Sys.rename tmp path
    with
    | () -> Ok ()
    | exception Sys_error e ->
      (try close_out oc with Sys_error _ -> ());
      Error (Printf.sprintf "journal compaction: %s" e)
    | exception Unix.Unix_error (e, _, _) ->
      (try close_out oc with Sys_error _ -> ());
      Error (Printf.sprintf "journal compaction: %s" (Unix.error_message e)))
