(** Open-loop Poisson load generator for the renaming daemon.

    Arrivals are a Poisson process: exponential inter-arrival gaps
    (rate [rate]) drawn from the repository's exact samplers
    ({!Prng.Dist.exponential_sample}, the §6 machinery), and an acquire
    is {e posted at its scheduled arrival time} whether or not earlier
    operations have completed — the open-loop discipline that exposes
    queueing delay instead of hiding it behind client backpressure.
    Each granted name is held for a sampled duration, then released.

    While running, the generator audits the service's two safety
    properties from the outside:

    - {b uniqueness}: a granted name must not already be held by this
      run (modulo a release in flight for it — the server may legally
      re-grant as soon as it processes the release);
    - {b conservation}: after the final drain releases everything, the
      server's [taken] count must be zero ([leaked] in the result).

    {b Connection loss is survived, not fatal}: a reset mid-run kills
    one slot, whose in-flight operations are counted [dropped] and
    whose held names are counted [abandoned] (the server reclaims them
    by disconnect-drain or lease expiry); the slot reconnects with
    capped exponential backoff.  Arrivals falling due while every slot
    is down are owed, and posted after reconnect {e with their original
    scheduled time} — the outage shows up as latency, never as a hole
    in the offered load.

    Acquire latency (scheduled arrival → [Acquired], so a generator
    that falls behind cannot hide queueing delay) is recorded in a
    {!Stats.Hdr} histogram in nanoseconds. *)

type hold =
  | Const of float  (** hold every name for exactly this many seconds *)
  | Exponential of float  (** exponential holds with this mean (seconds) *)

type config = {
  path : string;  (** daemon socket *)
  mode : Wire.mode;
  conns : int;  (** connections to spread load over *)
  clients : int;  (** client-id space (shard routing keys) *)
  rate : float;  (** target acquire arrivals per second *)
  duration_s : float;
  hold : hold;
  seed : int;
  reconnect_attempts : int;
      (** consecutive failed reconnects on one slot before the run
          aborts *)
  reconnect_backoff : float;
      (** base reconnect delay (seconds), doubled per consecutive
          failure, capped at 1 s, jittered *)
  deadline_ms : int;
      (** per-request budget stamped on the wire, measured from the
          {e scheduled} arrival (so time spent owed in the backlog
          counts against it); arrivals whose budget is spent before
          posting are counted [expired] locally.  [0] = no deadline *)
  drain_timeout_s : float;
      (** how long past [duration_s] the final drain may run before
          being cut short ([drain_complete = false] in the result) *)
  log : string -> unit;
}

val default_config : path:string -> config
(** Binary mode, 4 conns, 64 clients, 1000/s for 5 s, Exponential 1 ms
    holds, seed 1, 8 reconnect attempts with 50 ms base backoff, no
    deadline, 10 s drain timeout, silent log. *)

type result = {
  wall_s : float;  (** measured run wall time, arrivals through drain *)
  offered : int;  (** acquires posted (or locally expired before post) *)
  acquired : int;
  shed : int;  (** {!Wire.Busy} admission refusals *)
  expired : int;
      (** deadline-spent requests: shed by the server ([err_expired])
          or dropped locally before posting *)
  acquire_failures : int;  (** [err_capacity] responses *)
  released : int;
  errors : int;  (** error responses other than capacity/expired *)
  timeouts : int;  (** operations never answered before the drain gave up *)
  violations : int;  (** uniqueness violations observed *)
  leaked : int;  (** server [taken] after the final drain; -1 if unknown *)
  reconnects : int;  (** connection losses survived *)
  dropped : int;  (** in-flight (or never-postable) operations lost *)
  abandoned : int;  (** held names forgotten with their dead connection *)
  throughput : float;  (** (acquired + released) / wall_s *)
  goodput : float;
      (** acquired / wall_s — {e served} work only; shed and expired
          requests cost the client a refusal, not a wait, so they are
          excluded (coordinated-omission-free) *)
  drain_complete : bool;  (** the final drain finished within its timeout *)
  latency : Stats.Hdr.t;  (** acquire latency, nanoseconds *)
}

val ok : result -> bool
(** No violations, no leaks, no errors, no timeouts.  Reconnects,
    drops, abandonments, sheds and expiries are survivable events,
    reported but not failures. *)

val run : config -> (result, string) Stdlib.result
(** Drive the load and return the audit.  [Error] covers setup failures
    (cannot connect) and a slot exhausting its reconnect budget. *)
