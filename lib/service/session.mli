(** Per-connection protocol state.

    A session owns the connection's read buffer and framing mode and
    turns an arbitrary byte-stream chop (partial reads, several frames
    per read, frames split across reads) into whole {!Wire.request}s.
    It also keeps the connection's {e held-name ledger}: every name the
    server has granted this connection and not yet seen released.  The
    ledger is what makes release validation ([err_not_held]) and
    crash/shutdown cleanup possible — when a connection dies, exactly
    the names on its ledger are returned to the pool, so a misbehaving
    client cannot leak slots.

    The first byte of the connection selects the mode: ['{'] is a JSON
    session, anything else binary (see {!Wire.mode}). *)

type t

val create : unit -> t

val mode : t -> Wire.mode option
(** [None] until the first byte arrives. *)

val feed : t -> buf:Bytes.t -> len:int -> (Wire.request list, string) result
(** [feed t ~buf ~len] appends [buf.[0, len)] to the session buffer and
    drains every complete frame, in order.  [Error] means the stream is
    corrupt (bad framing, oversized frame, invalid JSON) and the
    connection must be closed; a session never recovers from [Error]. *)

val buffered : t -> int
(** Bytes waiting for the rest of their frame (tests/diagnostics). *)

(** {1 Outbound buffer}

    Encoded responses waiting for the peer to drain them.  The queue
    itself is unbounded — the {e server} enforces the bound by reading
    {!out_bytes} and pausing reads / disconnecting past its limits
    (backpressure policy is the server's job; byte accounting is the
    session's). *)

val queue_out : t -> string -> unit
val out_pending : t -> bool
val out_bytes : t -> int
(** Unsent bytes across the whole queue — the backpressure signal. *)

val peek_out : t -> (string * int) option
(** The head chunk and the offset already written from it. *)

val advance_out : t -> int -> unit
(** Consume [n] bytes from the head chunk ([n] from {!peek_out}'s
    remaining length); pops the chunk when it completes. *)

val clear_out : t -> unit
(** Drop everything unsent (connection teardown). *)

(** {1 Held-name ledger} *)

val note_acquired : t -> int -> unit
val note_released : t -> int -> unit
val holds : t -> int -> bool
val held : t -> int list
(** Names currently held, in no particular order. *)

val held_count : t -> int
