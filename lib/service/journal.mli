(** The daemon's crash-safe grant journal.

    An append-only binary file recording every lease event the server
    acknowledges: [Grant] before the client ever sees [Acquired]
    (write-ahead — an acknowledged grant is always recoverable),
    [Release] before the slot returns to the pool, [Expire] when the
    sweep reclaims a silent holder.  Replaying the file reproduces the
    set of live grants, so a [SIGKILL]-ed daemon restarts without ever
    double-granting a name some client still holds.

    {b Framing.}  Each record is [u32 length | u32 CRC-32 | payload],
    big-endian, written as one {!Engine.Io_fault.guarded_write} (the
    same injectable write/fsync discipline the engine's stores are
    tested under) followed by [fsync].  A crash mid-append therefore
    leaves at most one torn record, and only at the tail; {!scan}
    tolerates it.  A CRC mismatch on a {e complete} record is real
    damage — recovery refuses it, [repro_cli doctor] reports it.

    {b Compaction} happens at boot: after a successful replay the file
    is rewritten to just the live grants (atomically, via rename), so
    the journal's size tracks held names, not operation history. *)

type record =
  | Grant of { name : int; epoch : int; client : int; token : int }
  | Release of { name : int; epoch : int }
  | Expire of { name : int; epoch : int }

type t
(** an open journal, append position at end-of-file *)

val open_append : path:string -> (t, string) result
(** Open (creating if absent) for appending. *)

val append : t -> record -> unit
(** Frame, write, flush, [fsync].  @raise Engine.Io_fault.Injected
    under an armed fault; @raise Sys_error/[Unix.Unix_error] on real
    I/O failure.  The caller decides policy: a failed [Grant] append
    must abort the grant, a failed [Release] append may proceed (the
    stale grant is reclaimed by lease expiry after recovery). *)

val close : t -> unit

(** {1 Reading} *)

type scan = {
  records : record list;  (** every intact record, in file order *)
  torn_tail : bool;  (** incomplete final record (crash artifact) *)
  damaged : int;  (** complete records failing CRC or framing — real damage *)
  bytes : int;  (** file size *)
}

val scan : path:string -> (scan, string) result
(** [Error] only if the file cannot be read at all. *)

type live = {
  grants : (int * (int * int * int)) list;
      (** [(name, (epoch, client, token))], sorted by name *)
  next_epoch : int;  (** max journaled epoch + 1 *)
  double_grants : int;
      (** [Grant] records for an already-live name — must be zero; the
          kill/restart soak's duplicate-grant assertion *)
  stale_releases : int;
      (** [Release]/[Expire] whose epoch missed the live lease *)
}

val replay : record list -> live

val rewrite : path:string -> (int * (int * int * int)) list -> (unit, string) result
(** Atomically replace the journal with one [Grant] per live entry
    (write to a temp file, [fsync], rename) — boot-time compaction. *)
