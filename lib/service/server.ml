(* Every deadline, lease TTL and latency measurement here runs on the
   monotonic clock (Mono.now): a wall-clock step must never fire or
   stall a timeout.  Wall-clock never enters experiment records. *)

type config = {
  socket_path : string;
  shards : int;
  capacity : int;
  seed : int;
  backlog : int;
  max_conns : int;
  lease_ttl_s : float;
  journal_path : string option;
  recover : bool;
  max_queue : int;
  max_out_bytes : int;
  stall_s : float;
  overload : Overload.config option;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    shards = 2;
    capacity = 4096;
    seed = 1;
    backlog = 64;
    max_conns = 1024;
    lease_ttl_s = 30.;
    journal_path = None;
    recover = false;
    max_queue = 1024;
    max_out_bytes = 262144;
    stall_s = 5.;
    overload = None;
    log = ignore;
  }

type report = {
  conns_served : int;
  requests : int;
  acquires : int;
  releases : int;
  errors : int;
  drained_releases : int;
  renews : int;
  expired_leases : int;
  dedup_hits : int;
  recovered : int;
  shed_busy : int;
  shed_expired : int;
  stalled_conns : int;
  queue_peak : int;
  taken_at_exit : int;
  wall_s : float;
}

let report_clean r = r.taken_at_exit = 0

let recovery_required_prefix = "recovery required:"

let recovery_refused e =
  String.length e >= String.length recovery_required_prefix
  && String.sub e 0 (String.length recovery_required_prefix)
     = recovery_required_prefix

type handle = { flag : bool Atomic.t; wake : Unix.file_descr option Atomic.t }

let create_handle () = { flag = Atomic.make false; wake = Atomic.make None }

(* repro-lint: allow journal-write — self-pipe wake byte, not a journal fd *)
let poke fd = try ignore (Unix.write fd (Bytes.make 1 '!') 0 1) with _ -> ()

let stop h =
  Atomic.set h.flag true;
  match Atomic.get h.wake with None -> () | Some fd -> poke fd

let stop_requested h = Atomic.get h.flag

(* ------------------------------------------------------------------ *)
(* Cross-domain queues *)

module Q = struct
  type 'a t = { q : 'a Queue.t; mu : Mutex.t; cv : Condition.t }

  let create () =
    { q = Queue.create (); mu = Mutex.create (); cv = Condition.create () }

  let push t x =
    Mutex.lock t.mu;
    Queue.push x t.q;
    Condition.signal t.cv;
    Mutex.unlock t.mu

  let pop_blocking t =
    Mutex.lock t.mu;
    while Queue.is_empty t.q do
      Condition.wait t.cv t.mu
    done;
    let x = Queue.pop t.q in
    Mutex.unlock t.mu;
    x

  (* Everything queued right now, in order; never blocks. *)
  let drain t =
    Mutex.lock t.mu;
    let out = List.of_seq (Queue.to_seq t.q) in
    Queue.clear t.q;
    Mutex.unlock t.mu;
    out

  (* Pull out every queued element satisfying [p], oldest first,
     keeping the rest in order.  The admission purge uses this to shed
     already-expired acquires without disturbing live work. *)
  let remove_if t p =
    Mutex.lock t.mu;
    let all = List.of_seq (Queue.to_seq t.q) in
    Queue.clear t.q;
    let removed =
      List.filter
        (fun x -> if p x then true else (Queue.push x t.q; false))
        all
    in
    Mutex.unlock t.mu;
    removed
end

type job =
  | Acquire_job of {
      conn : int;
      id : int;
      client : int;
      token : int;
      deadline : float;  (* absolute monotonic; infinity = none *)
      admitted : float;  (* monotonic enqueue time, for queue latency *)
    }
  | Release_job of { conn : int; id : int; name : int; drain : bool }
  | Quit

type done_op =
  | Did_acquire of {
      conn : int;
      id : int;
      client : int;
      token : int;
      name : int option;
      expired : bool;  (* deadline passed in queue; allocator untouched *)
      waited_ms : float;  (* enqueue -> worker pickup *)
    }
  | Did_release of { conn : int; id : int; name : int; drain : bool }

(* ------------------------------------------------------------------ *)
(* Connections *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  session : Session.t;
  mutable inflight : int;
  mutable closing : bool;  (* close once flushed and drained *)
  mutable dead : bool;  (* fd closed; record kept for in-flight jobs *)
  mutable last_progress : float;
      (* monotonic time the peer last drained bytes; the stall clock *)
}

let out_pending c = Session.out_pending c.session

type phase = Serving | Draining_jobs | Draining_ledgers | Flushing

type state = {
  cfg : config;
  pool : Shard.t;
  leases : Lease.t;
  journal : Journal.t option;
  recovered : int;  (* grants re-occupied from the journal at boot *)
  handle : handle;
  workers : job Q.t array;
  outbox : done_op Q.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns : (int, conn) Hashtbl.t;
  started : float;
  scratch : Bytes.t;
  overload : Overload.t;
  mutable listen_fd : Unix.file_descr option;
  mutable phase : phase;
  mutable next_cid : int;
  mutable inflight_total : int;
  mutable next_sweep : float;
  mutable conns_served : int;
  mutable requests : int;
  mutable acquires : int;
  mutable releases : int;
  mutable errors : int;
  mutable drained_releases : int;
  mutable renews : int;
  mutable expired_leases : int;
  mutable dedup_hits : int;
  mutable shed_busy : int;
  mutable shed_expired : int;
  mutable stalled_conns : int;
  mutable queue_peak : int;
  mutable flush_deadline : float;
  acq_depth : int Atomic.t array;
      (* queued (not yet picked) acquires per shard: the class the
         admission bound governs.  Releases share the worker queues but
         are never refused — they relieve pressure — so depth, peak and
         the overload machine all track acquires alone.  Incremented by
         the I/O domain at admission, decremented by the owning worker
         at pick (or by the admission purge). *)
}

let now () = Mono.now ()
let conn_list st = Hashtbl.to_seq_values st.conns |> List.of_seq
let sweep_period st = Float.max 0.01 (Lease.ttl_s st.leases /. 10.)

(* ------------------------------------------------------------------ *)
(* Worker domains: each owns one shard and loops on its queue. *)

let worker_loop st i =
  let q = st.workers.(i) in
  let continue = ref true in
  while !continue do
    match Q.pop_blocking q with
    | Quit -> continue := false
    | Acquire_job { conn; id; client; token; deadline; admitted } ->
      Atomic.decr st.acq_depth.(i);
      let picked = now () in
      let waited_ms = Float.max 0. ((picked -. admitted) *. 1000.) in
      (* Deadline check before the allocator: work the client has
         already timed out on is shed, not served — executing it would
         burn a slot nobody will release promptly. *)
      if picked > deadline then begin
        Q.push st.outbox
          (Did_acquire
             { conn; id; client; token; name = None; expired = true; waited_ms });
        poke st.wake_w
      end
      else begin
        let name =
          try Shard.acquire st.pool ~shard:i ~client
          with e ->
            st.cfg.log
              (Printf.sprintf "worker %d: acquire raised %s" i
                 (Printexc.to_string e));
            None
        in
        Q.push st.outbox
          (Did_acquire
             { conn; id; client; token; name; expired = false; waited_ms });
        poke st.wake_w
      end
    | Release_job { conn; id; name; drain } ->
      (try Shard.release st.pool ~name
       with e ->
         st.cfg.log
           (Printf.sprintf "worker %d: release %d raised %s" i name
              (Printexc.to_string e)));
      Q.push st.outbox (Did_release { conn; id; name; drain });
      poke st.wake_w
  done

(* ------------------------------------------------------------------ *)
(* Replies *)

let send_response st c r =
  if not c.dead then begin
    let b = Buffer.create 64 in
    let mode = Option.value (Session.mode c.session) ~default:Wire.Binary in
    Wire.encode_response mode b r;
    Session.queue_out c.session (Buffer.contents b);
    (match r with Wire.Error _ -> st.errors <- st.errors + 1 | _ -> ())
  end

let enqueue_job st ~shard job =
  st.inflight_total <- st.inflight_total + 1;
  (match job with
  | Acquire_job _ -> Atomic.incr st.acq_depth.(shard)
  | Release_job _ | Quit -> ());
  Q.push st.workers.(shard) job

(* Return a cell to the pool through its owner worker without a client
   reply (lease expiry, rollback, drain). *)
let enqueue_auto_release st name =
  match Shard.shard_of_name st.pool name with
  | None -> st.cfg.log (Printf.sprintf "drain: name %d outside namespace" name)
  | Some shard ->
    enqueue_job st ~shard (Release_job { conn = -1; id = 0; name; drain = true })

(* Auto-release a name that no live session will ever release (granted
   to a dead connection, or left on a ledger at shutdown). *)
let enqueue_drain_release st name =
  st.drained_releases <- st.drained_releases + 1;
  enqueue_auto_release st name

(* ------------------------------------------------------------------ *)
(* Admission control *)

let settle_conn st cid =
  match Hashtbl.find_opt st.conns cid with
  | None -> ()
  | Some c ->
    c.inflight <- c.inflight - 1;
    if c.dead && c.inflight = 0 then Hashtbl.remove st.conns c.cid

let max_queue_depth st =
  Array.fold_left (fun m d -> max m (Atomic.get d)) 0 st.acq_depth

(* Oldest-expired-first shed: a full shard queue is relieved of every
   queued acquire whose deadline has already passed (the queue keeps
   arrival order, so expired entries come out oldest first).  They are
   answered [err_expired] — work nobody is waiting for anymore never
   reaches the allocator. *)
let purge_expired st ~shard =
  let t = now () in
  let purged =
    Q.remove_if st.workers.(shard) (function
      | Acquire_job { deadline; _ } -> t > deadline
      | Release_job _ | Quit -> false)
  in
  List.iter
    (function
      | Acquire_job { conn; id; _ } ->
        Atomic.decr st.acq_depth.(shard);
        st.inflight_total <- st.inflight_total - 1;
        st.shed_expired <- st.shed_expired + 1;
        (match Hashtbl.find_opt st.conns conn with
        | Some c when not c.dead ->
          send_response st c
            (Wire.Error
               {
                 id;
                 op = Wire.Op_acquire;
                 code = Wire.err_expired;
                 msg = "deadline expired in queue";
               })
        | _ -> ());
        settle_conn st conn
      | Release_job _ | Quit -> ())
    purged;
  List.length purged

(* ------------------------------------------------------------------ *)
(* Journal + lease plumbing (I/O domain only) *)

let journal_append st r =
  match st.journal with
  | None -> Ok ()
  | Some j -> (
    try
      Journal.append j r;
      Ok ()
    with
    | Engine.Io_fault.Injected m -> Error m
    | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | Sys_error m -> Error m)

(* Remove [name]'s lease and journal the release.  A failed release
   append is tolerated: after recovery the grant comes back as an
   orphan lease and expires one TTL later — a delay, never a
   double-grant. *)
let release_lease st name =
  match Lease.epoch_of st.leases ~name with
  | None -> ()
  | Some epoch -> (
    ignore (Lease.release st.leases ~name ~epoch);
    match journal_append st (Journal.Release { name; epoch }) with
    | Ok () -> ()
    | Error m ->
      st.cfg.log
        (Printf.sprintf
           "journal: release of %d not recorded (%s); lease expiry reclaims \
            it after recovery"
           name m))

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Tear down a connection's I/O; its record stays in the table until
   in-flight jobs settle so late completions can be drained. *)
let disconnect st c =
  if not c.dead then begin
    c.dead <- true;
    close_fd c.fd;
    Session.clear_out c.session;
    List.iter
      (fun name ->
        Session.note_released c.session name;
        release_lease st name;
        enqueue_drain_release st name)
      (Session.held c.session);
    if c.inflight = 0 then Hashtbl.remove st.conns c.cid
  end

(* The expiry sweep: the only thing that kills a lease on time grounds.
   A reclaimed name leaves its holder's ledger too, so a late release
   from that client is answered [err_not_held] instead of freeing a
   cell somebody else may have re-won. *)
let sweep st tnow =
  List.iter
    (fun (name, epoch, holder, _token) ->
      st.expired_leases <- st.expired_leases + 1;
      (match holder with
      | Some cid -> (
        match Hashtbl.find_opt st.conns cid with
        | Some c when not c.dead -> Session.note_released c.session name
        | _ -> ())
      | None -> ());
      (match journal_append st (Journal.Expire { name; epoch }) with
      | Ok () -> ()
      | Error m ->
        st.cfg.log
          (Printf.sprintf "journal: expiry of %d not recorded (%s)" name m));
      enqueue_auto_release st name)
    (Lease.expire_due st.leases ~now:tnow)

(* ------------------------------------------------------------------ *)
(* Request handling (I/O domain only) *)

let stats_json st =
  let pool_fields = Jsonu.obj (Shard.stats st.pool) in
  let held =
    List.fold_left
      (fun acc c -> acc + Session.held_count c.session)
      0 (conn_list st)
  in
  Jsonu.Obj
    ([ ("kind", Jsonu.Str "renamed-stats"); ("schema", Jsonu.Int 1) ]
    @ pool_fields
    @ [
        ("held_by_sessions", Jsonu.Int held);
        ("leases", Jsonu.Int (Lease.held st.leases));
        ("lease_ttl_ms", Jsonu.Int (Lease.ttl_ms st.leases));
        ("renews", Jsonu.Int st.renews);
        ("expired_leases", Jsonu.Int st.expired_leases);
        ("dedup_hits", Jsonu.Int st.dedup_hits);
        ("recovered", Jsonu.Int st.recovered);
        ("journal", Jsonu.Bool (Option.is_some st.journal));
        ("conns", Jsonu.Int (Hashtbl.length st.conns));
        ("conns_served", Jsonu.Int st.conns_served);
        ("requests", Jsonu.Int st.requests);
        ("shed_busy", Jsonu.Int st.shed_busy);
        ("shed_expired", Jsonu.Int st.shed_expired);
        ("stalled_conns", Jsonu.Int st.stalled_conns);
        ("queue_peak", Jsonu.Int st.queue_peak);
        ( "overload",
          Overload.to_json st.overload ~queue_depth:(max_queue_depth st)
            ~queue_bound:st.cfg.max_queue );
        ("uptime_s", Jsonu.Num (now () -. st.started));
      ])

let handle_request st c (r : Wire.request) =
  st.requests <- st.requests + 1;
  let id = Wire.request_id r in
  let op = Wire.request_op r in
  if st.phase <> Serving then
    send_response st c
      (Wire.Error { id; op; code = Wire.err_shutdown; msg = "shutting down" })
  else
    match r with
    | Wire.Acquire { id; client; token; deadline_ms } -> (
      (* Idempotent retry: a nonzero token still bound to a live lease
         re-delivers the original grant — but only when that lease is
         unclaimed (an orphan from recovery or a reply lost in flight to
         a dead connection) or already ours.  A token colliding with
         another live connection's lease is a fresh acquire. *)
      let dedup =
        match Lease.find_token st.leases ~token with
        | None -> None
        | Some (name, epoch) ->
          let ours =
            match Lease.holder_of st.leases ~name with
            | Some None -> true
            | Some (Some h) -> (
              h = c.cid
              || match Hashtbl.find_opt st.conns h with
                 | Some holder -> holder.dead
                 | None -> true)
            | None -> false
          in
          if ours && Lease.rebind st.leases ~now:(now ()) ~name ~epoch ~holder:c.cid
          then Some name
          else None
      in
      match dedup with
      | Some name ->
        st.dedup_hits <- st.dedup_hits + 1;
        Session.note_acquired c.session name;
        send_response st c
          (Wire.Acquired { id; name; lease_ms = Lease.ttl_ms st.leases })
      | None ->
        let shard = Shard.shard_of_client st.pool client in
        let depth = Atomic.get st.acq_depth.(shard) in
        st.queue_peak <- max st.queue_peak depth;
        let busy depth =
          st.shed_busy <- st.shed_busy + 1;
          send_response st c
            (Wire.Busy
               {
                 id;
                 op = Wire.Op_acquire;
                 retry_after_ms =
                   Overload.retry_after_ms st.overload ~queue_depth:depth;
               })
        in
        if Overload.level st.overload = Overload.Shedding then
          (* Graceful degradation: while shedding, no new acquire is
             admitted at all, but releases/renews/stats below still
             execute — held names keep draining, which is the path
             back to health. *)
          busy depth
        else begin
          let depth =
            if depth >= st.cfg.max_queue then begin
              ignore (purge_expired st ~shard);
              Atomic.get st.acq_depth.(shard)
            end
            else depth
          in
          if depth >= st.cfg.max_queue then busy depth
          else begin
            let t = now () in
            let deadline =
              if deadline_ms > 0 then t +. (float_of_int deadline_ms /. 1000.)
              else infinity
            in
            c.inflight <- c.inflight + 1;
            enqueue_job st ~shard
              (Acquire_job
                 { conn = c.cid; id; client; token; deadline; admitted = t })
          end
        end)
    | Wire.Release { id; client = _; name } ->
      if Session.holds c.session name then begin
        (* The ledger entry goes now, not at completion: a second
           release of the same name racing the first must already see
           it gone, or it would free a re-acquired cell.  The lease and
           its journal record go with it. *)
        Session.note_released c.session name;
        release_lease st name;
        c.inflight <- c.inflight + 1;
        match Shard.shard_of_name st.pool name with
        | Some shard ->
          enqueue_job st ~shard
            (Release_job { conn = c.cid; id; name; drain = false })
        | None -> assert false (* ledger only ever holds granted names *)
      end
      else
        send_response st c
          (Wire.Error
             { id; op; code = Wire.err_not_held; msg = "name not held here" })
    | Wire.Renew { id; client = _ } ->
      st.renews <- st.renews + 1;
      let count = Lease.renew st.leases ~now:(now ()) ~holder:c.cid in
      send_response st c (Wire.Renewed { id; count })
    | Wire.Stats { id } ->
      send_response st c (Wire.Stats_reply { id; stats = stats_json st })
    | Wire.Shutdown { id } ->
      send_response st c (Wire.Shutting_down { id });
      stop st.handle

let handle_done st op =
  st.inflight_total <- st.inflight_total - 1;
  let find cid = Hashtbl.find_opt st.conns cid in
  let settle cid = settle_conn st cid in
  match op with
  | Did_acquire { conn; id; client; token; name; expired; waited_ms } -> (
    Overload.note_latency st.overload waited_ms;
    if expired then begin
      st.shed_expired <- st.shed_expired + 1;
      (match find conn with
      | Some c when not c.dead ->
        send_response st c
          (Wire.Error
             {
               id;
               op = Wire.Op_acquire;
               code = Wire.err_expired;
               msg = "deadline expired before execution";
             })
      | _ -> ())
    end
    else
    (match (find conn, name) with
    | Some c, Some name when not c.dead -> (
      (* Write-ahead: the grant is journaled before the client can ever
         see [Acquired], so an acknowledged name is always recovered.
         If the append fails the grant never happened — roll the lease
         back, return the slot, tell the client the truth. *)
      let epoch =
        Lease.grant st.leases ~now:(now ()) ~name ~holder:(Some c.cid) ~token
      in
      match journal_append st (Journal.Grant { name; epoch; client; token }) with
      | Ok () ->
        st.acquires <- st.acquires + 1;
        Session.note_acquired c.session name;
        send_response st c
          (Wire.Acquired { id; name; lease_ms = Lease.ttl_ms st.leases })
      | Error m ->
        ignore (Lease.release st.leases ~name ~epoch);
        enqueue_auto_release st name;
        st.cfg.log (Printf.sprintf "journal: grant of %d aborted (%s)" name m);
        send_response st c
          (Wire.Error
             {
               id;
               op = Wire.Op_acquire;
               code = Wire.err_internal;
               msg = "journal append failed";
             }))
    | _, Some name ->
      (* Granted to a connection that died while the job was in
         flight: never journaled, never leased — nobody will release
         it, so the server must. *)
      st.acquires <- st.acquires + 1;
      enqueue_drain_release st name
    | Some c, None when not c.dead ->
      send_response st c
        (Wire.Error
           {
             id;
             op = Wire.Op_acquire;
             code = Wire.err_capacity;
             msg = "namespace exhausted";
           })
    | _, None -> ());
    settle conn)
  | Did_release { conn; id; name = _; drain } ->
    st.releases <- st.releases + 1;
    if not drain then begin
      (match find conn with
      | Some c when not c.dead -> send_response st c (Wire.Released { id })
      | _ -> ());
      settle conn
    end

(* ------------------------------------------------------------------ *)
(* I/O *)

let on_readable st c =
  match Unix.read c.fd st.scratch 0 (Bytes.length st.scratch) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> disconnect st c
  | 0 -> disconnect st c
  | n -> (
    match Session.feed c.session ~buf:st.scratch ~len:n with
    | Ok reqs -> List.iter (handle_request st c) reqs
    | Error msg ->
      send_response st c
        (Wire.Error
           { id = 0; op = Wire.Op_acquire; code = Wire.err_proto; msg });
      c.closing <- true)

let on_writable st c =
  try
    let continue = ref true in
    while !continue do
      match Session.peek_out c.session with
      | None -> continue := false
      | Some (head, off) ->
        let len = String.length head - off in
        (* repro-lint: allow journal-write — client socket, not a journal fd *)
        let n = Unix.write_substring c.fd head off len in
        Session.advance_out c.session n;
        if n > 0 then c.last_progress <- now ();
        if n < len then continue := false
    done
  with
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | Unix.Unix_error _ -> disconnect st c

let accept_ready st listen_fd =
  let continue = ref true in
  while !continue do
    match Unix.accept ~cloexec:true listen_fd with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error (e, _, _) ->
      st.cfg.log (Printf.sprintf "accept: %s" (Unix.error_message e));
      continue := false
    | fd, _ ->
      if Hashtbl.length st.conns >= st.cfg.max_conns then begin
        st.cfg.log "accept: connection limit reached, refusing";
        close_fd fd
      end
      else begin
        Unix.set_nonblock fd;
        let cid = st.next_cid in
        st.next_cid <- cid + 1;
        st.conns_served <- st.conns_served + 1;
        Hashtbl.replace st.conns cid
          {
            fd;
            cid;
            session = Session.create ();
            inflight = 0;
            closing = false;
            dead = false;
            last_progress = now ();
          }
      end
  done

(* ------------------------------------------------------------------ *)
(* Startup: bind, reclaiming a stale socket file if the daemon behind
   it is gone (the failure mode `repro_cli doctor` audits). *)

let bind_socket cfg =
  let path = cfg.socket_path in
  let stale_or_error () =
    let probe = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
    let verdict =
      match Unix.connect probe (ADDR_UNIX path) with
      | () -> Error (Printf.sprintf "%s: a daemon is already serving" path)
      | exception Unix.Unix_error (ECONNREFUSED, _, _) -> Ok `Stale
      | exception Unix.Unix_error (ENOENT, _, _) -> Ok `Gone
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "%s: %s" path (Unix.error_message e))
    in
    close_fd probe;
    verdict
  in
  let ready =
    match Unix.stat path with
    | exception Unix.Unix_error (ENOENT, _, _) -> Ok ()
    | { st_kind = S_SOCK; _ } -> (
      match stale_or_error () with
      | Error _ as e -> e
      | Ok `Gone -> Ok ()
      | Ok `Stale ->
        cfg.log (Printf.sprintf "reclaiming stale socket file %s" path);
        Unix.unlink path;
        Ok ())
    | _ -> Error (Printf.sprintf "%s exists and is not a socket" path)
  in
  match ready with
  | Error _ as e -> e
  | Ok () -> (
    let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
    match
      Unix.bind fd (ADDR_UNIX path);
      Unix.listen fd cfg.backlog;
      Unix.set_nonblock fd
    with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      close_fd fd;
      Error (Printf.sprintf "bind %s: %s" path (Unix.error_message e)))

(* ------------------------------------------------------------------ *)
(* Journal recovery (before the socket exists: a daemon that will
   refuse to serve should never accept a connection). *)

let recover_journal cfg ~pool ~leases =
  match cfg.journal_path with
  | None -> Ok (None, 0)
  | Some path ->
    if not (Sys.file_exists path) then (
      match Journal.open_append ~path with
      | Ok j -> Ok (Some j, 0)
      | Error e -> Error e)
    else (
      match Journal.scan ~path with
      | Error e -> Error e
      | Ok s ->
        if s.Journal.damaged > 0 then
          Error
            (Printf.sprintf
               "journal %s: %d damaged record(s); refusing to serve from a \
                corrupt ledger (repro_cli doctor shows the damage)"
               path s.Journal.damaged)
        else begin
          if s.Journal.torn_tail then
            cfg.log
              (Printf.sprintf "journal %s: torn tail dropped (crash artifact)"
                 path);
          let live = Journal.replay s.Journal.records in
          let n = List.length live.Journal.grants in
          if n > 0 && not cfg.recover then
            Error
              (Printf.sprintf
                 "%s journal %s replays %d live grant(s); restart with \
                  --recover to re-occupy them"
                 recovery_required_prefix path n)
          else begin
            let restored = ref 0 in
            List.iter
              (fun (name, (epoch, _client, token)) ->
                match Shard.retake pool ~name with
                | `Taken ->
                  Lease.restore leases ~now:(now ()) ~name ~epoch ~token;
                  incr restored
                | `Already ->
                  cfg.log
                    (Printf.sprintf
                       "recovery: name %d doubly granted in the journal" name)
                | `Outside ->
                  cfg.log
                    (Printf.sprintf
                       "recovery: name %d outside the pool geometry \
                        (shards/capacity changed?)"
                       name))
              live.Journal.grants;
            Lease.set_next_epoch leases live.Journal.next_epoch;
            if live.Journal.double_grants > 0 then
              cfg.log
                (Printf.sprintf "recovery: replay counted %d double grant(s)"
                   live.Journal.double_grants);
            match Journal.rewrite ~path live.Journal.grants with
            | Error e -> Error e
            | Ok () -> (
              match Journal.open_append ~path with
              | Error e -> Error e
              | Ok j ->
                if !restored > 0 || s.Journal.torn_tail then
                  cfg.log
                    (Printf.sprintf
                       "recovered %d live grant(s) from %s (journal compacted)"
                       !restored path);
                Ok (Some j, !restored))
          end
        end)

(* ------------------------------------------------------------------ *)
(* The serving loop *)

let select_step st =
  let reads = ref [ st.wake_r ] in
  let writes = ref [] in
  (match (st.phase, st.listen_fd) with
  | Serving, Some fd when Hashtbl.length st.conns < st.cfg.max_conns ->
    reads := fd :: !reads
  | _ -> ());
  List.iter
    (fun c ->
      if not c.dead then begin
        (* Read-pausing backpressure: a peer whose outbound backlog is
           over the bound stops being read — it cannot submit more work
           until it drains what it already owes us. *)
        if
          st.phase = Serving && (not c.closing)
          && Session.out_bytes c.session <= st.cfg.max_out_bytes
        then reads := c.fd :: !reads;
        if out_pending c then writes := c.fd :: !writes
      end)
    (conn_list st);
  match Unix.select !reads !writes [] 0.1 with
  | exception Unix.Unix_error (EINTR, _, _) -> ([], [])
  | r, w, _ -> (r, w)

let run ?handle cfg =
  if cfg.shards < 1 then invalid_arg "Server.run: shards < 1";
  if cfg.capacity < 1 then invalid_arg "Server.run: capacity < 1";
  if cfg.max_queue < 1 then invalid_arg "Server.run: max_queue < 1";
  if cfg.max_out_bytes < 1 then invalid_arg "Server.run: max_out_bytes < 1";
  let handle = match handle with Some h -> h | None -> create_handle () in
  let pool =
    Shard.create ~shards:cfg.shards ~capacity:cfg.capacity ~seed:cfg.seed ()
  in
  let leases = Lease.create ~ttl_s:cfg.lease_ttl_s () in
  match recover_journal cfg ~pool ~leases with
  | Error _ as e -> e
  | Ok (journal, recovered) -> (
    let close_journal () =
      match journal with Some j -> Journal.close j | None -> ()
    in
    match bind_socket cfg with
    | Error _ as e ->
      close_journal ();
      e
    | Ok listen_fd ->
      let wake_r, wake_w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock wake_r;
      Unix.set_nonblock wake_w;
      Atomic.set handle.wake (Some wake_w);
      let st =
        {
          cfg;
          pool;
          leases;
          journal;
          recovered;
          handle;
          workers = Array.init cfg.shards (fun _ -> Q.create ());
          outbox = Q.create ();
          wake_r;
          wake_w;
          conns = Hashtbl.create 64;
          started = now ();
          scratch = Bytes.create 65536;
          overload =
            Overload.create ?config:cfg.overload ~queue_bound:cfg.max_queue ();
          listen_fd = Some listen_fd;
          phase = Serving;
          next_cid = 0;
          inflight_total = 0;
          next_sweep = 0.;
          conns_served = 0;
          requests = 0;
          acquires = 0;
          releases = 0;
          errors = 0;
          drained_releases = 0;
          renews = 0;
          expired_leases = 0;
          dedup_hits = 0;
          shed_busy = 0;
          shed_expired = 0;
          stalled_conns = 0;
          queue_peak = 0;
          flush_deadline = 0.;
          acq_depth = Array.init cfg.shards (fun _ -> Atomic.make 0);
        }
      in
      (* The only Domain.spawn outside lib/shm and the engine pool: the
         serving substrate owns its shard workers the same way the runner
         owns its domains.  They are joined on every exit path below. *)
      let domains =
        Array.init cfg.shards (fun i ->
            Domain.spawn (fun () -> worker_loop st i))
      in
      cfg.log
        (Printf.sprintf
           "serving on %s: %d shard(s), capacity %d, namespace %d, lease TTL \
            %.3fs%s"
           cfg.socket_path cfg.shards cfg.capacity (Shard.namespace pool)
           (Lease.ttl_s leases)
           (match cfg.journal_path with
           | Some p -> Printf.sprintf ", journal %s" p
           | None -> ""));
      let fd_conn fd =
        List.find_opt (fun c -> (not c.dead) && c.fd = fd) (conn_list st)
      in
      let close_listener () =
        match st.listen_fd with
        | None -> ()
        | Some fd ->
          st.listen_fd <- None;
          close_fd fd;
          (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
      in
      let running = ref true in
      while !running do
        let readable, writable = select_step st in
        (* Wake bytes carry no data; drain and discard. *)
        if List.mem st.wake_r readable then (
          try
            while Unix.read st.wake_r st.scratch 0 512 > 0 do
              ()
            done
          with Unix.Unix_error _ -> ());
        List.iter (handle_done st) (Q.drain st.outbox);
        (match st.listen_fd with
        | Some fd when List.mem fd readable -> accept_ready st fd
        | _ -> ());
        List.iter
          (fun fd ->
            if fd <> st.wake_r && Some fd <> st.listen_fd then
              match fd_conn fd with Some c -> on_readable st c | None -> ())
          readable;
        List.iter
          (fun fd ->
            match fd_conn fd with Some c -> on_writable st c | None -> ())
          writable;
        (* Connections asked to close (protocol corruption): flush, drop. *)
        List.iter
          (fun c ->
            if
              c.closing && (not c.dead)
              && (not (out_pending c))
              && c.inflight = 0
            then disconnect st c)
          (conn_list st);
        (* Slow-reader stall: over the outbound bound AND no byte has
           drained for stall_s — the peer is gone or wedged, so cut it
           loose (its ledger auto-releases through the drain path). *)
        (let t = now () in
         List.iter
           (fun c ->
             if
               (not c.dead)
               && Session.out_bytes c.session > st.cfg.max_out_bytes
               && t -. c.last_progress > st.cfg.stall_s
             then begin
               st.stalled_conns <- st.stalled_conns + 1;
               st.cfg.log
                 (Printf.sprintf
                    "conn %d stalled: %d unsent byte(s), no progress for \
                     %.1fs; disconnecting"
                    c.cid
                    (Session.out_bytes c.session)
                    (t -. c.last_progress));
               disconnect st c
             end)
           (conn_list st));
        (* Lease expiry sweep + overload machine tick *)
        (if st.phase = Serving then
           let t = now () in
           let depth = max_queue_depth st in
           st.queue_peak <- max st.queue_peak depth;
           ignore (Overload.observe st.overload ~now:t ~queue_depth:depth);
           if t >= st.next_sweep then begin
             sweep st t;
             st.next_sweep <- t +. sweep_period st
           end);
        (* Phase transitions *)
        (match st.phase with
        | Serving when stop_requested handle ->
          cfg.log "stop requested: draining in-flight jobs";
          close_listener ();
          st.phase <- Draining_jobs
        | Serving -> ()
        | Draining_jobs when st.inflight_total = 0 ->
          let drained = ref 0 in
          List.iter
            (fun c ->
              List.iter
                (fun name ->
                  Session.note_released c.session name;
                  release_lease st name;
                  enqueue_drain_release st name;
                  incr drained)
                (Session.held c.session))
            (conn_list st);
          (* Orphan leases (recovered grants nobody reclaimed) hold
             real cells but sit on no session ledger; release them too
             or the conservation check would call them a leak. *)
          List.iter
            (fun (name, epoch, _holder, _token) ->
              (match journal_append st (Journal.Release { name; epoch }) with
              | Ok () -> ()
              | Error m ->
                st.cfg.log
                  (Printf.sprintf
                     "journal: drain release of %d not recorded (%s)" name m));
              enqueue_drain_release st name;
              incr drained)
            (Lease.expire_due st.leases ~now:infinity);
          cfg.log
            (Printf.sprintf "drained jobs; auto-releasing %d held name(s)"
               !drained);
          st.phase <- Draining_ledgers
        | Draining_jobs -> ()
        | Draining_ledgers when st.inflight_total = 0 ->
          st.phase <- Flushing;
          st.flush_deadline <- now () +. 5.
        | Draining_ledgers -> ()
        | Flushing ->
          let unflushed =
            List.exists (fun c -> (not c.dead) && out_pending c) (conn_list st)
          in
          if (not unflushed) || now () > st.flush_deadline then running := false);
        ()
      done;
      (* Teardown: close clients, stop workers, check slot conservation. *)
      List.iter (fun c -> if not c.dead then close_fd c.fd) (conn_list st);
      Hashtbl.reset st.conns;
      Array.iter (fun q -> Q.push q Quit) st.workers;
      Array.iter Domain.join domains;
      close_listener ();
      close_journal ();
      Atomic.set handle.wake None;
      close_fd wake_r;
      close_fd wake_w;
      let taken_at_exit = Shard.taken_count pool in
      if taken_at_exit <> 0 then
        cfg.log
          (Printf.sprintf "LEAK: %d cell(s) still taken at exit" taken_at_exit);
      Ok
        {
          conns_served = st.conns_served;
          requests = st.requests;
          acquires = st.acquires;
          releases = st.releases;
          errors = st.errors;
          drained_releases = st.drained_releases;
          renews = st.renews;
          expired_leases = st.expired_leases;
          dedup_hits = st.dedup_hits;
          recovered = st.recovered;
          shed_busy = st.shed_busy;
          shed_expired = st.shed_expired;
          stalled_conns = st.stalled_conns;
          queue_peak = st.queue_peak;
          taken_at_exit;
          wall_s = now () -. st.started;
        })

(* ------------------------------------------------------------------ *)
(* Embedding *)

type spawned = {
  sh : handle;
  dom : (report, string) result Domain.t;
}

let spawn ?handle cfg =
  let sh = match handle with Some h -> h | None -> create_handle () in
  { sh; dom = Domain.spawn (fun () -> run ~handle:sh cfg) }

let spawned_handle s = s.sh
let join s = Domain.join s.dom
