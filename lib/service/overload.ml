type level = Healthy | Degraded | Shedding

let level_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Shedding -> "shedding"

let level_of_string = function
  | "healthy" -> Some Healthy
  | "degraded" -> Some Degraded
  | "shedding" -> Some Shedding
  | _ -> None

type config = {
  queue_hi : int;
  queue_lo : int;
  latency_hi_ms : float;
  latency_lo_ms : float;
  dwell_s : float;
  ema_alpha : float;
  retry_floor_ms : int;
  retry_cap_ms : int;
}

let default_config ~queue_bound =
  {
    queue_hi = max 1 (queue_bound * 3 / 4);
    queue_lo = queue_bound / 4;
    latency_hi_ms = 100.;
    latency_lo_ms = 20.;
    dwell_s = 1.;
    ema_alpha = 0.2;
    retry_floor_ms = 5;
    retry_cap_ms = 2000;
  }

type t = {
  cfg : config;
  mutable level : level;
  mutable ema_ms : float;
  mutable last_obs : float option;  (* previous observe time, for decay *)
  mutable hot_since : float option;  (* pressure continuously high since *)
  mutable calm_since : float option;  (* pressure continuously low since *)
  mutable transitions : int;
}

let create ?config ~queue_bound () =
  let cfg =
    match config with Some c -> c | None -> default_config ~queue_bound
  in
  if cfg.queue_lo > cfg.queue_hi then
    invalid_arg "Overload.create: queue_lo > queue_hi";
  if cfg.latency_lo_ms > cfg.latency_hi_ms then
    invalid_arg "Overload.create: latency_lo_ms > latency_hi_ms";
  {
    cfg;
    level = Healthy;
    ema_ms = 0.;
    last_obs = None;
    hot_since = None;
    calm_since = None;
    transitions = 0;
  }

let level t = t.level
let ema_ms t = t.ema_ms
let transitions t = t.transitions

let note_latency t ms =
  let a = t.cfg.ema_alpha in
  t.ema_ms <- if t.ema_ms = 0. then ms else ((1. -. a) *. t.ema_ms) +. (a *. ms)

(* One step at a time with dwell requirements on both slopes:

   - Healthy -> Degraded fires on the first hot observation (reacting
     late to overload is how queues explode), but Degraded -> Shedding
     needs the pressure to {e stay} hot for [dwell_s].
   - Stepping down needs [dwell_s] of continuous calm per level, so
     Shedding -> Healthy costs two full dwells.

   Between the hi and lo thresholds neither timer runs: the level
   freezes, which is the hysteresis band that keeps a load sitting
   exactly on a threshold from flapping the machine. *)
let observe t ~now ~queue_depth =
  (* The EMA only receives samples from acquires that flow; while
     Shedding blocks every admission no sample ever arrives, and a
     frozen-high EMA would hold the machine in Shedding forever.  A
     queue at calm depth is live evidence that the next admission will
     not wait, so congestion evidence goes stale on a clock: decay the
     EMA toward zero (half-life about a third of the dwell) whenever
     the queue is at or below the low-water mark.  Samples from real
     traffic keep outweighing the decay — only silence lets it win. *)
  (match t.last_obs with
  | Some prev when now > prev && queue_depth <= t.cfg.queue_lo ->
    let tau = Float.max 0.001 (t.cfg.dwell_s /. 2.) in
    t.ema_ms <- t.ema_ms *. exp (-.(now -. prev) /. tau)
  | _ -> ());
  t.last_obs <- Some now;
  let hot =
    queue_depth >= t.cfg.queue_hi || t.ema_ms >= t.cfg.latency_hi_ms
  in
  let calm =
    queue_depth <= t.cfg.queue_lo && t.ema_ms <= t.cfg.latency_lo_ms
  in
  if hot then begin
    t.calm_since <- None;
    (match (t.level, t.hot_since) with
    | Healthy, _ ->
      t.level <- Degraded;
      t.transitions <- t.transitions + 1;
      t.hot_since <- Some now
    | Degraded, Some since when now -. since >= t.cfg.dwell_s ->
      t.level <- Shedding;
      t.transitions <- t.transitions + 1;
      t.hot_since <- Some now
    | (Degraded | Shedding), Some _ -> ()
    | (Degraded | Shedding), None -> t.hot_since <- Some now)
  end
  else if calm then begin
    t.hot_since <- None;
    match t.calm_since with
    | None -> t.calm_since <- Some now
    | Some since when now -. since >= t.cfg.dwell_s ->
      (match t.level with
      | Healthy -> ()
      | Degraded ->
        t.level <- Healthy;
        t.transitions <- t.transitions + 1
      | Shedding ->
        t.level <- Degraded;
        t.transitions <- t.transitions + 1);
      t.calm_since <- Some now
    | Some _ -> ()
  end
  else begin
    t.hot_since <- None;
    t.calm_since <- None
  end;
  t.level

(* How long a refused client should wait: roughly the time for the
   backlog ahead of it to drain at the observed service rate, floored
   (a zero hint is a retry storm) and capped (a huge hint parks clients
   past the recovery). *)
let retry_after_ms t ~queue_depth =
  let per = Float.max 1. t.ema_ms in
  let hint =
    t.cfg.retry_floor_ms + int_of_float (float_of_int queue_depth *. per)
  in
  min t.cfg.retry_cap_ms (max t.cfg.retry_floor_ms hint)

let to_json t ~queue_depth ~queue_bound =
  Jsonu.Obj
    [
      ("level", Jsonu.Str (level_string t.level));
      ("queue_depth", Jsonu.Int queue_depth);
      ("queue_bound", Jsonu.Int queue_bound);
      ("admission_ema_ms", Jsonu.Num t.ema_ms);
      ("transitions", Jsonu.Int t.transitions);
      ("retry_after_ms", Jsonu.Int (retry_after_ms t ~queue_depth));
    ]
