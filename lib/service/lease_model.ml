(* A pure, finite model of the lease protocol for exhaustive checking.

   The model drives the *shipped* [Lease] table — not a re-implementation
   — through every interleaving of a small closed system: [clients]
   clients that acquire, renew and release leases on [names] names, plus
   one logical clock process whose Tick advances model time past the TTL
   and whose Sweep runs the expiry pass.  Time is explicit (integer ticks
   scaled onto the [now] floats the table expects), so the whole system
   is a deterministic function of the chosen schedule, which is what lets
   [Analysis.Explore] enumerate it.

   Each client keeps a local *claim* — its belief about the lease it was
   granted.  When the sweep reclaims an un-renewed lease the claim turns
   into a zombie: the client does not know yet that its lease died.  The
   invariants checked after every transition are exactly the PR-7
   guarantees:

   - epochs are strictly monotonic across grants;
   - a zombie's release is rejected ([`Stale]/[`Unknown]) and never
     destroys a reissued lease another client holds;
   - a zombie's renew extends nothing;
   - a live (non-zombie) claim's lease stays in the table with its epoch
     and holder until the client itself releases it;
   - token bindings die with their leases (an expired idempotency token
     can never match again).

   Seeded mutations re-introduce the bugs the protocol exists to
   prevent, so the model checker can demonstrate it would catch them. *)

type config = {
  clients : int;
  names : int;
  acquires : int;  (* acquire budget per client *)
  ticks : int;  (* clock-advance budget *)
  mutation : string option;
}

let mutations = [ "stale-release"; "restore-expired" ]

let default =
  { clients = 2; names = 1; acquires = 2; ticks = 2; mutation = None }

type action = { pid : int; tag : int; label : string }

let tag_acquire = 0
let tag_renew = 1
let tag_release = 2
let tag_tick = 3
let tag_sweep = 4

type claim = {
  name : int;
  epoch : int;
  token : int;
  mutable zombie : bool;
  mutable renews : int;
}

type t = {
  cfg : config;
  lease : Lease.t;
  init_snap : Lease.snapshot;
  claims : claim option array;  (* per client *)
  acquired : int array;  (* acquires performed per client *)
  mutable now : float;
  mutable ticks_done : int;
  mutable last_epoch : int;
  mutable next_token : int;
}

let ttl = 1.0
let tick_delta = 2.0 (* > ttl: one tick makes every standing lease due *)

let create cfg =
  if cfg.clients < 1 then invalid_arg "Lease_model.create: clients >= 1";
  if cfg.names < 1 then invalid_arg "Lease_model.create: names >= 1";
  (match cfg.mutation with
  | Some m when not (List.mem m mutations) ->
    invalid_arg ("Lease_model.create: unknown mutation " ^ m)
  | _ -> ());
  let lease = Lease.create ~ttl_s:ttl () in
  {
    cfg;
    lease;
    init_snap = Lease.snapshot lease;
    claims = Array.make cfg.clients None;
    acquired = Array.make cfg.clients 0;
    now = 0.;
    ticks_done = 0;
    last_epoch = 0;
    next_token = 1;
  }

let config t = t.cfg
let nprocs t = t.cfg.clients + 1

let reset t =
  Lease.restore_snapshot t.lease t.init_snap;
  Array.fill t.claims 0 t.cfg.clients None;
  Array.fill t.acquired 0 t.cfg.clients 0;
  t.now <- 0.;
  t.ticks_done <- 0;
  t.last_epoch <- 0;
  t.next_token <- 1

(* ------------------------------------------------------------------ *)
(* Invariant monitor *)

let check_claims t =
  let viol = ref None in
  let set m = if !viol = None then viol := Some m in
  Array.iteri
    (fun c claim ->
      match claim with
      | None -> ()
      | Some cl when cl.zombie ->
        (* the lease died; its token must never match again *)
        (match Lease.find_token t.lease ~token:cl.token with
        | Some _ ->
          set
            (Printf.sprintf
               "dead token still bound: client %d's expired token %d matches \
                a live lease"
               c cl.token)
        | None -> ())
      | Some cl -> (
        match Lease.epoch_of t.lease ~name:cl.name with
        | None ->
          set
            (Printf.sprintf
               "live lease destroyed: client %d holds (name %d, epoch %d) \
                but the table has no lease on it"
               c cl.name cl.epoch)
        | Some e when e <> cl.epoch ->
          set
            (Printf.sprintf
               "live lease reissued: client %d holds (name %d, epoch %d) but \
                the table shows epoch %d"
               c cl.name cl.epoch e)
        | Some _ -> ()))
    t.claims;
  (* two clients believing they hold the same name is the uniqueness
     violation the epochs exist to prevent *)
  Array.iteri
    (fun c claim ->
      match claim with
      | Some cl when not cl.zombie ->
        Array.iteri
          (fun d claim' ->
            match claim' with
            | Some cl' when d > c && (not cl'.zombie) && cl'.name = cl.name ->
              set
                (Printf.sprintf
                   "dual holder: clients %d and %d both hold live claims on \
                    name %d"
                   c d cl.name)
            | _ -> ())
          t.claims
      | _ -> ())
    t.claims;
  !viol

(* ------------------------------------------------------------------ *)
(* Enabled actions, in deterministic (pid, tag) order *)

let free_name t =
  let rec go i =
    if i >= t.cfg.names then None
    else
      match Lease.epoch_of t.lease ~name:i with
      | None -> Some i
      | Some _ -> go (i + 1)
  in
  go 0

let has_due t =
  let rec go i =
    i < t.cfg.names
    && (match Lease.expires_of t.lease ~name:i with
       | Some e when e <= t.now -> true
       | _ -> go (i + 1))
  in
  go 0

let enabled t =
  let acts = ref [] in
  let clock = t.cfg.clients in
  if has_due t then
    acts := { pid = clock; tag = tag_sweep; label = "sweep" } :: !acts;
  if t.ticks_done < t.cfg.ticks then
    acts := { pid = clock; tag = tag_tick; label = "tick" } :: !acts;
  for c = t.cfg.clients - 1 downto 0 do
    match t.claims.(c) with
    | Some cl ->
      acts := { pid = c; tag = tag_release; label = "release" } :: !acts;
      if cl.renews < 1 then
        acts := { pid = c; tag = tag_renew; label = "renew" } :: !acts
    | None ->
      if t.acquired.(c) < t.cfg.acquires && free_name t <> None then
        acts := { pid = c; tag = tag_acquire; label = "acquire" } :: !acts
  done;
  !acts

(* ------------------------------------------------------------------ *)
(* Transitions.  Each returns [Some violation] on an invariant breach. *)

let mutated t m = t.cfg.mutation = Some m

let apply_acquire t c =
  match free_name t with
  | None -> Some "acquire applied with no free name"
  | Some name ->
    let token = t.next_token in
    t.next_token <- token + 1;
    let epoch =
      Lease.grant t.lease ~now:t.now ~name ~holder:(Some c) ~token
    in
    t.acquired.(c) <- t.acquired.(c) + 1;
    t.claims.(c) <- Some { name; epoch; token; zombie = false; renews = 0 };
    if epoch <= t.last_epoch then
      Some
        (Printf.sprintf
           "epoch not monotonic: grant to client %d returned epoch %d after \
            epoch %d"
           c epoch t.last_epoch)
    else begin
      t.last_epoch <- epoch;
      check_claims t
    end

let apply_renew t c =
  match t.claims.(c) with
  | None -> Some "renew applied without a claim"
  | Some cl ->
    cl.renews <- cl.renews + 1;
    let k = Lease.renew t.lease ~now:t.now ~holder:c in
    if cl.zombie && k > 0 then
      Some
        (Printf.sprintf
           "zombie renew: client %d's claim expired yet renew extended %d \
            lease(s)"
           c k)
    else if (not cl.zombie) && k = 0 then
      Some
        (Printf.sprintf
           "live lease vanished: renew by client %d extended nothing" c)
    else check_claims t

let apply_release t c =
  match t.claims.(c) with
  | None -> Some "release applied without a claim"
  | Some cl ->
    t.claims.(c) <- None;
    let outcome =
      if mutated t "stale-release" then
        (* the seeded bug: skip the epoch comparison and release whatever
           lease currently stands on the name *)
        match Lease.epoch_of t.lease ~name:cl.name with
        | Some cur -> Lease.release t.lease ~name:cl.name ~epoch:cur
        | None -> `Unknown
      else Lease.release t.lease ~name:cl.name ~epoch:cl.epoch
    in
    (match (outcome, cl.zombie) with
    | `Released, true ->
      Some
        (Printf.sprintf
           "stale release accepted: client %d's dead claim on name %d freed \
            the current lease"
           c cl.name)
    | `Stale, false ->
      Some
        (Printf.sprintf
           "live release rejected as stale: client %d, name %d, epoch %d" c
           cl.name cl.epoch)
    | `Unknown, false ->
      Some
        (Printf.sprintf
           "live lease missing at release: client %d, name %d" c cl.name)
    | _ -> check_claims t)

let apply_tick t =
  t.now <- t.now +. tick_delta;
  t.ticks_done <- t.ticks_done + 1;
  check_claims t

let apply_sweep t =
  let due = Lease.expire_due t.lease ~now:t.now in
  let viol = ref None in
  List.iter
    (fun (name, epoch, holder, token) ->
      (match holder with
      | Some c -> (
        match t.claims.(c) with
        | Some cl when cl.name = name && cl.epoch = epoch ->
          cl.zombie <- true
        | _ -> ())
      | None -> ());
      if !viol = None && Lease.find_token t.lease ~token <> None then
        viol :=
          Some
            (Printf.sprintf
               "expired token still bound: token %d survived the sweep of \
                name %d"
               token name))
    due;
  (if mutated t "restore-expired" && !viol = None then
     (* the seeded bug: a recovery path resurrecting a swept lease with
        its dead epoch and token *)
     match due with
     | (name, epoch, _, token) :: _ ->
       Lease.restore t.lease ~now:t.now ~name ~epoch ~token
     | [] -> ());
  match !viol with None -> check_claims t | v -> v

let apply t (a : action) =
  if a.tag = tag_acquire then apply_acquire t a.pid
  else if a.tag = tag_renew then apply_renew t a.pid
  else if a.tag = tag_release then apply_release t a.pid
  else if a.tag = tag_tick then apply_tick t
  else if a.tag = tag_sweep then apply_sweep t
  else Some (Printf.sprintf "unknown action tag %d" a.tag)

let at_end t = check_claims t

let save t =
  let lease_snap = Lease.snapshot t.lease in
  let claims =
    Array.map
      (Option.map (fun cl -> { cl with name = cl.name (* copy *) }))
      t.claims
  in
  let acquired = Array.copy t.acquired in
  let now = t.now in
  let ticks_done = t.ticks_done in
  let last_epoch = t.last_epoch in
  let next_token = t.next_token in
  fun () ->
    Lease.restore_snapshot t.lease lease_snap;
    (* copy the claim records again on every restore: a snapshot may be
       restored more than once, and the records are mutable *)
    Array.iteri
      (fun i c ->
        t.claims.(i) <- Option.map (fun cl -> { cl with name = cl.name }) c)
      claims;
    Array.blit acquired 0 t.acquired 0 (Array.length acquired);
    t.now <- now;
    t.ticks_done <- ticks_done;
    t.last_epoch <- last_epoch;
    t.next_token <- next_token
