type mode = Binary | Json

type request =
  | Acquire of { id : int; client : int; token : int; deadline_ms : int }
  | Release of { id : int; client : int; name : int }
  | Renew of { id : int; client : int }
  | Stats of { id : int }
  | Shutdown of { id : int }

type op = Op_acquire | Op_release | Op_renew | Op_stats | Op_shutdown

type response =
  | Acquired of { id : int; name : int; lease_ms : int }
  | Released of { id : int }
  | Renewed of { id : int; count : int }
  | Stats_reply of { id : int; stats : Jsonu.t }
  | Shutting_down of { id : int }
  | Busy of { id : int; op : op; retry_after_ms : int }
  | Error of { id : int; op : op; code : int; msg : string }

let err_proto = 1
let err_capacity = 2
let err_not_held = 3
let err_shutdown = 4
let err_internal = 5
let err_busy = 6
let err_expired = 7
let max_frame = 65536

let request_id = function
  | Acquire { id; _ }
  | Release { id; _ }
  | Renew { id; _ }
  | Stats { id }
  | Shutdown { id } ->
    id

let request_op = function
  | Acquire _ -> Op_acquire
  | Release _ -> Op_release
  | Renew _ -> Op_renew
  | Stats _ -> Op_stats
  | Shutdown _ -> Op_shutdown

let response_id = function
  | Acquired { id; _ }
  | Released { id }
  | Renewed { id; _ }
  | Stats_reply { id; _ }
  | Shutting_down { id }
  | Busy { id; _ }
  | Error { id; _ } ->
    id

let op_string = function
  | Op_acquire -> "acquire"
  | Op_release -> "release"
  | Op_renew -> "renew"
  | Op_stats -> "stats"
  | Op_shutdown -> "shutdown"

let op_of_string = function
  | "acquire" -> Some Op_acquire
  | "release" -> Some Op_release
  | "renew" -> Some Op_renew
  | "stats" -> Some Op_stats
  | "shutdown" -> Some Op_shutdown
  | _ -> None

let op_code = function
  | Op_acquire -> 1
  | Op_release -> 2
  | Op_stats -> 3
  | Op_shutdown -> 4
  | Op_renew -> 5

let op_of_code = function
  | 1 -> Some Op_acquire
  | 2 -> Some Op_release
  | 3 -> Some Op_stats
  | 4 -> Some Op_shutdown
  | 5 -> Some Op_renew
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Binary primitives: big-endian fixed-width fields into a Buffer, and
   bounds-checked reads out of a Bytes window. *)

let u32_max = (1 lsl 32) - 1

let check_u32 what v =
  if v < 0 || v > u32_max then
    invalid_arg (Printf.sprintf "Wire: %s %d outside u32" what v)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u32 b v =
  add_u8 b (v lsr 24);
  add_u8 b (v lsr 16);
  add_u8 b (v lsr 8);
  add_u8 b v

let get_u8 buf off = Char.code (Bytes.get buf off)
let get_u16 buf off = (get_u8 buf off lsl 8) lor get_u8 buf (off + 1)

let get_u32 buf off =
  (get_u8 buf off lsl 24)
  lor (get_u8 buf (off + 1) lsl 16)
  lor (get_u8 buf (off + 2) lsl 8)
  lor get_u8 buf (off + 3)

(* Payload encoders build into a scratch buffer so the length prefix can
   be written first without backpatching. *)
let with_frame out payload =
  let b = Buffer.create 32 in
  payload b;
  let len = Buffer.length b in
  if len > max_frame then invalid_arg "Wire: frame exceeds max_frame";
  add_u32 out len;
  Buffer.add_buffer out b

(* ------------------------------------------------------------------ *)
(* Requests *)

let encode_request_binary out r =
  with_frame out (fun b ->
      add_u8 b (op_code (request_op r));
      check_u32 "id" (request_id r);
      add_u32 b (request_id r);
      match r with
      | Acquire { client; token; deadline_ms; _ } ->
        check_u32 "client" client;
        check_u32 "token" token;
        check_u32 "deadline_ms" deadline_ms;
        add_u32 b client;
        add_u32 b token;
        add_u32 b deadline_ms
      | Release { client; name; _ } ->
        check_u32 "client" client;
        check_u32 "name" name;
        add_u32 b client;
        add_u32 b name
      | Renew { client; _ } ->
        check_u32 "client" client;
        add_u32 b client
      | Stats _ | Shutdown _ -> ())

let request_to_json r =
  let base = [ ("id", Jsonu.Int (request_id r));
               ("op", Jsonu.Str (op_string (request_op r))) ] in
  let rest =
    match r with
    | Acquire { client; token; deadline_ms; _ } ->
      [ ("client", Jsonu.Int client); ("token", Jsonu.Int token);
        ("deadline_ms", Jsonu.Int deadline_ms) ]
    | Release { client; name; _ } ->
      [ ("client", Jsonu.Int client); ("name", Jsonu.Int name) ]
    | Renew { client; _ } -> [ ("client", Jsonu.Int client) ]
    | Stats _ | Shutdown _ -> []
  in
  Jsonu.Obj (base @ rest)

let encode_request mode out r =
  match mode with
  | Binary -> encode_request_binary out r
  | Json ->
    Buffer.add_string out (Jsonu.to_string (request_to_json r));
    Buffer.add_char out '\n'

(* ------------------------------------------------------------------ *)
(* Responses *)

let response_op = function
  | Acquired _ -> Op_acquire
  | Released _ -> Op_release
  | Renewed _ -> Op_renew
  | Stats_reply _ -> Op_stats
  | Shutting_down _ -> Op_shutdown
  | Busy { op; _ } -> op
  | Error { op; _ } -> op

let encode_response_binary out r =
  with_frame out (fun b ->
      let status = match r with Error _ -> 1 | Busy _ -> 2 | _ -> 0 in
      add_u8 b status;
      add_u8 b (op_code (response_op r));
      check_u32 "id" (response_id r);
      add_u32 b (response_id r);
      match r with
      | Acquired { name; lease_ms; _ } ->
        check_u32 "name" name;
        check_u32 "lease_ms" lease_ms;
        add_u32 b name;
        add_u32 b lease_ms
      | Renewed { count; _ } ->
        check_u32 "count" count;
        add_u32 b count
      | Busy { retry_after_ms; _ } ->
        check_u32 "retry_after_ms" retry_after_ms;
        add_u32 b retry_after_ms
      | Released _ | Shutting_down _ -> ()
      | Stats_reply { stats; _ } ->
        let s = Jsonu.to_string stats in
        if String.length s > 0xffff then invalid_arg "Wire: stats too large";
        add_u16 b (String.length s);
        Buffer.add_string b s
      | Error { code; msg; _ } ->
        add_u8 b code;
        let msg =
          if String.length msg > 0xffff then String.sub msg 0 0xffff else msg
        in
        add_u16 b (String.length msg);
        Buffer.add_string b msg)

let response_to_json r =
  let base ok =
    [ ("id", Jsonu.Int (response_id r));
      ("op", Jsonu.Str (op_string (response_op r)));
      ("ok", Jsonu.Bool ok) ]
  in
  match r with
  | Acquired { name; lease_ms; _ } ->
    Jsonu.Obj
      (base true @ [ ("name", Jsonu.Int name); ("lease_ms", Jsonu.Int lease_ms) ])
  | Renewed { count; _ } -> Jsonu.Obj (base true @ [ ("count", Jsonu.Int count) ])
  | Released _ | Shutting_down _ -> Jsonu.Obj (base true)
  | Stats_reply { stats; _ } -> Jsonu.Obj (base true @ [ ("stats", stats) ])
  | Busy { retry_after_ms; _ } ->
    (* ok=false so naive JSON clients treat it as a failure; the
       [retry_after_ms] field is what distinguishes it from [Error]. *)
    Jsonu.Obj
      (base false
      @ [ ("code", Jsonu.Int err_busy);
          ("retry_after_ms", Jsonu.Int retry_after_ms) ])
  | Error { code; msg; _ } ->
    Jsonu.Obj (base false @ [ ("code", Jsonu.Int code); ("error", Jsonu.Str msg) ])

let encode_response mode out r =
  match mode with
  | Binary -> encode_response_binary out r
  | Json ->
    Buffer.add_string out (Jsonu.to_string (response_to_json r));
    Buffer.add_char out '\n'

(* ------------------------------------------------------------------ *)
(* Incremental decoding *)

type 'a step = Frame of 'a * int | Need_more | Corrupt of string

(* Binary framing shared by both directions: returns the payload window
   once it is fully buffered.  [pos]/[len] delimit the unread region. *)
let binary_frame buf ~pos ~len k =
  if len < 4 then Need_more
  else begin
    let plen = get_u32 buf pos in
    if plen > max_frame then
      Corrupt (Printf.sprintf "frame length %d exceeds max %d" plen max_frame)
    else if plen = 0 then Corrupt "empty frame"
    else if len < 4 + plen then Need_more
    else
      match k (pos + 4) plen with
      | Ok v -> Frame (v, 4 + plen)
      | Error msg -> Corrupt msg
  end

let decode_request_binary buf ~pos ~len =
  binary_frame buf ~pos ~len (fun off plen ->
      if plen < 5 then Error "request payload shorter than header"
      else
        let id = get_u32 buf (off + 1) in
        match (op_of_code (get_u8 buf off), plen) with
        (* 13-byte form predates deadline propagation; absent = no
           deadline, so pre-overload clients keep working unchanged. *)
        | Some Op_acquire, 13 ->
          Ok
            (Acquire
               {
                 id;
                 client = get_u32 buf (off + 5);
                 token = get_u32 buf (off + 9);
                 deadline_ms = 0;
               })
        | Some Op_acquire, 17 ->
          Ok
            (Acquire
               {
                 id;
                 client = get_u32 buf (off + 5);
                 token = get_u32 buf (off + 9);
                 deadline_ms = get_u32 buf (off + 13);
               })
        | Some Op_release, 13 ->
          Ok
            (Release
               { id; client = get_u32 buf (off + 5); name = get_u32 buf (off + 9) })
        | Some Op_renew, 9 -> Ok (Renew { id; client = get_u32 buf (off + 5) })
        | Some Op_stats, 5 -> Ok (Stats { id })
        | Some Op_shutdown, 5 -> Ok (Shutdown { id })
        | Some op, _ ->
          Error (Printf.sprintf "bad %s payload length %d" (op_string op) plen)
        | None, _ -> Error (Printf.sprintf "unknown opcode %d" (get_u8 buf off)))

let decode_response_binary buf ~pos ~len =
  binary_frame buf ~pos ~len (fun off plen ->
      if plen < 6 then Error "response payload shorter than header"
      else
        let status = get_u8 buf off in
        let id = get_u32 buf (off + 2) in
        match (op_of_code (get_u8 buf (off + 1)), status) with
        | None, _ -> Error (Printf.sprintf "unknown opcode %d" (get_u8 buf (off + 1)))
        | Some op, 1 ->
          if plen < 9 then Error "error payload shorter than header"
          else
            let code = get_u8 buf (off + 6) in
            let mlen = get_u16 buf (off + 7) in
            if plen <> 9 + mlen then Error "error payload length mismatch"
            else
              Ok
                (Error
                   { id; op; code; msg = Bytes.sub_string buf (off + 9) mlen })
        | Some op, 2 ->
          if plen <> 10 then Error "busy payload length mismatch"
          else Ok (Busy { id; op; retry_after_ms = get_u32 buf (off + 6) })
        | Some Op_acquire, 0 when plen = 14 ->
          Ok
            (Acquired
               { id; name = get_u32 buf (off + 6); lease_ms = get_u32 buf (off + 10) })
        | Some Op_release, 0 when plen = 6 -> Ok (Released { id })
        | Some Op_renew, 0 when plen = 10 ->
          Ok (Renewed { id; count = get_u32 buf (off + 6) })
        | Some Op_shutdown, 0 when plen = 6 -> Ok (Shutting_down { id })
        | Some Op_stats, 0 when plen >= 8 ->
          let slen = get_u16 buf (off + 6) in
          if plen <> 8 + slen then Error "stats payload length mismatch"
          else begin
            match Jsonu.parse (Bytes.sub_string buf (off + 8) slen) with
            | Some stats -> Ok (Stats_reply { id; stats })
            | None -> Error "stats payload is not valid JSON"
          end
        | Some op, 0 ->
          Error (Printf.sprintf "bad %s payload length %d" (op_string op) plen)
        | Some _, s -> Error (Printf.sprintf "unknown status %d" s))

(* One JSON line: find the newline, bound the line length, parse. *)
let json_line buf ~pos ~len k =
  let limit = min len (max_frame + 1) in
  let nl = ref (-1) in
  (try
     for i = 0 to limit - 1 do
       if Bytes.get buf (pos + i) = '\n' then begin
         nl := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !nl < 0 then
    if len > max_frame then
      Corrupt (Printf.sprintf "JSON line exceeds max %d bytes" max_frame)
    else Need_more
  else
    let line = Bytes.sub_string buf pos !nl in
    match Jsonu.parse line with
    | None -> Corrupt "line is not valid JSON"
    | Some j -> (
      match k j with
      | Ok v -> Frame (v, !nl + 1)
      | Error msg -> Corrupt msg
      | exception Jsonu.Malformed -> Corrupt "missing or mistyped field")

let decode_request_json buf ~pos ~len =
  json_line buf ~pos ~len (fun j ->
      let f = Jsonu.obj j in
      let id = Jsonu.int_ f "id" in
      match op_of_string (Jsonu.str f "op") with
      | Some Op_acquire ->
        (* token omitted = 0 = no idempotency: hand-rolled JSON clients
           (socat) keep working unchanged *)
        Ok
          (Acquire
             {
               id;
               client = Jsonu.int_ f "client";
               token = Jsonu.int_opt f "token" ~default:0;
               deadline_ms = Jsonu.int_opt f "deadline_ms" ~default:0;
             })
      | Some Op_release ->
        Ok (Release { id; client = Jsonu.int_ f "client"; name = Jsonu.int_ f "name" })
      | Some Op_renew -> Ok (Renew { id; client = Jsonu.int_ f "client" })
      | Some Op_stats -> Ok (Stats { id })
      | Some Op_shutdown -> Ok (Shutdown { id })
      | None -> Error (Printf.sprintf "unknown op %S" (Jsonu.str f "op")))

let decode_response_json buf ~pos ~len =
  json_line buf ~pos ~len (fun j ->
      let f = Jsonu.obj j in
      let id = Jsonu.int_ f "id" in
      match (op_of_string (Jsonu.str f "op"), Jsonu.bool_ f "ok") with
      | None, _ -> Error (Printf.sprintf "unknown op %S" (Jsonu.str f "op"))
      | Some op, false -> (
        match List.assoc_opt "retry_after_ms" f with
        | Some _ ->
          Ok (Busy { id; op; retry_after_ms = Jsonu.int_ f "retry_after_ms" })
        | None ->
          Ok
            (Error
               { id; op; code = Jsonu.int_ f "code"; msg = Jsonu.str f "error" }))
      | Some Op_acquire, true ->
        Ok
          (Acquired
             {
               id;
               name = Jsonu.int_ f "name";
               lease_ms = Jsonu.int_opt f "lease_ms" ~default:0;
             })
      | Some Op_release, true -> Ok (Released { id })
      | Some Op_renew, true -> Ok (Renewed { id; count = Jsonu.int_ f "count" })
      | Some Op_shutdown, true -> Ok (Shutting_down { id })
      | Some Op_stats, true -> (
        match List.assoc_opt "stats" f with
        | Some stats -> Ok (Stats_reply { id; stats })
        | None -> Error "stats reply without stats field"))

let decode_request mode buf ~pos ~len =
  match mode with
  | Binary -> decode_request_binary buf ~pos ~len
  | Json -> decode_request_json buf ~pos ~len

let decode_response mode buf ~pos ~len =
  match mode with
  | Binary -> decode_response_binary buf ~pos ~len
  | Json -> decode_response_json buf ~pos ~len
