type t = {
  fd : Unix.file_descr;
  mode : Wire.mode;
  mutable next : int;
  out : Buffer.t;  (* encoded, unsent request bytes *)
  mutable buf : Bytes.t;  (* response bytes awaiting a full frame *)
  mutable start : int;
  mutable fill : int;
  scratch : Bytes.t;
}

type failure =
  | Transport of string
  | Remote of { op : Wire.op; code : int; msg : string }
  | Busy of { op : Wire.op; retry_after_ms : int }

let failure_message = function
  | Transport msg -> msg
  | Remote { op; code; msg } ->
    Printf.sprintf "%s failed: %s (code %d)" (Wire.op_string op) msg code
  | Busy { op; retry_after_ms } ->
    Printf.sprintf "%s refused: server busy, retry after %dms"
      (Wire.op_string op) retry_after_ms

let connect ?(mode = Wire.Binary) ~path () =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_UNIX path) with
  | () ->
    (* Non-blocking, or the daemon's read-pausing backpressure deadlocks
       a busy client: the daemon stops reading until the client drains
       responses, the socket send buffer fills, and a blocking [post]
       would then wedge the client so it never reads again — each side
       waiting out the other until the stall watchdog cuts the line.
       Every send/recv path here already selects before it writes or
       reads, so EAGAIN is handled, never surfaced. *)
    Unix.set_nonblock fd;
    Ok
      {
        fd;
        mode;
        next = 0;
        out = Buffer.create 256;
        buf = Bytes.create 4096;
        start = 0;
        fill = 0;
        scratch = Bytes.create 65536;
      }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let fd t = t.fd

let fresh_id t =
  let id = t.next in
  t.next <- (id + 1) land 0xffffffff;
  id

(* ------------------------------------------------------------------ *)
(* Sending *)

let try_flush t =
  let s = Buffer.contents t.out in
  let len = String.length s in
  if len > 0 then begin
    (* repro-lint: allow journal-write — client socket, not a journal fd *)
    match Unix.write_substring t.fd s 0 len with
    | n ->
      Buffer.clear t.out;
      if n < len then Buffer.add_substring t.out s n (len - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  end

let post t req =
  Wire.encode_request t.mode t.out req;
  (* Opportunistic only: a hard send error (EPIPE after a daemon crash,
     ECONNRESET) leaves the bytes buffered and is surfaced as a typed
     failure by the next [flush]/[recv], which meets the same broken
     socket — never as a raw exception past the retry machinery. *)
  try try_flush t with Unix.Unix_error _ -> ()

let pending_out t = Buffer.length t.out > 0

(* One non-blocking flush attempt.  [post] already flushes
   opportunistically, but a send queue that met EAGAIN stays populated
   until the {e next} post — a loop that stops posting (drain) must be
   able to keep pushing residue out without blocking its read side. *)
let flush_nb t = try try_flush t with Unix.Unix_error _ -> ()

let flush t =
  try
    while pending_out t do
      ignore (Unix.select [] [ t.fd ] [] (-1.));
      try_flush t
    done;
    Ok ()
  with Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "flush: %s" (Unix.error_message e))

(* ------------------------------------------------------------------ *)
(* Receiving *)

let reserve t extra =
  let live = t.fill - t.start in
  if t.fill + extra > Bytes.length t.buf then begin
    let needed = live + extra in
    let target =
      let n = ref (Bytes.length t.buf) in
      while !n < needed do
        n := !n * 2
      done;
      !n
    in
    let dst =
      if target = Bytes.length t.buf then t.buf else Bytes.create target
    in
    Bytes.blit t.buf t.start dst 0 live;
    t.buf <- dst;
    t.start <- 0;
    t.fill <- live
  end

let decode_one t =
  match Wire.decode_response t.mode t.buf ~pos:t.start ~len:(t.fill - t.start) with
  | Wire.Frame (r, consumed) ->
    t.start <- t.start + consumed;
    if t.start = t.fill then begin
      t.start <- 0;
      t.fill <- 0
    end;
    Ok (Some r)
  | Wire.Need_more -> Ok None
  | Wire.Corrupt msg -> Error (Printf.sprintf "corrupt response stream: %s" msg)

(* [timeout = 0.] still performs one poll-and-read round, so callers
   can drain a readable fd with repeated zero-timeout calls.  The
   deadline is monotonic: a wall-clock step must neither fire every
   in-flight timeout at once nor park one forever. *)
let recv t ~timeout =
  let deadline = Mono.now () +. timeout in
  let rec go ~first =
    match decode_one t with
    | Ok (Some _) as r -> r
    | Error _ as e -> e
    | Ok None -> (
      let left = deadline -. Mono.now () in
      let left = if first then Float.max left 0. else left in
      if left < 0. then Ok None
      else
        match Unix.select [ t.fd ] [] [] left with
        | exception Unix.Unix_error (EINTR, _, _) -> go ~first
        | [], _, _ -> Ok None
        | _ -> (
          match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            go ~first:false
          | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "read: %s" (Unix.error_message e))
          | 0 -> Error "connection closed by server"
          | n ->
            reserve t n;
            Bytes.blit t.scratch 0 t.buf t.fill n;
            t.fill <- t.fill + n;
            go ~first:false))
  in
  go ~first:true

(* ------------------------------------------------------------------ *)
(* Synchronous calls: one request in flight, its response is the next
   frame (stats/shutdown answer inline; acquire/release per shard stay
   ordered for a single id).  Every call takes a per-request deadline;
   an unanswered deadline is a [Transport] failure, because from the
   caller's seat a silent server and a dead wire are the same event. *)

let roundtrip ?(timeout = 30.) t req =
  post t req;
  match flush t with
  | Error e -> Error (Transport e)
  | Ok () -> (
    let rec await () =
      match recv t ~timeout with
      | Error e -> Error (Transport e)
      | Ok None -> Error (Transport "timed out waiting for response")
      | Ok (Some r) ->
        if Wire.response_id r = Wire.request_id req then Ok r else await ()
    in
    await ())

let remote ~op ~code ~msg = Error (Remote { op; code; msg })
let busy ~op ~retry_after_ms = Error (Busy { op; retry_after_ms })

let acquire ?timeout ?(token = 0) ?(deadline_ms = 0) t ~client =
  match
    roundtrip ?timeout t
      (Wire.Acquire { id = fresh_id t; client; token; deadline_ms })
  with
  | Error _ as e -> e
  | Ok (Wire.Acquired { name; _ }) -> Ok name
  | Ok (Wire.Busy { op; retry_after_ms; _ }) -> busy ~op ~retry_after_ms
  | Ok (Wire.Error { op; code; msg; _ }) -> remote ~op ~code ~msg
  | Ok _ -> Error (Transport "unexpected response to acquire")

let release ?timeout t ~client ~name =
  match roundtrip ?timeout t (Wire.Release { id = fresh_id t; client; name }) with
  | Error _ as e -> e
  | Ok (Wire.Released _) -> Ok ()
  | Ok (Wire.Busy { op; retry_after_ms; _ }) -> busy ~op ~retry_after_ms
  | Ok (Wire.Error { op; code; msg; _ }) -> remote ~op ~code ~msg
  | Ok _ -> Error (Transport "unexpected response to release")

let renew ?timeout t ~client =
  match roundtrip ?timeout t (Wire.Renew { id = fresh_id t; client }) with
  | Error _ as e -> e
  | Ok (Wire.Renewed { count; _ }) -> Ok count
  | Ok (Wire.Busy { op; retry_after_ms; _ }) -> busy ~op ~retry_after_ms
  | Ok (Wire.Error { op; code; msg; _ }) -> remote ~op ~code ~msg
  | Ok _ -> Error (Transport "unexpected response to renew")

let stats ?timeout t =
  match roundtrip ?timeout t (Wire.Stats { id = fresh_id t }) with
  | Error _ as e -> e
  | Ok (Wire.Stats_reply { stats; _ }) -> Ok stats
  | Ok (Wire.Busy { op; retry_after_ms; _ }) -> busy ~op ~retry_after_ms
  | Ok (Wire.Error { op; code; msg; _ }) -> remote ~op ~code ~msg
  | Ok _ -> Error (Transport "unexpected response to stats")

let shutdown ?timeout t =
  match roundtrip ?timeout t (Wire.Shutdown { id = fresh_id t }) with
  | Error _ as e -> e
  | Ok (Wire.Shutting_down _) -> Ok ()
  | Ok (Wire.Busy { op; retry_after_ms; _ }) -> busy ~op ~retry_after_ms
  | Ok (Wire.Error { op; code; msg; _ }) -> remote ~op ~code ~msg
  | Ok _ -> Error (Transport "unexpected response to shutdown")

(* ------------------------------------------------------------------ *)
(* Durable connections: reconnect + retry under transport failure. *)

module Durable = struct
  type conn = {
    path : string;
    mode : Wire.mode;
    attempts : int;
    base : float;
    cap : float;
    timeout : float;
    rng : Prng.Splitmix.t;
    mutable link : t option;
    mutable reconnects : int;
  }

  let create ?(mode = Wire.Binary) ?(attempts = 8) ?(backoff_base = 0.02)
      ?(backoff_cap = 1.0) ?(timeout = 30.) ~path ~seed () =
    {
      path;
      mode;
      attempts = max 1 attempts;
      base = backoff_base;
      cap = backoff_cap;
      timeout;
      rng = Prng.Splitmix.of_int seed;
      link = None;
      reconnects = 0;
    }

  let reconnects c = c.reconnects

  let drop c =
    match c.link with
    | Some t ->
      close t;
      c.link <- None
    | None -> ()

  let close = drop

  (* Capped exponential backoff with multiplicative jitter in
     [0.5, 1.0]: after a daemon restart every client retries, and the
     jitter keeps the herd from arriving as one burst. *)
  let backoff c k =
    let d = Float.min c.cap (c.base *. (2. ** float_of_int k)) in
    let j = 0.5 +. (float_of_int (Prng.Splitmix.int c.rng 1000) /. 2000.) in
    Unix.sleepf (d *. j)

  (* Server-directed backoff for [Busy]: the [retry_after_ms] hint is
     the floor, the capped exponential is the growth schedule across
     repeated refusals, and the same jitter keeps the refused herd from
     returning in phase. *)
  let backoff_busy c k ~retry_after_ms =
    let d =
      Float.min c.cap
        (Float.max
           (float_of_int retry_after_ms /. 1000.)
           (c.base *. (2. ** float_of_int k)))
    in
    let j = 0.5 +. (float_of_int (Prng.Splitmix.int c.rng 1000) /. 2000.) in
    Unix.sleepf (d *. j)

  let link c =
    match c.link with
    | Some t -> Ok t
    | None -> (
      match connect ~mode:c.mode ~path:c.path () with
      | Ok t ->
        c.link <- Some t;
        Ok t
      | Error e -> Error (Transport e))

  (* Run [f] against a live link, reconnecting and retrying on
     [Transport] failures.  [Remote] failures are the server's verdict
     and never retried.  [f] sees the attempt index so idempotence
     policy (e.g. release's not-held-after-retry) can depend on whether
     the first try may already have landed. *)
  let with_retry c f =
    let rec go k =
      let again e =
        if k + 1 >= c.attempts then Error e
        else begin
          drop c;
          c.reconnects <- c.reconnects + 1;
          backoff c k;
          go (k + 1)
        end
      in
      match link c with
      | Error e -> again e
      | Ok t -> (
        match f t ~attempt:k with
        | Ok _ as r -> r
        | Error (Remote _) as r -> r
        | Error (Busy { retry_after_ms; _ } as e) ->
          (* The wire is healthy — the server refused admission.  Honor
             the retry-after contract on the same link: no drop, no
             reconnect counted. *)
          if k + 1 >= c.attempts then Error e
          else begin
            backoff_busy c k ~retry_after_ms;
            go (k + 1)
          end
        | Error (Transport _ as e) -> again e)
    in
    go 0

  let acquire ?deadline_ms c ~client =
    (* One token per logical acquire, reused verbatim across retries:
       if the grant landed but its reply died with the connection, the
       server's lease table still binds the token and re-delivers the
       same name instead of burning a second slot. *)
    let token = 1 + Prng.Splitmix.int c.rng 0xfffffffe in
    (* The whole logical acquire — every retry, every backoff sleep —
       spends one budget, and each attempt stamps what is left of it on
       the wire so the server can shed work we have already abandoned. *)
    let budget_s =
      match deadline_ms with
      | Some ms when ms > 0 -> float_of_int ms /. 1000.
      | _ -> c.timeout
    in
    let overall = Mono.now () +. budget_s in
    let exception Budget_exhausted in
    match
      with_retry c (fun t ~attempt:_ ->
          let left = overall -. Mono.now () in
          if left <= 0. then raise Budget_exhausted
          else
            acquire
              ~timeout:(Float.min c.timeout left)
              ~token
              ~deadline_ms:(max 1 (int_of_float (left *. 1000.)))
              t ~client)
    with
    | r -> r
    | exception Budget_exhausted ->
      Error (Transport "acquire budget exhausted before completion")

  let release c ~client ~name =
    with_retry c (fun t ~attempt ->
        match release ~timeout:c.timeout t ~client ~name with
        | Error (Remote { code; _ })
          when code = Wire.err_not_held && attempt > 0 ->
          (* Ambiguous retry: the first attempt may have released the
             name before its reply was lost.  Not-held after a
             reconnect is success, not failure. *)
          Ok ()
        | r -> r)

  let renew c ~client =
    with_retry c (fun t ~attempt:_ -> renew ~timeout:c.timeout t ~client)

  let stats c = with_retry c (fun t ~attempt:_ -> stats ~timeout:c.timeout t)
end
