type t = {
  fd : Unix.file_descr;
  mode : Wire.mode;
  mutable next : int;
  out : Buffer.t;  (* encoded, unsent request bytes *)
  mutable buf : Bytes.t;  (* response bytes awaiting a full frame *)
  mutable start : int;
  mutable fill : int;
  scratch : Bytes.t;
}

let connect ?(mode = Wire.Binary) ~path () =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_UNIX path) with
  | () ->
    Ok
      {
        fd;
        mode;
        next = 0;
        out = Buffer.create 256;
        buf = Bytes.create 4096;
        start = 0;
        fill = 0;
        scratch = Bytes.create 65536;
      }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let fd t = t.fd

let fresh_id t =
  let id = t.next in
  t.next <- (id + 1) land 0xffffffff;
  id

(* ------------------------------------------------------------------ *)
(* Sending *)

let try_flush t =
  let s = Buffer.contents t.out in
  let len = String.length s in
  if len > 0 then begin
    match Unix.write_substring t.fd s 0 len with
    | n ->
      Buffer.clear t.out;
      if n < len then Buffer.add_substring t.out s n (len - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  end

let post t req =
  Wire.encode_request t.mode t.out req;
  try_flush t

let pending_out t = Buffer.length t.out > 0

let flush t =
  try
    while pending_out t do
      ignore (Unix.select [] [ t.fd ] [] (-1.));
      try_flush t
    done;
    Ok ()
  with Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "flush: %s" (Unix.error_message e))

(* ------------------------------------------------------------------ *)
(* Receiving *)

let reserve t extra =
  let live = t.fill - t.start in
  if t.fill + extra > Bytes.length t.buf then begin
    let needed = live + extra in
    let target =
      let n = ref (Bytes.length t.buf) in
      while !n < needed do
        n := !n * 2
      done;
      !n
    in
    let dst =
      if target = Bytes.length t.buf then t.buf else Bytes.create target
    in
    Bytes.blit t.buf t.start dst 0 live;
    t.buf <- dst;
    t.start <- 0;
    t.fill <- live
  end

let decode_one t =
  match Wire.decode_response t.mode t.buf ~pos:t.start ~len:(t.fill - t.start) with
  | Wire.Frame (r, consumed) ->
    t.start <- t.start + consumed;
    if t.start = t.fill then begin
      t.start <- 0;
      t.fill <- 0
    end;
    Ok (Some r)
  | Wire.Need_more -> Ok None
  | Wire.Corrupt msg -> Error (Printf.sprintf "corrupt response stream: %s" msg)

(* [timeout = 0.] still performs one poll-and-read round, so callers
   can drain a readable fd with repeated zero-timeout calls. *)
let recv t ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go ~first =
    match decode_one t with
    | Ok (Some _) as r -> r
    | Error _ as e -> e
    | Ok None -> (
      let left = deadline -. Unix.gettimeofday () in
      let left = if first then Float.max left 0. else left in
      if left < 0. then Ok None
      else
        match Unix.select [ t.fd ] [] [] left with
        | exception Unix.Unix_error (EINTR, _, _) -> go ~first
        | [], _, _ -> Ok None
        | _ -> (
          match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            go ~first:false
          | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "read: %s" (Unix.error_message e))
          | 0 -> Error "connection closed by server"
          | n ->
            reserve t n;
            Bytes.blit t.scratch 0 t.buf t.fill n;
            t.fill <- t.fill + n;
            go ~first:false))
  in
  go ~first:true

(* ------------------------------------------------------------------ *)
(* Synchronous calls: one request in flight, its response is the next
   frame (stats/shutdown answer inline; acquire/release per shard stay
   ordered for a single id). *)

let roundtrip t req =
  post t req;
  match flush t with
  | Error _ as e -> e
  | Ok () -> (
    let rec await () =
      match recv t ~timeout:30. with
      | Error _ as e -> e
      | Ok None -> Error "timed out waiting for response"
      | Ok (Some r) ->
        if Wire.response_id r = Wire.request_id req then Ok r else await ()
    in
    await ())

let err_of ~op code msg =
  Printf.sprintf "%s failed: %s (code %d)" (Wire.op_string op) msg code

let acquire t ~client =
  match roundtrip t (Wire.Acquire { id = fresh_id t; client }) with
  | Error _ as e -> e
  | Ok (Wire.Acquired { name; _ }) -> Ok name
  | Ok (Wire.Error { op; code; msg; _ }) -> Error (err_of ~op code msg)
  | Ok _ -> Error "unexpected response to acquire"

let release t ~client ~name =
  match roundtrip t (Wire.Release { id = fresh_id t; client; name }) with
  | Error _ as e -> e
  | Ok (Wire.Released _) -> Ok ()
  | Ok (Wire.Error { op; code; msg; _ }) -> Error (err_of ~op code msg)
  | Ok _ -> Error "unexpected response to release"

let stats t =
  match roundtrip t (Wire.Stats { id = fresh_id t }) with
  | Error _ as e -> e
  | Ok (Wire.Stats_reply { stats; _ }) -> Ok stats
  | Ok (Wire.Error { op; code; msg; _ }) -> Error (err_of ~op code msg)
  | Ok _ -> Error "unexpected response to stats"

let shutdown t =
  match roundtrip t (Wire.Shutdown { id = fresh_id t }) with
  | Error _ as e -> e
  | Ok (Wire.Shutting_down _) -> Ok ()
  | Ok (Wire.Error { op; code; msg; _ }) -> Error (err_of ~op code msg)
  | Ok _ -> Error "unexpected response to shutdown"
