type hold = Const of float | Exponential of float

type config = {
  path : string;
  mode : Wire.mode;
  conns : int;
  clients : int;
  rate : float;
  duration_s : float;
  hold : hold;
  seed : int;
  reconnect_attempts : int;
  reconnect_backoff : float;
  deadline_ms : int;
  drain_timeout_s : float;
  log : string -> unit;
}

let default_config ~path =
  {
    path;
    mode = Wire.Binary;
    conns = 4;
    clients = 64;
    rate = 1000.;
    duration_s = 5.;
    hold = Exponential 0.001;
    seed = 1;
    reconnect_attempts = 8;
    reconnect_backoff = 0.05;
    deadline_ms = 0;
    drain_timeout_s = 10.;
    log = ignore;
  }

type result = {
  wall_s : float;
  offered : int;
  acquired : int;
  shed : int;
  expired : int;
  acquire_failures : int;
  released : int;
  errors : int;
  timeouts : int;
  violations : int;
  leaked : int;
  reconnects : int;
  dropped : int;
  abandoned : int;
  throughput : float;
  goodput : float;
  drain_complete : bool;
  latency : Stats.Hdr.t;
}

let ok r =
  r.violations = 0 && r.leaked = 0 && r.errors = 0 && r.timeouts = 0

(* Scheduled releases, ordered by due time. *)
module Heap = struct
  type entry = { at : float; name : int; client : int; conn : int; gen : int }
  type t = { mutable a : entry array; mutable len : int }

  let dummy = { at = 0.; name = 0; client = 0; conn = 0; gen = 0 }
  let create () = { a = Array.make 64 dummy; len = 0 }
  let is_empty h = h.len = 0
  let peek h = h.a.(0)

  let push h e =
    if h.len = Array.length h.a then begin
      let b = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 b 0 h.len;
      h.a <- b
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.a.(!i) <- e;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if h.a.(!i).at < h.a.(p).at then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p
      end
      else continue := false
    done

  let pop h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    h.a.(h.len) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.len && h.a.(l).at < h.a.(!s).at then s := l;
      if r < h.len && h.a.(r).at < h.a.(!s).at then s := r;
      if !s <> !i then begin
        let tmp = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !s
      end
      else continue := false
    done;
    top
end

type pending =
  | Await_acquire of { sent : float; client : int }
  | Await_release of { name : int }

type st = {
  cfg : config;
  conns : Client.t option array;  (* [None] = slot down, reconnecting *)
  gen : int array;  (* bumped at each slot death: stale heap entries miss *)
  fails : int array;  (* consecutive failed reconnect attempts *)
  retry_at : float array;
  backlog : float Queue.t;  (* scheduled arrivals owed while all slots down *)
  rng : Prng.Splitmix.t;
  pending : (int * int, pending) Hashtbl.t;  (* (conn, id) -> op *)
  held : (int, int * int) Hashtbl.t;  (* name -> (conn, gen) that holds it *)
  releasing : (int, int) Hashtbl.t;  (* name -> releases in flight *)
  heap : Heap.t;
  latency : Stats.Hdr.t;
  mutable rr : int;  (* round-robin cursor: conns and client ids *)
  mutable win_end : float;  (* end of the offered window (monotonic) *)
  mutable offered : int;
  mutable acquired : int;
  mutable acquired_win : int;  (* grants received inside the window *)
  mutable shed : int;  (* [Wire.Busy] admission refusals *)
  mutable expired : int;  (* deadline passed: locally or [err_expired] *)
  mutable acquire_failures : int;
  mutable released : int;
  mutable errors : int;
  mutable violations : int;
  mutable reconnects : int;
  mutable dropped : int;
  mutable abandoned : int;
  mutable failed : string option;
}

(* Monotonic throughout: arrival schedules, latency, and stamped
   deadlines must not move when the wall clock steps. *)
let now () = Mono.now ()
let fail st e = if st.failed = None then st.failed <- Some e

let hold_sample st =
  match st.cfg.hold with
  | Const s -> s
  | Exponential mean ->
    if mean <= 0. then 0.
    else Prng.Dist.exponential_sample st.rng ~rate:(1. /. mean)

let retry_delay st slot =
  let d =
    Float.min 1.0
      (st.cfg.reconnect_backoff *. (2. ** float_of_int st.fails.(slot)))
  in
  let jitter = 0.5 +. (float_of_int (Prng.Splitmix.int st.rng 1000) /. 2000.) in
  d *. jitter

(* A slot's connection died (reset, close, corrupt stream).  Survive
   it: its in-flight operations are gone (counted [dropped], not
   errors — their fate belongs to the daemon's journal, not to us),
   its held names are forgotten (counted [abandoned]; the server side
   reclaims them by disconnect-drain or lease expiry), and the slot
   goes into backed-off reconnect. *)
let kill_conn st slot reason =
  match st.conns.(slot) with
  | None -> ()
  | Some c ->
    Client.close c;
    st.conns.(slot) <- None;
    st.gen.(slot) <- st.gen.(slot) + 1;
    st.reconnects <- st.reconnects + 1;
    st.fails.(slot) <- 0;
    st.retry_at.(slot) <- now () +. retry_delay st slot;
    let stale =
      Hashtbl.to_seq st.pending
      |> Seq.filter (fun ((s, _), _) -> s = slot)
      |> List.of_seq
    in
    List.iter
      (fun (key, op) ->
        Hashtbl.remove st.pending key;
        st.dropped <- st.dropped + 1;
        match op with
        | Await_release { name } -> (
          match Hashtbl.find_opt st.releasing name with
          | Some n when n > 1 -> Hashtbl.replace st.releasing name (n - 1)
          | Some _ -> Hashtbl.remove st.releasing name
          | None -> ())
        | Await_acquire _ -> ())
      stale;
    let mine =
      Hashtbl.to_seq st.held
      |> Seq.filter_map (fun (name, (s, _)) ->
             if s = slot then Some name else None)
      |> List.of_seq
    in
    List.iter (fun name -> Hashtbl.remove st.held name) mine;
    st.abandoned <- st.abandoned + List.length mine;
    st.cfg.log
      (Printf.sprintf
         "conn %d lost (%s): %d op(s) dropped, %d held name(s) abandoned"
         slot reason (List.length stale) (List.length mine))

let try_reconnects st =
  let t = now () in
  Array.iteri
    (fun slot c ->
      match c with
      | Some _ -> ()
      | None ->
        if t >= st.retry_at.(slot) then (
          match Client.connect ~mode:st.cfg.mode ~path:st.cfg.path () with
          | Ok link ->
            st.conns.(slot) <- Some link;
            st.fails.(slot) <- 0;
            st.cfg.log (Printf.sprintf "conn %d reconnected" slot)
          | Error e ->
            st.fails.(slot) <- st.fails.(slot) + 1;
            if st.fails.(slot) >= st.cfg.reconnect_attempts then
              fail st
                (Printf.sprintf "conn %d: gave up after %d reconnect attempts (%s)"
                   slot st.fails.(slot) e)
            else st.retry_at.(slot) <- t +. retry_delay st slot))
    st.conns

(* [at] is the scheduled arrival, not the post instant: latency is
   measured from when the operation {e should} have started, so
   catch-up bursts — including the burst after an outage — cannot hide
   queueing delay (no coordinated omission).  False when no slot is
   up; the arrival goes to the backlog keeping its schedule. *)
let try_post_acquire st ~at =
  let n = Array.length st.conns in
  let rec pick k =
    if k = n then None
    else
      let slot = (st.rr + k) mod n in
      match st.conns.(slot) with Some c -> Some (slot, c) | None -> pick (k + 1)
  in
  match pick 0 with
  | None -> false
  | Some (slot, c) ->
    (* The budget runs from the scheduled arrival: a request that sat
       in the backlog through an outage has already spent part (or
       all) of it.  Spent budgets are shed here — posting work the
       client has given up on would only deepen the overload. *)
    let deadline_ms =
      if st.cfg.deadline_ms <= 0 then Some 0
      else
        let left =
          st.cfg.deadline_ms - int_of_float ((now () -. at) *. 1000.)
        in
        if left <= 0 then None else Some (max 1 left)
    in
    (match deadline_ms with
    | None ->
      st.offered <- st.offered + 1;
      st.expired <- st.expired + 1
    | Some deadline_ms ->
      let client = st.rr mod st.cfg.clients in
      st.rr <- st.rr + 1;
      let id = Client.fresh_id c in
      Hashtbl.replace st.pending (slot, id)
        (Await_acquire { sent = at; client });
      Client.post c (Wire.Acquire { id; client; token = 0; deadline_ms });
      st.offered <- st.offered + 1);
    true

let flush_backlog st =
  let continue = ref true in
  while !continue && not (Queue.is_empty st.backlog) do
    if try_post_acquire st ~at:(Queue.peek st.backlog) then
      ignore (Queue.pop st.backlog)
    else continue := false
  done

let post_release st (e : Heap.entry) =
  match Hashtbl.find_opt st.held e.name with
  | Some (slot, g) when slot = e.conn && g = e.gen -> (
    match st.conns.(slot) with
    | Some c when st.gen.(slot) = g ->
      Hashtbl.remove st.held e.name;
      let inflight =
        Option.value (Hashtbl.find_opt st.releasing e.name) ~default:0
      in
      Hashtbl.replace st.releasing e.name (inflight + 1);
      let id = Client.fresh_id c in
      Hashtbl.replace st.pending (slot, id) (Await_release { name = e.name });
      Client.post c (Wire.Release { id; client = e.client; name = e.name })
    | _ -> ())
  | _ -> ()  (* abandoned with its connection, or already released *)

let release_done st name =
  match Hashtbl.find_opt st.releasing name with
  | Some n when n > 1 -> Hashtbl.replace st.releasing name (n - 1)
  | Some _ -> Hashtbl.remove st.releasing name
  | None -> ()

let on_response st ~conn ~at r =
  let key = (conn, Wire.response_id r) in
  match Hashtbl.find_opt st.pending key with
  | None ->
    (* A reply we never asked for; count it, something is off. *)
    st.errors <- st.errors + 1
  | Some entry -> (
    Hashtbl.remove st.pending key;
    match (entry, r) with
    | Await_acquire { sent; client }, Wire.Acquired { name; _ } ->
      st.acquired <- st.acquired + 1;
      if at <= st.win_end then st.acquired_win <- st.acquired_win + 1;
      Stats.Hdr.record st.latency
        (int_of_float (Float.max 0. ((at -. sent) *. 1e9)));
      if Hashtbl.mem st.held name then
        (* Held and no release in flight: two live grants of one name. *)
        st.violations <- st.violations + 1
      else begin
        Hashtbl.replace st.held name (conn, st.gen.(conn));
        Heap.push st.heap
          {
            at = at +. hold_sample st;
            name;
            client;
            conn;
            gen = st.gen.(conn);
          }
      end
    | Await_acquire _, Wire.Busy _ ->
      (* Admission refused: shed load, not a failure of either side. *)
      st.shed <- st.shed + 1
    | Await_acquire _, Wire.Error { code; _ } ->
      if code = Wire.err_capacity then
        st.acquire_failures <- st.acquire_failures + 1
      else if code = Wire.err_expired then st.expired <- st.expired + 1
      else st.errors <- st.errors + 1
    | Await_release { name }, Wire.Released _ ->
      st.released <- st.released + 1;
      release_done st name
    | Await_release { name }, Wire.Error _ ->
      st.errors <- st.errors + 1;
      release_done st name
    | _ -> st.errors <- st.errors + 1)

(* Drain every decoded response on every live connection; a recv error
   kills that slot, never the run. *)
let pump st =
  let n = Array.length st.conns in
  let rec one i =
    if i < n then
      match st.conns.(i) with
      | None -> one (i + 1)
      | Some c -> (
        match Client.recv c ~timeout:0. with
        | Error e ->
          kill_conn st i e;
          one (i + 1)
        | Ok None -> one (i + 1)
        | Ok (Some r) ->
          on_response st ~conn:i ~at:(now ()) r;
          one i)
  in
  one 0

let run (cfg : config) =
  if cfg.conns < 1 then invalid_arg "Load_gen.run: conns < 1";
  if cfg.clients < 1 then invalid_arg "Load_gen.run: clients < 1";
  if cfg.rate <= 0. then invalid_arg "Load_gen.run: rate <= 0";
  let connected = ref [] in
  let connect_all () =
    let rec go i =
      if i = cfg.conns then Ok ()
      else
        match Client.connect ~mode:cfg.mode ~path:cfg.path () with
        | Error _ as e -> e
        | Ok c ->
          connected := c :: !connected;
          go (i + 1)
    in
    go 0
  in
  match connect_all () with
  | Error e ->
    List.iter Client.close !connected;
    Error e
  | Ok () ->
    let st =
      {
        cfg;
        conns = Array.of_list (List.rev_map Option.some !connected);
        gen = Array.make cfg.conns 0;
        fails = Array.make cfg.conns 0;
        retry_at = Array.make cfg.conns 0.;
        backlog = Queue.create ();
        rng = Prng.Splitmix.of_int cfg.seed;
        pending = Hashtbl.create 1024;
        held = Hashtbl.create 1024;
        releasing = Hashtbl.create 64;
        heap = Heap.create ();
        latency = Stats.Hdr.create ();
        rr = 0;
        win_end = infinity;
        offered = 0;
        acquired = 0;
        acquired_win = 0;
        shed = 0;
        expired = 0;
        acquire_failures = 0;
        released = 0;
        errors = 0;
        violations = 0;
        reconnects = 0;
        dropped = 0;
        abandoned = 0;
        failed = None;
      }
    in
    let live_fds () =
      Array.to_list st.conns
      |> List.filter_map (Option.map Client.fd)
    in
    let t_start = now () in
    let t_end = t_start +. cfg.duration_s in
    st.win_end <- t_end;
    let drain_deadline = t_end +. Float.max 0. cfg.drain_timeout_s in
    let drain_cut = ref false in
    let next_arrival =
      ref (t_start +. Prng.Dist.exponential_sample st.rng ~rate:cfg.rate)
    in
    let finished = ref false in
    while (not !finished) && st.failed = None do
      let t = now () in
      let draining = t >= t_end in
      try_reconnects st;
      (* Post every arrival that has come due (open loop: the schedule,
         not completions, decides); owed arrivals from an outage first,
         keeping their original schedule.  The schedule ends at [t_end]
         — owed arrivals from before it are still offered afterwards
         (their budgets ran from the scheduled time, so stale ones shed
         locally) — and the catch-up is chunked: at a rate beyond what
         this loop can post, [now ()] outruns the schedule forever and
         an unbounded catch-up would never break to pump responses. *)
      flush_backlog st;
      let burst = ref 0 in
      while !next_arrival <= now () && !next_arrival < t_end && !burst < 4096 do
        incr burst;
        if not (try_post_acquire st ~at:!next_arrival) then
          Queue.push !next_arrival st.backlog;
        next_arrival :=
          !next_arrival +. Prng.Dist.exponential_sample st.rng ~rate:cfg.rate
      done;
      (* Post due releases; when draining, everything still held is due. *)
      while
        (not (Heap.is_empty st.heap))
        && ((Heap.peek st.heap).at <= now () || draining)
      do
        post_release st (Heap.pop st.heap)
      done;
      (* Requests whose flush met EAGAIN are parked in the client send
         queues; push them every tick or a quiet drain never completes
         them. *)
      Array.iter
        (function Some c -> Client.flush_nb c | None -> ())
        st.conns;
      pump st;
      if draining then begin
        if
          !next_arrival >= t_end
          && Hashtbl.length st.pending = 0
          && Heap.is_empty st.heap
          && Queue.is_empty st.backlog
        then finished := true
        else if now () > drain_deadline then begin
          cfg.log
            (Printf.sprintf
               "drain cut short at %.1fs with %d operation(s) unanswered, \
                %d never posted"
               cfg.drain_timeout_s
               (Hashtbl.length st.pending)
               (Queue.length st.backlog));
          st.dropped <- st.dropped + Queue.length st.backlog;
          Queue.clear st.backlog;
          drain_cut := true;
          finished := true
        end
      end;
      if (not !finished) && st.failed = None then begin
        let t = now () in
        let until_arrival = if draining then 0.05 else !next_arrival -. t in
        let until_release =
          if Heap.is_empty st.heap then 0.05 else (Heap.peek st.heap).at -. t
        in
        let timeout =
          Float.max 0. (Float.min 0.05 (Float.min until_arrival until_release))
        in
        match Unix.select (live_fds ()) [] [] timeout with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | exception Unix.Unix_error (EBADF, _, _) -> ()
        | _ -> ()
      end
    done;
    let timeouts = Hashtbl.length st.pending in
    let res =
      match st.failed with
      | Some e -> Error e
      | None ->
        (* Everything we still held has been released; the server's
           taken count is leak plus whatever orphan leases a recovered
           daemon has not yet expired. *)
        let leaked =
          if timeouts > 0 then -1
          else
            let probe c =
              match Client.stats c with
              | Error e ->
                cfg.log
                  (Printf.sprintf "final stats failed: %s"
                     (Client.failure_message e));
                -1
              | Ok j -> (
                match Jsonu.int_ (Jsonu.obj j) "taken" with
                | v -> v
                | exception Jsonu.Malformed -> -1)
            in
            match
              Array.to_list st.conns |> List.filter_map Fun.id
            with
            | c :: _ -> probe c
            | [] -> (
              match Client.connect ~mode:cfg.mode ~path:cfg.path () with
              | Ok c ->
                let v = probe c in
                Client.close c;
                v
              | Error e ->
                cfg.log (Printf.sprintf "final stats failed: %s" e);
                -1)
        in
        let wall_s = now () -. t_start in
        Ok
          {
            wall_s;
            offered = st.offered;
            acquired = st.acquired;
            shed = st.shed;
            expired = st.expired;
            acquire_failures = st.acquire_failures;
            released = st.released;
            errors = st.errors;
            timeouts;
            violations = st.violations;
            leaked;
            reconnects = st.reconnects;
            dropped = st.dropped;
            abandoned = st.abandoned;
            throughput =
              float_of_int (st.acquired + st.released)
              /. Float.max 1e-9 wall_s;
            (* Steady-state service rate: grants received inside the
               offered window, over the window.  Drain-served grants
               are excluded from the numerator — the drain runs with no
               arrival load competing, so counting it would let short
               runs overstate capacity — and wall (which includes the
               drain) would understate it as the denominator. *)
            goodput =
              float_of_int st.acquired_win /. Float.max 1e-9 cfg.duration_s;
            drain_complete = not !drain_cut;
            latency = st.latency;
          }
    in
    Array.iter (function Some c -> Client.close c | None -> ()) st.conns;
    res
