type hold = Const of float | Exponential of float

type config = {
  path : string;
  mode : Wire.mode;
  conns : int;
  clients : int;
  rate : float;
  duration_s : float;
  hold : hold;
  seed : int;
  log : string -> unit;
}

let default_config ~path =
  {
    path;
    mode = Wire.Binary;
    conns = 4;
    clients = 64;
    rate = 1000.;
    duration_s = 5.;
    hold = Exponential 0.001;
    seed = 1;
    log = ignore;
  }

type result = {
  wall_s : float;
  offered : int;
  acquired : int;
  acquire_failures : int;
  released : int;
  errors : int;
  timeouts : int;
  violations : int;
  leaked : int;
  throughput : float;
  latency : Stats.Hdr.t;
}

let ok r =
  r.violations = 0 && r.leaked = 0 && r.errors = 0 && r.timeouts = 0

(* Scheduled releases, ordered by due time. *)
module Heap = struct
  type entry = { at : float; name : int; client : int; conn : int }
  type t = { mutable a : entry array; mutable len : int }

  let dummy = { at = 0.; name = 0; client = 0; conn = 0 }
  let create () = { a = Array.make 64 dummy; len = 0 }
  let is_empty h = h.len = 0
  let peek h = h.a.(0)

  let push h e =
    if h.len = Array.length h.a then begin
      let b = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 b 0 h.len;
      h.a <- b
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.a.(!i) <- e;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if h.a.(!i).at < h.a.(p).at then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p
      end
      else continue := false
    done

  let pop h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    h.a.(h.len) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.len && h.a.(l).at < h.a.(!s).at then s := l;
      if r < h.len && h.a.(r).at < h.a.(!s).at then s := r;
      if !s <> !i then begin
        let tmp = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !s
      end
      else continue := false
    done;
    top
end

type pending = Await_acquire of { sent : float; client : int } | Await_release of { name : int }

type st = {
  cfg : config;
  conns : Client.t array;
  rng : Prng.Splitmix.t;
  pending : (int * int, pending) Hashtbl.t;  (* (conn, id) -> op *)
  held : (int, int) Hashtbl.t;  (* name -> conn that holds it *)
  releasing : (int, int) Hashtbl.t;  (* name -> releases in flight *)
  heap : Heap.t;
  latency : Stats.Hdr.t;
  mutable rr : int;  (* round-robin cursor: conns and client ids *)
  mutable offered : int;
  mutable acquired : int;
  mutable acquire_failures : int;
  mutable released : int;
  mutable errors : int;
  mutable violations : int;
}

let now () = Unix.gettimeofday ()

let hold_sample st =
  match st.cfg.hold with
  | Const s -> s
  | Exponential mean ->
    if mean <= 0. then 0.
    else Prng.Dist.exponential_sample st.rng ~rate:(1. /. mean)

(* [at] is the scheduled arrival, not the post instant: latency is
   measured from when the operation {e should} have started, so catch-up
   bursts cannot hide queueing delay (no coordinated omission). *)
let post_acquire st ~at =
  let conn = st.rr mod Array.length st.conns in
  let client = st.rr mod st.cfg.clients in
  st.rr <- st.rr + 1;
  let c = st.conns.(conn) in
  let id = Client.fresh_id c in
  Hashtbl.replace st.pending (conn, id) (Await_acquire { sent = at; client });
  Client.post c (Wire.Acquire { id; client });
  st.offered <- st.offered + 1

let post_release st (e : Heap.entry) =
  if Hashtbl.mem st.held e.name then begin
    Hashtbl.remove st.held e.name;
    let inflight =
      Option.value (Hashtbl.find_opt st.releasing e.name) ~default:0
    in
    Hashtbl.replace st.releasing e.name (inflight + 1);
    let c = st.conns.(e.conn) in
    let id = Client.fresh_id c in
    Hashtbl.replace st.pending (e.conn, id) (Await_release { name = e.name });
    Client.post c (Wire.Release { id; client = e.client; name = e.name })
  end

let release_done st name =
  match Hashtbl.find_opt st.releasing name with
  | Some n when n > 1 -> Hashtbl.replace st.releasing name (n - 1)
  | Some _ -> Hashtbl.remove st.releasing name
  | None -> ()

let on_response st ~conn ~at r =
  let key = (conn, Wire.response_id r) in
  match Hashtbl.find_opt st.pending key with
  | None ->
    (* A reply we never asked for; count it, something is off. *)
    st.errors <- st.errors + 1
  | Some entry -> (
    Hashtbl.remove st.pending key;
    match (entry, r) with
    | Await_acquire { sent; client }, Wire.Acquired { name; _ } ->
      st.acquired <- st.acquired + 1;
      Stats.Hdr.record st.latency
        (int_of_float (Float.max 0. ((at -. sent) *. 1e9)));
      if Hashtbl.mem st.held name then
        (* Held and no release in flight: two live grants of one name. *)
        st.violations <- st.violations + 1
      else begin
        Hashtbl.replace st.held name conn;
        Heap.push st.heap
          { at = at +. hold_sample st; name; client; conn }
      end
    | Await_acquire _, Wire.Error { code; _ } ->
      if code = Wire.err_capacity then
        st.acquire_failures <- st.acquire_failures + 1
      else st.errors <- st.errors + 1
    | Await_release { name }, Wire.Released _ ->
      st.released <- st.released + 1;
      release_done st name
    | Await_release { name }, Wire.Error _ ->
      st.errors <- st.errors + 1;
      release_done st name
    | _ -> st.errors <- st.errors + 1)

(* Drain every decoded response on every connection; [Error] is
   connection loss or stream corruption. *)
let pump st =
  let n = Array.length st.conns in
  let rec one i =
    if i >= n then Ok ()
    else
      match Client.recv st.conns.(i) ~timeout:0. with
      | Error _ as e -> e
      | Ok None -> one (i + 1)
      | Ok (Some r) ->
        on_response st ~conn:i ~at:(now ()) r;
        one i
  in
  one 0

let run (cfg : config) =
  if cfg.conns < 1 then invalid_arg "Load_gen.run: conns < 1";
  if cfg.clients < 1 then invalid_arg "Load_gen.run: clients < 1";
  if cfg.rate <= 0. then invalid_arg "Load_gen.run: rate <= 0";
  let connected = ref [] in
  let connect_all () =
    let rec go i =
      if i = cfg.conns then Ok ()
      else
        match Client.connect ~mode:cfg.mode ~path:cfg.path () with
        | Error _ as e -> e
        | Ok c ->
          connected := c :: !connected;
          go (i + 1)
    in
    go 0
  in
  match connect_all () with
  | Error e ->
    List.iter Client.close !connected;
    Error e
  | Ok () ->
    let st =
      {
        cfg;
        conns = Array.of_list (List.rev !connected);
        rng = Prng.Splitmix.of_int cfg.seed;
        pending = Hashtbl.create 1024;
        held = Hashtbl.create 1024;
        releasing = Hashtbl.create 64;
        heap = Heap.create ();
        latency = Stats.Hdr.create ();
        rr = 0;
        offered = 0;
        acquired = 0;
        acquire_failures = 0;
        released = 0;
        errors = 0;
        violations = 0;
      }
    in
    let fds = Array.to_list (Array.map Client.fd st.conns) in
    let t_start = now () in
    let t_end = t_start +. cfg.duration_s in
    let drain_deadline = t_end +. 10. in
    let next_arrival =
      ref (t_start +. Prng.Dist.exponential_sample st.rng ~rate:cfg.rate)
    in
    let failure = ref None in
    let fail e = if !failure = None then failure := Some e in
    let finished = ref false in
    while (not !finished) && !failure = None do
      let t = now () in
      let draining = t >= t_end in
      (* Post every arrival that has come due (open loop: the schedule,
         not completions, decides). *)
      while !next_arrival <= now () && not draining do
        post_acquire st ~at:!next_arrival;
        next_arrival :=
          !next_arrival +. Prng.Dist.exponential_sample st.rng ~rate:cfg.rate
      done;
      (* Post due releases; when draining, everything still held is due. *)
      while
        (not (Heap.is_empty st.heap))
        && ((Heap.peek st.heap).at <= now () || draining)
      do
        post_release st (Heap.pop st.heap)
      done;
      (match pump st with Error e -> fail e | Ok () -> ());
      if draining then begin
        if Hashtbl.length st.pending = 0 && Heap.is_empty st.heap then
          finished := true
        else if now () > drain_deadline then begin
          cfg.log
            (Printf.sprintf "drain timed out with %d operation(s) unanswered"
               (Hashtbl.length st.pending));
          finished := true
        end
      end;
      if (not !finished) && !failure = None then begin
        let t = now () in
        let until_arrival = if draining then 0.05 else !next_arrival -. t in
        let until_release =
          if Heap.is_empty st.heap then 0.05 else (Heap.peek st.heap).at -. t
        in
        let timeout =
          Float.max 0. (Float.min 0.05 (Float.min until_arrival until_release))
        in
        match Unix.select fds [] [] timeout with
        | exception Unix.Unix_error (EINTR, _, _) -> ()
        | _ -> ()
      end
    done;
    let timeouts = Hashtbl.length st.pending in
    let res =
      match !failure with
      | Some e -> Error e
      | None ->
        (* Everything we held has been released; the server's taken
           count is now pure leak. *)
        let leaked =
          if timeouts > 0 then -1
          else
            match Client.stats st.conns.(0) with
            | Error e ->
              cfg.log (Printf.sprintf "final stats failed: %s" e);
              -1
            | Ok j -> (
              match Jsonu.int_ (Jsonu.obj j) "taken" with
              | v -> v
              | exception Jsonu.Malformed -> -1)
        in
        let wall_s = now () -. t_start in
        Ok
          {
            wall_s;
            offered = st.offered;
            acquired = st.acquired;
            acquire_failures = st.acquire_failures;
            released = st.released;
            errors = st.errors;
            timeouts;
            violations = st.violations;
            leaked;
            throughput =
              float_of_int (st.acquired + st.released)
              /. Float.max 1e-9 wall_s;
            latency = st.latency;
          }
    in
    Array.iter Client.close st.conns;
    res
