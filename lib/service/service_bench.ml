type t = {
  shards : int;
  capacity : int;
  conns : int;
  clients : int;
  rate : float;
  duration_s : float;
  seed : int;
  wall_s : float;
  offered : int;
  acquired : int;
  acquire_failures : int;
  released : int;
  errors : int;
  timeouts : int;
  violations : int;
  leaked : int;
  reconnects : int;
  throughput : float;
  lat_p50 : int;
  lat_p99 : int;
  lat_p999 : int;
  lat_mean : float;
  lat_max : int;
}

let of_run ~shards ~capacity ~cfg (r : Load_gen.result) =
  let q = Stats.Hdr.quantile r.latency in
  {
    shards;
    capacity;
    conns = cfg.Load_gen.conns;
    clients = cfg.Load_gen.clients;
    rate = cfg.Load_gen.rate;
    duration_s = cfg.Load_gen.duration_s;
    seed = cfg.Load_gen.seed;
    wall_s = r.wall_s;
    offered = r.offered;
    acquired = r.acquired;
    acquire_failures = r.acquire_failures;
    released = r.released;
    errors = r.errors;
    timeouts = r.timeouts;
    violations = r.violations;
    leaked = r.leaked;
    reconnects = r.reconnects;
    throughput = r.throughput;
    lat_p50 = q 0.5;
    lat_p99 = q 0.99;
    lat_p999 = q 0.999;
    lat_mean =
      (let m = Stats.Hdr.mean r.latency in
       if Float.is_nan m then 0. else m);
    lat_max = Stats.Hdr.max_value r.latency;
  }

let to_json t =
  Jsonu.Obj
    [
      ("kind", Jsonu.Str "bench-service");
      ("schema", Jsonu.Int 1);
      ("shards", Jsonu.Int t.shards);
      ("capacity", Jsonu.Int t.capacity);
      ("conns", Jsonu.Int t.conns);
      ("clients", Jsonu.Int t.clients);
      ("rate", Jsonu.Num t.rate);
      ("duration_s", Jsonu.Num t.duration_s);
      ("seed", Jsonu.Int t.seed);
      ("wall_s", Jsonu.Num t.wall_s);
      ("offered", Jsonu.Int t.offered);
      ("acquired", Jsonu.Int t.acquired);
      ("acquire_failures", Jsonu.Int t.acquire_failures);
      ("released", Jsonu.Int t.released);
      ("errors", Jsonu.Int t.errors);
      ("timeouts", Jsonu.Int t.timeouts);
      ("violations", Jsonu.Int t.violations);
      ("leaked", Jsonu.Int t.leaked);
      ("reconnects", Jsonu.Int t.reconnects);
      ("throughput", Jsonu.Num t.throughput);
      ("lat_p50_ns", Jsonu.Int t.lat_p50);
      ("lat_p99_ns", Jsonu.Int t.lat_p99);
      ("lat_p999_ns", Jsonu.Int t.lat_p999);
      ("lat_mean_ns", Jsonu.Num t.lat_mean);
      ("lat_max_ns", Jsonu.Int t.lat_max);
    ]

let of_json j =
  let f = Jsonu.obj j in
  if Jsonu.str f "kind" <> "bench-service" then raise Jsonu.Malformed;
  if Jsonu.int_ f "schema" <> 1 then raise Jsonu.Malformed;
  {
    shards = Jsonu.int_ f "shards";
    capacity = Jsonu.int_ f "capacity";
    conns = Jsonu.int_ f "conns";
    clients = Jsonu.int_ f "clients";
    rate = Jsonu.num f "rate";
    duration_s = Jsonu.num f "duration_s";
    seed = Jsonu.int_ f "seed";
    wall_s = Jsonu.num f "wall_s";
    offered = Jsonu.int_ f "offered";
    acquired = Jsonu.int_ f "acquired";
    acquire_failures = Jsonu.int_ f "acquire_failures";
    released = Jsonu.int_ f "released";
    errors = Jsonu.int_ f "errors";
    timeouts = Jsonu.int_ f "timeouts";
    violations = Jsonu.int_ f "violations";
    leaked = Jsonu.int_ f "leaked";
    (* pre-survivability artifacts (the committed baseline) lack it *)
    reconnects = Jsonu.int_opt f "reconnects" ~default:0;
    throughput = Jsonu.num f "throughput";
    lat_p50 = Jsonu.int_ f "lat_p50_ns";
    lat_p99 = Jsonu.int_ f "lat_p99_ns";
    lat_p999 = Jsonu.int_ f "lat_p999_ns";
    lat_mean = Jsonu.num f "lat_mean_ns";
    lat_max = Jsonu.int_ f "lat_max_ns";
  }

let load path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Jsonu.parse (String.trim contents) with
  | Some j -> of_json j
  | None -> raise Jsonu.Malformed

let render t =
  String.concat "\n"
    [
      Printf.sprintf "service load: %d shard(s) x capacity %d, %d conn(s), %d client id(s)"
        t.shards t.capacity t.conns t.clients;
      Printf.sprintf "offered %.0f/s for %.1fs (seed %d): wall %.2fs" t.rate
        t.duration_s t.seed t.wall_s;
      Printf.sprintf
        "ops: %d offered, %d acquired (%d capacity-failed), %d released"
        t.offered t.acquired t.acquire_failures t.released;
      Printf.sprintf
        "audit: %d violation(s), %d leaked, %d error(s), %d timeout(s), \
         %d reconnect(s)"
        t.violations t.leaked t.errors t.timeouts t.reconnects;
      Printf.sprintf "throughput: %.0f op/s" t.throughput;
      Printf.sprintf
        "acquire latency: p50 %.1fus  p99 %.1fus  p999 %.1fus  mean %.1fus  max %.1fus"
        (float_of_int t.lat_p50 /. 1e3)
        (float_of_int t.lat_p99 /. 1e3)
        (float_of_int t.lat_p999 /. 1e3)
        (t.lat_mean /. 1e3)
        (float_of_int t.lat_max /. 1e3);
    ]

let check ~threshold ~baseline ~current =
  let findings = ref [] in
  let add fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  if current.violations <> 0 then
    add "%d uniqueness violation(s) — two live grants of one name"
      current.violations;
  if current.leaked <> 0 then
    add "%d leaked slot(s) at drain (slot-conservation residue)" current.leaked;
  if current.errors <> 0 then add "%d protocol error(s)" current.errors;
  if current.timeouts <> 0 then
    add "%d operation(s) unanswered at drain" current.timeouts;
  if current.acquired = 0 then add "no successful acquires";
  if
    not
      (current.lat_p50 <= current.lat_p99 && current.lat_p99 <= current.lat_p999)
  then
    add "latency quantiles out of order: p50=%d p99=%d p999=%d ns"
      current.lat_p50 current.lat_p99 current.lat_p999;
  let floor = (1. -. threshold) *. baseline.throughput in
  if current.throughput < floor then
    add "throughput fell to %.0f op/s (baseline %.0f, floor %.0f)"
      current.throughput baseline.throughput floor;
  List.rev !findings

(* Next free BENCH_SERVICE_<k>.json, mirroring the kernel bench's
   side-by-side accumulation with index 0 as the committed baseline. *)
let next_index dir =
  let taken = Hashtbl.create 8 in
  (if Sys.file_exists dir then
     Array.iter
       (fun f ->
         match Scanf.sscanf_opt f "BENCH_SERVICE_%d.json%!" (fun i -> i) with
         | Some i -> Hashtbl.replace taken i ()
         | None -> ())
       (Sys.readdir dir));
  let rec go i = if Hashtbl.mem taken i then go (i + 1) else i in
  go 0

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let save ~dir t =
  mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "BENCH_SERVICE_%d.json" (next_index dir))
  in
  let oc = open_out_bin path in
  output_string oc (Jsonu.to_string (to_json t));
  output_char oc '\n';
  close_out oc;
  path
