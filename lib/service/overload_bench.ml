type t = {
  shards : int;
  capacity : int;
  conns : int;
  clients : int;
  calibrate_rate : float;
  capacity_ops : float;
  overdrive : float;
  rate : float;
  duration_s : float;
  seed : int;
  max_queue : int;
  deadline_ms : int;
  wall_s : float;
  offered : int;
  acquired : int;
  shed : int;
  expired : int;
  acquire_failures : int;
  released : int;
  errors : int;
  timeouts : int;
  violations : int;
  leaked : int;
  goodput : float;
  goodput_daemon : float;
  lat_p50 : int;
  lat_p99 : int;
  lat_max : int;
  rss_start_kb : int;
  rss_end_kb : int;
  queue_peak : int;
  queue_bound : int;
  level : string;
  drain_complete : bool;
}

let kind = "bench-service-overload"

let to_json t =
  Jsonu.Obj
    [
      ("kind", Jsonu.Str kind);
      ("schema", Jsonu.Int 1);
      ("shards", Jsonu.Int t.shards);
      ("capacity", Jsonu.Int t.capacity);
      ("conns", Jsonu.Int t.conns);
      ("clients", Jsonu.Int t.clients);
      ("calibrate_rate", Jsonu.Num t.calibrate_rate);
      ("capacity_ops", Jsonu.Num t.capacity_ops);
      ("overdrive", Jsonu.Num t.overdrive);
      ("rate", Jsonu.Num t.rate);
      ("duration_s", Jsonu.Num t.duration_s);
      ("seed", Jsonu.Int t.seed);
      ("max_queue", Jsonu.Int t.max_queue);
      ("deadline_ms", Jsonu.Int t.deadline_ms);
      ("wall_s", Jsonu.Num t.wall_s);
      ("offered", Jsonu.Int t.offered);
      ("acquired", Jsonu.Int t.acquired);
      ("shed", Jsonu.Int t.shed);
      ("expired", Jsonu.Int t.expired);
      ("acquire_failures", Jsonu.Int t.acquire_failures);
      ("released", Jsonu.Int t.released);
      ("errors", Jsonu.Int t.errors);
      ("timeouts", Jsonu.Int t.timeouts);
      ("violations", Jsonu.Int t.violations);
      ("leaked", Jsonu.Int t.leaked);
      ("goodput", Jsonu.Num t.goodput);
      ("goodput_daemon", Jsonu.Num t.goodput_daemon);
      ("lat_p50_ns", Jsonu.Int t.lat_p50);
      ("lat_p99_ns", Jsonu.Int t.lat_p99);
      ("lat_max_ns", Jsonu.Int t.lat_max);
      ("rss_start_kb", Jsonu.Int t.rss_start_kb);
      ("rss_end_kb", Jsonu.Int t.rss_end_kb);
      ("queue_peak", Jsonu.Int t.queue_peak);
      ("queue_bound", Jsonu.Int t.queue_bound);
      ("level", Jsonu.Str t.level);
      ("drain_complete", Jsonu.Bool t.drain_complete);
    ]

let of_json j =
  let f = Jsonu.obj j in
  if Jsonu.str f "kind" <> kind then raise Jsonu.Malformed;
  if Jsonu.int_ f "schema" <> 1 then raise Jsonu.Malformed;
  {
    shards = Jsonu.int_ f "shards";
    capacity = Jsonu.int_ f "capacity";
    conns = Jsonu.int_ f "conns";
    clients = Jsonu.int_ f "clients";
    calibrate_rate = Jsonu.num f "calibrate_rate";
    capacity_ops = Jsonu.num f "capacity_ops";
    overdrive = Jsonu.num f "overdrive";
    rate = Jsonu.num f "rate";
    duration_s = Jsonu.num f "duration_s";
    seed = Jsonu.int_ f "seed";
    max_queue = Jsonu.int_ f "max_queue";
    deadline_ms = Jsonu.int_ f "deadline_ms";
    wall_s = Jsonu.num f "wall_s";
    offered = Jsonu.int_ f "offered";
    acquired = Jsonu.int_ f "acquired";
    shed = Jsonu.int_ f "shed";
    expired = Jsonu.int_ f "expired";
    acquire_failures = Jsonu.int_ f "acquire_failures";
    released = Jsonu.int_ f "released";
    errors = Jsonu.int_ f "errors";
    timeouts = Jsonu.int_ f "timeouts";
    violations = Jsonu.int_ f "violations";
    leaked = Jsonu.int_ f "leaked";
    goodput = Jsonu.num f "goodput";
    goodput_daemon = Jsonu.num f "goodput_daemon";
    lat_p50 = Jsonu.int_ f "lat_p50_ns";
    lat_p99 = Jsonu.int_ f "lat_p99_ns";
    lat_max = Jsonu.int_ f "lat_max_ns";
    rss_start_kb = Jsonu.int_ f "rss_start_kb";
    rss_end_kb = Jsonu.int_ f "rss_end_kb";
    queue_peak = Jsonu.int_ f "queue_peak";
    queue_bound = Jsonu.int_ f "queue_bound";
    level = Jsonu.str f "level";
    drain_complete = Jsonu.bool_ f "drain_complete";
  }

let load path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Jsonu.parse (String.trim contents) with
  | Some j -> of_json j
  | None -> raise Jsonu.Malformed

let save ~dir t =
  Service_bench.mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "BENCH_SERVICE_%d.json" (Service_bench.next_index dir))
  in
  let oc = open_out_bin path in
  output_string oc (Jsonu.to_string (to_json t));
  output_char oc '\n';
  close_out oc;
  path

let render t =
  String.concat "\n"
    [
      Printf.sprintf
        "overload soak: %d shard(s) x capacity %d, %d conn(s), queue bound \
         %d, deadline %dms"
        t.shards t.capacity t.conns t.queue_bound t.deadline_ms;
      Printf.sprintf
        "capacity %.0f/s measured at %.0f/s; soaked at %.1fx = %.0f/s for \
         %.1fs (seed %d)"
        t.capacity_ops t.calibrate_rate t.overdrive t.rate t.duration_s t.seed;
      Printf.sprintf
        "ops: %d offered, %d served, %d shed (busy), %d expired, %d \
         capacity-failed, %d released"
        t.offered t.acquired t.shed t.expired t.acquire_failures t.released;
      Printf.sprintf
        "goodput %.0f/s daemon-side (%.0f%% of capacity; client in-window \
         %.0f/s); accepted latency p50 %.1fms p99 %.1fms max %.1fms"
        t.goodput_daemon
        (100. *. t.goodput_daemon /. Float.max 1e-9 t.capacity_ops)
        t.goodput
        (float_of_int t.lat_p50 /. 1e6)
        (float_of_int t.lat_p99 /. 1e6)
        (float_of_int t.lat_max /. 1e6);
      Printf.sprintf
        "daemon: RSS %d -> %d kB, queue peak %d/%d, level %s at end"
        t.rss_start_kb t.rss_end_kb t.queue_peak t.queue_bound t.level;
      Printf.sprintf
        "audit: %d violation(s), %d leaked, %d error(s), %d timeout(s), \
         drain %s"
        t.violations t.leaked t.errors t.timeouts
        (if t.drain_complete then "complete" else "CUT SHORT");
    ]

(* Absolute properties first (they define overload survival), then the
   baseline-relative regression gate. *)
let check ~threshold ~baseline ~current =
  let findings = ref [] in
  let add fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  if current.violations <> 0 then
    add "%d uniqueness violation(s) under overload" current.violations;
  if current.leaked < 0 then add "leak count unknown (final stats probe failed)"
  else if current.leaked > 0 then
    add "%d leaked slot(s) after drain" current.leaked;
  if current.errors <> 0 then add "%d protocol error(s)" current.errors;
  if current.acquired = 0 then add "no successful acquires";
  if current.shed + current.expired = 0 then
    add
      "nothing shed at %.1fx overdrive — admission control never engaged"
      current.overdrive;
  if current.queue_peak > current.queue_bound then
    add "queue peak %d exceeded the %d bound — queues are not bounded"
      current.queue_peak current.queue_bound;
  (* The plateau criterion: goodput under overdrive within 20%% of the
     same run's measured capacity.  Collapse (goodput falling with
     offered load) is exactly what this catches.  Daemon-side (served
     grants counted by the daemon over the arrival window) — the
     client-side number also folds in generator read-starvation, which
     on small machines is the generator's collapse, not the daemon's. *)
  let plateau_floor = 0.8 *. current.capacity_ops in
  if current.goodput_daemon < plateau_floor then
    add "goodput %.0f/s collapsed below %.0f/s (80%% of capacity %.0f/s)"
      current.goodput_daemon plateau_floor current.capacity_ops;
  (* RSS flat: generous absolute+relative allowance — CI heaps differ,
     unbounded growth does not hide inside it over a soak. *)
  let rss_allowed =
    max
      (current.rss_start_kb + (current.rss_start_kb / 2))
      (current.rss_start_kb + 32768)
  in
  if current.rss_end_kb > rss_allowed then
    add "daemon RSS grew %d -> %d kB (allowed %d)" current.rss_start_kb
      current.rss_end_kb rss_allowed;
  if not current.drain_complete then add "final drain was cut short";
  (* Regression vs the committed baseline. *)
  let floor = (1. -. threshold) *. baseline.goodput_daemon in
  if current.goodput_daemon < floor then
    add "goodput fell to %.0f/s (baseline %.0f, floor %.0f)"
      current.goodput_daemon baseline.goodput_daemon floor;
  let p99_allowed =
    Float.max
      ((1. +. threshold) *. float_of_int baseline.lat_p99)
      5e8 (* 500 ms absolute floor: queue-bound delay is legitimate *)
  in
  if float_of_int current.lat_p99 > p99_allowed then
    add "accepted p99 %.1fms exceeds allowed %.1fms (baseline %.1fms)"
      (float_of_int current.lat_p99 /. 1e6)
      (p99_allowed /. 1e6)
      (float_of_int baseline.lat_p99 /. 1e6);
  List.rev !findings
