(** The renaming daemon's serving loop.

    Architecture (the async-front-end-over-pure-core layering the
    frenetic exemplar uses, realized with what OCaml 5 + Unix give us):

    - {b One I/O domain} runs a [select] event loop over the
      Unix-domain listening socket, every client connection and a
      self-pipe.  It owns all sessions (framing + held-name ledgers),
      performs all reads and writes, and handles [stats]/[shutdown]
      inline.
    - {b One worker domain per shard} owns that shard's
      {!Renaming.Long_lived} instance and executes acquires/releases
      against the shared {!Shm.Atomic_space} — the genuinely parallel
      part.  Jobs arrive on a per-worker queue; completions return on a
      shared outbox, and the worker taps the self-pipe so the I/O
      domain wakes immediately.

    Responses therefore complete out of order across shards; the wire
    protocol's request ids make that safe.

    {b Graceful shutdown} ([SIGTERM]/[SIGINT] via {!stop}, or a client
    [shutdown] request): the loop stops accepting connections and new
    work (late requests get {!Wire.err_shutdown}), drains every
    in-flight job, auto-releases every name still on a session ledger,
    flushes and closes, joins the workers, and finally checks the
    slot-conservation law: a clean exit has [taken_at_exit = 0] —
    the same leak accounting the chaos invariant monitor enforces. *)

type config = {
  socket_path : string;
  shards : int;  (** worker domains = allocator shards, >= 1 *)
  capacity : int;  (** concurrent holders per shard *)
  seed : int;
  backlog : int;  (** listen backlog *)
  max_conns : int;  (** accepted connections beyond this are refused *)
  log : string -> unit;  (** operator log lines (renamed sends to stderr) *)
}

val default_config : socket_path:string -> config
(** 2 shards, capacity 4096, seed 1, backlog 64, max_conns 1024,
    silent log. *)

type report = {
  conns_served : int;
  requests : int;
  acquires : int;
  releases : int;
  errors : int;  (** error responses sent *)
  drained_releases : int;  (** ledger names auto-released at shutdown *)
  taken_at_exit : int;  (** slot-conservation residue; 0 on a clean exit *)
  wall_s : float;
}

val report_clean : report -> bool
(** [taken_at_exit = 0] — the daemon's exit-0 condition. *)

type handle
(** Out-of-band stop control, safe to trigger from a signal handler
    (an [Atomic] flag plus a self-pipe write). *)

val create_handle : unit -> handle
val stop : handle -> unit
val stop_requested : handle -> bool

val run : ?handle:handle -> config -> (report, string) result
(** Bind, serve until {!stop} or a [shutdown] request, drain, and
    report.  [Error] covers startup failures only (socket in use by a
    live daemon, bind permission); once serving, [run] always returns
    [Ok] with the drain report.  A stale socket file (no listener
    behind it) is reclaimed with a log note — the failure mode
    [repro_cli doctor] audits. *)

(** {1 Embedding} *)

type spawned
(** A server running on its own domain (tests, in-process tools). *)

val spawn : ?handle:handle -> config -> spawned
(** {!run} on a fresh domain.  Trigger the drain with {!stop} on
    {!spawned_handle} (or a [shutdown] request), then {!join}. *)

val spawned_handle : spawned -> handle

val join : spawned -> (report, string) result
(** Wait for the serving loop to finish and return {!run}'s result. *)
