(** The renaming daemon's serving loop.

    Architecture (the async-front-end-over-pure-core layering the
    frenetic exemplar uses, realized with what OCaml 5 + Unix give us):

    - {b One I/O domain} runs a [select] event loop over the
      Unix-domain listening socket, every client connection and a
      self-pipe.  It owns all sessions (framing + held-name ledgers),
      the lease table and the journal, and handles [stats]/[renew]/
      [shutdown] inline.
    - {b One worker domain per shard} owns that shard's
      {!Renaming.Long_lived} instance and executes acquires/releases
      against the shared {!Shm.Atomic_space} — the genuinely parallel
      part.  Jobs arrive on a per-worker queue; completions return on a
      shared outbox, and the worker taps the self-pipe so the I/O
      domain wakes immediately.

    Responses therefore complete out of order across shards; the wire
    protocol's request ids make that safe.

    {b Leases.}  Every grant carries a TTL ([lease_ttl_s]).  Clients
    keep their names with the [renew] heartbeat; the expiry sweep
    (at most every [max 10ms (ttl/10)]) reclaims names whose holders
    went silent while still connected, removing them from the holder's
    ledger so a late release is answered [err_not_held] instead of
    freeing a reissued cell.  Renew-vs-expiry races are settled by a
    monotonic lease epoch ({!Lease}).

    {b Journal.}  With [journal_path] set, every grant is appended to a
    crash-safe journal {e before} the client sees [Acquired]
    (write-ahead; a failed append aborts the grant with
    [err_internal]), and every release/expiry is appended as it
    happens.  On restart the journal is replayed: live grants are
    re-occupied in the shard pool and restored as orphan leases keeping
    their epochs, so a [SIGKILL]-ed daemon never double-grants a name a
    client still holds.  Restarting over live grants without [recover]
    is refused (see {!recovery_refused}); a damaged journal (CRC/framing
    failure before the tail) is always refused.  Journaling costs one
    [fsync] per grant and is off by default.

    {b Overload.}  Admission is bounded end to end: each shard queue
    holds at most [max_queue] jobs (a full queue purges its
    already-expired acquires oldest-first, then refuses with
    {!Wire.Busy} + a [retry_after_ms] hint), workers drop
    deadline-expired work before touching the allocator
    ([err_expired]), slow readers are paused past [max_out_bytes] of
    unsent responses and disconnected after [stall_s] without
    progress, and an {!Overload} state machine (healthy -> degraded ->
    shedding, with hysteresis) short-circuits every new acquire to
    {!Wire.Busy} while shedding — releases, renews and stats always
    execute, so the system drains itself back to health.  All deadline
    arithmetic runs on the monotonic clock ({!Mono}).

    {b Graceful shutdown} ([SIGTERM]/[SIGINT] via {!stop}, or a client
    [shutdown] request): the loop stops accepting connections and new
    work (late requests get {!Wire.err_shutdown}), drains every
    in-flight job, auto-releases every name still on a session ledger
    or lease table (journaling the releases), flushes and closes, joins
    the workers, and finally checks the slot-conservation law: a clean
    exit has [taken_at_exit = 0] — the same leak accounting the chaos
    invariant monitor enforces. *)

type config = {
  socket_path : string;
  shards : int;  (** worker domains = allocator shards, >= 1 *)
  capacity : int;  (** concurrent holders per shard *)
  seed : int;
  backlog : int;  (** listen backlog *)
  max_conns : int;  (** accepted connections beyond this are refused *)
  lease_ttl_s : float;  (** grant TTL; renew or lose the name *)
  journal_path : string option;  (** crash-safe grant journal (off = None) *)
  recover : bool;  (** replay live journal grants instead of refusing *)
  max_queue : int;
      (** per-shard admission-queue bound: an acquire arriving at a
          full queue is first relieved by purging already-expired
          entries, then refused with {!Wire.Busy} *)
  max_out_bytes : int;
      (** per-connection outbound buffer bound: above it the peer's
          reads pause (backpressure) and the stall clock runs *)
  stall_s : float;
      (** a peer over the outbound bound that drains nothing for this
          long is disconnected; its ledger auto-releases *)
  overload : Overload.config option;
      (** overload state-machine thresholds
          ([None] = {!Overload.default_config} over [max_queue]) *)
  log : string -> unit;  (** operator log lines (renamed sends to stderr) *)
}

val default_config : socket_path:string -> config
(** 2 shards, capacity 4096, seed 1, backlog 64, max_conns 1024,
    lease TTL 30 s, no journal, no recover, max_queue 1024,
    max_out_bytes 256 KiB, stall 5 s, default overload thresholds,
    silent log. *)

type report = {
  conns_served : int;
  requests : int;
  acquires : int;
  releases : int;
  errors : int;  (** error responses sent *)
  drained_releases : int;
      (** names auto-released for dead connections and at shutdown *)
  renews : int;  (** renew requests served *)
  expired_leases : int;  (** names reclaimed by the expiry sweep *)
  dedup_hits : int;  (** acquires answered from a token's live lease *)
  recovered : int;  (** grants re-occupied from the journal at boot *)
  shed_busy : int;  (** acquires refused with {!Wire.Busy} at admission *)
  shed_expired : int;
      (** acquires dropped because their deadline passed before a
          worker reached them (purged from a full queue or checked at
          pickup); never executed *)
  stalled_conns : int;  (** slow readers disconnected past [stall_s] *)
  queue_peak : int;  (** deepest shard queue observed *)
  taken_at_exit : int;  (** slot-conservation residue; 0 on a clean exit *)
  wall_s : float;
}

val report_clean : report -> bool
(** [taken_at_exit = 0] — the daemon's exit-0 condition. *)

val recovery_refused : string -> bool
(** True of {!run}'s [Error] when a journal holds live grants and
    [recover] was false — the operator must rerun with [--recover]
    (renamed exits 2 on this, 1 on other startup failures). *)

type handle
(** Out-of-band stop control, safe to trigger from a signal handler
    (an [Atomic] flag plus a self-pipe write). *)

val create_handle : unit -> handle
val stop : handle -> unit
val stop_requested : handle -> bool

val run : ?handle:handle -> config -> (report, string) result
(** Bind, serve until {!stop} or a [shutdown] request, drain, and
    report.  [Error] covers startup failures only (socket in use by a
    live daemon, bind permission, journal damage, refused recovery);
    once serving, [run] always returns [Ok] with the drain report.  A
    stale socket file (no listener behind it) is reclaimed with a log
    note — the failure mode [repro_cli doctor] audits. *)

(** {1 Embedding} *)

type spawned
(** A server running on its own domain (tests, in-process tools). *)

val spawn : ?handle:handle -> config -> spawned
(** {!run} on a fresh domain.  Trigger the drain with {!stop} on
    {!spawned_handle} (or a [shutdown] request), then {!join}. *)

val spawned_handle : spawned -> handle

val join : spawned -> (report, string) result
(** Wait for the serving loop to finish and return {!run}'s result. *)
