(** The service load-test artifact ([bench/BENCH_SERVICE_<k>.json]) and
    its regression gate.

    A run records the offered-load configuration, the audit counters
    from {!Load_gen} and the acquire-latency quantiles.  {!check}
    compares a fresh run against a committed baseline the way the
    kernel bench does: {e invariants} are absolute (zero uniqueness
    violations, zero leaked slots, zero errors/timeouts, quantiles
    ordered), while {e throughput} is relative to the baseline within a
    threshold — absolute latency is machine noise and is recorded but
    never gated. *)

type t = {
  (* configuration *)
  shards : int;
  capacity : int;
  conns : int;
  clients : int;
  rate : float;
  duration_s : float;
  seed : int;
  (* audit *)
  wall_s : float;
  offered : int;
  acquired : int;
  acquire_failures : int;
  released : int;
  errors : int;
  timeouts : int;
  violations : int;
  leaked : int;
  reconnects : int;
      (** mid-run connection resets survived by reconnecting (absent in
          pre-survivability artifacts, read as 0) *)
  throughput : float;
  (* latency, nanoseconds *)
  lat_p50 : int;
  lat_p99 : int;
  lat_p999 : int;
  lat_mean : float;
  lat_max : int;
}

val of_run :
  shards:int -> capacity:int -> cfg:Load_gen.config -> Load_gen.result -> t

val to_json : t -> Jsonu.t
val of_json : Jsonu.t -> t
(** @raise Jsonu.Malformed on schema mismatch. *)

val load : string -> t
(** @raise Jsonu.Malformed / [Sys_error]. *)

val save : dir:string -> t -> string
(** Write to the next free [BENCH_SERVICE_<k>.json] in [dir] and return
    the path; [BENCH_SERVICE_0.json] stays the committed baseline. *)

val render : t -> string

val check : threshold:float -> baseline:t -> current:t -> string list
(** Findings, empty when the run passes.  Invariant findings fire on
    the current run alone; throughput fires when it falls below
    [(1 - threshold) x baseline]. *)

val next_index : string -> int
(** Next free [BENCH_SERVICE_<k>.json] index in a directory — shared
    with {!Recovery_bench} so both artifact kinds accumulate in one
    numbered sequence. *)

val mkdir_p : string -> unit
