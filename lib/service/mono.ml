external now : unit -> float = "repro_mono_now"
