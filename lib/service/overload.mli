(** The daemon's overload state machine.

    Pure and explicit-now (like {!Lease}): the server feeds it queue
    depth and admission latency observations, it answers with a level —

    - {b Healthy}: everything admitted.
    - {b Degraded}: admitted, but the daemon is near its bound; new
      acquires whose shard queue is full are refused with
      {!Wire.Busy}.
    - {b Shedding}: every new acquire is refused immediately with
      {!Wire.Busy}; releases, renews and stats still execute, so held
      names keep draining — the path back to health.

    Transitions carry hysteresis in both dimensions: a {e band}
    (distinct hi/lo thresholds — between them the level freezes) and a
    {e dwell} (escalating past Degraded, and every de-escalation step,
    requires the pressure signal to hold for [dwell_s] continuously).
    Stepping is one level at a time, so Healthy and Shedding are never
    adjacent states of one observation — the no-flapping property the
    unit suite pins down. *)

type level = Healthy | Degraded | Shedding

val level_string : level -> string
val level_of_string : string -> level option

type config = {
  queue_hi : int;  (** shard queue depth at/above which pressure is high *)
  queue_lo : int;  (** depth at/below which pressure counts as low *)
  latency_hi_ms : float;  (** admission EMA above this is high pressure *)
  latency_lo_ms : float;
  dwell_s : float;
      (** continuous time a signal must hold to escalate past Degraded
          or to de-escalate one level *)
  ema_alpha : float;  (** admission-latency EMA smoothing, in (0, 1] *)
  retry_floor_ms : int;  (** minimum {!retry_after_ms} hint *)
  retry_cap_ms : int;  (** maximum hint *)
}

val default_config : queue_bound:int -> config
(** hi = 3/4 of the bound, lo = 1/4, latency 100/20 ms, 1 s dwell,
    alpha 0.2, hints in [5, 2000] ms. *)

type t

val create : ?config:config -> queue_bound:int -> unit -> t
(** Starts {!Healthy}.  [config] defaults to
    [default_config ~queue_bound]. *)

val level : t -> level
val ema_ms : t -> float
(** Smoothed admission latency (enqueue to worker pickup), ms. *)

val transitions : t -> int
(** Level changes since creation — the flapping diagnostic. *)

val note_latency : t -> float -> unit
(** Feed one admission-latency sample (ms) into the EMA. *)

val observe : t -> now:float -> queue_depth:int -> level
(** Evaluate the thresholds against the deepest shard queue and step
    the machine; returns the (possibly new) level.  [now] is monotonic
    seconds ({!Mono.now} in the daemon, anything consistent in tests).

    When the queue sits at or below the low-water mark the latency EMA
    also decays on the wall between observations (half-life about a
    third of the dwell): the EMA is fed only by admissions that flow,
    so without decay a machine that escalated to Shedding on latency
    would freeze its own evidence high and never step down. *)

val retry_after_ms : t -> queue_depth:int -> int
(** The backoff hint carried by {!Wire.Busy}: queue depth times the
    smoothed per-request service time, clamped to
    [[retry_floor_ms, retry_cap_ms]]. *)

val to_json : t -> queue_depth:int -> queue_bound:int -> Jsonu.t
(** The [overload] object embedded in the daemon's stats reply. *)
