(** The renaming service's wire protocol.

    Two self-framing encodings of the same request/response algebra:

    - {b Binary}: a 4-byte big-endian payload length followed by the
      payload (opcode, request id, operands as fixed-width big-endian
      integers; strings are u16-length-prefixed).  This is the daemon's
      native format: fixed cost to encode, zero parsing ambiguity.
    - {b Json}: one {!Jsonu} object per line ([\n]-terminated) — the
      debuggable fallback; [socat] is a usable client.

    A connection picks its mode implicitly with its first byte: ['{']
    opens a JSON session, anything else is read as binary (a binary
    frame's first byte is the high byte of a length below
    {!max_frame}, hence never ['{']).

    Every request carries a client-chosen [id] echoed verbatim in the
    response, so one connection can multiplex many in-flight operations
    (acquires route to per-shard worker domains and complete out of
    order).  Decoding is incremental: feed whatever bytes have arrived
    and get back a frame, a request for more bytes, or a corruption
    verdict — never an exception and never a partial value. *)

type mode = Binary | Json

type request =
  | Acquire of { id : int; client : int; token : int; deadline_ms : int }
      (** obtain a name; [client] selects the shard.  [token <> 0] is a
          client-chosen idempotency token: retrying the same logical
          acquire with the same token after an ambiguous failure
          re-delivers the original grant instead of taking a second
          slot (the server dedups through its lease table + journal).
          [deadline_ms > 0] is the client's remaining budget: the
          server sheds the request ([err_expired]) instead of executing
          it once that many milliseconds have passed since admission —
          work the client has already given up on is dropped before it
          touches the allocator.  [0] = no deadline (and the legacy
          13-byte binary form, which omits the field, decodes as 0) *)
  | Release of { id : int; client : int; name : int }
      (** return [name]; must be held by this connection *)
  | Renew of { id : int; client : int }
      (** heartbeat: extend the lease TTL of every name this
          connection holds *)
  | Stats of { id : int }  (** server + per-shard counters as JSON *)
  | Shutdown of { id : int }  (** graceful drain, then exit *)

type op = Op_acquire | Op_release | Op_renew | Op_stats | Op_shutdown

type response =
  | Acquired of { id : int; name : int; lease_ms : int }
      (** [lease_ms] is the grant's TTL: renew (or release) within it
          or the expiry sweep reclaims the name *)
  | Released of { id : int }
  | Renewed of { id : int; count : int }  (** leases extended *)
  | Stats_reply of { id : int; stats : Jsonu.t }
  | Shutting_down of { id : int }  (** ack of {!Shutdown} *)
  | Busy of { id : int; op : op; retry_after_ms : int }
      (** admission refused under overload: the request was {e not}
          executed and retrying after [retry_after_ms] (plus jitter) is
          the contract — {!Client.Durable} does this automatically.  On
          the wire this is binary status 2, or JSON [ok=false] with a
          [retry_after_ms] field (code {!err_busy}) *)
  | Error of { id : int; op : op; code : int; msg : string }

(** {1 Error codes} *)

val err_proto : int
(** malformed or inapplicable request *)

val err_capacity : int
(** shard namespace exhausted (overload) *)

val err_not_held : int
(** releasing a name this session does not hold *)

val err_shutdown : int
(** server is draining; no new acquires *)

val err_internal : int
(** the server could not make the operation durable (journal append
    failed); the grant was rolled back and the slot returned *)

val err_busy : int
(** admission refused under overload — the code carried by {!Busy}
    frames in JSON mode *)

val err_expired : int
(** the request's [deadline_ms] budget ran out before a worker reached
    it; shed, never executed *)

val max_frame : int
(** Upper bound on a binary payload and on a JSON line (64 KiB).  A
    length prefix above this is corruption by construction — the codec
    rejects it instead of allocating attacker-controlled buffers. *)

val request_id : request -> int
val request_op : request -> op
val response_id : response -> int
val op_string : op -> string

(** {1 Binary primitives}

    Big-endian fixed-width fields, shared with the journal codec
    ({!Service.Journal}) so both formats frame bytes identically. *)

val add_u8 : Buffer.t -> int -> unit
val add_u16 : Buffer.t -> int -> unit
val add_u32 : Buffer.t -> int -> unit
val get_u8 : Bytes.t -> int -> int
val get_u16 : Bytes.t -> int -> int
val get_u32 : Bytes.t -> int -> int

(** {1 Encoding} *)

val encode_request : mode -> Buffer.t -> request -> unit
val encode_response : mode -> Buffer.t -> response -> unit

(** {1 Incremental decoding} *)

type 'a step =
  | Frame of 'a * int
      (** a complete frame and how many bytes it consumed *)
  | Need_more  (** no complete frame in the buffer yet *)
  | Corrupt of string
      (** unrecoverable framing damage; close the connection *)

val decode_request : mode -> Bytes.t -> pos:int -> len:int -> request step
(** [decode_request mode buf ~pos ~len] reads one frame from
    [buf.[pos, pos+len)].  Any strict prefix of a valid frame yields
    {!Need_more}, never {!Corrupt} — partial reads are normal. *)

val decode_response : mode -> Bytes.t -> pos:int -> len:int -> response step
