type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The SplitMix64 finalizer: two xor-shift-multiply rounds.  This is the
   standard mix64 function; it is a bijection on 64-bit words. *)
let[@inline] mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.add seed golden_gamma) }

let of_int seed = create (Int64.of_int seed)

let copy t = { state = t.state }
let state t = t.state
let of_state s = { state = s }

let[@inline] next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  create seed

let split_at t i =
  (* Derive child [i] purely: mix the current state with a diffusion of
     [i], without advancing [t].  Children with distinct [i] get distinct,
     well-separated seeds. *)
  let child_seed =
    mix64 (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma))
  in
  create child_seed

let[@inline] bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* power of two: mask is exact *)
    bits t land (bound - 1)
  else
    (* rejection sampling to avoid modulo bias *)
    let max_int62 = (1 lsl 62) - 1 in
    let limit = max_int62 - (max_int62 mod bound) in
    let rec draw () =
      let v = bits t in
      if v >= limit then draw () else v mod bound
    in
    draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Splitmix.int_in: empty range";
  lo + int t (hi - lo + 1)

let[@inline] float t =
  (* 53 random bits scaled into [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v *. 0x1p-53

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t < p
