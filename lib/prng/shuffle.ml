let shuffle_in_place rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation rng n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place rng a;
  a

let sample_without_replacement rng n k =
  if k < 0 || k > n then
    invalid_arg "Shuffle.sample_without_replacement: need 0 <= k <= n";
  (* Floyd's algorithm: for j = n-k .. n-1, draw t uniform on [0,j]; insert
     t unless already present, else insert j.  Each round inserts exactly
     one fresh element, collected in insertion order — extraction must not
     go through Hashtbl iteration, whose order could shift across OCaml
     releases and silently change sampled sets for a fixed seed. *)
  let seen = Hashtbl.create (2 * k) in
  let picked = ref [] in
  for j = n - k to n - 1 do
    let t = Splitmix.int rng (j + 1) in
    let v = if Hashtbl.mem seen t then j else t in
    Hashtbl.replace seen v ();
    picked := v :: !picked
  done;
  let out = Array.of_list (List.rev !picked) in
  shuffle_in_place rng out;
  out

let choose rng a =
  if Array.length a = 0 then invalid_arg "Shuffle.choose: empty array";
  a.(Splitmix.int rng (Array.length a))
