(** A bank of SplitMix64 streams stored unboxed in one int64 bigarray.

    Drop-in replacement for an array of {!Splitmix.t} generators in
    allocation-free hot loops: stream [i] seeded via {!reseed} produces
    bit-for-bit the same draws as [Splitmix.split_at root i], but
    advancing it allocates nothing — the state lives unboxed in the
    bigarray and the mixing arithmetic stays in registers.  This is what
    lets the fast simulation core ([Sim.Fast_core]) claim 0 allocations
    per simulated step while remaining seed-compatible with the
    effects-based scheduler. *)

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** [t] is the raw state bank; index = stream. *)

val create : int -> t
(** [create n] allocates [n] streams, all zeroed; call {!reseed} (or
    {!set_state}) before drawing.  @raise Invalid_argument if [n < 1]. *)

val streams : t -> int
(** Number of streams in the bank. *)

val reseed : t -> seed:int -> unit
(** [reseed t ~seed] seeds every stream [i] to the exact initial state of
    [Splitmix.split_at g i] where [g = Splitmix.of_int seed] — the run
    convention of [Sim.Runner].  Allocation-free (the root derivation is
    inlined rather than taking a boxed int64), so a preallocated bank can
    be reseeded between benchmark iterations. *)

val set_state : t -> int -> int64 -> unit
(** [set_state t i s] pins stream [i]'s raw state, e.g. to
    [Splitmix.state g] so the stream continues [g]'s future draws. *)

val get_state : t -> int -> int64

val seed_stream : t -> slot:int -> seed:int -> stream:int -> unit
(** [seed_stream t ~slot ~seed ~stream] writes into bank position [slot]
    the exact initial state that [reseed t ~seed] gives stream [stream]
    — i.e. the state of [Splitmix.split_at (Splitmix.of_int seed)
    stream].  Allocation-free.  The large-n streaming core uses this to
    run 10^8 per-process streams through a single-slot bank, deriving
    each stream just before the process executes instead of holding all
    states at once.  @raise Invalid_argument on negative [stream]. *)

val bits : t -> int -> int
(** [bits t i] advances stream [i] and returns 62 uniform bits; equals
    [Splitmix.bits] on a generator with the same state.  The stream index
    is {e not} bounds-checked (hot path). *)

val int : t -> int -> int -> int
(** [int t i bound] is uniform on [0, bound) from stream [i]; identical
    draw (and state advance) to [Splitmix.int].  Allocation-free.
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> int -> float
(** [float t i] is uniform on [0,1) with 53 bits, as [Splitmix.float].
    The result is a boxed float (OCaml boxes float returns); use in
    set-up code, not in the zero-allocation loop. *)
