(* A bank of SplitMix64 streams in one int64 bigarray.

   [Splitmix.t] is a heap record holding a boxed int64, which is fine for
   coarse-grained use but poisonous in a zero-allocation step loop: every
   state update boxes.  Bigarrays store int64s unboxed, and (verified on
   the 5.1 non-flambda compiler this repo targets) a load / mix / store
   sequence on locals inside a single function compiles with no heap
   traffic at all.  So the fast simulation core keeps one stream per
   simulated process (plus one for the scheduler) here, and the mixing
   arithmetic below is duplicated from [Splitmix] rather than shared —
   calling across the module boundary would re-box the int64s. *)

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let golden_gamma = 0x9E3779B97F4A7C15L

let create n =
  if n < 1 then invalid_arg "Flat.create: need at least one stream";
  let a = Bigarray.Array1.create Bigarray.Int64 Bigarray.C_layout n in
  Bigarray.Array1.fill a 0L;
  a

let streams (t : t) = Bigarray.Array1.dim t

let reseed (t : t) ~seed =
  (* [root] replays [Splitmix.of_int seed]; stream [i] then starts exactly
     where [Splitmix.split_at root_gen i] would: child seed =
     mix64 (root + (i+1) * gamma), and [split]'s create diffuses it once
     more.  All inlined so reseeding allocates nothing (an int64 argument
     would arrive boxed). *)
  let r = Int64.add (Int64.of_int seed) golden_gamma in
  let r = Int64.mul (Int64.logxor r (Int64.shift_right_logical r 30)) 0xBF58476D1CE4E5B9L in
  let r = Int64.mul (Int64.logxor r (Int64.shift_right_logical r 27)) 0x94D049BB133111EBL in
  let root = Int64.logxor r (Int64.shift_right_logical r 31) in
  for i = 0 to Bigarray.Array1.dim t - 1 do
    let z = Int64.add root (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let z = Int64.add z golden_gamma in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Bigarray.Array1.unsafe_set t i z
  done

let set_state (t : t) i s = Bigarray.Array1.set t i s
let get_state (t : t) i = Bigarray.Array1.get t i

let seed_stream (t : t) ~slot ~seed ~stream =
  (* Exactly the state [reseed ~seed] would give stream [stream], written
     into bank position [slot].  This is what lets a large-n streaming
     run keep a single-slot bank and derive each process's stream on the
     fly instead of materialising n+1 states up front.  Same inlined
     arithmetic as [reseed]: no boxed int64 crosses a function boundary,
     so the derivation allocates nothing. *)
  if stream < 0 then invalid_arg "Flat.seed_stream: negative stream";
  let r = Int64.add (Int64.of_int seed) golden_gamma in
  let r = Int64.mul (Int64.logxor r (Int64.shift_right_logical r 30)) 0xBF58476D1CE4E5B9L in
  let r = Int64.mul (Int64.logxor r (Int64.shift_right_logical r 27)) 0x94D049BB133111EBL in
  let root = Int64.logxor r (Int64.shift_right_logical r 31) in
  let z = Int64.add root (Int64.mul (Int64.of_int (stream + 1)) golden_gamma) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let z = Int64.add z golden_gamma in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Bigarray.Array1.set t slot z

(* Advance stream [i] and return the top 62 bits, exactly as
   [Splitmix.bits].  Self-contained: the int64 locals never cross a
   function boundary, so none of them is boxed. *)
let[@inline] bits (t : t) i =
  let s = Int64.add (Bigarray.Array1.unsafe_get t i) golden_gamma in
  Bigarray.Array1.unsafe_set t i s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

(* Rejection loop as a tail-recursive top-level function: no closure, no
   ref cell. *)
let rec reject t i bound limit =
  let v = bits t i in
  if v >= limit then reject t i bound limit else v mod bound

let[@inline] int (t : t) i bound =
  if bound <= 0 then invalid_arg "Flat.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits t i land (bound - 1)
  else
    let max_int62 = (1 lsl 62) - 1 in
    let limit = max_int62 - (max_int62 mod bound) in
    reject t i bound limit

let float (t : t) i =
  let s = Int64.add (Bigarray.Array1.unsafe_get t i) golden_gamma in
  Bigarray.Array1.unsafe_set t i s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  float_of_int (Int64.to_int (Int64.shift_right_logical z 11)) *. 0x1p-53
