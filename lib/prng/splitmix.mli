(** SplitMix64: a fast, splittable pseudo-random number generator.

    This is the generator of Steele, Lea and Flatt ("Fast splittable
    pseudorandom number generators", OOPSLA 2014).  It is the root source
    of randomness for the whole reproduction: every process coin flip,
    scheduler decision and distribution sample in this repository is
    derived from a SplitMix64 stream, so any experiment is reproducible
    from its root seed.

    Splitting matters here: the simulator gives each simulated process an
    independent stream derived deterministically from [(root seed, pid)],
    so the schedule chosen by an adversary cannot perturb the coins of
    processes it did not schedule — mirroring the independence assumptions
    used in the paper's analysis. *)

type t
(** A mutable generator state.  Not thread-safe; create one per domain or
    per simulated process. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Distinct seeds give streams
    that are independent for all practical purposes (the seed is diffused
    through two rounds of the SplitMix64 finalizer). *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy t] is a generator that will produce the same future stream as
    [t]; advancing one does not affect the other. *)

val state : t -> int64
(** [state t] is the raw 64-bit generator state.  Together with
    {!of_state} it lets {!Flat} mirror a generator in flat storage:
    [of_state (state t)] produces the exact future stream of [t]. *)

val of_state : int64 -> t
(** [of_state s] is the generator whose raw state is [s] — the inverse of
    {!state}.  Unlike {!create}, the argument is {e not} diffused. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the rest of [t]'s stream. *)

val split_at : t -> int -> t
(** [split_at t i] derives the [i]-th child stream of [t] without
    advancing [t].  Used to give simulated process [i] its own coins:
    [split_at root pid] is a pure function of the root seed and [pid]. *)

val next_int64 : t -> int64
(** [next_int64 t] returns the next 64 uniformly random bits. *)

val bits : t -> int
(** [bits t] returns 62 uniformly random non-negative bits as an OCaml
    [int] (the top bits of the next 64-bit output, shifted into range). *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  @raise Invalid_argument if
    [bound <= 0].  Uses rejection sampling, so the result is exactly
    uniform (no modulo bias). *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi].
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** [float t] is uniform on [0, 1) with 53 bits of precision. *)

val bool : t -> bool
(** [bool t] is a fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)
