let log_factorial =
  (* Exact table for small n; Stirling's series with 1/(12n) correction
     beyond.  The table keeps the Poisson pmf exact where the lower-bound
     tests exercise it. *)
  let table_size = 256 in
  let table = Array.make table_size 0. in
  let () =
    for n = 1 to table_size - 1 do
      table.(n) <- table.(n - 1) +. log (float_of_int n)
    done
  in
  fun n ->
    if n < 0 then invalid_arg "Dist.log_factorial: negative argument";
    if n < table_size then table.(n)
    else
      let x = float_of_int n in
      ((x +. 0.5) *. log x) -. x
      +. (0.5 *. log (2. *. Float.pi))
      +. (1. /. (12. *. x))
      -. (1. /. (360. *. (x ** 3.)))

let poisson_pmf ~lambda k =
  if lambda < 0. then invalid_arg "Dist.poisson_pmf: negative rate";
  if k < 0 then 0.
  else if lambda = 0. then if k = 0 then 1. else 0.
  else exp ((float_of_int k *. log lambda) -. lambda -. log_factorial k)

let poisson_cdf ~lambda n =
  if lambda < 0. then invalid_arg "Dist.poisson_cdf: negative rate";
  if n < 0 then 0.
  else if lambda = 0. then 1.
  else begin
    (* Sum pmf terms with the stable recurrence p_{k+1} = p_k * lambda/(k+1),
       started from p_0 = e^{-lambda}.  For large lambda where e^{-lambda}
       underflows, fall back to summing exponentials of log-pmfs. *)
    let p0 = exp (-.lambda) in
    if p0 > 0. then begin
      let acc = ref p0 and term = ref p0 in
      for k = 1 to n do
        term := !term *. lambda /. float_of_int k;
        acc := !acc +. !term
      done;
      Float.min 1. !acc
    end
    else begin
      let acc = ref 0. in
      for k = 0 to n do
        acc := !acc +. poisson_pmf ~lambda k
      done;
      Float.min 1. !acc
    end
  end

let poisson_quantile ~lambda u =
  if u < 0. || u >= 1. then invalid_arg "Dist.poisson_quantile: u not in [0,1)";
  if lambda = 0. then 0
  else begin
    let p0 = exp (-.lambda) in
    if p0 > 0. then begin
      (* Walk the CDF upward with the pmf recurrence. *)
      let k = ref 0 and cdf = ref p0 and term = ref p0 in
      while !cdf < u do
        incr k;
        term := !term *. lambda /. float_of_int !k;
        cdf := !cdf +. !term
      done;
      !k
    end
    else begin
      let k = ref 0 and cdf = ref (poisson_pmf ~lambda 0) in
      while !cdf < u do
        incr k;
        cdf := !cdf +. poisson_pmf ~lambda !k
      done;
      !k
    end
  end

let rec poisson_sample rng ~lambda =
  if lambda < 0. then invalid_arg "Dist.poisson_sample: negative rate";
  if lambda = 0. then 0
  else if lambda > 30. then
    (* Additivity keeps the sampler exact for large rates. *)
    poisson_sample rng ~lambda:(lambda /. 2.)
    + poisson_sample rng ~lambda:(lambda /. 2.)
  else poisson_quantile ~lambda (Splitmix.float rng)

let binomial_sample rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial_sample: negative n";
  let count = ref 0 in
  for _ = 1 to n do
    if Splitmix.bernoulli rng p then incr count
  done;
  !count

(* Draw U in (0,1] as a local float.  [Splitmix.float] is [@inline]d, so
   under ocamlopt the whole chain — state update, mix, scale, log — stays
   in float registers; the closed-over boxing this used to pay (8 words
   per draw) is gone.  Kept as a separate [@inline] function so both
   samplers below share it without reintroducing a call boundary. *)
let[@inline] uniform_open_closed rng = 1. -. Splitmix.float rng

let[@inline] geometric_sample rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric_sample: p not in (0,1]";
  if p = 1. then 0
  else begin
    (* Inverse transform: floor(ln U / ln (1-p)). *)
    let u = uniform_open_closed rng in
    int_of_float (Float.floor (log u /. log (1. -. p)))
  end

let[@inline] exponential_sample rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential_sample: rate must be positive";
  let u = uniform_open_closed rng in
  -.log u /. rate
