(* The derivation chain: start from the root seed's generator, absorb the
   experiment id one character at a time (split_at is pure in its index,
   so the chain is a pure function of the string), then descend two more
   levels for the sweep point and the trial.  No step advances a shared
   generator, so derivations commute and are order-independent. *)

let of_experiment ~root ~experiment =
  let g = Prng.Splitmix.of_int root in
  (* Absorb length first so "t1" and "t12" prefix-relate differently. *)
  let g = Prng.Splitmix.split_at g (String.length experiment) in
  String.fold_left (fun g c -> Prng.Splitmix.split_at g (Char.code c)) g experiment

let rng ~root ~experiment ~sweep_point ~trial =
  let g = of_experiment ~root ~experiment in
  let g = Prng.Splitmix.split_at g sweep_point in
  Prng.Splitmix.split_at g trial

let derive ~root ~experiment ~sweep_point ~trial =
  Prng.Splitmix.bits (rng ~root ~experiment ~sweep_point ~trial)

(* Retries descend one more level, keyed on the attempt index, so a
   retried job's seed is still a pure function of its coordinates — the
   same at any worker count, and the same when a resumed run re-attempts
   a quarantined job.  Attempt 0 must coincide with [derive] so stores
   written before retries existed stay record-identical, hence the
   special case (split_at g 0 is a child of g, not g itself). *)
let derive_attempt ~root ~experiment ~sweep_point ~trial ~attempt =
  if attempt < 0 then invalid_arg "Seed_tree.derive_attempt: attempt < 0";
  let g = rng ~root ~experiment ~sweep_point ~trial in
  let g = if attempt = 0 then g else Prng.Splitmix.split_at g attempt in
  Prng.Splitmix.bits g
