(* The derivation chain: start from the root seed's generator, absorb the
   experiment id one character at a time (split_at is pure in its index,
   so the chain is a pure function of the string), then descend two more
   levels for the sweep point and the trial.  No step advances a shared
   generator, so derivations commute and are order-independent. *)

let of_experiment ~root ~experiment =
  let g = Prng.Splitmix.of_int root in
  (* Absorb length first so "t1" and "t12" prefix-relate differently. *)
  let g = Prng.Splitmix.split_at g (String.length experiment) in
  String.fold_left (fun g c -> Prng.Splitmix.split_at g (Char.code c)) g experiment

let rng ~root ~experiment ~sweep_point ~trial =
  let g = of_experiment ~root ~experiment in
  let g = Prng.Splitmix.split_at g sweep_point in
  Prng.Splitmix.split_at g trial

let derive ~root ~experiment ~sweep_point ~trial =
  Prng.Splitmix.bits (rng ~root ~experiment ~sweep_point ~trial)
