type failure = {
  key : string;
  experiment : string;
  sweep_point : int;
  trial : int;
  attempt : int;
  seed : int;
  error : string;
  backtrace : string;
  wall_ns : float;
}

let store_path ~dir ~experiment =
  Filename.concat dir (experiment ^ ".failures.jsonl")

let failure_to_json f =
  let b = Buffer.create 256 in
  let field ?(first = false) name enc =
    if not first then Buffer.add_char b ',';
    Sink.Json.escape_string b name;
    Buffer.add_char b ':';
    enc ()
  in
  Buffer.add_char b '{';
  field ~first:true "key" (fun () -> Sink.Json.escape_string b f.key);
  field "experiment" (fun () -> Sink.Json.escape_string b f.experiment);
  field "sweep_point" (fun () ->
      Buffer.add_string b (string_of_int f.sweep_point));
  field "trial" (fun () -> Buffer.add_string b (string_of_int f.trial));
  field "attempt" (fun () -> Buffer.add_string b (string_of_int f.attempt));
  field "seed" (fun () -> Buffer.add_string b (string_of_int f.seed));
  field "error" (fun () -> Sink.Json.escape_string b f.error);
  field "backtrace" (fun () -> Sink.Json.escape_string b f.backtrace);
  field "wall_ns" (fun () -> Sink.Json.add_float b f.wall_ns);
  Buffer.add_char b '}';
  Buffer.contents b

let failure_of_json line =
  match Sink.Json.parse line with
  | Some (Sink.Json.Obj fields) -> (
    try
      Some
        {
          key = Sink.Json.str fields "key";
          experiment = Sink.Json.str fields "experiment";
          sweep_point = Sink.Json.int_ fields "sweep_point";
          trial = Sink.Json.int_ fields "trial";
          attempt = Sink.Json.int_ fields "attempt";
          seed = Sink.Json.int_ fields "seed";
          error = Sink.Json.str fields "error";
          backtrace = Sink.Json.str fields "backtrace";
          wall_ns = Sink.Json.num fields "wall_ns";
        }
    with Sink.Json.Malformed -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Reading *)

let load file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line -> (
            match failure_of_json line with
            | Some f -> go (f :: acc)
            | None -> go acc)
        in
        go [])
  end

let attempt_counts file =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt counts f.key) in
      Hashtbl.replace counts f.key (max prev (f.attempt + 1)))
    (load file);
  counts

(* ------------------------------------------------------------------ *)
(* Writing

   The sink opens its file lazily so a clean run leaves no empty
   .failures.jsonl behind; a fresh (non-append) run still removes any
   stale quarantine eagerly, so the store and its quarantine are always
   from the same run. *)

type t = {
  dir : string;
  experiment : string;
  mutable oc : out_channel option;
  mutable closed : bool;
}

let create ~dir ~experiment ~append =
  let file = store_path ~dir ~experiment in
  if not append && Sys.file_exists file then Sys.remove file;
  { dir; experiment; oc = None; closed = false }

let path t = store_path ~dir:t.dir ~experiment:t.experiment

let channel t =
  match t.oc with
  | Some oc -> oc
  | None ->
    if t.closed then invalid_arg "Fault.write: sink is closed";
    Sink.mkdir_p t.dir;
    let file = path t in
    (* Same crash hygiene as the result store: terminate a dangling
       partial line before appending. *)
    let needs_newline = Sink.ends_mid_line file in
    let oc =
      open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 file
    in
    if needs_newline then begin
      output_char oc '\n';
      flush oc
    end;
    t.oc <- Some oc;
    oc

let write t f =
  let oc = channel t in
  Io_fault.guarded_write ~oc (failure_to_json f ^ "\n")

let close t =
  t.closed <- true;
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    close_out oc
