type slot = {
  index : int;
  key : string;
  attempt : int;
  started : float;
  mutable warned : bool;
}

type t = {
  timeout : float;
  slots : slot option array;  (** one per worker; [None] between jobs *)
  lock : Mutex.t;
  mutable monitor : unit Domain.t option;
  stopping : bool Atomic.t;
}

let create ~workers ~timeout =
  if timeout <= 0. then invalid_arg "Watchdog.create: timeout <= 0";
  {
    timeout;
    slots = Array.make (max 1 workers) None;
    lock = Mutex.create ();
    monitor = None;
    stopping = Atomic.make false;
  }

let timeout t = t.timeout

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let job_started t ~worker ~index ~key ~attempt =
  with_lock t (fun () ->
      t.slots.(worker) <-
        Some
          { index; key; attempt; started = Unix.gettimeofday (); warned = false })

let job_finished t ~worker =
  with_lock t (fun () -> t.slots.(worker) <- None)

type view = { index : int; key : string; attempt : int; elapsed : float }

let current t ~worker =
  with_lock t (fun () ->
      match t.slots.(worker) with
      | None -> None
      | Some s ->
        Some
          {
            index = s.index;
            key = s.key;
            attempt = s.attempt;
            elapsed = Unix.gettimeofday () -. s.started;
          })

let default_on_stall ~key ~elapsed =
  Printf.eprintf "[watchdog] job %s still running after %.1fs\n%!" key elapsed

(* The monitor polls a few times per timeout period; fine-grained enough
   to warn promptly, coarse enough to cost nothing. *)
let start ?(on_stall = default_on_stall) t =
  if t.monitor <> None then invalid_arg "Watchdog.start: already started";
  Atomic.set t.stopping false;
  let poll = Float.min 0.25 (t.timeout /. 4.) in
  let body () =
    while not (Atomic.get t.stopping) do
      Unix.sleepf poll;
      let stalled =
        with_lock t (fun () ->
            let now = Unix.gettimeofday () in
            Array.fold_left
              (fun acc slot ->
                match slot with
                | Some s when (not s.warned) && now -. s.started > t.timeout ->
                  s.warned <- true;
                  (s.key, now -. s.started) :: acc
                | _ -> acc)
              [] t.slots)
      in
      (* Callback outside the lock: it may log, which can be slow. *)
      List.iter (fun (key, elapsed) -> on_stall ~key ~elapsed) stalled
    done
  in
  (* The monitor domain only sleeps, reads slots under the lock and
     warns on stderr; it touches no experiment state.
     repro-lint: allow domain-spawn *)
  t.monitor <- Some (Domain.spawn body)

let stop t =
  Atomic.set t.stopping true;
  match t.monitor with
  | None -> ()
  | Some d ->
    t.monitor <- None;
    Domain.join d
