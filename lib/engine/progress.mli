(** Aggregated progress/ETA lines on stderr.

    One meter per engine run; workers call {!tick} from the pool's
    consumer (already serialized), the meter rate-limits itself to one
    line per [interval] seconds so a million fast jobs do not flood the
    terminal.  The ETA is the naive linear extrapolation
    [elapsed * remaining / done] — crude, but monotone and fine for
    sweeps whose job costs vary slowly. *)

type t

val create :
  ?interval:float -> ?out:out_channel -> label:string -> total:int -> unit -> t
(** [create ~label ~total ()] starts the clock.  [interval] defaults to
    [0.5] seconds, [out] to [stderr].  [total] already-excludes jobs
    skipped by resume. *)

val tick : t -> unit
(** Record one completed job; prints at most once per [interval].
    Serialize calls externally (the engine calls this under the pool
    mutex). *)

val fail : t -> unit
(** Record one job that settled as a failure (quarantined or abandoned):
    counts toward completion for the ETA, and adds an ["(n failed)"]
    marker to the line.  Same serialization contract as {!tick}. *)

val finish : t -> unit
(** Print the final "done" line unconditionally. *)
