let default_workers () = min 8 (Domain.recommended_domain_count ())

let run_serial ~f ~consume tasks =
  Array.iteri (fun i task -> consume i (f i task)) tasks

let run_parallel ~workers ~f ~consume tasks =
  let n = Array.length tasks in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let failure = Atomic.make None in
  let lock = Mutex.create () in
  let worker () =
    let rec loop () =
      if not (Atomic.get stop) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i tasks.(i) with
          | result ->
            Mutex.lock lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock lock)
              (fun () -> consume i result)
          | exception e ->
            (* Keep the first failure; let the other workers drain out. *)
            let bt = Printexc.get_raw_backtrace () in
            if Atomic.compare_and_set failure None (Some (e, bt)) then
              Atomic.set stop true);
          loop ()
        end
      end
    in
    (try loop ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       if Atomic.compare_and_set failure None (Some (e, bt)) then
         Atomic.set stop true)
  in
  let domains = List.init workers (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run ~workers ~f ~consume tasks =
  let n = Array.length tasks in
  if n > 0 then
    let workers = min workers n in
    if workers <= 1 then run_serial ~f ~consume tasks
    else run_parallel ~workers ~f ~consume tasks

let map ~workers f tasks =
  let results = Array.map (fun _ -> None) tasks in
  run ~workers
    ~f:(fun _ task -> f task)
    ~consume:(fun i r -> results.(i) <- Some r)
    tasks;
  Array.map
    (function Some r -> r | None -> assert false (* run is exhaustive *))
    results
