let default_workers () = min 8 (Domain.recommended_domain_count ())

let run_serial ~f ~consume tasks =
  Array.iteri (fun i task -> consume i (f i task)) tasks

let run_parallel ~workers ~f ~consume tasks =
  let n = Array.length tasks in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let failure = Atomic.make None in
  let lock = Mutex.create () in
  let worker () =
    let rec loop () =
      if not (Atomic.get stop) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i tasks.(i) with
          | result ->
            Mutex.lock lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock lock)
              (fun () -> consume i result)
          | exception e ->
            (* Keep the first failure; let the other workers drain out. *)
            let bt = Printexc.get_raw_backtrace () in
            if Atomic.compare_and_set failure None (Some (e, bt)) then
              Atomic.set stop true);
          loop ()
        end
      end
    in
    (try loop ()
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       if Atomic.compare_and_set failure None (Some (e, bt)) then
         Atomic.set stop true)
  in
  let domains = List.init workers (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run ~workers ~f ~consume tasks =
  let n = Array.length tasks in
  if n > 0 then
    let workers = min workers n in
    if workers <= 1 then run_serial ~f ~consume tasks
    else run_parallel ~workers ~f ~consume tasks

let map ~workers f tasks =
  let results = Array.map (fun _ -> None) tasks in
  run ~workers
    ~f:(fun _ task -> f task)
    ~consume:(fun i r -> results.(i) <- Some r)
    tasks;
  Array.map
    (function Some r -> r | None -> assert false (* run is exhaustive *))
    results

(* ------------------------------------------------------------------ *)
(* Guarded execution: the fault-tolerant path.

   Differences from [run]:

   - [f] is expected to capture its own job failures (the engine wraps
     job execution in a result type); an exception escaping [f] or
     [consume] is an infrastructure fault — it still stops the pool and
     re-raises, but only after every domain is accounted for, so no fd
     or domain leaks on the failure path.
   - [should_stop] is polled before each claim: once true, no new tasks
     are claimed, in-flight ones drain, and the outcome is [Interrupted]
     if anything was left unclaimed (graceful SIGINT/SIGTERM).
   - with a [watchdog], a worker whose in-flight job exceeds
     [timeout + grace] is abandoned: its task is settled as failed via
     [on_abandon] and the pool stops waiting for that domain.  Each task
     settles exactly once — if the stuck computation eventually returns,
     its result is discarded. *)

type outcome = Completed | Interrupted

let run_guarded ~workers ?watchdog ?(should_stop = fun () -> false)
    ?(grace = 2.0) ?(on_abandon = fun (_ : Watchdog.view) -> ()) ~f ~consume
    tasks =
  let n = Array.length tasks in
  if n = 0 then Completed
  else begin
    let workers = max 1 (min workers n) in
    let next = Atomic.make 0 in
    let fatal = Atomic.make None in
    let lock = Mutex.create () in
    let settled = Array.make n false in
    let done_flags = Array.init workers (fun _ -> Atomic.make false) in
    let zombies = Array.init workers (fun _ -> Atomic.make false) in
    (* Settle task [i] exactly once, under the lock shared with every
       other settle — late results from abandoned workers fall through. *)
    let settle i g =
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          if not settled.(i) then begin
            settled.(i) <- true;
            g ()
          end)
    in
    let body w =
      let rec loop () =
        if
          (not (Atomic.get zombies.(w)))
          && Atomic.get fatal = None
          && not (should_stop ())
        then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match f ~worker:w i tasks.(i) with
            | result -> settle i (fun () -> consume i result)
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set fatal None (Some (e, bt))));
            loop ()
          end
        end
      in
      (try loop ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set fatal None (Some (e, bt))));
      Atomic.set done_flags.(w) true
    in
    let domains = Array.init workers (fun w -> Domain.spawn (fun () -> body w)) in
    let abandoned = Array.make workers false in
    (match watchdog with
    | None -> Array.iter Domain.join domains
    | Some wd ->
      let deadline = Watchdog.timeout wd +. Float.max 0. grace in
      let rec wait () =
        let pending = ref false in
        Array.iteri
          (fun w _ ->
            if (not abandoned.(w)) && not (Atomic.get done_flags.(w)) then begin
              match Watchdog.current wd ~worker:w with
              | Some v when v.Watchdog.elapsed > deadline ->
                (* The worker is stuck inside the job past all patience:
                   settle its task as failed and stop waiting for it.
                   The zombie flag makes the domain exit its claim loop
                   if the computation ever returns. *)
                Atomic.set zombies.(w) true;
                abandoned.(w) <- true;
                settle v.Watchdog.index (fun () -> on_abandon v)
              | _ -> pending := true
            end)
          domains;
        if !pending then begin
          Unix.sleepf 0.02;
          wait ()
        end
      in
      wait ();
      Array.iteri (fun w d -> if not abandoned.(w) then Domain.join d) domains);
    match Atomic.get fatal with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      let incomplete =
        Mutex.lock lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock lock)
          (fun () -> Array.exists not settled)
      in
      if incomplete then Interrupted else Completed
  end
