(** The large-n batch driver behind `repro_cli bench --large`.

    Fans the trial jobs of a list of (experiment, ctx) plans across
    domains via {!Plan.execute} — so the sweep inherits the seed tree,
    the crash-safe JSONL store, quarantine and [--resume] — then folds
    the stores into one committed artifact ([bench/BENCH_1.json], kind
    ["bench-large"]).

    Determinism: everything in the artifact except the timing fields
    ([ns_per_op], [wall_s]) is a pure function of (seed, grid).  Worker
    count, resume points and record order never change the measured
    values; [aggregate] additionally sorts rows by (experiment, series,
    n) so even the artifact bytes agree (timing aside). *)

val kind : string
(** ["bench-large"] — the artifact [kind] field `repro_cli bench --check`
    and [doctor] dispatch on (the kernel microbench artifact of
    [bin/bench_kernels] is kind ["bench"]). *)

val schema_version : int

type row = {
  experiment : string;  (** registry id, e.g. ["t1l"] *)
  series : string;  (** series label, e.g. ["rebatch_paper"] *)
  n : int;  (** decade (processes for t1l, contention for t5l) *)
  trials : int;
  mean_max_steps : float;
  min_max_steps : float;
  max_max_steps : float;
  mean_total_steps : float;
  mean_space_used : float;
  mean_max_name : float;
  words_per_op : float;
      (** worst trial's minor words per step — the zero-allocation gate *)
  ns_per_op : float;
      (** wall per step across all trials; machine-dependent, reported but
          never gated *)
  wall_s : float;  (** total wall across trials *)
}

type artifact = { schema : int; seed : int; rows : row list }

(** {1 Execution} *)

type run = {
  outcomes : Plan.outcome list;  (** one per experiment, in plan order *)
  interrupted : bool;
  quarantined : int;  (** total across experiments *)
}

val execute :
  ?workers:int ->
  ?resume:bool ->
  ?progress:bool ->
  ?retries:int ->
  ?should_stop:(unit -> bool) ->
  ?log:(string -> unit) ->
  store_dir:string ->
  plans:(Harness.Experiment.t * Harness.Experiment.ctx) list ->
  unit ->
  run
(** Run every plan's jobs into [<store_dir>/<id>.jsonl] via
    {!Plan.execute}, writing a shared run manifest before and after.  On
    [resume], the existing manifest (if any) is validated against the
    first plan's ctx and the experiment ids first — mismatches
    [failwith] rather than silently mixing parameters.  Experiments
    after an interrupted one are not started. *)

val aggregate :
  store_dir:string ->
  plans:(Harness.Experiment.t * Harness.Experiment.ctx) list ->
  artifact
(** Fold the stores of [plans] into artifact rows: records deduplicated
    by job key (first wins, matching the resume scan), grouped by
    (series, n) with the series parsed from the ["series/n=..."] point
    labels, trials summed in trial order, rows sorted by (experiment,
    series, n).  @raise Invalid_argument on an empty plan list. *)

(** {1 Artifact i/o} *)

val to_json : artifact -> string

val of_json : string -> artifact option
(** [None] if malformed or not kind ["bench-large"]. *)

val load : string -> artifact option

val save : dir:string -> artifact -> string
(** Write to the next free [<dir>/BENCH_<k>.json] (numbering shared with
    the kind-["bench"] artifacts of [bin/bench_kernels]); returns the
    path. *)

(** {1 Gates} *)

val zero_alloc_budget : float
(** [0.01] words/op: a boxing step costs >= 1 word/op, the metering
    overhead orders of magnitude less, so this separates them at every
    decade. *)

val audit : artifact -> string list
(** Structural problems for [repro_cli doctor]: schema mismatch, no
    rows, a per-(experiment, series) n grid that is not consecutive
    decades (each n exactly 10x the previous), empty decades, impossible
    step/space means, non-finite values.  Empty list = healthy. *)

val check : threshold:float -> baseline:artifact -> current:artifact -> string list
(** Regression problems of [current] against a committed [baseline]: a
    current row missing from the baseline, [words_per_op] over
    {!zero_alloc_budget}, or mean max steps / space outside
    [threshold]-relative bands (at least +/-1 step and +/-2 cells wide,
    since small decades are integer-quantized).  A scaled-down run is a
    row subset of the full baseline, so smoke checks pass the exact
    gate the full run commits.  Timing is never checked.  Baseline rows
    absent from [current] are fine (that is what a smoke run is). *)

val render : artifact -> string
(** Aligned table of every row (max steps, steps/proc, space/n, ns/op,
    words/op, wall). *)

val series_of_label : string -> string
(** ["rebatch_paper/n=1000"] -> ["rebatch_paper"] (exposed for tests). *)
