(* The large-n batch driver: fan (series, n, trial) jobs across domains
   through [Plan.execute] (hence [Pool], the seed tree, the JSONL store
   and resume), then fold the stores into a committed BENCH artifact.

   Everything the artifact contains except the timing fields is a pure
   function of (seed, grid): jobs are seeded per (sweep_point, trial)
   coordinate by [Seed_tree], records are deduplicated by key and
   aggregated in sorted order, so one domain or eight produce the same
   rows — the domain-count-independence property test_sweep pins.

   Artifact kind is "bench-large" (schema 1), sharing the BENCH_<k>.json
   numbering of bin/bench_kernels (kind "bench") in the same directory;
   `repro_cli bench --check` and `doctor` dispatch on the kind field. *)

open Harness

let kind = "bench-large"
let schema_version = 1

type row = {
  experiment : string;
  series : string;
  n : int;
  trials : int;
  mean_max_steps : float;
  min_max_steps : float;
  max_max_steps : float;
  mean_total_steps : float;
  mean_space_used : float;
  mean_max_name : float;
  words_per_op : float;  (* worst trial — the 0-alloc gate *)
  ns_per_op : float;  (* mean wall per step; informational, never gated *)
  wall_s : float;  (* total wall across trials *)
}

type artifact = { schema : int; seed : int; rows : row list }

(* ------------------------------------------------------------------ *)
(* Execution *)

type run = {
  outcomes : Plan.outcome list;
  interrupted : bool;
  quarantined : int;
}

let execute ?workers ?(resume = false) ?(progress = true) ?(retries = 0)
    ?(should_stop = fun () -> false)
    ?(log = fun msg -> Printf.eprintf "%s\n%!" msg) ~store_dir
    ~(plans : (Experiment.t * Experiment.ctx) list) () =
  let ids = List.map (fun (e, _) -> e.Experiment.id) plans in
  let workers = Option.value ~default:(Pool.default_workers ()) workers in
  (match (plans, resume) with
  | (_, ctx) :: _, true -> (
    match Sink.read_manifest ~dir:store_dir with
    | None -> ()
    | Some manifest -> (
      match
        Checkpoint.validate_manifest ~manifest ~ids ~seed:ctx.Experiment.seed
          ~trials:ctx.Experiment.trials ~scale:ctx.Experiment.scale
      with
      | Ok () -> ()
      | Error msg -> failwith msg))
  | _ -> ());
  let manifest status =
    match plans with
    | (_, ctx) :: _ ->
      Plan.write_manifest ~out_dir:store_dir ~ids ~workers ~resume ~status
        ~retries ~job_timeout:None ~ctx
    | [] -> ()
  in
  manifest "running";
  let rec go acc stopped = function
    | [] -> (List.rev acc, stopped)
    | (exp, ctx) :: rest ->
      if stopped then (List.rev acc, true)
      else begin
        match
          Plan.execute ~workers ~resume ~progress ~retries ~should_stop ~log
            ~out_dir:store_dir ~ctx exp
        with
        | None ->
          failwith
            (Printf.sprintf "Sweep.execute: experiment %s has no job view"
               exp.Experiment.id)
        | Some outcome -> go (outcome :: acc) outcome.Plan.interrupted rest
      end
  in
  let outcomes, interrupted = go [] false plans in
  let quarantined =
    List.fold_left (fun acc o -> acc + o.Plan.quarantined) 0 outcomes
  in
  manifest
    (if interrupted then "interrupted"
     else if quarantined > 0 then "quarantined"
     else "completed");
  { outcomes; interrupted; quarantined }

(* ------------------------------------------------------------------ *)
(* Aggregation *)

let series_of_label label =
  match String.index_opt label '/' with
  | Some i -> String.sub label 0 i
  | None -> label

let value key r =
  match List.assoc_opt key r.Sink.values with
  | Some v -> v
  | None ->
    failwith
      (Printf.sprintf "Sweep.aggregate: record %s has no %S value" r.Sink.key
         key)

let rows_of_store ~store ~experiment =
  let records = Checkpoint.records store in
  (* Dedup by key, keeping the first occurrence (the one a resume scan
     counts); later duplicates can only come from crash overlap. *)
  let seen = Hashtbl.create 256 in
  let records =
    List.filter
      (fun r ->
        if Hashtbl.mem seen r.Sink.key then false
        else begin
          Hashtbl.replace seen r.Sink.key ();
          r.Sink.experiment = experiment
        end)
      records
  in
  let groups = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let n =
        match List.assoc_opt "n" r.Sink.params with
        | Some f -> int_of_float f
        | None -> failwith "Sweep.aggregate: record has no n param"
      in
      let key = (series_of_label r.Sink.point_label, n) in
      Hashtbl.replace groups key
        (r :: (try Hashtbl.find groups key with Not_found -> [])))
    records;
  let keys =
    List.sort_uniq compare (List.of_seq (Hashtbl.to_seq_keys groups))
  in
  List.map
    (fun (series, n) ->
      let rs =
        List.sort
          (fun a b -> compare a.Sink.trial b.Sink.trial)
          (Hashtbl.find groups (series, n))
      in
      let trials = List.length rs in
      let fold init f g = List.fold_left (fun a r -> f a (g r)) init rs in
      let mean g = fold 0. ( +. ) g /. float_of_int trials in
      let total_wall_ns = fold 0. ( +. ) (fun r -> r.Sink.wall_ns) in
      let total_steps_all = fold 0. ( +. ) (value "total_steps") in
      {
        experiment;
        series;
        n;
        trials;
        mean_max_steps = mean (value "max_steps");
        min_max_steps = fold infinity min (value "max_steps");
        max_max_steps = fold 0. max (value "max_steps");
        mean_total_steps = mean (value "total_steps");
        mean_space_used = mean (value "space_used");
        mean_max_name = mean (value "max_name");
        words_per_op = fold 0. max (value "words_per_op");
        ns_per_op =
          (if total_steps_all > 0. then total_wall_ns /. total_steps_all
           else 0.);
        wall_s = total_wall_ns /. 1e9;
      })
    keys

let aggregate ~store_dir ~(plans : (Experiment.t * Experiment.ctx) list) =
  match plans with
  | [] -> invalid_arg "Sweep.aggregate: no plans"
  | (_, ctx0) :: _ ->
    let rows =
      List.concat_map
        (fun (exp, _) ->
          let id = exp.Experiment.id in
          rows_of_store
            ~store:(Sink.store_path ~dir:store_dir ~experiment:id)
            ~experiment:id)
        plans
    in
    { schema = schema_version; seed = ctx0.Experiment.seed; rows }

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let row_to_json r =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  Jsonu.escape_string b "experiment";
  Buffer.add_char b ':';
  Jsonu.escape_string b r.experiment;
  let sfield k v =
    Buffer.add_char b ',';
    Jsonu.escape_string b k;
    Buffer.add_char b ':';
    Jsonu.escape_string b v
  in
  let ifield k v =
    Buffer.add_char b ',';
    Jsonu.escape_string b k;
    Buffer.add_char b ':';
    Buffer.add_string b (string_of_int v)
  in
  let ffield k v =
    Buffer.add_char b ',';
    Jsonu.escape_string b k;
    Buffer.add_char b ':';
    Jsonu.add_float b v
  in
  sfield "series" r.series;
  ifield "n" r.n;
  ifield "trials" r.trials;
  ffield "mean_max_steps" r.mean_max_steps;
  ffield "min_max_steps" r.min_max_steps;
  ffield "max_max_steps" r.max_max_steps;
  ffield "mean_total_steps" r.mean_total_steps;
  ffield "mean_space_used" r.mean_space_used;
  ffield "mean_max_name" r.mean_max_name;
  ffield "words_per_op" r.words_per_op;
  ffield "ns_per_op" r.ns_per_op;
  ffield "wall_s" r.wall_s;
  Buffer.add_char b '}';
  Buffer.contents b

let to_json a =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"kind\":%S,\"schema\":%d,\"seed\":%d,\"rows\":[\n" kind
       a.schema a.seed);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "  ";
      Buffer.add_string b (row_to_json r))
    a.rows;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let row_of_json fields =
  {
    experiment = Jsonu.str fields "experiment";
    series = Jsonu.str fields "series";
    n = Jsonu.int_ fields "n";
    trials = Jsonu.int_ fields "trials";
    mean_max_steps = Jsonu.num fields "mean_max_steps";
    min_max_steps = Jsonu.num fields "min_max_steps";
    max_max_steps = Jsonu.num fields "max_max_steps";
    mean_total_steps = Jsonu.num fields "mean_total_steps";
    mean_space_used = Jsonu.num fields "mean_space_used";
    mean_max_name = Jsonu.num fields "mean_max_name";
    words_per_op = Jsonu.num fields "words_per_op";
    ns_per_op = Jsonu.num fields "ns_per_op";
    wall_s = Jsonu.num fields "wall_s";
  }

let of_json text =
  match Jsonu.parse text with
  | Some (Jsonu.Obj fields) -> (
    try
      if Jsonu.str fields "kind" <> kind then None
      else
        let rows =
          match List.assoc_opt "rows" fields with
          | Some (Jsonu.Arr items) ->
            List.map
              (function
                | Jsonu.Obj f -> row_of_json f
                | _ -> raise Jsonu.Malformed)
              items
          | _ -> raise Jsonu.Malformed
        in
        Some
          {
            schema = Jsonu.int_ fields "schema";
            seed = Jsonu.int_ fields "seed";
            rows;
          }
    with Jsonu.Malformed | Not_found -> None)
  | _ -> None

let load file =
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in_bin file in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_json text
  end

(* Shares the BENCH_<k>.json numbering with bin/bench_kernels: next free
   index in [dir], whatever kind its existing artifacts are. *)
let next_index ~dir =
  let rec go k =
    if Sys.file_exists (Filename.concat dir (Printf.sprintf "BENCH_%d.json" k))
    then go (k + 1)
    else k
  in
  go 0

let save ~dir a =
  Sink.mkdir_p dir;
  let file =
    Filename.concat dir (Printf.sprintf "BENCH_%d.json" (next_index ~dir))
  in
  let oc = open_out file in
  output_string oc (to_json a);
  close_out oc;
  file

(* ------------------------------------------------------------------ *)
(* Audit (doctor) and regression check *)

let audit a =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if a.schema <> schema_version then
    problem "schema %d (this build reads %d)" a.schema schema_version;
  if a.rows = [] then problem "artifact has no rows";
  let groups = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = (r.experiment, r.series) in
      Hashtbl.replace groups key
        (r :: (try Hashtbl.find groups key with Not_found -> [])))
    a.rows;
  let keys =
    List.sort_uniq compare (List.of_seq (Hashtbl.to_seq_keys groups))
  in
  List.iter
    (fun (experiment, series) ->
      let rows = List.rev (Hashtbl.find groups (experiment, series)) in
      let rec check_grid = function
        | a :: (b :: _ as rest) ->
          if b.n <> 10 * a.n then
            problem "%s/%s: n grid not decade-monotone (%d then %d, want %d)"
              experiment series a.n b.n (10 * a.n);
          check_grid rest
        | _ -> ()
      in
      check_grid rows;
      List.iter
        (fun r ->
          if r.trials < 1 then
            problem "%s/%s n=%d: empty decade (no samples)" experiment series
              r.n;
          if r.mean_max_steps < 1. then
            problem "%s/%s n=%d: mean_max_steps %g < 1" experiment series r.n
              r.mean_max_steps;
          if r.mean_space_used < 1. then
            problem "%s/%s n=%d: mean_space_used %g < 1" experiment series r.n
              r.mean_space_used;
          List.iter
            (fun (label, v) ->
              if not (Float.is_finite v) then
                problem "%s/%s n=%d: %s is not finite" experiment series r.n
                  label)
            [
              ("mean_max_steps", r.mean_max_steps);
              ("mean_total_steps", r.mean_total_steps);
              ("mean_space_used", r.mean_space_used);
              ("words_per_op", r.words_per_op);
              ("ns_per_op", r.ns_per_op);
            ])
        rows)
    keys;
  List.rev !problems

(* A streaming-core step that boxes shows up as >= 1 word/op; the meter
   itself contributes a few words per multi-thousand-step trial.  0.01
   words/op separates the two by orders of magnitude on every decade. *)
let zero_alloc_budget = 0.01

let check ~threshold ~baseline ~current =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if current.rows = [] then problem "current artifact has no rows";
  List.iter
    (fun cur ->
      let where = Printf.sprintf "%s/%s n=%d" cur.experiment cur.series cur.n in
      if cur.words_per_op > zero_alloc_budget then
        problem "%s: words/op %.4f exceeds the zero-allocation budget %.2f"
          where cur.words_per_op zero_alloc_budget;
      match
        List.find_opt
          (fun b ->
            b.experiment = cur.experiment
            && b.series = cur.series
            && b.n = cur.n)
          baseline.rows
      with
      | None -> problem "%s: not in the baseline artifact" where
      | Some base ->
        let band = Float.max 1.0 (threshold *. base.mean_max_steps) in
        if Float.abs (cur.mean_max_steps -. base.mean_max_steps) > band then
          problem "%s: mean max steps %.2f vs baseline %.2f (band +/-%.2f)"
            where cur.mean_max_steps base.mean_max_steps band;
        let sband = Float.max 2.0 (threshold *. base.mean_space_used) in
        if Float.abs (cur.mean_space_used -. base.mean_space_used) > sband
        then
          problem "%s: space used %.0f vs baseline %.0f (band +/-%.0f)" where
            cur.mean_space_used base.mean_space_used sband)
    current.rows;
  List.rev !problems

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render a =
  let table =
    Table.create
      ~columns:
        [
          ("series", Table.Left);
          ("n", Table.Right);
          ("trials", Table.Right);
          ("max steps", Table.Right);
          ("steps/proc", Table.Right);
          ("space/n", Table.Right);
          ("ns/op", Table.Right);
          ("words/op", Table.Right);
          ("wall s", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Printf.sprintf "%s/%s" r.experiment r.series;
          Table.cell_int r.n;
          Table.cell_int r.trials;
          Table.cell_float r.mean_max_steps;
          Table.cell_float (r.mean_total_steps /. float_of_int r.n);
          Table.cell_float (r.mean_space_used /. float_of_int r.n);
          Table.cell_float r.ns_per_op;
          Table.cell_float ~decimals:3 r.words_per_op;
          Table.cell_float ~decimals:1 r.wall_s;
        ])
    a.rows;
  Table.render table
