(* The schema version is bumped whenever the record or manifest layout
   changes incompatibly.  "2" added the per-record [attempt] field and the
   manifest [schema]/[git]/[status] fields (fault-tolerance layer). *)
let schema_version = "2"

type record = {
  key : string;
  experiment : string;
  sweep_point : int;
  point_label : string;
  trial : int;
  attempt : int;
  seed : int;
  params : (string * float) list;
  values : (string * float) list;
  wall_ns : float;
}

(* ------------------------------------------------------------------ *)
(* JSON subset: encoding *)

module Json = struct
  let escape_string b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let add_float b x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.0f" x)
    else if Float.is_nan x then Buffer.add_string b "\"nan\""
    else if x = Float.infinity then Buffer.add_string b "\"inf\""
    else if x = Float.neg_infinity then Buffer.add_string b "\"-inf\""
    else Buffer.add_string b (Printf.sprintf "%.17g" x)

  let add_assoc b kvs =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        add_float b v)
      kvs;
    Buffer.add_char b '}'

  (* Decoding: a recursive-descent parser for the subset we emit (flat
     objects of strings, numbers and string->number objects).  Anything
     outside the subset — or a line cut short by a crash — yields None. *)

  exception Malformed

  type t =
    | Num of float
    | Int of int  (** a numeric lexeme that is an exact OCaml int *)
    | Str of string
    | Obj of (string * t) list

  let parse_exn (s : string) : t =
    let pos = ref 0 in
    let len = String.length s in
    let peek () = if !pos >= len then raise Malformed else s.[!pos] in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < len
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c = if peek () <> c then raise Malformed else advance () in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'; advance ()
          | '\\' -> Buffer.add_char b '\\'; advance ()
          | '/' -> Buffer.add_char b '/'; advance ()
          | 'n' -> Buffer.add_char b '\n'; advance ()
          | 'r' -> Buffer.add_char b '\r'; advance ()
          | 't' -> Buffer.add_char b '\t'; advance ()
          | 'u' ->
            advance ();
            if !pos + 4 > len then raise Malformed;
            let hex = String.sub s !pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> raise Malformed
            in
            (* Our encoder only emits \u00XX for control bytes. *)
            if code < 0x100 then Buffer.add_char b (Char.chr code)
            else raise Malformed;
            pos := !pos + 4
          | _ -> raise Malformed);
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < len && is_num_char s.[!pos] do
        advance ()
      done;
      if !pos = start then raise Malformed;
      let lexeme = String.sub s start (!pos - start) in
      (* Integer lexemes stay exact: a 62-bit SplitMix seed does not
         survive a round-trip through float. *)
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lexeme with
        | Some f -> Num f
        | None -> raise Malformed)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '"' -> Str (parse_string ())
      | '{' -> parse_obj ()
      | _ -> parse_number ()
    and parse_obj () =
      expect '{';
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> raise Malformed
        in
        Obj (members [])
      end
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then raise Malformed;
    v

  let parse s = match parse_exn s with v -> Some v | exception Malformed -> None

  (* Field accessors shared by the record and failure decoders. *)

  let str fields name =
    match List.assoc_opt name fields with
    | Some (Str s) -> s
    | _ -> raise Malformed

  let num fields name =
    match List.assoc_opt name fields with
    | Some (Num f) -> f
    | Some (Int i) -> float_of_int i
    | Some (Str "nan") -> Float.nan
    | Some (Str "inf") -> Float.infinity
    | Some (Str "-inf") -> Float.neg_infinity
    | _ -> raise Malformed

  let num_opt fields name ~default =
    match List.assoc_opt name fields with
    | None -> default
    | Some _ -> num fields name

  (* Exact integer fields (indices, seeds).  A float lexeme that happens
     to be integral is accepted for robustness against schema-1 stores
     re-encoded by other tools, but our own encoder always emits the
     plain decimal form. *)
  let int_ fields name =
    match List.assoc_opt name fields with
    | Some (Int i) -> i
    | Some (Num f) when Float.is_integer f && Float.abs f < 1e15 ->
      int_of_float f
    | _ -> raise Malformed

  let int_opt fields name ~default =
    match List.assoc_opt name fields with
    | None -> default
    | Some _ -> int_ fields name

  let assoc fields name =
    match List.assoc_opt name fields with
    | Some (Obj kvs) ->
      List.map
        (fun (k, v) ->
          match v with
          | Num f -> (k, f)
          | Int i -> (k, float_of_int i)
          | Str "nan" -> (k, Float.nan)
          | Str "inf" -> (k, Float.infinity)
          | Str "-inf" -> (k, Float.neg_infinity)
          | _ -> raise Malformed)
        kvs
    | _ -> raise Malformed
end

let escape_string = Json.escape_string
let add_float = Json.add_float
let add_assoc = Json.add_assoc

let record_to_json r =
  let b = Buffer.create 256 in
  let field ?(first = false) name enc =
    if not first then Buffer.add_char b ',';
    escape_string b name;
    Buffer.add_char b ':';
    enc ()
  in
  Buffer.add_char b '{';
  field ~first:true "key" (fun () -> escape_string b r.key);
  field "experiment" (fun () -> escape_string b r.experiment);
  field "sweep_point" (fun () -> Buffer.add_string b (string_of_int r.sweep_point));
  field "point_label" (fun () -> escape_string b r.point_label);
  field "trial" (fun () -> Buffer.add_string b (string_of_int r.trial));
  field "attempt" (fun () -> Buffer.add_string b (string_of_int r.attempt));
  field "seed" (fun () -> Buffer.add_string b (string_of_int r.seed));
  field "params" (fun () -> add_assoc b r.params);
  field "values" (fun () -> add_assoc b r.values);
  field "wall_ns" (fun () -> add_float b r.wall_ns);
  Buffer.add_char b '}';
  Buffer.contents b

let record_of_json line =
  match Json.parse line with
  | Some (Json.Obj fields) -> (
    try
      Some
        {
          key = Json.str fields "key";
          experiment = Json.str fields "experiment";
          sweep_point = Json.int_ fields "sweep_point";
          point_label = Json.str fields "point_label";
          trial = Json.int_ fields "trial";
          (* Absent in schema-1 stores (pre-retry); those records were
             necessarily first attempts. *)
          attempt = Json.int_opt fields "attempt" ~default:0;
          seed = Json.int_ fields "seed";
          params = Json.assoc fields "params";
          values = Json.assoc fields "values";
          wall_ns = Json.num fields "wall_ns";
        }
    with Json.Malformed -> None)
  | _ -> None

let float_eq a b = a = b || (Float.is_nan a && Float.is_nan b)

let assoc_eq a b =
  List.length a = List.length b
  && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && float_eq v1 v2) a b

let equal_ignoring_wall a b =
  a.key = b.key && a.experiment = b.experiment
  && a.sweep_point = b.sweep_point
  && a.point_label = b.point_label
  && a.trial = b.trial && a.attempt = b.attempt && a.seed = b.seed
  && assoc_eq a.params b.params
  && assoc_eq a.values b.values

(* ------------------------------------------------------------------ *)
(* Filesystem *)

let rec mkdir_p dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      failwith (Printf.sprintf "mkdir_p: %s exists and is not a directory" dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir ->
      (* lost a race with a concurrent mkdir; fine *)
      ()
  end

(* ------------------------------------------------------------------ *)
(* Writing *)

type t = { oc : out_channel; file : string }

let store_path ~dir ~experiment = Filename.concat dir (experiment ^ ".jsonl")

(* A crash can leave the store ending in a partial record with no
   newline.  Appending straight after it would glue the next record onto
   the garbage and corrupt both, so terminate the dangling line first —
   it then parses as one malformed line that every scan skips. *)
let ends_mid_line file =
  Sys.file_exists file
  &&
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      size > 0
      &&
      (seek_in ic (size - 1);
       input_char ic <> '\n'))

let create ~dir ~experiment ~append =
  mkdir_p dir;
  let file = store_path ~dir ~experiment in
  let flags =
    if append then [ Open_wronly; Open_append; Open_creat ]
    else [ Open_wronly; Open_trunc; Open_creat ]
  in
  let needs_newline = append && ends_mid_line file in
  let oc = open_out_gen flags 0o644 file in
  if needs_newline then begin
    output_char oc '\n';
    flush oc
  end;
  { oc; file }

let path t = t.file

let write t r =
  output_string t.oc (record_to_json r);
  output_char t.oc '\n';
  flush t.oc

let close t = close_out t.oc

(* ------------------------------------------------------------------ *)
(* Run manifest *)

let manifest_path dir = Filename.concat dir "manifest.json"

let write_manifest ~dir fields =
  mkdir_p dir;
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "  ";
      escape_string b k;
      Buffer.add_string b ": ";
      escape_string b v)
    fields;
  Buffer.add_string b "\n}\n";
  let file = manifest_path dir in
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc

let read_manifest ~dir =
  let file = manifest_path dir in
  if not (Sys.file_exists file) then None
  else
    let ic = open_in_bin file in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse contents with
    | Some (Json.Obj fields) ->
      let strings =
        List.filter_map
          (fun (k, v) -> match v with Json.Str s -> Some (k, s) | _ -> None)
          fields
      in
      Some strings
    | _ -> None
