(* The schema version is bumped whenever the record or manifest layout
   changes incompatibly.  "2" added the per-record [attempt] field and the
   manifest [schema]/[git]/[status] fields (fault-tolerance layer). *)
let schema_version = "2"

type record = {
  key : string;
  experiment : string;
  sweep_point : int;
  point_label : string;
  trial : int;
  attempt : int;
  seed : int;
  params : (string * float) list;
  values : (string * float) list;
  wall_ns : float;
}

(* ------------------------------------------------------------------ *)
(* JSON subset: the shared Jsonu codec, re-exported for the sibling
   stores (Fault) and audits (repro_cli doctor) that predate the move. *)

module Json = Jsonu

let escape_string = Json.escape_string
let add_float = Json.add_float
let add_assoc = Json.add_assoc

let record_to_json r =
  let b = Buffer.create 256 in
  let field ?(first = false) name enc =
    if not first then Buffer.add_char b ',';
    escape_string b name;
    Buffer.add_char b ':';
    enc ()
  in
  Buffer.add_char b '{';
  field ~first:true "key" (fun () -> escape_string b r.key);
  field "experiment" (fun () -> escape_string b r.experiment);
  field "sweep_point" (fun () -> Buffer.add_string b (string_of_int r.sweep_point));
  field "point_label" (fun () -> escape_string b r.point_label);
  field "trial" (fun () -> Buffer.add_string b (string_of_int r.trial));
  field "attempt" (fun () -> Buffer.add_string b (string_of_int r.attempt));
  field "seed" (fun () -> Buffer.add_string b (string_of_int r.seed));
  field "params" (fun () -> add_assoc b r.params);
  field "values" (fun () -> add_assoc b r.values);
  field "wall_ns" (fun () -> add_float b r.wall_ns);
  Buffer.add_char b '}';
  Buffer.contents b

let record_of_json line =
  match Json.parse line with
  | Some (Json.Obj fields) -> (
    try
      Some
        {
          key = Json.str fields "key";
          experiment = Json.str fields "experiment";
          sweep_point = Json.int_ fields "sweep_point";
          point_label = Json.str fields "point_label";
          trial = Json.int_ fields "trial";
          (* Absent in schema-1 stores (pre-retry); those records were
             necessarily first attempts. *)
          attempt = Json.int_opt fields "attempt" ~default:0;
          seed = Json.int_ fields "seed";
          params = Json.assoc fields "params";
          values = Json.assoc fields "values";
          wall_ns = Json.num fields "wall_ns";
        }
    with Json.Malformed -> None)
  | _ -> None

let float_eq a b = a = b || (Float.is_nan a && Float.is_nan b)

let assoc_eq a b =
  List.length a = List.length b
  && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && float_eq v1 v2) a b

let equal_ignoring_wall a b =
  a.key = b.key && a.experiment = b.experiment
  && a.sweep_point = b.sweep_point
  && a.point_label = b.point_label
  && a.trial = b.trial && a.attempt = b.attempt && a.seed = b.seed
  && assoc_eq a.params b.params
  && assoc_eq a.values b.values

(* ------------------------------------------------------------------ *)
(* Filesystem *)

let rec mkdir_p dir =
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      failwith (Printf.sprintf "mkdir_p: %s exists and is not a directory" dir)
  end
  else begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir ->
      (* lost a race with a concurrent mkdir; fine *)
      ()
  end

(* ------------------------------------------------------------------ *)
(* Writing *)

type t = { oc : out_channel; file : string }

let store_path ~dir ~experiment = Filename.concat dir (experiment ^ ".jsonl")

(* A crash can leave the store ending in a partial record with no
   newline.  Appending straight after it would glue the next record onto
   the garbage and corrupt both, so terminate the dangling line first —
   it then parses as one malformed line that every scan skips. *)
let ends_mid_line file =
  Sys.file_exists file
  &&
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      size > 0
      &&
      (seek_in ic (size - 1);
       input_char ic <> '\n'))

let create ~dir ~experiment ~append =
  mkdir_p dir;
  let file = store_path ~dir ~experiment in
  let flags =
    if append then [ Open_wronly; Open_append; Open_creat ]
    else [ Open_wronly; Open_trunc; Open_creat ]
  in
  let needs_newline = append && ends_mid_line file in
  let oc = open_out_gen flags 0o644 file in
  if needs_newline then begin
    output_char oc '\n';
    flush oc
  end;
  { oc; file }

let path t = t.file

let write t r =
  Io_fault.guarded_write ~oc:t.oc (record_to_json r ^ "\n")

let close t = close_out t.oc

(* ------------------------------------------------------------------ *)
(* Run manifest *)

let manifest_path dir = Filename.concat dir "manifest.json"

let write_manifest ~dir fields =
  mkdir_p dir;
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "  ";
      escape_string b k;
      Buffer.add_string b ": ";
      escape_string b v)
    fields;
  Buffer.add_string b "\n}\n";
  let file = manifest_path dir in
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc

let read_manifest ~dir =
  let file = manifest_path dir in
  if not (Sys.file_exists file) then None
  else
    let ic = open_in_bin file in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.parse contents with
    | Some (Json.Obj fields) ->
      let strings =
        List.filter_map
          (fun (k, v) -> match v with Json.Str s -> Some (k, s) | _ -> None)
          fields
      in
      Some strings
    | _ -> None
