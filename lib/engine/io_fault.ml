exception Injected of string

type kind = Drop | Short of int | After_append

type plan = { op : int; kind : kind }

(* Armed plan plus the count of guarded writes seen since arming.  The
   mutex makes arm/disarm from a driver thread safe against concurrent
   store writes; in the unarmed fast path the lock is uncontended and
   the cost is irrelevant next to the flush that follows. *)
let lock = Mutex.create ()
let state : (plan * int ref) option ref = ref None

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm plan = with_lock (fun () -> state := Some (plan, ref 0))
let disarm () = with_lock (fun () -> state := None)
let armed () = with_lock (fun () -> Option.is_some !state)

let writes_seen () =
  with_lock (fun () ->
      match !state with None -> 0 | Some (_, seen) -> !seen)

let guarded_write ~oc payload =
  let fire =
    with_lock (fun () ->
        match !state with
        | None -> None
        | Some (plan, seen) ->
          let op = !seen in
          incr seen;
          if op = plan.op then Some (plan.kind, op) else None)
  in
  match fire with
  | None ->
    output_string oc payload;
    flush oc
  | Some (Drop, op) ->
    raise (Injected (Printf.sprintf "io_fault: dropped write #%d (ENOSPC)" op))
  | Some (Short k, op) ->
    let k = max 0 (min k (String.length payload)) in
    output_substring oc payload 0 k;
    flush oc;
    raise
      (Injected
         (Printf.sprintf "io_fault: short write (%d/%d bytes) at write #%d" k
            (String.length payload) op))
  | Some (After_append, op) ->
    output_string oc payload;
    flush oc;
    raise
      (Injected
         (Printf.sprintf
            "io_fault: killed between append and fsync at write #%d" op))
