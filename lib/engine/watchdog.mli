(** Stuck-job detection via per-worker heartbeats.

    Each pool worker reports the job attempt it is about to run
    ({!job_started}) and reports back when it returns ({!job_finished});
    the slot between the two is the heartbeat.  A monitor domain
    ({!start}) scans the slots a few times per timeout period and calls
    [on_stall] once per attempt that exceeds the timeout — the default
    just warns on stderr; the engine's enforcement lives elsewhere:

    - an attempt that {e finishes} over the timeout is failed and
      quarantined by {!Plan} (checked against the attempt's own wall
      clock, so the decision is deterministic and identical at any
      [--jobs] value);
    - an attempt that {e never} finishes is eventually abandoned by
      {!Pool.run_guarded}, which uses {!current} to identify the stuck
      job, records it as failed, and stops waiting for that worker.

    OCaml domains cannot be killed, so "abandon" means the worker domain
    is left behind, parked in the stuck computation; its result, if it
    ever materializes, is discarded.  The watchdog guarantees the rest of
    the run is not held hostage — the same crash-tolerance contract the
    paper's algorithms give their processes (§2). *)

type t

val create : workers:int -> timeout:float -> t
(** Heartbeat slots for [workers] workers.  [timeout] is in seconds.
    @raise Invalid_argument if [timeout <= 0]. *)

val timeout : t -> float

val job_started :
  t -> worker:int -> index:int -> key:string -> attempt:int -> unit
(** Heartbeat: worker [worker] starts [attempt] of the job at task
    [index] with stable key [key]. *)

val job_finished : t -> worker:int -> unit
(** Heartbeat: the worker's current attempt returned (either way). *)

type view = { index : int; key : string; attempt : int; elapsed : float }

val current : t -> worker:int -> view option
(** The worker's in-flight attempt and how long it has been running, or
    [None] between jobs.  Used by {!Pool.run_guarded} to abandon workers
    stuck past [timeout] plus its grace period. *)

val start : ?on_stall:(key:string -> elapsed:float -> unit) -> t -> unit
(** Spawn the monitor domain.  [on_stall] fires at most once per attempt,
    from the monitor domain, outside the heartbeat lock; the default
    prints a warning to stderr.  @raise Invalid_argument if already
    started. *)

val stop : t -> unit
(** Stop and join the monitor domain.  Idempotent. *)
