(** Crash-safe resume: recover completed work from a JSONL store.

    The JSONL store is its own checkpoint — every line is one finished
    job, flushed when it completed.  On [--resume] the engine scans the
    existing store, collects the job keys that are already present, and
    schedules only the rest.  A line truncated mid-write by the crash
    fails to parse and is simply not counted, so its job runs again; the
    deterministic seed tree guarantees the rerun produces the record the
    original run would have.

    Resuming is only sound against the store the parameters were written
    with, so {!validate_manifest} checks the stored [manifest.json]
    (seed, trial count, scale, experiment set, schema version) against
    the new invocation and reports the offending field on mismatch. *)

val records : string -> Sink.record list
(** [records file] is every well-formed record in [file], in file order.
    A missing file is an empty store.  Malformed lines (truncated tails,
    stray garbage) are skipped. *)

(** {1 Scanning} *)

type scan = {
  keys : (string, unit) Hashtbl.t;  (** distinct job keys present *)
  records : int;  (** well-formed lines *)
  duplicates : int;  (** well-formed lines whose key was already seen *)
  malformed_mid : int;
      (** malformed lines {e before} the final line — corruption, not a
          crash artifact; surfaced in the resume summary and by
          [repro_cli doctor] rather than silently skipped *)
  malformed_tail : bool;
      (** the final line is malformed — the expected leftover of a crash
          mid-write (its job simply reruns) *)
}

val empty_scan : unit -> scan
(** The scan of a store that does not exist yet. *)

val scan_store : string -> scan
(** One pass over the store.  A missing file yields {!empty_scan}. *)

val completed_keys : string -> (string, unit) Hashtbl.t
(** [scan_store file].keys — kept for callers that only dedupe. *)

val pending :
  completed:(string, unit) Hashtbl.t ->
  key:('a -> string) ->
  'a list ->
  'a list * int
(** [pending ~completed ~key jobs] partitions [jobs] into the ones still
    to run (order preserved) and the count of already-completed ones
    being skipped. *)

(** {1 Manifest validation} *)

val validate_manifest :
  manifest:(string * string) list ->
  ids:string list ->
  seed:int ->
  trials:int ->
  scale:float ->
  (unit, string) result
(** [validate_manifest ~manifest ~ids ~seed ~trials ~scale] checks a
    stored manifest (from {!Sink.read_manifest}) against the parameters
    of a new [--resume] invocation: schema version, [seed], [trials] and
    [scale] must match exactly, and every id in [ids] must belong to the
    stored experiment set.  Fields the (older) manifest does not carry
    are skipped.  The error message names the offending manifest
    field. *)
