(** Crash-safe resume: recover completed work from a JSONL store.

    The JSONL store is its own checkpoint — every line is one finished
    job, flushed when it completed.  On [--resume] the engine scans the
    existing store, collects the job keys that are already present, and
    schedules only the rest.  A line truncated mid-write by the crash
    fails to parse and is simply not counted, so its job runs again; the
    deterministic seed tree guarantees the rerun produces the record the
    original run would have. *)

val records : string -> Sink.record list
(** [records file] is every well-formed record in [file], in file order.
    A missing file is an empty store.  Malformed lines (truncated tails,
    stray garbage) are skipped. *)

val completed_keys : string -> (string, unit) Hashtbl.t
(** The set of [Sink.record.key]s present in the store. *)

val pending :
  completed:(string, unit) Hashtbl.t ->
  key:('a -> string) ->
  'a list ->
  'a list * int
(** [pending ~completed ~key jobs] partitions [jobs] into the ones still
    to run (order preserved) and the count of already-completed ones
    being skipped. *)
