type t = {
  label : string;
  total : int;
  interval : float;
  out : out_channel;
  started : float;
  mutable completed : int;
  mutable failed : int;
  mutable last_printed : float;
}

let create ?(interval = 0.5) ?(out = stderr) ~label ~total () =
  {
    label;
    total;
    interval;
    out;
    started = Unix.gettimeofday ();
    completed = 0;
    failed = 0;
    last_printed = 0.;
  }

let line t now =
  let elapsed = now -. t.started in
  let pct =
    if t.total = 0 then 100.
    else 100. *. float_of_int t.completed /. float_of_int t.total
  in
  let eta =
    if t.completed = 0 || t.completed >= t.total then ""
    else
      let remaining =
        elapsed
        *. float_of_int (t.total - t.completed)
        /. float_of_int t.completed
      in
      Printf.sprintf " eta %.1fs" remaining
  in
  let failed =
    if t.failed = 0 then "" else Printf.sprintf " (%d failed)" t.failed
  in
  Printf.sprintf "[%s] %d/%d jobs (%.0f%%) %.1fs%s%s" t.label t.completed
    t.total pct elapsed eta failed

let bump t =
  t.completed <- t.completed + 1;
  let now = Unix.gettimeofday () in
  if now -. t.last_printed >= t.interval then begin
    t.last_printed <- now;
    Printf.fprintf t.out "%s\n%!" (line t now)
  end

let tick t = bump t

let fail t =
  t.failed <- t.failed + 1;
  bump t

let finish t = Printf.fprintf t.out "%s\n%!" (line t (Unix.gettimeofday ()))
