open Harness

type outcome = {
  experiment : string;
  total_jobs : int;
  skipped : int;
  executed : int;
  quarantined : int;
  failed_keys : string list;
  failures : int;
  malformed : int;
  interrupted : bool;
  store : string;
  failures_store : string;
}

(* Wall-clock reads in this module are measurement payloads — a record's
   wall_ns and the manifest's written_at stamp, both documented as
   nondeterministic — never control flow or record identity.
   repro-lint: allow wall-clock *)
let wall_now () = Unix.gettimeofday ()

let job_key ~experiment (job : Experiment.job) =
  Printf.sprintf "%s/%d/%d" experiment job.Experiment.sweep_point
    job.Experiment.trial

let plan ~ctx (exp : Experiment.t) =
  match exp.Experiment.jobs with None -> None | Some jobs -> Some (jobs ctx)

let execute ?workers ?(resume = false) ?(progress = true) ?(retries = 0)
    ?job_timeout ?(should_stop = fun () -> false) ?(grace = 2.0)
    ?(log = fun msg -> Printf.eprintf "%s\n%!" msg) ~out_dir
    ~(ctx : Experiment.ctx) (exp : Experiment.t) =
  match plan ~ctx exp with
  | None -> None
  | Some jobs ->
    let workers =
      match workers with Some w -> max 1 w | None -> Pool.default_workers ()
    in
    let retries = max 0 retries in
    let budget = retries + 1 in
    let id = exp.Experiment.id in
    let store = Sink.store_path ~dir:out_dir ~experiment:id in
    let failures_store = Fault.store_path ~dir:out_dir ~experiment:id in
    let total_jobs = List.length jobs in
    let scan =
      if resume then Checkpoint.scan_store store else Checkpoint.empty_scan ()
    in
    if scan.Checkpoint.malformed_mid > 0 then
      log
        (Printf.sprintf
           "[%s] warning: %d malformed mid-file line(s) in %s — corrupt \
            records re-run; audit with `repro_cli doctor'"
           id scan.Checkpoint.malformed_mid store);
    let prior =
      if resume then Fault.attempt_counts failures_store else Hashtbl.create 1
    in
    let prior_attempts key =
      Option.value ~default:0 (Hashtbl.find_opt prior key)
    in
    let todo, skipped =
      if resume then
        Checkpoint.pending ~completed:scan.Checkpoint.keys
          ~key:(job_key ~experiment:id) jobs
      else (jobs, 0)
    in
    (* Quarantined jobs re-schedule only while retry budget remains;
       ones that already burned [retries + 1] attempts in earlier runs
       stay quarantined (pass a larger [retries] to re-open them). *)
    let todo, exhausted =
      List.partition
        (fun j -> prior_attempts (job_key ~experiment:id j) < budget)
        todo
    in
    let tasks = Array.of_list todo in
    let n = Array.length tasks in
    let quarantined_keys =
      ref (List.rev (List.rev_map (job_key ~experiment:id) exhausted))
    in
    if exhausted <> [] then
      log
        (Printf.sprintf
           "[%s] %d job(s) already exhausted their retry budget; left \
            quarantined: %s"
           id (List.length exhausted)
           (String.concat " " !quarantined_keys));
    let failure_count = ref 0 in
    let executed = ref 0 in
    let interrupted = ref false in
    let sink = Sink.create ~dir:out_dir ~experiment:id ~append:resume in
    let fsink = Fault.create ~dir:out_dir ~experiment:id ~append:resume in
    let wd =
      Option.map (fun t -> Watchdog.create ~workers ~timeout:t) job_timeout
    in
    Fun.protect
      ~finally:(fun () ->
        (* Failure path included: watchdog joined, both stores closed,
           before any exception propagates. *)
        Option.iter Watchdog.stop wd;
        Fault.close fsink;
        Sink.close sink)
      (fun () ->
        Option.iter
          (fun w ->
            Watchdog.start w
              ~on_stall:(fun ~key ~elapsed ->
                log
                  (Printf.sprintf
                     "[%s] watchdog: job %s running for %.1fs (--job-timeout \
                      %gs)"
                     id key elapsed (Watchdog.timeout w))))
          wd;
        let meter =
          if progress then Some (Progress.create ~label:id ~total:n ())
          else None
        in
        let mkfail (job : Experiment.job) ~attempt ~seed ~error ~backtrace
            ~wall_ns =
          {
            Fault.key = job_key ~experiment:id job;
            experiment = id;
            sweep_point = job.Experiment.sweep_point;
            trial = job.Experiment.trial;
            attempt;
            seed;
            error;
            backtrace;
            wall_ns;
          }
        in
        let derive (job : Experiment.job) ~attempt =
          Seed_tree.derive_attempt ~root:ctx.Experiment.seed ~experiment:id
            ~sweep_point:job.Experiment.sweep_point
            ~trial:job.Experiment.trial ~attempt
        in
        (* One job: bounded deterministic retry.  Returns the failure
           records of this run's failed attempts plus the successful
           record, if any attempt within budget succeeded. *)
        let run_one ~worker i (job : Experiment.job) =
          let key = job_key ~experiment:id job in
          let rec go attempt acc =
            if attempt >= budget then (List.rev acc, None)
            else begin
              let seed = derive job ~attempt in
              Option.iter
                (fun w -> Watchdog.job_started w ~worker ~index:i ~key ~attempt)
                wd;
              let t0 = wall_now () in
              let result =
                match job.Experiment.run_job ~seed with
                | values -> Ok values
                | exception e -> Error (e, Printexc.get_raw_backtrace ())
              in
              let wall_ns = (wall_now () -. t0) *. 1e9 in
              Option.iter (fun w -> Watchdog.job_finished w ~worker) wd;
              match result with
              | Error (e, bt) ->
                go (attempt + 1)
                  (mkfail job ~attempt ~seed ~error:(Printexc.to_string e)
                     ~backtrace:(Printexc.raw_backtrace_to_string bt)
                     ~wall_ns
                  :: acc)
              | Ok values -> (
                match job_timeout with
                | Some t when wall_ns > t *. 1e9 ->
                  (* Finished, but over deadline: the wall clock of the
                     attempt itself decides, so the verdict is the same
                     at any worker count. *)
                  go (attempt + 1)
                    (mkfail job ~attempt ~seed
                       ~error:
                         (Printf.sprintf
                            "timeout: attempt took %.3fs (--job-timeout %gs)"
                            (wall_ns /. 1e9) t)
                       ~backtrace:"" ~wall_ns
                    :: acc)
                | _ ->
                  ( List.rev acc,
                    Some
                      {
                        Sink.key;
                        experiment = id;
                        sweep_point = job.Experiment.sweep_point;
                        point_label = job.Experiment.point_label;
                        trial = job.Experiment.trial;
                        attempt;
                        seed;
                        params = job.Experiment.params;
                        values;
                        wall_ns;
                      } ))
            end
          in
          go (prior_attempts key) []
        in
        let consume i (fails, record) =
          incr executed;
          List.iter
            (fun fl ->
              Fault.write fsink fl;
              incr failure_count)
            fails;
          match record with
          | Some r ->
            Sink.write sink r;
            Option.iter Progress.tick meter
          | None ->
            quarantined_keys :=
              job_key ~experiment:id tasks.(i) :: !quarantined_keys;
            Option.iter Progress.fail meter
        in
        let on_abandon (v : Watchdog.view) =
          let job = tasks.(v.Watchdog.index) in
          incr executed;
          Fault.write fsink
            (mkfail job ~attempt:v.Watchdog.attempt
               ~seed:(derive job ~attempt:v.Watchdog.attempt)
               ~error:
                 (Printf.sprintf
                    "watchdog: abandoned after %.1fs (--job-timeout %gs); \
                     worker domain left parked in the stuck attempt"
                    v.Watchdog.elapsed
                    (Option.value ~default:0. job_timeout))
               ~backtrace:"" ~wall_ns:(v.Watchdog.elapsed *. 1e9));
          incr failure_count;
          quarantined_keys := v.Watchdog.key :: !quarantined_keys;
          Option.iter Progress.fail meter
        in
        let pool_outcome =
          Pool.run_guarded ~workers ?watchdog:wd ~should_stop ~grace
            ~on_abandon ~f:run_one ~consume tasks
        in
        interrupted := pool_outcome = Pool.Interrupted;
        Option.iter Progress.finish meter);
    Some
      {
        experiment = id;
        total_jobs;
        skipped;
        executed = !executed;
        quarantined = List.length !quarantined_keys;
        failed_keys = List.rev !quarantined_keys;
        failures = !failure_count;
        malformed = scan.Checkpoint.malformed_mid;
        interrupted = !interrupted;
        store;
        failures_store;
      }

(* ------------------------------------------------------------------ *)
(* Manifest *)

let git_describe =
  lazy
    (try
       let ic =
         Unix.open_process_in "git describe --always --dirty 2>/dev/null"
       in
       let line = try input_line ic with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let write_manifest ~out_dir ~ids ~workers ~resume ~status ~retries ~job_timeout
    ~(ctx : Experiment.ctx) =
  Sink.write_manifest ~dir:out_dir
    [
      ("schema", Sink.schema_version);
      ("git", Lazy.force git_describe);
      ("experiments", String.concat " " ids);
      ("seed", string_of_int ctx.Experiment.seed);
      ("trials", string_of_int ctx.Experiment.trials);
      ("scale", Printf.sprintf "%g" ctx.Experiment.scale);
      ("substrate", Substrate.to_string ctx.Experiment.substrate);
      ("workers", string_of_int workers);
      ("retries", string_of_int retries);
      ( "job_timeout",
        match job_timeout with
        | None -> "none"
        | Some t -> Printf.sprintf "%g" t );
      ("resume", string_of_bool resume);
      ("status", status);
      ("written_at", Printf.sprintf "%.0f" (wall_now ()));
    ]
