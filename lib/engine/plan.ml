open Harness

type outcome = {
  experiment : string;
  total_jobs : int;
  skipped : int;
  executed : int;
  store : string;
}

let job_key ~experiment (job : Experiment.job) =
  Printf.sprintf "%s/%d/%d" experiment job.Experiment.sweep_point
    job.Experiment.trial

let plan ~ctx (exp : Experiment.t) =
  match exp.Experiment.jobs with None -> None | Some jobs -> Some (jobs ctx)

let execute ?workers ?(resume = false) ?(progress = true) ~out_dir
    ~(ctx : Experiment.ctx) (exp : Experiment.t) =
  match plan ~ctx exp with
  | None -> None
  | Some jobs ->
    let workers =
      match workers with Some w -> max 1 w | None -> Pool.default_workers ()
    in
    let id = exp.Experiment.id in
    let store = Sink.store_path ~dir:out_dir ~experiment:id in
    let total_jobs = List.length jobs in
    let todo, skipped =
      if resume then
        Checkpoint.pending
          ~completed:(Checkpoint.completed_keys store)
          ~key:(job_key ~experiment:id) jobs
      else (jobs, 0)
    in
    let sink = Sink.create ~dir:out_dir ~experiment:id ~append:resume in
    Fun.protect
      ~finally:(fun () -> Sink.close sink)
      (fun () ->
        let meter =
          if progress then
            Some (Progress.create ~label:id ~total:(List.length todo) ())
          else None
        in
        let run_one _i (job : Experiment.job) =
          let seed =
            Seed_tree.derive ~root:ctx.Experiment.seed ~experiment:id
              ~sweep_point:job.Experiment.sweep_point
              ~trial:job.Experiment.trial
          in
          let t0 = Unix.gettimeofday () in
          let values = job.Experiment.run_job ~seed in
          let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
          {
            Sink.key = job_key ~experiment:id job;
            experiment = id;
            sweep_point = job.Experiment.sweep_point;
            point_label = job.Experiment.point_label;
            trial = job.Experiment.trial;
            seed;
            params = job.Experiment.params;
            values;
            wall_ns;
          }
        in
        Pool.run ~workers ~f:run_one
          ~consume:(fun _i record ->
            Sink.write sink record;
            Option.iter Progress.tick meter)
          (Array.of_list todo);
        Option.iter Progress.finish meter);
    Some
      { experiment = id; total_jobs; skipped; executed = List.length todo; store }

let write_manifest ~out_dir ~ids ~workers ~resume ~(ctx : Experiment.ctx) =
  Sink.write_manifest ~dir:out_dir
    [
      ("experiments", String.concat " " ids);
      ("seed", string_of_int ctx.Experiment.seed);
      ("trials", string_of_int ctx.Experiment.trials);
      ("scale", Printf.sprintf "%g" ctx.Experiment.scale);
      ("workers", string_of_int workers);
      ("resume", string_of_bool resume);
      ("written_at", Printf.sprintf "%.0f" (Unix.gettimeofday ()));
    ]
