(** Orchestration: turn an experiment's sweep into jobs and execute them
    fault-tolerantly.

    The plan for one experiment is the list returned by its
    [Experiment.jobs] view.  {!execute} (1) drops jobs already present in
    the store when resuming, (2) fans the rest out on {!Pool.run_guarded},
    (3) appends one {!Sink.record} per successful job and one
    {!Fault.failure} per failed attempt as they complete, and (4) reports
    progress.  The pipeline is deterministic end to end: worker count,
    resume points and retry sequences change only [wall_ns] and record
    order, never the measured values — per-attempt seeds come from
    {!Seed_tree.derive_attempt}.

    Fault-tolerance contract:
    - a raising job is retried up to [retries] times, each failed attempt
      quarantined in [<out_dir>/<id>.failures.jsonl]; other jobs are
      unaffected;
    - a job finishing over [job_timeout] seconds counts as a failed
      attempt; one stuck past [job_timeout + grace] is abandoned by the
      watchdog ({!Pool.run_guarded}) and quarantined;
    - [should_stop] (poll it from a signal flag) stops claiming new jobs
      and drains in-flight ones; the outcome then has
      [interrupted = true];
    - on resume, previously quarantined jobs re-schedule with the
      attempts they have already burned, up to the budget. *)

type outcome = {
  experiment : string;
  total_jobs : int;  (** size of the full plan *)
  skipped : int;  (** already complete in the store (resume) *)
  executed : int;  (** jobs settled in this invocation (success or not) *)
  quarantined : int;
      (** jobs with no successful record: budget exhausted (now or in a
          previous run) or abandoned by the watchdog *)
  failed_keys : string list;  (** keys of the quarantined jobs *)
  failures : int;  (** failure records appended to the quarantine *)
  malformed : int;
      (** malformed mid-file store lines found while resuming (see
          {!Checkpoint.scan}); [0] on fresh runs *)
  interrupted : bool;  (** stopped early via [should_stop] / watchdog *)
  store : string;  (** path of the JSONL result file *)
  failures_store : string;  (** path of the quarantine file *)
}

val job_key : experiment:string -> Harness.Experiment.job -> string
(** ["<experiment>/<sweep_point>/<trial>"]. *)

val plan :
  ctx:Harness.Experiment.ctx ->
  Harness.Experiment.t ->
  Harness.Experiment.job list option
(** The experiment's job list, or [None] if it has no trial-grain view. *)

val execute :
  ?workers:int ->
  ?resume:bool ->
  ?progress:bool ->
  ?retries:int ->
  ?job_timeout:float ->
  ?should_stop:(unit -> bool) ->
  ?grace:float ->
  ?log:(string -> unit) ->
  out_dir:string ->
  ctx:Harness.Experiment.ctx ->
  Harness.Experiment.t ->
  outcome option
(** [execute ~out_dir ~ctx exp] runs [exp]'s plan into
    [<out_dir>/<id>.jsonl], quarantining failures into
    [<out_dir>/<id>.failures.jsonl].

    [workers] defaults to {!Pool.default_workers}[ ()]; [resume]
    (default [false]) keeps the existing store and skips completed keys,
    otherwise both store and quarantine are reset; [progress] (default
    [true]) prints stderr progress lines; [retries] (default [0]) is the
    number of re-attempts after a job's first failure — a job failing
    [retries + 1] times is quarantined; [job_timeout] (seconds, default
    none) fails attempts that run over it and, together with [grace]
    (default [2.0]), bounds how long a stuck attempt can hold a worker;
    [should_stop] (default: never) makes the run stop claiming new jobs
    once true; [log] (default: stderr) receives warnings (malformed
    store lines, watchdog stalls, exhausted-budget jobs).

    Returns [None] if the experiment exposes no job view (nothing is
    written).  All sinks are closed and the watchdog joined even when an
    infrastructure exception (store write failure) propagates. *)

val write_manifest :
  out_dir:string ->
  ids:string list ->
  workers:int ->
  resume:bool ->
  status:string ->
  retries:int ->
  job_timeout:float option ->
  ctx:Harness.Experiment.ctx ->
  unit
(** Record the run parameters in [<out_dir>/manifest.json], including the
    engine schema version ({!Sink.schema_version}), a [git describe] of
    the working tree ("unknown" outside a repo), and [status] —
    ["running"], ["completed"] or ["interrupted"] — so resume validation
    ({!Checkpoint.validate_manifest}) and [repro_cli doctor] have ground
    truth to check against.  Write it once with [status:"running"] before
    executing and again with the final status. *)
