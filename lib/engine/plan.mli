(** Orchestration: turn an experiment's sweep into jobs and execute them.

    The plan for one experiment is the list returned by its
    [Experiment.jobs] view, each job paired with its {!Seed_tree} seed
    and its stable key.  {!execute} then (1) drops jobs already present
    in the store when resuming, (2) fans the rest out on {!Pool},
    (3) appends one {!Sink.record} per job as it completes, and
    (4) reports progress.  The pipeline is deterministic end to end:
    worker count and resume points change only [wall_ns] and record
    order, never the measured values. *)

type outcome = {
  experiment : string;
  total_jobs : int;  (** size of the full plan *)
  skipped : int;  (** already complete in the store (resume) *)
  executed : int;  (** run in this invocation *)
  store : string;  (** path of the JSONL file *)
}

val job_key : experiment:string -> Harness.Experiment.job -> string
(** ["<experiment>/<sweep_point>/<trial>"]. *)

val plan :
  ctx:Harness.Experiment.ctx ->
  Harness.Experiment.t ->
  Harness.Experiment.job list option
(** The experiment's job list, or [None] if it has no trial-grain view. *)

val execute :
  ?workers:int ->
  ?resume:bool ->
  ?progress:bool ->
  out_dir:string ->
  ctx:Harness.Experiment.ctx ->
  Harness.Experiment.t ->
  outcome option
(** [execute ~out_dir ~ctx exp] runs [exp]'s plan into
    [<out_dir>/<id>.jsonl].  [workers] defaults to
    {!Pool.default_workers}[ ()]; [resume] (default [false]) keeps the
    existing store and skips completed keys, otherwise the store is
    truncated; [progress] (default [true]) prints stderr progress lines.
    Returns [None] if the experiment exposes no job view (nothing is
    written).  Per-job seeds are [Seed_tree.derive ~root:ctx.seed]. *)

val write_manifest :
  out_dir:string ->
  ids:string list ->
  workers:int ->
  resume:bool ->
  ctx:Harness.Experiment.ctx ->
  unit
(** Record the run parameters in [<out_dir>/manifest.json]. *)
