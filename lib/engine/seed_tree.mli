(** Deterministic per-job seed derivation.

    Every trial job executed by the engine gets its seed as a pure
    function of [(root, experiment, sweep_point, trial)], derived through
    SplitMix64 stream splitting ({!Prng.Splitmix.split_at}).  Because the
    derivation never depends on scheduling — not on worker count, not on
    completion order, not on which jobs a resumed run skips — [--jobs 1]
    and [--jobs 8] produce bit-identical per-trial statistics, and a
    resumed run re-executes a missing job with exactly the seed the
    original run would have used.

    This mirrors how the simulator already keys per-process coin streams
    on [(seed, pid)] (see {!Prng.Splitmix}): the seed tree is one level
    up, keying per-job streams on the experiment coordinates. *)

val rng :
  root:int -> experiment:string -> sweep_point:int -> trial:int -> Prng.Splitmix.t
(** The job's private generator.  Distinct coordinates give streams that
    are independent for all practical purposes. *)

val derive : root:int -> experiment:string -> sweep_point:int -> trial:int -> int
(** [derive ~root ~experiment ~sweep_point ~trial] is a non-negative
    62-bit seed drawn from {!rng} — what the engine passes to
    [Experiment.job.run_job].  Stable across calls, processes and
    library versions (pure SplitMix64 arithmetic, no [Hashtbl.hash]). *)

val derive_attempt :
  root:int ->
  experiment:string ->
  sweep_point:int ->
  trial:int ->
  attempt:int ->
  int
(** The seed for retry [attempt] of a job (see {!Fault}): one more
    derivation level keyed on the attempt index, so retries are
    reproducible at any [--jobs] value and across resumes.
    [derive_attempt ~attempt:0] equals {!derive} — first attempts are
    bit-compatible with stores written before retries existed.
    @raise Invalid_argument if [attempt < 0]. *)
