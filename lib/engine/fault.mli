(** Per-job fault isolation: the quarantine store.

    A raising (or timed-out) trial job must not kill the pool — the
    engine captures it as one structured {!failure} line in
    [<dir>/<experiment>.failures.jsonl] and moves on.  Each failed
    attempt appends one line, so a job that exhausts a retry budget of
    [r] leaves exactly [r + 1] lines, each carrying the exact seed that
    attempt ran with ({!Seed_tree.derive_attempt}) — enough to replay any
    failure in isolation.

    The quarantine is append-only JSONL with the same crash hygiene as
    the result store ({!Sink}): flushed per line, dangling partial lines
    terminated before appending.  On resume, {!attempt_counts} tells the
    planner how much of each job's budget previous runs already burned,
    so an interrupted retry sequence continues where it stopped instead
    of restarting at attempt 0. *)

type failure = {
  key : string;  (** the job key, same format as {!Sink.record.key} *)
  experiment : string;
  sweep_point : int;
  trial : int;
  attempt : int;  (** which attempt failed, starting at 0 *)
  seed : int;  (** the {!Seed_tree.derive_attempt} seed of that attempt *)
  error : string;
      (** [Printexc.to_string] of the exception, or a [timeout:]/
          [watchdog:] description for enforced deadlines *)
  backtrace : string;  (** raw backtrace, [""] if unavailable *)
  wall_ns : float;  (** wall-clock nanoseconds the attempt burned *)
}

val store_path : dir:string -> experiment:string -> string
(** [<dir>/<experiment>.failures.jsonl]. *)

val failure_to_json : failure -> string
(** One line, no trailing newline. *)

val failure_of_json : string -> failure option
(** [None] on malformed input. *)

val load : string -> failure list
(** Every well-formed failure in the file, in file order.  A missing
    file is an empty quarantine; malformed lines are skipped. *)

val attempt_counts : string -> (string, int) Hashtbl.t
(** Per job key, the number of attempts already burned:
    [max attempt + 1] over the key's failure lines.  Robust to duplicate
    lines (a crash between quarantine write and result write can replay
    one attempt). *)

(** {1 Writing} *)

type t

val create : dir:string -> experiment:string -> append:bool -> t
(** A quarantine sink.  [append:false] (fresh run) deletes any stale
    failures file immediately; the file itself is only (re)created when
    the first failure is written, so clean runs leave no empty
    quarantine.  [append:true] is the resume path. *)

val path : t -> string

val write : t -> failure -> unit
(** Appends one line and flushes.  Not thread-safe; the engine serializes
    calls through {!Pool}'s consumer mutex.  Goes through
    {!Io_fault.guarded_write} like the result store. *)

val close : t -> unit
