(** A [Domain]-based worker pool for independent trial jobs.

    Tasks are drawn from a shared atomic counter (the "queue" is just the
    next-unclaimed index, so claiming is a single [fetch_and_add]);
    results are handed to a consumer callback serialized by an internal
    mutex, so the consumer may write to a shared sink without further
    locking.

    Two execution modes:

    - {!run} — the historical fail-fast mode: the first exception
      anywhere aborts the run (after joining every domain) and re-raises.
    - {!run_guarded} — the fault-tolerant mode used by {!Plan}: job
      failures are the {e caller's} values (wrap them in a result type
      inside [f]), the pool adds cooperative interruption, watchdog
      abandonment of stuck workers, and a leak-free failure path.

    The pool executes; it does not seed.  Determinism across worker
    counts is the seed tree's job ({!Seed_tree}): as long as [f] is a
    pure function of its task, the multiset of results is independent of
    [workers]. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()] capped at 8 — the same policy as
    {!Shm.Domain_runner}. *)

val run :
  workers:int ->
  f:(int -> 'a -> 'b) ->
  consume:(int -> 'b -> unit) ->
  'a array ->
  unit
(** [run ~workers ~f ~consume tasks] applies [f i tasks.(i)] to every
    task and calls [consume i result] exactly once per task, in
    completion order, under the pool's mutex.  [f] runs concurrently on
    up to [workers] domains and must not touch shared mutable state.

    If any [f] or [consume] raises, remaining unclaimed tasks are
    abandoned, all domains are joined, and the first exception is
    re-raised in the calling domain — no domain leaks on the failure
    path.  With [workers <= 1] everything runs inline in the calling
    domain, in task order. *)

val map : workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~workers f tasks] is order-preserving parallel map, built on
    {!run}. *)

(** {1 Guarded execution} *)

type outcome =
  | Completed  (** every task settled (consumed or abandoned-as-failed) *)
  | Interrupted
      (** [should_stop] fired (or a worker was abandoned) while tasks
          were still unclaimed; in-flight work was drained first *)

val run_guarded :
  workers:int ->
  ?watchdog:Watchdog.t ->
  ?should_stop:(unit -> bool) ->
  ?grace:float ->
  ?on_abandon:(Watchdog.view -> unit) ->
  f:(worker:int -> int -> 'a -> 'b) ->
  consume:(int -> 'b -> unit) ->
  'a array ->
  outcome
(** [run_guarded ~workers ~f ~consume tasks] is {!run} with the
    fault-tolerance contract:

    - [f ~worker i task] receives its worker index so it can heartbeat a
      {!Watchdog}.  [f] is expected to capture per-job failures in its
      return value; an exception escaping [f] (or [consume]) is treated
      as an infrastructure fault — the pool stops claiming, joins every
      live domain, and re-raises, leaking nothing.
    - [should_stop] (default: never) is polled before every claim; once
      it returns [true], workers stop claiming, drain their in-flight
      job, and the call returns [Interrupted] if any task was left
      unsettled.  Wire this to a SIGINT/SIGTERM flag for graceful
      shutdown.
    - with [watchdog], a worker whose in-flight job runs past
      [timeout + grace] seconds ([grace] defaults to [2.0]) is
      {e abandoned}: its task is settled via [on_abandon view] (under the
      consumer mutex, exactly once — a late result from the stuck
      computation is discarded), and its domain is left parked in the
      stuck computation (OCaml domains cannot be killed; the zombie
      exits on its own if the computation ever returns).  Every other
      worker keeps draining the queue.

    Each task index is settled (consumed or abandoned) at most once, all
    under one mutex.  Always runs on spawned domains, even with
    [workers = 1], so the caller's domain stays free to monitor. *)
