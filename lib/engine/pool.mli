(** A [Domain]-based worker pool for independent trial jobs.

    Tasks are drawn from a shared atomic counter (the "queue" is just the
    next-unclaimed index, so claiming is a single [fetch_and_add]);
    results are handed to a consumer callback serialized by an internal
    mutex, so the consumer may write to a shared sink without further
    locking.

    With [workers <= 1] everything runs inline in the calling domain, in
    task order, with no domains spawned — the serial path and the
    parallel path share all the code that matters.

    The pool executes; it does not seed.  Determinism across worker
    counts is the seed tree's job ({!Seed_tree}): as long as [f] is a
    pure function of its task, the multiset of results is independent of
    [workers]. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()] capped at 8 — the same policy as
    {!Shm.Domain_runner}. *)

val run :
  workers:int ->
  f:(int -> 'a -> 'b) ->
  consume:(int -> 'b -> unit) ->
  'a array ->
  unit
(** [run ~workers ~f ~consume tasks] applies [f i tasks.(i)] to every
    task and calls [consume i result] exactly once per task, in
    completion order, under the pool's mutex.  [f] runs concurrently on
    up to [workers] domains and must not touch shared mutable state.

    If any [f] or [consume] raises, remaining unclaimed tasks are
    abandoned, all workers are joined, and the first exception is
    re-raised in the calling domain. *)

val map : workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~workers f tasks] is order-preserving parallel map, built on
    {!run}. *)
