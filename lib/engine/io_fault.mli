(** Injectable I/O fault point under the append-only stores.

    Every record append in {!Sink} and {!Fault} goes through
    {!guarded_write}.  Unarmed (the production state) it is exactly
    [output_string] + [flush].  Armed, it fails the [op]-th guarded
    write the way a real crash or full disk would, which is how the
    resume path's claims ("no duplicated or silently lost settled
    jobs") get exercised end to end instead of only against passive
    truncation:

    - {!kind.Drop} — nothing reaches the file before the failure
      (ENOSPC before the first byte): the record is lost and the job
      must re-run on resume.
    - {!kind.Short} — only a prefix is written and flushed (process
      killed mid-[write(2)], or a short write on a full disk): the
      store gains a torn tail line that {!Sink.create}[ ~append:true]
      terminates and {!Checkpoint.scan_store} skips.
    - {!kind.After_append} — the full line is durable but the failure
      fires before the caller observes success (killed between append
      and fsync acknowledgement): the record exists, so resume must
      deduplicate rather than re-run, or the job settles twice.

    Sweeping [op] over every write of a run, and [Short]'s prefix
    length over every byte position of a record, is the kill-point
    sweep in [test/test_fault.ml].

    Arming is process-global and meant for tests and fault drills; the
    engine serializes store writes through {!Pool}'s consumer mutex, and
    the shim carries its own lock so arming races cannot corrupt the
    fault schedule itself. *)

exception Injected of string
(** Raised by {!guarded_write} when the armed fault fires.  The payload
    names the kind and the operation index, e.g.
    ["io_fault: short write (3/17 bytes) at write #2"]. *)

type kind =
  | Drop  (** fail before any byte is written *)
  | Short of int
      (** write and flush only the first [k] bytes (clamped to the
          payload length), then fail *)
  | After_append  (** write and flush the whole payload, then fail *)

type plan = {
  op : int;  (** 0-based index of the guarded write that fails *)
  kind : kind;
}

val arm : plan -> unit
(** Install a fault.  Replaces any previously armed plan and resets the
    write counter. *)

val disarm : unit -> unit
(** Remove the armed fault (idempotent).  {!guarded_write} reverts to
    plain write-and-flush. *)

val armed : unit -> bool

val writes_seen : unit -> int
(** Guarded writes counted since the last {!arm} (0 when unarmed) —
    lets a sweep discover how many kill-points a scenario has. *)

val guarded_write : oc:out_channel -> string -> unit
(** Append [payload] to [oc] and flush, unless the armed fault decides
    this write fails.  @raise Injected when the fault fires; whatever
    prefix the kind prescribes has already been written and flushed, so
    the channel holds no unflushed suffix that a later [close_out]
    would leak into the file. *)
