(** Append-only JSONL result store.

    One line per completed trial job, one file per experiment
    ([<dir>/<experiment>.jsonl]), plus a run-level [manifest.json].
    Lines are flushed as they are written, so after a crash the store
    holds every completed job and at most one truncated final line —
    which {!Checkpoint} skips on resume.

    The encoder/decoder is a deliberately small, dependency-free JSON
    subset: flat objects of strings, numbers, and string→number maps —
    exactly the record schema below.  Floats round-trip exactly
    ([%.17g]). *)

type record = {
  key : string;
      (** stable job identity ["<experiment>/<sweep_point>/<trial>"] —
          what {!Checkpoint} deduplicates on *)
  experiment : string;
  sweep_point : int;
  point_label : string;
  trial : int;
  seed : int;  (** the {!Seed_tree}-derived seed the job ran with *)
  params : (string * float) list;
  values : (string * float) list;  (** the job's measured values *)
  wall_ns : float;  (** wall-clock nanoseconds spent in [run_job] *)
}

val record_to_json : record -> string
(** One line, no trailing newline. *)

val record_of_json : string -> record option
(** [None] on malformed input (including a line truncated by a crash). *)

val equal_ignoring_wall : record -> record -> bool
(** Equality on everything except [wall_ns] — the comparison the
    determinism guarantee ([--jobs 1] vs [--jobs 8]) is stated in. *)

(** {1 Writing} *)

val store_path : dir:string -> experiment:string -> string
(** [<dir>/<experiment>.jsonl] — the naming convention shared with
    {!Checkpoint}. *)

type t

val create : dir:string -> experiment:string -> append:bool -> t
(** Opens [<dir>/<experiment>.jsonl], creating [dir] (and parents) as
    needed.  [append:false] truncates any existing store; [append:true]
    keeps it (the resume path). *)

val path : t -> string

val write : t -> record -> unit
(** Appends one line and flushes.  Not thread-safe; the engine serializes
    calls through {!Pool}'s consumer mutex. *)

val close : t -> unit

(** {1 Run manifest} *)

val write_manifest : dir:string -> (string * string) list -> unit
(** [write_manifest ~dir fields] writes [<dir>/manifest.json] as a flat
    string→string object, overwriting any previous manifest. *)

(** {1 Filesystem helper} *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents ([mkdir -p]).  @raise
    Failure if a path component exists and is not a directory. *)
