(** Append-only JSONL result store.

    One line per completed trial job, one file per experiment
    ([<dir>/<experiment>.jsonl]), plus a run-level [manifest.json].
    Lines are flushed as they are written, so after a crash the store
    holds every completed job and at most one truncated final line —
    which {!Checkpoint} skips on resume.

    The encoder/decoder is a deliberately small, dependency-free JSON
    subset: flat objects of strings, numbers, and string→number maps —
    exactly the record schema below.  Floats round-trip exactly
    ([%.17g]).  The same subset backs the {!Fault} quarantine store and
    the manifest reader. *)

val schema_version : string
(** Version tag written into every manifest ([schema] field) and checked
    by resume validation and [repro_cli doctor].  Bumped on incompatible
    record/manifest layout changes. *)

type record = {
  key : string;
      (** stable job identity ["<experiment>/<sweep_point>/<trial>"] —
          what {!Checkpoint} deduplicates on *)
  experiment : string;
  sweep_point : int;
  point_label : string;
  trial : int;
  attempt : int;
      (** retry attempt index that produced this record; [0] unless the
          job failed and was retried (see {!Fault}).  Schema-1 stores
          have no attempt field; they decode as [0]. *)
  seed : int;
      (** the {!Seed_tree}-derived seed the job ran with
          ([Seed_tree.derive_attempt] at [attempt]) *)
  params : (string * float) list;
  values : (string * float) list;  (** the job's measured values *)
  wall_ns : float;  (** wall-clock nanoseconds spent in [run_job] *)
}

val record_to_json : record -> string
(** One line, no trailing newline. *)

val record_of_json : string -> record option
(** [None] on malformed input (including a line truncated by a crash). *)

val equal_ignoring_wall : record -> record -> bool
(** Equality on everything except [wall_ns] — the comparison the
    determinism guarantee ([--jobs 1] vs [--jobs 8]) is stated in. *)

(** {1 JSON subset}

    The shared {!Jsonu} codec, re-exported so sibling stores ({!Fault})
    and audits ([repro_cli doctor]) keep parsing with exactly the
    decoder the result store uses.  The chaos layer's plan/verdict
    artifacts use {!Jsonu} directly. *)

module Json = Jsonu

(** {1 Writing} *)

val store_path : dir:string -> experiment:string -> string
(** [<dir>/<experiment>.jsonl] — the naming convention shared with
    {!Checkpoint}. *)

type t

val create : dir:string -> experiment:string -> append:bool -> t
(** Opens [<dir>/<experiment>.jsonl], creating [dir] (and parents) as
    needed.  [append:false] truncates any existing store; [append:true]
    keeps it (the resume path) and, if the file ends in a partial line
    left by a crash, terminates that line first so the next record does
    not glue onto the garbage. *)

val path : t -> string

val write : t -> record -> unit
(** Appends one line and flushes.  Not thread-safe; the engine serializes
    calls through {!Pool}'s consumer mutex.  The append goes through
    {!Io_fault.guarded_write}, so fault drills can inject write failures
    here.  @raise Io_fault.Injected when an armed fault fires. *)

val close : t -> unit

val ends_mid_line : string -> bool
(** [true] if the file exists, is non-empty and does not end in a
    newline — the signature of a crash mid-write.  Shared with {!Fault}
    and [repro_cli doctor]. *)

(** {1 Run manifest} *)

val write_manifest : dir:string -> (string * string) list -> unit
(** [write_manifest ~dir fields] writes [<dir>/manifest.json] as a flat
    string→string object, overwriting any previous manifest. *)

val read_manifest : dir:string -> (string * string) list option
(** The string fields of [<dir>/manifest.json], or [None] if the file is
    missing or unparseable.  Input to {!Checkpoint.validate_manifest}. *)

(** {1 Filesystem helper} *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents ([mkdir -p]).  @raise
    Failure if a path component exists and is not a directory. *)
