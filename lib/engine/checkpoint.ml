let fold_lines file f init =
  if not (Sys.file_exists file) then init
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> acc
          | line -> go (f acc line)
        in
        go init)
  end

let records file =
  List.rev
    (fold_lines file
       (fun acc line ->
         match Sink.record_of_json line with
         | Some r -> r :: acc
         | None -> acc)
       [])

let completed_keys file =
  let keys = Hashtbl.create 256 in
  fold_lines file
    (fun () line ->
      match Sink.record_of_json line with
      | Some r -> Hashtbl.replace keys r.Sink.key ()
      | None -> ())
    ();
  keys

let pending ~completed ~key jobs =
  let skipped = ref 0 in
  let todo =
    List.filter
      (fun job ->
        if Hashtbl.mem completed (key job) then begin
          incr skipped;
          false
        end
        else true)
      jobs
  in
  (todo, !skipped)
